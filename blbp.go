// Package blbp is the public API of the BLBP reproduction: the Bit-Level
// Perceptron-Based Indirect Branch Predictor of Garza, Mirbagher-Ajorpaz,
// Khan, and Jiménez (ISCA 2019), together with the baselines it is
// evaluated against (BTB, VPC, ITTAGE), a CBP-style trace-driven simulation
// engine, and a synthetic workload suite standing in for the paper's
// SPEC/CBP-5 traces.
//
// Quick start:
//
//	spec := blbp.Workloads(400_000)[0]     // a workload from the 88-entry suite
//	tr := spec.Build()                      // deterministic branch trace
//	res, err := blbp.Simulate(tr, blbp.NewBLBP(blbp.DefaultBLBPConfig()))
//	fmt.Printf("BLBP MPKI: %.3f\n", res.IndirectMPKI())
//
// See the examples/ directory for complete programs and cmd/experiments for
// the drivers that regenerate every table and figure of the paper.
package blbp

import (
	"blbp/internal/btb"
	"blbp/internal/combined"
	"blbp/internal/cond"
	"blbp/internal/core"
	"blbp/internal/ittage"
	"blbp/internal/predictor"
	"blbp/internal/sim"
	"blbp/internal/trace"
	"blbp/internal/vpc"
	"blbp/internal/workload"
	"blbp/internal/wspec"
)

// Trace model -------------------------------------------------------------

// BranchType classifies a control-flow instruction.
type BranchType = trace.BranchType

// Branch type values.
const (
	CondDirect   = trace.CondDirect
	UncondDirect = trace.UncondDirect
	DirectCall   = trace.DirectCall
	IndirectJump = trace.IndirectJump
	IndirectCall = trace.IndirectCall
	Return       = trace.Return
)

// Record is one executed branch in a trace.
type Record = trace.Record

// Trace is an in-memory branch trace.
type Trace = trace.Trace

// TraceStats summarizes a trace's branch population (branch mix,
// polymorphism, target-count distribution).
type TraceStats = trace.Stats

// AnalyzeTrace computes statistics over a trace.
func AnalyzeTrace(t *Trace) *TraceStats { return trace.Analyze(t) }

// Predictors ---------------------------------------------------------------

// IndirectPredictor is the interface every indirect target predictor
// implements; see the package documentation of internal/predictor for the
// engine's call contract.
type IndirectPredictor = predictor.Indirect

// ConditionalPredictor is a taken/not-taken predictor.
type ConditionalPredictor = cond.Predictor

// BLBPConfig parameterizes the BLBP predictor.
type BLBPConfig = core.Config

// DefaultBLBPConfig returns the paper's BLBP configuration (Table 2).
func DefaultBLBPConfig() BLBPConfig { return core.DefaultConfig() }

// NewBLBP constructs a BLBP predictor.
func NewBLBP(cfg BLBPConfig) *core.BLBP { return core.New(cfg) }

// ITTAGEConfig parameterizes the ITTAGE baseline.
type ITTAGEConfig = ittage.Config

// DefaultITTAGEConfig returns the ~64 KB ITTAGE baseline configuration.
func DefaultITTAGEConfig() ITTAGEConfig { return ittage.DefaultConfig() }

// NewITTAGE constructs an ITTAGE predictor.
func NewITTAGE(cfg ITTAGEConfig) *ittage.ITTAGE { return ittage.New(cfg) }

// BTBConfig parameterizes a branch target buffer.
type BTBConfig = btb.Config

// DefaultBTBConfig returns the paper's 32K-entry baseline BTB.
func DefaultBTBConfig() BTBConfig { return btb.Default32K() }

// NewBTBPredictor constructs the baseline last-taken BTB indirect
// predictor.
func NewBTBPredictor(cfg BTBConfig) *btb.Indirect { return btb.NewIndirect(cfg) }

// VPCConfig parameterizes the VPC predictor.
type VPCConfig = vpc.Config

// DefaultVPCConfig returns the paper's VPC setup (32K BTB, MaxIter 12).
func DefaultVPCConfig() VPCConfig { return vpc.DefaultConfig() }

// NewVPC constructs a VPC predictor over the given shared conditional
// predictor. When simulating, pass the same hp as the engine's conditional
// predictor (see SimulateWith) — sharing one predictor is VPC's defining
// property.
func NewVPC(cfg VPCConfig, hp *cond.HashedPerceptron) *vpc.VPC { return vpc.New(cfg, hp) }

// NewHashedPerceptron constructs the hashed perceptron conditional
// predictor the harness uses.
func NewHashedPerceptron() *cond.HashedPerceptron {
	return cond.NewHashedPerceptron(cond.DefaultHPConfig())
}

// NewTAGE constructs the conditional TAGE predictor (pairs with ITTAGE to
// form the COTTAGE configuration of the paper's related work).
func NewTAGE() *cond.TAGE { return cond.NewTAGE(cond.DefaultTAGEConfig()) }

// NewCombined constructs the paper's §6 future-work consolidation: one BLBP
// structure predicting both conditional directions and indirect targets.
// Use the returned predictor as the engine's conditional predictor and its
// Indirect() view as the indirect predictor of the same pass:
//
//	p := blbp.NewCombined(blbp.DefaultBLBPConfig())
//	res, err := blbp.SimulateWith(tr, p, []blbp.IndirectPredictor{p.Indirect()}, blbp.SimOptions{})
func NewCombined(cfg BLBPConfig) *combined.Predictor { return combined.New(cfg) }

// Simulation ---------------------------------------------------------------

// Result accumulates one predictor's counts over one trace; its
// IndirectMPKI method reports the paper's headline metric.
type Result = sim.Result

// SimOptions tunes engine structures not under study.
type SimOptions = sim.Options

// Simulate runs the indirect predictors over the trace in one pass, using a
// fresh hashed perceptron for conditional branches, and returns one Result
// per predictor in input order.
//
//blbp:hot
func Simulate(tr *Trace, preds ...IndirectPredictor) ([]Result, error) {
	//blbp:allow(hotalloc) conditional predictor boxed once at run setup, not per branch
	return sim.Run(tr, NewHashedPerceptron(), preds, sim.Options{})
}

// SimulateWith is Simulate with an explicit conditional predictor and
// options (required for VPC, which must share the engine's conditional
// predictor).
//
//blbp:hot
func SimulateWith(tr *Trace, cp ConditionalPredictor, preds []IndirectPredictor, opts SimOptions) ([]Result, error) {
	return sim.Run(tr, cp, preds, opts)
}

// Workloads ----------------------------------------------------------------

// WorkloadSpec names one fully-parameterized synthetic workload.
type WorkloadSpec = workload.Spec

// Workloads returns the paper-mirroring 88-workload suite; base scales
// trace lengths (SHORT = base, LONG = 2x, SPEC = 1.5x; 0 applies the
// 400k-instruction default).
func Workloads(base int64) []WorkloadSpec { return wspec.Suite(base) }

// HoldoutWorkloads returns the 12-workload cross-validation suite (the
// paper's CBP-4 analog).
func HoldoutWorkloads(base int64) []WorkloadSpec { return wspec.SuiteHoldout(base) }

// Workload generator parameter types, for building custom workloads.
type (
	// InterpreterParams models bytecode-interpreter dispatch.
	InterpreterParams = workload.InterpreterParams
	// VDispatchParams models virtual-method dispatch over object arrays.
	VDispatchParams = workload.VDispatchParams
	// SwitcherParams models parser/switch-statement dispatch.
	SwitcherParams = workload.SwitcherParams
	// CallbacksParams models event loops over function-pointer tables.
	CallbacksParams = workload.CallbacksParams
	// MonoParams models monomorphic call-site populations.
	MonoParams = workload.MonoParams
	// RecursiveParams models recursion-heavy code with RAS-overflow depths.
	RecursiveParams = workload.RecursiveParams
)

// Custom workload constructors.
var (
	// NewInterpreterWorkload builds an interpreter workload spec.
	NewInterpreterWorkload = workload.InterpreterSpec
	// NewVDispatchWorkload builds a virtual-dispatch workload spec.
	NewVDispatchWorkload = workload.VDispatchSpec
	// NewSwitcherWorkload builds a switch/parser workload spec.
	NewSwitcherWorkload = workload.SwitcherSpec
	// NewCallbacksWorkload builds an event-loop workload spec.
	NewCallbacksWorkload = workload.CallbacksSpec
	// NewMonoWorkload builds a monomorphic-calls workload spec.
	NewMonoWorkload = workload.MonoSpec
	// NewRecursiveWorkload builds a recursion-heavy workload spec.
	NewRecursiveWorkload = workload.RecursiveSpec
)

// Trace I/O -----------------------------------------------------------------

// WriteTrace and ReadTrace encode traces in the compact binary format used
// by cmd/tracegen.
var (
	WriteTrace = trace.Write
	ReadTrace  = trace.Read
)

// NewPredictor constructs a registered standalone indirect predictor by
// name with its default configuration ("blbp", "ittage", "btb", "btb2bit",
// "targetcache", "cascaded"). Predictors that must share or provide the
// engine's conditional predictor ("vpc", "combined") are registered too but
// cannot be built in isolation; see NewVPC and NewCombined.
func NewPredictor(name string) (IndirectPredictor, error) { return predictor.New(name) }

// PredictorNames lists the names accepted by NewPredictor.
func PredictorNames() []string { return predictor.Names() }
