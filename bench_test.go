// Benchmark harness: one testing.B per table and figure of the paper's
// evaluation (DESIGN.md §4 maps each to its built-in run plan), plus
// microbenchmarks of the predictors themselves. The macro benchmarks run
// the real run plans on a reduced instruction base so `go test -bench=.`
// stays tractable; cmd/experiments regenerates the full-scale numbers.
//
// Custom metrics (reported via b.ReportMetric):
//
//	MPKI-<predictor>   suite-mean indirect MPKI
//	pct-vs-ittage      percent MPKI reduction of BLBP relative to ITTAGE
package blbp_test

import (
	"testing"

	"blbp"
	"blbp/internal/experiments"
	"blbp/internal/runspec"
	"blbp/internal/workload"
	"blbp/internal/wspec"
)

// benchBase is the instruction base for macro benchmarks (full runs use
// 400k+; see cmd/experiments).
const benchBase = 60_000

func benchSuite() []workload.Spec { return wspec.Suite(benchBase) }

// benchRunner is the execution layer shared by every macro benchmark in
// this file: its trace cache means each workload is synthesized once for
// the whole `go test -bench` run, and the shared tape keeps repeated
// conditional-side simulation off the measured path after the first
// plan touches a workload.
var benchRunner = experiments.NewRunner(0)

func mustBuiltin(b *testing.B, name string) *runspec.Plan {
	b.Helper()
	plan, ok := runspec.Builtin(name)
	if !ok {
		b.Fatalf("no built-in plan %q", name)
	}
	return plan
}

// runBenchPlan executes the plan b.N times and returns the last run's
// single rendered output. Each iteration gets a fresh Exec: the executor
// memoizes (suite, passes) results, so reusing one across iterations would
// make every iteration after the first free and corrupt the timing. The
// shared benchRunner underneath still amortizes trace building and the
// conditional tape across iterations, as the old drivers did.
func runBenchPlan(b *testing.B, plan *runspec.Plan) runspec.RenderedOutput {
	b.Helper()
	var out runspec.RenderedOutput
	for i := 0; i < b.N; i++ {
		outs, err := runspec.NewExec(benchRunner, benchBase).Run(plan)
		if err != nil {
			b.Fatal(err)
		}
		out = outs[0]
	}
	return out
}

// BenchmarkTable1Suite regenerates Table 1: building every workload in the
// suite and tabulating it by category.
func BenchmarkTable1Suite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb := experiments.Table1(benchSuite())
		if tb.Rows() == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2Budgets regenerates Table 2: constructing every predictor
// and computing its modeled hardware budget.
func BenchmarkTable2Budgets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		budgets := experiments.Budgets()
		if len(budgets) != 4 {
			b.Fatal("wrong budget count")
		}
	}
	for _, bd := range experiments.Budgets() {
		b.ReportMetric(float64(bd.Bits)/8192, "KB-"+bd.Predictor)
	}
}

// BenchmarkFig1BranchMix regenerates Figure 1: the per-kilo-instruction
// branch mix of all 88 workloads.
func BenchmarkFig1BranchMix(b *testing.B) {
	var indirectMax float64
	for i := 0; i < b.N; i++ {
		_, rows := benchRunner.Fig1(benchSuite())
		indirectMax = rows[len(rows)-1].Indirect
	}
	b.ReportMetric(indirectMax, "max-indirect-per-KI")
}

// BenchmarkFig6Polymorphism regenerates Figure 6: polymorphic-execution
// percentages per workload.
func BenchmarkFig6Polymorphism(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		_, rows := benchRunner.Fig6(benchSuite())
		spread = rows[len(rows)-1].PolyPct - rows[0].PolyPct
	}
	b.ReportMetric(spread, "poly-pct-spread")
}

// BenchmarkFig7TargetDistribution regenerates Figure 7: the CCDF of
// distinct-target counts.
func BenchmarkFig7TargetDistribution(b *testing.B) {
	var atLeast5 float64
	for i := 0; i < b.N; i++ {
		_, pts := benchRunner.Fig7(benchSuite(), 64)
		atLeast5 = pts[4].PctAtLeast
	}
	b.ReportMetric(atLeast5, "pct-with-5plus-targets")
}

// BenchmarkOverallMPKI regenerates the §5.1 headline numbers: suite-mean
// MPKI of BTB, VPC, ITTAGE, and BLBP (paper: 3.40 / 0.29 / 0.193 / 0.183).
func BenchmarkOverallMPKI(b *testing.B) {
	out := runBenchPlan(b, mustBuiltin(b, "overall"))
	data := out.Data.(experiments.OverallData)
	for _, p := range data.Predictors {
		b.ReportMetric(data.Mean(p), "MPKI-"+p)
	}
	it, bl := data.Mean(experiments.NameITTAGE), data.Mean(experiments.NameBLBP)
	if it > 0 {
		b.ReportMetric(100*(it-bl)/it, "pct-vs-ittage")
	}
}

// BenchmarkFig8MPKI regenerates Figure 8: the per-benchmark MPKI table of
// VPC, ITTAGE, and BLBP sorted by BLBP MPKI.
func BenchmarkFig8MPKI(b *testing.B) {
	out := runBenchPlan(b, mustBuiltin(b, "fig8"))
	if out.Table.Rows() != 88 {
		b.Fatal("fig8 row count")
	}
}

// BenchmarkFig9Relative regenerates Figure 9: the four predictors' relative
// MPKI shares per benchmark.
func BenchmarkFig9Relative(b *testing.B) {
	out := runBenchPlan(b, mustBuiltin(b, "fig9"))
	if out.Table.Rows() != 88 {
		b.Fatal("fig9 row count")
	}
}

// BenchmarkHoldoutSuite regenerates the §5.1 cross-validation experiment
// (the CBP-4 analog): the standard predictors on the 12 held-out workloads.
func BenchmarkHoldoutSuite(b *testing.B) {
	out := runBenchPlan(b, mustBuiltin(b, "holdout"))
	data := out.Data.(experiments.OverallData)
	b.ReportMetric(data.Mean(experiments.NameITTAGE), "MPKI-ittage")
	b.ReportMetric(data.Mean(experiments.NameBLBP), "MPKI-blbp")
}

// BenchmarkFig10Ablation regenerates Figure 10: the twelve optimization
// arms versus the ITTAGE reference.
func BenchmarkFig10Ablation(b *testing.B) {
	out := runBenchPlan(b, mustBuiltin(b, "fig10"))
	for _, r := range out.Data.([]runspec.Fig10Row) {
		if r.Variant == "all-on" || r.Variant == "all-off" {
			b.ReportMetric(r.PctVsITTAGE, "pct-"+r.Variant)
		}
	}
}

// BenchmarkFig11Associativity regenerates Figure 11: the IBTB
// associativity sweep at 4096 entries.
func BenchmarkFig11Associativity(b *testing.B) {
	out := runBenchPlan(b, mustBuiltin(b, "fig11"))
	for _, r := range out.Data.([]runspec.Fig11Row) {
		switch r.Label {
		case "assoc-4":
			b.ReportMetric(r.MeanMPKI, "MPKI-assoc4")
		case "assoc-64":
			b.ReportMetric(r.MeanMPKI, "MPKI-assoc64")
		}
	}
}

// BenchmarkExtrasBaselines runs the extended related-work lineage (plain
// BTB, 2-bit BTB, Target Cache, cascaded, ITTAGE, BLBP) — the quantitative
// version of the paper's §2.2.
func BenchmarkExtrasBaselines(b *testing.B) {
	out := runBenchPlan(b, mustBuiltin(b, "extras"))
	means := out.Data.(map[string]float64)
	for _, p := range []string{"btb2bit", "targetcache", "cascaded"} {
		b.ReportMetric(means[p], "MPKI-"+p)
	}
}

// BenchmarkAblationArrays sweeps the number of weight SRAM arrays (the
// SNIP-44 to BLBP-8 reduction of §3) at roughly constant storage.
func BenchmarkAblationArrays(b *testing.B) {
	out := runBenchPlan(b, mustBuiltin(b, "arrays"))
	means := out.Data.(map[string]float64)
	b.ReportMetric(means["arrays-8"], "MPKI-arrays8")
	b.ReportMetric(means["arrays-44"], "MPKI-arrays44")
}

// BenchmarkAblationTargetBits sweeps GlobalTargetBits (DESIGN.md §2's
// documented deviation from the paper-literal conditional-only GHIST).
func BenchmarkAblationTargetBits(b *testing.B) {
	out := runBenchPlan(b, mustBuiltin(b, "targetbits"))
	means := out.Data.(map[string]float64)
	b.ReportMetric(means["targetbits-0"], "MPKI-bits0")
	b.ReportMetric(means["targetbits-2"], "MPKI-bits2")
}

// BenchmarkExtensionCombined runs the §6 future-work consolidation: one
// BLBP structure predicting both conditional directions and indirect
// targets.
func BenchmarkExtensionCombined(b *testing.B) {
	out := runBenchPlan(b, mustBuiltin(b, "combined"))
	res := out.Data.(runspec.CombinedResult)
	b.ReportMetric(res.ConsolidatedCondAcc, "cond-acc-consolidated")
	b.ReportMetric(res.ConsolidatedIndirectMPKI, "MPKI-consolidated")
	b.ReportMetric(res.DedicatedIndirectMPKI, "MPKI-dedicated")
}

// --- Microbenchmarks: predictor operation costs --------------------------

// microTrace builds one moderately polymorphic trace reused across
// predictor microbenchmarks.
func microTrace() *blbp.Trace {
	spec := blbp.NewVDispatchWorkload("micro", "bench", 200_000, blbp.VDispatchParams{
		Classes: 6, Sites: 4, Objects: 32, MethodWork: 40, MethodConds: 2,
		MonoCalls: 1, MonoSites: 20,
	})
	return spec.Build()
}

func benchPredictor(b *testing.B, make func() blbp.IndirectPredictor) {
	tr := microTrace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := make()
		for ri := range tr.Records {
			r := &tr.Records[ri]
			switch {
			case r.Type == blbp.CondDirect:
				p.OnCond(r.PC, r.Taken)
			case r.Type.IsIndirect():
				p.Predict(r.PC)
				p.Update(r.PC, r.Target)
			default:
				p.OnOther(r.PC, r.Target, r.Type)
			}
		}
	}
	b.SetBytes(int64(len(tr.Records)))
}

// BenchmarkBLBPThroughput measures BLBP's per-branch cost over a trace.
func BenchmarkBLBPThroughput(b *testing.B) {
	benchPredictor(b, func() blbp.IndirectPredictor { return blbp.NewBLBP(blbp.DefaultBLBPConfig()) })
}

// BenchmarkITTAGEThroughput measures ITTAGE's per-branch cost.
func BenchmarkITTAGEThroughput(b *testing.B) {
	benchPredictor(b, func() blbp.IndirectPredictor { return blbp.NewITTAGE(blbp.DefaultITTAGEConfig()) })
}

// BenchmarkBTBThroughput measures the baseline BTB's per-branch cost.
func BenchmarkBTBThroughput(b *testing.B) {
	benchPredictor(b, func() blbp.IndirectPredictor { return blbp.NewBTBPredictor(blbp.DefaultBTBConfig()) })
}

// BenchmarkEngineEndToEnd measures whole-engine simulation throughput
// (conditional predictor + RAS + BLBP) in instructions per second, the
// number that bounds full-suite experiment time.
func BenchmarkEngineEndToEnd(b *testing.B) {
	tr := microTrace()
	instr := tr.Instructions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blbp.Simulate(tr, blbp.NewBLBP(blbp.DefaultBLBPConfig())); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(instr)
}

// BenchmarkTraceGeneration measures workload synthesis throughput.
func BenchmarkTraceGeneration(b *testing.B) {
	spec := blbp.NewInterpreterWorkload("gen", "bench", 200_000, blbp.InterpreterParams{
		Opcodes: 16, ProgramLen: 48, Work: 40, CondPerHandler: 2,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := spec.Build()
		if len(tr.Records) == 0 {
			b.Fatal("empty trace")
		}
	}
	b.SetBytes(200_000)
}

// BenchmarkExtensionHierarchy runs the §6 future-work IBTB-hierarchy study
// (8-way L1 + 16-way L2 vs the monolithic 64-way and 8-way buffers).
func BenchmarkExtensionHierarchy(b *testing.B) {
	out := runBenchPlan(b, mustBuiltin(b, "hierarchy"))
	res := out.Data.(runspec.HierarchyResult)
	b.ReportMetric(res.Mono64MPKI, "MPKI-mono64")
	b.ReportMetric(res.HierMPKI, "MPKI-hierarchy")
	b.ReportMetric(res.HierL2ProbeRate, "L2-probe-rate")
}

// BenchmarkExtensionCottage runs the §2.2 COTTAGE pairing (TAGE + ITTAGE)
// against hashed perceptron + BLBP.
func BenchmarkExtensionCottage(b *testing.B) {
	out := runBenchPlan(b, mustBuiltin(b, "cottage"))
	res := out.Data.(runspec.CottageResult)
	b.ReportMetric(res.TAGECondAcc, "cond-acc-tage")
	b.ReportMetric(res.ITTAGEMPKI, "MPKI-cottage")
	b.ReportMetric(res.BLBPMPKI, "MPKI-blbp")
}

// BenchmarkExtensionLatency regenerates the §3.7 selection-latency
// analysis from BLBP's candidate-set-size histogram.
func BenchmarkExtensionLatency(b *testing.B) {
	out := runBenchPlan(b, mustBuiltin(b, "latency"))
	res := out.Data.(runspec.LatencyResult)
	b.ReportMetric(res.PctOneCycle, "pct-one-cycle")
	b.ReportMetric(res.PctWithin4, "pct-within-4")
}

// BenchmarkExtensionSeeds re-runs the headline on independently seeded
// suite draws to bound its seed sensitivity.
func BenchmarkExtensionSeeds(b *testing.B) {
	plan := mustBuiltin(b, "seeds")
	plan.Suite.Salts = []string{"", "a"} // two draws keep the benchmark tractable
	out := runBenchPlan(b, plan)
	for _, r := range out.Data.([]runspec.SeedsRow) {
		label := r.Salt
		if label == "" {
			label = "default"
		}
		b.ReportMetric(r.PctVsITTAGE, "pct-"+label)
	}
}
