module blbp

go 1.22
