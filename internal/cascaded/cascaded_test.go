package cascaded

import (
	"testing"

	"blbp/internal/trace"
)

func TestMonomorphicHandledByStage1(t *testing.T) {
	p := New(DefaultConfig())
	mis := 0
	for i := 0; i < 500; i++ {
		pred, ok := p.Predict(0x400)
		if (!ok || pred != 0x9000) && i >= 100 {
			mis++
		}
		p.Update(0x400, 0x9000)
	}
	if mis != 0 {
		t.Errorf("%d late mispredicts on monomorphic branch", mis)
	}
}

func TestFilterKeepsEasyBranchesOutOfStage2(t *testing.T) {
	p := New(DefaultConfig())
	// A monomorphic branch: after the first update stage 1 always agrees,
	// so stage 2 must stay empty beyond the initial cold allocation.
	for i := 0; i < 200; i++ {
		p.Predict(0x500)
		p.Update(0x500, 0xAA00)
	}
	allocated := 0
	for _, e := range p.stage2 {
		if e.valid {
			allocated++
		}
	}
	if allocated > 1 {
		t.Errorf("stage 2 holds %d entries for one easy branch, want <= 1", allocated)
	}
}

func TestPolymorphicPromotedToStage2(t *testing.T) {
	p := New(DefaultConfig())
	mis := 0
	const n = 3000
	for i := 0; i < n; i++ {
		tgt := uint64(0x1000)
		if i%2 == 1 {
			tgt = 0x3000
		}
		pred, ok := p.Predict(0x700)
		if (!ok || pred != tgt) && i >= n*3/4 {
			mis++
		}
		p.Update(0x700, tgt)
	}
	if mis > 10 {
		t.Errorf("%d late mispredicts on alternating targets, want <= 10", mis)
	}
	allocated := 0
	for _, e := range p.stage2 {
		if e.valid {
			allocated++
		}
	}
	if allocated == 0 {
		t.Error("polymorphic branch never allocated in stage 2")
	}
}

func TestColdMiss(t *testing.T) {
	p := New(DefaultConfig())
	if _, ok := p.Predict(0x123); ok {
		t.Error("hit on cold predictor")
	}
}

func TestUpdateWithoutPredictIsSafe(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 20; i++ {
		p.Update(0x900, 0x1234000)
	}
	pred, ok := p.Predict(0x900)
	if !ok || pred != 0x1234000 {
		t.Errorf("Predict = %#x/%v", pred, ok)
	}
}

func TestOnCondAdvancesHistory(t *testing.T) {
	p := New(DefaultConfig())
	p.Update(0x10, 0x5000)
	p.OnCond(0x20, true)
	p.OnOther(0x30, 0x40, trace.Return) // must not panic
	if _, ok := p.Predict(0x10); !ok {
		// Stage 1 is history-free, so the branch must still hit there.
		t.Error("stage 1 lost the branch after history updates")
	}
}

func TestBetterThanStage1AloneOnPolymorphic(t *testing.T) {
	// Compare against a pure BTB behaviourally: alternating targets defeat
	// last-taken entirely (100% miss), while the cascade learns them.
	p := New(DefaultConfig())
	casMis := 0
	for i := 0; i < 1000; i++ {
		tgt := uint64(0x1000)
		if i%2 == 1 {
			tgt = 0x3000
		}
		pred, ok := p.Predict(0x700)
		if !ok || pred != tgt {
			casMis++
		}
		p.Update(0x700, tgt)
	}
	if casMis > 500 {
		t.Errorf("cascade mispredicts %d/1000; should beat last-taken's ~1000", casMis)
	}
}

func TestStorageBitsAndName(t *testing.T) {
	p := New(DefaultConfig())
	if p.StorageBits() <= 0 {
		t.Error("non-positive storage")
	}
	if p.Name() != "cascaded" {
		t.Error("Name")
	}
}

func TestConstructorPanics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Stage2Entries = 0
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero stage2 accepted")
			}
		}()
		New(cfg)
	}()
	cfg = DefaultConfig()
	cfg.HistBits = 0
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero hist accepted")
			}
		}()
		New(cfg)
	}()
}
