// Package cascaded implements Driesen & Hölzle's cascaded indirect branch
// predictor (MICRO 1998), another classical baseline from the paper's
// related work: a cheap first-stage BTB handles the easy (monomorphic)
// branches and acts as a filter, while a tagged history-indexed second
// stage is reserved for branches the first stage has proven unable to
// predict. The filter keeps easy branches from wasting second-stage
// capacity — the insight later generalized by multi-stage and TAGE-style
// predictors.
package cascaded

import (
	"blbp/internal/btb"
	"blbp/internal/hashing"
	"blbp/internal/trace"
)

// Config parameterizes a cascaded predictor.
type Config struct {
	// Stage1 is the filter BTB geometry.
	Stage1 btb.Config
	// Stage2Entries is the history-indexed second-stage size.
	Stage2Entries int
	// Stage2TagBits is the second stage's partial tag width.
	Stage2TagBits int
	// HistBits is the target-history register width for stage-2 indexing.
	HistBits int
}

// DefaultConfig returns a ~64 KB-class two-stage cascade.
func DefaultConfig() Config {
	return Config{
		Stage1:        btb.Config{Entries: 4096, Assoc: 1, TagBits: 8, TargetBits: 44},
		Stage2Entries: 8192,
		Stage2TagBits: 10,
		HistBits:      14,
	}
}

type entry struct {
	tag    uint64
	target uint64
	valid  bool
}

// Predictor is the cascaded predictor.
type Predictor struct {
	cfg     Config
	stage1  *btb.BTB
	stage2  []entry
	hist    uint64
	histMax uint64

	// lastStage2Hit caches prediction state for the filtering rule.
	lastPC    uint64
	lastOK    bool
	lastS1    uint64
	lastS1Hit bool
	lastS2    uint64
	lastS2Hit bool
}

// New constructs a cascaded predictor; it panics on invalid configuration.
func New(cfg Config) *Predictor {
	if cfg.Stage2Entries <= 0 {
		panic("cascaded: Stage2Entries must be positive")
	}
	if cfg.HistBits <= 0 || cfg.HistBits > 63 {
		panic("cascaded: HistBits out of range")
	}
	return &Predictor{
		cfg:     cfg,
		stage1:  btb.New(cfg.Stage1),
		stage2:  make([]entry, cfg.Stage2Entries),
		histMax: 1<<uint(cfg.HistBits) - 1,
	}
}

// Name implements predictor.Indirect.
func (p *Predictor) Name() string { return "cascaded" }

func (p *Predictor) stage2IndexTag(pc uint64) (int, uint64) {
	h := hashing.Combine(hashing.Mix64(pc), p.hist)
	return hashing.Index(h, p.cfg.Stage2Entries), hashing.Tag(h, p.cfg.Stage2TagBits)
}

// Predict implements predictor.Indirect: the second stage overrides the
// first when it hits.
func (p *Predictor) Predict(pc uint64) (uint64, bool) {
	p.lastPC, p.lastOK = pc, true
	p.lastS1, p.lastS1Hit = p.stage1.Lookup(pc)
	idx, tag := p.stage2IndexTag(pc)
	e := &p.stage2[idx]
	p.lastS2Hit = e.valid && e.tag == tag
	if p.lastS2Hit {
		p.lastS2 = e.target
		return e.target, true
	}
	if p.lastS1Hit {
		return p.lastS1, true
	}
	return 0, false
}

// Update implements predictor.Indirect: stage 1 always learns (last-taken);
// stage 2 only allocates when stage 1 mispredicted — the cascade filter.
func (p *Predictor) Update(pc, actual uint64) {
	if !p.lastOK || p.lastPC != pc {
		p.Predict(pc)
	}
	p.lastOK = false
	stage1Wrong := !p.lastS1Hit || p.lastS1 != actual
	stage2Wrong := !p.lastS2Hit || p.lastS2 != actual
	if stage1Wrong && stage2Wrong {
		idx, tag := p.stage2IndexTag(pc)
		p.stage2[idx] = entry{tag: tag, target: actual, valid: true}
	}
	p.stage1.Update(pc, actual)
	p.hist = (p.hist<<2 | hashing.Mix64(actual)&3) & p.histMax
}

// OnCond implements predictor.Indirect.
func (p *Predictor) OnCond(pc uint64, taken bool) {
	b := uint64(0)
	if taken {
		b = 1
	}
	p.hist = (p.hist<<1 | b) & p.histMax
	p.lastOK = false
}

// OnOther implements predictor.Indirect.
func (p *Predictor) OnOther(pc, target uint64, bt trace.BranchType) {}

// StorageBits implements predictor.Indirect.
func (p *Predictor) StorageBits() int {
	return p.stage1.StorageBits() +
		p.cfg.Stage2Entries*(1+p.cfg.Stage2TagBits+44) +
		p.cfg.HistBits
}
