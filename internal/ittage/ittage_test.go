package ittage

import (
	"math/rand"
	"testing"

	"blbp/internal/trace"
)

func lateMispredicts(p *ITTAGE, targets []uint64, condOutcomes []bool) int {
	mis := 0
	start := len(targets) * 3 / 4
	for i, tgt := range targets {
		if condOutcomes != nil {
			p.OnCond(0xC04D, condOutcomes[i])
		}
		pred, ok := p.Predict(0x400100)
		if (!ok || pred != tgt) && i >= start {
			mis++
		}
		p.Update(0x400100, tgt)
	}
	return mis
}

func TestGeometricLengths(t *testing.T) {
	lens := geometricLengths(4, 630, 8)
	if len(lens) != 8 {
		t.Fatalf("got %d lengths, want 8", len(lens))
	}
	if lens[0] != 4 {
		t.Errorf("first length = %d, want 4", lens[0])
	}
	if lens[7] != 630 {
		t.Errorf("last length = %d, want 630", lens[7])
	}
	for i := 1; i < len(lens); i++ {
		if lens[i] <= lens[i-1] {
			t.Errorf("lengths not strictly increasing at %d: %v", i, lens)
		}
	}
}

func TestGeometricLengthsSingle(t *testing.T) {
	lens := geometricLengths(5, 100, 1)
	if len(lens) != 1 || lens[0] != 5 {
		t.Errorf("geometricLengths(5,100,1) = %v, want [5]", lens)
	}
}

func TestMonomorphicConverges(t *testing.T) {
	p := New(DefaultConfig())
	targets := make([]uint64, 400)
	for i := range targets {
		targets[i] = 0x7000
	}
	if mis := lateMispredicts(p, targets, nil); mis != 0 {
		t.Errorf("%d late mispredicts on monomorphic branch, want 0", mis)
	}
}

func TestConditionCorrelatedTargets(t *testing.T) {
	p := New(DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	n := 4000
	targets := make([]uint64, n)
	conds := make([]bool, n)
	for i := range targets {
		conds[i] = rng.Intn(2) == 0
		if conds[i] {
			targets[i] = 0x1000
		} else {
			targets[i] = 0x2000
		}
	}
	mis := lateMispredicts(p, targets, conds)
	if mis > n/4/20 {
		t.Errorf("%d late mispredicts out of %d on condition-correlated branch, want <= %d", mis, n/4, n/4/20)
	}
}

func TestTargetSequencePattern(t *testing.T) {
	p := New(DefaultConfig())
	seq := []uint64{0x1000, 0x3000, 0x5000}
	n := 3000
	targets := make([]uint64, n)
	for i := range targets {
		targets[i] = seq[i%len(seq)]
	}
	mis := lateMispredicts(p, targets, nil)
	if mis > 10 {
		t.Errorf("%d late mispredicts on repeating target sequence, want <= 10", mis)
	}
}

func TestFirstSightHasNoPrediction(t *testing.T) {
	p := New(DefaultConfig())
	if _, ok := p.Predict(0x500); ok {
		t.Error("prediction available before any observation")
	}
	p.Update(0x500, 0x9000)
	pred, ok := p.Predict(0x500)
	if !ok || pred != 0x9000 {
		t.Errorf("Predict = %#x/%v, want 0x9000/true", pred, ok)
	}
}

func TestLongPeriodicPattern(t *testing.T) {
	// A fixed period-24 target sequence drawn from only 3 values: short
	// histories are ambiguous (every value recurs many times per period),
	// but longer-history tables see exactly repeating patterns and
	// disambiguate. Note TAGE-family predictors cannot learn correlations
	// buried in *random* noise history (each pattern is then unique) —
	// that is the perceptron predictors' advantage — so this test uses a
	// noise-free periodic stream.
	p := New(DefaultConfig())
	vals := []uint64{0x1000, 0x3000, 0x5000}
	pattern := make([]uint64, 24)
	rng := rand.New(rand.NewSource(3))
	for i := range pattern {
		pattern[i] = vals[rng.Intn(len(vals))]
	}
	misLate := 0
	const n = 20000
	for i := 0; i < n; i++ {
		tgt := pattern[i%len(pattern)]
		pred, ok := p.Predict(0x666)
		if (!ok || pred != tgt) && i > n*3/4 {
			misLate++
		}
		p.Update(0x666, tgt)
	}
	if misLate > n/4/10 {
		t.Errorf("%d late mispredicts out of %d on period-24 sequence", misLate, n/4)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		p := New(DefaultConfig())
		rng := rand.New(rand.NewSource(13))
		out := make([]uint64, 0, 500)
		for i := 0; i < 500; i++ {
			p.OnCond(0xCC, rng.Intn(2) == 0)
			pc := uint64(0x100 + rng.Intn(3)*0x40)
			pred, ok := p.Predict(pc)
			if !ok {
				pred = ^uint64(0)
			}
			out = append(out, pred)
			p.Update(pc, uint64(0x1000*(1+rng.Intn(4))))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction %d differs between identical runs", i)
		}
	}
}

func TestManyBranchesCoexist(t *testing.T) {
	p := New(DefaultConfig())
	// 200 monomorphic branches must all become predictable.
	misLate := 0
	for round := 0; round < 50; round++ {
		for b := 0; b < 200; b++ {
			pc := uint64(0x10000 + b*64)
			tgt := uint64(0x900000 + b*0x1000)
			pred, ok := p.Predict(pc)
			if (!ok || pred != tgt) && round >= 40 {
				misLate++
			}
			p.Update(pc, tgt)
		}
	}
	if misLate > 20 {
		t.Errorf("%d late mispredicts across 200 monomorphic branches, want <= 20", misLate)
	}
}

func TestStorageBudgetNearPaper(t *testing.T) {
	p := New(DefaultConfig())
	kb := float64(p.StorageBits()) / 8192
	if kb < 50 || kb > 80 {
		t.Errorf("storage = %.2f KB, want ~64 KB ballpark (50-80)", kb)
	}
}

func TestUpdateWithoutPredictIsSafe(t *testing.T) {
	p := New(DefaultConfig())
	for i := 0; i < 50; i++ {
		p.Update(0x900, 0x1234000)
	}
	pred, ok := p.Predict(0x900)
	if !ok || pred != 0x1234000 {
		t.Errorf("Predict = %#x/%v, want 0x1234000/true", pred, ok)
	}
}

func TestOnOtherAndName(t *testing.T) {
	p := New(DefaultConfig())
	if p.Name() != "ittage" {
		t.Errorf("Name = %q", p.Name())
	}
	p.OnOther(0x1, 0x2, trace.Return)
	p.OnOther(0x1, 0x2, trace.DirectCall)
}

func TestLengthsAccessorCopies(t *testing.T) {
	p := New(DefaultConfig())
	l := p.Lengths()
	l[0] = 9999
	if p.Lengths()[0] == 9999 {
		t.Error("Lengths exposes internal state")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(Config) Config{
		func(c Config) Config { c.BaseEntries = 0; return c },
		func(c Config) Config { c.Tables = 0; return c },
		func(c Config) Config { c.MinHist = 0; return c },
		func(c Config) Config { c.MaxHist = c.MinHist; return c },
		func(c Config) Config { c.MaxHist = c.HistBits; return c },
		func(c Config) Config { c.TagBitsMin = 2; return c },
		func(c Config) Config { c.ResetPeriod = 0; return c },
	}
	for i, mutate := range bad {
		if err := mutate(DefaultConfig()).Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
}
