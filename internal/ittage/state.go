package ittage

import (
	"fmt"
	"io"

	"blbp/internal/region"
	"blbp/internal/snapshot"
)

// Snapshot section kinds of the ITTAGE container.
const (
	snapName   = "ittage"
	secTables  = "tables"
	secBase    = "base"
	secRegions = "regions"
	secGhist   = "ghist"
	secMisc    = "misc"
	maxCtr     = 3
	maxUseful  = 3
	phistMask  = 0xffff
	altCtrMin  = -8
	altCtrMax  = 7
)

// EncodeState implements predictor.Snapshotter: the trained state framed in
// a BLBPSNP1 container under name "ittage" and the configuration
// fingerprint. The prediction cache (provider/alt bookkeeping for the
// matching Update) is not serialized; restore flushes it and the next
// Predict recomputes it from the restored tables, through the exact code
// path Update's out-of-contract recompute uses.
func (p *ITTAGE) EncodeState(w io.Writer) error {
	c := snapshot.NewContainer(snapName, snapshot.Fingerprint(p.cfg))
	te := c.Section(secTables)
	te.Int(len(p.tables))
	for _, tbl := range p.tables {
		te.Int(len(tbl))
		for i := range tbl {
			en := &tbl[i]
			te.U64(en.tag)
			te.Int(en.ref.Index)
			te.U32(en.ref.Gen)
			te.U64(en.offset)
			te.U8(en.ctr)
			te.U8(en.u)
			te.Bool(en.valid)
		}
	}
	be := c.Section(secBase)
	be.Int(len(p.base))
	for i := range p.base {
		en := &p.base[i]
		be.Int(en.ref.Index)
		be.U32(en.ref.Gen)
		be.U64(en.offset)
		be.U8(en.hyst)
		be.Bool(en.valid)
	}
	p.regions.EncodeState(c.Section(secRegions))
	p.ghist.EncodeState(c.Section(secGhist))
	me := c.Section(secMisc)
	me.U64(p.phist)
	me.I8(p.useAltOnNA)
	me.I64(p.updates)
	me.U64(p.rng)
	return c.EncodeTo(w)
}

// RestoreState implements predictor.Snapshotter, reinstating state captured
// by EncodeState into a predictor built from the same configuration. On
// error the predictor's state is unspecified: discard it or Reset.
func (p *ITTAGE) RestoreState(r io.Reader) error {
	dc, err := snapshot.ReadContainer(r, snapName, snapshot.Fingerprint(p.cfg))
	if err != nil {
		return err
	}

	d, err := dc.Section(secTables)
	if err != nil {
		return err
	}
	if n := d.Int(); d.Err() == nil && n != len(p.tables) {
		return fmt.Errorf("%w: %d tagged tables, have %d", snapshot.ErrMismatch, n, len(p.tables))
	}
	tables := make([][]taggedEntry, len(p.tables))
	for ti := range p.tables {
		if n := d.Int(); d.Err() == nil && n != len(p.tables[ti]) {
			return fmt.Errorf("%w: table %d holds %d entries, have %d", snapshot.ErrMismatch, ti, n, len(p.tables[ti]))
		}
		tbl := make([]taggedEntry, len(p.tables[ti]))
		tagMask := uint64(1)<<uint(p.tagBits[ti]) - 1
		for i := range tbl {
			en := taggedEntry{
				tag:    d.U64(),
				ref:    region.Ref{Index: d.Int(), Gen: d.U32()},
				offset: d.U64(),
				ctr:    d.U8(),
				u:      d.U8(),
				valid:  d.Bool(),
			}
			if d.Err() != nil {
				break
			}
			if en.tag&^tagMask != 0 {
				return fmt.Errorf("%w: table %d tag %#x wider than %d bits", snapshot.ErrCorrupt, ti, en.tag, p.tagBits[ti])
			}
			if en.ctr > maxCtr || en.u > maxUseful {
				return fmt.Errorf("%w: table %d counters (%d,%d) out of range", snapshot.ErrCorrupt, ti, en.ctr, en.u)
			}
			if en.ref.Index < 0 || en.ref.Index >= p.cfg.RegionEntries {
				return fmt.Errorf("%w: region index %d outside array", snapshot.ErrCorrupt, en.ref.Index)
			}
			tbl[i] = en
		}
		tables[ti] = tbl
	}
	if err := d.Finish(); err != nil {
		return err
	}

	if d, err = dc.Section(secBase); err != nil {
		return err
	}
	if n := d.Int(); d.Err() == nil && n != len(p.base) {
		return fmt.Errorf("%w: base table holds %d entries, have %d", snapshot.ErrMismatch, n, len(p.base))
	}
	base := make([]baseEntry, len(p.base))
	for i := range base {
		en := baseEntry{
			ref:    region.Ref{Index: d.Int(), Gen: d.U32()},
			offset: d.U64(),
			hyst:   d.U8(),
			valid:  d.Bool(),
		}
		if d.Err() != nil {
			break
		}
		if en.hyst > 1 {
			return fmt.Errorf("%w: base hysteresis %d out of range", snapshot.ErrCorrupt, en.hyst)
		}
		if en.ref.Index < 0 || en.ref.Index >= p.cfg.RegionEntries {
			return fmt.Errorf("%w: region index %d outside array", snapshot.ErrCorrupt, en.ref.Index)
		}
		base[i] = en
	}
	if err := d.Finish(); err != nil {
		return err
	}

	if d, err = dc.Section(secRegions); err != nil {
		return err
	}
	if err := p.regions.RestoreState(d); err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}

	if d, err = dc.Section(secGhist); err != nil {
		return err
	}
	if err := p.ghist.RestoreState(d); err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}

	if d, err = dc.Section(secMisc); err != nil {
		return err
	}
	phist := d.U64()
	useAlt := d.I8()
	updates := d.I64()
	rng := d.U64()
	if err := d.Finish(); err != nil {
		return err
	}
	if phist&^uint64(phistMask) != 0 {
		return fmt.Errorf("%w: path history %#x wider than 16 bits", snapshot.ErrCorrupt, phist)
	}
	if useAlt < altCtrMin || useAlt > altCtrMax {
		return fmt.Errorf("%w: useAltOnNA %d out of range", snapshot.ErrCorrupt, useAlt)
	}
	if updates < 0 {
		return fmt.Errorf("%w: negative update count", snapshot.ErrCorrupt)
	}

	for ti := range p.tables {
		copy(p.tables[ti], tables[ti])
	}
	copy(p.base, base)
	p.phist = phist
	p.useAltOnNA = useAlt
	p.updates = updates
	p.rng = rng
	p.lastPC, p.lastOK = 0, false
	return nil
}
