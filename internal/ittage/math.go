package ittage

import "math"

// mathPow isolates the single stdlib math dependency used when computing
// geometric history lengths at construction time.
func mathPow(base, exp float64) float64 { return math.Pow(base, exp) }
