// Package ittage implements Seznec's ITTAGE indirect target predictor (the
// 64-Kbyte configuration from the JWAC-2 championship, which the paper uses
// as its state-of-the-art baseline). ITTAGE keeps a tagless base target
// table plus several partially-tagged tables indexed by geometrically
// increasing global-history lengths; the matching table with the longest
// history provides the prediction, with confidence and usefulness counters
// steering updates and allocation.
package ittage

import (
	"fmt"

	"blbp/internal/hashing"
	"blbp/internal/history"
	"blbp/internal/region"
	"blbp/internal/threshold"
	"blbp/internal/trace"
)

// Config parameterizes an ITTAGE predictor.
type Config struct {
	// BaseEntries sizes the tagless base table.
	BaseEntries int
	// Tables is the number of tagged tables.
	Tables int
	// TableEntries is the entry count per tagged table.
	TableEntries int
	// MinHist and MaxHist bound the geometric history lengths.
	MinHist int
	MaxHist int
	// TagBitsMin is the tag width of the shortest-history table; width
	// grows by one bit every other table, as in Seznec's submissions.
	TagBitsMin int
	// HistBits is the global history capacity (>= MaxHist).
	HistBits int
	// RegionEntries and OffsetBits size the shared region-compressed
	// target representation.
	RegionEntries int
	OffsetBits    int
	// ResetPeriod is the number of updates between gradual usefulness
	// resets.
	ResetPeriod int
}

// DefaultConfig returns a ~64 KB ITTAGE comparable to the paper's Table 2
// baseline.
func DefaultConfig() Config {
	return Config{
		BaseEntries:   4096,
		Tables:        8,
		TableEntries:  1024,
		MinHist:       4,
		MaxHist:       630,
		TagBitsMin:    9,
		HistBits:      631,
		RegionEntries: 128,
		OffsetBits:    20,
		ResetPeriod:   256 * 1024,
	}
}

// Validate checks configuration consistency.
func (c Config) Validate() error {
	if c.BaseEntries <= 0 || c.TableEntries <= 0 || c.Tables <= 0 {
		return fmt.Errorf("ittage: table geometry must be positive")
	}
	if c.MinHist <= 0 || c.MaxHist <= c.MinHist || c.MaxHist >= c.HistBits {
		return fmt.Errorf("ittage: history lengths %d..%d inconsistent with %d history bits", c.MinHist, c.MaxHist, c.HistBits)
	}
	if c.TagBitsMin < 6 || c.TagBitsMin > 16 {
		return fmt.Errorf("ittage: TagBitsMin=%d out of range", c.TagBitsMin)
	}
	if c.ResetPeriod <= 0 {
		return fmt.Errorf("ittage: ResetPeriod must be positive")
	}
	return nil
}

type taggedEntry struct {
	tag    uint64
	ref    region.Ref
	offset uint64
	ctr    uint8 // confidence 0..3
	u      uint8 // usefulness 0..3
	valid  bool
}

type baseEntry struct {
	ref    region.Ref
	offset uint64
	hyst   uint8 // 1-bit hysteresis
	valid  bool
}

// ITTAGE is the predictor.
type ITTAGE struct {
	cfg      Config
	lens     []int // geometric history length per tagged table
	tagBits  []int
	tables   [][]taggedEntry
	base     []baseEntry
	regions  *region.Array
	ghist    *history.FoldedSet
	idxFolds []history.FoldID // per-table index fold over [0, lens[i]-1]
	tagFolds []history.FoldID // per-table tag fold over the same interval
	phist    uint64           // 16-bit path history

	useAltOnNA int8 // counter choosing altpred for newly allocated entries

	// Prediction-time state cached for Update.
	lastPC       uint64
	lastOK       bool
	provider     int // table index, -1 = base, -2 = none
	providerIdx  int
	altProvider  int
	altIdx       int
	lastPred     uint64
	lastPredOK   bool
	lastAltPred  uint64
	lastAltOK    bool
	lastUsedProv bool // final prediction came from provider (vs alt)

	updates int64
	rng     uint64 // deterministic xorshift for allocation choice
}

// New constructs an ITTAGE predictor; it panics on invalid configuration.
func New(cfg Config) *ITTAGE {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	lens := geometricLengths(cfg.MinHist, cfg.MaxHist, cfg.Tables)
	tables := make([][]taggedEntry, cfg.Tables)
	tagBits := make([]int, cfg.Tables)
	ghist := history.NewFoldedSet(cfg.HistBits)
	idxFolds := make([]history.FoldID, cfg.Tables)
	tagFolds := make([]history.FoldID, cfg.Tables)
	for i := range tables {
		tables[i] = make([]taggedEntry, cfg.TableEntries)
		tb := cfg.TagBitsMin + i/2
		if tb > 15 {
			tb = 15
		}
		tagBits[i] = tb
		idxFolds[i] = ghist.Register(0, lens[i]-1, 22)
		tagFolds[i] = ghist.Register(0, lens[i]-1, 17)
	}
	return &ITTAGE{
		cfg:      cfg,
		lens:     lens,
		tagBits:  tagBits,
		tables:   tables,
		base:     make([]baseEntry, cfg.BaseEntries),
		regions:  region.New(cfg.RegionEntries, cfg.OffsetBits),
		ghist:    ghist,
		idxFolds: idxFolds,
		tagFolds: tagFolds,
		rng:      0x9e3779b97f4a7c15,
	}
}

// geometricLengths returns n history lengths from min to max in a geometric
// series (Seznec's GEHL formula), strictly increasing.
func geometricLengths(min, max, n int) []int {
	lens := make([]int, n)
	if n == 1 {
		lens[0] = min
		return lens
	}
	ratio := pow(float64(max)/float64(min), 1/float64(n-1))
	prev := 0
	v := float64(min)
	for i := 0; i < n; i++ {
		l := int(v + 0.5)
		if l <= prev {
			l = prev + 1
		}
		lens[i] = l
		prev = l
		v *= ratio
	}
	if lens[n-1] > max {
		lens[n-1] = max
	}
	return lens
}

// pow is a minimal float power for positive bases (avoids importing math in
// the hot package for one call... but math is stdlib; keep explicit).
func pow(base, exp float64) float64 {
	// Use the identity base^exp = e^(exp·ln base) via the stdlib.
	return mathPow(base, exp)
}

// Name implements predictor.Indirect.
func (p *ITTAGE) Name() string { return "ittage" }

// Lengths exposes the geometric history lengths (diagnostics/tests).
func (p *ITTAGE) Lengths() []int {
	out := make([]int, len(p.lens))
	copy(out, p.lens)
	return out
}

func (p *ITTAGE) nextRand() uint64 {
	p.rng ^= p.rng << 13
	p.rng ^= p.rng >> 7
	p.rng ^= p.rng << 17
	return p.rng
}

func (p *ITTAGE) tableIndex(i int, pc uint64) int {
	fold := p.ghist.Value(p.idxFolds[i])
	h := hashing.Combine(hashing.Mix64(pc)+uint64(i)<<48, fold^p.phist)
	return hashing.Index(h, p.cfg.TableEntries)
}

func (p *ITTAGE) tableTag(i int, pc uint64) uint64 {
	fold := p.ghist.Value(p.tagFolds[i])
	h := hashing.Combine(hashing.Mix64(pc)*3+uint64(i)<<40, fold*7+p.phist)
	return hashing.Tag(h, p.tagBits[i])
}

func (p *ITTAGE) baseIndex(pc uint64) int {
	return hashing.Index(hashing.Mix64(pc), p.cfg.BaseEntries)
}

// Predict implements predictor.Indirect.
func (p *ITTAGE) Predict(pc uint64) (uint64, bool) {
	p.lastPC, p.lastOK = pc, true
	p.provider, p.altProvider = -2, -2
	p.lastPredOK, p.lastAltOK = false, false

	// Find the two longest-history tag matches.
	for i := p.cfg.Tables - 1; i >= 0; i-- {
		idx := p.tableIndex(i, pc)
		e := &p.tables[i][idx]
		if !e.valid || e.tag != p.tableTag(i, pc) {
			continue
		}
		if _, ok := p.regions.Resolve(e.ref, e.offset); !ok {
			e.valid = false // region evicted under it
			continue
		}
		if p.provider == -2 {
			p.provider, p.providerIdx = i, idx
		} else {
			p.altProvider, p.altIdx = i, idx
			break
		}
	}
	// Alt defaults to the base table when no second tagged match exists.
	if p.altProvider == -2 {
		bi := p.baseIndex(pc)
		if b := &p.base[bi]; b.valid {
			if tgt, ok := p.regions.Resolve(b.ref, b.offset); ok {
				p.altProvider, p.altIdx = -1, bi
				p.lastAltPred, p.lastAltOK = tgt, true
			} else {
				b.valid = false
			}
		}
	} else {
		e := &p.tables[p.altProvider][p.altIdx]
		if tgt, ok := p.regions.Resolve(e.ref, e.offset); ok {
			p.lastAltPred, p.lastAltOK = tgt, true
		}
	}

	if p.provider == -2 {
		// No tagged match: fall back to base (already captured as alt) or
		// report no prediction.
		bi := p.baseIndex(pc)
		if b := &p.base[bi]; b.valid {
			if tgt, ok := p.regions.Resolve(b.ref, b.offset); ok {
				p.provider, p.providerIdx = -1, bi
				p.lastPred, p.lastPredOK = tgt, true
				p.lastUsedProv = true
				return tgt, true
			}
			b.valid = false
		}
		p.lastUsedProv = false
		return 0, false
	}

	e := &p.tables[p.provider][p.providerIdx]
	tgt, _ := p.regions.Resolve(e.ref, e.offset)
	p.lastPred, p.lastPredOK = tgt, true
	// Newly allocated entries (weak confidence) may be overridden by the
	// alternate prediction when experience says alt is usually right.
	if e.ctr == 0 && p.useAltOnNA >= 0 && p.lastAltOK {
		p.lastUsedProv = false
		return p.lastAltPred, true
	}
	p.lastUsedProv = true
	return tgt, true
}

// Update implements predictor.Indirect.
func (p *ITTAGE) Update(pc, actual uint64) {
	if !p.lastOK || p.lastPC != pc {
		p.Predict(pc) // out-of-contract: recompute provider state
	}
	p.lastOK = false
	p.updates++

	finalPred, finalOK := p.lastPred, p.lastPredOK
	if !p.lastUsedProv {
		finalPred, finalOK = p.lastAltPred, p.lastAltOK
	}
	mispredicted := !finalOK || finalPred != actual

	// Track whether alt beats a newly-allocated provider.
	if p.provider >= 0 {
		e := &p.tables[p.provider][p.providerIdx]
		if e.ctr == 0 && p.lastAltOK && p.lastPredOK && p.lastAltPred != p.lastPred {
			switch {
			case p.lastAltPred == actual:
				p.useAltOnNA = threshold.SatInc8(p.useAltOnNA, 7)
			case p.lastPred == actual:
				p.useAltOnNA = threshold.SatDec8(p.useAltOnNA, -8)
			}
		}
	}

	// Provider update.
	switch {
	case p.provider >= 0:
		e := &p.tables[p.provider][p.providerIdx]
		if p.lastPredOK && p.lastPred == actual {
			e.ctr = threshold.SatIncU8(e.ctr, 3)
		} else {
			if e.ctr > 0 {
				e.ctr = threshold.SatDecU8(e.ctr, 0)
			} else {
				ref, off := p.regions.Acquire(actual)
				e.ref, e.offset = ref, off
			}
		}
		// Usefulness: provider differed from alt and was right/wrong.
		if p.lastPredOK && (!p.lastAltOK || p.lastAltPred != p.lastPred) {
			if p.lastPred == actual {
				e.u = threshold.SatIncU8(e.u, 3)
			} else {
				e.u = threshold.SatDecU8(e.u, 0)
			}
		}
	case p.provider == -1:
		b := &p.base[p.providerIdx]
		if p.lastPredOK && p.lastPred == actual {
			b.hyst = 1
		} else if b.hyst > 0 {
			b.hyst = 0
		} else {
			ref, off := p.regions.Acquire(actual)
			b.ref, b.offset = ref, off
			b.valid = true
		}
	}

	// Base fill: keep the base table warm even when a tagged table
	// provides, so altpred has something to offer.
	bi := p.baseIndex(pc)
	if b := &p.base[bi]; !b.valid {
		ref, off := p.regions.Acquire(actual)
		p.base[bi] = baseEntry{ref: ref, offset: off, hyst: 0, valid: true}
	} else if p.provider != -1 {
		if tgt, ok := p.regions.Resolve(b.ref, b.offset); !ok || tgt != actual {
			if b.hyst > 0 {
				b.hyst = 0
			} else {
				ref, off := p.regions.Acquire(actual)
				b.ref, b.offset = ref, off
			}
		} else {
			b.hyst = 1
		}
	}

	// Allocation on misprediction into a longer-history table.
	if mispredicted && p.provider < p.cfg.Tables-1 {
		p.allocate(pc, actual)
	}

	// Gradual usefulness reset.
	if p.updates%int64(p.cfg.ResetPeriod) == 0 {
		phase := (p.updates / int64(p.cfg.ResetPeriod)) & 1
		var mask uint8 = 0b01
		if phase == 1 {
			mask = 0b10
		}
		for _, tbl := range p.tables {
			for j := range tbl {
				tbl[j].u &^= mask
			}
		}
	}

	// History update: indirect branches fold hashed target bits into
	// global history and the path register.
	p.ghist.ShiftBits(hashing.Mix64(actual), 2)
	p.phist = (p.phist<<1 ^ pc>>2) & 0xFFFF
}

// allocate installs the actual target in up to one table with history
// longer than the provider's, preferring entries with zero usefulness and
// decaying usefulness when none is available (Seznec's allocation rule).
func (p *ITTAGE) allocate(pc, actual uint64) {
	start := p.provider + 1
	if p.provider < 0 {
		start = 0
	}
	// Randomize the starting point a little so allocations spread across
	// tables (matches the reference implementation's behaviour).
	if avail := p.cfg.Tables - start; avail > 1 {
		r := p.nextRand()
		if r&3 == 0 { // skip one table 25% of the time
			start++
		}
	}
	for i := start; i < p.cfg.Tables; i++ {
		idx := p.tableIndex(i, pc)
		e := &p.tables[i][idx]
		if !e.valid || e.u == 0 {
			ref, off := p.regions.Acquire(actual)
			p.tables[i][idx] = taggedEntry{
				tag:    p.tableTag(i, pc),
				ref:    ref,
				offset: off,
				ctr:    0,
				u:      0,
				valid:  true,
			}
			return
		}
	}
	// Nothing allocatable: decay usefulness on the candidate entries.
	for i := start; i < p.cfg.Tables; i++ {
		idx := p.tableIndex(i, pc)
		if e := &p.tables[i][idx]; e.valid {
			e.u = threshold.SatDecU8(e.u, 0)
		}
	}
}

// OnCond implements predictor.Indirect.
func (p *ITTAGE) OnCond(pc uint64, taken bool) {
	p.ghist.Shift(taken)
	p.phist = (p.phist<<1 ^ pc>>2) & 0xFFFF
	p.lastOK = false
}

// OnOther implements predictor.Indirect: unconditional transfers contribute
// path history.
func (p *ITTAGE) OnOther(pc, target uint64, bt trace.BranchType) {
	p.phist = (p.phist<<1 ^ pc>>2) & 0xFFFF
	p.lastOK = false
}

// OnCondSpan implements predictor.SpanFeeder: a whole conditional segment
// folds into the global and path histories through one call — identical to
// OnCond per record, with the interface dispatch amortized over the run.
func (p *ITTAGE) OnCondSpan(c *trace.Columns, start, end int) {
	p.ghist.ShiftRun(c.TakenWords(), start, end)
	pc := c.PC()
	phist := p.phist
	for i := start; i < end; i++ {
		phist = (phist<<1 ^ pc[i]>>2) & 0xFFFF
	}
	p.phist = phist
	p.lastOK = false
}

// OnOtherSpan implements predictor.SpanFeeder: only the path history
// advances, one whole segment per call.
func (p *ITTAGE) OnOtherSpan(c *trace.Columns, start, end int, bt trace.BranchType) {
	pc := c.PC()
	phist := p.phist
	for i := start; i < end; i++ {
		phist = (phist<<1 ^ pc[i]>>2) & 0xFFFF
	}
	p.phist = phist
	p.lastOK = false
}

// StorageBits implements predictor.Indirect.
func (p *ITTAGE) StorageBits() int {
	regionIndexBits := log2ceil(p.cfg.RegionEntries)
	bits := 0
	for i := range p.tables {
		perEntry := 1 + p.tagBits[i] + 2 + 2 + regionIndexBits + p.cfg.OffsetBits
		bits += p.cfg.TableEntries * perEntry
	}
	bits += p.cfg.BaseEntries * (1 + 1 + regionIndexBits + p.cfg.OffsetBits)
	bits += p.cfg.RegionEntries * (44 - p.cfg.OffsetBits + log2ceil(p.cfg.RegionEntries))
	bits += p.cfg.HistBits + 16 + 4
	return bits
}

func log2ceil(n int) int {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}
