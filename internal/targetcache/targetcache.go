// Package targetcache implements Chang, Hao & Patt's Target Cache (ISCA
// 1997), the classical history-indexed indirect predictor the paper's
// related-work section builds on: a tagged cache indexed by the XOR of the
// branch address with a register of recent target-history bits, so different
// target histories of one branch map to different entries.
//
// It is included as an additional reference point between the last-taken
// BTB and the modern multi-table predictors (ITTAGE, BLBP).
package targetcache

import (
	"blbp/internal/hashing"
	"blbp/internal/trace"
)

// Config parameterizes a target cache.
type Config struct {
	// Entries is the cache size (power of two recommended).
	Entries int
	// TagBits is the partial tag width (0 = tagless).
	TagBits int
	// HistBits is the width of the target-history register.
	HistBits int
	// TargetBitsPerUpdate is how many hashed target bits each resolved
	// indirect branch shifts into the history register.
	TargetBitsPerUpdate int
	// IncludeCond also records conditional outcomes in the history
	// register (Chang et al.'s pattern-based variant).
	IncludeCond bool
}

// DefaultConfig returns a ~64 KB-class target cache: 8K entries with 9-bit
// tags and a 16-bit target history.
func DefaultConfig() Config {
	return Config{
		Entries:             8192,
		TagBits:             9,
		HistBits:            16,
		TargetBitsPerUpdate: 2,
		IncludeCond:         true,
	}
}

type entry struct {
	tag    uint64
	target uint64
	valid  bool
}

// Cache is the target cache predictor.
type Cache struct {
	cfg     Config
	entries []entry
	hist    uint64
	histMax uint64
}

// New constructs a target cache; it panics on invalid configuration.
func New(cfg Config) *Cache {
	if cfg.Entries <= 0 {
		panic("targetcache: Entries must be positive")
	}
	if cfg.HistBits <= 0 || cfg.HistBits > 63 {
		panic("targetcache: HistBits out of range")
	}
	if cfg.TagBits < 0 || cfg.TagBits > 32 {
		panic("targetcache: TagBits out of range")
	}
	if cfg.TargetBitsPerUpdate <= 0 || cfg.TargetBitsPerUpdate > 8 {
		panic("targetcache: TargetBitsPerUpdate out of range")
	}
	return &Cache{
		cfg:     cfg,
		entries: make([]entry, cfg.Entries),
		histMax: 1<<uint(cfg.HistBits) - 1,
	}
}

// Name implements predictor.Indirect.
func (c *Cache) Name() string { return "targetcache" }

func (c *Cache) indexAndTag(pc uint64) (int, uint64) {
	h := hashing.Combine(hashing.Mix64(pc), c.hist)
	return hashing.Index(h, c.cfg.Entries), hashing.Tag(h, c.cfg.TagBits)
}

// Predict implements predictor.Indirect.
func (c *Cache) Predict(pc uint64) (uint64, bool) {
	idx, tag := c.indexAndTag(pc)
	e := &c.entries[idx]
	if !e.valid || (c.cfg.TagBits > 0 && e.tag != tag) {
		return 0, false
	}
	return e.target, true
}

// Update implements predictor.Indirect: install the resolved target under
// the prediction-time history, then advance the history register.
func (c *Cache) Update(pc, actual uint64) {
	idx, tag := c.indexAndTag(pc)
	c.entries[idx] = entry{tag: tag, target: actual, valid: true}
	c.shift(hashing.Mix64(actual), c.cfg.TargetBitsPerUpdate)
}

func (c *Cache) shift(bits uint64, n int) {
	for i := 0; i < n; i++ {
		c.hist = (c.hist<<1 | bits>>uint(i)&1) & c.histMax
	}
}

// OnCond implements predictor.Indirect.
func (c *Cache) OnCond(pc uint64, taken bool) {
	if !c.cfg.IncludeCond {
		return
	}
	b := uint64(0)
	if taken {
		b = 1
	}
	c.hist = (c.hist<<1 | b) & c.histMax
}

// OnOther implements predictor.Indirect.
func (c *Cache) OnOther(pc, target uint64, bt trace.BranchType) {}

// StorageBits implements predictor.Indirect.
func (c *Cache) StorageBits() int {
	return c.cfg.Entries*(1+c.cfg.TagBits+44) + c.cfg.HistBits
}
