package targetcache

import (
	"math/rand"
	"testing"

	"blbp/internal/trace"
)

func TestMonomorphicConverges(t *testing.T) {
	c := New(DefaultConfig())
	mis := 0
	for i := 0; i < 500; i++ {
		pred, ok := c.Predict(0x400)
		if (!ok || pred != 0x9000) && i >= 100 {
			mis++
		}
		c.Update(0x400, 0x9000)
	}
	if mis != 0 {
		t.Errorf("%d late mispredicts on monomorphic branch", mis)
	}
}

func TestHistoryDisambiguatesTargets(t *testing.T) {
	// A,B alternation: the target-history register differs between the
	// two phases, so the cache learns both mappings.
	c := New(DefaultConfig())
	mis := 0
	for i := 0; i < 2000; i++ {
		tgt := uint64(0x1000)
		if i%2 == 1 {
			tgt = 0x3000
		}
		pred, ok := c.Predict(0x700)
		if (!ok || pred != tgt) && i >= 1500 {
			mis++
		}
		c.Update(0x700, tgt)
	}
	if mis > 5 {
		t.Errorf("%d late mispredicts on alternating targets, want <= 5", mis)
	}
}

func TestCondHistoryCorrelation(t *testing.T) {
	c := New(DefaultConfig())
	rng := rand.New(rand.NewSource(1))
	mis := 0
	const n = 4000
	for i := 0; i < n; i++ {
		cond := rng.Intn(2) == 0
		c.OnCond(0xC0, cond)
		tgt := uint64(0x1000)
		if cond {
			tgt = 0x3000
		}
		pred, ok := c.Predict(0x800)
		if (!ok || pred != tgt) && i >= n*3/4 {
			mis++
		}
		c.Update(0x800, tgt)
	}
	if mis > n/4/20 {
		t.Errorf("%d late mispredicts out of %d on condition-correlated targets", mis, n/4)
	}
}

func TestIncludeCondOff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IncludeCond = false
	c := New(cfg)
	before, _ := c.Predict(0x10)
	c.OnCond(0x20, true)
	after, _ := c.Predict(0x10)
	if before != after {
		t.Error("conditional outcome changed history despite IncludeCond=false")
	}
}

func TestColdMiss(t *testing.T) {
	c := New(DefaultConfig())
	if _, ok := c.Predict(0x123); ok {
		t.Error("hit on cold cache")
	}
}

func TestOnOtherNoop(t *testing.T) {
	c := New(DefaultConfig())
	c.Update(0x10, 0x5000)
	p1, _ := c.Predict(0x10)
	c.OnOther(0x20, 0x30, trace.Return)
	p2, _ := c.Predict(0x10)
	if p1 != p2 {
		t.Error("OnOther disturbed state")
	}
}

func TestStorageBits(t *testing.T) {
	c := New(DefaultConfig())
	want := 8192*(1+9+44) + 16
	if got := c.StorageBits(); got != want {
		t.Errorf("StorageBits = %d, want %d", got, want)
	}
}

func TestName(t *testing.T) {
	if New(DefaultConfig()).Name() != "targetcache" {
		t.Error("Name")
	}
}

func TestConstructorPanics(t *testing.T) {
	bad := []Config{
		{Entries: 0, HistBits: 8, TargetBitsPerUpdate: 2},
		{Entries: 8, HistBits: 0, TargetBitsPerUpdate: 2},
		{Entries: 8, HistBits: 64, TargetBitsPerUpdate: 2},
		{Entries: 8, HistBits: 8, TagBits: -1, TargetBitsPerUpdate: 2},
		{Entries: 8, HistBits: 8, TargetBitsPerUpdate: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d accepted", i)
				}
			}()
			New(cfg)
		}()
	}
}
