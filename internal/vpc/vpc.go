// Package vpc implements Kim et al.'s Virtual Program Counter predictor
// (ISCA 2007), the paper's hardware-devirtualization baseline. VPC treats a
// polymorphic indirect branch with T targets as T virtual direct branches:
// it probes the conditional branch predictor with a sequence of virtual PCs,
// and the first virtual branch predicted taken supplies its BTB target as
// the prediction.
//
// As in the paper's evaluation (§4.2), VPC shares one central conditional
// predictor with normal conditional branches — here the hashed perceptron —
// so heavy indirect traffic measurably perturbs conditional accuracy. Pair a
// VPC instance with the same *cond.HashedPerceptron the engine uses for
// conditional branches; VPC's OnCond/OnOther are deliberate no-ops to avoid
// double-counting history the engine already routed to that predictor.
package vpc

import (
	"blbp/internal/btb"
	"blbp/internal/cond"
	"blbp/internal/hashing"
	"blbp/internal/history"
	"blbp/internal/trace"
)

// Config parameterizes a VPC predictor.
type Config struct {
	// MaxIter bounds the virtual iteration walk (Kim et al. explore
	// 10-12; 12 by default).
	MaxIter int
	// BTB is the target-store geometry (32K-entry direct-mapped in the
	// paper's Table 2).
	BTB btb.Config
}

// DefaultConfig returns the paper's VPC setup.
func DefaultConfig() Config {
	return Config{MaxIter: 12, BTB: btb.Default32K()}
}

// VPC is the predictor.
type VPC struct {
	cfg Config
	hp  *cond.HashedPerceptron
	btb *btb.BTB

	// Prediction-time state for Update.
	lastPC uint64
	lastOK bool

	scratchVPCA []uint64
	snapBuf     history.FoldedSnapshot // reused across predictions
}

// New constructs a VPC predictor over the given shared conditional
// predictor.
func New(cfg Config, hp *cond.HashedPerceptron) *VPC {
	if cfg.MaxIter <= 0 || cfg.MaxIter > 64 {
		panic("vpc: MaxIter out of range")
	}
	if hp == nil {
		panic("vpc: nil conditional predictor")
	}
	return &VPC{
		cfg:         cfg,
		hp:          hp,
		btb:         btb.New(cfg.BTB),
		scratchVPCA: make([]uint64, 0, cfg.MaxIter),
	}
}

// Name implements predictor.Indirect.
func (v *VPC) Name() string { return "vpc" }

// vpcAddr returns the virtual PC for iteration i (1-based); iteration 1 is
// the real branch PC.
func (v *VPC) vpcAddr(pc uint64, iter int) uint64 {
	if iter == 1 {
		return pc
	}
	return hashing.Combine(pc, uint64(iter)*0x8c6d)
}

// Predict implements predictor.Indirect: walk virtual PCs, asking the
// shared conditional predictor whether each virtual branch is taken; the
// first taken virtual branch with a BTB target wins. Global history is
// speculatively extended with the virtual not-taken outcomes during the walk
// and rolled back before returning.
func (v *VPC) Predict(pc uint64) (uint64, bool) {
	v.lastPC, v.lastOK = pc, true
	v.hp.HistSnapshotInto(&v.snapBuf)
	defer v.hp.HistRestore(&v.snapBuf)
	for iter := 1; iter <= v.cfg.MaxIter; iter++ {
		vpca := v.vpcAddr(pc, iter)
		target, hit := v.btb.Lookup(vpca)
		if !hit {
			// No more stored targets along the virtual chain.
			return 0, false
		}
		if v.hp.Predict(vpca) {
			return target, true
		}
		v.hp.SpecShift(false)
	}
	return 0, false
}

// Update implements predictor.Indirect: replay the virtual walk, training
// the shared conditional predictor not-taken for virtual branches before
// the one holding the actual target and taken at it, then commit the
// virtual outcomes to history (Kim et al.'s update algorithm). If no
// virtual branch holds the actual target, it is installed at the first free
// (or final) iteration slot.
func (v *VPC) Update(pc, actual uint64) {
	v.lastOK = false
	vpcas := v.scratchVPCA[:0]
	foundIter := 0
	for iter := 1; iter <= v.cfg.MaxIter; iter++ {
		vpca := v.vpcAddr(pc, iter)
		vpcas = append(vpcas, vpca)
		target, hit := v.btb.Lookup(vpca)
		if hit && target == actual {
			foundIter = iter
			break
		}
		if !hit {
			break
		}
	}
	v.scratchVPCA = vpcas[:0]

	if foundIter == 0 {
		// Not stored anywhere along the walk: allocate at the least
		// recently used virtual-PC slot among the walked iterations (Kim
		// et al.'s insertion rule) and treat it as the taken virtual
		// branch. A miss-terminated walk ends on an empty slot, which has
		// recency 0 and wins automatically.
		best, bestStamp := len(vpcas), v.btb.SlotRecency(vpcas[len(vpcas)-1])
		for i := len(vpcas) - 2; i >= 0; i-- {
			if s := v.btb.SlotRecency(vpcas[i]); s < bestStamp {
				best, bestStamp = i+1, s
			}
		}
		foundIter = best
	}

	for i, vpca := range vpcas[:foundIter] {
		iter := i + 1
		taken := iter == foundIter
		v.hp.Train(vpca, taken)
		v.hp.UpdateHistory(vpca, taken)
	}
	// Install the target in the allocate case; refresh the providing entry
	// otherwise (both are a last-taken update of the taken virtual PC).
	v.btb.Update(vpcas[foundIter-1], actual)
}

// OnCond implements predictor.Indirect as a no-op: the engine already
// routes conditional outcomes to the shared hashed perceptron.
func (v *VPC) OnCond(pc uint64, taken bool) {}

// OnOther implements predictor.Indirect as a no-op for the same reason.
func (v *VPC) OnOther(pc, target uint64, bt trace.BranchType) {}

// BTBHitRate exposes the underlying BTB hit rate (diagnostics).
func (v *VPC) BTBHitRate() float64 { return v.btb.HitRate() }

// Cond returns the shared conditional predictor.
func (v *VPC) Cond() *cond.HashedPerceptron { return v.hp }

// StorageBits implements predictor.Indirect: the BTB plus the shared
// conditional predictor (Table 2 charges VPC for both, 128 KB total).
func (v *VPC) StorageBits() int {
	return v.btb.StorageBits() + v.hp.StorageBits()
}
