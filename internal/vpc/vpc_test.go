package vpc

import (
	"math/rand"
	"testing"

	"blbp/internal/cond"
)

func newVPC() *VPC {
	return New(DefaultConfig(), cond.NewHashedPerceptron(cond.DefaultHPConfig()))
}

func lateMispredicts(p *VPC, targets []uint64, condDriver func(i int)) int {
	mis := 0
	start := len(targets) * 3 / 4
	for i, tgt := range targets {
		if condDriver != nil {
			condDriver(i)
		}
		pred, ok := p.Predict(0x400100)
		if (!ok || pred != tgt) && i >= start {
			mis++
		}
		p.Update(0x400100, tgt)
	}
	return mis
}

func TestMonomorphicConverges(t *testing.T) {
	p := newVPC()
	targets := make([]uint64, 400)
	for i := range targets {
		targets[i] = 0x7000
	}
	if mis := lateMispredicts(p, targets, nil); mis != 0 {
		t.Errorf("%d late mispredicts on monomorphic branch, want 0", mis)
	}
}

func TestFirstSightHasNoPrediction(t *testing.T) {
	p := newVPC()
	if _, ok := p.Predict(0x500); ok {
		t.Error("prediction available before any observation")
	}
	p.Update(0x500, 0x9000)
	pred, ok := p.Predict(0x500)
	if !ok || pred != 0x9000 {
		t.Errorf("Predict after one observation = %#x/%v, want 0x9000/true", pred, ok)
	}
}

func TestConditionCorrelatedTargets(t *testing.T) {
	// The target matches the previous conditional outcome: VPC's virtual
	// branches see that outcome in the shared predictor's history.
	hp := cond.NewHashedPerceptron(cond.DefaultHPConfig())
	p := New(DefaultConfig(), hp)
	rng := rand.New(rand.NewSource(1))
	n := 6000
	misLate := 0
	for i := 0; i < n; i++ {
		c := rng.Intn(2) == 0
		// Engine-style conditional handling through the shared predictor.
		hp.Predict(0xC04D)
		hp.Train(0xC04D, c)
		hp.UpdateHistory(0xC04D, c)
		tgt := uint64(0x1000)
		if c {
			tgt = 0x3000
		}
		pred, ok := p.Predict(0x400100)
		if (!ok || pred != tgt) && i >= n*3/4 {
			misLate++
		}
		p.Update(0x400100, tgt)
	}
	if misLate > n/4/10 {
		t.Errorf("%d late mispredicts out of %d, want <= %d", misLate, n/4, n/4/10)
	}
}

func TestPolymorphicRotation(t *testing.T) {
	p := newVPC()
	seq := []uint64{0x1000, 0x3000, 0x5000, 0x9000}
	targets := make([]uint64, 8000)
	for i := range targets {
		targets[i] = seq[i%len(seq)]
	}
	mis := lateMispredicts(p, targets, nil)
	// VPC devirtualizes the rotation into virtual branches with periodic
	// outcomes; expect strong learning though not necessarily perfection.
	if mis > len(targets)/4/10 {
		t.Errorf("%d late mispredicts out of %d on 4-target rotation", mis, len(targets)/4)
	}
}

func TestManyBranchesCoexist(t *testing.T) {
	p := newVPC()
	misLate := 0
	for round := 0; round < 50; round++ {
		for b := 0; b < 100; b++ {
			pc := uint64(0x10000 + b*64)
			tgt := uint64(0x900000 + b*0x1000)
			pred, ok := p.Predict(pc)
			if (!ok || pred != tgt) && round >= 40 {
				misLate++
			}
			p.Update(pc, tgt)
		}
	}
	if misLate > 20 {
		t.Errorf("%d late mispredicts across 100 monomorphic branches", misLate)
	}
}

func TestHistoryRestoredAfterPredict(t *testing.T) {
	hp := cond.NewHashedPerceptron(cond.DefaultHPConfig())
	p := New(DefaultConfig(), hp)
	// Warm up the branch with several targets so the virtual walk is long.
	for i := 0; i < 50; i++ {
		p.Update(0x700, uint64(0x1000*(1+i%5)))
	}
	before := hp.Predict(0xABC)
	p.Predict(0x700)
	after := hp.Predict(0xABC)
	if before != after {
		t.Error("VPC prediction walk leaked speculative history")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		p := newVPC()
		rng := rand.New(rand.NewSource(13))
		out := make([]uint64, 0, 500)
		for i := 0; i < 500; i++ {
			pc := uint64(0x100 + rng.Intn(3)*0x40)
			pred, ok := p.Predict(pc)
			if !ok {
				pred = ^uint64(0)
			}
			out = append(out, pred)
			p.Update(pc, uint64(0x1000*(1+rng.Intn(4))))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction %d differs between identical runs", i)
		}
	}
}

func TestStorageBudgetIncludesSharedPredictor(t *testing.T) {
	p := newVPC()
	kb := float64(p.StorageBits()) / 8192
	// Table 2 charges VPC 128 KB (BTB + conditional predictor). Our BTB
	// models more target bits per entry than the paper's budget math, so
	// allow a generous band around 128.
	if kb < 100 || kb > 350 {
		t.Errorf("storage = %.1f KB, want around the 128 KB class", kb)
	}
}

func TestUpdateWithoutPredictIsSafe(t *testing.T) {
	p := newVPC()
	for i := 0; i < 30; i++ {
		p.Update(0x900, 0x1234000)
	}
	pred, ok := p.Predict(0x900)
	if !ok || pred != 0x1234000 {
		t.Errorf("Predict = %#x/%v, want 0x1234000/true", pred, ok)
	}
}

func TestConstructorPanics(t *testing.T) {
	hp := cond.NewHashedPerceptron(cond.DefaultHPConfig())
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MaxIter 0 accepted")
			}
		}()
		New(Config{MaxIter: 0, BTB: DefaultConfig().BTB}, hp)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil conditional predictor accepted")
			}
		}()
		New(DefaultConfig(), nil)
	}()
}

func TestName(t *testing.T) {
	if newVPC().Name() != "vpc" {
		t.Error("Name")
	}
}
