package analysis

import (
	"go/ast"
	"go/types"
)

// Atomics enforces all-or-nothing atomicity: a variable or struct field
// that is accessed through sync/atomic anywhere in the program (the trace
// cache's counters, the Runner's stats) must be accessed atomically
// everywhere. A single plain load next to atomic stores is a data race the
// race detector only catches when the schedule cooperates; the analyzer
// catches it at compile time. Fields of the atomic.Int64-style wrapper
// types are safe by construction and need no checking.
//
// The Collect phase walks every package recording the objects passed as
// &x to sync/atomic calls; Run then flags any plain (non-atomic) use of
// those objects program-wide.
var Atomics = &Analyzer{
	Name:    "atomics",
	Doc:     "state touched via sync/atomic anywhere must be accessed atomically everywhere",
	Collect: collectAtomics,
	Run:     runAtomics,
}

// atomicFacts is the whole-program fact set: keys of objects known to be
// accessed atomically, and the identifiers of the sanctioned &x arguments
// themselves. Objects are keyed by package path and name rather than
// types.Object identity because a field reached through export data is a
// distinct object from the same field in its source-checked home package;
// the name key unifies them (conservatively: same-named fields of two
// structs in one package share a key).
type atomicFacts struct {
	objs    map[string]bool
	blessed map[*ast.Ident]bool
}

func atomicsFactsOf(pass *Pass) *atomicFacts {
	f, _ := pass.Program.Facts[pass.Analyzer].(*atomicFacts)
	if f == nil {
		f = &atomicFacts{objs: map[string]bool{}, blessed: map[*ast.Ident]bool{}}
		pass.Program.Facts[pass.Analyzer] = f
	}
	return f
}

func collectAtomics(pass *Pass) {
	facts := atomicsFactsOf(pass)
	forEachAtomicArg(pass, func(id *ast.Ident) {
		if obj := pass.ObjectOf(id); obj != nil {
			facts.objs[objKey(obj)] = true
		}
		facts.blessed[id] = true
	})
}

func runAtomics(pass *Pass) error {
	facts := atomicsFactsOf(pass)
	if len(facts.objs) == 0 {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || facts.blessed[id] {
				return true
			}
			// Only uses count: the declaration of a field or var is not
			// an access.
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil {
				return true
			}
			if _, isVar := obj.(*types.Var); !isVar || !facts.objs[objKey(obj)] {
				return true
			}
			pass.Reportf(id.Pos(), "%s is accessed via sync/atomic elsewhere; this plain access races with it (use the atomic API or an atomic.Int64-style field)", id.Name)
			return true
		})
	}
	return nil
}

// forEachAtomicArg invokes fn with the identifier at the core of every
// &expr argument of a sync/atomic call in the package: the field name of
// &x.f, or the identifier of &x.
func forEachAtomicArg(pass *Pass, fn func(*ast.Ident)) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass, call)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := callee.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods of atomic.Int64 etc. are safe by type
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok {
					continue
				}
				switch x := un.X.(type) {
				case *ast.SelectorExpr:
					fn(x.Sel)
				case *ast.Ident:
					fn(x)
				}
			}
			return true
		})
	}
}
