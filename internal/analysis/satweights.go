package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// satweightsScope lists the predictor packages whose narrow counters and
// perceptron weights model saturating hardware arithmetic.
var satweightsScope = []string{
	"internal/core",
	"internal/cond",
	"internal/ittage",
	"internal/btb",
	"internal/vpc",
	"internal/targetcache",
	"internal/cascaded",
	"internal/combined",
	"internal/batch",
	"internal/replacement",
	"internal/region",
}

// SatWeights forbids raw +=, -=, ++ and -- on narrow (<= 16-bit) integer
// fields and table elements in the predictor packages: every such value
// models a saturating hardware counter or perceptron weight, and an
// unclamped update silently wraps, corrupting the predictor while staying
// inside the declared bit budget. Updates must go through a clamp helper —
// a function carrying the //blbp:clamp directive (the saturating helpers
// in internal/threshold and internal/cond) — whose body is exempt.
var SatWeights = &Analyzer{
	Name: "satweights",
	Doc:  "narrow counter/weight fields must be updated through //blbp:clamp saturating helpers, never raw +=/-=/++/--",
	Run:  runSatWeights,
}

func runSatWeights(pass *Pass) error {
	if !pathIn(pass.Pkg.Path, satweightsScope) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasDirective(fd.Doc, "blbp:clamp") {
				continue // the clamp helper itself implements the saturation
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN {
						return true
					}
					for _, lhs := range n.Lhs {
						checkSatTarget(pass, lhs, n.Tok.String())
					}
				case *ast.IncDecStmt:
					checkSatTarget(pass, n.X, n.Tok.String())
				}
				return true
			})
		}
	}
	return nil
}

// checkSatTarget flags op applied to a narrow-integer field or table
// element. Plain local variables are exempt: loop counters and scratch
// sums are not hardware state.
func checkSatTarget(pass *Pass, lhs ast.Expr, op string) {
	switch lhs.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
	default:
		return
	}
	t := pass.TypeOf(lhs)
	if t == nil || !isNarrowInt(t) {
		return
	}
	pass.Reportf(lhs.Pos(), "raw %s on %s-typed hardware state wraps instead of saturating; use a //blbp:clamp helper (threshold.SatInc8 and friends)", op, t.String())
}

// isNarrowInt reports whether t's underlying type is an integer of 16 bits
// or fewer — the widths predictor counters and weights are declared at.
func isNarrowInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int8, types.Uint8, types.Int16, types.Uint16:
		return true
	}
	return false
}
