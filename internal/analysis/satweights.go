package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// satweightsScope lists the predictor packages whose narrow counters and
// perceptron weights model saturating hardware arithmetic.
var satweightsScope = []string{
	"internal/core",
	"internal/cond",
	"internal/ittage",
	"internal/btb",
	"internal/vpc",
	"internal/targetcache",
	"internal/cascaded",
	"internal/combined",
	"internal/batch",
	"internal/replacement",
	"internal/region",
}

// SatBound is the fact satweights exports for every narrow integer field
// (and every field whose slice/array elements are narrow integers) in its
// scope: the value range the saturation discipline keeps the field inside.
// Signed widths use the symmetric sign/magnitude range [-(2^(w-1)-1),
// 2^(w-1)-1] the predictors clamp to; unsigned use [0, 2^w-1]. lanebounds
// imports these facts to bound what can ever flow into a packed lane.
type SatBound struct {
	Min, Max int64
}

func (*SatBound) AFact() {}

// Merge widens to the union range: when two same-named fields share a fact
// key, consumers must see the weaker (wider) statement.
func (b *SatBound) Merge(other Fact) {
	o, ok := other.(*SatBound)
	if !ok {
		return
	}
	if o.Min < b.Min {
		b.Min = o.Min
	}
	if o.Max > b.Max {
		b.Max = o.Max
	}
}

// MaxAbs returns the largest magnitude the bound admits.
func (b *SatBound) MaxAbs() int64 {
	if -b.Min > b.Max {
		return -b.Min
	}
	return b.Max
}

// SatWeights forbids raw +=, -=, ++ and -- on narrow (<= 16-bit) integer
// fields and table elements in the predictor packages: every such value
// models a saturating hardware counter or perceptron weight, and an
// unclamped update silently wraps, corrupting the predictor while staying
// inside the declared bit budget. Updates must go through a clamp helper —
// a function carrying the //blbp:clamp directive (the saturating helpers
// in internal/threshold and internal/cond) — whose body is exempt.
//
// The Collect phase exports a SatBound fact for every narrow field in
// scope, publishing the range the clamp discipline guarantees so that
// lanebounds can prove the packed-lane arithmetic downstream of the
// weights can never overflow.
var SatWeights = &Analyzer{
	Name:         "satweights",
	Doc:          "narrow counter/weight fields must be updated through //blbp:clamp saturating helpers, never raw +=/-=/++/--",
	DefaultScope: satweightsScope,
	Collect:      collectSatWeights,
	Run:          runSatWeights,
}

// satBoundForType returns the saturation range fact for a narrow integer
// type (or the narrow element type of a slice/array), or nil.
func satBoundForType(t types.Type) *SatBound {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		t = u.Elem()
	case *types.Array:
		t = u.Elem()
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	switch b.Kind() {
	case types.Int8:
		return &SatBound{Min: -127, Max: 127}
	case types.Int16:
		return &SatBound{Min: -32767, Max: 32767}
	case types.Uint8:
		return &SatBound{Min: 0, Max: 255}
	case types.Uint16:
		return &SatBound{Min: 0, Max: 65535}
	}
	return nil
}

// collectSatWeights exports SatBound facts for the narrow struct fields of
// every in-scope package.
func collectSatWeights(pass *Pass) {
	if !pass.InScope() {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					obj := pass.ObjectOf(name)
					if obj == nil {
						continue
					}
					if b := satBoundForType(obj.Type()); b != nil {
						pass.ExportObjectFact(obj, b)
					}
				}
			}
			return true
		})
	}
}

func runSatWeights(pass *Pass) error {
	if !pass.InScope() {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if hasDirective(fd.Doc, "blbp:clamp") {
				continue // the clamp helper itself implements the saturation
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if n.Tok != token.ADD_ASSIGN && n.Tok != token.SUB_ASSIGN {
						return true
					}
					for _, lhs := range n.Lhs {
						checkSatTarget(pass, f, n, lhs, n.Tok)
					}
				case *ast.IncDecStmt:
					checkSatTarget(pass, f, n, n.X, n.Tok)
				}
				return true
			})
		}
	}
	return nil
}

// checkSatTarget flags op applied to a narrow-integer field or table
// element, attaching a threshold.Sat* rewrite as a suggested fix for the
// ±1 updates of 8-bit state. Plain local variables are exempt: loop
// counters and scratch sums are not hardware state.
func checkSatTarget(pass *Pass, file *ast.File, stmt ast.Stmt, lhs ast.Expr, op token.Token) {
	switch lhs.(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
	default:
		return
	}
	t := pass.TypeOf(lhs)
	if t == nil || !isNarrowInt(t) {
		return
	}
	fix := satFix(pass, file, stmt, lhs, op, t)
	pass.ReportFix(lhs.Pos(), fix, "raw %s on %s-typed hardware state wraps instead of saturating; use a //blbp:clamp helper (threshold.SatInc8 and friends)", op.String(), t.String())
}

// satFix builds the mechanical rewrite for a ±1 update of an 8-bit target:
//
//	x++  ->  x = threshold.SatInc8(x, 127)
//
// saturating at the type's symmetric (signed) or full (unsigned) range —
// the widest bound the declared width admits; narrower modeled counters
// should tighten it by hand. Wider types and non-unit steps have no
// helper, so they get no fix. The import of blbp/internal/threshold is
// added when the file lacks it.
func satFix(pass *Pass, file *ast.File, stmt ast.Stmt, lhs ast.Expr, op token.Token, t types.Type) *SuggestedFix {
	inc := op == token.INC || op == token.ADD_ASSIGN
	if as, ok := stmt.(*ast.AssignStmt); ok {
		lit, okLit := as.Rhs[0].(*ast.BasicLit)
		if !okLit || lit.Value != "1" {
			return nil
		}
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	var helper, bound string
	switch {
	case b.Kind() == types.Int8 && inc:
		helper, bound = "SatInc8", "127"
	case b.Kind() == types.Int8:
		helper, bound = "SatDec8", "-127"
	case b.Kind() == types.Uint8 && inc:
		helper, bound = "SatIncU8", "255"
	case b.Kind() == types.Uint8:
		helper, bound = "SatDecU8", "0"
	default:
		return nil
	}
	target := pass.Render(lhs)
	if target == "" {
		return nil
	}
	edits := []TextEdit{pass.Edit(stmt.Pos(), stmt.End(),
		fmt.Sprintf("%s = threshold.%s(%s, %s)", target, helper, target, bound))}
	imp, ok := ensureImportEdit(pass, file, "blbp/internal/threshold")
	if !ok {
		return nil
	}
	if imp != nil {
		edits = append(edits, *imp)
	}
	return &SuggestedFix{
		Message: fmt.Sprintf("replace with threshold.%s at the %s type bound (tighten by hand if the field models a narrower counter)", helper, t.String()),
		Edits:   edits,
	}
}

// ensureImportEdit returns the edit adding the import to the file's
// parenthesized import block (nil when already imported, ok=false when
// there is no block to extend).
func ensureImportEdit(pass *Pass, file *ast.File, path string) (*TextEdit, bool) {
	for _, im := range file.Imports {
		if im.Path.Value == `"`+path+`"` {
			return nil, true
		}
	}
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT || !gd.Lparen.IsValid() || len(gd.Specs) == 0 {
			continue
		}
		last := gd.Specs[len(gd.Specs)-1]
		e := pass.Edit(last.End(), last.End(), fmt.Sprintf("\n\t%q", path))
		return &e, true
	}
	return nil, false
}

// isNarrowInt reports whether t's underlying type is an integer of 16 bits
// or fewer — the widths predictor counters and weights are declared at.
func isNarrowInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int8, types.Uint8, types.Int16, types.Uint16:
		return true
	}
	return false
}
