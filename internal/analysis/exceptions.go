package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// The ANALYSIS_EXCEPTIONS.md contract: every live //blbp:allow suppression
// must have a row in the file's "Live suppressions" table, and every row
// must correspond to a live suppression. CheckExceptions machine-checks
// both directions so the audit that used to be manual fails CI on drift.

// ExceptionEntry is one row of the live-suppressions table, keyed the way
// the cross-check matches it against findings: the suppressed file's base
// name and the analyzer.
type ExceptionEntry struct {
	File     string // base name, e.g. "stats.go"
	Analyzer string
	Line     int // line in the exceptions file, for error messages
}

var backtickRe = regexp.MustCompile("`([^`]+)`")

// ParseExceptions reads the live-suppressions table of an
// ANALYSIS_EXCEPTIONS.md file: rows of the first markdown table whose
// first cell carries a backticked location (the first backticked token
// names the file) and whose second cell is the analyzer name.
func ParseExceptions(path string) ([]ExceptionEntry, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: exceptions: %w", err)
	}
	var entries []ExceptionEntry
	for i, line := range strings.Split(string(src), "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "|") {
			continue
		}
		cells := strings.Split(strings.Trim(line, "|"), "|")
		if len(cells) < 3 {
			continue
		}
		loc := backtickRe.FindStringSubmatch(cells[0])
		if loc == nil {
			continue // header or separator row
		}
		analyzer := strings.TrimSpace(cells[1])
		if analyzer == "" || strings.ContainsAny(analyzer, " `-") {
			continue
		}
		entries = append(entries, ExceptionEntry{
			File:     filepath.Base(strings.TrimSpace(loc[1])),
			Analyzer: analyzer,
			Line:     i + 1,
		})
	}
	return entries, nil
}

// CheckExceptions cross-checks the exceptions file against the live
// suppressed findings: every suppressed finding needs a covering table row
// (same file base name and analyzer) and every row needs a live finding.
// It returns one human-readable problem per drift.
func CheckExceptions(entries []ExceptionEntry, diags []Diagnostic) []string {
	type key struct{ file, analyzer string }
	live := map[key][]Diagnostic{}
	for _, d := range diags {
		if !d.Suppressed {
			continue
		}
		k := key{filepath.Base(d.Pos.Filename), d.Analyzer}
		live[k] = append(live[k], d)
	}
	covered := map[key]bool{}
	var problems []string
	for _, e := range entries {
		k := key{e.File, e.Analyzer}
		if len(live[k]) == 0 {
			problems = append(problems, fmt.Sprintf(
				"ANALYSIS_EXCEPTIONS.md:%d: entry (%s, %s) matches no live //blbp:allow suppression; remove the stale row",
				e.Line, e.File, e.Analyzer))
			continue
		}
		covered[k] = true
	}
	var missing []string
	for k, ds := range live {
		if covered[k] {
			continue
		}
		missing = append(missing, fmt.Sprintf(
			"%s: suppressed %s finding has no ANALYSIS_EXCEPTIONS.md entry (add a (%s, %s) row)",
			ds[0].Pos, k.analyzer, k.file, k.analyzer))
	}
	sort.Strings(missing)
	return append(problems, missing...)
}
