package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestAllowPositions pins the position-exact suppression semantics on the
// testdata/allow fixture: a //blbp:allow comment matches the flagged line
// or the line immediately above — never further — multi-analyzer lists
// match by name, and a comment without a reason is itself a finding.
func TestAllowPositions(t *testing.T) {
	prog, err := LoadDir(filepath.Join("testdata", "allow"), "td/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(prog, []*Analyzer{Determinism})
	if err != nil {
		t.Fatal(err)
	}

	// Index determinism findings by the function they sit in (via line
	// ranges kept simple: one finding per function in the fixture).
	type finding struct {
		line       int
		suppressed bool
	}
	var det []finding
	var allowMsgs []string
	for _, d := range diags {
		switch d.Analyzer {
		case "determinism":
			det = append(det, finding{d.Pos.Line, d.Suppressed})
		case "allow":
			allowMsgs = append(allowMsgs, d.Message)
		default:
			t.Errorf("unexpected analyzer %q: %s", d.Analyzer, d)
		}
	}
	if len(det) != 5 {
		t.Fatalf("want 5 determinism findings (one per fixture function), got %d: %v", len(det), det)
	}
	// Fixture layout: findings appear in source order — SameLine,
	// LineAbove, TwoAbove, MultiName, MissingReason.
	wantSuppressed := []bool{true, true, false, true, false}
	names := []string{"SameLine", "LineAbove", "TwoAbove", "MultiName", "MissingReason"}
	for i, f := range det {
		if f.suppressed != wantSuppressed[i] {
			t.Errorf("%s (line %d): suppressed = %v, want %v", names[i], f.line, f.suppressed, wantSuppressed[i])
		}
	}

	// The two-lines-above comment must be audited as unused, and the
	// reasonless comment as malformed.
	var unused, malformed bool
	for _, m := range allowMsgs {
		if strings.Contains(m, "unused //blbp:allow(determinism)") {
			unused = true
		}
		if strings.Contains(m, "malformed //blbp:allow") {
			malformed = true
		}
	}
	if !unused {
		t.Errorf("missing unused-allow audit for the two-lines-above comment; allow diagnostics: %v", allowMsgs)
	}
	if !malformed {
		t.Errorf("missing malformed-allow audit for the reasonless comment; allow diagnostics: %v", allowMsgs)
	}
	if len(allowMsgs) != 2 {
		t.Errorf("want exactly 2 allow audit findings, got %v", allowMsgs)
	}
}
