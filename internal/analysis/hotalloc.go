package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc keeps the per-branch prediction path allocation-free. Functions
// carrying the //blbp:hot directive (the PR 1 hot loops: the predictor's
// Predict/Update, the history shifts, the IBTB probe) run once per
// simulated branch; a single escaping literal or interface boxing there
// turns into millions of allocations per run. Inside a hot function the
// analyzer forbids closures, escaping composite literals (maps, slices,
// &T{...}), appends to slices that are not provably preallocated, and
// concrete-to-interface conversions.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "//blbp:hot functions must not allocate: no closures, escaping literals, unpreallocated appends, or interface conversions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasDirective(fd.Doc, "blbp:hot") {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	prealloc := preallocatedSlices(pass, fd)
	var results *types.Tuple
	if fn, ok := pass.ObjectOf(fd.Name).(*types.Func); ok {
		results = fn.Type().(*types.Signature).Results()
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in //blbp:hot %s allocates per call; hoist it to a method or package function", fd.Name.Name)
			return false // its body runs under its own (cold) rules
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := n.X.(*ast.CompositeLit); ok {
					pass.Reportf(cl.Pos(), "&composite literal in //blbp:hot %s escapes to the heap; reuse a preallocated object", fd.Name.Name)
					return false
				}
			}
		case *ast.CompositeLit:
			t := pass.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map, *types.Slice:
				pass.Reportf(n.Pos(), "%s literal in //blbp:hot %s allocates per call; hoist it into the predictor's state", kindName(t), fd.Name.Name)
			}
		case *ast.CallExpr:
			checkHotCall(pass, fd, n, prealloc)
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				return true
			}
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if boxesIntoInterface(pass, pass.TypeOf(lhs), n.Rhs[i]) {
					pass.Reportf(n.Rhs[i].Pos(), "assignment boxes a concrete value into an interface in //blbp:hot %s; keep hot state concretely typed", fd.Name.Name)
				}
			}
		case *ast.ReturnStmt:
			if results == nil || len(n.Results) != results.Len() {
				return true
			}
			for i, res := range n.Results {
				if boxesIntoInterface(pass, results.At(i).Type(), res) {
					pass.Reportf(res.Pos(), "return boxes a concrete value into an interface in //blbp:hot %s; keep hot signatures concretely typed", fd.Name.Name)
				}
			}
		}
		return true
	})
}

// checkHotCall flags appends whose destination is not provably
// preallocated and argument passing that boxes a concrete value into an
// interface parameter.
func checkHotCall(pass *Pass, fd *ast.FuncDecl, call *ast.CallExpr, prealloc map[types.Object]bool) {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if b, ok := pass.ObjectOf(id).(*types.Builtin); ok && b.Name() == "append" {
			if dst, ok := call.Args[0].(*ast.Ident); !ok || !prealloc[pass.ObjectOf(dst)] {
				pass.Reportf(call.Pos(), "append in //blbp:hot %s may grow the backing array; preallocate with a capacity (3-arg make or slice of a fixed buffer)", fd.Name.Name)
			}
			return
		}
	}
	sig, ok := typeOfCallee(pass, call)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // spread: the slice is passed as-is, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxesIntoInterface(pass, pt, arg) {
			pass.Reportf(arg.Pos(), "argument boxes a concrete value into an interface in //blbp:hot %s; avoid interface-taking calls on the prediction path", fd.Name.Name)
		}
	}
}

// typeOfCallee returns the call's signature, distinguishing real calls
// from type conversions and builtins (which have no signature).
func typeOfCallee(pass *Pass, call *ast.CallExpr) (*types.Signature, bool) {
	t := pass.TypeOf(call.Fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// preallocatedSlices collects slice-valued objects safe to append to
// without allocating: slice-typed parameters (the caller owns the
// capacity) and locals bound to a slice expression or a 3-argument make.
func preallocatedSlices(pass *Pass, fd *ast.FuncDecl) map[types.Object]bool {
	safe := map[types.Object]bool{}
	for _, field := range fd.Type.Params.List {
		if _, ok := pass.TypeOf(field.Type).(*types.Slice); !ok {
			continue
		}
		for _, name := range field.Names {
			if obj := pass.ObjectOf(name); obj != nil {
				safe[obj] = true
			}
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			switch rhs := as.Rhs[i].(type) {
			case *ast.SliceExpr:
				if obj := pass.ObjectOf(id); obj != nil {
					safe[obj] = true
				}
			case *ast.CallExpr:
				if fn, ok := rhs.Fun.(*ast.Ident); ok && fn.Name == "make" && len(rhs.Args) == 3 {
					if obj := pass.ObjectOf(id); obj != nil {
						safe[obj] = true
					}
				}
			}
		}
		return true
	})
	return safe
}

// boxesIntoInterface reports whether assigning src into a slot of type dst
// converts a concrete value to an interface (allocating the box). nil
// literals and values that are already interfaces carry no box.
func boxesIntoInterface(pass *Pass, dst types.Type, src ast.Expr) bool {
	if dst == nil {
		return false
	}
	if _, ok := dst.Underlying().(*types.Interface); !ok {
		return false
	}
	st := pass.TypeOf(src)
	if st == nil {
		return false
	}
	if _, ok := st.Underlying().(*types.Interface); ok {
		return false
	}
	if b, ok := st.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}

// kindName names a composite-literal type category for diagnostics.
func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Map:
		return "map"
	case *types.Slice:
		return "slice"
	}
	return "composite"
}
