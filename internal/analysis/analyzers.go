package analysis

// All returns every BLBP invariant analyzer in the order blbplint runs
// them.
func All() []*Analyzer {
	return []*Analyzer{Determinism, HWBudget, SatWeights, Atomics, HotAlloc, LaneBounds, ParSafe}
}
