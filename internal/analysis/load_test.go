package analysis

import (
	"path/filepath"
	"testing"
)

// loadmodFiles returns the base names of every parsed file of the
// fixture-module program, and asserts the program holds exactly the one
// expected package.
func loadmodFiles(t *testing.T, prog *Program) map[string]bool {
	t.Helper()
	if len(prog.Packages) != 1 {
		var paths []string
		for _, p := range prog.Packages {
			paths = append(paths, p.Path)
		}
		t.Fatalf("want exactly the loadmod package, got %v", paths)
	}
	pkg := prog.Packages[0]
	if pkg.Path != "loadmod" {
		t.Fatalf("package path = %q, want loadmod", pkg.Path)
	}
	names := map[string]bool{}
	for _, f := range pkg.Files {
		names[filepath.Base(pkg.Fset.Position(f.Pos()).Filename)] = true
	}
	return names
}

// TestLoadBuildSelection locks the loader's file selection to the build's:
// build-tagged files stay out without their tag, test files stay out
// without LoadOptions.Tests, and the vendor tree is never matched.
func TestLoadBuildSelection(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "loadmod"))
	if err != nil {
		t.Fatal(err)
	}
	names := loadmodFiles(t, prog)
	if !names["a.go"] {
		t.Error("a.go missing from the default load")
	}
	if names["tagged.go"] {
		t.Error("tagged.go loaded despite its unsatisfied build tag")
	}
	if names["a_test.go"] {
		t.Error("a_test.go loaded without LoadOptions.Tests")
	}
	if names["v.go"] {
		t.Error("vendored file leaked into the package")
	}
}

// TestLoadTests checks LoadOptions.Tests pulls the in-package test files
// into the same type-checked package (their imports — testing — resolve
// through the second export pass).
func TestLoadTests(t *testing.T) {
	prog, err := LoadWith(LoadOptions{Tests: true}, filepath.Join("testdata", "loadmod"))
	if err != nil {
		t.Fatal(err)
	}
	names := loadmodFiles(t, prog)
	if !names["a.go"] || !names["a_test.go"] {
		t.Errorf("want a.go and a_test.go, got %v", names)
	}
	if names["tagged.go"] {
		t.Error("tagged.go loaded despite its unsatisfied build tag")
	}
	// The test file must be type-checked, not just parsed: its testing.T
	// usage resolves only if the second export pass found the import.
	scope := prog.Packages[0].Types.Scope()
	if scope.Lookup("TestA") == nil {
		t.Error("TestA not in the package scope; test files were not type-checked")
	}
}

// TestLoadVendorPattern documents that even an explicit ./... from the
// module root cannot pull in the vendor tree.
func TestLoadVendorPattern(t *testing.T) {
	prog, err := Load(filepath.Join("testdata", "loadmod"), "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range prog.Packages {
		if p.Path != "loadmod" {
			t.Errorf("unexpected package %q matched by ./...", p.Path)
		}
	}
}
