package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// LaneBounds proves the packed-lane arithmetic of the bit-sliced weight
// image cannot overflow: every 16-bit lane of a table word holds
// transfer(weight) + laneBias, and the prediction kernels sum one row per
// sub-predictor into lane accumulators with no inter-lane carry
// suppression, so the whole scheme is correct only while
//
//	maxRows * laneCellMax <= laneMask
//
// The analyzer derives that inequality from verified source facts instead
// of trusting comments: satweights' SatBound facts bound the raw weights,
// //blbp:bound directives (checked against the transfer-table builder, the
// Validate guards, and the max-abs loop that computes laneBias) bound the
// lane cells, and the Validate guard on SubPredictors bounds the row
// count. Run then walks every function of the scope proving each store
// into a //blbp:lanes slice and each lane accumulation stays inside the
// derived bounds, flagging any lane add, store, or SWAR reduction it
// cannot bound.
//
// Declaration directives:
//
//	//blbp:lanes(table)  packed weight words; lanes hold at most cellMax
//	//blbp:lanes(acc)    lane accumulators; lanes hold at most accMax
//	//blbp:rows          per-item packed-row offset slices (maxRows apiece)
//	//blbp:bound(lo,hi)  integer range of a field, func result, or var
var LaneBounds = &Analyzer{
	Name:         "lanebounds",
	Doc:          "prove 16-bit packed lanes cannot overflow under any reachable weight value",
	DefaultScope: []string{"internal/core", "internal/batch"},
	Collect:      collectLaneBounds,
	Run:          runLaneBounds,
}

// LaneTag is the object fact a //blbp:lanes, //blbp:rows, or //blbp:bound
// directive exports after verification. Kind is "table", "acc", "rows", or
// "bound"; Lo/Hi carry the bound range; AbsOf names the object key whose
// element magnitudes this bound is the verified maximum of (the laneBias
// field's relation to the transfer table); Arena marks rows slices sized
// batch*n that must be consumed through n-sized windows.
type LaneTag struct {
	Kind   string
	Lo, Hi int64
	AbsOf  string
	Arena  bool
}

func (*LaneTag) AFact() {}

// Merge keeps the widest range; structural kinds must agree (they come
// from directives, so a disagreement means two same-named objects with
// different roles — keep the first, the checker stays conservative).
func (t *LaneTag) Merge(other Fact) {
	o, ok := other.(*LaneTag)
	if !ok || o.Kind != t.Kind {
		return
	}
	if o.Lo < t.Lo {
		t.Lo = o.Lo
	}
	if o.Hi > t.Hi {
		t.Hi = o.Hi
	}
	t.Arena = t.Arena || o.Arena
}

// NSub marks a field or variable verified to hold SubPredictors(): rows
// windows sliced by such a value are maxRows-bounded.
type NSub struct{}

func (*NSub) AFact() {}

// laneFacts is lanebounds' program-wide state, built by the Collect pass
// over the geometry-defining package (the one declaring laneBits).
type laneFacts struct {
	ok           bool // geometry verified; Run is gated on it
	laneBits     int64
	lanesPerWord int64
	laneMask     int64
	transferHi   int64 // verified max |transfer(w)|
	cellMax      int64 // max lane value of a table word
	accMax       int64 // max lane value of an accumulator
	maxRows      int64 // Validate-guarded SubPredictors bound
}

func laneFactsOf(pass *Pass) *laneFacts {
	f, _ := pass.Program.Facts[pass.Analyzer].(*laneFacts)
	if f == nil {
		f = &laneFacts{}
		pass.Program.Facts[pass.Analyzer] = f
	}
	return f
}

// pow2Mask rounds v up to the next all-ones value (2^k - 1 >= v): the
// conservative bound of a lane-wise OR, whose result bits are the union of
// its operands' bits.
func pow2Mask(v int64) int64 {
	m := int64(1)
	for m-1 < v {
		m <<= 1
	}
	return m - 1
}

// collectLaneBounds harvests and verifies the lane directives of one
// package: geometry constants, bound directives (cross-checked against the
// declarations they summarize and against satweights' SatBound facts), the
// SubPredictors guard, and the rows/lanes tags. Verification failures are
// reported here; a package with no lane geometry (the consumer side of the
// scope) only exports its tags.
func collectLaneBounds(pass *Pass) {
	if !pass.InScope() {
		return
	}
	facts := laneFactsOf(pass)
	guards := collectGuards(pass)
	collectNSub(pass, guards)
	tags := collectLaneTags(pass)

	geomOK := harvestGeometry(pass, facts)
	transferKey := verifyBounds(pass, tags, guards)
	if !geomOK {
		return // consumer package: tags exported, geometry owned elsewhere
	}
	if transferKey == "" {
		pass.Reportf(pass.Pkg.Files[0].Pos(), "package defines lane geometry but no //blbp:bound directive names the transfer table; lane cells are unbounded")
		return
	}
	maxRows, ok := guards["SubPredictors"]
	if !ok {
		pass.Reportf(pass.Pkg.Files[0].Pos(), "no Validate guard bounds SubPredictors; the packed row count is unbounded")
		return
	}
	facts.maxRows = maxRows
	// A lane cell is transfer(w) + laneBias, inserted by masked OR:
	// 2*transferHi rounded to the OR bound.
	facts.cellMax = pow2Mask(2 * facts.transferHi)
	facts.accMax = facts.maxRows * facts.cellMax
	if facts.accMax > facts.laneMask {
		pass.Reportf(pass.Pkg.Files[0].Pos(),
			"packed column sums can overflow a lane: maxRows(%d) * cellMax(%d) = %d > laneMask(%d)",
			facts.maxRows, facts.cellMax, facts.accMax, facts.laneMask)
		return
	}
	facts.ok = true
}

// harvestGeometry reads the lane layout constants; absent constants mean
// the package consumes lane facts rather than defining them.
func harvestGeometry(pass *Pass, facts *laneFacts) bool {
	scope := pass.Pkg.Types.Scope()
	geom := map[string]*int64{
		"laneBits":     &facts.laneBits,
		"lanesPerWord": &facts.lanesPerWord,
		"laneMask":     &facts.laneMask,
	}
	found := 0
	for name, dst := range geom {
		c, _ := scope.Lookup(name).(*types.Const)
		if c == nil {
			continue
		}
		if v, ok := constant64(c); ok {
			*dst = v
			found++
		}
	}
	if found == 0 {
		return false
	}
	if found < len(geom) || facts.laneBits <= 0 ||
		facts.lanesPerWord*facts.laneBits != 64 ||
		facts.laneMask != 1<<uint(facts.laneBits)-1 {
		pass.Reportf(pass.Pkg.Files[0].Pos(), "lane geometry constants are inconsistent: need laneBits*lanesPerWord == 64 and laneMask == 1<<laneBits - 1")
		return false
	}
	return true
}

// collectGuards scans error-returning functions for range guards of the
// shape `if X > C { ... return ... }`, keyed by the guarded field or
// method name. The smallest constant per key wins (the binding guard).
func collectGuards(pass *Pass) map[string]int64 {
	guards := map[string]int64{}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !returnsError(fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				ifs, ok := n.(*ast.IfStmt)
				if !ok || !containsReturn(ifs.Body) {
					return true
				}
				for _, cond := range orTerms(ifs.Cond) {
					b, ok := cond.(*ast.BinaryExpr)
					if !ok {
						continue
					}
					var key ast.Expr
					var limit int64
					switch {
					case b.Op == token.GTR:
						c, ok := constInt(pass, b.Y)
						if !ok {
							continue
						}
						key, limit = b.X, c
					case b.Op == token.GEQ:
						c, ok := constInt(pass, b.Y)
						if !ok {
							continue
						}
						key, limit = b.X, c-1
					default:
						continue
					}
					name := guardKey(key)
					if name == "" {
						continue
					}
					if old, ok := guards[name]; !ok || limit < old {
						guards[name] = limit
					}
				}
				return true
			})
		}
	}
	return guards
}

// guardKey names the guarded quantity: the selected field of c.Field or
// the method of c.Method().
func guardKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name
		}
	}
	return ""
}

// orTerms flattens a ||-chain into its terms.
func orTerms(e ast.Expr) []ast.Expr {
	if b, ok := e.(*ast.BinaryExpr); ok && b.Op == token.LOR {
		return append(orTerms(b.X), orTerms(b.Y)...)
	}
	return []ast.Expr{e}
}

func returnsError(fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, r := range fd.Type.Results.List {
		if id, ok := r.Type.(*ast.Ident); ok && id.Name == "error" {
			return true
		}
	}
	return false
}

func containsReturn(b *ast.BlockStmt) bool {
	found := false
	ast.Inspect(b, func(n ast.Node) bool {
		if _, ok := n.(*ast.ReturnStmt); ok {
			found = true
		}
		return !found
	})
	return found
}

// collectNSub exports an NSub fact for every field initialized to
// SubPredictors() in a composite literal and every method returning it —
// the values rows windows may legally be sized by. Only meaningful when a
// SubPredictors guard exists.
func collectNSub(pass *Pass, guards map[string]int64) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			st, ok := pass.TypeOf(lit).(*types.Named)
			if !ok {
				return true
			}
			str, ok := st.Underlying().(*types.Struct)
			if !ok {
				return true
			}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || !isSubPredictorsCall(kv.Value) {
					continue
				}
				for i := 0; i < str.NumFields(); i++ {
					if str.Field(i).Name() == key.Name {
						pass.ExportObjectFact(str.Field(i), &NSub{})
					}
				}
			}
			return true
		})
	}
}

func isSubPredictorsCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	return ok && guardKey(call) == "SubPredictors"
}

// laneDirectives maps the directive argument of //blbp:lanes to a tag kind.
var laneDirectives = map[string]string{"table": "table", "acc": "acc"}

// collectLaneTags walks the package's declarations for lane directives,
// exporting a LaneTag fact per tagged object and returning the tagged
// declarations for bound verification.
type taggedDecl struct {
	obj  types.Object
	tag  *LaneTag
	node ast.Node // the FuncDecl or Field carrying the directive
}

func collectLaneTags(pass *Pass) []taggedDecl {
	var tags []taggedDecl
	add := func(obj types.Object, tag *LaneTag, node ast.Node) {
		if obj == nil {
			return
		}
		pass.ExportObjectFact(obj, tag)
		tags = append(tags, taggedDecl{obj, tag, node})
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if tag := parseLaneTag(pass, n.Doc, n.Pos()); tag != nil {
					add(pass.ObjectOf(n.Name), tag, n)
				}
				return true
			case *ast.StructType:
				for _, field := range n.Fields.List {
					tag := parseLaneTag(pass, field.Doc, field.Pos())
					if tag == nil {
						continue
					}
					for _, name := range field.Names {
						add(pass.ObjectOf(name), tag, field)
					}
				}
			}
			return true
		})
	}
	return tags
}

// parseLaneTag reads the //blbp:lanes, //blbp:rows, or //blbp:bound
// directive off a doc comment, reporting malformed ones.
func parseLaneTag(pass *Pass, doc *ast.CommentGroup, pos token.Pos) *LaneTag {
	if arg, ok := directiveArg(doc, "blbp:lanes"); ok {
		if kind := laneDirectives[arg]; kind != "" {
			return &LaneTag{Kind: kind}
		}
		pass.Reportf(pos, "malformed //blbp:lanes(%s): want table or acc", arg)
		return nil
	}
	if _, ok := directiveArg(doc, "blbp:rows"); ok {
		return &LaneTag{Kind: "rows"}
	}
	if arg, ok := directiveArg(doc, "blbp:bound"); ok {
		parts := strings.SplitN(arg, ",", 2)
		if len(parts) == 2 {
			lo, err1 := strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
			hi, err2 := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
			if err1 == nil && err2 == nil && lo <= hi {
				return &LaneTag{Kind: "bound", Lo: lo, Hi: hi}
			}
		}
		pass.Reportf(pos, "malformed //blbp:bound(%s): want //blbp:bound(lo,hi)", arg)
	}
	return nil
}

func constant64(c *types.Const) (int64, bool) {
	v := constant.ToInt(c.Val())
	if v.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(v)
}

// verifyBounds checks every //blbp:bound directive against the
// declaration it summarizes and wires the verified transfer bound into the
// program facts. It returns the object key of the transfer table (the
// bound-tagged slice field), or "" when none verified.
//
// Three bound shapes are recognized:
//
//   - a function building the transfer table: its bound must cover both
//     the largest magnitude in any integer-literal table the body reads
//     and the widest 1<<(w-1)-1 range the Validate guard on the matching
//     parameter admits;
//   - a slice field holding the built table: its bound must equal the
//     builder's and cover the SatBound fact of every narrow-element
//     sibling field (the satweights link: the raw weights indexing the
//     table can never select a value outside the verified range);
//   - an int field assigned from a max-abs loop over the built table: its
//     bound is [0, builderHi] and carries the AbsOf relation that proves
//     transfer(w) + laneBias is non-negative.
func verifyBounds(pass *Pass, tags []taggedDecl, guards map[string]int64) string {
	facts := laneFactsOf(pass)
	var builderHi int64 = -1
	var builderObj types.Object
	// Pass 1: function bounds.
	for _, t := range tags {
		fd, ok := t.node.(*ast.FuncDecl)
		if !ok || t.tag.Kind != "bound" {
			continue
		}
		need := literalTableMax(pass, fd)
		w, sawShift, guarded := shiftRangeMax(fd, guards)
		if sawShift && !guarded {
			pass.Reportf(fd.Pos(), "%s derives a range from a shift by a parameter no Validate guard bounds; //blbp:bound cannot be verified", fd.Name.Name)
			continue
		}
		if w > need {
			need = w
		}
		if need > t.tag.Hi || -need < t.tag.Lo {
			pass.Reportf(fd.Pos(), "//blbp:bound(%d,%d) on %s does not cover the value range ±%d the body can produce", t.tag.Lo, t.tag.Hi, fd.Name.Name, need)
			continue
		}
		builderHi = maxAbs64(t.tag.Lo, t.tag.Hi)
		builderObj = pass.ObjectOf(fd.Name)
	}
	// Pass 2: field bounds.
	transferKey := ""
	for _, t := range tags {
		field, ok := t.node.(*ast.Field)
		if !ok || t.tag.Kind != "bound" {
			continue
		}
		if _, isSlice := t.obj.Type().Underlying().(*types.Slice); isSlice {
			if builderHi >= 0 && maxAbs64(t.tag.Lo, t.tag.Hi) != builderHi {
				pass.Reportf(field.Pos(), "//blbp:bound on %s disagrees with the verified builder bound ±%d", t.obj.Name(), builderHi)
				continue
			}
			if bad, hi := uncoveredSibling(pass, t.obj, t.tag); bad != "" {
				pass.Reportf(field.Pos(), "//blbp:bound(%d,%d) on %s cannot cover sibling weight field %s (satweights proves only ±%d); widen the bound or narrow the weights", t.tag.Lo, t.tag.Hi, t.obj.Name(), bad, hi)
				continue
			}
			transferKey = objKey(t.obj)
			facts.transferHi = maxAbs64(t.tag.Lo, t.tag.Hi)
			continue
		}
		// Int field: must be computed by a max-abs loop over a value the
		// builder bound covers.
		if t.tag.Lo != 0 {
			pass.Reportf(field.Pos(), "//blbp:bound on int field %s must start at 0 (it is a verified maximum of magnitudes)", t.obj.Name())
			continue
		}
		if builderObj == nil || !maxAbsLoopFeeds(pass, t.obj, builderObj) {
			pass.Reportf(field.Pos(), "cannot verify //blbp:bound on %s: no max-abs loop over the builder's result assigns it", t.obj.Name())
			continue
		}
		if t.tag.Hi < builderHi {
			pass.Reportf(field.Pos(), "//blbp:bound(0,%d) on %s is narrower than the builder bound ±%d it maximizes over", t.tag.Hi, t.obj.Name(), builderHi)
			continue
		}
		t.tag.AbsOf = "pending" // patched to transferKey below
	}
	for _, t := range tags {
		if t.tag.Kind == "bound" && t.tag.AbsOf == "pending" {
			t.tag.AbsOf = transferKey
			pass.ExportObjectFact(t.obj, t.tag)
		}
	}
	verifyRowsMakes(pass, tags)
	return transferKey
}

func maxAbs64(lo, hi int64) int64 {
	if -lo > hi {
		return -lo
	}
	return hi
}

// literalTableMax returns the largest magnitude among integer-literal
// composite tables (package-level vars) the function body reads.
func literalTableMax(pass *Pass, fd *ast.FuncDecl) int64 {
	var max int64
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.ObjectOf(id).(*types.Var)
		if !ok || v.Parent() != pass.Pkg.Types.Scope() {
			return true
		}
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(m ast.Node) bool {
				vs, ok := m.(*ast.ValueSpec)
				if !ok {
					return true
				}
				for i, name := range vs.Names {
					if pass.ObjectOf(name) != v || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, elt := range lit.Elts {
						if c, ok := constInt(pass, elt); ok {
							if c < 0 {
								c = -c
							}
							if c > max {
								max = c
							}
						}
					}
				}
				return true
			})
		}
		return true
	})
	return max
}

// shiftRangeMax recognizes `1<<uint(p-1) - 1` in the body, where p is a
// parameter. It reports whether the pattern occurred and, when a Validate
// guard bounds the matching configuration field, the widest value the
// guard admits.
func shiftRangeMax(fd *ast.FuncDecl, guards map[string]int64) (out int64, sawShift, guarded bool) {
	params := map[string]bool{}
	for _, p := range fd.Type.Params.List {
		for _, name := range p.Names {
			params[name.Name] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || b.Op != token.SUB {
			return true
		}
		one, ok := b.Y.(*ast.BasicLit)
		if !ok || one.Value != "1" {
			return true
		}
		shl, ok := b.X.(*ast.BinaryExpr)
		if !ok || shl.Op != token.SHL {
			return true
		}
		pname := ""
		ast.Inspect(shl.Y, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok && params[id.Name] {
				pname = id.Name
			}
			return true
		})
		if pname == "" {
			return true
		}
		sawShift = true
		for key, limit := range guards {
			if strings.EqualFold(key, pname) {
				v := int64(1)<<uint(limit-1) - 1
				if v > out {
					out = v
				}
				guarded = true
			}
		}
		return true
	})
	return out, sawShift, guarded
}

// uncoveredSibling returns the name and proven magnitude of a sibling
// narrow-element slice/array field whose SatBound fact exceeds the
// transfer bound — the weights that index the transfer table must be
// provably inside the range the table was built for.
func uncoveredSibling(pass *Pass, transfer types.Object, tag *LaneTag) (string, int64) {
	v, ok := transfer.(*types.Var)
	if !ok || !v.IsField() {
		return "", 0
	}
	owner := fieldOwner(pass, v)
	if owner == nil {
		return "", 0
	}
	for i := 0; i < owner.NumFields(); i++ {
		f := owner.Field(i)
		if f == v {
			continue
		}
		var sb SatBound
		if !pass.ImportObjectFact(f, &sb) {
			continue
		}
		switch f.Type().Underlying().(type) {
		case *types.Slice, *types.Array:
			if sb.MaxAbs() > maxAbs64(tag.Lo, tag.Hi) {
				return f.Name(), sb.MaxAbs()
			}
		}
	}
	return "", 0
}

// fieldOwner finds the struct type containing field v.
func fieldOwner(pass *Pass, v *types.Var) *types.Struct {
	var owner *types.Struct
	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == v {
				owner = st
			}
		}
	}
	return owner
}

// maxAbsLoopFeeds reports whether some function computes field's value by
// a max-abs loop over the builder's result: a local assigned from a call
// of builder, ranged with `if v < 0 { v = -v }` and `if v > m { m = v }`,
// with m then keyed to field in a composite literal or assigned through a
// selector.
func maxAbsLoopFeeds(pass *Pass, field, builder types.Object) bool {
	ok := false
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, isFn := n.(*ast.FuncDecl)
			if !isFn || fd.Body == nil {
				return true
			}
			if m := maxAbsResult(pass, fd, builder); m != nil && feedsField(pass, fd, m, field) {
				ok = true
			}
			return true
		})
	}
	return ok
}

// maxAbsResult finds the variable holding the max-abs of the builder's
// result inside fd, or nil.
func maxAbsResult(pass *Pass, fd *ast.FuncDecl, builder types.Object) types.Object {
	// Locals assigned from a builder call.
	fromBuilder := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			call, ok := as.Rhs[i].(*ast.CallExpr)
			if !ok {
				continue
			}
			if callee := calleeFunc(pass, call); callee != nil && callee == builder {
				fromBuilder[pass.ObjectOf(id)] = true
			}
		}
		return true
	})
	var result types.Object
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		xid, ok := rng.X.(*ast.Ident)
		if !ok || !fromBuilder[pass.ObjectOf(xid)] {
			return true
		}
		vid, ok := rng.Value.(*ast.Ident)
		if !ok {
			return true
		}
		v := pass.ObjectOf(vid)
		var sawAbs bool
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			ifs, ok := m.(*ast.IfStmt)
			if !ok {
				return true
			}
			cond, ok := ifs.Cond.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			lhsObj := identObj(pass, cond.X)
			switch {
			case cond.Op == token.LSS && lhsObj == v && isZeroLit(cond.Y):
				// if v < 0 { v = -v }
				sawAbs = true
			case cond.Op == token.GTR && lhsObj == v && sawAbs:
				// if v > m { m = v }
				result = identObj(pass, cond.Y)
			}
			return true
		})
		return true
	})
	return result
}

// feedsField reports whether m's value reaches field: via a composite
// literal key or a selector assignment in fd.
func feedsField(pass *Pass, fd *ast.FuncDecl, m, field types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.KeyValueExpr:
			if key, ok := n.Key.(*ast.Ident); ok &&
				key.Name == field.Name() && identObj(pass, n.Value) == m {
				found = true
			}
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				if pass.ObjectOf(sel.Sel) == field && identObj(pass, n.Rhs[i]) == m {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func identObj(pass *Pass, e ast.Expr) types.Object {
	if id, ok := e.(*ast.Ident); ok {
		return pass.ObjectOf(id)
	}
	return nil
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// verifyRowsMakes classifies every //blbp:rows declaration by the shape of
// the make calls sizing it: a product length (batch*n) marks an arena that
// must be consumed through n-sized windows; a single SubPredictors-derived
// length marks a unit slice rangeable whole. A rows slice whose length
// cannot be connected to SubPredictors is reported — its iteration count
// is unbounded.
func verifyRowsMakes(pass *Pass, tags []taggedDecl) {
	rows := map[types.Object]*LaneTag{}
	for _, t := range tags {
		if t.tag.Kind == "rows" {
			rows[t.obj] = t.tag
		}
	}
	if len(rows) == 0 {
		return
	}
	verified := map[types.Object]bool{}
	checkMake := func(obj types.Object, rhs ast.Expr) {
		tag := rows[obj]
		if tag == nil {
			return
		}
		call, ok := rhs.(*ast.CallExpr)
		if !ok || calleeName(call) != "make" || len(call.Args) < 2 {
			return
		}
		if prod, okP := productLen(call.Args[1]); okP {
			if subDerivedExpr(pass, prod) {
				tag.Arena = true
				pass.ExportObjectFact(obj, tag)
				verified[obj] = true
			}
		} else if subDerivedExpr(pass, call.Args[1]) {
			verified[obj] = true
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					if i < len(n.Rhs) {
						checkMake(rowsTargetObj(pass, lhs), n.Rhs[i])
					}
				}
			case *ast.KeyValueExpr:
				// Composite-literal field initializers (the constructor path).
				if key, ok := n.Key.(*ast.Ident); ok {
					checkMake(pass.ObjectOf(key), n.Value)
				}
			}
			return true
		})
	}
	for _, t := range tags {
		if t.tag.Kind == "rows" && !verified[t.obj] {
			pass.Reportf(t.node.Pos(), "cannot connect the length of //blbp:rows slice %s to a SubPredictors-derived make; its row count is unbounded", t.obj.Name())
		}
	}
}

// rowsTargetObj resolves the assigned object of a rows make: plain ident
// or selector field.
func rowsTargetObj(pass *Pass, lhs ast.Expr) types.Object {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		return pass.ObjectOf(lhs)
	case *ast.SelectorExpr:
		return pass.ObjectOf(lhs.Sel)
	}
	return nil
}

// productLen unwraps a b*n length expression, returning the n factor.
func productLen(e ast.Expr) (ast.Expr, bool) {
	b, ok := e.(*ast.BinaryExpr)
	if !ok || b.Op != token.MUL {
		return nil, false
	}
	return b.Y, true
}

// subDerivedExpr reports whether e resolves to SubPredictors(): a direct
// call, an NSub-tagged field or variable, or a local whose single
// definition is one of those.
func subDerivedExpr(pass *Pass, e ast.Expr) bool {
	if isSubPredictorsCall(e) {
		return true
	}
	var obj types.Object
	switch e := e.(type) {
	case *ast.Ident:
		obj = pass.ObjectOf(e)
	case *ast.SelectorExpr:
		obj = pass.ObjectOf(e.Sel)
	default:
		return false
	}
	if obj == nil {
		return false
	}
	var tag NSub
	if pass.ImportObjectFact(obj, &tag) {
		return true
	}
	// Local defined once from SubPredictors() or an NSub value.
	derived := false
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				if identObj(pass, lhs) != obj || i >= len(as.Rhs) {
					continue
				}
				rhs := as.Rhs[i]
				if isSubPredictorsCall(rhs) {
					derived = true
				} else if sel, ok := rhs.(*ast.SelectorExpr); ok {
					if pass.ImportObjectFact(pass.ObjectOf(sel.Sel), &tag) {
						derived = true
					}
				}
			}
			return true
		})
	}
	return derived
}
