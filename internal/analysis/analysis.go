// Package analysis is a repo-specific static-analysis suite enforcing the
// invariants the paper's evaluation rests on: bit-reproducible results
// (determinism), hardware structures that stay inside the paper's declared
// bit budgets (hwbudget), saturating weight and counter arithmetic
// (satweights), consistent atomic access (atomics), allocation-free
// prediction hot loops (hotalloc), overflow-free packed-lane arithmetic
// (lanebounds), and data-race-free worker callbacks (parsafe).
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis — an
// Analyzer runs over one type-checked package at a time and reports
// position-tagged diagnostics — but is built on the standard library only
// (go/ast, go/types, and export data from `go list -export`), because this
// repository carries no external dependencies. Whole-program analyzers
// implement a Collect phase that visits every package before any Run and
// exports typed facts about package objects (ExportObjectFact); consumers
// read them back with ImportObjectFact. Facts are keyed by package path and
// object name, which unifies an object reached through export data with the
// same object in its source-checked home package.
//
// Suppressions: a comment of the form
//
//	//blbp:allow(<analyzer>) <reason>
//
// on the flagged line or the line immediately above silences that
// analyzer's diagnostics for the line. Matching is position-exact: a
// comment two or more lines away suppresses nothing. A malformed allow
// comment (missing reason), an unknown analyzer name, and an allow that
// suppresses no finding are themselves diagnostics (analyzer "allow",
// never suppressible). Every suppression must be recorded in
// ANALYSIS_EXCEPTIONS.md at the repository root; `blbplint -suppressed`
// lists the live ones and `blbplint -exceptions` cross-checks the file.
package analysis

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"reflect"
	"regexp"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// DefaultScope lists package-path suffixes the analyzer applies to
	// (matched at path-segment boundaries); nil means every package.
	// Program.Scopes overrides it per run.
	DefaultScope []string
	// Collect, when non-nil, runs over every package of the program before
	// any Run call, letting whole-program analyzers export facts
	// (ExportObjectFact) and verify the declarations facts are built from.
	Collect func(*Pass)
	// Run reports diagnostics for one package.
	Run func(*Pass) error
}

// Fact is a typed, analyzer-exported statement about a package object
// (a field's saturation range, a method's guarded upper bound). Facts
// cross analyzer boundaries: satweights exports them, lanebounds imports
// them. Implementations must be pointer types.
type Fact interface {
	AFact()
}

// MergeableFact lets a fact widen itself when two objects share a key
// (same-named fields of two structs in one package); Merge must keep the
// fact conservative for every consumer.
type MergeableFact interface {
	Fact
	Merge(other Fact)
}

// TextEdit replaces the byte range [Start, End) of Filename with NewText.
type TextEdit struct {
	Filename string
	Start    int
	End      int
	NewText  string
}

// SuggestedFix is a mechanical rewrite that resolves a diagnostic.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks diagnostics silenced by a //blbp:allow comment;
	// they are kept (for auditing) but do not fail the build.
	Suppressed bool
	// Fix, when non-nil, is a rewrite `blbplint -fix` can apply.
	Fix *SuggestedFix
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// allowEntry is one parsed //blbp:allow comment.
type allowEntry struct {
	pos   token.Position
	names []string
	used  map[string]bool
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// allow maps file:line to the allow comment active there; malformed
	// holds the audit diagnostics found while parsing the comments.
	allow     map[string]*allowEntry
	malformed []Diagnostic
}

// Program is the full set of packages under analysis plus cross-package
// state shared between Collect and Run phases.
type Program struct {
	Packages []*Package
	// Facts holds whole-program analyzer-private state keyed by analyzer;
	// Collect writes it, Run reads it. The driver runs phases sequentially,
	// so no locking.
	Facts map[*Analyzer]interface{}
	// Scopes overrides analyzers' DefaultScope by name: a missing entry
	// keeps the default, a list containing "all" means every package.
	Scopes map[string][]string

	// objFacts is the cross-analyzer fact store, keyed by object key and
	// concrete fact type.
	objFacts map[string]Fact
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Program  *Program
	report   func(Diagnostic)
}

// InScope reports whether the pass's package is inside the analyzer's
// configured scope (Program.Scopes override, else DefaultScope; nil or
// "all" means every package).
func (p *Pass) InScope() bool {
	scope, ok := p.Program.Scopes[p.Analyzer.Name]
	if !ok {
		scope = p.Analyzer.DefaultScope
	}
	if scope == nil {
		return true
	}
	for _, s := range scope {
		if s == "all" {
			return true
		}
	}
	return pathIn(p.Pkg.Path, scope)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a diagnostic carrying a suggested fix.
func (p *Pass) ReportFix(pos token.Pos, fix *SuggestedFix, format string, args ...interface{}) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// Edit builds a TextEdit replacing the source range [from, to).
func (p *Pass) Edit(from, to token.Pos, newText string) TextEdit {
	f, t := p.Pkg.Fset.Position(from), p.Pkg.Fset.Position(to)
	return TextEdit{Filename: f.Filename, Start: f.Offset, End: t.Offset, NewText: newText}
}

// Render prints the node back to canonical Go source (for building fix
// texts without re-reading the file).
func (p *Pass) Render(n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, p.Pkg.Fset, n); err != nil {
		return ""
	}
	return buf.String()
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object denoted by id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

// objKey builds the cross-package identity key for an object: facts
// attached to a field reached through export data must unify with the same
// field in its source-checked home package, so objects are keyed by
// package path and name (conservatively: same-named objects of one
// package share a key — MergeableFact widens on collision).
func objKey(obj types.Object) string {
	pkg := ""
	if obj.Pkg() != nil {
		pkg = obj.Pkg().Path()
	}
	return pkg + ":" + obj.Name()
}

func factKey(obj types.Object, f Fact) string {
	return objKey(obj) + "\x00" + reflect.TypeOf(f).String()
}

// ExportObjectFact attaches fact to obj for later ImportObjectFact calls
// (from any analyzer). On a key collision a MergeableFact widens the
// stored fact; otherwise the new fact replaces it.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil {
		return
	}
	if p.Program.objFacts == nil {
		p.Program.objFacts = map[string]Fact{}
	}
	key := factKey(obj, fact)
	if old, ok := p.Program.objFacts[key]; ok {
		if m, ok := old.(MergeableFact); ok {
			m.Merge(fact)
			return
		}
	}
	p.Program.objFacts[key] = fact
}

// ImportObjectFact copies the stored fact of fact's concrete type for obj
// into fact, reporting whether one was found.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil || p.Program.objFacts == nil {
		return false
	}
	stored, ok := p.Program.objFacts[factKey(obj, fact)]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
	return true
}

var allowRe = regexp.MustCompile(`^//blbp:allow\(([a-z,]+)\)\s+\S`)

// buildAllow parses every //blbp:allow comment of the package into the
// position-keyed allow map and records malformed comments (missing
// reason, empty analyzer list) as unsuppressible "allow" diagnostics.
func (pkg *Package) buildAllow() {
	if pkg.allow != nil {
		return
	}
	pkg.allow = map[string]*allowEntry{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//blbp:allow") {
					continue
				}
				cp := pkg.Fset.Position(c.Pos())
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					pkg.malformed = append(pkg.malformed, Diagnostic{
						Pos:      cp,
						Analyzer: "allow",
						Message:  "malformed //blbp:allow comment: want //blbp:allow(<analyzer>) <reason>, with a non-empty reason",
					})
					continue
				}
				key := fmt.Sprintf("%s:%d", cp.Filename, cp.Line)
				entry := pkg.allow[key]
				if entry == nil {
					entry = &allowEntry{pos: cp, used: map[string]bool{}}
					pkg.allow[key] = entry
				}
				for _, n := range strings.Split(m[1], ",") {
					entry.names = append(entry.names, strings.TrimSpace(n))
				}
			}
		}
	}
}

// allowedAt reports whether the named analyzer is suppressed at position
// pos by a //blbp:allow comment on the same line or the line above
// (position-exact: two lines away does not match), marking the matching
// entry used for the unused-allow audit.
func (pkg *Package) allowedAt(name string, pos token.Position) bool {
	pkg.buildAllow()
	for _, line := range []int{pos.Line, pos.Line - 1} {
		entry := pkg.allow[fmt.Sprintf("%s:%d", pos.Filename, line)]
		if entry == nil {
			continue
		}
		for _, n := range entry.names {
			if n == name {
				entry.used[name] = true
				return true
			}
		}
	}
	return false
}

// auditAllows returns the allow-comment audit diagnostics for the package:
// malformed comments, unknown analyzer names, and allows that suppressed
// nothing among the analyzers that ran. They carry Analyzer "allow" and
// are never themselves suppressible.
func (pkg *Package) auditAllows(known, ran map[string]bool) []Diagnostic {
	pkg.buildAllow()
	diags := append([]Diagnostic(nil), pkg.malformed...)
	for _, entry := range pkg.allow {
		for _, n := range entry.names {
			switch {
			case !known[n]:
				diags = append(diags, Diagnostic{
					Pos:      entry.pos,
					Analyzer: "allow",
					Message:  fmt.Sprintf("//blbp:allow names unknown analyzer %q", n),
				})
			case ran[n] && !entry.used[n]:
				diags = append(diags, Diagnostic{
					Pos:      entry.pos,
					Analyzer: "allow",
					Message:  fmt.Sprintf("unused //blbp:allow(%s): it suppresses no finding on this line or the line below", n),
				})
			}
		}
	}
	return diags
}

// Run executes the analyzers over the program: every Collect phase first
// (in analyzer order, package order — facts exported by an earlier
// analyzer are visible to later Collects and every Run), then every Run,
// then the allow-comment audit. Diagnostics are returned with
// suppressions marked.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	if prog.Facts == nil {
		prog.Facts = map[*Analyzer]interface{}{}
	}
	var diags []Diagnostic
	reporter := func(pkg *Package) func(Diagnostic) {
		return func(d Diagnostic) {
			d.Suppressed = pkg.allowedAt(d.Analyzer, d.Pos)
			diags = append(diags, d)
		}
	}
	for _, a := range analyzers {
		if a.Collect == nil {
			continue
		}
		for _, pkg := range prog.Packages {
			a.Collect(&Pass{Analyzer: a, Pkg: pkg, Program: prog, report: reporter(pkg)})
		}
	}
	for _, a := range analyzers {
		for _, pkg := range prog.Packages {
			pass := &Pass{Analyzer: a, Pkg: pkg, Program: prog, report: reporter(pkg)}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	known, ran := map[string]bool{}, map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	for _, pkg := range prog.Packages {
		diags = append(diags, pkg.auditAllows(known, ran)...)
	}
	return diags, nil
}

// pathIn reports whether the package path matches any of the given path
// suffixes (each matched at a path-segment boundary).
func pathIn(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// hasDirective reports whether the doc comment group contains the given
// //blbp:<name> directive (with or without an argument list).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	_, ok := directiveArg(doc, directive)
	return ok
}

// directiveArg finds the //blbp:<name> or //blbp:<name>(arg) directive in
// the comment group and returns its argument text ("" when absent).
func directiveArg(doc *ast.CommentGroup, directive string) (string, bool) {
	if doc == nil {
		return "", false
	}
	prefix := "//" + directive
	for _, c := range doc.List {
		if !strings.HasPrefix(c.Text, prefix) {
			continue
		}
		rest := c.Text[len(prefix):]
		if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
			return "", true
		}
		if rest[0] == '(' {
			if end := strings.IndexByte(rest, ')'); end > 0 {
				return rest[1:end], true
			}
		}
	}
	return "", false
}
