// Package analysis is a repo-specific static-analysis suite enforcing the
// invariants the paper's evaluation rests on: bit-reproducible results
// (determinism), hardware structures that stay inside the paper's declared
// bit budgets (hwbudget), saturating weight and counter arithmetic
// (satweights), consistent atomic access (atomics), and allocation-free
// prediction hot loops (hotalloc).
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis — an
// Analyzer runs over one type-checked package at a time and reports
// position-tagged diagnostics — but is built on the standard library only
// (go/ast, go/types, and export data from `go list -export`), because this
// repository carries no external dependencies. Whole-program analyzers
// (atomics) additionally implement a Collect phase that visits every
// package before any Run, standing in for x/tools facts.
//
// Suppressions: a comment of the form
//
//	//blbp:allow(<analyzer>) <reason>
//
// on the flagged line or the line immediately above silences that
// analyzer's diagnostics for the line. Every suppression must be recorded
// in ANALYSIS_EXCEPTIONS.md at the repository root; `blbplint -suppressed`
// lists the live ones so the file can be audited.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow comments.
	Name string
	// Doc is a one-line description.
	Doc string
	// Collect, when non-nil, runs over every package of the program before
	// any Run call, letting whole-program analyzers gather facts (stored on
	// Program.Facts keyed by the analyzer).
	Collect func(*Pass)
	// Run reports diagnostics for one package.
	Run func(*Pass) error
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks diagnostics silenced by a //blbp:allow comment;
	// they are kept (for auditing) but do not fail the build.
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// allow maps file:line to the analyzer names allowed there, built
	// lazily from //blbp:allow comments.
	allow map[string]map[string]bool
}

// Program is the full set of packages under analysis plus cross-package
// state shared between Collect and Run phases.
type Program struct {
	Packages []*Package
	// Facts holds whole-program state keyed by analyzer; Collect writes it,
	// Run reads it. The driver runs phases sequentially, so no locking.
	Facts map[*Analyzer]interface{}
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Program  *Program
	report   func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.report(Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// ObjectOf returns the object denoted by id, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object { return p.Pkg.Info.ObjectOf(id) }

var allowRe = regexp.MustCompile(`^//blbp:allow\(([a-z,]+)\)\s+\S`)

// allowedAt reports whether the named analyzer is suppressed at position
// pos by a //blbp:allow comment on the same line or the line above.
func (pkg *Package) allowedAt(name string, pos token.Position) bool {
	if pkg.allow == nil {
		pkg.allow = map[string]map[string]bool{}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := allowRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					cp := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", cp.Filename, cp.Line)
					set := pkg.allow[key]
					if set == nil {
						set = map[string]bool{}
						pkg.allow[key] = set
					}
					for _, n := range strings.Split(m[1], ",") {
						set[strings.TrimSpace(n)] = true
					}
				}
			}
		}
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if set := pkg.allow[fmt.Sprintf("%s:%d", pos.Filename, line)]; set[name] || set["all"] {
			return true
		}
	}
	return false
}

// Run executes the analyzers over the program: every Collect phase first
// (in analyzer order, package order), then every Run. Diagnostics are
// returned in (package, file, line) order with suppressions marked.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	if prog.Facts == nil {
		prog.Facts = map[*Analyzer]interface{}{}
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Collect == nil {
			continue
		}
		for _, pkg := range prog.Packages {
			a.Collect(&Pass{Analyzer: a, Pkg: pkg, Program: prog, report: func(Diagnostic) {}})
		}
	}
	for _, a := range analyzers {
		for _, pkg := range prog.Packages {
			pass := &Pass{Analyzer: a, Pkg: pkg, Program: prog}
			pass.report = func(d Diagnostic) {
				d.Suppressed = pkg.allowedAt(d.Analyzer, d.Pos)
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	return diags, nil
}

// pathIn reports whether the package path matches any of the given path
// suffixes (each matched at a path-segment boundary).
func pathIn(pkgPath string, suffixes []string) bool {
	for _, s := range suffixes {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// hasDirective reports whether the doc comment group contains the given
// //blbp:<name> directive.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//"+directive) {
			return true
		}
	}
	return false
}
