package analysis

import (
	"fmt"
	"os"
	"sort"
)

// ApplyFixes applies every suggested fix among diags to the files on disk,
// returning how many fixes were applied. Edits are grouped per file,
// sorted, and applied back to front; overlapping edits (two fixes
// rewriting the same bytes) abort with an error rather than corrupting
// the file, and suppressed diagnostics are never applied.
func ApplyFixes(diags []Diagnostic) (int, error) {
	type edit struct {
		TextEdit
		diag string // for overlap error messages
	}
	byFile := map[string][]edit{}
	applied := 0
	for _, d := range diags {
		if d.Fix == nil || d.Suppressed {
			continue
		}
		applied++
		for _, e := range d.Fix.Edits {
			byFile[e.Filename] = append(byFile[e.Filename], edit{e, d.String()})
		}
	}
	var files []string
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, fname := range files {
		edits := byFile[fname]
		sort.Slice(edits, func(i, j int) bool {
			if edits[i].Start != edits[j].Start {
				return edits[i].Start < edits[j].Start
			}
			return edits[i].End < edits[j].End
		})
		src, err := os.ReadFile(fname)
		if err != nil {
			return 0, fmt.Errorf("analysis: applying fixes: %w", err)
		}
		// Distinct fixes may carry byte-identical edits (two rewrites in one
		// file each adding the same import); collapse them before the
		// overlap check.
		uniq := edits[:1]
		for _, e := range edits[1:] {
			prev := uniq[len(uniq)-1]
			if e.TextEdit == prev.TextEdit {
				continue
			}
			uniq = append(uniq, e)
		}
		edits = uniq
		for i := 1; i < len(edits); i++ {
			if edits[i].Start < edits[i-1].End {
				return 0, fmt.Errorf("analysis: overlapping fixes in %s (%s / %s); apply and re-lint", fname, edits[i-1].diag, edits[i].diag)
			}
		}
		last := edits[len(edits)-1]
		if last.End > len(src) || last.Start < 0 {
			return 0, fmt.Errorf("analysis: fix range [%d,%d) outside %s (%d bytes)", last.Start, last.End, fname, len(src))
		}
		for i := len(edits) - 1; i >= 0; i-- {
			e := edits[i]
			src = append(src[:e.Start], append([]byte(e.NewText), src[e.End:]...)...)
		}
		if err := os.WriteFile(fname, src, 0o644); err != nil {
			return 0, fmt.Errorf("analysis: applying fixes: %w", err)
		}
	}
	return applied, nil
}
