package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// determinismScope lists the packages whose output feeds results/*.csv and
// must therefore be byte-reproducible at any -parallel: the simulation
// engine, the experiment execution layer, the declarative plan layer that
// assembles every output, the workload-spec layer that compiles the
// generator population those plans name, the table renderer, the multi-stream batching
// engine (whose bit-identical-to-serial contract a nondeterministic
// iteration order would silently void), the trace layer whose columnar
// storage, stats, and spill codecs every replay and cache path reads, the
// snapshot codec whose encodings double as state fingerprints, and
// every command front end that emits result rows (bench timing reads are
// individually audited in ANALYSIS_EXCEPTIONS.md).
var determinismScope = []string{
	"internal/trace",
	"internal/sim",
	"internal/snapshot",
	"internal/experiments",
	"internal/runspec",
	"internal/wspec",
	"internal/report",
	"internal/batch",
	"cmd/experiments",
	"cmd/bench",
	"cmd/blbpsim",
	"cmd/tracegen",
}

// Determinism forbids the classic sources of run-to-run drift in the
// result-producing packages: wall-clock reads, the process-global
// math/rand generator, iteration over maps (Go randomizes the order), and
// goroutines that write captured variables directly instead of routing
// results through the Runner's index-keyed reassembly cells.
var Determinism = &Analyzer{
	Name:         "determinism",
	Doc:          "forbid time.Now, global math/rand, map ranges, and unkeyed goroutine writes in results-producing packages",
	DefaultScope: determinismScope,
	Run:          runDeterminism,
}

// randAllowed lists package-level math/rand functions that are
// deterministic because they only construct explicitly seeded generators.
var randAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDeterminism(pass *Pass) error {
	if !pass.InScope() {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(pass, n); fn != nil && fn.Pkg() != nil {
					switch fn.Pkg().Path() {
					case "time":
						if fn.Name() == "Now" && fn.Type().(*types.Signature).Recv() == nil {
							pass.Reportf(n.Pos(), "time.Now in a results-producing package breaks reproducibility; thread timings through the caller")
						}
					case "math/rand", "math/rand/v2":
						if fn.Type().(*types.Signature).Recv() == nil && !randAllowed[fn.Name()] {
							pass.Reportf(n.Pos(), "global math/rand.%s is process-seeded and non-reproducible; use rand.New(rand.NewSource(seed))", fn.Name())
						}
					}
				}
				// Function literals handed to the worker pool run
				// concurrently exactly like go statements.
				if name := calleeName(n); name == "submit" || name == "Go" {
					for _, arg := range n.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							checkGoroutineWrites(pass, lit)
						}
					}
				}
			case *ast.RangeStmt:
				if t := pass.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Map); ok {
						pass.Reportf(n.Pos(), "ranging over a map yields a random order; collect and sort keys before emitting results")
					}
				}
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutineWrites(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

// checkGoroutineWrites flags assignments inside a concurrently-executed
// function literal whose target is a plain captured identifier. Writes
// through a captured pointer, selector, or index expression are the
// sanctioned index-keyed reassembly pattern (each task owns its cell);
// a bare captured variable is shared state with a racy, order-dependent
// final value.
func checkGoroutineWrites(pass *Pass, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // nested literals are not necessarily concurrent
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && capturedBy(pass, id, lit) {
					pass.Reportf(id.Pos(), "goroutine assigns captured variable %s; route results through an index-keyed cell (cells[i].field = ...)", id.Name)
				}
			}
		case *ast.IncDecStmt:
			if id, ok := n.X.(*ast.Ident); ok && capturedBy(pass, id, lit) {
				pass.Reportf(id.Pos(), "goroutine mutates captured variable %s; route results through an index-keyed cell", id.Name)
			}
		}
		return true
	})
}

// capturedBy reports whether id denotes a variable declared outside lit.
func capturedBy(pass *Pass, id *ast.Ident, lit *ast.FuncLit) bool {
	obj := pass.ObjectOf(id)
	if obj == nil {
		return false
	}
	if _, ok := obj.(*types.Var); !ok {
		return false
	}
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}

// calleeFunc resolves a call's static callee to its *types.Func, or nil
// for builtins, type conversions, and dynamic calls.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.ObjectOf(id).(*types.Func)
	return fn
}

// calleeName returns the syntactic name of a call's callee.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
