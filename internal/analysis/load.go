package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// The loader type-checks the module's packages from source while resolving
// every import — standard library and intra-module alike — from compiler
// export data produced by `go list -export`. That gives full go/types
// information (the analyzers need resolved field objects and interface
// assignability) without depending on golang.org/x/tools.

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath  string
	Dir         string
	Export      string
	GoFiles     []string
	TestGoFiles []string
	Module      *struct{ Path, Dir string }
	Error       *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json=ImportPath,Dir,Export,GoFiles,TestGoFiles,Module,Error"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter returns a types.Importer reading export data files from
// the given ImportPath -> export-file map.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
}

// newInfo returns a types.Info with every map the analyzers consult.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// LoadOptions configures Load's package selection.
type LoadOptions struct {
	// Tests includes each package's in-package _test.go files (the ones
	// go list reports as TestGoFiles). External _test packages are not
	// loaded: they only exercise the exported API, while the invariants
	// the analyzers prove live in the implementation.
	Tests bool
}

// Load type-checks the module packages matching the patterns (run from
// dir, typically the repository root) and returns them as a Program.
// Non-module dependencies are loaded from export data only. Build
// constraints apply exactly as in a build (go list resolves the file
// lists), and vendored packages are never matched by path patterns.
func Load(dir string, patterns ...string) (*Program, error) {
	return LoadWith(LoadOptions{}, dir, patterns...)
}

// LoadWith is Load with explicit options.
func LoadWith(opts LoadOptions, dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"-deps", "-export"}, patterns...)
	pkgs, err := goList(dir, args...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	var mods []listPkg
	for _, p := range pkgs {
		if p.Error != nil && p.Error.Err != "" {
			return nil, fmt.Errorf("analysis: go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if p.Module != nil {
			mods = append(mods, p)
		}
	}
	if len(mods) == 0 {
		return nil, fmt.Errorf("analysis: no module packages match %v", patterns)
	}
	sort.Slice(mods, func(i, j int) bool { return mods[i].ImportPath < mods[j].ImportPath })

	fset := token.NewFileSet()
	type parsedPkg struct {
		p     listPkg
		files []*ast.File
	}
	var parsed []parsedPkg
	// Test files import packages (testing, scratch deps) the -deps walk of
	// the non-test build never reaches; collect them for a second export
	// pass.
	extraImports := map[string]bool{}
	for _, p := range mods {
		names := p.GoFiles
		if opts.Tests {
			names = append(append([]string{}, names...), p.TestGoFiles...)
		}
		files := make([]*ast.File, 0, len(names))
		for _, gf := range names {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, gf), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			files = append(files, f)
			for _, im := range f.Imports {
				path := im.Path.Value[1 : len(im.Path.Value)-1]
				if _, ok := exports[path]; !ok {
					extraImports[path] = true
				}
			}
		}
		parsed = append(parsed, parsedPkg{p: p, files: files})
	}
	if len(extraImports) > 0 {
		var paths []string
		for p := range extraImports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		more, err := goList(dir, append([]string{"-deps", "-export"}, paths...)...)
		if err != nil {
			return nil, err
		}
		for _, p := range more {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	imp := exportImporter(fset, exports)
	prog := &Program{Facts: map[*Analyzer]interface{}{}}
	for _, pp := range parsed {
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(pp.p.ImportPath, fset, pp.files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", pp.p.ImportPath, err)
		}
		prog.Packages = append(prog.Packages, &Package{
			Path:  pp.p.ImportPath,
			Fset:  fset,
			Files: pp.files,
			Types: tpkg,
			Info:  info,
		})
	}
	return prog, nil
}

// LoadDir parses and type-checks the single package rooted at dir (every
// .go file in it), registering it under asPath so path-scoped analyzers
// apply. It is the loader behind the analyzer testdata suites: testdata
// packages import only the standard library, whose export data is resolved
// through `go list -export`.
func LoadDir(dir, asPath string) (*Program, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
		for _, im := range f.Imports {
			importSet[im.Path.Value[1:len(im.Path.Value)-1]] = true
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	exports := map[string]string{}
	if len(importSet) > 0 {
		var paths []string
		for p := range importSet {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		pkgs, err := goList(dir, append([]string{"-deps", "-export"}, paths...)...)
		if err != nil {
			return nil, err
		}
		for _, p := range pkgs {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	info := newInfo()
	conf := types.Config{Importer: exportImporter(fset, exports)}
	tpkg, err := conf.Check(asPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", dir, err)
	}
	return &Program{
		Packages: []*Package{{Path: asPath, Fset: fset, Files: files, Types: tpkg, Info: info}},
		Facts:    map[*Analyzer]interface{}{},
	}, nil
}
