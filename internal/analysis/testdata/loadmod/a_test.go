package loadmod

import "testing"

// TestA is in-package test code: part of the analysis only under
// LoadOptions.Tests.
func TestA(t *testing.T) {
	if A() != 1 {
		t.Fatal("A")
	}
}
