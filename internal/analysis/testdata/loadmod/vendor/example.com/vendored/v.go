// Package vendored must never be matched by a path pattern: the go tool
// excludes vendor trees from ./... expansion.
package vendored

// V would trip every analyzer scope check if it leaked into a Program.
func V() int { return 3 }
