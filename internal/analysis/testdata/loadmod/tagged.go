//go:build loadmodextra

package loadmod

// Tagged exists only under the loadmodextra build tag; a default load
// must not see this file.
func Tagged() int { return 2 }
