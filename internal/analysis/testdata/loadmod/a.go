// Package loadmod is the loader-coverage fixture: one always-built file,
// one file behind a build tag, one in-package test file, and a vendor
// tree — each exercising a selection rule Load must honor.
package loadmod

// A is the symbol every load must see.
func A() int { return 1 }
