// Package hotalloc is analyzer testdata. Only functions carrying the
// //blbp:hot directive are checked.
package hotalloc

type pred struct {
	buf  []uint64
	rows [8]int
}

type sink interface{ accept(uint64) }

func use(v interface{}) { _ = v }

// predict is a hot function exhibiting every forbidden allocation.
//
//blbp:hot
func (p *pred) predict(pc uint64, s sink) uint64 {
	f := func() uint64 { return pc } // want "closure in //blbp:hot predict allocates per call"
	m := map[uint64]int{pc: 1}       // want "map literal in //blbp:hot predict allocates per call"
	sl := []int{1, 2}                // want "slice literal in //blbp:hot predict allocates per call"
	e := &pred{}                     // want "&composite literal in //blbp:hot predict escapes to the heap"
	p.buf = append(p.buf, pc)        // want "append in //blbp:hot predict may grow the backing array"
	use(pc)                          // want "argument boxes a concrete value into an interface in //blbp:hot predict"

	scratch := make([]uint64, 0, 8)
	scratch = append(scratch, pc) // ok: 3-arg make carries capacity
	window := p.buf[:0]
	window = append(window, pc) // ok: reslice of an existing buffer

	rows := [8]int{} // ok: array value, stack-allocated
	v := pred{}      // ok: struct value, stack-allocated
	use(s)           // ok: already an interface
	_ = f
	_ = m
	_ = sl
	_ = e
	_ = rows
	_ = v
	return scratch[0] + window[0]
}

// fill appends into a caller-owned slice: the hot contract is that the
// caller preallocated it.
//
//blbp:hot
func (p *pred) fill(dst []uint64) []uint64 {
	dst = append(dst, p.buf...) // ok: slice-typed parameter
	return dst
}

// cold does all the same things without the directive and is ignored.
func (p *pred) cold(pc uint64) {
	f := func() uint64 { return pc } // ok: not a hot function
	m := map[uint64]int{pc: 1}       // ok
	p.buf = append(p.buf, f(), uint64(m[pc]))
	use(pc) // ok
}
