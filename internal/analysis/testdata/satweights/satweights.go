// Package satweights is analyzer testdata: loaded under a path ending in
// internal/cond so the saturating-arithmetic rules apply.
package satweights

type entry struct {
	ctr int8
	u   uint8
}

type table struct {
	weights []int8
	entries []entry
}

// satInc8 is the package-local clamp helper; its raw arithmetic is exempt.
//
//blbp:clamp
func satInc8(v, max int8) int8 {
	if v < max {
		v++ // ok: local inside a clamp helper
	}
	return v
}

func (t *table) train(i int, taken bool) {
	e := &t.entries[i]
	if taken {
		e.ctr++ // want "raw \+\+ on int8-typed hardware state wraps"
	} else {
		e.ctr = satInc8(e.ctr, 3) // ok: routed through the clamp helper
	}
	e.u -= 1          // want "raw -= on uint8-typed hardware state wraps"
	t.weights[i] += 2 // want "raw \+= on int8-typed hardware state wraps"

	sum := 0
	for j := range t.weights {
		sum++ // ok: plain local, not hardware state
		_ = j
	}
	_ = sum
}
