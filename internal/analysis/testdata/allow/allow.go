// Package allow exercises the position-exact //blbp:allow matching rules.
// Every finding here is a determinism time.Now violation; what varies is
// where (and how well-formed) the suppression comment is. The assertions
// live in TestAllowPositions, not in // want comments, because the test
// checks Suppressed flags rather than diagnostic presence.
package allow

import "time"

// SameLine is suppressed by a comment on the flagged line itself.
func SameLine() time.Time {
	return time.Now() //blbp:allow(determinism) fixture: same-line comment
}

// LineAbove is suppressed by a comment on the line immediately above.
func LineAbove() time.Time {
	//blbp:allow(determinism) fixture: line-above comment
	return time.Now()
}

// TwoAbove is NOT suppressed: the comment sits two lines up, outside the
// position-exact window, so the finding stays live and the comment is
// flagged as unused.
func TwoAbove() time.Time {
	//blbp:allow(determinism) fixture: two lines above, must not match

	return time.Now()
}

// MultiName lists several analyzers in one comment; the determinism name
// must match out of the list.
func MultiName() time.Time {
	//blbp:allow(determinism,hwbudget) fixture: multi-analyzer comment
	return time.Now()
}

// MissingReason has no justification text; the comment itself is a
// malformed-allow finding and suppresses nothing.
func MissingReason() time.Time {
	//blbp:allow(determinism)
	return time.Now()
}
