// Package lanes is a miniature of the real packed-weight geometry: the
// same lane constants, a Validate-guarded configuration, a bound-verified
// transfer builder, and tagged table/accumulator/rows fields. The good
// functions mirror the shapes lanebounds proves in internal/core; the bad*
// functions violate one discipline each.
package lanes

import "errors"

const (
	laneBits     = 16
	lanesPerWord = 64 / laneBits
	laneMask     = 1<<laneBits - 1
)

// Config mirrors the guarded geometry: Validate bounds both the weight
// width (and with it the transfer range) and the sub-predictor count.
type Config struct {
	WeightBits int
	Iv         []int
}

func (c Config) SubPredictors() int { return 1 + len(c.Iv) }

func (c Config) Validate() error {
	if c.WeightBits < 2 || c.WeightBits > 8 {
		return errors.New("weight bits out of range")
	}
	if c.SubPredictors() > 16 {
		return errors.New("too many sub-predictors")
	}
	return nil
}

var mags = [4]int{0, 1, 5, 13}

// buildTransfer covers both the literal magnitude table and the widest
// 1<<(WeightBits-1)-1 range the Validate guard admits.
//
//blbp:bound(-127,127)
func buildTransfer(weightBits int, use bool) []int {
	max := 1<<uint(weightBits-1) - 1
	t := make([]int, 2*max+1)
	for w := -max; w <= max; w++ {
		v := w
		if use {
			m := w
			if m < 0 {
				m = -m
			}
			if m > 3 {
				m = 3
			}
			v = mags[m]
			if w < 0 {
				v = -v
			}
		}
		t[w+max] = v
	}
	return t
}

type P struct {
	// weights is the raw narrow store; satweights proves ±127, which the
	// transfer bound covers (the fact-dependent true negative).
	weights []int8

	//blbp:bound(-127,127)
	transfer []int

	//blbp:lanes(table)
	pweights []uint64

	//blbp:bound(0,127)
	laneBias int

	//blbp:rows
	pRowOff []int

	//blbp:lanes(acc)
	acc [4]uint64
}

func New(cfg Config) *P {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.SubPredictors()
	tr := buildTransfer(cfg.WeightBits, true)
	bias := 0
	for _, v := range tr {
		if v < 0 {
			v = -v
		}
		if v > bias {
			bias = v
		}
	}
	return &P{
		weights:  make([]int8, n*8),
		transfer: tr,
		pweights: make([]uint64, n*2),
		laneBias: bias,
		pRowOff:  make([]int, n),
	}
}

// fill seeds every lane with the bias (the all-zero-weights image).
func (p *P) fill() {
	w := uint64(p.laneBias)
	w |= w << laneBits
	w |= w << (2 * laneBits)
	for i := range p.pweights {
		p.pweights[i] = w
	}
}

// set is the masked lane insert: transfer element plus bias is provably
// non-negative and fits the cell bound.
func (p *P) set(i, k, tv int) {
	sh := uint(k%lanesPerWord) * laneBits
	p.pweights[i] = p.pweights[i]&^(uint64(laneMask)<<sh) | uint64(tv+p.laneBias)<<sh
}

func (p *P) train(w int8) {
	p.set(0, 1, p.transfer[int(w)+127])
}

// sum is the proven accumulation shape: zeroed window, one rows loop,
// word loop keyed by the target index.
func (p *P) sum() {
	acc := p.acc[:2]
	for w := range acc {
		acc[w] = 0
	}
	for _, base := range p.pRowOff {
		row := p.pweights[base : base+2]
		for w, v := range row {
			acc[w] += v
		}
	}
}

// read extracts one lane: aligned shift then mask, all bounded.
func (p *P) read(k int) int {
	v := int(p.acc[k/lanesPerWord] >> (uint(k%lanesPerWord) * laneBits) & laneMask)
	return v - p.laneBias
}

// badStore adds two packed words: per-lane 255+255 exceeds the cell bound.
func (p *P) badStore() {
	p.pweights[0] = p.pweights[0] + p.pweights[1] // want `above the proven bound`
}

// badNoZero accumulates into a window never cleared in this function.
func (p *P) badNoZero() {
	acc := p.acc[:2]
	for _, base := range p.pRowOff {
		row := p.pweights[base : base+2]
		for w, v := range row {
			acc[w] += v // want `not provably zeroed`
		}
	}
}

// badNoRows accumulates outside any rows loop: nothing bounds how often
// a caller could repeat it.
func (p *P) badNoRows() {
	acc := p.acc[:2]
	for w := range acc {
		acc[w] = 0
	}
	acc[0] += p.pweights[0] // want `exactly one //blbp:rows loop \(found 0\)`
}

// badHoist wraps a proven accumulation in an extra loop that multiplies it
// past the rows bound.
func (p *P) badHoist() {
	acc := p.acc[:2]
	for w := range acc {
		acc[w] = 0
	}
	for i := 0; i < 8; i++ {
		for _, base := range p.pRowOff {
			acc[0] += p.pweights[base] // want `enclosing loop multiplies`
		}
	}
}
