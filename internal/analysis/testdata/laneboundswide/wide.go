package wide // want `no //blbp:bound directive names the transfer table`

const (
	laneBits     = 16
	lanesPerWord = 64 / laneBits
	laneMask     = 1<<laneBits - 1
)

// P packs transferred weights whose raw source is int16: satweights proves
// only ±32767 for the sibling, so the transfer bound cannot cover every
// weight that may index the table and the proof refuses to certify it.
type P struct {
	weights []int16

	//blbp:bound(-127,127)
	transfer []int // want `cannot cover sibling weight field weights \(satweights proves only ±32767\)`
}
