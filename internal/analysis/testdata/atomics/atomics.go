// Package atomics is analyzer testdata. The analyzer is program-wide, so
// the load path does not matter.
package atomics

import "sync/atomic"

type stats struct {
	hits   int64 // accessed atomically somewhere: must be atomic everywhere
	misses int64 // never accessed atomically: plain access is fine
	boxed  atomic.Int64
}

func (s *stats) record(hit bool) {
	if hit {
		atomic.AddInt64(&s.hits, 1) // ok: the sanctioned access itself
	} else {
		s.misses++ // ok: misses is never atomic
	}
	s.boxed.Add(1) // ok: atomic.Int64 is safe by type
}

func (s *stats) total() int64 {
	return s.hits + s.misses // want "hits is accessed via sync/atomic elsewhere"
}

var global int64

func bumpGlobal() {
	atomic.AddInt64(&global, 1)
}

func readGlobal() int64 {
	return global // want "global is accessed via sync/atomic elsewhere"
}
