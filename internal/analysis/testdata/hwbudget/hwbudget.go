// Package hwbudget is analyzer testdata: loaded under a path ending in
// internal/core so both the modulo-index rule and the paper-table
// cross-check of DefaultConfig apply.
package hwbudget

// Config mirrors the checked fields of the BLBP core configuration.
type Config struct {
	K            int
	BitOffset    int
	TableEntries int
	WeightBits   int
	HistBits     int
	LocalEntries int
	LocalBits    int
	ThetaInit    int
}

// DefaultConfig deliberately drifts one field off the paper's Table 2.
func DefaultConfig() Config {
	return Config{
		K:            12,
		BitOffset:    2,
		TableEntries: 2048, // want `DefaultConfig.TableEntries = 2048; paper Table 2 \(BLBP\) specifies 1024`
		WeightBits:   4,
		HistBits:     631,
		LocalEntries: 256,
		LocalBits:    10,
		ThetaInit:    18,
	}
}

func index(table []int8, pc uint64) int8 {
	bad := table[pc%uint64(len(table))] // want "table index computed with %"
	good := table[pc&uint64(len(table)-1)]
	return bad + good
}
