// Package par exercises the parsafe ownership proof: launched tasks may
// write only their own locals and their launch iteration's variables, a
// //blbp:locked callee needs a held lock at every call site, and whether a
// goroutine may call a method depends on the ParSafeFact summary collected
// for it — addLocked (locks internally) is launchable, add (bare counter
// write) is not.
package par

import "sync"

type server struct {
	mu   sync.Mutex
	n    int
	hits []int
}

// addLocked guards its counter update itself, so its summary carries no
// WritesShared flag and launching it is proven safe (the fact-dependent
// true negative).
func (s *server) addLocked() {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}

// add writes the shared counter with no lock; its summary marks it
// WritesShared.
func (s *server) add() {
	s.n++
}

// addUnderLock documents the caller-holds-mu contract as a fact.
//
//blbp:locked
func (s *server) addUnderLock() {
	s.n++
}

func (s *server) SpawnSafe() {
	go s.addLocked()
}

func (s *server) SpawnRacy() {
	go s.add() // want `writes shared state without synchronization`
}

func (s *server) SpawnLocked() {
	go s.addUnderLock() // want `cannot inherit the caller's lock`
}

func (s *server) CallNoLock() {
	s.addUnderLock() // want `requires the caller to hold the lock`
}

func (s *server) CallWithLock() {
	s.mu.Lock()
	s.addUnderLock()
	s.mu.Unlock()
}

// SpawnGuarded's task takes the lock before touching shared state.
func (s *server) SpawnGuarded() {
	go func() {
		s.mu.Lock()
		s.hits = append(s.hits, 1)
		s.mu.Unlock()
	}()
}

// Collect is the proven fan-out shape: each task owns the cell pointer its
// iteration took, so its writes stay inside owned state.
func Collect(src []int) []int {
	cells := make([]int, len(src))
	var wg sync.WaitGroup
	wg.Add(len(src))
	for i, v := range src {
		c := &cells[i]
		v := v
		go func() {
			defer wg.Done()
			*c = v * 2
		}()
	}
	wg.Wait()
	return cells
}

// Sum accumulates into a captured variable from every task: a lost-update
// race.
func Sum(src []int) int {
	total := 0
	var wg sync.WaitGroup
	wg.Add(len(src))
	for _, v := range src {
		v := v
		go func() {
			defer wg.Done()
			total += v // want `read-modify-writes shared total`
		}()
	}
	wg.Wait()
	return total
}

// Broadcast reuses one variable across launch iterations: by the time a
// task reads cur, the loop may have overwritten it.
func Broadcast(msgs []string, send func(string)) {
	var cur string
	var wg sync.WaitGroup
	wg.Add(len(msgs))
	for _, m := range msgs {
		cur = m
		go func() {
			defer wg.Done()
			send(cur) // want `captures cur, which a later iteration`
		}()
	}
	wg.Wait()
}
