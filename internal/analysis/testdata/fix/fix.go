// Package fixme carries one instance of each autofixable finding class:
// a modulo table index (hwbudget rewrites it to a mask) and raw wrapping
// updates of 8-bit predictor state (satweights rewrites them to
// threshold.Sat* calls, adding the import). blbplint -fix must leave the
// package finding-free and compiling; ci.sh smoke-tests exactly that on a
// scratch copy.
package fixme

import (
	"fmt"
)

type counters struct {
	conf int8
	hits []uint8
}

type table struct {
	entries []uint64
	n       uint32
}

// Lookup indexes the table with % on a power-of-two size; the fix masks
// instead.
func (t *table) Lookup(pc uint32) uint64 {
	return t.entries[pc%1024]
}

// Bump does raw ±1 updates of 8-bit state; the fixes saturate them at the
// type bounds.
func (c *counters) Bump(i int) {
	c.conf++
	c.hits[i] += 1
}

// Drop is the decrement side.
func (c *counters) Drop() {
	c.conf--
}

// Describe keeps the fmt import load-bearing before and after fixing.
func (t *table) Describe() string {
	return fmt.Sprintf("%d entries", t.n)
}
