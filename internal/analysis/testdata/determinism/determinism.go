// Package determinism is analyzer testdata: loaded under a path ending in
// internal/sim so the determinism analyzer applies.
package determinism

import (
	"math/rand"
	"time"
)

type cell struct {
	res int
	err error
}

func submit(f func()) { f() }

func clockAndRand() int64 {
	t := time.Now().UnixNano() // want "time.Now in a results-producing package breaks reproducibility"
	n := rand.Int63()          // want "global math/rand.Int63 is process-seeded"
	return t + n
}

func seededRand(seed int64) int64 {
	r := rand.New(rand.NewSource(seed)) // ok: explicit seed
	return r.Int63()                    // ok: method on a seeded generator
}

func mapRange(m map[string]int, keys []string) int {
	sum := 0
	for _, v := range m { // want "ranging over a map yields a random order"
		sum += v
	}
	for _, k := range keys { // ok: slices iterate in order
		sum += m[k]
	}
	return sum
}

func sharedWrites(n int) []int {
	cells := make([]cell, n)
	total := 0
	for i := 0; i < n; i++ {
		i := i
		go func() {
			cells[i].res = i // ok: index-keyed cell
			total = i        // want "goroutine assigns captured variable total"
			total++          // want "goroutine mutates captured variable total"
		}()
		c := &cells[i]
		submit(func() {
			c.res = i // ok: write through captured pointer to own cell
		})
	}
	out := make([]int, 0, n)
	for _, c := range cells {
		out = append(out, c.res)
	}
	return out
}
