package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches the expectation comments in testdata sources:
//
//	// want "regexp"   or   // want `regexp`
var wantRe = regexp.MustCompile("// want (?:\"([^\"]*)\"|`([^`]*)`)")

// wantsIn collects the expectations of every .go file in dir, keyed by
// "filename:line".
func wantsIn(t *testing.T, dir string) map[string]*regexp.Regexp {
	t.Helper()
	wants := map[string]*regexp.Regexp{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".go" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			expr := m[1]
			if expr == "" {
				expr = m[2]
			}
			re, err := regexp.Compile(expr)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern: %v", path, i+1, err)
			}
			wants[fmt.Sprintf("%s:%d", filepath.Base(path), i+1)] = re
		}
	}
	return wants
}

// runTestdata loads testdata/<dirname> as package asPath, runs the
// analyzers (facts flow between them in order), and checks the diagnostics
// against the // want comments: every diagnostic must match the want on
// its line, and every want must fire.
func runTestdata(t *testing.T, analyzers []*Analyzer, dirname, asPath string) {
	t.Helper()
	dir := filepath.Join("testdata", dirname)
	prog, err := LoadDir(dir, asPath)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(prog, analyzers)
	if err != nil {
		t.Fatal(err)
	}
	wants := wantsIn(t, dir)
	hit := map[string]bool{}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		re, ok := wants[key]
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s", key, d.Message)
			continue
		}
		if !re.MatchString(d.Message) {
			t.Errorf("%s: diagnostic %q does not match want %q", key, d.Message, re)
			continue
		}
		hit[key] = true
	}
	for key, re := range wants {
		if !hit[key] {
			t.Errorf("%s: expected diagnostic matching %q, got none", key, re)
		}
	}
}

// The asPath values place each testdata package inside the analyzer's
// scope (pathIn matches path suffixes at segment boundaries).

func TestDeterminism(t *testing.T) {
	runTestdata(t, []*Analyzer{Determinism}, "determinism", "td/internal/sim")
}

func TestHWBudget(t *testing.T) {
	runTestdata(t, []*Analyzer{HWBudget}, "hwbudget", "td/internal/core")
}

func TestSatWeights(t *testing.T) {
	runTestdata(t, []*Analyzer{SatWeights}, "satweights", "td/internal/cond")
}

func TestAtomics(t *testing.T) {
	runTestdata(t, []*Analyzer{Atomics}, "atomics", "td/internal/tracecache")
}

func TestHotAlloc(t *testing.T) {
	runTestdata(t, []*Analyzer{HotAlloc}, "hotalloc", "td/internal/core")
}

// TestLaneBounds runs satweights and lanebounds together over a miniature
// of the real packed-weight geometry: satweights' SatBound facts are what
// let the transfer bound cover its sibling weight field (the fact-dependent
// true negative), while the bad* functions violate the accumulation and
// store disciplines (the true positives).
func TestLaneBounds(t *testing.T) {
	runTestdata(t, []*Analyzer{SatWeights, LaneBounds}, "lanebounds", "td/internal/core")
}

// TestLaneBoundsWide is the fact-dependent true positive: the fixture is
// the same shape but its raw weights are int16, so the SatBound fact
// (±32767) exceeds what the transfer bound was verified for and the proof
// must refuse to certify the package.
func TestLaneBoundsWide(t *testing.T) {
	runTestdata(t, []*Analyzer{SatWeights, LaneBounds}, "laneboundswide", "td/internal/core")
}

// TestParSafe exercises the launch ownership proof. The SpawnSafe /
// SpawnRacy pair is the fact-dependent contrast: both launch an in-package
// method, and only the collected ParSafeFact summary (addLocked guards its
// write, add does not) separates them.
func TestParSafe(t *testing.T) {
	runTestdata(t, []*Analyzer{ParSafe}, "parsafe", "td/internal/experiments")
}

// TestScopeExcludesOtherPackages checks that path-scoped analyzers skip
// packages outside their scope: the determinism testdata (full of
// violations) must produce nothing when loaded as a non-results package.
func TestScopeExcludesOtherPackages(t *testing.T) {
	prog, err := LoadDir(filepath.Join("testdata", "determinism"), "td/internal/core")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(prog, []*Analyzer{Determinism})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("determinism ran outside its scope: %v", diags)
	}
}

// TestRepoClean runs the full suite over the real module: the tree must
// stay free of unsuppressed findings (this is the same gate make lint and
// CI enforce).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	prog, err := Load("../..")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(prog, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if !d.Suppressed {
			t.Errorf("%s", d)
		}
	}
}
