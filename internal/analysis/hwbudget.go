package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// hwbudgetScope lists the packages modeling hardware structures: their
// table geometries are bit-budgeted in the paper and their index
// arithmetic must be implementable as a mask.
var hwbudgetScope = []string{
	"internal/core",
	"internal/ibtb",
	"internal/btb",
	"internal/ittage",
	"internal/cond",
	"internal/history",
	"internal/vpc",
	"internal/targetcache",
	"internal/cascaded",
	"internal/combined",
	"internal/replacement",
	"internal/region",
}

// paperConfig holds the expected field values of one default-configuration
// composite literal, cross-checked against the paper's configuration table
// (§4.2, Table 2), plus which fields must be powers of two (maskable).
type paperConfig struct {
	fn     string           // constructor function to inspect
	want   map[string]int64 // field -> paper value
	pow2   []string         // fields that must be maskable
	source string           // citation used in diagnostics
}

// paperTables maps a package (by path suffix) to its checked defaults.
var paperTables = map[string]paperConfig{
	"internal/core": {
		fn: "DefaultConfig",
		want: map[string]int64{
			"K":            12,
			"BitOffset":    2,
			"TableEntries": 1024,
			"WeightBits":   4,
			"HistBits":     631,
			"LocalEntries": 256,
			"LocalBits":    10,
			"ThetaInit":    18,
		},
		pow2:   []string{"TableEntries", "LocalEntries"},
		source: "paper Table 2 (BLBP)",
	},
	"internal/ibtb": {
		fn: "DefaultConfig",
		want: map[string]int64{
			"Sets":          64,
			"Assoc":         64,
			"TagBits":       8,
			"RegionEntries": 128,
			"OffsetBits":    20,
			"RRIPBits":      2,
		},
		pow2:   []string{"Sets", "Assoc", "RegionEntries"},
		source: "paper Table 2 (IBTB)",
	},
}

// HWBudget enforces the hardware-budget discipline: predictor tables are
// indexed by mask, never by modulo (a non-power-of-two reduction must go
// through hashing.Index, the one audited reduction helper), and the
// default configurations stay bit-for-bit on the paper's configuration
// table so every reported MPKI is measured inside the declared budget.
var HWBudget = &Analyzer{
	Name:         "hwbudget",
	Doc:          "table indices must be masks (no %) and default configs must match the paper's configuration table",
	DefaultScope: hwbudgetScope,
	Run:          runHWBudget,
}

func runHWBudget(pass *Pass) error {
	if !pass.InScope() {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			idx, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			ast.Inspect(idx.Index, func(m ast.Node) bool {
				if b, ok := m.(*ast.BinaryExpr); ok && b.Op == token.REM {
					pass.ReportFix(b.Pos(), remFix(pass, b), "table index computed with %%; size the structure to a power of two and mask (or reduce through hashing.Index)")
				}
				return true
			})
			return true
		})
	}
	for suffix, cfg := range paperTables {
		if pathIn(pass.Pkg.Path, []string{suffix}) {
			checkPaperConfig(pass, cfg)
		}
	}
	return nil
}

// checkPaperConfig locates the named constructor, extracts its returned
// composite literal, and compares every scalar field against the paper's
// configuration table.
func checkPaperConfig(pass *Pass, cfg paperConfig) {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != cfg.fn || fd.Recv != nil {
				continue
			}
			lit := returnedCompositeLit(fd)
			if lit == nil {
				pass.Reportf(fd.Pos(), "%s must return a composite literal so its fields can be checked against %s", cfg.fn, cfg.source)
				return
			}
			seen := map[string]bool{}
			for _, elt := range lit.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok {
					continue
				}
				want, checked := cfg.want[key.Name]
				if !checked {
					continue
				}
				seen[key.Name] = true
				got, ok := constInt(pass, kv.Value)
				if !ok {
					pass.Reportf(kv.Value.Pos(), "%s.%s must be an integer constant (budget fields are hardware parameters)", cfg.fn, key.Name)
					continue
				}
				if got != want {
					pass.Reportf(kv.Value.Pos(), "%s.%s = %d; %s specifies %d", cfg.fn, key.Name, got, cfg.source, want)
				}
				for _, p := range cfg.pow2 {
					if p == key.Name && got&(got-1) != 0 {
						pass.Reportf(kv.Value.Pos(), "%s.%s = %d is not a power of two; the structure cannot be indexed by mask", cfg.fn, key.Name, got)
					}
				}
			}
			for name := range cfg.want {
				if !seen[name] {
					pass.Reportf(lit.Pos(), "%s does not set %s; %s budgets it explicitly", cfg.fn, name, cfg.source)
				}
			}
			return
		}
	}
}

// remFix builds the x % N -> x & (N - 1) rewrite when it is provably
// equivalent: N a compile-time constant power of two and x unsigned (a
// negative signed remainder is negative, the mask is not). Anything else
// gets the finding with no fix — resizing a table is a design decision.
func remFix(pass *Pass, b *ast.BinaryExpr) *SuggestedFix {
	n, ok := constInt(pass, b.Y)
	if !ok || n <= 0 || n&(n-1) != 0 {
		return nil
	}
	t := pass.TypeOf(b.X)
	if t == nil {
		return nil
	}
	basic, ok := t.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsUnsigned == 0 {
		return nil
	}
	divisor := pass.Render(b.Y)
	if divisor == "" {
		return nil
	}
	// % and & share a precedence level and associate left, so swapping the
	// operator in place and parenthesizing the new mask operand preserves
	// the grouping of any enclosing expression.
	return &SuggestedFix{
		Message: fmt.Sprintf("replace %% %s with & (%s - 1)", divisor, divisor),
		Edits: []TextEdit{
			pass.Edit(b.OpPos, b.OpPos+1, "&"),
			pass.Edit(b.Y.Pos(), b.Y.End(), fmt.Sprintf("(%s - 1)", divisor)),
		},
	}
}

// returnedCompositeLit digs the composite literal out of the
// constructor's (single) return statement.
func returnedCompositeLit(fd *ast.FuncDecl) *ast.CompositeLit {
	if fd.Body == nil {
		return nil
	}
	var lit *ast.CompositeLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit != nil {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			return true
		}
		if cl, ok := ret.Results[0].(*ast.CompositeLit); ok {
			lit = cl
		}
		return true
	})
	return lit
}

// constInt evaluates e as a compile-time integer constant.
func constInt(pass *Pass, e ast.Expr) (int64, bool) {
	tv, ok := pass.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	return constant.Int64Val(v)
}
