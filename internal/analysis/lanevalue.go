package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the expression evaluator behind laneval.go's checker: it
// maps an expression to the abstract laneVal domain using the environment
// built during the walk plus the LaneTag facts on package objects.

// value evaluates e to an abstract lane value.
func (c *laneChecker) value(e ast.Expr) laneVal {
	// Compile-time constants short-circuit everything: laneMask, shift
	// amounts like 2*laneBits, literal masks.
	if cv, ok := constInt(c.pass, e); ok {
		return scalarV(cv, cv)
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.value(e.X)
	case *ast.Ident:
		obj := c.pass.ObjectOf(e)
		if obj == nil {
			return opaque()
		}
		if v, ok := c.vals[obj]; ok {
			return v
		}
		if v, ok := c.taggedVal(obj); ok {
			return v
		}
		if _, isParam := c.params[obj]; isParam {
			return c.paramBound(obj)
		}
		return opaque()
	case *ast.SelectorExpr:
		obj := c.pass.ObjectOf(e.Sel)
		if obj == nil {
			return opaque()
		}
		if v, ok := c.taggedVal(obj); ok {
			return v
		}
		return opaque()
	case *ast.IndexExpr:
		base := c.value(e.X)
		if base.kind == lvTableRef {
			// [][]uint64 per-item slots index to a table reference; []uint64
			// indexes to one packed word.
			if _, isSlice := c.pass.TypeOf(e).Underlying().(*types.Slice); isSlice {
				return base
			}
		}
		return c.elemVal(base)
	case *ast.SliceExpr:
		base := c.value(e.X)
		if base.kind == lvRowsRef && base.arena && !base.window && c.isRowsWindow(e) {
			base.window = true
		}
		return base
	case *ast.CallExpr:
		return c.callValue(e)
	case *ast.UnaryExpr:
		if e.Op == token.SUB {
			if v := c.value(e.X); v.kind == lvScalar {
				return laneVal{kind: lvScalar, lo: -v.hi, hi: -v.lo, src: v.src}
			}
		}
		return opaque()
	case *ast.BinaryExpr:
		return c.binop(e.Pos(), e.Op, c.value(e.X), c.value(e.Y))
	}
	return opaque()
}

// callValue handles type conversions, tagged builders/methods, and
// everything else (opaque).
func (c *laneChecker) callValue(call *ast.CallExpr) laneVal {
	// Integer type conversion: preserves the abstract value when it cannot
	// truncate or sign-wrap what we rely on.
	if tv, ok := c.pass.Pkg.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		v := c.value(call.Args[0])
		switch v.kind {
		case lvScalar:
			if v.lo >= 0 {
				return v
			}
			return opaque() // a negative value converted to unsigned wraps
		case lvLanes, lvFields32, lvLaneShift:
			return v
		}
		return opaque()
	}
	// Calls to tagged functions/methods: buildTransferTable (bound),
	// Predictor.BatchTable (lanes(table)).
	if fn := calleeFunc(c.pass, call); fn != nil {
		if v, ok := c.taggedVal(fn); ok {
			return v
		}
	}
	return opaque()
}

// binop combines two abstract values under op, reporting when a lane-typed
// combination cannot be bounded.
func (c *laneChecker) binop(pos token.Pos, op token.Token, a, b laneVal) laneVal {
	switch op {
	case token.ADD:
		if a.kind == lvScalar && b.kind == lvScalar {
			// abs(K) + elem(K) is nonnegative by construction: the bias is
			// the maximum |transfer value|, so the interval floor is 0.
			if absPair(a, b) {
				return scalarV(0, a.hi+b.hi)
			}
			return scalarV(a.lo+b.lo, a.hi+b.hi)
		}
		if a.kind == lvLanes || b.kind == lvLanes {
			la, okA := c.asLanes(a)
			lb, okB := c.asLanes(b)
			if !okA || !okB {
				c.pass.Reportf(pos, "lane-wise add with an operand whose lanes cannot be bounded")
				return opaque()
			}
			if la+lb > c.facts.laneMask {
				c.pass.Reportf(pos, "lane-wise add can reach %d, overflowing the %d-bit lane", la+lb, c.facts.laneBits)
				return opaque()
			}
			return lanesV(la + lb)
		}
		if a.kind == lvFields32 || b.kind == lvFields32 {
			fa, okA := asFields32(a)
			fb, okB := asFields32(b)
			if !okA || !okB {
				c.pass.Reportf(pos, "32-bit field-wise add with an operand whose fields cannot be bounded")
				return opaque()
			}
			if fa+fb > (1<<32)-1 {
				c.pass.Reportf(pos, "32-bit field-wise add can reach %d, overflowing the field", fa+fb)
				return opaque()
			}
			return fields32V(fa + fb)
		}
		return opaque()
	case token.SUB:
		if a.kind == lvScalar && b.kind == lvScalar {
			return scalarV(a.lo-b.hi, a.hi-b.lo)
		}
		if a.kind == lvLanes || b.kind == lvLanes || a.kind == lvFields32 || b.kind == lvFields32 {
			c.pass.Reportf(pos, "lane-wise subtract cannot be bounded (lanes are unsigned and may borrow)")
		}
		return opaque()
	case token.OR:
		if a.kind == lvLanes || b.kind == lvLanes {
			la, okA := c.asLanes(a)
			lb, okB := c.asLanes(b)
			if !okA || !okB {
				c.pass.Reportf(pos, "lane-wise or with an operand whose lanes cannot be bounded")
				return opaque()
			}
			return lanesV(pow2Mask(max64(la, lb)))
		}
		if a.kind == lvScalar && b.kind == lvScalar && a.lo >= 0 && b.lo >= 0 {
			return scalarV(0, pow2Mask(max64(a.hi, b.hi)))
		}
		return opaque()
	case token.XOR:
		return opaque()
	case token.AND:
		// Normalize a constant on the left.
		if a.kind == lvScalar && a.lo == a.hi && b.kind != lvScalar {
			a, b = b, a
		}
		isConst := b.kind == lvScalar && b.lo == b.hi
		switch a.kind {
		case lvLanes:
			if isConst {
				switch b.hi {
				case c.facts.laneMask:
					return scalarV(0, min64(a.hi, c.facts.laneMask))
				case c.altMask():
					return fields32V(a.hi)
				}
			}
			return lanesV(a.hi)
		case lvFields32:
			if isConst && b.hi == (1<<32)-1 {
				return scalarV(0, min64(a.hi, (1<<32)-1))
			}
			return fields32V(a.hi)
		case lvScalar:
			if isConst {
				return scalarV(0, min64(max64(a.hi, 0), b.hi))
			}
			return scalarV(0, max64(a.hi, 0))
		default:
			if isConst {
				return scalarV(0, b.hi)
			}
			return opaque()
		}
	case token.AND_NOT:
		switch a.kind {
		case lvLanes:
			return lanesV(a.hi)
		case lvFields32:
			return fields32V(a.hi)
		case lvScalar:
			return scalarV(0, max64(a.hi, 0))
		}
		return opaque()
	case token.SHL:
		switch a.kind {
		case lvLanes:
			if c.laneAligned(b, c.facts.laneBits) {
				return lanesV(a.hi)
			}
			c.pass.Reportf(pos, "lane value shifted by an amount not provably a multiple of %d; lanes would smear", c.facts.laneBits)
			return opaque()
		case lvFields32:
			if c.laneAligned(b, 32) {
				return fields32V(a.hi)
			}
			c.pass.Reportf(pos, "32-bit field value shifted by an amount not provably a multiple of 32")
			return opaque()
		case lvScalar:
			if a.lo >= 0 && a.hi <= c.facts.laneMask && c.laneAligned(b, c.facts.laneBits) {
				return lanesV(a.hi) // one lane's worth placed at a lane boundary
			}
		}
		return opaque()
	case token.SHR:
		switch a.kind {
		case lvLanes:
			if c.laneAligned(b, c.facts.laneBits) {
				return lanesV(a.hi)
			}
			c.pass.Reportf(pos, "lane value shifted by an amount not provably a multiple of %d; lanes would smear", c.facts.laneBits)
			return opaque()
		case lvFields32:
			if c.laneAligned(b, 32) {
				return fields32V(a.hi)
			}
			c.pass.Reportf(pos, "32-bit field value shifted by an amount not provably a multiple of 32")
			return opaque()
		case lvScalar:
			if a.lo >= 0 {
				return scalarV(0, a.hi)
			}
		}
		return opaque()
	case token.MUL:
		// sh := uint(k%lanesPerWord) * laneBits: a runtime multiple of the
		// lane width is a valid shift amount.
		if (a.kind == lvScalar && a.lo == a.hi && a.hi == c.facts.laneBits) ||
			(b.kind == lvScalar && b.lo == b.hi && b.hi == c.facts.laneBits) {
			return laneVal{kind: lvLaneShift}
		}
		if a.kind == lvLanes || b.kind == lvLanes || a.kind == lvFields32 || b.kind == lvFields32 {
			c.pass.Reportf(pos, "lane value multiplied; per-lane products cannot be bounded")
		}
		return opaque()
	default:
		if a.kind == lvLanes || b.kind == lvLanes {
			c.pass.Reportf(pos, "operator %s on a lane value cannot be bounded", op)
		}
		return opaque()
	}
}

// asLanes coerces v to a per-lane maximum: lanes directly, or a
// nonnegative scalar that fits one lane (it occupies lane 0).
func (c *laneChecker) asLanes(v laneVal) (int64, bool) {
	switch v.kind {
	case lvLanes:
		return v.hi, true
	case lvScalar:
		if v.lo >= 0 && v.hi <= c.facts.laneMask {
			return v.hi, true
		}
	}
	return 0, false
}

func asFields32(v laneVal) (int64, bool) {
	switch v.kind {
	case lvFields32:
		return v.hi, true
	case lvScalar:
		if v.lo >= 0 && v.hi <= (1<<32)-1 {
			return v.hi, true
		}
	}
	return 0, false
}

// altMask is the alternating mask selecting the low lane of every 32-bit
// pair — the SWAR reduction's first widening step.
func (c *laneChecker) altMask() int64 {
	return c.facts.laneMask | c.facts.laneMask<<32
}

// laneAligned reports whether shift-amount value v is provably a multiple
// of width bits.
func (c *laneChecker) laneAligned(v laneVal, width int64) bool {
	if v.kind == lvLaneShift {
		return width == c.facts.laneBits
	}
	return v.kind == lvScalar && v.lo == v.hi && v.hi%width == 0
}

// absPair recognizes elem(K) + abs(K): a bound-tagged table element plus
// the bias proven to be the maximum absolute element of the same table.
func absPair(a, b laneVal) bool {
	return pairSrc(a, b, "elem:", "abs:") || pairSrc(b, a, "elem:", "abs:")
}

func pairSrc(a, b laneVal, ap, bp string) bool {
	return len(a.src) > len(ap) && len(b.src) > len(bp) &&
		a.src[:len(ap)] == ap && b.src[:len(bp)] == bp &&
		a.src[len(ap):] == b.src[len(bp):]
}

// isRowsWindow checks the structural shape rows[i*n : i*n+n] where n is
// derived from SubPredictors(): the high bound is the low bound plus the
// per-item row count, so the window covers exactly one item's rows.
func (c *laneChecker) isRowsWindow(e *ast.SliceExpr) bool {
	if e.Low == nil || e.High == nil {
		return false
	}
	add, ok := e.High.(*ast.BinaryExpr)
	if !ok || add.Op != token.ADD {
		return false
	}
	if c.pass.Render(add.X) != c.pass.Render(e.Low) {
		return false
	}
	return subDerivedExpr(c.pass, add.Y)
}

// paramBound derives an integer parameter's interval from every static
// call site in the package: the join of the argument values, with src
// provenance preserved only when all sites agree.
func (c *laneChecker) paramBound(obj types.Object) laneVal {
	if c.resolving[obj] {
		return opaque()
	}
	c.resolving[obj] = true
	defer delete(c.resolving, obj)

	idx := c.params[obj]
	fnObj := c.pass.ObjectOf(c.fd.Name)
	if fnObj == nil {
		return opaque()
	}
	var out laneVal
	found := false
	for _, f := range c.pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || calleeFunc(c.pass, call) != fnObj || idx >= len(call.Args) {
				return true
			}
			// Arguments are evaluated fact-only (fresh environment): a
			// call-site local we cannot see is simply opaque.
			site := &laneChecker{
				pass: c.pass, facts: c.facts, fd: c.fd,
				vals:      map[types.Object]laneVal{},
				params:    map[types.Object]int{},
				resolving: c.resolving,
				fresh:     map[types.Object]bool{},
				zeroed:    map[types.Object]token.Pos{},
				depth:     map[types.Object]int{},
			}
			v := site.value(call.Args[idx])
			if v.kind != lvScalar {
				out = opaque()
				found = true
				return false
			}
			if !found {
				out, found = v, true
				return true
			}
			if out.kind != lvScalar {
				return false
			}
			if v.src != out.src {
				out.src = ""
			}
			out.lo = min64(out.lo, v.lo)
			out.hi = max64(out.hi, v.hi)
			return true
		})
		if found && out.kind != lvScalar {
			break
		}
	}
	if !found {
		return opaque()
	}
	return out
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
