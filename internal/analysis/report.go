package analysis

import "sort"

// JSONVersion is the schema version of blbplint's -json output. Bump it
// when a field changes meaning or is removed; adding fields is
// backward-compatible and does not bump it.
const JSONVersion = 1

// JSONReport is the machine-readable findings artifact blbplint -json
// emits (and make lint writes to results/lint.json).
type JSONReport struct {
	Version  int           `json:"version"`
	Findings []JSONFinding `json:"findings"`
}

// JSONFinding is one diagnostic in stable machine-readable form.
type JSONFinding struct {
	File       string   `json:"file"`
	Line       int      `json:"line"`
	Col        int      `json:"col"`
	Analyzer   string   `json:"analyzer"`
	Message    string   `json:"message"`
	Suppressed bool     `json:"suppressed"`
	Fix        *JSONFix `json:"fix,omitempty"`
}

// JSONFix describes a suggested fix attached to a finding.
type JSONFix struct {
	Message string     `json:"message"`
	Edits   []JSONEdit `json:"edits"`
}

// JSONEdit is one byte-range replacement of a suggested fix.
type JSONEdit struct {
	File    string `json:"file"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"new_text"`
}

// SortDiagnostics orders diags by (file, line, column, analyzer) — the
// stable order both the text and JSON outputs use.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Report converts sorted diagnostics into the JSON artifact form.
func Report(diags []Diagnostic) JSONReport {
	rep := JSONReport{Version: JSONVersion, Findings: []JSONFinding{}}
	for _, d := range diags {
		f := JSONFinding{
			File:       d.Pos.Filename,
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Analyzer:   d.Analyzer,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		}
		if d.Fix != nil {
			jf := &JSONFix{Message: d.Fix.Message, Edits: []JSONEdit{}}
			for _, e := range d.Fix.Edits {
				jf.Edits = append(jf.Edits, JSONEdit{File: e.Filename, Start: e.Start, End: e.End, NewText: e.NewText})
			}
			f.Fix = jf
		}
		rep.Findings = append(rep.Findings, f)
	}
	return rep
}
