package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// parsafeScope lists the packages that launch or feed concurrent work: the
// experiment execution layer (worker pool and its task literals), the
// multi-stream batching engine (documented as shard-across-engines; any
// goroutine appearing there must justify itself), and every command front
// end that could drive them concurrently.
var parsafeScope = []string{
	"internal/experiments",
	"internal/batch",
	"internal/snapshot",
	"internal/wspec",
	"cmd/bench",
	"cmd/blbplint",
	"cmd/blbpsim",
	"cmd/experiments",
	"cmd/tracegen",
}

// ParSafe proves the ownership discipline of every goroutine launch in the
// concurrent packages: a launched function may write only state it owns —
// its parameters and locals, variables declared in the launch's own loop
// iteration (each task's index-keyed cell), and anything reached through
// them — unless a mutex is provably held. Functions marked //blbp:locked
// (their doc comments say "caller holds mu") export that contract as a
// fact, and every call site is checked to hold a lock; in-package callees
// that write shared state without an internal lock are summarized in the
// Collect phase and flagged when reached from concurrent context.
var ParSafe = &Analyzer{
	Name:         "parsafe",
	Doc:          "goroutines and pool tasks may write only owned state; //blbp:locked callees require a held lock",
	DefaultScope: parsafeScope,
	Collect:      collectParSafe,
	Run:          runParSafe,
}

// ParSafeFact summarizes one function for concurrent callers: Locked means
// the function's contract is "caller holds the lock" (//blbp:locked);
// WritesShared means its body writes non-local state before taking any
// lock itself, so reaching it from a goroutine without synchronization is
// a race.
type ParSafeFact struct {
	Locked       bool
	WritesShared bool
}

func (*ParSafeFact) AFact() {}

func (f *ParSafeFact) Merge(other Fact) {
	o, ok := other.(*ParSafeFact)
	if !ok {
		return
	}
	f.Locked = f.Locked || o.Locked
	f.WritesShared = f.WritesShared || o.WritesShared
}

func collectParSafe(pass *Pass) {
	if !pass.InScope() {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj := pass.ObjectOf(fd.Name)
			if obj == nil {
				continue
			}
			fact := &ParSafeFact{
				Locked:       hasDirective(fd.Doc, "blbp:locked"),
				WritesShared: writesSharedState(pass, fd),
			}
			if fact.Locked || fact.WritesShared {
				pass.ExportObjectFact(obj, fact)
			}
		}
	}
}

// writesSharedState reports whether fd writes state it does not own —
// receiver fields, globals, captured variables, or elements reached
// through its parameters — before acquiring a lock. A function that locks
// first (submit, close) owns its critical section; writes to plain locals
// (including rebinding a parameter variable itself) are private.
func writesSharedState(pass *Pass, fd *ast.FuncDecl) bool {
	shared := false
	check := func(target ast.Expr) {
		root, deref := writeRoot(target)
		if root == nil || shared {
			return
		}
		if !declaredWithin(pass, root, fd) {
			shared = true // global or captured
			return
		}
		if deref && boundByHeader(pass, root, fd) {
			shared = true // receiver field or element behind a parameter
		}
	}
	lw := &lockWalker{pass: pass}
	lw.walk(fd.Body, func(n ast.Node, locked bool) {
		if locked {
			return
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return
			}
			for _, lhs := range n.Lhs {
				check(lhs)
			}
		case *ast.IncDecStmt:
			check(n.X)
		}
	})
	return shared
}

// boundByHeader reports whether id's object is the receiver or a parameter
// of fd — state whose pointees the caller shares with fd.
func boundByHeader(pass *Pass, id *ast.Ident, fd *ast.FuncDecl) bool {
	obj := pass.ObjectOf(id)
	if obj == nil {
		return false
	}
	within := func(n ast.Node) bool {
		return n != nil && obj.Pos() >= n.Pos() && obj.Pos() <= n.End()
	}
	if fd.Recv != nil && within(fd.Recv) {
		return true
	}
	return fd.Type.Params != nil && within(fd.Type.Params)
}

// lockWalker walks statements in source order, tracking whether a mutex
// Lock is textually live (a Lock call seen, no Unlock since). This is a
// straight-line approximation: it is exactly how the pool's worker loop
// and every critical section in the tree are written.
type lockWalker struct {
	pass   *Pass
	locked bool
}

func (lw *lockWalker) walk(body *ast.BlockStmt, visit func(n ast.Node, locked bool)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate execution context
		case *ast.CallExpr:
			if recv, name := syncRecvCall(lw.pass, n); recv {
				switch name {
				case "Lock", "RLock":
					lw.locked = true
				case "Unlock", "RUnlock":
					lw.locked = false
				}
			}
			visit(n, lw.locked)
			return true
		case ast.Node:
			visit(n, lw.locked)
		}
		return true
	})
}

// syncRecvCall reports whether call's callee is a method on a sync-package
// type (Mutex, RWMutex, WaitGroup, Cond, Once ...), and its name.
func syncRecvCall(pass *Pass, call *ast.CallExpr) (bool, string) {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false, ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false, ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false, ""
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false, ""
	}
	return true, fn.Name()
}

// writeRoot unwraps an assignment target to the identifier whose ownership
// decides whether the write is safe: *p -> p, c.f -> c, s[i] -> s. deref
// reports whether the path crossed a field or element access — a write
// into structure the root points at rather than to the variable itself.
func writeRoot(e ast.Expr) (root *ast.Ident, deref bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, deref
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
			deref = true
		case *ast.IndexExpr:
			e = x.X
			deref = true
		default:
			return nil, false
		}
	}
}

// declaredWithin reports whether id's object is declared inside node's
// source span (parameters, receivers, and locals all are).
func declaredWithin(pass *Pass, id *ast.Ident, node ast.Node) bool {
	obj := pass.ObjectOf(id)
	if obj == nil {
		return true // unresolved: give the benefit of the doubt
	}
	if _, isVar := obj.(*types.Var); !isVar {
		return true // writes to non-variables are not data
	}
	return obj.Pos() >= node.Pos() && obj.Pos() <= node.End()
}

func runParSafe(pass *Pass) error {
	if !pass.InScope() {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockedCallers(pass, fd)
			checkLaunches(pass, fd)
		}
	}
	return nil
}

// checkLockedCallers verifies every call to a //blbp:locked function is
// made with a lock textually held — the fact-backed half of the "caller
// holds mu" comment.
func checkLockedCallers(pass *Pass, fd *ast.FuncDecl) {
	goCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			goCalls[g.Call] = true // launches are checkLaunches' business
		}
		return true
	})
	lw := &lockWalker{pass: pass}
	lw.walk(fd.Body, func(n ast.Node, locked bool) {
		call, ok := n.(*ast.CallExpr)
		if !ok || locked || goCalls[call] {
			return
		}
		if fn := calleeFunc(pass, call); fn != nil {
			var fact ParSafeFact
			if pass.ImportObjectFact(fn, &fact) && fact.Locked {
				pass.Reportf(call.Pos(), "call to %s requires the caller to hold the lock (//blbp:locked), but no Lock is in scope here", fn.Name())
			}
		}
	})
}

// launch describes one goroutine-creation site: a go statement or a
// function literal handed to a worker pool's submit/Go.
type launch struct {
	lit    *ast.FuncLit // nil for `go method(...)`
	callee *types.Func  // nil for literals
	pos    token.Pos
}

// checkLaunches finds every launch in fd and proves its body writes only
// owned state.
func checkLaunches(pass *Pass, fd *ast.FuncDecl) {
	// Map every launch to its innermost enclosing loop (whose per-iteration
	// declarations the launched task owns).
	var walk func(n ast.Node, loops []ast.Node)
	visitLaunch := func(l launch, loops []ast.Node) {
		if l.lit != nil {
			checkLaunchLit(pass, l.lit, loops)
			return
		}
		var fact ParSafeFact
		if l.callee != nil && pass.ImportObjectFact(l.callee, &fact) {
			if fact.Locked {
				pass.Reportf(l.pos, "go %s: a goroutine cannot inherit the caller's lock that //blbp:locked requires", l.callee.Name())
			} else if fact.WritesShared {
				pass.Reportf(l.pos, "go %s: callee writes shared state without synchronization", l.callee.Name())
			}
		}
	}
	walk = func(n ast.Node, loops []ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				walk(m.Body, append(loops, m))
				return false
			case *ast.RangeStmt:
				walk(m.Body, append(loops, m))
				return false
			case *ast.GoStmt:
				if lit, ok := m.Call.Fun.(*ast.FuncLit); ok {
					visitLaunch(launch{lit: lit, pos: m.Pos()}, loops)
				} else {
					visitLaunch(launch{callee: calleeFunc(pass, m.Call), pos: m.Pos()}, loops)
				}
				return false // launches nested inside a task are out of scope
			case *ast.CallExpr:
				if name := calleeName(m); name == "submit" || name == "Go" {
					found := false
					for _, arg := range m.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							visitLaunch(launch{lit: lit, pos: m.Pos()}, loops)
							found = true
						}
					}
					if found {
						return false
					}
				}
				return true
			}
			return true
		})
	}
	walk(fd.Body, nil)
}

// checkLaunchLit proves one launched literal's writes: every target's root
// must be owned — declared inside the literal, or declared in the launch's
// own loop iteration (Go 1.22 per-iteration variables: each task owns the
// cell pointer its iteration took). It also flags captured variables a
// later iteration of the launching loop overwrites.
func checkLaunchLit(pass *Pass, lit *ast.FuncLit, loops []ast.Node) {
	owned := map[types.Object]bool{}
	var innermost ast.Node
	if len(loops) > 0 {
		innermost = loops[len(loops)-1]
		body := loopBody(innermost)
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE {
					return true
				}
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := pass.ObjectOf(id); obj != nil {
							owned[obj] = true
						}
					}
				}
			}
			return true
		})
		// Range/for key variables of the innermost loop are per-iteration.
		for _, obj := range loopVars(pass, innermost) {
			owned[obj] = true
		}
	}

	lw := &lockWalker{pass: pass}
	lw.walk(lit.Body, func(n ast.Node, locked bool) {
		if locked {
			return
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return
			}
			verb := "writes"
			if n.Tok != token.ASSIGN {
				verb = "read-modify-writes"
			}
			for _, lhs := range n.Lhs {
				reportSharedWrite(pass, lit, owned, lhs, verb)
			}
		case *ast.IncDecStmt:
			reportSharedWrite(pass, lit, owned, n.X, "non-atomically updates")
		case *ast.CallExpr:
			if recv, _ := syncRecvCall(pass, n); recv {
				return
			}
			fn := calleeFunc(pass, n)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pass.Pkg.Path {
				return // dynamic or cross-package: outside this proof
			}
			var fact ParSafeFact
			if pass.ImportObjectFact(fn, &fact) {
				if fact.Locked {
					pass.Reportf(n.Pos(), "task calls %s, which requires the caller to hold the lock (//blbp:locked), without a Lock in scope", fn.Name())
				} else if fact.WritesShared {
					pass.Reportf(n.Pos(), "task calls %s, which writes shared state without synchronization", fn.Name())
				}
			}
		}
	})

	// Cross-iteration capture: a variable declared before the launching
	// loop, read by the task, and overwritten by later iterations of that
	// loop is a race between the task and its own launcher.
	if innermost == nil {
		return
	}
	captured := map[types.Object]*ast.Ident{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, isVar := pass.ObjectOf(id).(*types.Var)
		if !isVar || owned[obj] {
			return true
		}
		if obj.Pos() < innermost.Pos() {
			captured[obj] = id
		}
		return true
	})
	if len(captured) == 0 {
		return
	}
	ast.Inspect(loopBody(innermost), func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if n.Pos() >= lit.Pos() && n.End() <= lit.End() {
			return false // the task itself
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := pass.ObjectOf(id); obj != nil {
						if use, ok := captured[obj]; ok {
							pass.Reportf(use.Pos(), "task captures %s, which a later iteration of the launching loop overwrites; copy it into a per-iteration variable", id.Name)
							delete(captured, obj)
						}
					}
				}
			}
		}
		return true
	})
}

// reportSharedWrite flags a write whose root is neither declared inside
// the literal nor owned by the launch's loop iteration.
func reportSharedWrite(pass *Pass, lit *ast.FuncLit, owned map[types.Object]bool, target ast.Expr, verb string) {
	root, _ := writeRoot(target)
	if root == nil {
		return
	}
	obj, isVar := pass.ObjectOf(root).(*types.Var)
	if !isVar || owned[obj] {
		return
	}
	if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
		return // parameter or local of the task itself
	}
	pass.Reportf(target.Pos(), "task %s shared %s without synchronization; tasks own only their locals and their iteration's variables", verb, root.Name)
}

// loopBody returns the body block of a for or range statement.
func loopBody(loop ast.Node) *ast.BlockStmt {
	switch l := loop.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// loopVars returns the per-iteration variables a loop declares in its
// header: range key/value, or the for-init definition.
func loopVars(pass *Pass, loop ast.Node) []types.Object {
	var out []types.Object
	add := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil {
				out = append(out, obj)
			}
		}
	}
	switch l := loop.(type) {
	case *ast.RangeStmt:
		if l.Key != nil {
			add(l.Key)
		}
		if l.Value != nil {
			add(l.Value)
		}
	case *ast.ForStmt:
		if init, ok := l.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE {
			for _, lhs := range init.Lhs {
				add(lhs)
			}
		}
	}
	return out
}
