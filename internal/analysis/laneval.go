package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is lanebounds' Run phase: a small abstract interpreter over
// the kernels of the scope. Every expression evaluates to a laneVal —
// scalar interval, packed 16-bit lanes with a per-lane maximum, packed
// 32-bit fields (the SWAR reduction's intermediate shape), a reference to
// a tagged table/accumulator/rows slice, or opaque. Stores into tagged
// slices and lane-valued accumulations are then checked against the
// verified geometry; anything the rules cannot bound is a finding.

type laneKind int

const (
	lvOpaque    laneKind = iota
	lvScalar             // integer interval [lo, hi]
	lvLanes              // 16-bit lanes, each in [0, hi]
	lvFields32           // 32-bit fields, each in [0, hi]
	lvLaneShift          // shift amount that is a multiple of laneBits
	lvTableRef           // //blbp:lanes(table) slice
	lvAccRef             // //blbp:lanes(acc) slice
	lvRowsRef            // //blbp:rows slice
	lvBoundRef           // slice of //blbp:bound ints (the transfer table)
)

type laneVal struct {
	kind   laneKind
	lo, hi int64
	src    string // provenance: "elem:<key>" or "abs:<key>"
	arena  bool   // rowsRef sized batch*n
	window bool   // rowsRef narrowed to one n-sized window
	chain  []types.Object
}

func opaque() laneVal                { return laneVal{kind: lvOpaque} }
func scalarV(lo, hi int64) laneVal   { return laneVal{kind: lvScalar, lo: lo, hi: hi} }
func lanesV(hi int64) laneVal        { return laneVal{kind: lvLanes, hi: hi} }
func fields32V(hi int64) laneVal     { return laneVal{kind: lvFields32, hi: hi} }
func (v laneVal) isRef() bool        { return v.kind >= lvTableRef }
func (v laneVal) rowsIterable() bool { return v.kind == lvRowsRef && (!v.arena || v.window) }

type loopFrame struct {
	rows   bool
	keyObj types.Object
}

type laneChecker struct {
	pass  *Pass
	facts *laneFacts
	fd    *ast.FuncDecl

	vals        map[types.Object]laneVal
	fresh       map[types.Object]bool      // zero-valued local declarations
	zeroed      map[types.Object]token.Pos // roots cleared by a zero loop
	accumulated map[types.Object]bool      // roots already accumulated into
	depth       map[types.Object]int       // loop depth at declaration
	params      map[types.Object]int       // parameter -> index
	resolving   map[types.Object]bool      // paramBound recursion guard
	loops       []loopFrame
}

func runLaneBounds(pass *Pass) error {
	if !pass.InScope() {
		return nil
	}
	facts := laneFactsOf(pass)
	if !facts.ok {
		// Either the geometry package had verification findings (already
		// reported) or it is outside this load; nothing sound to check.
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &laneChecker{
				pass: pass, facts: facts, fd: fd,
				vals:        map[types.Object]laneVal{},
				fresh:       map[types.Object]bool{},
				zeroed:      map[types.Object]token.Pos{},
				accumulated: map[types.Object]bool{},
				depth:       map[types.Object]int{},
				params:      map[types.Object]int{},
				resolving:   map[types.Object]bool{},
			}
			c.bindParams(fd)
			c.block(fd.Body)
		}
	}
	return nil
}

// bindParams seeds parameter values: slice parameters carrying a LaneTag
// fact (exported for the same-named field they alias) become references;
// integer parameters resolve lazily from call sites.
func (c *laneChecker) bindParams(fd *ast.FuncDecl) {
	idx := 0
	for _, p := range fd.Type.Params.List {
		for _, name := range p.Names {
			obj := c.pass.ObjectOf(name)
			if obj == nil {
				idx++
				continue
			}
			c.params[obj] = idx
			if v, ok := c.taggedVal(obj); ok {
				v.chain = append(v.chain, obj)
				c.vals[obj] = v
			}
			idx++
		}
	}
}

// taggedVal converts an object's LaneTag fact into a reference value.
func (c *laneChecker) taggedVal(obj types.Object) (laneVal, bool) {
	var tag LaneTag
	if !c.pass.ImportObjectFact(obj, &tag) {
		return laneVal{}, false
	}
	switch tag.Kind {
	case "table":
		return laneVal{kind: lvTableRef, hi: c.facts.cellMax, chain: []types.Object{obj}}, true
	case "acc":
		return laneVal{kind: lvAccRef, hi: c.facts.accMax, chain: []types.Object{obj}}, true
	case "rows":
		return laneVal{kind: lvRowsRef, arena: tag.Arena, chain: []types.Object{obj}}, true
	case "bound":
		src := "elem:" + objKey(obj)
		if tag.AbsOf != "" {
			src = "abs:" + tag.AbsOf
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
			return laneVal{kind: lvBoundRef, lo: tag.Lo, hi: tag.Hi, src: src, chain: []types.Object{obj}}, true
		}
		return laneVal{kind: lvScalar, lo: tag.Lo, hi: tag.Hi, src: src}, true
	}
	return laneVal{}, false
}

func (c *laneChecker) bind(obj types.Object, v laneVal) {
	if obj == nil {
		return
	}
	if v.isRef() {
		v.chain = append(append([]types.Object(nil), v.chain...), obj)
	}
	c.vals[obj] = v
	c.depth[obj] = len(c.loops)
}

func (c *laneChecker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		c.stmt(s)
	}
}

func (c *laneChecker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				obj := c.pass.ObjectOf(name)
				if i < len(vs.Values) {
					c.bind(obj, c.value(vs.Values[i]))
				} else {
					c.bind(obj, scalarV(0, 0))
					if obj != nil {
						c.fresh[obj] = true
					}
				}
			}
		}
	case *ast.AssignStmt:
		c.assign(s)
	case *ast.IncDecStmt:
		if base, _ := c.refTarget(s.X); base.isRef() {
			c.pass.Reportf(s.Pos(), "++/-- on an element of a packed %s slice cannot be bounded; lanes change only through proven stores", refName(base.kind))
		}
	case *ast.RangeStmt:
		c.rangeStmt(s)
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		frame := loopFrame{}
		if init, ok := s.Init.(*ast.AssignStmt); ok && init.Tok == token.DEFINE && len(init.Lhs) == 1 {
			frame.keyObj = identObj(c.pass, init.Lhs[0])
		}
		c.loops = append(c.loops, frame)
		c.block(s.Body)
		c.loops = c.loops[:len(c.loops)-1]
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.block(s.Body)
		if s.Else != nil {
			c.stmt(s.Else)
		}
	case *ast.BlockStmt:
		c.block(s)
	case *ast.SwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, st := range cc.Body {
					c.stmt(st)
				}
			}
		}
	case *ast.ExprStmt:
		c.exprStmt(s)
	}
}

// rangeStmt classifies the ranged collection, recognizes the zero-loop
// idiom, binds the iteration variables, and pushes the loop frame.
func (c *laneChecker) rangeStmt(s *ast.RangeStmt) {
	xv := c.value(s.X)

	// Zero loop: `for i := range X { X[i] = 0 }` clears X for accumulation.
	if xv.isRef() && len(s.Body.List) == 1 {
		if as, ok := s.Body.List[0].(*ast.AssignStmt); ok && as.Tok == token.ASSIGN &&
			len(as.Lhs) == 1 && isZeroLit(as.Rhs[0]) {
			if idx, ok := as.Lhs[0].(*ast.IndexExpr); ok {
				if key := identObj(c.pass, s.Key); key != nil && identObj(c.pass, idx.Index) == key {
					for _, obj := range xv.chain {
						c.zeroed[obj] = s.Pos()
						delete(c.accumulated, obj)
					}
				}
			}
		}
	}

	frame := loopFrame{rows: xv.rowsIterable()}
	if key := identObj(c.pass, s.Key); key != nil {
		frame.keyObj = key
		c.bind(key, opaque())
	}
	if val := identObj(c.pass, s.Value); val != nil {
		c.bind(val, c.elemVal(xv))
	}
	c.loops = append(c.loops, frame)
	c.block(s.Body)
	c.loops = c.loops[:len(c.loops)-1]
}

// elemVal is the value of one element of a reference.
func (c *laneChecker) elemVal(v laneVal) laneVal {
	switch v.kind {
	case lvTableRef:
		return lanesV(c.facts.cellMax)
	case lvAccRef:
		return lanesV(c.facts.accMax)
	case lvBoundRef:
		return laneVal{kind: lvScalar, lo: v.lo, hi: v.hi, src: v.src}
	}
	return opaque()
}

func refName(k laneKind) string {
	switch k {
	case lvTableRef:
		return "table"
	case lvAccRef:
		return "accumulator"
	case lvRowsRef:
		return "rows"
	}
	return "lane"
}

// refTarget resolves an assignment target to (base reference, index expr):
// base is non-ref when the target is not a tagged slice element.
func (c *laneChecker) refTarget(lhs ast.Expr) (laneVal, ast.Expr) {
	if idx, ok := lhs.(*ast.IndexExpr); ok {
		return c.value(idx.X), idx.Index
	}
	return opaque(), nil
}

func (c *laneChecker) assign(s *ast.AssignStmt) {
	switch s.Tok {
	case token.DEFINE:
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				c.bind(identObj(c.pass, lhs), c.value(s.Rhs[i]))
			}
		} else {
			for _, lhs := range s.Lhs {
				c.bind(identObj(c.pass, lhs), opaque())
			}
		}
	case token.ASSIGN:
		for i, lhs := range s.Lhs {
			if i < len(s.Rhs) {
				c.store(lhs, s.Rhs[i])
			}
		}
	case token.ADD_ASSIGN:
		c.accumulate(s)
	default:
		// Other compound updates: fold into a local's value, or reject on
		// tagged elements (no rule proves them).
		if base, _ := c.refTarget(s.Lhs[0]); base.isRef() {
			c.pass.Reportf(s.Pos(), "compound %s on an element of a packed %s slice cannot be bounded; use a proven store", s.Tok, refName(base.kind))
			return
		}
		if obj := identObj(c.pass, s.Lhs[0]); obj != nil {
			old := c.vals[obj]
			rhs := c.value(s.Rhs[0])
			c.vals[obj] = c.binop(s.Pos(), compoundOp(s.Tok), old, rhs)
		}
	}
}

func compoundOp(t token.Token) token.Token {
	switch t {
	case token.OR_ASSIGN:
		return token.OR
	case token.AND_ASSIGN:
		return token.AND
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT
	}
	return token.ILLEGAL
}

// store checks a plain `=` whose target is (an element of) a tagged slice;
// untagged local targets just update the environment.
func (c *laneChecker) store(lhs, rhs ast.Expr) {
	// Whole-slice stores: X = make(...) re-arms a tagged slice; matching
	// references re-seat one (tabs[i] = p.BatchTable()).
	if obj := targetObj(c.pass, lhs); obj != nil {
		if tagged, ok := c.taggedVal(obj); ok && tagged.isRef() {
			if isMakeCall(rhs) {
				return
			}
			rv := c.value(rhs)
			if rv.kind == tagged.kind {
				return
			}
			c.pass.Reportf(lhs.Pos(), "%s is a packed %s slice; it may only be re-made or assigned another %s reference", obj.Name(), refName(tagged.kind), refName(tagged.kind))
			return
		}
	}
	base, _ := c.refTarget(lhs)
	switch base.kind {
	case lvTableRef:
		// Element type []uint64 means a [][]uint64 per-item slot.
		if _, isSlice := c.pass.TypeOf(lhs).Underlying().(*types.Slice); isSlice {
			if rv := c.value(rhs); rv.kind != lvTableRef {
				c.pass.Reportf(lhs.Pos(), "slot of a packed table set from a value that is not a proven table reference")
			}
			return
		}
		c.checkLaneStore(lhs.Pos(), rhs, c.facts.cellMax, "table")
	case lvAccRef:
		c.checkLaneStore(lhs.Pos(), rhs, c.facts.accMax, "accumulator")
	default:
		if obj := identObj(c.pass, lhs); obj != nil {
			if _, isLocal := c.vals[obj]; isLocal {
				c.vals[obj] = c.value(rhs)
			}
		}
	}
}

// checkLaneStore proves the stored value's lanes stay under limit.
func (c *laneChecker) checkLaneStore(pos token.Pos, rhs ast.Expr, limit int64, what string) {
	v := c.value(rhs)
	lv, ok := c.asLanes(v)
	if !ok {
		c.pass.Reportf(pos, "cannot bound the lanes of the value stored into the packed %s", what)
		return
	}
	if lv > limit {
		c.pass.Reportf(pos, "store into the packed %s may hold lanes up to %d, above the proven bound %d", what, lv, limit)
	}
}

// accumulate checks `T += E` under the rows-loop discipline: the target
// must be zeroed (or a fresh local), every enclosing loop must be the one
// rows loop, a loop whose key indexes the target, or a loop the target is
// declared in, and the addend's lanes must fit cellMax so that maxRows
// additions stay under the lane mask.
func (c *laneChecker) accumulate(s *ast.AssignStmt) {
	lhs, rhs := s.Lhs[0], s.Rhs[0]
	rv := c.value(rhs)
	base, idx := c.refTarget(lhs)
	obj := identObj(c.pass, lhs)

	if rv.kind != lvLanes {
		if base.isRef() {
			c.pass.Reportf(s.Pos(), "cannot bound the lanes of the value accumulated into the packed %s", refName(base.kind))
		} else if obj != nil {
			old := c.vals[obj]
			c.vals[obj] = c.binop(s.Pos(), token.ADD, old, rv)
		}
		return
	}
	if base.kind == lvTableRef {
		c.pass.Reportf(s.Pos(), "lane accumulation into the packed table itself; tables change only through proven stores")
		return
	}

	// Identify the root being accumulated into and check it starts at zero.
	var root types.Object
	switch {
	case base.kind == lvAccRef:
		zeroOK := false
		for _, o := range base.chain {
			if p, ok := c.zeroed[o]; ok && p < s.Pos() {
				zeroOK = true
			}
		}
		if !zeroOK {
			c.pass.Reportf(s.Pos(), "lane accumulation into an accumulator window that is not provably zeroed in this function")
			return
		}
		root = base.chain[len(base.chain)-1]
	case obj != nil && c.fresh[obj]:
		root = obj
	default:
		c.pass.Reportf(s.Pos(), "lane accumulation into a target that is neither a zeroed accumulator nor a fresh local")
		return
	}
	if c.accumulated[root] {
		c.pass.Reportf(s.Pos(), "second lane accumulation into %s without re-zeroing cannot be bounded", root.Name())
		return
	}
	c.accumulated[root] = true

	// Loop discipline.
	rows := 0
	for i, fr := range c.loops {
		if fr.rows {
			rows++
			continue
		}
		if fr.keyObj != nil && idx != nil && usesObj(c.pass, idx, fr.keyObj) {
			continue
		}
		if c.depth[root] > i {
			continue
		}
		c.pass.Reportf(s.Pos(), "enclosing loop multiplies this lane accumulation beyond the rows bound; hoist it or accumulate into a loop-local")
		return
	}
	if rows != 1 {
		c.pass.Reportf(s.Pos(), "lane accumulation must sit inside exactly one //blbp:rows loop (found %d); the row count is otherwise unbounded", rows)
		return
	}
	if rv.hi > c.facts.cellMax {
		c.pass.Reportf(s.Pos(), "accumulated lanes reach %d per row, above cellMax %d; maxRows rows would overflow", rv.hi, c.facts.cellMax)
		return
	}
	if obj != nil && root == obj {
		c.vals[obj] = lanesV(c.facts.maxRows * rv.hi)
		delete(c.fresh, obj)
	}
}

// exprStmt checks copy() into tagged slices.
func (c *laneChecker) exprStmt(s *ast.ExprStmt) {
	call, ok := s.X.(*ast.CallExpr)
	if !ok || calleeName(call) != "copy" || len(call.Args) != 2 {
		return
	}
	dst := c.value(call.Args[0])
	if dst.kind != lvTableRef && dst.kind != lvAccRef {
		return
	}
	limit, what := c.facts.cellMax, "table"
	if dst.kind == lvAccRef {
		limit, what = c.facts.accMax, "accumulator"
	}
	src := c.value(call.Args[1])
	if src.kind == dst.kind {
		return
	}
	if lv, ok := c.asLanes(src); ok && lv <= limit {
		return
	}
	c.pass.Reportf(s.Pos(), "copy into the packed %s from a source whose lanes cannot be bounded by %d", what, limit)
}

func targetObj(pass *Pass, lhs ast.Expr) types.Object {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		return pass.ObjectOf(lhs)
	case *ast.SelectorExpr:
		return pass.ObjectOf(lhs.Sel)
	}
	return nil
}

func isMakeCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	return ok && calleeName(call) == "make"
}

func usesObj(pass *Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
