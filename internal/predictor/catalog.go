package predictor

import (
	"fmt"

	"blbp/internal/batch"
	"blbp/internal/btb"
	"blbp/internal/cascaded"
	"blbp/internal/combined"
	"blbp/internal/cond"
	"blbp/internal/core"
	"blbp/internal/ittage"
	"blbp/internal/targetcache"
	"blbp/internal/vpc"
)

// The snapshottable predictors (tentpole of the warm-state work): BLBP,
// ITTAGE, the consolidated combined structure (either view), and the
// conditional TAGE/hashed-perceptron predictors. The remaining catalog
// entries (btb, btb2bit, targetcache, cascaded, vpc) intentionally do not
// implement Snapshotter yet; tools probing with AsSnapshotter must report
// that clearly rather than silently skipping state.
var (
	_ Snapshotter = (*core.BLBP)(nil)
	_ Snapshotter = (*ittage.ITTAGE)(nil)
	_ Snapshotter = (*combined.Predictor)(nil)
	_ Snapshotter = (*combined.IndirectView)(nil)
	_ Snapshotter = (*cond.TAGE)(nil)
	_ Snapshotter = (*cond.HashedPerceptron)(nil)
)

// cfgAs narrows the registry's opaque config value back to the predictor's
// own config type; a mismatch indicates a caller bypassing Entry.Config.
func cfgAs[T any](name string, cfg any) (T, error) {
	c, ok := cfg.(T)
	if !ok {
		var zero T
		return zero, fmt.Errorf("predictor: %s config has type %T, want %T", name, cfg, zero)
	}
	return c, nil
}

// The catalog: every predictor the reproduction models, registered with its
// paper-default configuration. Run plans and the CLIs construct predictors
// exclusively through these entries.
func init() {
	Register(Entry{
		Name:    "blbp",
		Doc:     "bit-level perceptron indirect predictor (paper Table 2)",
		Default: func() any { return core.DefaultConfig() },
		New: func(cfg any) (Indirect, error) {
			c, err := cfgAs[core.Config]("blbp", cfg)
			if err != nil {
				return nil, err
			}
			return core.New(c), nil
		},
		NewBatch: func(cfg any, capacity int) (*batch.Engine, error) {
			c, err := cfgAs[core.Config]("blbp", cfg)
			if err != nil {
				return nil, err
			}
			return batch.NewEngine(c, capacity), nil
		},
	})
	Register(Entry{
		Name:    "ittage",
		Doc:     "ITTAGE baseline (~64 KB, 8 tagged tables)",
		Default: func() any { return ittage.DefaultConfig() },
		New: func(cfg any) (Indirect, error) {
			c, err := cfgAs[ittage.Config]("ittage", cfg)
			if err != nil {
				return nil, err
			}
			return ittage.New(c), nil
		},
	})
	Register(Entry{
		Name:    "btb",
		Doc:     "baseline last-taken branch target buffer (32K entries)",
		Default: func() any { return btb.Default32K() },
		New:     newBTB("btb"),
	})
	Register(Entry{
		Name: "btb2bit",
		Doc:  "Calder & Grunwald 2-bit hysteresis BTB variant",
		Default: func() any {
			cfg := btb.Default32K()
			cfg.Hysteresis = true
			return cfg
		},
		New: newBTB("btb2bit"),
	})
	Register(Entry{
		Name:    "targetcache",
		Doc:     "Chang et al. target cache (target-history indexed)",
		Default: func() any { return targetcache.DefaultConfig() },
		New: func(cfg any) (Indirect, error) {
			c, err := cfgAs[targetcache.Config]("targetcache", cfg)
			if err != nil {
				return nil, err
			}
			return targetcache.New(c), nil
		},
	})
	Register(Entry{
		Name:    "cascaded",
		Doc:     "Driesen & Hölzle two-stage cascaded predictor",
		Default: func() any { return cascaded.DefaultConfig() },
		New: func(cfg any) (Indirect, error) {
			c, err := cfgAs[cascaded.Config]("cascaded", cfg)
			if err != nil {
				return nil, err
			}
			return cascaded.New(c), nil
		},
	})
	Register(Entry{
		Name:    "vpc",
		Doc:     "VPC (Kim et al.): virtual PCs over the shared conditional predictor",
		Default: func() any { return vpc.DefaultConfig() },
		NewBound: func(cfg any, cp cond.Predictor) (Indirect, error) {
			c, err := cfgAs[vpc.Config]("vpc", cfg)
			if err != nil {
				return nil, err
			}
			hp, ok := cp.(*cond.HashedPerceptron)
			if !ok {
				return nil, fmt.Errorf("predictor: vpc requires a hashed-perceptron conditional predictor, got %T", cp)
			}
			return vpc.New(c, hp), nil
		},
	})
	Register(Entry{
		Name:       "combined",
		ResultName: "combined",
		Doc:        "§6 consolidated BLBP: one structure for conditionals and targets",
		Default:    func() any { return core.DefaultConfig() },
		NewProvider: func(cfg any) (cond.Predictor, Indirect, error) {
			c, err := cfgAs[core.Config]("combined", cfg)
			if err != nil {
				return nil, nil, err
			}
			p := combined.New(c)
			return p, p.Indirect(), nil
		},
	})
}

func newBTB(name string) func(cfg any) (Indirect, error) {
	return func(cfg any) (Indirect, error) {
		c, err := cfgAs[btb.Config](name, cfg)
		if err != nil {
			return nil, err
		}
		return btb.NewIndirect(c), nil
	}
}
