// Package predictor defines the interface all indirect branch target
// predictors implement, plus a registry used by the command-line tools.
package predictor

import (
	"fmt"
	"sort"

	"blbp/internal/trace"
)

// Indirect is a target predictor for indirect jumps and calls.
//
// The simulation engine's per-branch contract is: for every indirect branch
// it calls Predict(pc) and then immediately Update(pc, actual) with no
// intervening calls, so implementations may cache prediction-time state
// keyed by pc. Conditional outcomes arrive through OnCond and remaining
// control transfers through OnOther, in program order.
type Indirect interface {
	// Name identifies the predictor in reports.
	Name() string
	// Predict returns the predicted target, or ok=false when the predictor
	// has no basis for a prediction (e.g. a compulsory target-buffer miss);
	// the engine counts that as a misprediction.
	Predict(pc uint64) (target uint64, ok bool)
	// Update trains the predictor with the resolved target.
	Update(pc uint64, actual uint64)
	// OnCond observes a conditional branch outcome.
	OnCond(pc uint64, taken bool)
	// OnOther observes non-conditional, non-indirect control transfers
	// (direct jumps/calls and returns).
	OnOther(pc, target uint64, bt trace.BranchType)
	// StorageBits returns the modeled hardware budget in bits.
	StorageBits() int
}

// Factory constructs a fresh predictor instance.
type Factory func() Indirect

var registry = map[string]Factory{}

// Register adds a named predictor factory. It panics on duplicates, which
// indicates an init-time programming error.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("predictor: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New instantiates a registered predictor by name.
func New(name string) (Indirect, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("predictor: unknown predictor %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered predictor names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
