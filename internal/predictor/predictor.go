// Package predictor defines the interface all indirect branch target
// predictors implement, plus a configurable registry used by the
// command-line tools and the runspec plan layer: every predictor registers
// a default configuration and a config-taking factory, and configurations
// round-trip through JSON so experiments can be expressed as data.
package predictor

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"

	"blbp/internal/batch"
	"blbp/internal/cond"
	"blbp/internal/trace"
)

// Indirect is a target predictor for indirect jumps and calls.
//
// The simulation engine's per-branch contract is: for every indirect branch
// it calls Predict(pc) and then immediately Update(pc, actual) with no
// intervening calls, so implementations may cache prediction-time state
// keyed by pc. Conditional outcomes arrive through OnCond and remaining
// control transfers through OnOther, in program order.
type Indirect interface {
	// Name identifies the predictor in reports.
	Name() string
	// Predict returns the predicted target, or ok=false when the predictor
	// has no basis for a prediction (e.g. a compulsory target-buffer miss);
	// the engine counts that as a misprediction.
	Predict(pc uint64) (target uint64, ok bool)
	// Update trains the predictor with the resolved target.
	Update(pc uint64, actual uint64)
	// OnCond observes a conditional branch outcome.
	OnCond(pc uint64, taken bool)
	// OnOther observes non-conditional, non-indirect control transfers
	// (direct jumps/calls and returns).
	OnOther(pc, target uint64, bt trace.BranchType)
	// StorageBits returns the modeled hardware budget in bits.
	StorageBits() int
}

// SpanFeeder is an optional fast path for columnar replay: a predictor that
// implements it consumes a whole same-class run of records through one call
// instead of one interface call per record. Implementations must be
// observably identical to calling OnCond (respectively OnOther) once per
// record in [start, end) in index order — sim.Tape feeds spans only on the
// shared-conditional replay path, where bit-identical results are the
// contract.
type SpanFeeder interface {
	// OnCondSpan observes records [start, end) of a conditional segment.
	OnCondSpan(c *trace.Columns, start, end int)
	// OnOtherSpan observes records [start, end) of a direct-jump, direct-
	// call, or return segment of type bt.
	OnOtherSpan(c *trace.Columns, start, end int, bt trace.BranchType)
}

// Snapshotter is the optional warm-state persistence interface: a predictor
// implementing it can serialize its trained state as a BLBPSNP1 snapshot
// (internal/snapshot) and reinstate it into a fresh instance built from the
// same configuration. The differential contract is strict: after
// EncodeState on a trained predictor and RestoreState into an identically
// configured one, every subsequent Predict/Update/OnCond sequence must be
// bit-identical between the two. Conditional predictors (cond.Predictor)
// and indirect predictors alike may implement it; use AsSnapshotter to
// probe a built instance.
type Snapshotter interface {
	// EncodeState writes the predictor's trained state to w. It must not
	// perturb the predictor (lazy state may be flushed, but only in ways
	// no later call can observe).
	EncodeState(w io.Writer) error
	// RestoreState reinstates state written by EncodeState on a predictor
	// of the same type and configuration. On error (corrupt, truncated, or
	// mismatched snapshot) the receiver's state is unspecified: discard it
	// or reset it before reuse.
	RestoreState(r io.Reader) error
}

// AsSnapshotter reports whether a built predictor instance (indirect or
// conditional) supports warm-state snapshots, unwrapping nothing: the
// instance itself must implement Snapshotter.
func AsSnapshotter(v any) (Snapshotter, bool) {
	s, ok := v.(Snapshotter)
	return s, ok
}

// Entry describes one registered predictor: its default configuration and
// how to build an instance from a configuration value. Exactly one of the
// three constructors is set, depending on how the predictor relates to the
// engine's conditional predictor:
//
//   - New: a standalone indirect predictor (the common case).
//   - NewBound: a predictor that must share the engine's conditional
//     predictor (VPC, whose defining property is stealing the conditional
//     predictor's tables for virtual PCs).
//   - NewProvider: a consolidated predictor that itself serves as the
//     engine's conditional predictor and exposes an indirect view (the
//     paper's §6 combined structure).
type Entry struct {
	// Name is the registry key referenced by CLIs and run plans.
	Name string
	// ResultName is the name the built predictor reports in results
	// (Indirect.Name() of a default-config instance). It usually equals
	// Name; run plans use it to locate a pass's rows in a suite result.
	ResultName string
	// Doc is a one-line description for -list output.
	Doc string
	// Default returns the default configuration value (a plain struct
	// that round-trips through JSON).
	Default func() any

	New         func(cfg any) (Indirect, error)
	NewBound    func(cfg any, cp cond.Predictor) (Indirect, error)
	NewProvider func(cfg any) (cond.Predictor, Indirect, error)

	// NewBatch, when set, builds a multi-stream batching engine
	// (internal/batch) over the same configuration value the serial
	// constructor takes, with capacity stream slots. It is optional and
	// additive: a predictor with NewBatch still sets exactly one of the
	// constructors above for serial use.
	NewBatch func(cfg any, capacity int) (*batch.Engine, error)
}

// Kind reports how the predictor relates to the engine's conditional
// predictor: "standalone", "cond-bound", or "consolidated".
func (e Entry) Kind() string {
	switch {
	case e.NewBound != nil:
		return "cond-bound"
	case e.NewProvider != nil:
		return "consolidated"
	default:
		return "standalone"
	}
}

// Config materializes a configuration for this predictor: the default
// config with the JSON object overrides (if any) merged field-for-field on
// top. Unknown fields are rejected, so typos in plan files fail loudly.
func (e Entry) Config(overrides []byte) (any, error) {
	cfg, err := MergeJSON(e.Default(), overrides)
	if err != nil {
		return nil, fmt.Errorf("predictor: %s config: %v", e.Name, err)
	}
	return cfg, nil
}

// MergeJSON merges a JSON object of overrides field-for-field onto a copy
// of the default config value def and returns the result (nested structs
// merge per present field; slices replace wholesale — encoding/json's
// unmarshal-into-populated-value semantics). Unknown fields and trailing
// data are rejected. If the merged config has a Validate method, it runs.
func MergeJSON(def any, overrides []byte) (any, error) {
	pv := reflect.New(reflect.TypeOf(def))
	pv.Elem().Set(reflect.ValueOf(def))
	if len(bytes.TrimSpace(overrides)) > 0 {
		dec := json.NewDecoder(bytes.NewReader(overrides))
		dec.DisallowUnknownFields()
		if err := dec.Decode(pv.Interface()); err != nil {
			return nil, err
		}
		if dec.More() {
			return nil, fmt.Errorf("trailing data after JSON object")
		}
	}
	cfg := pv.Elem().Interface()
	if v, ok := cfg.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}

// DefaultJSON returns the default configuration as compact JSON.
func (e Entry) DefaultJSON() []byte {
	b, err := json.Marshal(e.Default())
	if err != nil {
		panic(fmt.Sprintf("predictor: %s default config does not marshal: %v", e.Name, err))
	}
	return b
}

var registry = map[string]Entry{}

// Register adds a predictor entry. It panics on duplicates or malformed
// entries, which indicate init-time programming errors.
func Register(e Entry) {
	if e.Name == "" || e.Default == nil {
		panic("predictor: entry needs a name and a default config")
	}
	n := 0
	for _, set := range []bool{e.New != nil, e.NewBound != nil, e.NewProvider != nil} {
		if set {
			n++
		}
	}
	if n != 1 {
		panic(fmt.Sprintf("predictor: entry %q must set exactly one constructor", e.Name))
	}
	if e.ResultName == "" {
		e.ResultName = e.Name
	}
	if _, dup := registry[e.Name]; dup {
		panic(fmt.Sprintf("predictor: duplicate registration of %q", e.Name))
	}
	registry[e.Name] = e
}

// Lookup returns the entry registered under name.
func Lookup(name string) (Entry, bool) {
	e, ok := registry[name]
	return e, ok
}

// New instantiates a registered standalone predictor by name with its
// default configuration.
func New(name string) (Indirect, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("predictor: unknown predictor %q (have %s; `experiments -list` or `blbpsim -list` shows each with its default-config JSON)",
			name, strings.Join(Names(), ", "))
	}
	if e.New == nil {
		return nil, fmt.Errorf("predictor: %q is %s and cannot be built in isolation from the engine's conditional predictor", name, e.Kind())
	}
	cfg, err := e.Config(nil)
	if err != nil {
		return nil, err
	}
	return e.New(cfg)
}

// NewBatchEngine builds a registered predictor's multi-stream batching
// engine with capacity stream slots, applying JSON overrides to its default
// configuration first (the same merge rules as serial construction, so run
// plans and CLIs configure the batched and serial paths identically).
func NewBatchEngine(name string, overrides []byte, capacity int) (*batch.Engine, error) {
	e, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("predictor: unknown predictor %q (have %s)", name, strings.Join(Names(), ", "))
	}
	if e.NewBatch == nil {
		return nil, fmt.Errorf("predictor: %q has no batching engine", name)
	}
	cfg, err := e.Config(overrides)
	if err != nil {
		return nil, err
	}
	return e.NewBatch(cfg, capacity)
}

// Names lists the registered predictor names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Entries returns all registry entries sorted by name.
func Entries() []Entry {
	names := Names()
	es := make([]Entry, len(names))
	for i, n := range names {
		es[i] = registry[n]
	}
	return es
}
