package predictor

import (
	"testing"

	"blbp/internal/trace"
)

type fake struct{ name string }

func (f fake) Name() string                              { return f.name }
func (f fake) Predict(pc uint64) (uint64, bool)          { return 0, false }
func (f fake) Update(pc, actual uint64)                  {}
func (f fake) OnCond(pc uint64, taken bool)              {}
func (f fake) OnOther(pc, t uint64, bt trace.BranchType) {}
func (f fake) StorageBits() int                          { return 1 }

func TestRegisterAndNew(t *testing.T) {
	Register("test-fake", func() Indirect { return fake{name: "test-fake"} })
	p, err := New("test-fake")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "test-fake" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("definitely-not-registered"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	Register("test-dup", func() Indirect { return fake{} })
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register("test-dup", func() Indirect { return fake{} })
}

func TestNamesSortedAndContainsRegistered(t *testing.T) {
	Register("test-zz", func() Indirect { return fake{} })
	Register("test-aa", func() Indirect { return fake{} })
	names := Names()
	found := map[string]bool{}
	for i, n := range names {
		found[n] = true
		if i > 0 && names[i-1] > n {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	if !found["test-zz"] || !found["test-aa"] {
		t.Errorf("registered names missing from %v", names)
	}
}
