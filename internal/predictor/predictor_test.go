package predictor

import (
	"encoding/json"
	"strings"
	"testing"

	"blbp/internal/cond"
	"blbp/internal/trace"
)

type fake struct{ name string }

func (f fake) Name() string                              { return f.name }
func (f fake) Predict(pc uint64) (uint64, bool)          { return 0, false }
func (f fake) Update(pc, actual uint64)                  {}
func (f fake) OnCond(pc uint64, taken bool)              {}
func (f fake) OnOther(pc, t uint64, bt trace.BranchType) {}
func (f fake) StorageBits() int                          { return 1 }

type fakeConfig struct {
	Entries int
	Tag     int
}

func fakeEntry(name string) Entry {
	return Entry{
		Name:    name,
		Default: func() any { return fakeConfig{Entries: 64, Tag: 8} },
		New:     func(cfg any) (Indirect, error) { return fake{name: name}, nil },
	}
}

func TestRegisterAndNew(t *testing.T) {
	Register(fakeEntry("test-fake"))
	p, err := New("test-fake")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "test-fake" {
		t.Errorf("Name = %q", p.Name())
	}
}

func TestNewUnknownHintsAtList(t *testing.T) {
	_, err := New("definitely-not-registered")
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	if !strings.Contains(err.Error(), "-list") {
		t.Errorf("error does not point at -list discovery: %v", err)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	Register(fakeEntry("test-dup"))
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(fakeEntry("test-dup"))
}

func TestEntryNeedsExactlyOneConstructor(t *testing.T) {
	e := fakeEntry("test-two-ctors")
	e.NewProvider = func(cfg any) (cond.Predictor, Indirect, error) { return nil, nil, nil }
	defer func() {
		if recover() == nil {
			t.Error("entry with two constructors did not panic")
		}
	}()
	Register(e)
}

func TestNamesSortedAndContainsRegistered(t *testing.T) {
	Register(fakeEntry("test-zz"))
	Register(fakeEntry("test-aa"))
	names := Names()
	found := map[string]bool{}
	for i, n := range names {
		found[n] = true
		if i > 0 && names[i-1] > n {
			t.Fatalf("Names not sorted: %v", names)
		}
	}
	if !found["test-zz"] || !found["test-aa"] {
		t.Errorf("registered names missing from %v", names)
	}
}

func TestConfigOverrideMerges(t *testing.T) {
	e := fakeEntry("test-merge")
	got, err := e.Config([]byte(`{"Tag": 12}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg := got.(fakeConfig)
	if cfg.Tag != 12 || cfg.Entries != 64 {
		t.Errorf("merged config = %+v, want Tag overridden and Entries kept", cfg)
	}
}

func TestConfigRejectsUnknownField(t *testing.T) {
	e := fakeEntry("test-unknown-field")
	if _, err := e.Config([]byte(`{"NotAField": 1}`)); err == nil {
		t.Error("unknown config field accepted")
	}
	if _, err := e.Config([]byte(`{"Tag": 1} {"Tag": 2}`)); err == nil {
		t.Error("trailing JSON accepted")
	}
}

func TestDefaultJSONRoundTrips(t *testing.T) {
	e := fakeEntry("test-roundtrip")
	got, err := e.Config(e.DefaultJSON())
	if err != nil {
		t.Fatal(err)
	}
	if got.(fakeConfig) != (fakeConfig{Entries: 64, Tag: 8}) {
		t.Errorf("round-trip changed config: %+v", got)
	}
	var m map[string]any
	if err := json.Unmarshal(e.DefaultJSON(), &m); err != nil {
		t.Fatal(err)
	}
}
