package predictor_test

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"blbp/internal/btb"
	"blbp/internal/cascaded"
	"blbp/internal/cond"
	"blbp/internal/core"
	"blbp/internal/ittage"
	"blbp/internal/predictor"
	"blbp/internal/targetcache"
	"blbp/internal/trace"
)

// conformance exercises the predictor.Indirect contract uniformly across
// every implementation in the repository, plus the registry contract that
// every catalog entry's configuration round-trips through JSON.

func implementations() map[string]func() predictor.Indirect {
	return map[string]func() predictor.Indirect{
		"blbp": func() predictor.Indirect { return core.New(core.DefaultConfig()) },
		"blbp-hier": func() predictor.Indirect {
			cfg := core.DefaultConfig()
			cfg.UseHierarchicalIBTB = true
			return core.New(cfg)
		},
		"ittage":      func() predictor.Indirect { return ittage.New(ittage.DefaultConfig()) },
		"btb":         func() predictor.Indirect { return btb.NewIndirect(btb.Default32K()) },
		"targetcache": func() predictor.Indirect { return targetcache.New(targetcache.DefaultConfig()) },
		"cascaded":    func() predictor.Indirect { return cascaded.New(cascaded.DefaultConfig()) },
	}
}

// drive runs a standardized random-but-seeded event stream through p and
// returns the sequence of predictions for comparison.
func drive(p predictor.Indirect, seed int64, n int) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint64, 0, n)
	targets := []uint64{0x1000, 0x3000, 0x5000, 0x9000}
	for i := 0; i < n; i++ {
		switch rng.Intn(4) {
		case 0:
			p.OnCond(uint64(0xC00+rng.Intn(4)*4), rng.Intn(2) == 0)
		case 1:
			p.OnOther(0xD00, 0xE00, trace.Return)
		default:
			pc := uint64(0x100 + rng.Intn(3)*0x40)
			pred, ok := p.Predict(pc)
			if !ok {
				pred = ^uint64(0)
			}
			out = append(out, pred)
			p.Update(pc, targets[rng.Intn(len(targets))])
		}
	}
	return out
}

func TestConformanceDeterminism(t *testing.T) {
	for name, make := range implementations() {
		t.Run(name, func(t *testing.T) {
			a := drive(make(), 42, 3000)
			b := drive(make(), 42, 3000)
			if len(a) != len(b) {
				t.Fatal("lengths differ")
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("prediction %d differs between identical runs", i)
				}
			}
		})
	}
}

func TestConformanceMonomorphicConvergence(t *testing.T) {
	for name, make := range implementations() {
		t.Run(name, func(t *testing.T) {
			p := make()
			mis := 0
			for i := 0; i < 300; i++ {
				pred, ok := p.Predict(0x4000)
				if (!ok || pred != 0xBEEF0) && i >= 50 {
					mis++
				}
				p.Update(0x4000, 0xBEEF0)
			}
			if mis != 0 {
				t.Errorf("%d late mispredicts on a monomorphic branch", mis)
			}
		})
	}
}

func TestConformanceColdMiss(t *testing.T) {
	for name, make := range implementations() {
		t.Run(name, func(t *testing.T) {
			if _, ok := make().Predict(0x777000); ok {
				t.Error("prediction claimed on a never-seen branch")
			}
		})
	}
}

func TestConformanceUpdateFirstIsSafe(t *testing.T) {
	for name, make := range implementations() {
		t.Run(name, func(t *testing.T) {
			p := make()
			for i := 0; i < 50; i++ {
				p.Update(0x900, 0x123400)
			}
			pred, ok := p.Predict(0x900)
			if !ok || pred != 0x123400 {
				t.Errorf("Predict = %#x/%v after update-only stream", pred, ok)
			}
		})
	}
}

func TestConformanceMetadata(t *testing.T) {
	for name, make := range implementations() {
		t.Run(name, func(t *testing.T) {
			p := make()
			if p.Name() == "" {
				t.Error("empty Name")
			}
			if p.StorageBits() <= 0 {
				t.Error("non-positive StorageBits")
			}
		})
	}
}

// buildAny constructs an instance of e under cfg regardless of the entry's
// kind, supplying a default hashed-perceptron conditional predictor where
// one is required, and returns the instance plus its storage budget (the
// provider's budget for consolidated predictors, matching how the plan
// layer accounts for them).
func buildAny(t *testing.T, e predictor.Entry, cfg any) (predictor.Indirect, int) {
	t.Helper()
	switch e.Kind() {
	case "standalone":
		p, err := e.New(cfg)
		if err != nil {
			t.Fatalf("%s: New: %v", e.Name, err)
		}
		return p, p.StorageBits()
	case "cond-bound":
		p, err := e.NewBound(cfg, cond.NewHashedPerceptron(cond.DefaultHPConfig()))
		if err != nil {
			t.Fatalf("%s: NewBound: %v", e.Name, err)
		}
		return p, p.StorageBits()
	case "consolidated":
		cp, p, err := e.NewProvider(cfg)
		if err != nil {
			t.Fatalf("%s: NewProvider: %v", e.Name, err)
		}
		return p, cp.StorageBits()
	}
	t.Fatalf("%s: unknown kind %q", e.Name, e.Kind())
	return nil, 0
}

// TestCatalogDefaultConfigsRoundTrip is the registry conformance gate:
// every catalog predictor's default configuration must survive a JSON
// round trip (Config(DefaultJSON()) yielding an equal value), and an
// instance built from the round-tripped config must model the same
// hardware budget and report the expected result name. Entries registered
// by other tests (prefix "test-") are not part of the catalog contract.
func TestCatalogDefaultConfigsRoundTrip(t *testing.T) {
	n := 0
	for _, e := range predictor.Entries() {
		if strings.HasPrefix(e.Name, "test-") {
			continue
		}
		n++
		def, err := e.Config(nil)
		if err != nil {
			t.Errorf("%s: default config invalid: %v", e.Name, err)
			continue
		}
		rt, err := e.Config(e.DefaultJSON())
		if err != nil {
			t.Errorf("%s: default config does not re-decode: %v", e.Name, err)
			continue
		}
		if !reflect.DeepEqual(def, rt) {
			t.Errorf("%s: config changed across JSON round trip:\n  default: %+v\n  decoded: %+v", e.Name, def, rt)
			continue
		}
		pd, bitsDef := buildAny(t, e, def)
		prt, bitsRT := buildAny(t, e, rt)
		if bitsDef != bitsRT {
			t.Errorf("%s: StorageBits %d after round trip, want %d", e.Name, bitsRT, bitsDef)
		}
		if bitsDef <= 0 {
			t.Errorf("%s: non-positive storage budget %d", e.Name, bitsDef)
		}
		if pd.Name() != e.ResultName || prt.Name() != e.ResultName {
			t.Errorf("%s: instance names %q/%q, want ResultName %q", e.Name, pd.Name(), prt.Name(), e.ResultName)
		}
	}
	if n < 8 {
		t.Errorf("catalog has %d entries, want at least the 8 registered predictors", n)
	}
}

func TestConformanceStressNoPanic(t *testing.T) {
	// A hostile stream: extreme addresses, alternating histories, dense
	// polymorphism. Nothing should panic and capacity bounds must hold.
	for name, make := range implementations() {
		t.Run(name, func(t *testing.T) {
			p := make()
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 20000; i++ {
				pc := rng.Uint64()
				if rng.Intn(3) == 0 {
					p.OnCond(pc, rng.Intn(2) == 0)
					continue
				}
				p.Predict(pc)
				p.Update(pc, rng.Uint64())
			}
		})
	}
}
