// Package stats provides the small numeric summaries the experiment drivers
// report: means, extrema, percentiles, and histogram bucketing.
package stats

import (
	"fmt"
	"sort"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice), the
// aggregation the paper uses for suite MPKI.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMeanShifted returns the shifted geometric mean exp(mean(log(x+eps)))-eps,
// robust to zero entries; useful for ratio-like summaries.
func GeoMeanShifted(xs []float64, eps float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += ln(x + eps)
	}
	return exp(sum/float64(len(xs))) - eps
}

// Min returns the smallest element (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks; it copies its input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(rank)
	if lo >= len(s)-1 {
		return s[len(s)-1]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// PercentChange returns 100·(from−to)/from — the "% reduction" convention
// of the paper's Fig. 10 (positive = improvement of to over from).
func PercentChange(from, to float64) float64 {
	if from == 0 {
		return 0
	}
	return 100 * (from - to) / from
}

// FormatKB renders a bit count as kilobytes with two decimals.
func FormatKB(bits int) string {
	return fmt.Sprintf("%.2f KB", float64(bits)/8192)
}
