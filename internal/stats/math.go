package stats

import "math"

func ln(x float64) float64  { return math.Log(x) }
func exp(x float64) float64 { return math.Exp(x) }
