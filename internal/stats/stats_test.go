package stats

import (
	"math"
	"testing"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {-5, 1}, {200, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("Percentile(nil) should be 0")
	}
	if Percentile([]float64{9}, 50) != 9 {
		t.Error("single-element percentile")
	}
	// Input must not be mutated.
	orig := []float64{5, 1, 3}
	Percentile(orig, 50)
	if orig[0] != 5 || orig[1] != 1 || orig[2] != 3 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Percentile(xs, 50); got != 5 {
		t.Errorf("Percentile(50) = %v, want 5", got)
	}
}

func TestPercentChange(t *testing.T) {
	if got := PercentChange(0.2, 0.19); math.Abs(got-5) > 1e-9 {
		t.Errorf("PercentChange = %v, want 5", got)
	}
	if got := PercentChange(0.1, 0.2); math.Abs(got+100) > 1e-9 {
		t.Errorf("PercentChange = %v, want -100", got)
	}
	if PercentChange(0, 1) != 0 {
		t.Error("PercentChange with zero base should be 0")
	}
}

func TestGeoMeanShifted(t *testing.T) {
	got := GeoMeanShifted([]float64{1, 1, 1}, 0.01)
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("GeoMeanShifted(ones) = %v, want 1", got)
	}
	if GeoMeanShifted(nil, 0.01) != 0 {
		t.Error("empty GeoMeanShifted should be 0")
	}
	// Handles zeros without blowing up.
	got = GeoMeanShifted([]float64{0, 0.1}, 0.001)
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Errorf("GeoMeanShifted with zero = %v", got)
	}
}

func TestFormatKB(t *testing.T) {
	if got := FormatKB(8192); got != "1.00 KB" {
		t.Errorf("FormatKB = %q, want \"1.00 KB\"", got)
	}
}
