package batch

import "blbp/internal/core"

// EventKind distinguishes the two stream event types the pool transports.
type EventKind uint8

const (
	// Indirect is a resolved indirect branch: predict the target, then train
	// with the actual one.
	Indirect EventKind = iota
	// Cond is a conditional branch outcome: feeds the stream's global
	// history, no prediction made.
	Cond
)

// Event is one element of a stream's program order.
type Event struct {
	Kind   EventKind
	PC     uint64
	Target uint64 // resolved target (Indirect)
	Taken  bool   // outcome (Cond)
}

// Result is the outcome of one batched indirect prediction.
type Result struct {
	Stream    int // pool stream id
	PC        uint64
	Predicted uint64
	OK        bool // false = no candidates (compulsory miss)
	Target    uint64
	Correct   bool
}

// stream is a pool member: its engine slot and its queue of pending events,
// a growable ring buffer so steady-state traffic enqueues without
// allocating.
type stream struct {
	slot int
	buf  []Event
	head int
	len  int
}

func (s *stream) push(ev Event) {
	if s.len == len(s.buf) {
		grown := make([]Event, max(16, 2*len(s.buf)))
		for i := 0; i < s.len; i++ {
			grown[i] = s.buf[(s.head+i)%len(s.buf)]
		}
		s.buf, s.head = grown, 0
	}
	s.buf[(s.head+s.len)%len(s.buf)] = ev
	s.len++
}

func (s *stream) pop() Event {
	ev := s.buf[s.head]
	s.head = (s.head + 1) % len(s.buf)
	s.len--
	return ev
}

// Pool round-robins batches over a set of admitted streams. Callers feed
// each stream's events in program order (Feed) and repeatedly Step the pool;
// every Step assembles one batch of at most one pending indirect event per
// stream — the invariant the engine's duplicate check enforces — predicts it
// in one sweep, trains with the resolved targets, and appends per-event
// Results. Conditional events at the front of a stream's queue are applied
// during the fill, preserving each stream's program order exactly.
type Pool struct {
	eng     *Engine
	streams []*stream // stream id -> state; nil after Retire
	active  []int     // live stream ids in admission order
	cursor  int       // round-robin position in active

	// Batch assembly scratch, sized to the engine capacity once.
	slots   []int
	ids     []int
	pcs     []uint64
	actuals []uint64
	preds   []uint64
	oks     []bool

	results []Result
}

// NewPool wraps an engine with queueing and round-robin fills. The engine
// must not be used for admissions outside the pool afterwards.
func NewPool(eng *Engine) *Pool {
	capacity := eng.Capacity()
	return &Pool{
		eng:     eng,
		streams: make([]*stream, 0, capacity),
		active:  make([]int, 0, capacity),
		slots:   make([]int, 0, capacity),
		ids:     make([]int, 0, capacity),
		pcs:     make([]uint64, 0, capacity),
		actuals: make([]uint64, 0, capacity),
		preds:   make([]uint64, capacity),
		oks:     make([]bool, capacity),
	}
}

// Admit adds a stream to the pool and returns its id, or ok=false when the
// engine is full. Ids are pool-scoped and stable until Retire.
func (p *Pool) Admit() (id int, ok bool) {
	slot, ok := p.eng.Admit()
	if !ok {
		return 0, false
	}
	st := &stream{slot: slot}
	for i, s := range p.streams {
		if s == nil {
			p.streams[i] = st
			p.active = append(p.active, i)
			return i, true
		}
	}
	p.streams = append(p.streams, st)
	id = len(p.streams) - 1
	p.active = append(p.active, id)
	return id, true
}

// Retire removes a stream, discarding any queued events and releasing its
// engine slot.
func (p *Pool) Retire(id int) {
	st := p.streams[id]
	if st == nil {
		panic("batch: retire of unknown stream")
	}
	p.eng.Retire(st.slot)
	p.streams[id] = nil
	for i, a := range p.active {
		if a == id {
			p.active = append(p.active[:i], p.active[i+1:]...)
			if p.cursor > i {
				p.cursor--
			}
			break
		}
	}
	if len(p.active) > 0 {
		p.cursor %= len(p.active)
	} else {
		p.cursor = 0
	}
}

// Feed appends one event to a stream's program order.
func (p *Pool) Feed(id int, ev Event) { p.streams[id].push(ev) }

// Pending returns how many events are queued across all streams.
func (p *Pool) Pending() int {
	total := 0
	for _, id := range p.active {
		total += p.streams[id].len
	}
	return total
}

// Step assembles and serves one batch of up to batchSize indirect events,
// visiting streams round-robin from where the previous Step stopped. It
// returns the number of indirect events served (0 = nothing pending).
// Results are appended to the pool's result log (Results/TakeResults).
func (p *Pool) Step(batchSize int) int {
	if batchSize <= 0 || batchSize > p.eng.Capacity() {
		batchSize = p.eng.Capacity()
	}
	p.slots = p.slots[:0]
	p.ids = p.ids[:0]
	p.pcs = p.pcs[:0]
	p.actuals = p.actuals[:0]

	// Fill: one indirect event per visited stream, draining conditional
	// events eagerly (they touch only that stream's history, in order).
	visited := 0
	for len(p.slots) < batchSize && visited < len(p.active) {
		if p.cursor >= len(p.active) {
			p.cursor = 0
		}
		id := p.active[p.cursor]
		p.cursor++
		visited++
		st := p.streams[id]
		for st.len > 0 {
			if st.buf[st.head].Kind != Cond {
				break
			}
			ev := st.pop()
			p.eng.OnCond(st.slot, ev.PC, ev.Taken)
		}
		if st.len == 0 {
			continue
		}
		ev := st.pop()
		p.slots = append(p.slots, st.slot)
		p.ids = append(p.ids, id)
		p.pcs = append(p.pcs, ev.PC)
		p.actuals = append(p.actuals, ev.Target)
	}
	b := len(p.slots)
	if b == 0 {
		return 0
	}

	p.eng.PredictBatch(p.slots, p.pcs, p.preds[:b], p.oks[:b])
	p.eng.UpdateBatch(p.slots, p.pcs, p.actuals)

	for i := 0; i < b; i++ {
		p.results = append(p.results, Result{
			Stream:    p.ids[i],
			PC:        p.pcs[i],
			Predicted: p.preds[i],
			OK:        p.oks[i],
			Target:    p.actuals[i],
			Correct:   p.oks[i] && p.preds[i] == p.actuals[i],
		})
	}
	return b
}

// Drain Steps until no events remain, returning how many indirect events
// were served.
func (p *Pool) Drain(batchSize int) int {
	total := 0
	for {
		n := p.Step(batchSize)
		if n == 0 {
			return total
		}
		total += n
	}
}

// Results returns the accumulated prediction results in service order.
func (p *Pool) Results() []Result { return p.results }

// TakeResults returns the accumulated results and starts a fresh log.
func (p *Pool) TakeResults() []Result {
	out := p.results
	p.results = nil
	return out
}

// Engine exposes the underlying engine (diagnostics, per-stream access).
func (p *Pool) Engine() *Engine { return p.eng }

// Predictor returns stream id's predictor (diagnostics, state comparison).
func (p *Pool) Predictor(id int) *core.BLBP {
	return p.eng.Stream(p.streams[id].slot)
}
