package batch

import (
	"math/rand"
	"testing"

	"blbp/internal/core"
)

// runSerial drives each stream through its own predictor with the plain
// Predict/Update loop: the reference the batched engine must match bit for
// bit. It returns each stream's predicted-target sequence (miss = 0) and
// final state fingerprint.
func runSerial(cfg core.Config, streams [][]Event) (preds [][]uint64, fps []uint64) {
	preds = make([][]uint64, len(streams))
	fps = make([]uint64, len(streams))
	for s, evs := range streams {
		p := core.New(cfg)
		for _, ev := range evs {
			if ev.Kind == Cond {
				p.OnCond(ev.PC, ev.Taken)
				continue
			}
			t, ok := p.Predict(ev.PC)
			if !ok {
				t = 0
			}
			preds[s] = append(preds[s], t)
			p.Update(ev.PC, ev.Target)
		}
		fps[s] = p.Fingerprint()
	}
	return preds, fps
}

// runBatched drives the same streams through a Pool under a randomized
// interleaving: events are fed in random per-stream chunks with batch
// steps of random size mixed in, then the pool drains. It returns
// per-stream predicted sequences and fingerprints in the same shape as
// runSerial.
func runBatched(t *testing.T, cfg core.Config, streams [][]Event, seed int64) (preds [][]uint64, fps []uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	pool := NewPool(NewEngine(cfg, len(streams)))
	ids := make([]int, len(streams))
	for s := range streams {
		id, ok := pool.Admit()
		if !ok {
			t.Fatalf("admission refused with capacity %d", len(streams))
		}
		ids[s] = id
	}
	fed := make([]int, len(streams))
	remaining := 0
	for _, evs := range streams {
		remaining += len(evs)
	}
	for remaining > 0 {
		s := rng.Intn(len(streams))
		if fed[s] == len(streams[s]) {
			continue
		}
		chunk := 1 + rng.Intn(3)
		for ; chunk > 0 && fed[s] < len(streams[s]); chunk-- {
			pool.Feed(ids[s], streams[s][fed[s]])
			fed[s]++
			remaining--
		}
		if rng.Intn(4) == 0 {
			pool.Step(1 + rng.Intn(len(streams)))
		}
	}
	pool.Drain(1 + rng.Intn(len(streams)))

	preds = make([][]uint64, len(streams))
	for _, r := range pool.Results() {
		v := r.Predicted
		if !r.OK {
			v = 0
		}
		// Pool ids are admission-ordered, matching the streams index.
		preds[r.Stream] = append(preds[r.Stream], v)
	}
	fps = make([]uint64, len(streams))
	for s, id := range ids {
		fps[s] = pool.Predictor(id).Fingerprint()
	}
	return preds, fps
}

func diffStreams(t *testing.T, label string, wantP [][]uint64, wantF []uint64, gotP [][]uint64, gotF []uint64) {
	t.Helper()
	for s := range wantP {
		if len(gotP[s]) != len(wantP[s]) {
			t.Fatalf("%s: stream %d served %d predictions, serial made %d", label, s, len(gotP[s]), len(wantP[s]))
		}
		for i := range wantP[s] {
			if gotP[s][i] != wantP[s][i] {
				t.Fatalf("%s: stream %d prediction %d: batched %#x != serial %#x", label, s, i, gotP[s][i], wantP[s][i])
			}
		}
		if gotF[s] != wantF[s] {
			t.Fatalf("%s: stream %d final state fingerprint: batched %#x != serial %#x", label, s, gotF[s], wantF[s])
		}
	}
}

// TestBatchedMatchesSerial is the differential gate: for several stream
// counts and seeds, random interleavings through the pooled engine must
// reproduce, bit for bit, each stream's serial Predict/Update run —
// every prediction and the final trained state.
func TestBatchedMatchesSerial(t *testing.T) {
	cfg := smallConfig()
	for _, tc := range []struct {
		seed     int64
		nStreams int
		nEvents  int
	}{
		{seed: 1, nStreams: 1, nEvents: 600},
		{seed: 2, nStreams: 3, nEvents: 400},
		{seed: 3, nStreams: 8, nEvents: 300},
		{seed: 4, nStreams: 16, nEvents: 200},
	} {
		streams := GenStreams(tc.seed, tc.nStreams, tc.nEvents)
		wantP, wantF := runSerial(cfg, streams)
		gotP, gotF := runBatched(t, cfg, streams, tc.seed)
		diffStreams(t, "differential", wantP, wantF, gotP, gotF)
	}
}

// FuzzBatchEquivalence fuzzes the same property over workload shape: any
// seed, stream count, and event volume must keep the batched engine
// bit-identical to the per-stream serial reference.
func FuzzBatchEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(2), uint16(200))
	f.Add(int64(42), uint8(5), uint16(350))
	f.Add(int64(-7), uint8(1), uint16(64))
	f.Add(int64(1<<40), uint8(12), uint16(120))
	cfg := smallConfig()
	f.Fuzz(func(t *testing.T, seed int64, nStreams uint8, nEvents uint16) {
		s := 1 + int(nStreams)%16
		n := 1 + int(nEvents)%400
		streams := GenStreams(seed, s, n)
		wantP, wantF := runSerial(cfg, streams)
		gotP, gotF := runBatched(t, cfg, streams, seed)
		diffStreams(t, "fuzz", wantP, wantF, gotP, gotF)
	})
}
