package batch

import (
	"math/rand"
	"testing"

	"blbp/internal/core"
)

// smallConfig keeps unit-test engines cheap: the full predictor logic over
// small tables and a small IBTB.
func smallConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.TableEntries = 128
	cfg.IBTB.Sets = 8
	cfg.IBTB.Assoc = 8
	cfg.IBTB.RegionEntries = 32
	cfg.LocalEntries = 64
	return cfg
}

func TestAdmitRetireRecycle(t *testing.T) {
	eng := NewEngine(smallConfig(), 3)
	if eng.Capacity() != 3 || eng.Live() != 0 {
		t.Fatalf("fresh engine: capacity=%d live=%d", eng.Capacity(), eng.Live())
	}
	var slots []int
	for i := 0; i < 3; i++ {
		s, ok := eng.Admit()
		if !ok {
			t.Fatalf("admission %d refused with free capacity", i)
		}
		slots = append(slots, s)
	}
	if _, ok := eng.Admit(); ok {
		t.Fatalf("admission beyond capacity succeeded")
	}
	if eng.Live() != 3 {
		t.Fatalf("live=%d after filling capacity 3", eng.Live())
	}

	// Train a stream, retire it, re-admit the slot: the recycled predictor
	// must be indistinguishable from a fresh one.
	rng := rand.New(rand.NewSource(7))
	dirty := slots[1]
	for i := 0; i < 500; i++ {
		pc := 0x400000 + uint64(rng.Intn(4))*0x40
		eng.Stream(dirty).Predict(pc)
		eng.Stream(dirty).Update(pc, 0x500000+uint64(rng.Intn(8))*8)
	}
	eng.Retire(dirty)
	recycled, ok := eng.Admit()
	if !ok || recycled != dirty {
		t.Fatalf("recycle: got slot %d ok=%v, want LIFO reuse of %d", recycled, ok, dirty)
	}
	if got, want := eng.Stream(recycled).Fingerprint(), core.New(smallConfig()).Fingerprint(); got != want {
		t.Fatalf("recycled slot fingerprint %#x differs from fresh %#x", got, want)
	}
}

func TestDuplicateStreamPanics(t *testing.T) {
	eng := NewEngine(smallConfig(), 2)
	s, _ := eng.Admit()
	defer func() {
		if recover() == nil {
			t.Fatalf("PredictBatch accepted the same stream twice in one batch")
		}
	}()
	pcs := []uint64{0x400000, 0x400040}
	eng.PredictBatch([]int{s, s}, pcs, make([]uint64, 2), make([]bool, 2))
}

func TestRetireNonLivePanics(t *testing.T) {
	eng := NewEngine(smallConfig(), 2)
	s, _ := eng.Admit()
	eng.Retire(s)
	defer func() {
		if recover() == nil {
			t.Fatalf("double retire did not panic")
		}
	}()
	eng.Retire(s)
}

// TestPoolRoundRobinOrder checks that Step serves at most one indirect
// event per stream per batch and preserves each stream's program order.
func TestPoolRoundRobinOrder(t *testing.T) {
	pool := NewPool(NewEngine(smallConfig(), 4))
	var ids []int
	for i := 0; i < 4; i++ {
		id, ok := pool.Admit()
		if !ok {
			t.Fatalf("admission %d refused", i)
		}
		ids = append(ids, id)
	}
	// Stream i gets 3 indirect events tagged with its id and sequence.
	for seq := 0; seq < 3; seq++ {
		for _, id := range ids {
			pool.Feed(id, Event{
				Kind:   Indirect,
				PC:     0x400000 + uint64(id)*0x40,
				Target: 0x500000 + uint64(id)<<8 + uint64(seq)*4,
			})
		}
	}
	if n := pool.Step(4); n != 4 {
		t.Fatalf("first step served %d, want one event from each of 4 streams", n)
	}
	served := pool.Drain(4)
	if served != 8 {
		t.Fatalf("drain served %d, want the remaining 8", served)
	}
	results := pool.Results()
	if len(results) != 12 {
		t.Fatalf("got %d results, want 12", len(results))
	}
	next := make([]int, 4)
	for _, r := range results {
		wantTarget := 0x500000 + uint64(r.Stream)<<8 + uint64(next[r.Stream])*4
		if r.Target != wantTarget {
			t.Fatalf("stream %d served out of order: target %#x, want %#x", r.Stream, r.Target, wantTarget)
		}
		next[r.Stream]++
	}
	for id, n := range next {
		if n != 3 {
			t.Fatalf("stream %d served %d events, want 3", id, n)
		}
	}
}

// TestPoolCondOrdering interleaves conditional events and checks they reach
// the stream's history in program order relative to its indirect events, by
// comparing against a serially driven reference predictor.
func TestPoolCondOrdering(t *testing.T) {
	cfg := smallConfig()
	pool := NewPool(NewEngine(cfg, 2))
	id, _ := pool.Admit()
	ref := core.New(cfg)

	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 2000; i++ {
		if rng.Intn(4) != 0 {
			ev := Event{Kind: Cond, PC: 0x600000 + uint64(rng.Intn(16))*4, Taken: rng.Intn(2) == 0}
			pool.Feed(id, ev)
			ref.OnCond(ev.PC, ev.Taken)
			continue
		}
		ev := Event{Kind: Indirect, PC: 0x400000 + uint64(rng.Intn(3))*0x40, Target: 0x500000 + uint64(rng.Intn(6))*8}
		pool.Feed(id, ev)
		ref.Predict(ev.PC)
		ref.Update(ev.PC, ev.Target)
	}
	pool.Drain(1)
	if got, want := pool.Predictor(id).Fingerprint(), ref.Fingerprint(); got != want {
		t.Fatalf("pooled stream fingerprint %#x differs from serial reference %#x", got, want)
	}
}
