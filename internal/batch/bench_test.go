package batch

import (
	"fmt"
	"testing"

	"blbp/internal/core"
)

// benchWorkload builds nStreams heterogeneous event sequences from the
// shared workload family, so every benchmark in this file (and the
// cmd/bench batch measurements) compares the batched and serial paths on
// the same traffic.
func benchWorkload(nStreams, nEvents int) [][]Event {
	return GenStreams(1234, nStreams, nEvents)
}

// BenchmarkSerialStreams drives every stream through its own predictor with
// the plain serial loop: the baseline the batched engine competes with.
func BenchmarkSerialStreams(b *testing.B) {
	for _, nStreams := range []int{1, 64} {
		b.Run(fmt.Sprintf("s%d", nStreams), func(b *testing.B) {
			streams := benchWorkload(nStreams, 2048)
			preds := make([]*core.BLBP, nStreams)
			for s := range preds {
				preds[s] = core.New(core.DefaultConfig())
			}
			warm := func() {
				for s, evs := range streams {
					p := preds[s]
					for _, ev := range evs {
						if ev.Kind == Cond {
							p.OnCond(ev.PC, ev.Taken)
						} else {
							p.Predict(ev.PC)
							p.Update(ev.PC, ev.Target)
						}
					}
				}
			}
			warm()
			indirect := 0
			for _, evs := range streams {
				for _, ev := range evs {
					if ev.Kind == Indirect {
						indirect++
					}
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i += indirect {
				warm()
			}
		})
	}
}

// BenchmarkPoolDrain serves the same streams through the pooled engine at
// several batch widths; ns/op is per indirect prediction served — the full
// predict+train contract, directly comparable to BenchmarkSerialStreams.
func BenchmarkPoolDrain(b *testing.B) {
	for _, size := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("b%d", size), func(b *testing.B) {
			nStreams := size
			streams := benchWorkload(nStreams, 2048)
			pool := NewPool(NewEngine(core.DefaultConfig(), nStreams))
			ids := make([]int, nStreams)
			for s := range streams {
				ids[s], _ = pool.Admit()
			}
			feed := func() {
				for s, evs := range streams {
					for _, ev := range evs {
						pool.Feed(ids[s], ev)
					}
				}
			}
			feed()
			indirect := pool.Drain(size)
			pool.TakeResults()
			b.ResetTimer()
			for i := 0; i < b.N; i += indirect {
				feed()
				pool.Drain(size)
				pool.TakeResults()
			}
		})
	}
}

// BenchmarkServing mirrors the cmd/bench blbp-bench-5 headline pair under
// ServingConfig: s1_full is the serial single-stream contract (Predict,
// Update, and conditional feeds per event) and b{N}_predict is the
// engine's prediction-serving rate — PredictBatch over N warmed streams,
// one in-flight site per stream. The acceptance bar is b64_predict ≥ 2×
// s1_full.
func BenchmarkServing(b *testing.B) {
	cfg := ServingConfig()
	b.Run("s1_full", func(b *testing.B) {
		streams := benchWorkload(1, 2048)
		p := core.New(cfg)
		warm := func() {
			for _, ev := range streams[0] {
				if ev.Kind == Cond {
					p.OnCond(ev.PC, ev.Taken)
				} else {
					p.Predict(ev.PC)
					p.Update(ev.PC, ev.Target)
				}
			}
		}
		warm()
		indirect := 0
		for _, ev := range streams[0] {
			if ev.Kind == Indirect {
				indirect++
			}
		}
		b.ResetTimer()
		for i := 0; i < b.N; i += indirect {
			warm()
		}
	})
	for _, size := range []int{1, 8, 64, 256} {
		b.Run(fmt.Sprintf("b%d_predict", size), func(b *testing.B) {
			streams := benchWorkload(size, 2048)
			eng := NewEngine(cfg, size)
			slots := make([]int, size)
			pcs := make([]uint64, size)
			for s, evs := range streams {
				slots[s], _ = eng.Admit()
				p := eng.Stream(slots[s])
				for _, ev := range evs {
					if ev.Kind == Cond {
						p.OnCond(ev.PC, ev.Taken)
					} else {
						p.Predict(ev.PC)
						p.Update(ev.PC, ev.Target)
						pcs[s] = ev.PC
					}
				}
			}
			outT := make([]uint64, size)
			outOK := make([]bool, size)
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				eng.PredictBatch(slots, pcs, outT, outOK)
			}
		})
	}
}
