package batch

import (
	"math/rand"

	"blbp/internal/core"
)

// GenStreams builds per-stream event sequences with heterogeneous entropy:
// stream s gets its own branch sites, target-set sizes from 1 (monomorphic)
// up to 16 (high-entropy dispatch), and its own conditional traffic mix.
// The same (seed, nStreams, nEvents) always yields the same streams, so the
// differential tests and the cmd/bench batch measurements exercise one
// reproducible workload family.
func GenStreams(seed int64, nStreams, nEvents int) [][]Event {
	streams := make([][]Event, nStreams)
	for s := range streams {
		rng := rand.New(rand.NewSource(seed + int64(s)*7919))
		nSites := 1 + rng.Intn(6)
		sites := make([]struct {
			pc      uint64
			targets []uint64
		}, nSites)
		for i := range sites {
			sites[i].pc = 0x400000 + uint64(s)<<20 + uint64(i)*0x224
			k := 1 + rng.Intn(16)
			sites[i].targets = make([]uint64, k)
			for j := range sites[i].targets {
				sites[i].targets[j] = 0x500000 + uint64(s)<<20 + uint64(rng.Intn(1<<12))*4
			}
		}
		evs := make([]Event, nEvents)
		condRatio := 1 + rng.Intn(5) // streams differ in cond:indirect mix
		for i := range evs {
			if rng.Intn(condRatio+1) != 0 {
				evs[i] = Event{
					Kind:  Cond,
					PC:    0x600000 + uint64(s)<<20 + uint64(rng.Intn(64))*4,
					Taken: rng.Intn(3) != 0,
				}
				continue
			}
			site := &sites[rng.Intn(nSites)]
			evs[i] = Event{
				Kind:   Indirect,
				PC:     site.pc,
				Target: site.targets[rng.Intn(len(site.targets))],
			}
		}
		streams[s] = evs
	}
	return streams
}

// ServingConfig is the predictor configuration the multi-stream serving
// benchmarks (cmd/bench -batch and BenchmarkServing) apply to both the
// serial baseline and the batched engine: the paper's per-bit perceptron
// with tables sized for a server slot — more weight rows and IBTB ways than
// the single-program default, since each admitted stream owns the whole
// budget. Using one config on both sides keeps the batched-vs-serial
// throughput ratio a measurement of the batching, not of the tables.
func ServingConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.TableEntries = 256
	cfg.IBTB.Sets = 16
	cfg.IBTB.Assoc = 16
	cfg.IBTB.RegionEntries = 64
	cfg.LocalEntries = 64
	return cfg
}
