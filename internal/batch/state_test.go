package batch

import (
	"bytes"
	"math/rand"
	"testing"
)

// drive pushes n random predict/update pairs (with interleaved conditional
// outcomes) through the stream in slot, deterministically from seed.
func drive(eng *Engine, slot int, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		eng.OnCond(slot, 0xC000+uint64(rng.Intn(4))*4, rng.Intn(2) == 0)
		pc := 0x400000 + uint64(rng.Intn(4))*0x40
		eng.Stream(slot).Predict(pc)
		eng.Stream(slot).Update(pc, 0x500000+uint64(rng.Intn(8))*8)
	}
}

// A pool can be drained to checkpoints and rebuilt warm: restored streams
// must be bit-identical to streams that were never interrupted.
func TestCheckpointRestoreRebuildsWarmPool(t *testing.T) {
	cfg := smallConfig()
	old := NewEngine(cfg, 3)
	ref := NewEngine(cfg, 3)
	var oldSlots, refSlots []int
	for i := 0; i < 3; i++ {
		s, _ := old.Admit()
		oldSlots = append(oldSlots, s)
		s, _ = ref.Admit()
		refSlots = append(refSlots, s)
	}
	for i := 0; i < 3; i++ {
		drive(old, oldSlots[i], int64(100+i), 800)
		drive(ref, refSlots[i], int64(100+i), 800)
	}

	// Drain the old pool into checkpoints.
	checkpoints := make([]bytes.Buffer, 3)
	for i, s := range oldSlots {
		if err := old.CheckpointStream(s, &checkpoints[i]); err != nil {
			t.Fatalf("checkpoint slot %d: %v", s, err)
		}
		old.Retire(s)
	}

	// Rebuild warm on a fresh engine.
	fresh := NewEngine(cfg, 3)
	var newSlots []int
	for i := range checkpoints {
		s, ok := fresh.Admit()
		if !ok {
			t.Fatalf("admission %d refused", i)
		}
		if err := fresh.RestoreStream(s, bytes.NewReader(checkpoints[i].Bytes())); err != nil {
			t.Fatalf("restore slot %d: %v", s, err)
		}
		newSlots = append(newSlots, s)
	}

	// Continue both pools identically; every stream must stay bit-identical
	// to its uninterrupted reference.
	for i := 0; i < 3; i++ {
		drive(fresh, newSlots[i], int64(200+i), 400)
		drive(ref, refSlots[i], int64(200+i), 400)
	}
	for i := 0; i < 3; i++ {
		got := fresh.Stream(newSlots[i]).Fingerprint()
		want := ref.Stream(refSlots[i]).Fingerprint()
		if got != want {
			t.Errorf("stream %d fingerprint %#x after warm rebuild, want %#x", i, got, want)
		}
	}
}

func TestCheckpointRestoreErrors(t *testing.T) {
	eng := NewEngine(smallConfig(), 2)
	var buf bytes.Buffer
	if err := eng.CheckpointStream(0, &buf); err == nil {
		t.Errorf("checkpoint of non-live slot succeeded")
	}
	if err := eng.CheckpointStream(-1, &buf); err == nil {
		t.Errorf("checkpoint of negative slot succeeded")
	}
	if err := eng.RestoreStream(5, &buf); err == nil {
		t.Errorf("restore into out-of-range slot succeeded")
	}
	s, _ := eng.Admit()
	if err := eng.CheckpointStream(s, &buf); err != nil {
		t.Fatalf("checkpoint of live slot: %v", err)
	}
	eng.Retire(s)
	if err := eng.RestoreStream(s, bytes.NewReader(buf.Bytes())); err == nil {
		t.Errorf("restore into retired slot succeeded")
	}
}
