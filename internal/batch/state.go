package batch

import (
	"fmt"
	"io"
)

// CheckpointStream serializes the trained state of the stream in slot to w
// as a BLBPSNP1 snapshot (the slot predictor's own container). Unlike the
// event entry points it returns an error instead of panicking on a bad
// slot, because checkpointing is a management-plane operation driven by
// external requests (drain, migration) rather than the hot loop's internal
// contract.
func (e *Engine) CheckpointStream(slot int, w io.Writer) error {
	if slot < 0 || slot >= len(e.slots) {
		return fmt.Errorf("batch: checkpoint of slot %d outside pool of %d", slot, len(e.slots))
	}
	if !e.live[slot] {
		return fmt.Errorf("batch: checkpoint of non-live slot %d", slot)
	}
	return e.slots[slot].EncodeState(w)
}

// RestoreStream reinstates a checkpoint into the live stream in slot,
// replacing its state wholesale — the warm-rebuild path: Admit a slot on
// the new engine, then RestoreStream the drained stream's checkpoint into
// it. The engine's configuration must equal the checkpointing engine's
// (the snapshot's config fingerprint enforces it). On error the slot's
// predictor state is unspecified; Retire the slot or restore again.
func (e *Engine) RestoreStream(slot int, r io.Reader) error {
	if slot < 0 || slot >= len(e.slots) {
		return fmt.Errorf("batch: restore into slot %d outside pool of %d", slot, len(e.slots))
	}
	if !e.live[slot] {
		return fmt.Errorf("batch: restore into non-live slot %d", slot)
	}
	return e.slots[slot].RestoreState(r)
}
