// Package batch serves many independent branch streams from one prediction
// engine. Each admitted stream owns a complete, isolated BLBP state — weight
// tables, folded histories, IBTB, thresholds, pending-update cache — held in
// a slot of a fixed pool, and a batch of predictions (at most one per stream)
// is answered with a single sweep that accumulates every item's packed
// per-bit sums together. Per-stream isolation is what makes the batch
// bit-identical to driving each stream through the serial Predict/Update
// loop, for any interleaving: streams share no trained state, so batching
// changes only the order of independent work.
//
// Engine is the batching core; Pool layers per-stream event queues and
// round-robin batch fills on top (pool.go).
package batch

import (
	"fmt"

	"blbp/internal/core"
)

// Engine is a pool of per-stream predictors with batched predict/train
// entry points. Slots are index-addressed: Admit returns a slot id that
// callers use for every subsequent event on that stream, and Retire recycles
// the id. In steady state — admissions reusing retired slots, batch sizes no
// larger than previously seen — the engine performs no allocations.
//
// Engine is not safe for concurrent use; shard across engines to scale over
// cores (each shard owns disjoint streams, so shards share nothing).
type Engine struct {
	cfg core.Config

	slots []*core.BLBP // lazily constructed; Reset on reuse, never reallocated
	live  []bool
	free  []int // retired/never-used slot ids, reused LIFO

	// Duplicate-stream detection: PredictBatch stamps each item's slot with
	// the batch epoch and panics on a repeat. Two predictions for one stream
	// in a single batch cannot be serialized correctly — the second's serial
	// reference depends on the first's Update, which has not happened yet —
	// so the Pool's round-robin fill guarantees at most one event per stream
	// per batch, and the Engine enforces it.
	stamp []uint64
	epoch uint64

	n   int // SubPredictors()
	wpr int // lane words per packed row
	// rows is the batch scratch of per-item packed-row offsets, n apiece:
	// an arena whose n-sized windows bound one item's lane accumulation.
	//
	//blbp:rows
	rows []int
	// tabs is the batch scratch of per-item packed weight images.
	//
	//blbp:lanes(table)
	tabs [][]uint64
	// accs is the batch scratch of per-item lane accumulators, wpr apiece.
	//
	//blbp:lanes(acc)
	accs []uint64
}

// NewEngine returns an engine with capacity stream slots, all free, each
// serving a predictor built from cfg on first admission. It panics on an
// invalid configuration or non-positive capacity.
func NewEngine(cfg core.Config, capacity int) *Engine {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	if capacity <= 0 {
		panic("batch: non-positive engine capacity")
	}
	probe := core.New(cfg)
	e := &Engine{
		cfg:   cfg,
		slots: make([]*core.BLBP, capacity),
		live:  make([]bool, capacity),
		free:  make([]int, 0, capacity),
		stamp: make([]uint64, capacity),
		n:     cfg.SubPredictors(),
		wpr:   probe.LaneWordsPerRow(),
	}
	e.slots[0] = probe // reused by the first admission
	for s := capacity - 1; s >= 0; s-- {
		e.free = append(e.free, s)
	}
	return e
}

// Capacity returns the number of stream slots.
func (e *Engine) Capacity() int { return len(e.slots) }

// Live returns how many slots currently hold admitted streams.
func (e *Engine) Live() int { return len(e.slots) - len(e.free) }

// Admit claims a slot for a new stream and returns its id, or ok=false when
// the pool is full. A recycled slot's predictor is Reset to the freshly
// constructed state, so a stream's history never leaks into its successor.
func (e *Engine) Admit() (slot int, ok bool) {
	if len(e.free) == 0 {
		return 0, false
	}
	slot = e.free[len(e.free)-1]
	e.free = e.free[:len(e.free)-1]
	if p := e.slots[slot]; p == nil {
		e.slots[slot] = core.New(e.cfg)
	} else {
		p.Reset()
	}
	e.live[slot] = true
	return slot, true
}

// Retire releases a stream's slot for reuse. The predictor's memory is kept;
// the next admission Resets it in place.
func (e *Engine) Retire(slot int) {
	if !e.live[slot] {
		panic(fmt.Sprintf("batch: retire of non-live slot %d", slot))
	}
	e.live[slot] = false
	e.free = append(e.free, slot)
}

// Stream returns slot's predictor for serial use — conditional-outcome
// feeds, diagnostics, or driving one stream outside a batch. The slot must
// be live.
func (e *Engine) Stream(slot int) *core.BLBP {
	if !e.live[slot] {
		panic(fmt.Sprintf("batch: access to non-live slot %d", slot))
	}
	return e.slots[slot]
}

// OnCond feeds a conditional branch outcome to slot's stream.
func (e *Engine) OnCond(slot int, pc uint64, taken bool) {
	e.Stream(slot).OnCond(pc, taken)
}

// ensureBatch sizes the batch scratch for b items.
func (e *Engine) ensureBatch(b int) {
	if len(e.tabs) < b {
		e.rows = make([]int, b*e.n)
		e.tabs = make([][]uint64, b)
		e.accs = make([]uint64, b*e.wpr)
	}
}

// PredictBatch predicts one batch: item i asks stream slots[i] about branch
// site pcs[i], filling targets[i] and oks[i]. All four slices must have
// equal length, every slot must be live, and each slot may appear at most
// once (a repeat panics — see the stamp field). The results and every
// stream's state afterward are bit-identical to calling
// Stream(slots[i]).Predict(pcs[i]) serially, in any order.
func (e *Engine) PredictBatch(slots []int, pcs, targets []uint64, oks []bool) {
	if len(pcs) != len(slots) || len(targets) != len(slots) || len(oks) != len(slots) {
		panic("batch: PredictBatch slice lengths differ")
	}
	b := len(slots)
	if b == 0 {
		return
	}
	e.ensureBatch(b)
	e.epoch++

	// Phase A: prepare every item on its own predictor, split into the two
	// commuting halves so each runs as a tight loop over the batch — one
	// item's history hashing overlaps another's IBTB scan in the memory
	// pipeline instead of serializing behind it.
	for i, slot := range slots {
		if e.stamp[slot] == e.epoch {
			panic(fmt.Sprintf("batch: slot %d appears twice in one batch", slot))
		}
		e.stamp[slot] = e.epoch
		p := e.Stream(slot)
		p.BatchIndex(pcs[i])
		copy(e.rows[i*e.n:(i+1)*e.n], p.BatchRows())
		e.tabs[i] = p.BatchTable()
	}
	for i, slot := range slots {
		e.slots[slot].BatchGather(pcs[i])
	}

	// Phase B: one sweep accumulates the whole batch's per-bit sums from
	// the packed weight images (the sweep owns the zeroing of its
	// accumulator window).
	accs := e.accs[:b*e.wpr]
	e.sweep(b)

	// Phase C: finish each item's prediction on its own predictor.
	for i, slot := range slots {
		targets[i], oks[i] = e.slots[slot].BatchFinish(pcs[i], accs[i*e.wpr:(i+1)*e.wpr])
	}
}

// sweep is the batched sum kernel: one pass over the batch's
// SubPredictors()×items active packed rows, accumulating each item's
// per-bit lane sums. Within an item the sub-predictor row loads are
// independent, and consecutive items share nothing, so the batch's
// scattered loads overlap in the memory pipeline; the per-item lane
// accumulators live in registers for the whole inner sweep.
//
// The kernel owns zeroing the accumulator window: keeping the clear next
// to the accumulation makes the no-overflow argument local (every sum
// starts from zero and adds at most SubPredictors() bounded rows). The
// unrolled branch overwrites every word it is responsible for, so only the
// generic branch clears explicitly.
//
//blbp:hot
func (e *Engine) sweep(b int) {
	n, wpr := e.n, e.wpr
	if wpr == 3 {
		// K in 9..12 — the paper configuration's row shape.
		for i := 0; i < b; i++ {
			tab := e.tabs[i]
			rows := e.rows[i*n : i*n+n]
			var a0, a1, a2 uint64
			for _, base := range rows {
				row := tab[base : base+3 : base+3]
				a0 += row[0]
				a1 += row[1]
				a2 += row[2]
			}
			j := i * 3
			e.accs[j] = a0
			e.accs[j+1] = a1
			e.accs[j+2] = a2
		}
		return
	}
	accs := e.accs[:b*wpr]
	for i := range accs {
		accs[i] = 0
	}
	for i := 0; i < b; i++ {
		tab := e.tabs[i]
		rows := e.rows[i*n : i*n+n]
		acc := accs[i*wpr : i*wpr+wpr]
		for _, base := range rows {
			row := tab[base : base+wpr]
			for w, v := range row {
				acc[w] += v
			}
		}
	}
}

// UpdateBatch trains each item's stream with its resolved target. Training
// is independent across streams (disjoint state) and serially dependent
// within one, so the loop applies items in order; unlike PredictBatch, a
// slot may appear multiple times (its updates land in order).
func (e *Engine) UpdateBatch(slots []int, pcs, actuals []uint64) {
	if len(pcs) != len(slots) || len(actuals) != len(slots) {
		panic("batch: UpdateBatch slice lengths differ")
	}
	for i, slot := range slots {
		e.Stream(slot).Update(pcs[i], actuals[i])
	}
}

// StorageBits returns the modeled hardware budget of one stream's predictor
// times the pool capacity.
func (e *Engine) StorageBits() int {
	return e.slots[0].StorageBits() * len(e.slots)
}
