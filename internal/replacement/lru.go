package replacement

// LRU implements true least-recently-used replacement using per-way
// recency stamps drawn from a single monotonically increasing clock, so
// stamps are comparable across sets (VPC exploits this to find the least
// recently used virtual-PC slot).
type LRU struct {
	stamp []uint64
	clock uint64
	assoc int
}

// NewLRU returns an LRU policy for numSets sets of assoc ways.
func NewLRU(numSets, assoc int) *LRU {
	if numSets <= 0 || assoc <= 0 {
		panic("replacement: NewLRU with non-positive geometry")
	}
	return &LRU{
		stamp: make([]uint64, numSets*assoc),
		assoc: assoc,
	}
}

// Name implements Policy.
func (l *LRU) Name() string { return "lru" }

func (l *LRU) touch(set, way int) {
	l.clock++
	l.stamp[set*l.assoc+way] = l.clock
}

// Stamp returns the way's recency stamp (0 = never touched). Larger is more
// recent; stamps are comparable across sets.
func (l *LRU) Stamp(set, way int) uint64 { return l.stamp[set*l.assoc+way] }

// OnHit implements Policy.
func (l *LRU) OnHit(set, way int) { l.touch(set, way) }

// OnInsert implements Policy.
func (l *LRU) OnInsert(set, way int) { l.touch(set, way) }

// Victim implements Policy: the way with the oldest stamp. Never-touched
// ways have stamp 0 and are preferred.
func (l *LRU) Victim(set int) int {
	base := set * l.assoc
	best, bestStamp := 0, l.stamp[base]
	for w := 1; w < l.assoc; w++ {
		if s := l.stamp[base+w]; s < bestStamp {
			best, bestStamp = w, s
		}
	}
	return best
}
