package replacement

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRRIPInitialVictimIsWayZero(t *testing.T) {
	r := NewRRIP(4, 4, 2)
	if got := r.Victim(0); got != 0 {
		t.Errorf("Victim on pristine set = %d, want 0", got)
	}
}

func TestRRIPHitProtects(t *testing.T) {
	r := NewRRIP(1, 4, 2)
	for w := 0; w < 4; w++ {
		r.OnInsert(0, w)
	}
	r.OnHit(0, 2)
	// Way 2 has RRPV 0; others have 2. Victim search ages everyone until an
	// RRPV hits 3 — ways 0,1,3 reach it first.
	v := r.Victim(0)
	if v == 2 {
		t.Error("Victim chose the just-hit way")
	}
}

func TestRRIPAgingReachesVictim(t *testing.T) {
	r := NewRRIP(1, 2, 2)
	r.OnHit(0, 0)
	r.OnHit(0, 1)
	// Both ways at RRPV 0: Victim must age the set and terminate.
	v := r.Victim(0)
	if v != 0 && v != 1 {
		t.Errorf("Victim = %d, want 0 or 1", v)
	}
}

func TestRRIPInsertLongInterval(t *testing.T) {
	r := NewRRIP(1, 4, 2)
	r.OnInsert(0, 1)
	if got := r.RRPV(0, 1); got != 2 {
		t.Errorf("RRPV after insert = %d, want 2 (max-1)", got)
	}
	r.OnHit(0, 1)
	if got := r.RRPV(0, 1); got != 0 {
		t.Errorf("RRPV after hit = %d, want 0", got)
	}
}

func TestRRIPVictimAlwaysInRange(t *testing.T) {
	f := func(ops []uint16) bool {
		const sets, assoc = 4, 8
		r := NewRRIP(sets, assoc, 2)
		for _, op := range ops {
			set := int(op) % sets
			way := int(op>>4) % assoc
			switch op % 3 {
			case 0:
				r.OnHit(set, way)
			case 1:
				r.OnInsert(set, way)
			default:
				v := r.Victim(set)
				if v < 0 || v >= assoc {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRRIPPanicsOnBadGeometry(t *testing.T) {
	cases := []struct {
		name              string
		sets, assoc, bits int
	}{
		{"zero sets", 0, 4, 2},
		{"zero assoc", 4, 0, 2},
		{"zero bits", 4, 4, 0},
		{"nine bits", 4, 4, 9},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			NewRRIP(c.sets, c.assoc, c.bits)
		}()
	}
}

func TestLRUVictimIsLeastRecent(t *testing.T) {
	l := NewLRU(1, 4)
	for w := 0; w < 4; w++ {
		l.OnInsert(0, w)
	}
	l.OnHit(0, 0) // way 0 becomes most recent; way 1 is now the oldest
	if got := l.Victim(0); got != 1 {
		t.Errorf("Victim = %d, want 1", got)
	}
}

func TestLRUPrefersUntouchedWays(t *testing.T) {
	l := NewLRU(1, 4)
	l.OnInsert(0, 0)
	l.OnInsert(0, 2)
	v := l.Victim(0)
	if v != 1 && v != 3 {
		t.Errorf("Victim = %d, want an untouched way (1 or 3)", v)
	}
}

func TestLRUSetsAreIndependent(t *testing.T) {
	l := NewLRU(2, 2)
	l.OnInsert(0, 0)
	l.OnInsert(0, 1)
	l.OnHit(0, 0)
	// Set 1 untouched: victim may be any way, but set 0's victim is way 1.
	if got := l.Victim(0); got != 1 {
		t.Errorf("set 0 Victim = %d, want 1", got)
	}
}

func TestLRUFullSequenceMatchesReference(t *testing.T) {
	// Compare against a reference implementation that keeps an explicit
	// recency list.
	const assoc = 8
	l := NewLRU(1, assoc)
	order := make([]int, 0, assoc) // most recent last
	touchRef := func(way int) {
		for i, w := range order {
			if w == way {
				order = append(order[:i], order[i+1:]...)
				break
			}
		}
		order = append(order, way)
	}
	rng := rand.New(rand.NewSource(5))
	for w := 0; w < assoc; w++ {
		l.OnInsert(0, w)
		touchRef(w)
	}
	for i := 0; i < 1000; i++ {
		w := rng.Intn(assoc)
		l.OnHit(0, w)
		touchRef(w)
		if got, want := l.Victim(0), order[0]; got != want {
			t.Fatalf("step %d: Victim = %d, want %d", i, got, want)
		}
	}
}

func TestPolicyInterfaceCompliance(t *testing.T) {
	var _ Policy = NewRRIP(1, 1, 2)
	var _ Policy = NewLRU(1, 1)
	if NewRRIP(1, 1, 2).Name() != "rrip" {
		t.Error("RRIP name")
	}
	if NewLRU(1, 1).Name() != "lru" {
		t.Error("LRU name")
	}
}

func TestLRUPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLRU(0, 1) did not panic")
		}
	}()
	NewLRU(0, 1)
}
