package replacement

import "blbp/internal/threshold"

// RRIP implements static re-reference interval prediction (SRRIP) with
// M-bit re-reference prediction values (RRPVs). New entries are inserted
// with a "long" re-reference interval (max-1), hits promote to "near-
// immediate" (0), and victims are entries predicted to be re-referenced in
// the distant future (max). The paper manages the IBTB with 2-bit RRIP.
type RRIP struct {
	rrpv  []uint8
	assoc int
	max   uint8
}

// NewRRIP returns an RRIP policy for numSets sets of assoc ways using
// bits-wide RRPVs (the paper uses 2).
func NewRRIP(numSets, assoc, bits int) *RRIP {
	if numSets <= 0 || assoc <= 0 {
		panic("replacement: NewRRIP with non-positive geometry")
	}
	if bits <= 0 || bits > 8 {
		panic("replacement: NewRRIP bits out of range")
	}
	max := uint8(1)<<uint(bits) - 1
	r := &RRIP{rrpv: make([]uint8, numSets*assoc), assoc: assoc, max: max}
	// Start all ways at "distant" so empty ways are chosen first.
	for i := range r.rrpv {
		r.rrpv[i] = max
	}
	return r
}

// Name implements Policy.
func (r *RRIP) Name() string { return "rrip" }

// OnHit implements Policy: promote to near-immediate re-reference.
func (r *RRIP) OnHit(set, way int) { r.rrpv[set*r.assoc+way] = 0 }

// OnInsert implements Policy: predict a long (but not distant) interval.
func (r *RRIP) OnInsert(set, way int) { r.rrpv[set*r.assoc+way] = r.max - 1 }

// Victim implements Policy: find the first way predicted distant, aging the
// whole set until one exists.
func (r *RRIP) Victim(set int) int {
	base := set * r.assoc
	for {
		for w := 0; w < r.assoc; w++ {
			if r.rrpv[base+w] == r.max {
				return w
			}
		}
		for w := 0; w < r.assoc; w++ {
			r.rrpv[base+w] = threshold.SatIncU8(r.rrpv[base+w], r.max)
		}
	}
}

// Reset restores every way to the distant interval, the freshly
// constructed state. Caches call it from their own Reset so a recycled
// structure replaces exactly like a new one.
func (r *RRIP) Reset() {
	for i := range r.rrpv {
		r.rrpv[i] = r.max
	}
}

// RRPV exposes the current prediction value of a way (used by tests).
func (r *RRIP) RRPV(set, way int) uint8 { return r.rrpv[set*r.assoc+way] }
