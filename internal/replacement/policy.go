// Package replacement implements the cache replacement policies the paper's
// structures use: re-reference interval prediction (RRIP, Jaleel et al.) for
// BLBP's indirect branch target buffer, and least-recently-used (LRU) for
// the region array and set-associative BTBs.
//
// A policy manages the ways of a set-associative structure laid out as
// numSets × assoc; callers report hits and insertions and ask for victims.
package replacement

// Policy is the common interface over set-associative replacement state.
// Way indices are local to a set (0..assoc-1).
type Policy interface {
	// OnHit records a reference to an existing entry.
	OnHit(set, way int)
	// OnInsert records that a new entry was installed in the given way.
	OnInsert(set, way int)
	// Victim selects the way to evict from a full set. It may mutate
	// internal aging state (RRIP increments RRPVs while searching).
	Victim(set int) int
	// Name identifies the policy.
	Name() string
}
