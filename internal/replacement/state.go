package replacement

import (
	"fmt"

	"blbp/internal/snapshot"
)

// EncodeState serializes the RRIP prediction values.
func (r *RRIP) EncodeState(e *snapshot.Enc) {
	e.U8s(r.rrpv)
}

// RestoreState reinstates RRPVs captured by EncodeState into a policy of
// the same geometry, rejecting values above the configured maximum.
func (r *RRIP) RestoreState(d *snapshot.Dec) error {
	saved := make([]uint8, len(r.rrpv))
	d.U8sInto(saved)
	if err := d.Err(); err != nil {
		return err
	}
	for i, v := range saved {
		if v > r.max {
			return fmt.Errorf("%w: RRPV %d at way %d exceeds max %d", snapshot.ErrCorrupt, v, i, r.max)
		}
	}
	copy(r.rrpv, saved)
	return nil
}

// EncodeState serializes the LRU recency stamps and clock.
func (l *LRU) EncodeState(e *snapshot.Enc) {
	e.U64(l.clock)
	e.U64s(l.stamp)
}

// RestoreState reinstates recency state captured by EncodeState into a
// policy of the same geometry. Stamps must not run ahead of the clock, or
// future touches would fail to be most-recent.
func (l *LRU) RestoreState(d *snapshot.Dec) error {
	clock := d.U64()
	saved := make([]uint64, len(l.stamp))
	d.U64sInto(saved)
	if err := d.Err(); err != nil {
		return err
	}
	for i, s := range saved {
		if s > clock {
			return fmt.Errorf("%w: LRU stamp %d at way %d ahead of clock %d", snapshot.ErrCorrupt, s, i, clock)
		}
	}
	l.clock = clock
	copy(l.stamp, saved)
	return nil
}
