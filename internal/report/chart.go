package report

import (
	"fmt"
	"io"
	"strings"
)

// Chart renders a labeled horizontal bar chart in plain text, used by
// cmd/experiments to visualize figure-shaped results (per-benchmark MPKI
// curves, ablation bars, associativity sweeps) without leaving the
// terminal.
type Chart struct {
	Title string
	// Width is the maximum bar width in characters (40 if zero).
	Width int
	rows  []chartRow
}

type chartRow struct {
	label string
	value float64
}

// NewChart creates an empty chart.
func NewChart(title string) *Chart { return &Chart{Title: title} }

// Add appends one labeled bar. Negative values render as empty bars with
// the numeric value still shown.
func (c *Chart) Add(label string, value float64) {
	c.rows = append(c.rows, chartRow{label: label, value: value})
}

// Rows returns the number of bars.
func (c *Chart) Rows() int { return len(c.rows) }

// WriteText renders the chart. Bars scale linearly against the maximum
// value.
func (c *Chart) WriteText(w io.Writer) error {
	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	width := c.Width
	if width <= 0 {
		width = 40
	}
	labelW := 0
	maxV := 0.0
	for _, r := range c.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
		if r.value > maxV {
			maxV = r.value
		}
	}
	for _, r := range c.rows {
		n := 0
		if maxV > 0 && r.value > 0 {
			n = int(r.value/maxV*float64(width) + 0.5)
			if n == 0 {
				n = 1 // visible sliver for small positive values
			}
		}
		bar := strings.Repeat("#", n)
		if _, err := fmt.Fprintf(w, "  %s  %s %.4f\n", pad(r.label, labelW), pad(bar, width), r.value); err != nil {
			return err
		}
	}
	return nil
}
