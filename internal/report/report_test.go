package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteTextAlignment(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("short", "1")
	tb.AddRow("a-much-longer-name", "2")
	var buf bytes.Buffer
	if err := tb.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Demo") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
	// The value column must start at the same offset in both data rows.
	idx1 := strings.Index(lines[3], "1")
	idx2 := strings.Index(lines[4], "2")
	if idx1 != idx2 {
		t.Errorf("columns misaligned: %d vs %d\n%s", idx1, idx2, out)
	}
}

func TestAddRowfFormatsFloats(t *testing.T) {
	tb := NewTable("", "x")
	tb.AddRowf(0.123456)
	var buf bytes.Buffer
	if err := tb.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.1235") {
		t.Errorf("float not formatted to 4 decimals:\n%s", buf.String())
	}
}

func TestRowCellMismatch(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "dropped")
	if tb.Rows() != 2 {
		t.Fatalf("Rows = %d", tb.Rows())
	}
	var buf bytes.Buffer
	if err := tb.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "dropped") {
		t.Error("extra cell not dropped")
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("ignored", "name", "note")
	tb.AddRow("plain", "simple")
	tb.AddRow("with,comma", `with"quote`)
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := "name,note\nplain,simple\n\"with,comma\",\"with\"\"quote\"\n"
	if out != want {
		t.Errorf("CSV output:\n%q\nwant:\n%q", out, want)
	}
}

func TestChartRendering(t *testing.T) {
	c := NewChart("Demo chart")
	c.Add("short", 1.0)
	c.Add("a-longer-label", 2.0)
	c.Add("zero", 0.0)
	var buf bytes.Buffer
	if err := c.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Demo chart") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// The 2.0 bar must be about twice the 1.0 bar.
	count := func(s string) int { return strings.Count(s, "#") }
	if c1, c2 := count(lines[1]), count(lines[2]); c2 < c1*2-1 || c2 > c1*2+1 {
		t.Errorf("bar scaling off: %d vs %d", c1, c2)
	}
	if count(lines[3]) != 0 {
		t.Error("zero value produced a bar")
	}
	if c.Rows() != 3 {
		t.Errorf("Rows = %d", c.Rows())
	}
}

func TestChartSmallPositiveVisible(t *testing.T) {
	c := NewChart("")
	c.Add("big", 1000)
	c.Add("tiny", 0.001)
	var buf bytes.Buffer
	if err := c.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if strings.Count(lines[1], "#") == 0 {
		t.Error("tiny positive value should render a visible sliver")
	}
}

func TestChartAllZeros(t *testing.T) {
	c := NewChart("")
	c.Add("a", 0)
	c.Add("b", -5)
	var buf bytes.Buffer
	if err := c.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "#") {
		t.Error("zero/negative chart should have no bars")
	}
}
