// Package report renders experiment results as aligned text tables and CSV,
// the two output formats of cmd/experiments.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each value is rendered with
// %v, floats with 4 significant decimals.
func (t *Table) AddRowf(cells ...interface{}) {
	strs := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			strs[i] = fmt.Sprintf("%.4f", v)
		case float32:
			strs[i] = fmt.Sprintf("%.4f", v)
		default:
			strs[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(strs...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// WriteText renders the aligned table.
func (t *Table) WriteText(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = pad(cell, widths[i])
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(rule); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			parts[i] = csvEscape(cell)
		}
		_, err := fmt.Fprintf(w, "%s\n", strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, width int) string {
	if len(s) >= width {
		return s
	}
	return s + strings.Repeat(" ", width-len(s))
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
