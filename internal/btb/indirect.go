package btb

import "blbp/internal/trace"

// Indirect adapts a BTB into the paper's baseline indirect predictor: the
// stored (last-taken) target for the branch PC is the prediction.
type Indirect struct {
	b *BTB
}

// NewIndirect returns the baseline predictor over a BTB with cfg.
func NewIndirect(cfg Config) *Indirect { return &Indirect{b: New(cfg)} }

// Name implements predictor.Indirect.
func (p *Indirect) Name() string {
	if p.b.cfg.Hysteresis {
		return "btb2bit"
	}
	return "btb"
}

// Predict implements predictor.Indirect.
func (p *Indirect) Predict(pc uint64) (uint64, bool) { return p.b.Lookup(pc) }

// Update implements predictor.Indirect.
func (p *Indirect) Update(pc, actual uint64) { p.b.Update(pc, actual) }

// OnCond implements predictor.Indirect (the BTB is history-free).
func (p *Indirect) OnCond(pc uint64, taken bool) {}

// OnOther implements predictor.Indirect.
func (p *Indirect) OnOther(pc, target uint64, bt trace.BranchType) {}

// StorageBits implements predictor.Indirect.
func (p *Indirect) StorageBits() int { return p.b.StorageBits() }
