package btb

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func small() Config {
	return Config{Entries: 64, Assoc: 4, TagBits: 10, TargetBits: 44}
}

func TestLookupMissOnEmpty(t *testing.T) {
	b := New(small())
	if _, ok := b.Lookup(0x400000); ok {
		t.Error("hit on empty BTB")
	}
}

func TestUpdateThenLookup(t *testing.T) {
	b := New(small())
	b.Update(0x400000, 0xdead)
	tgt, ok := b.Lookup(0x400000)
	if !ok || tgt != 0xdead {
		t.Errorf("Lookup = %#x/%v, want 0xdead/true", tgt, ok)
	}
}

func TestLastTakenPolicy(t *testing.T) {
	b := New(small())
	b.Update(0x100, 0xA)
	b.Update(0x100, 0xB)
	if tgt, _ := b.Lookup(0x100); tgt != 0xB {
		t.Errorf("target = %#x, want 0xB (last taken)", tgt)
	}
}

func TestHysteresisNeedsTwoMisses(t *testing.T) {
	cfg := small()
	cfg.Hysteresis = true
	b := New(cfg)
	b.Update(0x100, 0xA)
	b.Update(0x100, 0xB) // first differing update: keep 0xA
	if tgt, _ := b.Lookup(0x100); tgt != 0xA {
		t.Fatalf("target = %#x after one miss, want 0xA", tgt)
	}
	b.Update(0x100, 0xB) // second consecutive: replace
	if tgt, _ := b.Lookup(0x100); tgt != 0xB {
		t.Errorf("target = %#x after two misses, want 0xB", tgt)
	}
}

func TestHysteresisResetByMatch(t *testing.T) {
	cfg := small()
	cfg.Hysteresis = true
	b := New(cfg)
	b.Update(0x100, 0xA)
	b.Update(0x100, 0xB) // miss #1
	b.Update(0x100, 0xA) // match resets the counter
	b.Update(0x100, 0xB) // miss #1 again: still keep 0xA
	if tgt, _ := b.Lookup(0x100); tgt != 0xA {
		t.Errorf("target = %#x, want 0xA (hysteresis counter should reset)", tgt)
	}
}

func TestAssociativityHoldsMultipleBranches(t *testing.T) {
	// With assoc 4 and enough capacity, several distinct PCs must coexist.
	b := New(Config{Entries: 256, Assoc: 4, TagBits: 12, TargetBits: 44})
	pcs := make([]uint64, 100)
	for i := range pcs {
		pcs[i] = uint64(0x400000 + i*4)
		b.Update(pcs[i], uint64(i))
	}
	hits := 0
	for i, pc := range pcs {
		if tgt, ok := b.Lookup(pc); ok && tgt == uint64(i) {
			hits++
		}
	}
	if hits < 90 {
		t.Errorf("only %d/100 distinct branches retained, want >= 90", hits)
	}
}

func TestEvictionUnderPressure(t *testing.T) {
	b := New(Config{Entries: 8, Assoc: 1, TagBits: 8, TargetBits: 44})
	for i := 0; i < 1000; i++ {
		b.Update(uint64(i)*4096, uint64(i))
	}
	// Capacity 8 with 1000 distinct PCs: most must have been evicted; the
	// structure must simply stay consistent (no panic, bounded hits).
	found := 0
	for i := 0; i < 1000; i++ {
		if _, ok := b.Lookup(uint64(i) * 4096); ok {
			found++
		}
	}
	if found > 8+32 { // allow a few partial-tag false hits
		t.Errorf("found %d entries in an 8-entry BTB", found)
	}
}

func TestHitRate(t *testing.T) {
	b := New(small())
	b.Update(0x100, 0xA)
	b.Lookup(0x100)
	b.Lookup(0x200)
	if got := b.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", got)
	}
	fresh := New(small())
	if fresh.HitRate() != 0 {
		t.Error("HitRate on unused BTB should be 0")
	}
}

func TestStorageBits(t *testing.T) {
	b := New(Default32K())
	// 32768 × (1 valid + 8 tag + 44 target + 0 lru) = 1736704 bits ≈ 212 KB
	// of raw modeling... the paper budgets the baseline BTB at 64 KB by
	// counting fewer target bits; here we only require internal consistency.
	want := 32768 * (1 + 8 + 44)
	if got := b.StorageBits(); got != want {
		t.Errorf("StorageBits = %d, want %d", got, want)
	}
	h := New(Config{Entries: 16, Assoc: 4, TagBits: 8, TargetBits: 44, Hysteresis: true})
	want = 16 * (1 + 8 + 44 + 1 + 2)
	if got := h.StorageBits(); got != want {
		t.Errorf("StorageBits (hysteresis, assoc 4) = %d, want %d", got, want)
	}
}

func TestResetClears(t *testing.T) {
	b := New(small())
	b.Update(0x100, 0xA)
	b.Reset()
	if _, ok := b.Lookup(0x100); ok {
		t.Error("entry survived Reset")
	}
}

func TestDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		run := func() []uint64 {
			b := New(Config{Entries: 32, Assoc: 2, TagBits: 9, TargetBits: 44})
			rng := rand.New(rand.NewSource(seed))
			out := make([]uint64, 0, 200)
			for i := 0; i < 200; i++ {
				pc := uint64(rng.Intn(64)) * 512
				if rng.Intn(2) == 0 {
					b.Update(pc, rng.Uint64())
				} else {
					tgt, ok := b.Lookup(pc)
					if !ok {
						tgt = ^uint64(0)
					}
					out = append(out, tgt)
				}
			}
			return out
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	cases := []Config{
		{Entries: 0, Assoc: 1, TagBits: 8},
		{Entries: 16, Assoc: 0, TagBits: 8},
		{Entries: 10, Assoc: 4, TagBits: 8}, // not divisible
		{Entries: 16, Assoc: 4, TagBits: 0},
		{Entries: 16, Assoc: 4, TagBits: 40},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic for %+v", i, cfg)
				}
			}()
			New(cfg)
		}()
	}
}
