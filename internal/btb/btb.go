// Package btb implements a set-associative, partially-tagged branch target
// buffer. It serves three roles in the reproduction: the paper's baseline
// indirect predictor (a 32K-entry BTB filled with last-taken targets), the
// target store behind the VPC predictor (indexed by virtual PCs), and — with
// hysteresis enabled — Calder & Grunwald's 2-bit BTB variant that replaces a
// target only after two consecutive mispredictions.
package btb

import (
	"blbp/internal/hashing"
	"blbp/internal/replacement"
)

// Config describes a BTB geometry.
type Config struct {
	// Entries is the total entry count (sets × ways). Must be positive and
	// divisible by Assoc.
	Entries int
	// Assoc is the set associativity; 1 means direct-mapped.
	Assoc int
	// TagBits is the partial tag width.
	TagBits int
	// TargetBits is the number of target address bits modeled as stored per
	// entry (for the hardware budget; the simulator keeps full targets).
	TargetBits int
	// Hysteresis enables the 2-bit-counter replacement rule: an existing
	// target is replaced only after two consecutive mismatching updates.
	Hysteresis bool
}

// Default32K returns the paper's baseline configuration: a 32K-entry
// direct-mapped partially-tagged BTB (Table 2, 64 KB budget).
func Default32K() Config {
	return Config{Entries: 32768, Assoc: 1, TagBits: 8, TargetBits: 44}
}

type entry struct {
	tag    uint64
	target uint64
	valid  bool
	misses uint8 // consecutive mismatching updates (hysteresis mode)
}

// BTB is a set-associative branch target buffer.
type BTB struct {
	cfg     Config
	sets    int
	entries []entry
	lru     *replacement.LRU

	lookups int64
	hits    int64
}

// New constructs a BTB from cfg.
func New(cfg Config) *BTB {
	if cfg.Entries <= 0 || cfg.Assoc <= 0 || cfg.Entries%cfg.Assoc != 0 {
		panic("btb: invalid geometry")
	}
	if cfg.TagBits <= 0 || cfg.TagBits > 32 {
		panic("btb: tag bits out of range")
	}
	if cfg.TargetBits <= 0 {
		cfg.TargetBits = 44
	}
	sets := cfg.Entries / cfg.Assoc
	return &BTB{
		cfg:     cfg,
		sets:    sets,
		entries: make([]entry, cfg.Entries),
		lru:     replacement.NewLRU(sets, cfg.Assoc),
	}
}

func (b *BTB) setAndTag(pc uint64) (int, uint64) {
	h := hashing.Mix64(pc)
	return hashing.Index(h, b.sets), hashing.Tag(h, b.cfg.TagBits)
}

// Lookup returns the stored target for pc, if any.
func (b *BTB) Lookup(pc uint64) (uint64, bool) {
	b.lookups++
	set, tag := b.setAndTag(pc)
	base := set * b.cfg.Assoc
	for w := 0; w < b.cfg.Assoc; w++ {
		e := &b.entries[base+w]
		if e.valid && e.tag == tag {
			b.lru.OnHit(set, w)
			b.hits++
			return e.target, true
		}
	}
	return 0, false
}

// Update installs or refreshes the target for pc. Without hysteresis the
// stored target always becomes the supplied one (last-taken policy); with
// hysteresis a differing target must be observed twice in a row to displace
// the incumbent.
func (b *BTB) Update(pc, target uint64) {
	set, tag := b.setAndTag(pc)
	base := set * b.cfg.Assoc
	for w := 0; w < b.cfg.Assoc; w++ {
		e := &b.entries[base+w]
		if e.valid && e.tag == tag {
			b.lru.OnHit(set, w)
			if e.target == target {
				e.misses = 0
				return
			}
			if b.cfg.Hysteresis && e.misses == 0 {
				e.misses = 1
				return
			}
			e.target = target
			e.misses = 0
			return
		}
	}
	// Miss: fill an invalid way if one exists, else evict the LRU way.
	way := -1
	for w := 0; w < b.cfg.Assoc; w++ {
		if !b.entries[base+w].valid {
			way = w
			break
		}
	}
	if way < 0 {
		way = b.lru.Victim(set)
	}
	b.entries[base+way] = entry{tag: tag, target: target, valid: true}
	b.lru.OnInsert(set, way)
}

// SlotRecency returns the recency stamp of the entry that an insertion at
// pc would displace (the LRU way of pc's set; 0 when that way was never
// touched). VPC uses this to insert new targets at the least recently used
// virtual-PC slot, per Kim et al.
func (b *BTB) SlotRecency(pc uint64) uint64 {
	set, _ := b.setAndTag(pc)
	base := set * b.cfg.Assoc
	for w := 0; w < b.cfg.Assoc; w++ {
		if !b.entries[base+w].valid {
			return 0
		}
	}
	return b.lru.Stamp(set, b.lru.Victim(set))
}

// HitRate returns the fraction of lookups that hit (0 when never used).
func (b *BTB) HitRate() float64 {
	if b.lookups == 0 {
		return 0
	}
	return float64(b.hits) / float64(b.lookups)
}

// StorageBits returns the modeled hardware cost in bits: per entry a valid
// bit, the partial tag, the stored target bits, recency state
// (log2(assoc) bits per way), and the hysteresis bit when enabled.
func (b *BTB) StorageBits() int {
	perEntry := 1 + b.cfg.TagBits + b.cfg.TargetBits
	if b.cfg.Hysteresis {
		perEntry++
	}
	perEntry += log2ceil(b.cfg.Assoc)
	return b.cfg.Entries * perEntry
}

// Reset invalidates all entries.
func (b *BTB) Reset() {
	for i := range b.entries {
		b.entries[i] = entry{}
	}
	b.lookups, b.hits = 0, 0
}

func log2ceil(n int) int {
	bits := 0
	for v := n - 1; v > 0; v >>= 1 {
		bits++
	}
	return bits
}
