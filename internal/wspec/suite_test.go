package wspec

import (
	"testing"

	"blbp/internal/trace"
	"blbp/internal/workload"
)

func TestSuiteHas88Workloads(t *testing.T) {
	suite := Suite(10_000)
	if len(suite) != 88 {
		t.Fatalf("suite has %d workloads, want 88", len(suite))
	}
	counts := map[string]int{}
	names := map[string]bool{}
	for _, s := range suite {
		counts[s.Category]++
		if names[s.Name] {
			t.Errorf("duplicate workload name %q", s.Name)
		}
		names[s.Name] = true
	}
	want := map[string]int{
		workload.CatSPEC2000:    1,
		workload.CatSPEC2006:    12,
		workload.CatSPEC2017:    7,
		workload.CatMobileShort: 24,
		workload.CatMobileLong:  12,
		workload.CatServerShort: 20,
		workload.CatServerLong:  12,
	}
	for cat, n := range want {
		if counts[cat] != n {
			t.Errorf("category %q has %d workloads, want %d", cat, counts[cat], n)
		}
	}
}

func TestMobileTracesAreIndirectRich(t *testing.T) {
	suite := Suite(30_000)
	var mobile, server *trace.Stats
	for _, s := range suite {
		if s.Name == "long-mobile-08" {
			mobile = trace.Analyze(s.Build())
		}
		if s.Name == "403.gcc-1" {
			server = trace.Analyze(s.Build())
		}
	}
	if mobile == nil || server == nil {
		t.Fatal("expected workloads not found")
	}
	// The LONG-MOBILE-8 analog has more indirect branches than conditionals.
	if mobile.IndirectCount() <= mobile.Count[trace.CondDirect] {
		t.Errorf("long-mobile-08: indirect=%d <= cond=%d, want indirect-dominated",
			mobile.IndirectCount(), mobile.Count[trace.CondDirect])
	}
	// A gcc-like trace is conditional-dominated.
	if server.IndirectCount() >= server.Count[trace.CondDirect] {
		t.Errorf("403.gcc-1: indirect=%d >= cond=%d, want conditional-dominated",
			server.IndirectCount(), server.Count[trace.CondDirect])
	}
}

func TestPolymorphismVaries(t *testing.T) {
	suite := Suite(30_000)
	minPoly, maxPoly := 2.0, -1.0
	for _, s := range suite[:30] {
		st := trace.Analyze(s.Build())
		p := st.PolymorphicFraction()
		if p < minPoly {
			minPoly = p
		}
		if p > maxPoly {
			maxPoly = p
		}
	}
	if maxPoly-minPoly < 0.3 {
		t.Errorf("polymorphism range [%.2f, %.2f] too narrow; want diverse suite", minPoly, maxPoly)
	}
}

func TestSuiteHoldoutDisjointNames(t *testing.T) {
	main := Suite(1_000)
	hold := SuiteHoldout(1_000)
	if len(hold) != 12 {
		t.Fatalf("holdout has %d workloads, want 12", len(hold))
	}
	names := map[string]bool{}
	for _, s := range main {
		names[s.Name] = true
	}
	for _, s := range hold {
		if names[s.Name] {
			t.Errorf("holdout workload %q collides with main suite", s.Name)
		}
	}
}

func TestDefaultBaseApplied(t *testing.T) {
	suite := Suite(0)
	if suite[0].Instructions <= 0 {
		t.Error("zero base did not apply a default")
	}
}

func TestSaltReseedsEveryWorkload(t *testing.T) {
	plain := SuiteSpecs(1_000, "")
	salted := SuiteSpecs(1_000, "x")
	for i := range plain {
		if plain[i].Seed != nil {
			t.Fatalf("%s: unsalted built-in spec carries an explicit seed", plain[i].Name)
		}
		if salted[i].Seed == nil {
			t.Fatalf("%s: salted spec did not pin a seed", salted[i].Name)
		}
		if *salted[i].Seed == workload.SeedFor(salted[i].Name) {
			t.Errorf("%s: salted seed equals the name-derived seed", salted[i].Name)
		}
	}
}

func TestAllBuiltinSpecsValidateAndRoundTrip(t *testing.T) {
	specs := append(SuiteSpecs(1_000, "x"), HoldoutSpecs(1_000)...)
	for i := range specs {
		ws := specs[i]
		if err := ws.Validate(); err != nil {
			t.Fatalf("%s: %v", ws.Name, err)
		}
		enc, err := ws.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", ws.Name, err)
		}
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("%s: decode of own encoding: %v", ws.Name, err)
		}
		a, b := MustCompile(ws), MustCompile(*back)
		if a.Identity() != b.Identity() {
			t.Errorf("%s: identity changed across encode/decode: %+v vs %+v", ws.Name, a.Identity(), b.Identity())
		}
	}
}

func TestLookupAndNames(t *testing.T) {
	ws, ok := Lookup("252.eon", 1_000)
	if !ok || ws.Name != "252.eon" {
		t.Fatal("Lookup failed to find 252.eon")
	}
	if ws.Instructions != 1_500 {
		t.Errorf("252.eon at base 1000: instructions = %d, want 1500 (SPEC scales 1.5x)", ws.Instructions)
	}
	if hw, ok := Lookup("holdout-interp-1", 1_000); !ok || hw.Instructions != 1_000 {
		t.Errorf("holdout lookup = %+v, %t; want found at base instructions", hw, ok)
	}
	if _, ok := Lookup("no-such-workload", 1_000); ok {
		t.Error("Lookup found a nonexistent workload")
	}
	names := Names()
	if len(names) != 100 {
		t.Fatalf("Names() lists %d workloads, want 100 (88 suite + 12 holdout)", len(names))
	}
	if names[0] != "252.eon" || names[len(names)-1] != "holdout-mixed-3" {
		t.Errorf("Names() order unexpected: first %q, last %q", names[0], names[len(names)-1])
	}
}

// TestLeafFingerprintMatchesConstructorPath pins the shared cache identity:
// a leaf spec compiled from data and the same workload built through the
// programmatic constructor produce the same fingerprint (and thus hit the
// same trace-cache entries and spill files).
func TestLeafFingerprintMatchesConstructorPath(t *testing.T) {
	p := workload.InterpreterParams{Opcodes: 32, ProgramLen: 80, Work: 50, CondPerHandler: 1, CondNoise: 0.01, DispatchNoise: 0.002, MonoCalls: 1, MonoSites: 10}
	fromCtor := workload.InterpreterSpec("fp-check", "T", 5_000, p)
	ws := builtin("fp-check", "T", 5_000, leafNode("interpreter", p))
	fromSpec := MustCompile(ws)
	if fromCtor.Identity() != fromSpec.Identity() {
		t.Errorf("identities diverge: constructor %+v, spec %+v", fromCtor.Identity(), fromSpec.Identity())
	}
}
