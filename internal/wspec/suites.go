package wspec

import (
	"encoding/json"
	"fmt"

	"blbp/internal/workload"
)

// The paper-mirroring suites as data. SuiteSpecs and HoldoutSpecs are the
// registry's built-in entries — pure WorkloadSpec values, dumpable with
// -dumpspec and byte-identical under Compile to the closure-built suite
// they replaced (internal/wspec's golden test pins this against trace
// checksums captured from the pre-refactor generators).

// defaultBase is the per-SHORT-trace instruction budget a zero base
// selects.
const defaultBase = 400_000

func leafNode(kind string, params any) Node {
	b, err := json.Marshal(params)
	if err != nil {
		panic(fmt.Sprintf("wspec: marshaling %s params: %v", kind, err))
	}
	return Node{Kind: kind, Params: b}
}

func builtin(name, category string, instructions int64, g Node) WorkloadSpec {
	return WorkloadSpec{Name: name, Category: category, Instructions: instructions, Generator: g}
}

func mixedNode(random bool, parts ...Part) Node {
	return Node{Kind: "mixed", Random: random, Parts: parts}
}

func part(weight int, kind string, params any) Part {
	return Part{Weight: weight, Generator: leafNode(kind, params)}
}

// SuiteSpecs returns the full 88-workload evaluation suite as declarative
// specs, mirroring Table 1's category counts: 1 SPEC CPU2000, 12 SPEC
// CPU2006, 7 SPEC CPU2017, and 68 CBP-5-style traces (36 mobile, 32
// server). base scales trace lengths: SHORT traces run ~base instructions,
// LONG traces ~2x base, SPEC ~1.5x; base 0 applies the 400k default. A
// non-empty salt re-seeds every workload (same names and parameters,
// different random content) for the seed-sensitivity experiment.
func SuiteSpecs(base int64, salt string) []WorkloadSpec {
	if base <= 0 {
		base = defaultBase
	}
	spec := base * 3 / 2
	long := base * 2
	specs := make([]WorkloadSpec, 0, 88)

	// --- SPEC CPU2000: 252.eon (C++ ray tracer, moderate polymorphism).
	specs = append(specs, builtin("252.eon", workload.CatSPEC2000, spec, leafNode("vdispatch", workload.VDispatchParams{
		Classes: 6, Sites: 4, Objects: 24, TypeNoise: 0.002,
		MethodWork: 210, MethodConds: 3, CondNoise: 0.004,
		MonoCalls: 1, MonoSites: 40,
	})))

	// --- SPEC CPU2006 (12).
	for i := 0; i < 3; i++ {
		specs = append(specs, builtin(fmt.Sprintf("400.perlbench-%d", i+1), workload.CatSPEC2006, spec, leafNode("interpreter", workload.InterpreterParams{
			Opcodes: []int{110, 130, 150}[i], ProgramLen: []int{280, 350, 420}[i],
			Work: 180, CondPerHandler: 2,
			CondNoise: 0.003 + 0.002*float64(i), DispatchNoise: 0.002 + 0.0015*float64(i),
			MonoCalls: 1, MonoSites: 30 + 20*i,
		})))
	}
	for i := 0; i < 4; i++ {
		specs = append(specs, builtin(fmt.Sprintf("403.gcc-%d", i+1), workload.CatSPEC2006, spec, leafNode("switcher", workload.SwitcherParams{
			Tokens: []int{9, 11, 13, 96}[i], TransitionNoise: 0.003 + 0.003*float64(i),
			CaseWork: 210, CaseConds: 3, CondNoise: 0.004,
			MonoCalls: 2, MonoSites: 120 + 40*i,
		})))
	}
	for i := 0; i < 2; i++ {
		specs = append(specs, builtin(fmt.Sprintf("453.povray-%d", i+1), workload.CatSPEC2006, spec, leafNode("vdispatch", workload.VDispatchParams{
			Classes: 4 + 2*i, Sites: 3, Objects: 20 + 12*i, TypeNoise: 0.004,
			MethodWork: 240, MethodConds: 3, CondNoise: 0.004,
			MonoCalls: 2, MonoSites: 60,
		})))
	}
	for i := 0; i < 3; i++ {
		specs = append(specs, builtin(fmt.Sprintf("458.sjeng-%d", i+1), workload.CatSPEC2006, spec, mixedNode(false,
			part(72, "switcher", workload.SwitcherParams{Tokens: 10, TransitionNoise: 0.015 + 0.005*float64(i), CaseWork: 180, CaseConds: 3, CondNoise: 0.006, MonoCalls: 1, MonoSites: 50, Bank: 0}),
			part(24, "callbacks", workload.CallbacksParams{Events: 5, Skew: 2.4, Wrappers: 3, HandlerWork: 180, HandlerConds: 2, Bank: 1}),
		)))
	}

	// --- SPEC CPU2017 (7).
	for i := 0; i < 2; i++ {
		specs = append(specs, builtin(fmt.Sprintf("600.perlbench-%d", i+1), workload.CatSPEC2017, spec, leafNode("interpreter", workload.InterpreterParams{
			Opcodes: []int{130, 150}[i], ProgramLen: []int{360, 420}[i],
			Work: 180, CondPerHandler: 2,
			CondNoise: 0.004, DispatchNoise: 0.0025 + 0.002*float64(i),
			MonoCalls: 1, MonoSites: 50,
		})))
	}
	for i := 0; i < 3; i++ {
		specs = append(specs, builtin(fmt.Sprintf("602.gcc-%d", i+1), workload.CatSPEC2017, spec, leafNode("switcher", workload.SwitcherParams{
			Tokens: []int{11, 14, 80}[i], TransitionNoise: 0.004 + 0.003*float64(i),
			CaseWork: 210, CaseConds: 3, CondNoise: 0.004,
			MonoCalls: 2, MonoSites: 200,
		})))
	}
	for i := 0; i < 2; i++ {
		specs = append(specs, builtin(fmt.Sprintf("623.xalancbmk-%d", i+1), workload.CatSPEC2017, spec, leafNode("vdispatch", workload.VDispatchParams{
			Classes: []int{8, 24}[i], Sites: []int{6, 96}[i], Objects: []int{36, 192}[i], TypeNoise: 0.003,
			AlternatingSites: 1,
			MethodWork:       180, MethodConds: 2, CondNoise: 0.004,
			MonoCalls: 1, MonoSites: 80,
		})))
	}

	// --- CBP-5 SHORT-MOBILE (24): Java-like, indirect-rich. A third are
	// phase-mixed (vdispatch + interpreter in long bursts); the rest are
	// single-family with varied footprints.
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("short-mobile-%02d", i+1)
		vdp := workload.VDispatchParams{
			Classes: 3 + i%4, Sites: 3 + i%3, Objects: 16 + 8*(i%3),
			TypeNoise:        0.001 * float64(i%4),
			AlternatingSites: map[bool]int{true: 1 + i%2, false: 0}[i%4 == 0],
			MethodWork:       84, MethodConds: 2, CondNoise: 0.003 + 0.001*float64(i%3),
			MonoCalls: i % 3, MonoSites: 20 + 10*(i%5),
			Bank: 0,
		}
		inp := workload.InterpreterParams{
			Opcodes: []int{12, 14, 96, 16, 10, 14, 18, 12, 120, 14, 16, 11}[i%12], ProgramLen: []int{24, 32, 260, 40, 28, 36, 48, 24, 320, 32, 40, 30}[i%12],
			Work: 72, CondPerHandler: 1,
			CondNoise: 0.003, DispatchNoise: 0.0015 + 0.001*float64(i%4),
			MonoCalls: 1, MonoSites: 25,
			Bank: 1,
		}
		switch i % 3 {
		case 0:
			specs = append(specs, builtin(name, workload.CatMobileShort, base, mixedNode(false,
				part(150, "vdispatch", vdp),
				part(100, "interpreter", inp),
			)))
		case 1:
			specs = append(specs, builtin(name, workload.CatMobileShort, base, leafNode("vdispatch", vdp)))
		default:
			specs = append(specs, builtin(name, workload.CatMobileShort, base, leafNode("interpreter", inp)))
		}
	}

	// --- CBP-5 LONG-MOBILE (12): bigger footprints; index 8 is the
	// LONG-MOBILE-8 analog with more indirect branches than conditionals.
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("long-mobile-%02d", i+1)
		vdp := workload.VDispatchParams{
			Classes: 4 + i%5, Sites: 4 + i%4, Objects: 24 + 16*(i%3),
			TypeNoise:        0.001 * float64(i%5),
			AlternatingSites: map[bool]int{true: 1 + i%2, false: 0}[i%4 == 0],
			MethodWork:       90, MethodConds: 2, CondNoise: 0.004,
			MonoCalls: 1 + i%2, MonoSites: 40 + 20*(i%4),
			Bank: 0,
		}
		if i == 7 { // long-mobile-08: indirect-dominated
			vdp.MethodConds = 0
			vdp.MethodWork = 12
			vdp.AlternatingSites = 4
			vdp.MonoCalls = 2
		}
		inp := workload.InterpreterParams{
			Opcodes: []int{14, 12, 110, 15, 18, 13}[i%6], ProgramLen: []int{36, 32, 300, 44, 56, 40}[i%6],
			Work: 66, CondPerHandler: 1,
			CondNoise: 0.003, DispatchNoise: 0.002,
			MonoCalls: 1, MonoSites: 30,
			Bank: 1,
		}
		switch i % 3 {
		case 0:
			specs = append(specs, builtin(name, workload.CatMobileLong, long, mixedNode(false,
				part(150, "vdispatch", vdp),
				part(100, "interpreter", inp),
			)))
		case 1:
			specs = append(specs, builtin(name, workload.CatMobileLong, long, leafNode("vdispatch", vdp)))
		default:
			specs = append(specs, builtin(name, workload.CatMobileLong, long, leafNode("interpreter", inp)))
		}
	}

	// --- CBP-5 SHORT-SERVER (20): request dispatch with random event
	// mixes, larger static footprints, harder tails.
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("short-server-%02d", i+1)
		specs = append(specs, builtin(name, workload.CatServerShort, base, mixedNode(false,
			part(6, "callbacks", workload.CallbacksParams{
				Events: 4 + i%5, Skew: 2.0 + 0.2*float64(i%5),
				Wrappers: 4 + i%4, HandlerWork: 180, HandlerConds: 2,
				Bank: 0,
			}),
			part(28, "switcher", workload.SwitcherParams{
				Tokens: []int{12, 16, 20, 24, 44, 28}[i%6], TransitionNoise: 0.003 + 0.0015*float64(i%5),
				CaseWork: 180, CaseConds: 3, CondNoise: 0.004,
				MonoCalls: 1, MonoSites: 60 + 30*(i%4),
				Bank: 1,
			}),
			part(14, "mono", workload.MonoParams{Sites: 60 + 20*(i%4), Work: 120, Bank: 2}),
		)))
	}

	// --- CBP-5 LONG-SERVER (12).
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("long-server-%02d", i+1)
		specs = append(specs, builtin(name, workload.CatServerLong, long, mixedNode(false,
			part(6, "callbacks", workload.CallbacksParams{
				Events: 5 + i%4, Skew: 2.2,
				Wrappers: 6, HandlerWork: 150, HandlerConds: 2,
				Bank: 0,
			}),
			part(28, "vdispatch", workload.VDispatchParams{
				Classes: 5 + i%4, Sites: 6, Objects: 32,
				TypeNoise:  0.0015,
				MethodWork: 120, MethodConds: 2, CondNoise: 0.004,
				MonoCalls: 1, MonoSites: 100,
				Bank: 1,
			}),
			part(14, "mono", workload.MonoParams{Sites: 80 + 30*(i%3), Work: 150, Bank: 2}),
		)))
	}

	if salt != "" {
		for i := range specs {
			seed := workload.SeedFor(specs[i].Name + "#" + salt)
			specs[i].Seed = &seed
		}
	}
	return specs
}

// HoldoutSpecs returns the 12-workload cross-validation suite with
// parameter and seed settings disjoint from SuiteSpecs — the analog of the
// paper's CBP-4 check that BLBP was not overtuned to its development
// traces.
func HoldoutSpecs(base int64) []WorkloadSpec {
	if base <= 0 {
		base = defaultBase
	}
	specs := make([]WorkloadSpec, 0, 12)
	for i := 0; i < 3; i++ {
		specs = append(specs, builtin(fmt.Sprintf("holdout-interp-%d", i+1), "HOLDOUT", base, leafNode("interpreter", workload.InterpreterParams{
			Opcodes: 11 + 5*i, ProgramLen: 28 + 20*i,
			Work: 165, CondPerHandler: 2,
			CondNoise: 0.012, DispatchNoise: 0.0015 + 0.0015*float64(i),
			MonoCalls: 1, MonoSites: 35,
		})))
	}
	for i := 0; i < 3; i++ {
		specs = append(specs, builtin(fmt.Sprintf("holdout-switch-%d", i+1), "HOLDOUT", base, leafNode("switcher", workload.SwitcherParams{
			Tokens: 13 + 7*i, TransitionNoise: 0.004 + 0.0035*float64(i),
			CaseWork: 195, CaseConds: 3, CondNoise: 0.004,
			MonoCalls: 1, MonoSites: 90,
		})))
	}
	for i := 0; i < 3; i++ {
		specs = append(specs, builtin(fmt.Sprintf("holdout-vdisp-%d", i+1), "HOLDOUT", base, leafNode("vdispatch", workload.VDispatchParams{
			Classes: 5 + 2*i, Sites: 3 + i, Objects: 20 + 14*i,
			TypeNoise:        0.0015,
			AlternatingSites: i,
			MethodWork:       165, MethodConds: 2, CondNoise: 0.004,
			MonoCalls: 1 + i%2, MonoSites: 45,
		})))
	}
	for i := 0; i < 3; i++ {
		specs = append(specs, builtin(fmt.Sprintf("holdout-mixed-%d", i+1), "HOLDOUT", base, mixedNode(false,
			part(5, "callbacks", workload.CallbacksParams{Events: 4 + i, Skew: 2.3, Wrappers: 3, HandlerWork: 165, HandlerConds: 2, Bank: 0}),
			part(25, "interpreter", workload.InterpreterParams{Opcodes: 14, ProgramLen: 26 + 14*i, Work: 135, CondPerHandler: 1, CondNoise: 0.004, DispatchNoise: 0.002, MonoCalls: 1, MonoSites: 40, Bank: 1}),
		)))
	}
	return specs
}

// Suite compiles the full 88-workload evaluation suite (the data form is
// SuiteSpecs).
func Suite(base int64) []workload.Spec { return SuiteSeeded(base, "") }

// SuiteSeeded compiles the suite under a seed salt (see SuiteSpecs).
func SuiteSeeded(base int64, salt string) []workload.Spec {
	return compileAll(SuiteSpecs(base, salt))
}

// SuiteHoldout compiles the 12-workload cross-validation suite.
func SuiteHoldout(base int64) []workload.Spec {
	return compileAll(HoldoutSpecs(base))
}

func compileAll(specs []WorkloadSpec) []workload.Spec {
	out := make([]workload.Spec, len(specs))
	for i, ws := range specs {
		out[i] = MustCompile(ws)
	}
	return out
}

// Lookup finds a built-in workload spec by name, searching the standard
// suite then the holdout at the given base.
func Lookup(name string, base int64) (WorkloadSpec, bool) {
	for _, ws := range SuiteSpecs(base, "") {
		if ws.Name == name {
			return ws, true
		}
	}
	for _, ws := range HoldoutSpecs(base) {
		if ws.Name == name {
			return ws, true
		}
	}
	return WorkloadSpec{}, false
}

// Names lists every built-in workload name, standard suite first, then
// holdout, in suite order.
func Names() []string {
	std := SuiteSpecs(0, "")
	hold := HoldoutSpecs(0)
	names := make([]string, 0, len(std)+len(hold))
	for _, ws := range std {
		names = append(names, ws.Name)
	}
	for _, ws := range hold {
		names = append(names, ws.Name)
	}
	return names
}
