// Package wspec is the declarative workload layer: a JSON-serializable
// WorkloadSpec names a generator kind with its full parameter struct, or
// composes generators with spec-only operators — weighted multi-client
// mixes (optionally with per-client seeds), phase schedules over the
// instruction budget, per-instance parameter distributions, and replay of
// a recorded spill file. Specs are validated at decode time with exact
// errors (mirroring internal/runspec's RunPlans) and compiled down to the
// workload.Spec the cache, scheduler, batch engine, and snapshot layers
// already consume — so any scenario runs end to end without new Go code.
//
// The paper-mirroring 88-workload suite and the 12-workload holdout are
// themselves built-in specs here (see SuiteSpecs / HoldoutSpecs), compiled
// byte-identically to the former closure-based suite; run plans reference
// them by name through the registry (Lookup / Names).
package wspec

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"

	"blbp/internal/workload"
)

// WorkloadSpec is one declarative workload: a named, seeded generator tree
// with an instruction budget.
type WorkloadSpec struct {
	// Name is the unique workload name.
	Name string `json:"name"`
	// Category labels the workload in characterization tables; empty is
	// fine for user scenarios.
	Category string `json:"category,omitempty"`
	// Seed drives all generator randomness; nil derives the seed from the
	// name (workload.SeedFor), which is how every built-in suite entry is
	// seeded.
	Seed *int64 `json:"seed,omitempty"`
	// Instructions is the trace length. Replay specs leave it 0 — the
	// recorded file's budget applies.
	Instructions int64 `json:"instructions,omitempty"`
	// Generator is the root of the generator tree.
	Generator Node `json:"generator"`
}

// Node is one generator-tree node: a leaf generator kind with parameters
// (interpreter, vdispatch, switcher, callbacks, mono, recursive), or a
// compositor (mixed, phases, replay).
type Node struct {
	// Kind selects the generator or compositor.
	Kind string `json:"kind"`
	// Params holds the leaf kind's parameter struct (the exported
	// workload.*Params types, by Go field name). Omitted fields default to
	// zero, exactly as the programmatic constructors take them.
	Params json.RawMessage `json:"params,omitempty"`
	// Draw maps leaf parameter names to ranges drawn per instance at build
	// time (uniformly, from the build rng): distributions over entropy,
	// fan-out, footprint. Drawn values override Params fields.
	Draw map[string]Range `json:"draw,omitempty"`
	// Random selects random interleaving for a mixed node (default is
	// weighted round-robin).
	Random bool `json:"random,omitempty"`
	// Parts lists a mixed node's weighted sub-generators.
	Parts []Part `json:"parts,omitempty"`
	// Phases lists a phases node's schedule segments.
	Phases []PhaseSpec `json:"phases,omitempty"`
	// Path names a replay node's recorded spill file.
	Path string `json:"path,omitempty"`
}

// Part is one client of a mixed node.
type Part struct {
	// Weight is the part's interleave weight (steps per round-robin round,
	// or selection probability weight under Random).
	Weight int `json:"weight"`
	// Seed, when set, gives this client its own random stream seeded here
	// — its draws are then independent of the other clients' interleaving.
	// Nil shares the spec's build rng, the built-in suites' behavior.
	Seed *int64 `json:"seed,omitempty"`
	// Generator is the part's sub-tree.
	Generator Node `json:"generator"`
}

// PhaseSpec is one segment of a phase schedule.
type PhaseSpec struct {
	// Until is the absolute instruction count at which the next phase takes
	// over; 0 (allowed on the last phase only) runs to the end of the trace.
	Until int64 `json:"until,omitempty"`
	// Generator is the phase's sub-tree.
	Generator Node `json:"generator"`
}

// Range bounds one drawn parameter. Integer parameters draw uniformly from
// the integers in [Min, Max]; float parameters draw uniformly from the
// real interval.
type Range struct {
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// kindNames lists every accepted Node.Kind, alphabetically (the order
// error messages cite).
var kindNames = []string{"callbacks", "interpreter", "mixed", "mono", "phases", "recursive", "replay", "switcher", "vdispatch"}

// maxNesting bounds generator-tree depth (fuzz inputs aside, two levels —
// a phase schedule of mixes — covers every real scenario).
const maxNesting = 8

// Decode parses and validates one workload spec from JSON. Unknown fields
// anywhere in the document are rejected.
func Decode(data []byte) (*WorkloadSpec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var ws WorkloadSpec
	if err := dec.Decode(&ws); err != nil {
		return nil, fmt.Errorf("wspec: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("wspec: trailing data after spec object")
	}
	if err := ws.Validate(); err != nil {
		return nil, err
	}
	return &ws, nil
}

// DecodeAll parses a spec file holding either one spec object or an array
// of them, validating each.
func DecodeAll(data []byte) ([]WorkloadSpec, error) {
	trimmed := strings.TrimLeft(string(data), " \t\r\n")
	if !strings.HasPrefix(trimmed, "[") {
		ws, err := Decode(data)
		if err != nil {
			return nil, err
		}
		return []WorkloadSpec{*ws}, nil
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var specs []WorkloadSpec
	if err := dec.Decode(&specs); err != nil {
		return nil, fmt.Errorf("wspec: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("wspec: trailing data after spec array")
	}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, fmt.Errorf("wspec: spec %d of %d: %v", i+1, len(specs), err)
		}
	}
	return specs, nil
}

// Encode renders the spec as indented JSON (the -dumpspec format).
func (ws *WorkloadSpec) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(ws, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("wspec: %v", err)
	}
	return append(b, '\n'), nil
}

// Validate checks the spec's static structure: the generator tree's kinds,
// parameters (decoded strictly against the generator's parameter struct),
// draw ranges, mix weights, phase boundaries, and bank bounds.
func (ws *WorkloadSpec) Validate() error {
	if ws.Name == "" {
		return fmt.Errorf("wspec: spec needs a name")
	}
	if ws.Generator.Kind == "replay" {
		if ws.Instructions != 0 {
			return fmt.Errorf("wspec: spec %q: replay takes its instruction count from the recorded file; leave instructions 0", ws.Name)
		}
	} else if ws.Instructions <= 0 {
		return fmt.Errorf("wspec: spec %q: instructions must be positive", ws.Name)
	}
	return ws.validateNode(&ws.Generator, "generator", 0, true)
}

func (ws *WorkloadSpec) validateNode(n *Node, at string, depth int, top bool) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("wspec: spec %q: %s: %s", ws.Name, at, fmt.Sprintf(format, args...))
	}
	if depth > maxNesting {
		return bad("generator nesting too deep")
	}
	switch n.Kind {
	case "interpreter", "vdispatch", "switcher", "callbacks", "mono", "recursive":
		if len(n.Parts) > 0 || n.Random {
			return bad("%q applies to kind \"mixed\" only", map[bool]string{true: "random", false: "parts"}[len(n.Parts) == 0])
		}
		if len(n.Phases) > 0 {
			return bad("\"phases\" applies to kind \"phases\" only")
		}
		if n.Path != "" {
			return bad("\"path\" applies to kind \"replay\" only")
		}
		params, err := decodeLeafParams(n.Kind, n.Params)
		if err != nil {
			return bad("%v", err)
		}
		if bank := paramsBank(params); bank < 0 || bank >= workload.MaxBank {
			return bad("bank %d out of range [0, %d)", bank, workload.MaxBank)
		}
		return ws.validateDraw(n, params, at)
	case "mixed":
		if err := noLeafFields(n, bad); err != nil {
			return err
		}
		if n.Path != "" {
			return bad("\"path\" applies to kind \"replay\" only")
		}
		if len(n.Phases) > 0 {
			return bad("\"phases\" applies to kind \"phases\" only")
		}
		if len(n.Parts) == 0 {
			return bad("mixed needs at least one part")
		}
		for i := range n.Parts {
			if n.Parts[i].Weight <= 0 {
				return fmt.Errorf("wspec: spec %q: %s: mixed part %d: weight must be positive", ws.Name, at, i)
			}
			if err := ws.validateNode(&n.Parts[i].Generator, fmt.Sprintf("%s: mixed part %d", at, i), depth+1, false); err != nil {
				return err
			}
		}
		return nil
	case "phases":
		if err := noLeafFields(n, bad); err != nil {
			return err
		}
		if len(n.Parts) > 0 || n.Random {
			return bad("%q applies to kind \"mixed\" only", map[bool]string{true: "random", false: "parts"}[len(n.Parts) == 0])
		}
		if n.Path != "" {
			return bad("\"path\" applies to kind \"replay\" only")
		}
		if len(n.Phases) == 0 {
			return bad("phases needs at least one phase")
		}
		prev := int64(0)
		for i := range n.Phases {
			until := n.Phases[i].Until
			last := i == len(n.Phases)-1
			if until == 0 && !last {
				return fmt.Errorf("wspec: spec %q: %s: phase %d: boundary must be positive (only the last phase may run to the end)", ws.Name, at, i)
			}
			if until != 0 {
				if until <= prev {
					return fmt.Errorf("wspec: spec %q: %s: phase %d: boundary %d not after previous %d", ws.Name, at, i, until, prev)
				}
				if ws.Instructions > 0 && !last && until >= ws.Instructions {
					return fmt.Errorf("wspec: spec %q: %s: phase %d: boundary %d at or past the instruction budget %d", ws.Name, at, i, until, ws.Instructions)
				}
				prev = until
			}
			if err := ws.validateNode(&n.Phases[i].Generator, fmt.Sprintf("%s: phase %d", at, i), depth+1, false); err != nil {
				return err
			}
		}
		return nil
	case "replay":
		if !top {
			return bad("replay cannot be nested")
		}
		if err := noLeafFields(n, bad); err != nil {
			return err
		}
		if len(n.Parts) > 0 || n.Random || len(n.Phases) > 0 {
			return bad("replay composes with nothing; it names a recorded file")
		}
		if n.Path == "" {
			return bad("replay needs a path")
		}
		return nil
	case "":
		return bad("generator needs a kind (want %s)", strings.Join(kindNames, ", "))
	default:
		return bad("unknown generator kind %q (want %s)", n.Kind, strings.Join(kindNames, ", "))
	}
}

// noLeafFields rejects leaf-only fields on compositor nodes.
func noLeafFields(n *Node, bad func(string, ...any) error) error {
	if len(n.Params) > 0 {
		return bad("\"params\" applies to generator kinds only")
	}
	if len(n.Draw) > 0 {
		return bad("\"draw\" applies to generator kinds only")
	}
	return nil
}

// validateDraw checks every drawn field against the decoded parameter
// struct: the field must exist, be numeric, and have a non-inverted range
// (integral parameters additionally need integral bounds).
func (ws *WorkloadSpec) validateDraw(n *Node, params factoryParams, at string) error {
	if len(n.Draw) == 0 {
		return nil
	}
	pv := reflect.ValueOf(params)
	for _, name := range sortedDrawFields(n.Draw) {
		r := n.Draw[name]
		f := pv.FieldByName(name)
		if !f.IsValid() {
			return fmt.Errorf("wspec: spec %q: %s: draw names no %s parameter %q", ws.Name, at, n.Kind, name)
		}
		switch f.Kind() {
		case reflect.Int:
			if r.Min != float64(int64(r.Min)) || r.Max != float64(int64(r.Max)) {
				return fmt.Errorf("wspec: spec %q: %s: draw range for %q must have integral bounds", ws.Name, at, name)
			}
		case reflect.Float64:
		default:
			return fmt.Errorf("wspec: spec %q: %s: parameter %q is not numeric", ws.Name, at, name)
		}
		if r.Min > r.Max {
			return fmt.Errorf("wspec: spec %q: %s: draw range for %q inverted (min %g > max %g)", ws.Name, at, name, r.Min, r.Max)
		}
	}
	return nil
}

// sortedDrawFields returns the draw map's keys in sorted order, the one
// deterministic order draws are validated, canonicalized, and applied in.
func sortedDrawFields(draw map[string]Range) []string {
	fields := make([]string, 0, len(draw))
	//blbp:allow(determinism) keys are collected then sorted; iteration order never escapes
	for name := range draw {
		fields = append(fields, name)
	}
	sort.Strings(fields)
	return fields
}
