package wspec

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"blbp/internal/trace"
)

func mustDecode(t *testing.T, in string) WorkloadSpec {
	t.Helper()
	ws, err := Decode([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	return *ws
}

// pcBank recovers the generator bank from a branch PC: function addresses
// are laid out at 0x40_0000 + bank<<24 + slot.
func pcBank(pc uint64) int { return int(pc >> 24) }

func TestCompileIsDeterministic(t *testing.T) {
	ws := mustDecode(t, `{"name": "det", "instructions": 20000, "generator": {"kind": "vdispatch",
		"params": {"Classes": 4, "Sites": 3, "Objects": 12, "MethodWork": 20},
		"draw": {"TypeNoise": {"min": 0.001, "max": 0.01}, "Sites": {"min": 2, "max": 6}}}}`)
	a, b := MustCompile(ws).BuildColumns(), MustCompile(ws).BuildColumns()
	if a.Len() == 0 || a.Len() != b.Len() {
		t.Fatalf("lengths %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.Record(i) != b.Record(i) {
			t.Fatalf("record %d differs: %+v vs %+v", i, a.Record(i), b.Record(i))
		}
	}
}

func TestDrawChangesTraceAndFingerprint(t *testing.T) {
	base := `{"name": "drawn", "instructions": 20000, "generator": {"kind": "switcher",
		"params": {"Tokens": 8, "CaseWork": 25}%s}}`
	plain := MustCompile(mustDecode(t, strings.Replace(base, "%s", "", 1)))
	drawn := MustCompile(mustDecode(t, strings.Replace(base, "%s",
		`, "draw": {"Tokens": {"min": 20, "max": 40}}`, 1)))
	if plain.Fingerprint == drawn.Fingerprint {
		t.Error("draw did not change the fingerprint")
	}
	// The drawn Tokens (>= 20) must beat the plain 8: more distinct
	// dispatch targets in the trace.
	targets := func(c *trace.Columns) map[uint64]bool {
		m := map[uint64]bool{}
		for i := 0; i < c.Len(); i++ {
			if r := c.Record(i); r.Type == trace.IndirectJump {
				m[r.Target] = true
			}
		}
		return m
	}
	np, nd := len(targets(plain.BuildColumns())), len(targets(drawn.BuildColumns()))
	if nd <= np {
		t.Errorf("drawn spec has %d indirect-jump targets, plain has %d; draw seems unapplied", nd, np)
	}
}

// TestPerPartSeedIsolation: pinning a part's seed decouples its content
// from its siblings — changing a sibling's parameters must not change the
// seeded part's records. Inexpressible in the old closure API, where every
// part consumed the one shared build rng.
func TestPerPartSeedIsolation(t *testing.T) {
	const form = `{"name": "iso", "instructions": 30000, "generator": {"kind": "mixed", "parts": [
		{"weight": 1, "seed": 424242, "generator": {"kind": "mono", "params": {"Sites": 30, "Work": 10, "Bank": 0}}},
		{"weight": 1, "generator": {"kind": "interpreter", "params": {"Opcodes": %d, "ProgramLen": 40, "Work": 15, "Bank": 1}}}]}}`
	bank0 := func(in string) []trace.Record {
		c := MustCompile(mustDecode(t, in)).BuildColumns()
		var recs []trace.Record
		for i := 0; i < c.Len(); i++ {
			if r := c.Record(i); pcBank(r.PC) == 0 {
				r.InstrBefore = 0 // interleaving differs; compare content only
				recs = append(recs, r)
			}
		}
		return recs
	}
	a := bank0(strings.Replace(form, "%d", "12", 1))
	b := bank0(strings.Replace(form, "%d", "48", 1))
	if len(a) == 0 {
		t.Fatal("no bank-0 records")
	}
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			t.Fatalf("seeded part's record %d changed when a sibling's params changed: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPhasesSwitchGenerators(t *testing.T) {
	ws := mustDecode(t, `{"name": "ph", "instructions": 40000, "generator": {"kind": "phases", "phases": [
		{"until": 20000, "generator": {"kind": "mono", "params": {"Sites": 10, "Work": 8, "Bank": 0}}},
		{"generator": {"kind": "mono", "params": {"Sites": 10, "Work": 8, "Bank": 1}}}]}}`)
	c := MustCompile(ws).BuildColumns()
	var instr, outOfPhase int64
	sawBank1 := false
	for i := 0; i < c.Len(); i++ {
		r := c.Record(i)
		instr += int64(r.InstrBefore) + 1
		switch {
		case instr < 20000 && pcBank(r.PC) == 1:
			outOfPhase++
		case instr >= 21000 && pcBank(r.PC) == 0:
			outOfPhase++
		case pcBank(r.PC) == 1:
			sawBank1 = true
		}
	}
	if !sawBank1 {
		t.Error("second phase's generator never ran")
	}
	if outOfPhase > 0 {
		t.Errorf("%d records from the wrong phase's bank", outOfPhase)
	}
}

func TestReplaySpecRoundTrip(t *testing.T) {
	src := MustCompile(mustDecode(t, `{"name": "rec-src", "instructions": 15000,
		"generator": {"kind": "callbacks", "params": {"Events": 5, "HandlerWork": 20}}}`))
	cols := src.BuildColumns()
	dir := t.TempDir()
	path := filepath.Join(dir, "rec.spill")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	h := trace.SpillHeader{Name: src.Name, Seed: src.Seed, Instructions: src.Instructions, Fingerprint: src.Fingerprint}
	if err := trace.WriteSpillColumns(f, h, cols); err != nil {
		t.Fatal(err)
	}
	f.Close()

	raw, _ := json.Marshal(map[string]any{
		"name":      "replayed",
		"generator": map[string]any{"kind": "replay", "path": path},
	})
	ws := mustDecode(t, string(raw))
	rs, err := Compile(ws)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Instructions != src.Instructions {
		t.Errorf("replay budget %d, recorded %d", rs.Instructions, src.Instructions)
	}
	if rs.Fingerprint == 0 || rs.Fingerprint == src.Fingerprint {
		t.Errorf("replay fingerprint %016x should be nonzero and distinct from source %016x", rs.Fingerprint, src.Fingerprint)
	}
	got := rs.BuildColumns()
	if got.Name != "replayed" {
		t.Errorf("replayed columns name %q", got.Name)
	}
	if got.Len() != cols.Len() {
		t.Fatalf("replayed %d records, recorded %d", got.Len(), cols.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.Record(i) != cols.Record(i) {
			t.Fatalf("record %d differs after replay", i)
		}
	}

	// A missing file fails at compile time, not mid-run.
	raw, _ = json.Marshal(map[string]any{
		"name":      "gone",
		"generator": map[string]any{"kind": "replay", "path": filepath.Join(dir, "nope.spill")},
	})
	if _, err := Compile(mustDecode(t, string(raw))); err == nil {
		t.Error("compiling a replay of a missing file succeeded")
	} else if !strings.Contains(err.Error(), `spec "gone": reading replay source`) {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestCompositorFingerprintsDistinct(t *testing.T) {
	mk := func(in string) uint64 { return MustCompile(mustDecode(t, in)).Fingerprint }
	mixed := mk(`{"name": "m", "instructions": 1000, "generator": {"kind": "mixed", "parts": [
		{"weight": 2, "generator": {"kind": "mono"}}, {"weight": 1, "generator": {"kind": "callbacks"}}]}}`)
	reweighted := mk(`{"name": "m", "instructions": 1000, "generator": {"kind": "mixed", "parts": [
		{"weight": 3, "generator": {"kind": "mono"}}, {"weight": 1, "generator": {"kind": "callbacks"}}]}}`)
	seeded := mk(`{"name": "m", "instructions": 1000, "generator": {"kind": "mixed", "parts": [
		{"weight": 2, "seed": 5, "generator": {"kind": "mono"}}, {"weight": 1, "generator": {"kind": "callbacks"}}]}}`)
	random := mk(`{"name": "m", "instructions": 1000, "generator": {"kind": "mixed", "random": true, "parts": [
		{"weight": 2, "generator": {"kind": "mono"}}, {"weight": 1, "generator": {"kind": "callbacks"}}]}}`)
	fps := map[uint64]string{mixed: "mixed"}
	for fp, label := range map[uint64]string{reweighted: "reweighted", seeded: "seeded", random: "random"} {
		if prev, dup := fps[fp]; dup {
			t.Errorf("%s and %s share fingerprint %016x", label, prev, fp)
		}
		fps[fp] = label
	}
}
