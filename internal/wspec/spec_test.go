package wspec

import (
	"bytes"
	"strings"
	"testing"
)

// validSpec is a minimal correct spec used as the mutation base for the
// validation-error table.
const validSpec = `{
  "name": "demo",
  "instructions": 10000,
  "generator": {"kind": "interpreter", "params": {"Opcodes": 16, "ProgramLen": 40}}
}`

func TestDecodeValidSpec(t *testing.T) {
	ws, err := Decode([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	if ws.Name != "demo" || ws.Generator.Kind != "interpreter" {
		t.Errorf("decoded spec = %+v", ws)
	}
	if ws.Seed != nil {
		t.Error("unset seed should decode to nil (name-derived)")
	}
}

// TestValidationErrors pins the exact diagnostics: specs are user-authored
// data, so the error text is part of the interface.
func TestValidationErrors(t *testing.T) {
	cases := []struct {
		label string
		in    string
		want  string
	}{
		{"no name", `{"instructions": 100, "generator": {"kind": "mono"}}`,
			`wspec: spec needs a name`},
		{"no instructions", `{"name": "x", "generator": {"kind": "mono"}}`,
			`wspec: spec "x": instructions must be positive`},
		{"no kind", `{"name": "x", "instructions": 100, "generator": {}}`,
			`wspec: spec "x": generator: generator needs a kind (want callbacks, interpreter, mixed, mono, phases, recursive, replay, switcher, vdispatch)`},
		{"unknown kind", `{"name": "x", "instructions": 100, "generator": {"kind": "quantum"}}`,
			`wspec: spec "x": generator: unknown generator kind "quantum" (want callbacks, interpreter, mixed, mono, phases, recursive, replay, switcher, vdispatch)`},
		{"unknown field", `{"name": "x", "instructions": 100, "generator": {"kind": "mono"}, "extra": 1}`,
			`wspec: json: unknown field "extra"`},
		{"unknown param", `{"name": "x", "instructions": 100, "generator": {"kind": "mono", "params": {"Sitez": 4}}}`,
			`wspec: spec "x": generator: mono params: json: unknown field "Sitez"`},
		{"bank out of range", `{"name": "x", "instructions": 100, "generator": {"kind": "mono", "params": {"Bank": 64}}}`,
			`wspec: spec "x": generator: bank 64 out of range [0, 64)`},
		{"parts on a leaf", `{"name": "x", "instructions": 100, "generator": {"kind": "mono", "parts": [{"weight": 1, "generator": {"kind": "mono"}}]}}`,
			`wspec: spec "x": generator: "parts" applies to kind "mixed" only`},
		{"random on a leaf", `{"name": "x", "instructions": 100, "generator": {"kind": "mono", "random": true}}`,
			`wspec: spec "x": generator: "random" applies to kind "mixed" only`},
		{"params on mixed", `{"name": "x", "instructions": 100, "generator": {"kind": "mixed", "params": {"Sites": 4}, "parts": [{"weight": 1, "generator": {"kind": "mono"}}]}}`,
			`wspec: spec "x": generator: "params" applies to generator kinds only`},
		{"empty mixed", `{"name": "x", "instructions": 100, "generator": {"kind": "mixed"}}`,
			`wspec: spec "x": generator: mixed needs at least one part`},
		{"zero weight", `{"name": "x", "instructions": 100, "generator": {"kind": "mixed", "parts": [{"weight": 0, "generator": {"kind": "mono"}}]}}`,
			`wspec: spec "x": generator: mixed part 0: weight must be positive`},
		{"bad nested part", `{"name": "x", "instructions": 100, "generator": {"kind": "mixed", "parts": [{"weight": 1, "generator": {"kind": "nope"}}]}}`,
			`wspec: spec "x": generator: mixed part 0: unknown generator kind "nope" (want callbacks, interpreter, mixed, mono, phases, recursive, replay, switcher, vdispatch)`},
		{"empty phases", `{"name": "x", "instructions": 100, "generator": {"kind": "phases"}}`,
			`wspec: spec "x": generator: phases needs at least one phase`},
		{"mid phase open-ended", `{"name": "x", "instructions": 100, "generator": {"kind": "phases", "phases": [{"generator": {"kind": "mono"}}, {"until": 50, "generator": {"kind": "mono"}}]}}`,
			`wspec: spec "x": generator: phase 0: boundary must be positive (only the last phase may run to the end)`},
		{"non-increasing boundary", `{"name": "x", "instructions": 100, "generator": {"kind": "phases", "phases": [{"until": 50, "generator": {"kind": "mono"}}, {"until": 50, "generator": {"kind": "mono"}}]}}`,
			`wspec: spec "x": generator: phase 1: boundary 50 not after previous 50`},
		{"boundary past budget", `{"name": "x", "instructions": 100, "generator": {"kind": "phases", "phases": [{"until": 100, "generator": {"kind": "mono"}}, {"generator": {"kind": "mono"}}]}}`,
			`wspec: spec "x": generator: phase 0: boundary 100 at or past the instruction budget 100`},
		{"nested replay", `{"name": "x", "instructions": 100, "generator": {"kind": "mixed", "parts": [{"weight": 1, "generator": {"kind": "replay", "path": "a.spill"}}]}}`,
			`wspec: spec "x": generator: mixed part 0: replay cannot be nested`},
		{"replay with budget", `{"name": "x", "instructions": 100, "generator": {"kind": "replay", "path": "a.spill"}}`,
			`wspec: spec "x": replay takes its instruction count from the recorded file; leave instructions 0`},
		{"replay without path", `{"name": "x", "generator": {"kind": "replay"}}`,
			`wspec: spec "x": generator: replay needs a path`},
		{"path on a leaf", `{"name": "x", "instructions": 100, "generator": {"kind": "mono", "path": "a.spill"}}`,
			`wspec: spec "x": generator: "path" applies to kind "replay" only`},
		{"draw unknown field", `{"name": "x", "instructions": 100, "generator": {"kind": "mono", "draw": {"Sitez": {"min": 1, "max": 2}}}}`,
			`wspec: spec "x": generator: draw names no mono parameter "Sitez"`},
		{"draw fractional int", `{"name": "x", "instructions": 100, "generator": {"kind": "mono", "draw": {"Sites": {"min": 1.5, "max": 2}}}}`,
			`wspec: spec "x": generator: draw range for "Sites" must have integral bounds`},
		{"draw inverted", `{"name": "x", "instructions": 100, "generator": {"kind": "mono", "draw": {"Sites": {"min": 9, "max": 2}}}}`,
			`wspec: spec "x": generator: draw range for "Sites" inverted (min 9 > max 2)`},
	}
	for _, tc := range cases {
		_, err := Decode([]byte(tc.in))
		if err == nil {
			t.Errorf("%s: decode succeeded, want error %q", tc.label, tc.want)
			continue
		}
		if err.Error() != tc.want {
			t.Errorf("%s:\n got  %q\n want %q", tc.label, err.Error(), tc.want)
		}
	}
}

func TestDecodeAllArrayAndObject(t *testing.T) {
	one, err := DecodeAll([]byte(validSpec))
	if err != nil || len(one) != 1 {
		t.Fatalf("single-object DecodeAll = %d specs, %v", len(one), err)
	}
	arr := "[" + validSpec + "," + strings.Replace(validSpec, `"demo"`, `"demo2"`, 1) + "]"
	two, err := DecodeAll([]byte(arr))
	if err != nil || len(two) != 2 {
		t.Fatalf("array DecodeAll = %d specs, %v", len(two), err)
	}
	bad := "[" + validSpec + "," + strings.Replace(validSpec, `"name": "demo"`, `"name": ""`, 1) + "]"
	_, err = DecodeAll([]byte(bad))
	want := "wspec: spec 2 of 2: wspec: spec needs a name"
	if err == nil || err.Error() != want {
		t.Errorf("bad array error = %v, want %q", err, want)
	}
}

func TestEncodeDecodeFixedPoint(t *testing.T) {
	ws, err := Decode([]byte(validSpec))
	if err != nil {
		t.Fatal(err)
	}
	enc1, err := ws.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(enc1)
	if err != nil {
		t.Fatalf("decode of own encoding: %v", err)
	}
	enc2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Errorf("encode not a fixed point:\n%s\nvs\n%s", enc1, enc2)
	}
}

// FuzzWorkloadSpecDecode mirrors runspec's FuzzRunPlanDecode: whatever
// Decode accepts must validate, re-encode, and decode to a stable fixed
// point.
func FuzzWorkloadSpecDecode(f *testing.F) {
	f.Add([]byte(validSpec))
	for _, ws := range append(SuiteSpecs(1_000, "s"), HoldoutSpecs(1_000)...) {
		if enc, err := ws.Encode(); err == nil {
			f.Add(enc)
		}
	}
	f.Add([]byte(`{"name": "p", "instructions": 500, "generator": {"kind": "phases", "phases": [
		{"until": 100, "generator": {"kind": "mono"}},
		{"generator": {"kind": "mixed", "parts": [
			{"weight": 3, "seed": 7, "generator": {"kind": "switcher", "draw": {"Tokens": {"min": 4, "max": 9}}}},
			{"weight": 1, "generator": {"kind": "callbacks"}}]}}]}}`))
	f.Add([]byte(`{"name": "r", "generator": {"kind": "replay", "path": "x.spill"}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		ws, err := Decode(data)
		if err != nil {
			return
		}
		if err := ws.Validate(); err != nil {
			t.Fatalf("decoded spec fails validation: %v", err)
		}
		enc1, err := ws.Encode()
		if err != nil {
			t.Fatalf("encoding decoded spec: %v", err)
		}
		back, err := Decode(enc1)
		if err != nil {
			t.Fatalf("re-decoding encoded spec: %v\n%s", err, enc1)
		}
		enc2, err := back.Encode()
		if err != nil {
			t.Fatalf("re-encoding: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encode not a fixed point:\n%s\nvs\n%s", enc1, enc2)
		}
	})
}
