package wspec

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strings"

	"blbp/internal/trace"
	"blbp/internal/workload"
)

// Compile lowers a validated spec to the workload.Spec the execution
// layers consume. The compiled spec's fingerprint hashes the canonicalized
// generator tree (workload.CanonParams composition), so two specs that
// differ only in parameters get distinct cache identities; a leaf spec's
// fingerprint equals the one the programmatic constructor
// (workload.InterpreterSpec, ...) computes for the same parameters, so
// both paths share cache entries and spill files. Replay specs read the
// recorded file's header here — a missing or corrupt file fails at
// compile, not mid-run.
func Compile(ws WorkloadSpec) (workload.Spec, error) {
	if err := ws.Validate(); err != nil {
		return workload.Spec{}, err
	}
	seed := workload.SeedFor(ws.Name)
	if ws.Seed != nil {
		seed = *ws.Seed
	}
	if ws.Generator.Kind == "replay" {
		return compileReplay(ws, seed)
	}
	canon, factory, err := compileNode(&ws.Generator)
	if err != nil {
		return workload.Spec{}, fmt.Errorf("wspec: spec %q: %v", ws.Name, err)
	}
	return workload.NewSpec(ws.Name, ws.Category, seed, ws.Instructions,
		workload.FingerprintCanon(canon), factory), nil
}

// MustCompile is Compile for specs proven valid (the built-in suites).
func MustCompile(ws WorkloadSpec) workload.Spec {
	s, err := Compile(ws)
	if err != nil {
		panic(err)
	}
	return s
}

// compileNode lowers one generator-tree node to its canonical string and
// model factory. The factory consumes the build rng exactly as the former
// closure suite did: leaf models construct from the shared rng in tree
// order, then step with it — per-part seeds are the one deviation, binding
// a private rng instead.
func compileNode(n *Node) (string, func(*rand.Rand) workload.Model, error) {
	switch n.Kind {
	case "mixed":
		canons := make([]string, 0, len(n.Parts)+1)
		canons = append(canons, fmt.Sprintf("mixed|random=%t", n.Random))
		factories := make([]func(*rand.Rand) workload.Model, len(n.Parts))
		weights := make([]int, len(n.Parts))
		seeds := make([]*int64, len(n.Parts))
		for i := range n.Parts {
			p := &n.Parts[i]
			childCanon, childFactory, err := compileNode(&p.Generator)
			if err != nil {
				return "", nil, err
			}
			seedTag := "-"
			if p.Seed != nil {
				seedTag = fmt.Sprintf("%d", *p.Seed)
			}
			canons = append(canons, fmt.Sprintf("part:%d@%s{%s}", p.Weight, seedTag, childCanon))
			factories[i], weights[i], seeds[i] = childFactory, p.Weight, p.Seed
		}
		random := n.Random
		factory := func(rng *rand.Rand) workload.Model {
			models := make([]workload.Model, len(factories))
			for i, f := range factories {
				if seeds[i] != nil {
					prng := rand.New(rand.NewSource(*seeds[i]))
					models[i] = workload.WithRng(f(prng), prng)
				} else {
					models[i] = f(rng)
				}
			}
			return workload.NewMixed(models, weights, random)
		}
		return strings.Join(canons, "|"), factory, nil
	case "phases":
		canons := make([]string, 0, len(n.Phases)+1)
		canons = append(canons, "phases")
		factories := make([]func(*rand.Rand) workload.Model, len(n.Phases))
		untils := make([]int64, len(n.Phases))
		for i := range n.Phases {
			ph := &n.Phases[i]
			childCanon, childFactory, err := compileNode(&ph.Generator)
			if err != nil {
				return "", nil, err
			}
			canons = append(canons, fmt.Sprintf("phase:%d{%s}", ph.Until, childCanon))
			factories[i], untils[i] = childFactory, ph.Until
		}
		factory := func(rng *rand.Rand) workload.Model {
			phases := make([]workload.Phase, len(factories))
			for i, f := range factories {
				phases[i] = workload.Phase{Until: untils[i], Model: f(rng)}
			}
			return workload.NewPhases(phases)
		}
		return strings.Join(canons, "|"), factory, nil
	default: // a validated leaf kind
		params, err := decodeLeafParams(n.Kind, n.Params)
		if err != nil {
			return "", nil, err
		}
		canon := workload.CanonParams(n.Kind, params)
		if len(n.Draw) == 0 {
			factory := func(rng *rand.Rand) workload.Model { return params.New(rng) }
			return canon, factory, nil
		}
		fields := sortedDrawFields(n.Draw)
		tags := make([]string, len(fields))
		for i, name := range fields {
			r := n.Draw[name]
			tags[i] = fmt.Sprintf("%s=%g..%g", name, r.Min, r.Max)
		}
		draw := n.Draw
		factory := func(rng *rand.Rand) workload.Model {
			return applyDraws(params, fields, draw, rng).New(rng)
		}
		return canon + "|draw:" + strings.Join(tags, ","), factory, nil
	}
}

// applyDraws copies the parameter struct and overwrites each drawn field
// with a value from the rng: integers uniformly from the integral range,
// floats uniformly from the interval. Fields apply in sorted-name order so
// rng consumption is deterministic.
func applyDraws(params factoryParams, fields []string, draw map[string]Range, rng *rand.Rand) factoryParams {
	pv := reflect.New(reflect.TypeOf(params)).Elem()
	pv.Set(reflect.ValueOf(params))
	for _, name := range fields {
		r := draw[name]
		f := pv.FieldByName(name)
		switch f.Kind() {
		case reflect.Int:
			lo, hi := int64(r.Min), int64(r.Max)
			f.SetInt(lo + rng.Int63n(hi-lo+1))
		case reflect.Float64:
			f.SetFloat(r.Min + rng.Float64()*(r.Max-r.Min))
		}
	}
	return pv.Interface().(factoryParams)
}

// compileReplay lowers a replay spec: the recorded file's header supplies
// the instruction budget and the fingerprint's source identity, and the
// returned spec decodes the file on build (re-verifying its checksums),
// renaming the columns to the spec.
func compileReplay(ws WorkloadSpec, seed int64) (workload.Spec, error) {
	path := ws.Generator.Path
	h, err := readHeader(path)
	if err != nil {
		return workload.Spec{}, fmt.Errorf("wspec: spec %q: reading replay source %s: %v", ws.Name, path, err)
	}
	canon := fmt.Sprintf("replay|%s|%d|%d|%d|%016x", h.Name, h.Seed, h.Instructions, h.Records, h.Fingerprint)
	name := ws.Name
	load := func() *trace.Columns {
		f, err := os.Open(path)
		if err != nil {
			panic(fmt.Sprintf("wspec: replaying %s: %v", path, err))
		}
		defer f.Close()
		_, cols, err := trace.ReadSpillColumns(f)
		if err != nil {
			panic(fmt.Sprintf("wspec: replaying %s: %v", path, err))
		}
		cols.Name = name
		return cols
	}
	return workload.NewReplaySpec(ws.Name, ws.Category, seed, h.Instructions,
		workload.FingerprintCanon(canon), load), nil
}

func readHeader(path string) (trace.SpillHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.SpillHeader{}, err
	}
	defer f.Close()
	return trace.ReadSpillHeader(f)
}

// factoryParams is the common shape of the six parameter structs: each
// constructs its model from the build rng.
type factoryParams interface {
	New(rng *rand.Rand) workload.Model
}

// decodeLeafParams strictly decodes a leaf node's parameters into the
// kind's exported parameter struct. Nil params mean all-defaults, exactly
// as a zero struct passed to the programmatic constructor.
func decodeLeafParams(kind string, raw json.RawMessage) (factoryParams, error) {
	decode := func(dst any) error {
		if len(raw) == 0 {
			return nil
		}
		dec := json.NewDecoder(strings.NewReader(string(raw)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(dst); err != nil {
			return fmt.Errorf("%s params: %v", kind, err)
		}
		if dec.More() {
			return fmt.Errorf("%s params: trailing data", kind)
		}
		return nil
	}
	switch kind {
	case "interpreter":
		var p workload.InterpreterParams
		err := decode(&p)
		return p, err
	case "vdispatch":
		var p workload.VDispatchParams
		err := decode(&p)
		return p, err
	case "switcher":
		var p workload.SwitcherParams
		err := decode(&p)
		return p, err
	case "callbacks":
		var p workload.CallbacksParams
		err := decode(&p)
		return p, err
	case "mono":
		var p workload.MonoParams
		err := decode(&p)
		return p, err
	case "recursive":
		var p workload.RecursiveParams
		err := decode(&p)
		return p, err
	}
	return nil, fmt.Errorf("unknown generator kind %q", kind)
}

// paramsBank extracts the Bank field every parameter struct carries.
func paramsBank(params factoryParams) int {
	return int(reflect.ValueOf(params).FieldByName("Bank").Int())
}
