package wspec

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"testing"

	"blbp/internal/trace"
	"blbp/internal/workload"
)

// traceChecksum hashes a built trace's observable content — per record: PC
// (8 bytes LE), Target (8 bytes LE), InstrBefore (4 bytes LE), and a
// Type/Taken byte — exactly the function that produced
// testdata/suite_golden.json against the closure-built suite before the
// declarative refactor.
func traceChecksum(c *trace.Columns) string {
	h := fnv.New64a()
	var b [8]byte
	for i := 0; i < c.Len(); i++ {
		r := c.Record(i)
		binary.LittleEndian.PutUint64(b[:], r.PC)
		h.Write(b[:])
		binary.LittleEndian.PutUint64(b[:], r.Target)
		h.Write(b[:])
		binary.LittleEndian.PutUint32(b[:4], r.InstrBefore)
		h.Write(b[:4])
		t := byte(r.Type)
		if r.Taken {
			t |= 0x80
		}
		h.Write([]byte{t})
	}
	return fmt.Sprintf("%016x:%d", h.Sum64(), c.Len())
}

// TestSuitesMatchPreRefactorGolden proves the tentpole's byte-identicality
// claim: every built-in suite entry, compiled from its declarative spec,
// generates exactly the trace the retired closure suite generated
// (checksums in testdata were captured from the pre-refactor code).
func TestSuitesMatchPreRefactorGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("builds three full suites")
	}
	raw, err := os.ReadFile("testdata/suite_golden.json")
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	var golden map[string]map[string]string
	if err := json.Unmarshal(raw, &golden); err != nil {
		t.Fatalf("parsing golden file: %v", err)
	}
	check := func(key string, specs []workload.Spec) {
		want := golden[key]
		if len(want) != len(specs) {
			t.Fatalf("%s: golden has %d entries, suite has %d", key, len(want), len(specs))
		}
		for _, s := range specs {
			got := traceChecksum(s.BuildColumns())
			if got != want[s.Name] {
				t.Errorf("%s: %s: checksum %s, golden %s", key, s.Name, got, want[s.Name])
			}
		}
	}
	check("suite-6000", Suite(6000))
	check("suite-6000-saltx", SuiteSeeded(6000, "x"))
	check("holdout-6000", SuiteHoldout(6000))
}
