package hashing

import (
	"testing"
	"testing/quick"
)

func TestMix64Deterministic(t *testing.T) {
	if Mix64(42) != Mix64(42) {
		t.Error("Mix64 not deterministic")
	}
	if Mix64(42) == Mix64(43) {
		t.Error("Mix64(42) == Mix64(43): suspicious collision")
	}
}

func TestMix64Bijective(t *testing.T) {
	// Spot-check injectivity over a contiguous range — a bijection never
	// collides.
	seen := make(map[uint64]uint64, 10000)
	for i := uint64(0); i < 10000; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("collision: Mix64(%d) == Mix64(%d)", i, prev)
		}
		seen[h] = i
	}
}

func TestCombineOrderMatters(t *testing.T) {
	if Combine(1, 2) == Combine(2, 1) {
		t.Error("Combine is symmetric; want order-sensitive mixing")
	}
}

func TestIndexBounds(t *testing.T) {
	f := func(h uint64, sizeSeed uint16) bool {
		size := int(sizeSeed)%4096 + 1
		idx := Index(h, size)
		return idx >= 0 && idx < size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIndexPowerOfTwoUsesMask(t *testing.T) {
	for _, size := range []int{1, 2, 64, 1024} {
		for h := uint64(0); h < 100; h++ {
			want := int(h) % size
			if got := Index(h, size); got != want {
				t.Errorf("Index(%d, %d) = %d, want %d", h, size, got, want)
			}
		}
	}
}

func TestIndexPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Index(_, 0) did not panic")
		}
	}()
	Index(1, 0)
}

func TestIndexDistribution(t *testing.T) {
	// Sequential inputs through Mix64 should spread roughly uniformly.
	const size = 64
	const n = 64 * 1000
	var buckets [size]int
	for i := 0; i < n; i++ {
		buckets[Index(Mix64(uint64(i)), size)]++
	}
	for b, c := range buckets {
		if c < 700 || c > 1300 {
			t.Errorf("bucket %d has %d hits, want ~1000", b, c)
		}
	}
}

func TestTagWidth(t *testing.T) {
	for bits := 1; bits <= 20; bits++ {
		tag := Tag(^uint64(0), bits)
		if tag >= 1<<uint(bits) {
			t.Errorf("Tag(_, %d) = %#x exceeds width", bits, tag)
		}
	}
	if Tag(123, 0) != 0 {
		t.Error("Tag with 0 bits should be 0")
	}
	if Tag(123, 64) != 123 {
		t.Error("Tag with 64 bits should be identity")
	}
}
