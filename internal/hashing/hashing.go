// Package hashing provides the small deterministic mixing functions used to
// index predictor tables. Hardware predictors use cheap XOR/shift index
// functions; we use a slightly stronger multiplicative mix so that synthetic
// workload address layouts do not accidentally alias in ways real address
// streams would not.
package hashing

// Mix64 is a finalization-style 64-bit mixer (the splitmix64 finalizer).
// It is bijective, so distinct inputs never collide before truncation.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Combine mixes two 64-bit values into one.
func Combine(a, b uint64) uint64 {
	return Mix64(a ^ Mix64(b+0x9e3779b97f4a7c15))
}

// Index reduces a hash to a table index in [0, size). size must be > 0.
// Power-of-two sizes use masking; others use a multiply-shift reduction to
// avoid modulo bias on small tables.
func Index(h uint64, size int) int {
	if size <= 0 {
		panic("hashing: Index with non-positive size")
	}
	u := uint64(size)
	if u&(u-1) == 0 {
		return int(h & (u - 1))
	}
	// Fibonacci-style reduction: take the high bits of h*phi and scale.
	h = Mix64(h)
	return int((h % u))
}

// Tag extracts a partial tag of the given bit width from a hash, avoiding
// the low bits that Index consumes.
func Tag(h uint64, bits int) uint64 {
	if bits <= 0 {
		return 0
	}
	if bits >= 64 {
		return h
	}
	return (h >> 24) & ((1 << uint(bits)) - 1)
}
