package threshold

import "testing"

func TestThetaRisesOnMispredictions(t *testing.T) {
	a := New(10, 4, 0, 100)
	for i := 0; i < 4; i++ {
		a.Observe(true, false)
	}
	if got := a.Theta(); got != 11 {
		t.Errorf("Theta = %d after 4 mispredictions at speed 4, want 11", got)
	}
}

func TestThetaFallsOnLowConfidence(t *testing.T) {
	a := New(10, 4, 0, 100)
	for i := 0; i < 4; i++ {
		a.Observe(false, true)
	}
	if got := a.Theta(); got != 9 {
		t.Errorf("Theta = %d after 4 low-confidence corrects, want 9", got)
	}
}

func TestBalancedEventsHoldTheta(t *testing.T) {
	a := New(10, 4, 0, 100)
	for i := 0; i < 100; i++ {
		a.Observe(true, false)
		a.Observe(false, true)
	}
	if got := a.Theta(); got < 9 || got > 11 {
		t.Errorf("Theta = %d after balanced stream, want ~10", got)
	}
}

func TestConfidentCorrectIsNeutral(t *testing.T) {
	a := New(10, 1, 0, 100)
	for i := 0; i < 50; i++ {
		a.Observe(false, false)
	}
	if got := a.Theta(); got != 10 {
		t.Errorf("Theta = %d, want 10 (confident corrects must not move θ)", got)
	}
}

func TestClamping(t *testing.T) {
	a := New(1, 1, 1, 3)
	for i := 0; i < 10; i++ {
		a.Observe(false, true)
	}
	if got := a.Theta(); got != 1 {
		t.Errorf("Theta = %d, want clamped at min 1", got)
	}
	for i := 0; i < 10; i++ {
		a.Observe(true, false)
	}
	if got := a.Theta(); got != 3 {
		t.Errorf("Theta = %d, want clamped at max 3", got)
	}
}

func TestReset(t *testing.T) {
	a := New(10, 1, 0, 100)
	a.Observe(true, false)
	a.Reset(5)
	if a.Theta() != 5 {
		t.Errorf("Theta = %d after Reset(5), want 5", a.Theta())
	}
	a.Reset(1000)
	if a.Theta() != 100 {
		t.Errorf("Theta = %d after Reset(1000), want clamped 100", a.Theta())
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []struct {
		name                  string
		init, speed, min, max int
	}{
		{"zero speed", 5, 0, 0, 10},
		{"min > max", 5, 1, 10, 0},
		{"init below min", 5, 1, 6, 10},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			New(c.init, c.speed, c.min, c.max)
		}()
	}
}
