package threshold

// Saturating update helpers for the narrow counters and weights that model
// hardware state. The satweights analyzer (internal/analysis) forbids raw
// +=/-=/++/-- on such fields; these are the blessed clamp primitives it
// accepts, marked //blbp:clamp. Each compiles to a compare and an add — no
// branch mispredict cost beyond the guarded increment it replaces.

// SatInc8 increments v, saturating at max.
//
//blbp:clamp
func SatInc8(v, max int8) int8 {
	if v < max {
		v++
	}
	return v
}

// SatDec8 decrements v, saturating at min.
//
//blbp:clamp
func SatDec8(v, min int8) int8 {
	if v > min {
		v--
	}
	return v
}

// SatIncU8 increments v, saturating at max.
//
//blbp:clamp
func SatIncU8(v, max uint8) uint8 {
	if v < max {
		v++
	}
	return v
}

// SatDecU8 decrements v, saturating at min.
//
//blbp:clamp
func SatDecU8(v, min uint8) uint8 {
	if v > min {
		v--
	}
	return v
}
