// Package threshold implements Seznec's adaptive threshold training from
// O-GEHL (paper §3.6, "Adaptive Threshold Training"): the training threshold
// θ is adjusted at runtime so that the number of weight updates performed on
// correct-but-low-confidence predictions roughly balances the number of
// mispredictions.
package threshold

// Adaptive is one adaptive threshold. BLBP keeps one per predicted target
// bit; the hashed perceptron keeps a single one.
type Adaptive struct {
	theta int
	tc    int
	speed int
	min   int
	max   int
}

// New returns an adaptive threshold starting at init, moving one step every
// speed net events, clamped to [min, max].
func New(init, speed, min, max int) *Adaptive {
	if speed <= 0 {
		panic("threshold: New with non-positive speed")
	}
	if min > max || init < min || init > max {
		panic("threshold: New with inconsistent bounds")
	}
	return &Adaptive{theta: init, speed: speed, min: min, max: max}
}

// Theta returns the current threshold.
func (a *Adaptive) Theta() int { return a.theta }

// Observe records one training event. mispredicted reports whether the
// prediction was wrong; lowConfidence reports whether |output| was below the
// threshold (i.e. training happened despite a correct prediction). Following
// Seznec, mispredictions push θ up and correct low-confidence updates push
// it down.
func (a *Adaptive) Observe(mispredicted, lowConfidence bool) {
	switch {
	case mispredicted:
		a.tc++
		if a.tc >= a.speed {
			a.tc = 0
			if a.theta < a.max {
				a.theta++
			}
		}
	case lowConfidence:
		a.tc--
		if a.tc <= -a.speed {
			a.tc = 0
			if a.theta > a.min {
				a.theta--
			}
		}
	}
}

// Reset restores the threshold to the given value and clears the counter.
func (a *Adaptive) Reset(to int) {
	if to < a.min {
		to = a.min
	}
	if to > a.max {
		to = a.max
	}
	a.theta = to
	a.tc = 0
}
