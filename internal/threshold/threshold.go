// Package threshold implements Seznec's adaptive threshold training from
// O-GEHL (paper §3.6, "Adaptive Threshold Training"): the training threshold
// θ is adjusted at runtime so that the number of weight updates performed on
// correct-but-low-confidence predictions roughly balances the number of
// mispredictions.
package threshold

import "fmt"

// Adaptive is one adaptive threshold. BLBP keeps one per predicted target
// bit; the hashed perceptron keeps a single one.
type Adaptive struct {
	theta int
	tc    int
	speed int
	min   int
	max   int
}

// New returns an adaptive threshold starting at init, moving one step every
// speed net events, clamped to [min, max].
func New(init, speed, min, max int) *Adaptive {
	if speed <= 0 {
		panic("threshold: New with non-positive speed")
	}
	if min > max || init < min || init > max {
		panic("threshold: New with inconsistent bounds")
	}
	return &Adaptive{theta: init, speed: speed, min: min, max: max}
}

// Theta returns the current threshold.
func (a *Adaptive) Theta() int { return a.theta }

// Observe records one training event. mispredicted reports whether the
// prediction was wrong; lowConfidence reports whether |output| was below the
// threshold (i.e. training happened despite a correct prediction). Following
// Seznec, mispredictions push θ up and correct low-confidence updates push
// it down.
func (a *Adaptive) Observe(mispredicted, lowConfidence bool) {
	switch {
	case mispredicted:
		a.tc++
		if a.tc >= a.speed {
			a.tc = 0
			if a.theta < a.max {
				a.theta++
			}
		}
	case lowConfidence:
		a.tc--
		if a.tc <= -a.speed {
			a.tc = 0
			if a.theta > a.min {
				a.theta--
			}
		}
	}
}

// State returns the serializable adaptation state: the current threshold
// and the net-event counter. The speed/min/max parameters are configuration,
// not state, and are reconstructed by New on restore.
func (a *Adaptive) State() (theta, tc int) { return a.theta, a.tc }

// SetState reinstates a (theta, tc) pair captured by State, validating it
// against this threshold's configured bounds.
func (a *Adaptive) SetState(theta, tc int) error {
	if theta < a.min || theta > a.max {
		return fmt.Errorf("threshold: theta %d outside [%d,%d]", theta, a.min, a.max)
	}
	if tc <= -a.speed || tc >= a.speed {
		return fmt.Errorf("threshold: counter %d outside (%d,%d)", tc, -a.speed, a.speed)
	}
	a.theta = theta
	a.tc = tc
	return nil
}

// Reset restores the threshold to the given value and clears the counter.
func (a *Adaptive) Reset(to int) {
	if to < a.min {
		to = a.min
	}
	if to > a.max {
		to = a.max
	}
	a.theta = to
	a.tc = 0
}
