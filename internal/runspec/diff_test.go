package runspec

import (
	"reflect"
	"testing"

	"blbp/internal/core"
	"blbp/internal/experiments"
	"blbp/internal/predictor"
)

// mergeBack applies a diff to a FRESH default config and returns the
// result. The freshness matters: decoding a slice override reuses the
// target's backing array, so merging onto one long-lived default value
// would let each merge corrupt the next comparison.
func mergeBack(t *testing.T, diff []byte) any {
	t.Helper()
	got, err := predictor.MergeJSON(core.DefaultConfig(), diff)
	if err != nil {
		t.Fatalf("merging diff %s: %v", diff, err)
	}
	return got
}

// TestDiffConfigRoundTrip: diffConfig's contract is that merging its
// output onto the default reproduces the modified config exactly —
// including nested structs and wholesale-replaced slices.
func TestDiffConfigRoundTrip(t *testing.T) {
	mod := core.DefaultConfig()
	mod.GlobalTargetBits = 0
	mod.IBTB.Assoc = 8
	mod.IBTB.Sets = 512
	mod.UseHierarchicalIBTB = true
	mod.GEHLLengths = []int{1, 2, 4, 8, 16, 32, 64}

	diff, err := diffConfig(core.DefaultConfig(), mod)
	if err != nil {
		t.Fatal(err)
	}
	if got := mergeBack(t, diff); !reflect.DeepEqual(got, mod) {
		t.Errorf("merge(default, diff) = %+v, want %+v\ndiff: %s", got, mod, diff)
	}
}

// TestDiffConfigEqualIsNil: no differences must yield no override object,
// so sweep arms at the default config carry no config noise in plan JSON.
func TestDiffConfigEqualIsNil(t *testing.T) {
	diff, err := diffConfig(core.DefaultConfig(), core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if diff != nil {
		t.Errorf("diff of equal configs = %s, want nil", diff)
	}
}

func TestDiffConfigRejectsMismatches(t *testing.T) {
	if _, err := diffConfig(core.DefaultConfig(), GShareConfig{}); err == nil {
		t.Error("diff across distinct types accepted")
	}
	if _, err := diffConfig(42, 43); err == nil {
		t.Error("diff of non-structs accepted")
	}
}

// TestBuiltinSweepDiffsReconstruct: every variant the built-in sweep plans
// serialize must survive the diff→merge lowering bit for bit, or the plan
// would silently simulate a different configuration than the bespoke
// drivers did.
func TestBuiltinSweepDiffsReconstruct(t *testing.T) {
	sweeps := map[string][]experiments.BLBPVariant{
		"fig10":      experiments.AblationVariants(),
		"fig11":      experiments.AssocVariants(nil),
		"arrays":     experiments.ArraysVariants(nil),
		"targetbits": experiments.TargetBitsVariants(),
	}
	for sweep, variants := range sweeps {
		for _, v := range variants {
			diff := mustDiffBLBP(v.Config)
			if got := mergeBack(t, diff); !reflect.DeepEqual(got, v.Config) {
				t.Errorf("%s/%s: reconstructed config differs\ndiff: %s", sweep, v.Name, diff)
			}
		}
	}
}
