package runspec

import (
	"encoding/json"
	"fmt"
	"strings"

	"blbp/internal/workload"
	"blbp/internal/wspec"
)

// SuiteSpec is one entry of Suite.Specs: either the name of a workload spec
// (a built-in suite entry, or one registered on the executor — the CLI's
// -workload-spec flag) or an inline wspec.WorkloadSpec. The JSON form
// distinguishes them by shape: a string is a name, an object is an inline
// spec.
type SuiteSpec struct {
	// Name references a workload spec by name; empty when Inline is set.
	Name string
	// Inline embeds a full workload spec; nil when Name is set.
	Inline *wspec.WorkloadSpec
}

// MarshalJSON renders the entry in its declarative form (string or object),
// so plans with spec suites dump and memoize faithfully.
func (s SuiteSpec) MarshalJSON() ([]byte, error) {
	if s.Inline != nil {
		return json.Marshal(s.Inline)
	}
	return json.Marshal(s.Name)
}

// UnmarshalJSON accepts a name string or an inline spec object. Inline
// objects are decoded strictly (unknown fields rejected) — the outer plan
// decoder's DisallowUnknownFields does not reach through a custom
// unmarshaler.
func (s *SuiteSpec) UnmarshalJSON(data []byte) error {
	trimmed := strings.TrimLeft(string(data), " \t\r\n")
	if strings.HasPrefix(trimmed, `"`) {
		s.Inline = nil
		return json.Unmarshal(data, &s.Name)
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var ws wspec.WorkloadSpec
	if err := dec.Decode(&ws); err != nil {
		return err
	}
	s.Name = ""
	s.Inline = &ws
	return nil
}

// validateSpecs checks a spec-listed suite: entries are well-formed and the
// list excludes the population selectors it replaces.
func (s Suite) validateSpecs() error {
	if s.Kind != "" {
		return fmt.Errorf("runspec: a suite listing specs excludes \"kind\"")
	}
	if len(s.Salts) > 0 {
		return fmt.Errorf("runspec: a suite listing specs excludes \"salts\"")
	}
	if len(s.Workloads) > 0 {
		return fmt.Errorf("runspec: a suite listing specs excludes \"workloads\" (list the specs themselves)")
	}
	seen := map[string]bool{}
	for i, sp := range s.Specs {
		name := sp.Name
		if sp.Inline != nil {
			if err := sp.Inline.Validate(); err != nil {
				return fmt.Errorf("runspec: suite spec %d: %v", i, err)
			}
			name = sp.Inline.Name
		} else if sp.Name == "" {
			return fmt.Errorf("runspec: suite spec %d: empty workload name", i)
		}
		if seen[name] {
			return fmt.Errorf("runspec: suite spec %d: duplicate workload %q", i, name)
		}
		seen[name] = true
	}
	return nil
}

// RegisterWorkload adds a named workload spec to the executor's session
// registry, where plans' spec suites (and the built-in names) resolve. The
// CLI's -workload-spec flag feeds this. Re-registering a name or shadowing
// a built-in is an error — plans would silently change meaning.
func (x *Exec) RegisterWorkload(ws wspec.WorkloadSpec) error {
	if err := ws.Validate(); err != nil {
		return err
	}
	if _, ok := x.registry[ws.Name]; ok {
		return fmt.Errorf("runspec: workload spec %q already registered", ws.Name)
	}
	if _, ok := wspec.Lookup(ws.Name, 1); ok {
		return fmt.Errorf("runspec: workload spec %q shadows a built-in workload", ws.Name)
	}
	if x.registry == nil {
		x.registry = map[string]wspec.WorkloadSpec{}
	}
	x.registry[ws.Name] = ws
	return nil
}

// resolveSpecSuite compiles a spec-listed suite into its single draw.
func (x *Exec) resolveSpecSuite(s Suite) ([][]workload.Spec, error) {
	base := s.Base
	if base == 0 {
		base = x.base
	}
	specs := make([]workload.Spec, len(s.Specs))
	for i, sp := range s.Specs {
		ws := sp.Inline
		if ws == nil {
			if reg, ok := x.registry[sp.Name]; ok {
				ws = &reg
			} else if built, ok := wspec.Lookup(sp.Name, base); ok {
				ws = &built
			} else {
				return nil, fmt.Errorf("runspec: suite spec %d: unknown workload %q (not a built-in or registered spec)", i, sp.Name)
			}
		}
		compiled, err := wspec.Compile(*ws)
		if err != nil {
			return nil, fmt.Errorf("runspec: suite spec %d: %v", i, err)
		}
		specs[i] = compiled
	}
	return [][]workload.Spec{specs}, nil
}
