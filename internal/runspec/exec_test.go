package runspec

import (
	"bytes"
	"strings"
	"testing"

	"blbp/internal/experiments"
)

// miniWorkloads is a three-workload subset of the standard suite, small
// enough for behavioral tests at reduced instruction budgets.
var miniWorkloads = []string{"252.eon", "400.perlbench-1", "403.gcc-1"}

// miniPlan is a two-pass sweep over the subset: the shared-substrate pass
// plus a renamed config-override arm, rendered as the generic MPKI table.
func miniPlan(base int64) *Plan {
	return &Plan{
		Name:  "mini",
		Suite: Suite{Base: base, Workloads: miniWorkloads},
		Passes: []Pass{
			{Predictors: []PredictorSpec{{Type: "blbp"}, {Type: "ittage"}}},
			{Predictors: []PredictorSpec{
				{Type: "blbp", Name: "no-target-bits", Config: []byte(`{"GlobalTargetBits":0}`)},
			}},
		},
		Outputs: []Output{{Table: "mpki"}},
	}
}

func renderCSV(t *testing.T, out RenderedOutput) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := out.Table.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestExecSubsetSuite runs a user-style plan over a workload subset and
// checks the assembled table covers exactly the requested population.
func TestExecSubsetSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates three workloads")
	}
	plan := miniPlan(20_000)
	outs, err := NewExec(experiments.NewRunner(0), 600_000).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("got %d outputs, want 1", len(outs))
	}
	out := outs[0]
	if out.Name != "mpki" || out.File != "mpki" {
		t.Errorf("output identity %q/%q, want mpki/mpki (File defaults to Table)", out.Name, out.File)
	}
	csv := string(renderCSV(t, out))
	for _, want := range append(append([]string{}, miniWorkloads...), "MEAN", "no-target-bits", "ittage", "blbp") {
		if !strings.Contains(csv, want) {
			t.Errorf("mpki CSV lacks %q:\n%s", want, csv)
		}
	}
	// The subset must not balloon to the full suite: 3 workloads + header +
	// MEAN is 5 CSV lines.
	if lines := strings.Count(strings.TrimSpace(csv), "\n") + 1; lines != 5 {
		t.Errorf("mpki CSV has %d lines, want 5:\n%s", lines, csv)
	}
}

// TestExecUnknownWorkloadFailsLoudly: a typo in suite.workloads must name
// the missing workload instead of silently shrinking the population.
func TestExecUnknownWorkloadFailsLoudly(t *testing.T) {
	plan := miniPlan(10_000)
	plan.Suite.Workloads = []string{"252.eon", "999.phantom"}
	_, err := NewExec(experiments.NewRunner(0), 600_000).Run(plan)
	if err == nil || !strings.Contains(err.Error(), "999.phantom") {
		t.Errorf("error = %v, want mention of 999.phantom", err)
	}
}

// TestExecMemoizesIdenticalRuns: two plans over byte-equal (suite, passes)
// must share one simulation, the property that makes the overall/fig8/fig9
// trio cost a single suite run.
func TestExecMemoizesIdenticalRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates three workloads")
	}
	x := NewExec(experiments.NewRunner(0), 600_000)
	a := miniPlan(15_000)
	b := miniPlan(15_000)
	b.Name = "mini-again"
	b.Outputs = []Output{{Table: "mpki", File: "other"}}
	ra, err := x.Run(a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := x.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(x.memo) != 1 {
		t.Errorf("%d memoized runs, want 1 (identical suite+passes must share)", len(x.memo))
	}
	if !bytes.Equal(renderCSV(t, ra[0]), renderCSV(t, rb[0])) {
		t.Error("shared run rendered different tables")
	}
	if rb[0].File != "other" {
		t.Errorf("File = %q, want the plan's override %q", rb[0].File, "other")
	}
	// A different instruction budget is a different simulation.
	c := miniPlan(10_000)
	if _, err := x.Run(c); err != nil {
		t.Fatal(err)
	}
	if len(x.memo) != 2 {
		t.Errorf("%d memoized runs after a re-scaled plan, want 2", len(x.memo))
	}
}

// TestExecSerialParallelByteIdentity: the scheduler's fan-out must not
// leak into results — a plan renders byte-identical tables on a serial
// and a heavily parallel runner.
func TestExecSerialParallelByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates three workloads twice")
	}
	plan := miniPlan(15_000)
	serial, err := NewExec(experiments.NewRunner(1), 600_000).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewExec(experiments.NewRunner(8), 600_000).Run(miniPlan(15_000))
	if err != nil {
		t.Fatal(err)
	}
	if s, p := renderCSV(t, serial[0]), renderCSV(t, parallel[0]); !bytes.Equal(s, p) {
		t.Errorf("serial and parallel runs differ:\n%s\nvs\n%s", s, p)
	}
}

// TestExecProbeOutput drives a probe-collecting output (latency) through
// the generic path on the subset suite.
func TestExecProbeOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates two workloads")
	}
	plan := &Plan{
		Name:    "mini-latency",
		Suite:   Suite{Base: 15_000, Workloads: miniWorkloads[:2]},
		Passes:  []Pass{{Predictors: []PredictorSpec{{Type: "blbp"}}}},
		Outputs: []Output{{Table: "latency"}},
	}
	outs, err := NewExec(experiments.NewRunner(0), 600_000).Run(plan)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := outs[0].Data.(LatencyResult)
	if !ok {
		t.Fatalf("latency Data has type %T", outs[0].Data)
	}
	if res.PctOneCycle <= 0 || res.PctOneCycle > 100 ||
		res.PctWithin4 < res.PctOneCycle || res.MeanCycles < 1 {
		t.Errorf("implausible latency result %+v", res)
	}
}
