package runspec

import (
	"bytes"
	"strings"
	"testing"
)

// TestBuiltinPlansValidateAndRoundTrip is the -dumpplan contract: every
// built-in plan validates, encodes, decodes back, and re-encodes to the
// same bytes, so a dumped plan re-run via -plan is the same plan.
func TestBuiltinPlansValidateAndRoundTrip(t *testing.T) {
	for _, name := range BuiltinNames() {
		plan, ok := Builtin(name)
		if !ok {
			t.Fatalf("Builtin(%q) missing despite being listed", name)
		}
		if plan.Name != name {
			t.Errorf("Builtin(%q).Name = %q", name, plan.Name)
		}
		if plan.Doc == "" {
			t.Errorf("%s: built-in plan has no doc line", name)
		}
		if err := plan.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		enc, err := plan.Encode()
		if err != nil {
			t.Errorf("%s: encode: %v", name, err)
			continue
		}
		dec, err := Decode(enc)
		if err != nil {
			t.Errorf("%s: decode of own encoding: %v", name, err)
			continue
		}
		enc2, err := dec.Encode()
		if err != nil {
			t.Errorf("%s: re-encode: %v", name, err)
			continue
		}
		if !bytes.Equal(enc, enc2) {
			t.Errorf("%s: encoding not stable across a decode round trip:\n%s\nvs\n%s", name, enc, enc2)
		}
	}
}

// TestBuiltinReturnsFreshPlans: callers (benchmarks, the CLI) mutate the
// returned plan, so Builtin must never hand out shared state.
func TestBuiltinReturnsFreshPlans(t *testing.T) {
	a, _ := Builtin("seeds")
	before, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	a.Suite.Salts = nil
	a.Passes = a.Passes[:1]
	a.Outputs[0].File = "clobbered"
	b, _ := Builtin("seeds")
	after, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("Builtin shares plan state across calls")
	}
}

func TestBuiltinUnknown(t *testing.T) {
	if _, ok := Builtin("no-such-plan"); ok {
		t.Error("Builtin accepted an unknown name")
	}
}

// TestDecodeRejects covers the validation surface: every malformed plan
// must fail with a diagnosable message, never decode silently.
func TestDecodeRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"no name", `{"outputs":[{"table":"mpki"}]}`, "needs a name"},
		{"unknown top-level field", `{"name":"x","bogus":1,"outputs":[{"table":"mpki"}]}`, "unknown field"},
		{"trailing data", `{"name":"x","outputs":[{"table":"table1"}]} {}`, "trailing data"},
		{"unknown suite kind", `{"name":"x","suite":{"kind":"exotic"},"outputs":[{"table":"table1"}]}`, "unknown suite kind"},
		{"negative base", `{"name":"x","suite":{"base":-5},"outputs":[{"table":"table1"}]}`, "negative suite base"},
		{"holdout with salts", `{"name":"x","suite":{"kind":"holdout","salts":["a","b"]},"outputs":[{"table":"table1"}]}`, "standard suite only"},
		{"empty pass", `{"name":"x","passes":[{"predictors":[]}],"outputs":[{"table":"mpki"}]}`, "no predictors"},
		{"unknown cond", `{"name":"x","passes":[{"cond":"oracle","predictors":[{"type":"blbp"}]}],"outputs":[{"table":"mpki"}]}`, "unknown conditional substrate"},
		{"bad cond config", `{"name":"x","passes":[{"cond_config":{"Nope":1},"predictors":[{"type":"blbp"}]}],"outputs":[{"table":"mpki"}]}`, "unknown field"},
		{"unknown predictor", `{"name":"x","passes":[{"predictors":[{"type":"psychic"}]}],"outputs":[{"table":"mpki"}]}`, "unknown type"},
		{"bad predictor config", `{"name":"x","passes":[{"predictors":[{"type":"blbp","config":{"Nope":1}}]}],"outputs":[{"table":"mpki"}]}`, "unknown field"},
		{"duplicate names", `{"name":"x","passes":[{"predictors":[{"type":"blbp"},{"type":"blbp"}]}],"outputs":[{"table":"mpki"}]}`, "duplicate predictor name"},
		{"consolidated with sibling", `{"name":"x","passes":[{"predictors":[{"type":"combined"},{"type":"blbp"}]}],"outputs":[{"table":"mpki"}]}`, "only predictor"},
		{"consolidated with cond", `{"name":"x","passes":[{"cond":"tage","predictors":[{"type":"combined"}]}],"outputs":[{"table":"mpki"}]}`, "provides the conditional predictor"},
		{"no outputs", `{"name":"x","passes":[{"predictors":[{"type":"blbp"}]}]}`, "no outputs"},
		{"unknown output", `{"name":"x","outputs":[{"table":"fig99"}]}`, "unknown output table"},
		{"output needs passes", `{"name":"x","outputs":[{"table":"mpki"}]}`, "needs simulation passes"},
		{"probe output multi-draw", `{"name":"x","suite":{"salts":["a","b"]},"passes":[{"predictors":[{"type":"blbp"}]}],"outputs":[{"table":"latency"}]}`, "single suite draw"},
		{"pathy file", `{"name":"x","passes":[{"predictors":[{"type":"blbp"}]}],"outputs":[{"table":"mpki","file":"../evil"}]}`, "bare name"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode([]byte(tc.json))
			if err == nil {
				t.Fatalf("plan accepted: %s", tc.json)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// FuzzRunPlanDecode: whatever bytes arrive, Decode must never panic, and
// anything it accepts must be a stable fixed point of Encode/Decode.
func FuzzRunPlanDecode(f *testing.F) {
	for _, name := range BuiltinNames() {
		plan, _ := Builtin(name)
		enc, err := plan.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte(`{"name":"x","suite":{"kind":"holdout"},"passes":[{"cond":"gshare","predictors":[{"type":"ittage"}]}],"outputs":[{"table":"mpki","file":"out"}]}`))
	f.Add([]byte(`{"name":"x","bogus":true}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Decode accepted a plan Validate rejects: %v", err)
		}
		enc, err := p.Encode()
		if err != nil {
			t.Fatalf("accepted plan does not encode: %v", err)
		}
		p2, err := Decode(enc)
		if err != nil {
			t.Fatalf("encoding of accepted plan does not decode: %v", err)
		}
		enc2, err := p2.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding unstable:\n%s\nvs\n%s", enc, enc2)
		}
	})
}
