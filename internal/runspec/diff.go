package runspec

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
)

// diffConfig returns the minimal JSON override object that, merged onto
// def by predictor.MergeJSON, reproduces got: exactly the exported fields
// whose values differ, with nested structs diffed recursively and slices
// (which merge by replacement) emitted wholesale. It returns nil when the
// two values are equal. Both values must share one struct type.
//
// The walk follows struct field order, so the emitted JSON is
// deterministic and never ranges over a map.
func diffConfig(def, got any) (json.RawMessage, error) {
	dv, gv := reflect.ValueOf(def), reflect.ValueOf(got)
	if dv.Type() != gv.Type() {
		return nil, fmt.Errorf("runspec: diffing distinct types %T and %T", def, got)
	}
	if dv.Kind() != reflect.Struct {
		return nil, fmt.Errorf("runspec: can only diff structs, not %T", def)
	}
	return diffStruct(dv, gv)
}

func diffStruct(dv, gv reflect.Value) (json.RawMessage, error) {
	var buf bytes.Buffer
	buf.WriteByte('{')
	n := 0
	t := dv.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			return nil, fmt.Errorf("runspec: config %s has unexported field %s", t, f.Name)
		}
		if tag := f.Tag.Get("json"); tag != "" {
			return nil, fmt.Errorf("runspec: config %s field %s has a json tag; diffConfig assumes field-name keys", t, f.Name)
		}
		df, gf := dv.Field(i), gv.Field(i)
		var frag json.RawMessage
		if f.Type.Kind() == reflect.Struct {
			sub, err := diffStruct(df, gf)
			if err != nil {
				return nil, err
			}
			frag = sub
		} else if !reflect.DeepEqual(df.Interface(), gf.Interface()) {
			b, err := json.Marshal(gf.Interface())
			if err != nil {
				return nil, fmt.Errorf("runspec: field %s.%s: %v", t, f.Name, err)
			}
			frag = b
		}
		if frag == nil {
			continue
		}
		if n > 0 {
			buf.WriteByte(',')
		}
		key, _ := json.Marshal(f.Name)
		buf.Write(key)
		buf.WriteByte(':')
		buf.Write(frag)
		n++
	}
	if n == 0 {
		return nil, nil
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}
