// Package runspec is the declarative experiment layer: a JSON-serializable
// RunPlan names a workload suite, a set of simulation passes (predictors by
// registry name with config overrides), and the tables to assemble from the
// results. One generic executor (Exec) drives experiments.Runner for every
// plan, so experiments are data — every built-in driver of cmd/experiments
// is a plan here, and user plans run the same path via `experiments -plan`.
//
// The layer sits on top of internal/experiments (the execution machinery
// and the paper's pass/variant definitions) and internal/predictor (the
// configurable registry). Assembled outputs are byte-identical to the
// bespoke drivers they replaced; the determinism rules of
// internal/analysis apply to this package.
package runspec

import (
	"encoding/json"
	"fmt"
	"strings"

	"blbp/internal/predictor"
)

// Plan is one declarative experiment: which suite to simulate, which
// passes to run over it, and which outputs to assemble from the results.
type Plan struct {
	// Name identifies the plan (and defaults the CSV file name of outputs
	// that don't set one).
	Name string `json:"name"`
	// Doc is a one-line description shown by -list.
	Doc string `json:"doc,omitempty"`
	// Suite selects and scales the workload population.
	Suite Suite `json:"suite"`
	// Passes lists the simulation passes. Plans whose outputs are pure
	// workload characterizations (table1, fig1, ...) may omit them.
	Passes []Pass `json:"passes,omitempty"`
	// Outputs names the tables to assemble, in emission order.
	Outputs []Output `json:"outputs"`
}

// Suite selects the workload population of a plan.
type Suite struct {
	// Kind is "standard" (the 88-workload paper suite, the default) or
	// "holdout" (the 12-workload CBP-4 analog).
	Kind string `json:"kind,omitempty"`
	// Base is the per-SHORT-trace instruction budget; 0 defers to the
	// executor's default (the CLI's -base flag).
	Base int64 `json:"base,omitempty"`
	// Salts lists independently seeded draws of the standard suite; empty
	// means the single default draw. Each salt re-seeds every workload
	// (same names and parameters, different random content).
	Salts []string `json:"salts,omitempty"`
	// Workloads restricts the suite to the named workloads (in suite
	// order); empty means all.
	Workloads []string `json:"workloads,omitempty"`
	// Specs lists the population explicitly as workload specs — registry
	// names (built-in or session-registered) and/or inline
	// wspec.WorkloadSpec objects, simulated in list order as one draw.
	// Mutually exclusive with Kind, Salts, and Workloads; Base still scales
	// named built-in entries.
	Specs []SuiteSpec `json:"specs,omitempty"`
}

// Pass is one simulation pass: a conditional predictor substrate and the
// indirect predictors sharing it.
type Pass struct {
	// Cond names the conditional predictor substrate (see CondNames);
	// empty means "hashed-perceptron".
	Cond string `json:"cond,omitempty"`
	// CondConfig overrides the substrate's default configuration. A pass
	// with overrides gets its own tape-sharing key, so it never reuses the
	// default substrate's cached conditional simulation.
	CondConfig json.RawMessage `json:"cond_config,omitempty"`
	// Predictors lists the pass's indirect predictors.
	Predictors []PredictorSpec `json:"predictors"`
}

// PredictorSpec instantiates one registered predictor inside a pass.
type PredictorSpec struct {
	// Type is the predictor registry name (see predictor.Names).
	Type string `json:"type"`
	// Name renames the instance in results (required when one pass — or
	// one plan — runs several instances of a type, e.g. a config sweep).
	Name string `json:"name,omitempty"`
	// Config overrides fields of the type's default configuration
	// (merged field-for-field; unknown fields are rejected).
	Config json.RawMessage `json:"config,omitempty"`
}

// Output names one table to assemble from the plan's results.
type Output struct {
	// Table is the registered output name (see OutputNames).
	Table string `json:"table"`
	// File is the CSV base name (no extension); empty defaults to Table.
	File string `json:"file,omitempty"`
}

// Decode parses and validates a plan from JSON. Unknown fields anywhere in
// the document are rejected.
func Decode(data []byte) (*Plan, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var p Plan
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("runspec: %v", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("runspec: trailing data after plan object")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Encode renders the plan as indented JSON (the -dumpplan format).
func (p *Plan) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("runspec: %v", err)
	}
	return append(b, '\n'), nil
}

// Validate checks the plan's static structure: names resolve against the
// predictor, conditional-substrate, and output registries, config
// overrides parse against their defaults, and structural constraints hold
// (consolidated predictors own their pass, probe-collecting outputs run on
// a single draw, display names are unique).
func (p *Plan) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("runspec: plan needs a name")
	}
	if err := p.Suite.validate(); err != nil {
		return err
	}
	seen := map[string]bool{}
	for pi, pass := range p.Passes {
		if len(pass.Predictors) == 0 {
			return fmt.Errorf("runspec: pass %d has no predictors", pi)
		}
		ce, ok := lookupCond(condNameOrDefault(pass.Cond))
		if !ok {
			return fmt.Errorf("runspec: pass %d: unknown conditional substrate %q (have %s)",
				pi, pass.Cond, strings.Join(CondNames(), ", "))
		}
		if _, err := ce.config(pass.CondConfig); err != nil {
			return fmt.Errorf("runspec: pass %d: %v", pi, err)
		}
		providers := 0
		for si, spec := range pass.Predictors {
			e, ok := predictor.Lookup(spec.Type)
			if !ok {
				return fmt.Errorf("runspec: pass %d predictor %d: unknown type %q (have %s)",
					pi, si, spec.Type, strings.Join(predictor.Names(), ", "))
			}
			if _, err := e.Config(spec.Config); err != nil {
				return fmt.Errorf("runspec: pass %d predictor %d: %v", pi, si, err)
			}
			if e.NewProvider != nil {
				providers++
			}
			name := spec.Name
			if name == "" {
				name = e.ResultName
			}
			if seen[name] {
				return fmt.Errorf("runspec: duplicate predictor name %q; set a unique \"name\" on each instance", name)
			}
			seen[name] = true
		}
		if providers > 0 {
			if len(pass.Predictors) != 1 {
				return fmt.Errorf("runspec: pass %d: a consolidated predictor must be the pass's only predictor", pi)
			}
			if pass.Cond != "" || len(pass.CondConfig) > 0 {
				return fmt.Errorf("runspec: pass %d: a consolidated predictor provides the conditional predictor; drop \"cond\"", pi)
			}
		}
	}
	if len(p.Outputs) == 0 {
		return fmt.Errorf("runspec: plan has no outputs")
	}
	for _, out := range p.Outputs {
		oe, ok := lookupOutput(out.Table)
		if !ok {
			return fmt.Errorf("runspec: unknown output table %q (have %s)",
				out.Table, strings.Join(OutputNames(), ", "))
		}
		if oe.needsPasses && len(p.Passes) == 0 {
			return fmt.Errorf("runspec: output %q needs simulation passes, plan has none", out.Table)
		}
		if oe.needsProbes && p.Suite.draws() > 1 {
			return fmt.Errorf("runspec: output %q collects per-instance probes and runs on a single suite draw", out.Table)
		}
		if strings.ContainsAny(out.File, "/\\") {
			return fmt.Errorf("runspec: output file %q must be a bare name", out.File)
		}
	}
	return nil
}

func (s Suite) validate() error {
	if len(s.Specs) > 0 {
		if err := s.validateSpecs(); err != nil {
			return err
		}
		if s.Base < 0 {
			return fmt.Errorf("runspec: negative suite base")
		}
		return nil
	}
	switch s.Kind {
	case "", "standard":
	case "holdout":
		if s.draws() > 1 || (len(s.Salts) == 1 && s.Salts[0] != "") {
			return fmt.Errorf("runspec: seeded draws are defined for the standard suite only")
		}
	default:
		return fmt.Errorf("runspec: unknown suite kind %q (want \"standard\" or \"holdout\")", s.Kind)
	}
	if s.Base < 0 {
		return fmt.Errorf("runspec: negative suite base")
	}
	return nil
}

// draws returns the number of suite draws the plan simulates.
func (s Suite) draws() int {
	if len(s.Salts) == 0 {
		return 1
	}
	return len(s.Salts)
}

// displayName returns the name a spec's results appear under.
func displayName(spec PredictorSpec) string {
	if spec.Name != "" {
		return spec.Name
	}
	if e, ok := predictor.Lookup(spec.Type); ok {
		return e.ResultName
	}
	return spec.Type
}
