package runspec

import (
	"fmt"

	"blbp/internal/experiments"
	"blbp/internal/predictor"
	"blbp/internal/report"
	"blbp/internal/stats"
)

// Aggregate result types of the built-in outputs (the Data field of their
// RenderedOutput). They mirror the tables the paper's evaluation reports.

// Fig10Row is one ablation arm's result.
type Fig10Row struct {
	Variant string
	// MeanMPKI is the suite-mean MPKI of the variant.
	MeanMPKI float64
	// PctVsITTAGE is the percent MPKI reduction relative to ITTAGE
	// (positive = better than ITTAGE), the paper's Figure 10 y-axis.
	PctVsITTAGE float64
}

// Fig11Row is one associativity point ("ittage" labels the reference).
type Fig11Row struct {
	Label    string
	MeanMPKI float64
}

// HierarchyResult aggregates the IBTB-hierarchy experiment.
type HierarchyResult struct {
	// Mono64 is the paper's monolithic 64-way IBTB.
	Mono64MPKI float64
	// Mono8 is a monolithic 8-way IBTB at the same 4096 entries (the cheap
	// but inaccurate alternative, Fig. 11's low end).
	Mono8MPKI float64
	// Hier is the two-level L1(8-way)+L2(16-way) hierarchy.
	HierMPKI float64
	// HierL2ProbeRate is the mean fraction of predictions that needed the
	// hierarchy's second level.
	HierL2ProbeRate float64
}

// CottageResult aggregates the COTTAGE comparison.
type CottageResult struct {
	// HPCondAcc / TAGECondAcc are the conditional accuracies of the two
	// conditional predictors.
	HPCondAcc   float64
	TAGECondAcc float64
	// Indirect MPKI of each pairing's indirect side.
	BLBPMPKI   float64
	ITTAGEMPKI float64
}

// LatencyResult aggregates the §3.7 prediction-latency analysis.
type LatencyResult struct {
	// PctOneCycle is the fraction of predictions with <= 5 candidates
	// (one cycle at 5 parallel cosine-similarity units).
	PctOneCycle float64
	// PctWithin4 is the fraction within 4 cycles (<= 20 candidates).
	PctWithin4 float64
	// MeanCycles is the average ceil(n/5) over all predictions.
	MeanCycles float64
}

// CombinedResult aggregates the consolidation experiment.
type CombinedResult struct {
	// Dedicated: hashed perceptron for conditionals + dedicated BLBP.
	DedicatedCondAcc      float64
	DedicatedIndirectMPKI float64
	DedicatedBits         int
	// Consolidated: one BLBP structure serving both roles (§6 future work).
	ConsolidatedCondAcc      float64
	ConsolidatedIndirectMPKI float64
	ConsolidatedBits         int
}

// SeedsRow is one seed draw's headline numbers.
type SeedsRow struct {
	Salt        string
	ITTAGEMean  float64
	BLBPMean    float64
	PctVsITTAGE float64
}

// standardOrder is the paper's presentation order for the §5.1 table and
// the per-benchmark figures.
func standardOrder() []string {
	return []string{experiments.NameBTB, experiments.NameVPC, experiments.NameITTAGE, experiments.NameBLBP}
}

// meanMPKI is the suite-mean MPKI of one predictor over the rows.
func meanMPKI(rows []experiments.WorkloadResult, name string) float64 {
	xs := make([]float64, len(rows))
	for i, r := range rows {
		xs[i] = r.MPKI(name)
	}
	return stats.Mean(xs)
}

func (c *OutputContext) overallData() (experiments.OverallData, error) {
	rows, err := c.rows()
	if err != nil {
		return experiments.OverallData{}, err
	}
	if err := c.requireNames(rows, standardOrder()); err != nil {
		return experiments.OverallData{}, err
	}
	return experiments.OverallData{Rows: rows, Predictors: standardOrder()}, nil
}

func init() {
	registerOutput(outputEntry{
		name: "table1", doc: "workload suite by source category (paper Table 1)",
		render: tableOnly(func(c *OutputContext) (*report.Table, any, error) {
			return experiments.Table1(c.suite()), nil, nil
		}),
	})
	registerOutput(outputEntry{
		name: "table2", doc: "predictor configurations and hardware budgets (paper Table 2)",
		render: tableOnly(func(c *OutputContext) (*report.Table, any, error) {
			return experiments.Table2(), experiments.Budgets(), nil
		}),
	})
	registerOutput(outputEntry{
		name: "fig1", doc: "branch mix per kilo-instruction (paper Figure 1)",
		render: tableOnly(func(c *OutputContext) (*report.Table, any, error) {
			tb, rows := c.exec.Runner().Fig1(c.suite())
			return tb, rows, nil
		}),
	})
	registerOutput(outputEntry{
		name: "fig6", doc: "polymorphism per workload (paper Figure 6)",
		render: tableOnly(func(c *OutputContext) (*report.Table, any, error) {
			tb, rows := c.exec.Runner().Fig6(c.suite())
			return tb, rows, nil
		}),
	})
	registerOutput(outputEntry{
		name: "fig7", doc: "target-count distribution CCDF (paper Figure 7)",
		render: tableOnly(func(c *OutputContext) (*report.Table, any, error) {
			tb, points := c.exec.Runner().Fig7(c.suite(), 64)
			return tb, points, nil
		}),
	})
	registerOutput(outputEntry{
		name: "overall", doc: "suite-mean MPKI of the four standard predictors (§5.1)",
		needsPasses: true,
		render: tableOnly(func(c *OutputContext) (*report.Table, any, error) {
			data, err := c.overallData()
			if err != nil {
				return nil, nil, err
			}
			return experiments.OverallTable(data), data, nil
		}),
	})
	registerOutput(outputEntry{
		name: "holdout", doc: "the §5.1 table over the holdout suite (CBP-4 analog)",
		needsPasses: true,
		render: tableOnly(func(c *OutputContext) (*report.Table, any, error) {
			data, err := c.overallData()
			if err != nil {
				return nil, nil, err
			}
			tb := experiments.OverallTable(data)
			tb.Title = "Holdout suite (CBP-4 analog): " + tb.Title
			return tb, data, nil
		}),
	})
	registerOutput(outputEntry{
		name: "fig8", doc: "per-benchmark MPKI, BTB omitted (paper Figure 8)",
		needsPasses: true,
		render: tableOnly(func(c *OutputContext) (*report.Table, any, error) {
			data, err := c.overallData()
			if err != nil {
				return nil, nil, err
			}
			return experiments.Fig8(data), data, nil
		}),
	})
	registerOutput(outputEntry{
		name: "fig9", doc: "relative MPKI share per benchmark (paper Figure 9)",
		needsPasses: true,
		render: tableOnly(func(c *OutputContext) (*report.Table, any, error) {
			data, err := c.overallData()
			if err != nil {
				return nil, nil, err
			}
			return experiments.Fig9(data), data, nil
		}),
	})
	registerOutput(outputEntry{
		name: "fig10", doc: "optimization ablation vs ITTAGE (paper Figure 10)",
		needsPasses: true,
		render:      renderFig10,
	})
	registerOutput(outputEntry{
		name: "fig11", doc: "IBTB associativity sweep (paper Figure 11)",
		needsPasses: true,
		render:      renderFig11,
	})
	registerOutput(outputEntry{
		name: "extras", doc: "extended related-work baselines (§2.2 lineage)",
		needsPasses: true,
		render:      tableOnly(renderExtras),
	})
	registerOutput(outputEntry{
		name: "arrays", doc: "weight-SRAM array-count sweep at ~constant storage",
		needsPasses: true,
		render:      tableOnly(renderArrays),
	})
	registerOutput(outputEntry{
		name: "targetbits", doc: "target bits folded into BLBP's global history",
		needsPasses: true,
		render:      tableOnly(renderTargetBits),
	})
	registerOutput(outputEntry{
		name: "combined", doc: "one BLBP structure for conditional + indirect prediction (§6)",
		needsPasses: true,
		render:      tableOnly(renderCombined),
	})
	registerOutput(outputEntry{
		name: "hierarchy", doc: "two-level IBTB hierarchy vs 64-way monolith (§6)",
		needsPasses: true, needsProbes: true,
		render: tableOnly(renderHierarchy),
	})
	registerOutput(outputEntry{
		name: "cottage", doc: "COTTAGE (TAGE + ITTAGE) vs hashed perceptron + BLBP (§2.2)",
		needsPasses: true,
		render:      tableOnly(renderCottage),
	})
	registerOutput(outputEntry{
		name: "latency", doc: "BLBP selection latency at 5 cosine similarities per cycle (§3.7)",
		needsPasses: true, needsProbes: true,
		render: tableOnly(renderLatency),
	})
	registerOutput(outputEntry{
		name: "seeds", doc: "seed sensitivity of the §5.1 headline across suite draws",
		needsPasses: true,
		render:      tableOnly(renderSeeds),
	})
	registerOutput(outputEntry{
		name: "mpki", doc: "generic per-workload MPKI table of every predictor in the plan",
		needsPasses: true,
		render:      tableOnly(renderMPKI),
	})
}

func renderFig10(c *OutputContext) (*report.Table, *report.Chart, any, error) {
	rows, err := c.rows()
	if err != nil {
		return nil, nil, nil, err
	}
	names, _ := c.variants(experiments.NameITTAGE)
	if err := c.requireNames(rows, append(append([]string{}, names...), experiments.NameITTAGE)); err != nil {
		return nil, nil, nil, err
	}
	ittageMean := meanMPKI(rows, experiments.NameITTAGE)
	out := make([]Fig10Row, 0, len(names))
	tb := report.NewTable(
		"Figure 10: effect of optimizations (percent MPKI reduction vs ITTAGE)",
		"variant", "mean MPKI", "% vs ITTAGE",
	)
	ch := report.NewChart("Figure 10 (bars = mean MPKI; lower is better)")
	for _, name := range names {
		mean := meanMPKI(rows, name)
		pct := stats.PercentChange(ittageMean, mean)
		out = append(out, Fig10Row{Variant: name, MeanMPKI: mean, PctVsITTAGE: pct})
		tb.AddRowf(name, mean, pct)
		ch.Add(name, mean)
	}
	tb.AddRowf("ittage (reference)", ittageMean, 0.0)
	return tb, ch, out, nil
}

func renderFig11(c *OutputContext) (*report.Table, *report.Chart, any, error) {
	rows, err := c.rows()
	if err != nil {
		return nil, nil, nil, err
	}
	names, _ := c.variants(experiments.NameITTAGE)
	if err := c.requireNames(rows, append(append([]string{}, names...), experiments.NameITTAGE)); err != nil {
		return nil, nil, nil, err
	}
	tb := report.NewTable(
		"Figure 11: effect of IBTB associativity (4096 entries)",
		"configuration", "mean MPKI",
	)
	ch := report.NewChart("Figure 11 (bars = mean MPKI; lower is better)")
	out := make([]Fig11Row, 0, len(names)+1)
	for _, name := range names {
		mean := meanMPKI(rows, name)
		out = append(out, Fig11Row{Label: name, MeanMPKI: mean})
		tb.AddRowf(name, mean)
		ch.Add(name, mean)
	}
	ittageMean := meanMPKI(rows, experiments.NameITTAGE)
	out = append(out, Fig11Row{Label: "ittage", MeanMPKI: ittageMean})
	tb.AddRowf("ittage", ittageMean)
	ch.Add("ittage", ittageMean)
	return tb, ch, out, nil
}

func renderExtras(c *OutputContext) (*report.Table, any, error) {
	rows, err := c.rows()
	if err != nil {
		return nil, nil, err
	}
	order := c.names()
	if err := c.requireNames(rows, append(append([]string{}, order...), experiments.NameITTAGE)); err != nil {
		return nil, nil, err
	}
	means := make(map[string]float64, len(order))
	for _, name := range order {
		means[name] = meanMPKI(rows, name)
	}
	tb := report.NewTable(
		"Extended baselines (§2.2 lineage): suite-mean indirect MPKI",
		"predictor", "mean MPKI", "vs ITTAGE %",
	)
	for _, name := range order {
		tb.AddRowf(name, means[name], stats.PercentChange(means[experiments.NameITTAGE], means[name]))
	}
	return tb, means, nil
}

func renderArrays(c *OutputContext) (*report.Table, any, error) {
	rows, err := c.rows()
	if err != nil {
		return nil, nil, err
	}
	names, specs := c.variants(experiments.NameITTAGE)
	if err := c.requireNames(rows, append(append([]string{}, names...), experiments.NameITTAGE)); err != nil {
		return nil, nil, err
	}
	tb := report.NewTable(
		"Extension: number of weight SRAM arrays (SNIP used 44, BLBP 8) at ~constant storage",
		"configuration", "mean MPKI", "storage (KB)",
	)
	means := map[string]float64{}
	for i, name := range names {
		means[name] = meanMPKI(rows, name)
		bits, err := specStorageBits(specs[i])
		if err != nil {
			return nil, nil, err
		}
		tb.AddRowf(name, means[name], stats.FormatKB(bits))
	}
	means[experiments.NameITTAGE] = meanMPKI(rows, experiments.NameITTAGE)
	tb.AddRowf("ittage", means[experiments.NameITTAGE], "")
	return tb, means, nil
}

func renderTargetBits(c *OutputContext) (*report.Table, any, error) {
	rows, err := c.rows()
	if err != nil {
		return nil, nil, err
	}
	names, _ := c.variants(experiments.NameITTAGE)
	if err := c.requireNames(rows, append(append([]string{}, names...), experiments.NameITTAGE)); err != nil {
		return nil, nil, err
	}
	tb := report.NewTable(
		"Extension: target bits folded into BLBP's global history (0 = paper-literal conditional-only GHIST)",
		"configuration", "mean MPKI",
	)
	means := map[string]float64{}
	for _, name := range names {
		means[name] = meanMPKI(rows, name)
		tb.AddRowf(name, means[name])
	}
	means[experiments.NameITTAGE] = meanMPKI(rows, experiments.NameITTAGE)
	tb.AddRowf("ittage", means[experiments.NameITTAGE])
	return tb, means, nil
}

func renderCombined(c *OutputContext) (*report.Table, any, error) {
	rows, err := c.rows()
	if err != nil {
		return nil, nil, err
	}
	if err := c.requireNames(rows, []string{experiments.NameBLBP, "combined"}); err != nil {
		return nil, nil, err
	}
	var out CombinedResult
	dAcc := make([]float64, len(rows))
	dMPKI := make([]float64, len(rows))
	cAcc := make([]float64, len(rows))
	cMPKI := make([]float64, len(rows))
	for i, r := range rows {
		dAcc[i] = r.Results[experiments.NameBLBP].CondAccuracy()
		dMPKI[i] = r.MPKI(experiments.NameBLBP)
		cAcc[i] = r.Results["combined"].CondAccuracy()
		cMPKI[i] = r.MPKI("combined")
	}
	out.DedicatedCondAcc = stats.Mean(dAcc)
	out.DedicatedIndirectMPKI = stats.Mean(dMPKI)
	out.ConsolidatedCondAcc = stats.Mean(cAcc)
	out.ConsolidatedIndirectMPKI = stats.Mean(cMPKI)
	out.DedicatedBits, out.ConsolidatedBits, err = combinedStorage(c.plan)
	if err != nil {
		return nil, nil, err
	}

	tb := report.NewTable(
		"Extension (§6 future work): one BLBP structure for conditional + indirect prediction",
		"configuration", "cond accuracy", "indirect MPKI", "storage (KB)",
	)
	tb.AddRowf("dedicated (HP + BLBP)", out.DedicatedCondAcc, out.DedicatedIndirectMPKI,
		stats.FormatKB(out.DedicatedBits))
	tb.AddRowf("consolidated (combined BLBP)", out.ConsolidatedCondAcc, out.ConsolidatedIndirectMPKI,
		stats.FormatKB(out.ConsolidatedBits))
	return tb, out, nil
}

func renderHierarchy(c *OutputContext) (*report.Table, any, error) {
	rows, err := c.rows()
	if err != nil {
		return nil, nil, err
	}
	if err := c.requireNames(rows, []string{"mono-64way", "mono-8way", "hierarchy"}); err != nil {
		return nil, nil, err
	}
	var res HierarchyResult
	res.Mono64MPKI = meanMPKI(rows, "mono-64way")
	res.Mono8MPKI = meanMPKI(rows, "mono-8way")
	res.HierMPKI = meanMPKI(rows, "hierarchy")
	rates := make([]float64, 0, len(rows))
	for w := range rows {
		inst, err := c.probe(w, "hierarchy")
		if err != nil {
			return nil, nil, err
		}
		h, ok := inst.(interface{ L2ProbeRate() float64 })
		if !ok {
			return nil, nil, fmt.Errorf("predictor %q exposes no L2 probe rate", "hierarchy")
		}
		rates = append(rates, h.L2ProbeRate())
	}
	res.HierL2ProbeRate = stats.Mean(rates)

	tb := report.NewTable(
		"Extension (§6 future work): avoiding 64-way IBTB associativity with a two-level hierarchy",
		"configuration", "mean MPKI", "L2 probe rate",
	)
	tb.AddRowf("monolithic 64-way (paper)", res.Mono64MPKI, "")
	tb.AddRowf("monolithic 8-way", res.Mono8MPKI, "")
	tb.AddRowf("hierarchy 8-way L1 + 16-way L2", res.HierMPKI, res.HierL2ProbeRate)
	return tb, res, nil
}

func renderCottage(c *OutputContext) (*report.Table, any, error) {
	rows, err := c.rows()
	if err != nil {
		return nil, nil, err
	}
	if err := c.requireNames(rows, []string{experiments.NameBLBP, experiments.NameITTAGE}); err != nil {
		return nil, nil, err
	}
	var res CottageResult
	hpAcc := make([]float64, len(rows))
	tgAcc := make([]float64, len(rows))
	blbp := make([]float64, len(rows))
	itt := make([]float64, len(rows))
	for i, r := range rows {
		hpAcc[i] = r.Results[experiments.NameBLBP].CondAccuracy()
		tgAcc[i] = r.Results[experiments.NameITTAGE].CondAccuracy()
		blbp[i] = r.MPKI(experiments.NameBLBP)
		itt[i] = r.MPKI(experiments.NameITTAGE)
	}
	res.HPCondAcc = stats.Mean(hpAcc)
	res.TAGECondAcc = stats.Mean(tgAcc)
	res.BLBPMPKI = stats.Mean(blbp)
	res.ITTAGEMPKI = stats.Mean(itt)

	tb := report.NewTable(
		"Extension (§2.2): COTTAGE (TAGE + ITTAGE) vs hashed perceptron + BLBP",
		"pairing", "cond accuracy", "indirect MPKI",
	)
	tb.AddRowf("hashed perceptron + BLBP", res.HPCondAcc, res.BLBPMPKI)
	tb.AddRowf("COTTAGE (TAGE + ITTAGE)", res.TAGECondAcc, res.ITTAGEMPKI)
	return tb, res, nil
}

func renderLatency(c *OutputContext) (*report.Table, any, error) {
	rows, err := c.rows()
	if err != nil {
		return nil, nil, err
	}
	var hist []int64
	for w := range rows {
		inst, err := c.probe(w, experiments.NameBLBP)
		if err != nil {
			return nil, nil, err
		}
		rec, ok := inst.(interface{ CandidateHistogram() []int64 })
		if !ok {
			return nil, nil, fmt.Errorf("predictor %q exposes no candidate histogram", experiments.NameBLBP)
		}
		h := rec.CandidateHistogram()
		if hist == nil {
			hist = make([]int64, len(h))
		}
		for i, v := range h {
			hist[i] += v
		}
	}
	var total, oneCycle, within4, cycleSum int64
	for n, v := range hist {
		total += v
		cycles := int64((n + 4) / 5)
		if cycles == 0 {
			cycles = 1 // an empty candidate set still costs the probe
		}
		if cycles <= 1 {
			oneCycle += v
		}
		if cycles <= 4 {
			within4 += v
		}
		cycleSum += cycles * v
	}
	var res LatencyResult
	if total > 0 {
		res.PctOneCycle = 100 * float64(oneCycle) / float64(total)
		res.PctWithin4 = 100 * float64(within4) / float64(total)
		res.MeanCycles = float64(cycleSum) / float64(total)
	}
	tb := report.NewTable(
		"Extension (§3.7): BLBP selection latency at 5 cosine similarities per cycle",
		"metric", "value",
	)
	tb.AddRowf("% predictions in 1 cycle (paper: over half)", res.PctOneCycle)
	tb.AddRowf("% predictions within 4 cycles (paper: ~90%)", res.PctWithin4)
	tb.AddRowf("mean cycles per prediction", res.MeanCycles)
	return tb, res, nil
}

func renderSeeds(c *OutputContext) (*report.Table, any, error) {
	if c.results == nil {
		return nil, nil, fmt.Errorf("plan ran no passes")
	}
	salts := c.plan.Suite.Salts
	if len(salts) == 0 {
		salts = []string{""}
	}
	rows := make([]SeedsRow, 0, len(salts))
	tb := report.NewTable(
		"Extension: seed sensitivity of the §5.1 headline (independent suite draws)",
		"seed draw", "ittage MPKI", "blbp MPKI", "blbp vs ittage %",
	)
	for i, salt := range salts {
		if err := c.requireNames(c.results[i], []string{experiments.NameITTAGE, experiments.NameBLBP}); err != nil {
			return nil, nil, err
		}
		data := experiments.OverallData{Rows: c.results[i], Predictors: standardOrder()}
		row := SeedsRow{
			Salt:       salt,
			ITTAGEMean: data.Mean(experiments.NameITTAGE),
			BLBPMean:   data.Mean(experiments.NameBLBP),
		}
		row.PctVsITTAGE = stats.PercentChange(row.ITTAGEMean, row.BLBPMean)
		rows = append(rows, row)
		label := salt
		if label == "" {
			label = "default"
		}
		tb.AddRowf(label, row.ITTAGEMean, row.BLBPMean, row.PctVsITTAGE)
	}
	pcts := make([]float64, len(rows))
	for i, r := range rows {
		pcts[i] = r.PctVsITTAGE
	}
	tb.AddRow("", "", "", "")
	tb.AddRowf(fmt.Sprintf("mean of %d draws", len(rows)), "", "", stats.Mean(pcts))
	tb.AddRowf("min / max", "", "",
		fmt.Sprintf("%.2f / %.2f", stats.Min(pcts), stats.Max(pcts)))
	return tb, rows, nil
}

// renderMPKI is the generic table for user plans: every predictor of the
// plan over every workload, with a suite-mean row.
func renderMPKI(c *OutputContext) (*report.Table, any, error) {
	rows, err := c.rows()
	if err != nil {
		return nil, nil, err
	}
	names := c.names()
	if err := c.requireNames(rows, names); err != nil {
		return nil, nil, err
	}
	headers := append([]string{"workload"}, names...)
	tb := report.NewTable(
		fmt.Sprintf("Plan %s: indirect-branch MPKI per workload", c.plan.Name),
		headers...,
	)
	for _, r := range rows {
		cells := make([]interface{}, 0, len(names)+1)
		cells = append(cells, r.Spec.Name)
		for _, n := range names {
			cells = append(cells, r.MPKI(n))
		}
		tb.AddRowf(cells...)
	}
	cells := make([]interface{}, 0, len(names)+1)
	cells = append(cells, "MEAN")
	for _, n := range names {
		cells = append(cells, meanMPKI(rows, n))
	}
	tb.AddRowf(cells...)
	return tb, rows, nil
}

// specStorageBits models the hardware budget of one predictor spec by
// constructing a throwaway instance from its resolved config.
func specStorageBits(spec PredictorSpec) (int, error) {
	e, ok := predictor.Lookup(spec.Type)
	if !ok {
		return 0, fmt.Errorf("unknown predictor type %q", spec.Type)
	}
	cfg, err := e.Config(spec.Config)
	if err != nil {
		return 0, err
	}
	switch {
	case e.New != nil:
		p, err := e.New(cfg)
		if err != nil {
			return 0, err
		}
		return p.StorageBits(), nil
	case e.NewProvider != nil:
		_, p, err := e.NewProvider(cfg)
		if err != nil {
			return 0, err
		}
		return p.StorageBits(), nil
	default:
		return 0, fmt.Errorf("predictor %q has no standalone storage model", spec.Type)
	}
}

// combinedStorage models the two storage budgets of the consolidation
// experiment from the plan itself: the dedicated split is the conditional
// substrate plus the dedicated BLBP of the pass that carries it, the
// consolidated budget is the provider's single structure.
func combinedStorage(p *Plan) (dedicated, consolidated int, err error) {
	foundDed, foundCon := false, false
	for _, pass := range p.Passes {
		for _, spec := range pass.Predictors {
			e, ok := predictor.Lookup(spec.Type)
			if !ok {
				continue
			}
			switch {
			case !foundDed && e.New != nil && displayName(spec) == experiments.NameBLBP:
				bits, err := specStorageBits(spec)
				if err != nil {
					return 0, 0, err
				}
				cbits, err := passCondStorageBits(pass)
				if err != nil {
					return 0, 0, err
				}
				dedicated = bits + cbits
				foundDed = true
			case !foundCon && e.NewProvider != nil:
				bits, err := specStorageBits(spec)
				if err != nil {
					return 0, 0, err
				}
				consolidated = bits
				foundCon = true
			}
		}
	}
	if !foundDed || !foundCon {
		return 0, 0, fmt.Errorf("plan needs a dedicated %q pass and a consolidated pass", experiments.NameBLBP)
	}
	return dedicated, consolidated, nil
}

// passCondStorageBits models the storage of a pass's conditional substrate.
func passCondStorageBits(pass Pass) (int, error) {
	ce, ok := lookupCond(condNameOrDefault(pass.Cond))
	if !ok {
		return 0, fmt.Errorf("unknown conditional substrate %q", pass.Cond)
	}
	cfg, err := ce.config(pass.CondConfig)
	if err != nil {
		return 0, err
	}
	cp, err := ce.build(cfg)
	if err != nil {
		return 0, err
	}
	return cp.StorageBits(), nil
}
