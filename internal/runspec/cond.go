package runspec

import (
	"encoding/json"
	"fmt"

	"blbp/internal/cond"
	"blbp/internal/experiments"
	"blbp/internal/predictor"
)

// GShareConfig parameterizes the gshare conditional substrate.
type GShareConfig struct {
	// Entries is the 2-bit counter table size.
	Entries int
	// HistBits is the global history length XORed into the index.
	HistBits int
}

// BimodalConfig parameterizes the bimodal conditional substrate.
type BimodalConfig struct {
	// Entries is the 2-bit counter table size.
	Entries int
}

// condEntry is one registered conditional predictor substrate.
type condEntry struct {
	name string
	doc  string
	// defaultKey is the tape-sharing key of the default configuration.
	// The hashed-perceptron and TAGE keys predate this layer
	// (experiments.CondKeyHP/CondKeyTAGE), so plan-driven passes share
	// tapes with code-driven ones.
	defaultKey string
	def        func() any
	build      func(cfg any) (cond.Predictor, error)
}

// config materializes the substrate's configuration with overrides.
func (e condEntry) config(overrides []byte) (any, error) {
	cfg, err := predictor.MergeJSON(e.def(), overrides)
	if err != nil {
		return nil, fmt.Errorf("cond %s config: %v", e.name, err)
	}
	return cfg, nil
}

// key returns the tape-sharing key for a configuration: the legacy default
// key when no overrides were given, else a key derived from the canonical
// JSON of the merged config (identical overrides share, different ones
// don't — and neither collides with the default).
func (e condEntry) key(cfg any, hadOverrides bool) string {
	if !hadOverrides {
		return e.defaultKey
	}
	b, err := json.Marshal(cfg)
	if err != nil {
		panic(fmt.Sprintf("runspec: cond %s config does not marshal: %v", e.name, err))
	}
	return e.name + "/" + string(b)
}

// condOrder lists substrates in registration order (for -list); the map
// serves lookups only.
var (
	condOrder    []string
	condRegistry = map[string]condEntry{}
)

func registerCond(e condEntry) {
	if _, dup := condRegistry[e.name]; dup {
		panic(fmt.Sprintf("runspec: duplicate cond substrate %q", e.name))
	}
	condRegistry[e.name] = e
	condOrder = append(condOrder, e.name)
}

func lookupCond(name string) (condEntry, bool) {
	e, ok := condRegistry[name]
	return e, ok
}

func condNameOrDefault(name string) string {
	if name == "" {
		return "hashed-perceptron"
	}
	return name
}

// CondNames lists the conditional substrates in registration order.
func CondNames() []string {
	out := make([]string, len(condOrder))
	copy(out, condOrder)
	return out
}

// CondEntryInfo describes one substrate for -list output.
type CondEntryInfo struct {
	Name        string
	Doc         string
	DefaultJSON []byte
}

// CondEntries describes the registered substrates in registration order.
func CondEntries() []CondEntryInfo {
	out := make([]CondEntryInfo, 0, len(condOrder))
	for _, n := range condOrder {
		e := condRegistry[n]
		b, err := json.Marshal(e.def())
		if err != nil {
			panic(fmt.Sprintf("runspec: cond %s default config does not marshal: %v", n, err))
		}
		out = append(out, CondEntryInfo{Name: n, Doc: e.doc, DefaultJSON: b})
	}
	return out
}

func init() {
	registerCond(condEntry{
		name:       "hashed-perceptron",
		doc:        "Tarjan & Skadron hashed perceptron (the harness default)",
		defaultKey: experiments.CondKeyHP,
		def:        func() any { return cond.DefaultHPConfig() },
		build: func(cfg any) (cond.Predictor, error) {
			c, ok := cfg.(cond.HPConfig)
			if !ok {
				return nil, fmt.Errorf("runspec: hashed-perceptron config has type %T", cfg)
			}
			return cond.NewHashedPerceptron(c), nil
		},
	})
	registerCond(condEntry{
		name:       "tage",
		doc:        "Seznec TAGE (pairs with ittage as the COTTAGE configuration)",
		defaultKey: experiments.CondKeyTAGE,
		def:        func() any { return cond.DefaultTAGEConfig() },
		build: func(cfg any) (cond.Predictor, error) {
			c, ok := cfg.(cond.TAGEConfig)
			if !ok {
				return nil, fmt.Errorf("runspec: tage config has type %T", cfg)
			}
			return cond.NewTAGE(c), nil
		},
	})
	registerCond(condEntry{
		name:       "gshare",
		doc:        "two-bit gshare (cheap reference substrate)",
		defaultKey: "gshare/default",
		def:        func() any { return GShareConfig{Entries: 16384, HistBits: 14} },
		build: func(cfg any) (cond.Predictor, error) {
			c, ok := cfg.(GShareConfig)
			if !ok {
				return nil, fmt.Errorf("runspec: gshare config has type %T", cfg)
			}
			if c.Entries <= 0 || c.HistBits < 0 {
				return nil, fmt.Errorf("runspec: gshare config %+v out of range", c)
			}
			return cond.NewGShare(c.Entries, c.HistBits), nil
		},
	})
	registerCond(condEntry{
		name:       "bimodal",
		doc:        "two-bit bimodal (minimal reference substrate)",
		defaultKey: "bimodal/default",
		def:        func() any { return BimodalConfig{Entries: 16384} },
		build: func(cfg any) (cond.Predictor, error) {
			c, ok := cfg.(BimodalConfig)
			if !ok {
				return nil, fmt.Errorf("runspec: bimodal config has type %T", cfg)
			}
			if c.Entries <= 0 {
				return nil, fmt.Errorf("runspec: bimodal config %+v out of range", c)
			}
			return cond.NewBimodal(c.Entries), nil
		},
	})
}
