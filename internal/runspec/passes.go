package runspec

import (
	"fmt"

	"blbp/internal/cond"
	"blbp/internal/experiments"
	"blbp/internal/predictor"
)

// compiledPlan is a plan's passes lowered to the experiments layer, plus
// the bookkeeping outputs need to interpret the results.
type compiledPlan struct {
	passes []experiments.Pass
	// specs/names flatten the plan's predictors in (pass, spec) order;
	// names[i] is the key specs[i]'s results appear under.
	specs []PredictorSpec
	names []string
	// probes retains the constructed predictor instances per (pass,
	// workload) when an output needs to read per-instance metrics after
	// the run; nil otherwise.
	probes *probeStore
}

// probeStore retains the raw (pre-rename) predictor instances of every
// (pass, workload) cell. Each simulation task writes only its own cell, so
// concurrent passes never share a slot.
type probeStore struct {
	insts [][][]predictor.Indirect // [pass][workload][spec-in-pass]
	names [][]string               // [pass][spec-in-pass] display names
}

// find returns workload w's instance of the named predictor (nil if the
// plan has no such predictor or the cell never ran).
func (s *probeStore) find(w int, name string) predictor.Indirect {
	for pi := range s.names {
		for si, n := range s.names[pi] {
			if n != name {
				continue
			}
			if w >= len(s.insts[pi]) || s.insts[pi][w] == nil {
				return nil
			}
			return s.insts[pi][w][si]
		}
	}
	return nil
}

// compilePasses lowers the plan's passes. Every constructor is dry-run
// once here so config and wiring errors surface before any simulation; the
// per-workload factories built below can then only repeat constructions
// that are known to succeed.
func compilePasses(p *Plan, workloads int, withProbes bool) (*compiledPlan, error) {
	cp := &compiledPlan{}
	if withProbes {
		cp.probes = &probeStore{
			insts: make([][][]predictor.Indirect, len(p.Passes)),
			names: make([][]string, len(p.Passes)),
		}
	}
	for pi := range p.Passes {
		pass, names, err := compileOnePass(p.Passes[pi], pi, cp.probes)
		if err != nil {
			return nil, err
		}
		if cp.probes != nil {
			// Preallocated here, before any task runs, so the concurrent
			// factories below only ever write their own (pass, workload)
			// slot.
			cp.probes.insts[pi] = make([][]predictor.Indirect, workloads)
			cp.probes.names[pi] = names
		}
		cp.passes = append(cp.passes, pass)
		cp.specs = append(cp.specs, p.Passes[pi].Predictors...)
		cp.names = append(cp.names, names...)
	}
	return cp, nil
}

func compileOnePass(ps Pass, pi int, probes *probeStore) (experiments.Pass, []string, error) {
	fail := func(err error) (experiments.Pass, []string, error) {
		return experiments.Pass{}, nil, fmt.Errorf("runspec: pass %d: %v", pi, err)
	}

	// Materialize every config once; the factories below close over the
	// resolved values.
	type resolved struct {
		entry predictor.Entry
		cfg   any
	}
	specs := make([]resolved, len(ps.Predictors))
	names := make([]string, len(ps.Predictors))
	provider := -1
	bound := false
	for si, spec := range ps.Predictors {
		e, ok := predictor.Lookup(spec.Type)
		if !ok {
			return fail(fmt.Errorf("unknown predictor type %q", spec.Type))
		}
		cfg, err := e.Config(spec.Config)
		if err != nil {
			return fail(err)
		}
		specs[si] = resolved{entry: e, cfg: cfg}
		names[si] = displayName(spec)
		switch {
		case e.NewProvider != nil:
			provider = si
		case e.NewBound != nil:
			bound = true
		}
	}

	if provider >= 0 {
		// A consolidated predictor provides the pass's conditional
		// predictor itself; the pass owns conditional state.
		r := specs[provider]
		rename := ps.Predictors[provider].Name
		if _, _, err := r.entry.NewProvider(r.cfg); err != nil {
			return fail(err)
		}
		pass := experiments.Pass{New: func(w int) (cond.Predictor, []predictor.Indirect) {
			cpred, ind, err := r.entry.NewProvider(r.cfg)
			if err != nil {
				panic(fmt.Sprintf("runspec: %s construction failed after successful dry run: %v", r.entry.Name, err))
			}
			inds := []predictor.Indirect{ind}
			retain(probes, pi, w, inds)
			if rename != "" {
				inds[0] = experiments.Rename(ind, rename)
			}
			return cpred, inds
		}}
		return pass, names, nil
	}

	ce, ok := lookupCond(condNameOrDefault(ps.Cond))
	if !ok {
		return fail(fmt.Errorf("unknown conditional substrate %q", ps.Cond))
	}
	condCfg, err := ce.config(ps.CondConfig)
	if err != nil {
		return fail(err)
	}
	newCond := func() cond.Predictor {
		cpred, err := ce.build(condCfg)
		if err != nil {
			panic(fmt.Sprintf("runspec: cond %s construction failed after successful dry run: %v", ce.name, err))
		}
		return cpred
	}

	// Dry-run the whole pass once: the conditional predictor, every
	// indirect predictor, and the natural-name fallback check.
	trialCond, err := ce.build(condCfg)
	if err != nil {
		return fail(err)
	}
	for si := range specs {
		r := specs[si]
		var trial predictor.Indirect
		if r.entry.NewBound != nil {
			trial, err = r.entry.NewBound(r.cfg, trialCond)
		} else {
			trial, err = r.entry.New(r.cfg)
		}
		if err != nil {
			return fail(err)
		}
		// A config override can change what the instance calls itself
		// (btb's hysteresis flag); without an explicit name the results
		// would then be keyed differently than the plan expects.
		if ps.Predictors[si].Name == "" && trial.Name() != names[si] {
			return fail(fmt.Errorf("predictor %q reports results as %q with this config; set \"name\" explicitly",
				r.entry.Name, trial.Name()))
		}
	}

	build := func(w int) (cond.Predictor, []predictor.Indirect) {
		cpred := newCond()
		raw := make([]predictor.Indirect, len(specs))
		inds := make([]predictor.Indirect, len(specs))
		for si := range specs {
			r := specs[si]
			var ind predictor.Indirect
			var err error
			if r.entry.NewBound != nil {
				ind, err = r.entry.NewBound(r.cfg, cpred)
			} else {
				ind, err = r.entry.New(r.cfg)
			}
			if err != nil {
				panic(fmt.Sprintf("runspec: %s construction failed after successful dry run: %v", r.entry.Name, err))
			}
			raw[si] = ind
			if name := ps.Predictors[si].Name; name != "" {
				ind = experiments.Rename(ind, name)
			}
			inds[si] = ind
		}
		retain(probes, pi, w, raw)
		return cpred, inds
	}

	if bound {
		// A pass whose predictor shares (and pollutes) the conditional
		// predictor owns its conditional state: never tape-shared.
		return experiments.Pass{New: build}, names, nil
	}
	return experiments.Pass{
		CondKey: ce.key(condCfg, len(ps.CondConfig) > 0),
		New:     build,
	}, names, nil
}

// retain records one (pass, workload) cell's raw instances in the probe
// store. The per-pass slices are preallocated before any task runs and
// each task owns a distinct slot, so no synchronization is needed beyond
// the runner's own completion barrier.
func retain(probes *probeStore, pi, w int, inds []predictor.Indirect) {
	if probes == nil {
		return
	}
	probes.insts[pi][w] = inds
}
