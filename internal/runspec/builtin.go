package runspec

import (
	"fmt"

	"blbp/internal/core"
	"blbp/internal/experiments"
	"blbp/internal/predictor"
)

// builtinOrder is the canonical presentation order (the CLI's "all").
var builtinOrder = []string{
	"table1", "table2", "fig1", "fig6", "fig7",
	"overall", "fig8", "fig9", "holdout", "fig10", "fig11",
	"extras", "arrays", "targetbits", "combined", "hierarchy",
	"cottage", "latency", "seeds",
}

// BuiltinNames lists the built-in plans in presentation order.
func BuiltinNames() []string {
	out := make([]string, len(builtinOrder))
	copy(out, builtinOrder)
	return out
}

// Builtin returns the named built-in plan: the declarative form of what the
// bespoke experiment drivers used to hard-code. Every plan round-trips
// through Encode/Decode, so `-dumpplan` output re-run via `-plan`
// reproduces the compiled-in results byte for byte.
func Builtin(name string) (*Plan, bool) {
	switch name {
	case "table1":
		return analysisPlan(name, "workload suite by source category (paper Table 1)"), true
	case "table2":
		return analysisPlan(name, "predictor configurations and hardware budgets (paper Table 2)"), true
	case "fig1":
		return analysisPlan(name, "branch mix per kilo-instruction (paper Figure 1)"), true
	case "fig6":
		return analysisPlan(name, "polymorphism per workload (paper Figure 6)"), true
	case "fig7":
		return analysisPlan(name, "target-count distribution CCDF (paper Figure 7)"), true
	case "overall", "fig8", "fig9":
		p := standardPlan(name, "the §5.1 headline run rendered as "+name)
		if name == "overall" {
			p.Doc = "suite-mean MPKI of the four standard predictors (§5.1)"
		}
		return p, true
	case "holdout":
		p := standardPlan(name, "the §5.1 table over the holdout suite (CBP-4 analog)")
		p.Suite.Kind = "holdout"
		return p, true
	case "fig10":
		return variantsPlan(name, "optimization ablation vs ITTAGE (paper Figure 10)",
			experiments.AblationVariants()), true
	case "fig11":
		return variantsPlan(name, "IBTB associativity sweep (paper Figure 11)",
			experiments.AssocVariants(nil)), true
	case "extras":
		return &Plan{
			Name: name,
			Doc:  "extended related-work baselines (§2.2 lineage)",
			Passes: []Pass{{Predictors: []PredictorSpec{
				{Type: "btb"}, {Type: "btb2bit"}, {Type: "targetcache"},
				{Type: "cascaded"}, {Type: "ittage"}, {Type: "blbp"},
			}}},
			Outputs: []Output{{Table: name}},
		}, true
	case "arrays":
		return variantsPlan(name, "weight-SRAM array-count sweep at ~constant storage",
			experiments.ArraysVariants(nil)), true
	case "targetbits":
		return variantsPlan(name, "target bits folded into BLBP's global history",
			experiments.TargetBitsVariants()), true
	case "combined":
		return &Plan{
			Name: name,
			Doc:  "one BLBP structure for conditional + indirect prediction (§6)",
			Passes: []Pass{
				{Predictors: []PredictorSpec{{Type: "blbp"}}},
				{Predictors: []PredictorSpec{{Type: "combined"}}},
			},
			Outputs: []Output{{Table: name}},
		}, true
	case "hierarchy":
		mono8 := core.DefaultConfig()
		mono8.IBTB.Assoc = 8
		mono8.IBTB.Sets = 512
		hier := core.DefaultConfig()
		hier.UseHierarchicalIBTB = true
		return &Plan{
			Name: name,
			Doc:  "two-level IBTB hierarchy vs 64-way monolith (§6)",
			Passes: []Pass{
				{Predictors: []PredictorSpec{{Type: "blbp", Name: "mono-64way"}}},
				{Predictors: []PredictorSpec{{Type: "blbp", Name: "mono-8way", Config: mustDiffBLBP(mono8)}}},
				{Predictors: []PredictorSpec{{Type: "blbp", Name: "hierarchy", Config: mustDiffBLBP(hier)}}},
			},
			Outputs: []Output{{Table: name}},
		}, true
	case "cottage":
		return &Plan{
			Name: name,
			Doc:  "COTTAGE (TAGE + ITTAGE) vs hashed perceptron + BLBP (§2.2)",
			Passes: []Pass{
				{Predictors: []PredictorSpec{{Type: "blbp"}}},
				{Cond: "tage", Predictors: []PredictorSpec{{Type: "ittage"}}},
			},
			Outputs: []Output{{Table: name}},
		}, true
	case "latency":
		return &Plan{
			Name:    name,
			Doc:     "BLBP selection latency at 5 cosine similarities per cycle (§3.7)",
			Passes:  []Pass{{Predictors: []PredictorSpec{{Type: "blbp"}}}},
			Outputs: []Output{{Table: name}},
		}, true
	case "seeds":
		p := standardPlan(name, "seed sensitivity of the §5.1 headline across suite draws")
		p.Suite.Salts = []string{"", "a", "b", "c"}
		return p, true
	}
	return nil, false
}

// analysisPlan is a pure workload characterization: no passes, one output.
func analysisPlan(name, doc string) *Plan {
	return &Plan{Name: name, Doc: doc, Outputs: []Output{{Table: name}}}
}

// standardPlan runs the paper's Table 2 line-up: the BTB baseline, ITTAGE,
// and BLBP share a conditional substrate; VPC owns (and pollutes) its own.
func standardPlan(name, doc string) *Plan {
	return &Plan{
		Name: name,
		Doc:  doc,
		Passes: []Pass{
			{Predictors: []PredictorSpec{{Type: "btb"}, {Type: "ittage"}, {Type: "blbp"}}},
			{Predictors: []PredictorSpec{{Type: "vpc"}}},
		},
		Outputs: []Output{{Table: name}},
	}
}

// variantsPlan lowers a BLBP sweep to one single-predictor pass per variant
// (so the scheduler fans the arms out as independent tasks, exactly like the
// bespoke drivers did) plus the ITTAGE reference pass.
func variantsPlan(name, doc string, variants []experiments.BLBPVariant) *Plan {
	passes := make([]Pass, 0, len(variants)+1)
	for _, v := range variants {
		passes = append(passes, Pass{Predictors: []PredictorSpec{
			{Type: "blbp", Name: v.Name, Config: mustDiffBLBP(v.Config)},
		}})
	}
	passes = append(passes, Pass{Predictors: []PredictorSpec{{Type: "ittage"}}})
	return &Plan{Name: name, Doc: doc, Passes: passes, Outputs: []Output{{Table: name}}}
}

// mustDiffBLBP renders a BLBP configuration as the minimal JSON override
// against the registered default. The built-in sweeps only vary compiled-in
// configurations, so a diff failure is a programming error.
func mustDiffBLBP(cfg core.Config) []byte {
	e, ok := predictor.Lookup(experiments.NameBLBP)
	if !ok {
		panic("runspec: blbp is not registered")
	}
	diff, err := diffConfig(e.Default(), cfg)
	if err != nil {
		panic(fmt.Sprintf("runspec: diffing blbp config: %v", err))
	}
	return diff
}
