package runspec

import (
	"fmt"

	"blbp/internal/experiments"
	"blbp/internal/report"
	"blbp/internal/workload"
)

// OutputContext is what an output assembler sees: the plan, the resolved
// suites, and (when the plan ran passes) the per-draw results plus the
// compiled-pass bookkeeping.
type OutputContext struct {
	exec    *Exec
	plan    *Plan
	suites  [][]workload.Spec
	results [][]experiments.WorkloadResult
	cp      *compiledPlan
}

// suite returns the first (usually only) suite draw.
func (c *OutputContext) suite() []workload.Spec { return c.suites[0] }

// rows returns the first draw's per-workload results.
func (c *OutputContext) rows() ([]experiments.WorkloadResult, error) {
	if c.results == nil {
		return nil, fmt.Errorf("plan ran no passes")
	}
	return c.results[0], nil
}

// names returns the plan's predictor display names in (pass, spec) order.
func (c *OutputContext) names() []string {
	if c.cp == nil {
		return nil
	}
	return c.cp.names
}

// variants returns the display names and specs of every predictor except
// the named reference (sweep outputs treat "ittage" as the reference arm).
func (c *OutputContext) variants(reference string) ([]string, []PredictorSpec) {
	var names []string
	var specs []PredictorSpec
	for i, n := range c.names() {
		if n == reference {
			continue
		}
		names = append(names, n)
		specs = append(specs, c.cp.specs[i])
	}
	return names, specs
}

// requireNames checks that every named predictor contributed results.
func (c *OutputContext) requireNames(rows []experiments.WorkloadResult, names []string) error {
	if len(rows) == 0 {
		return fmt.Errorf("no workloads")
	}
	for _, n := range names {
		if _, ok := rows[0].Results[n]; !ok {
			return fmt.Errorf("plan has no predictor named %q (it has %v)", n, c.names())
		}
	}
	return nil
}

// probe returns workload w's retained raw instance of the named predictor.
func (c *OutputContext) probe(w int, name string) (any, error) {
	if c.cp == nil || c.cp.probes == nil {
		return nil, fmt.Errorf("no probe instances retained")
	}
	p := c.cp.probes.find(w, name)
	if p == nil {
		return nil, fmt.Errorf("no retained instance of %q for workload %d", name, w)
	}
	return p, nil
}

// outputEntry is one registered output assembler.
type outputEntry struct {
	name string
	doc  string
	// needsPasses marks outputs assembled from simulation results (vs
	// pure workload characterizations).
	needsPasses bool
	// needsProbes marks outputs that read per-instance state after the
	// run; the executor retains predictor instances for their plans.
	needsProbes bool
	render      func(*OutputContext) (*report.Table, *report.Chart, any, error)
}

var (
	outputOrder    []string
	outputRegistry = map[string]outputEntry{}
)

func registerOutput(e outputEntry) {
	if _, dup := outputRegistry[e.name]; dup {
		panic(fmt.Sprintf("runspec: duplicate output %q", e.name))
	}
	outputRegistry[e.name] = e
	outputOrder = append(outputOrder, e.name)
}

func lookupOutput(name string) (outputEntry, bool) {
	e, ok := outputRegistry[name]
	return e, ok
}

// OutputNames lists the registered output tables in registration order.
func OutputNames() []string {
	out := make([]string, len(outputOrder))
	copy(out, outputOrder)
	return out
}

// OutputInfo describes one output for -list.
type OutputInfo struct {
	Name string
	Doc  string
}

// OutputInfos describes the registered outputs in registration order.
func OutputInfos() []OutputInfo {
	out := make([]OutputInfo, 0, len(outputOrder))
	for _, n := range outputOrder {
		e := outputRegistry[n]
		out = append(out, OutputInfo{Name: n, Doc: e.doc})
	}
	return out
}

// tableOnly adapts an assembler that produces just a table.
func tableOnly(f func(*OutputContext) (*report.Table, any, error)) func(*OutputContext) (*report.Table, *report.Chart, any, error) {
	return func(c *OutputContext) (*report.Table, *report.Chart, any, error) {
		tb, data, err := f(c)
		return tb, nil, data, err
	}
}
