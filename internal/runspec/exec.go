package runspec

import (
	"encoding/json"
	"fmt"
	"strings"

	"blbp/internal/experiments"
	"blbp/internal/report"
	"blbp/internal/workload"
	"blbp/internal/wspec"
)

// Exec drives plans over one experiments.Runner. Identical (suite, passes)
// combinations are simulated once and reused across plans, so e.g. the
// overall, fig8, and fig9 built-ins — three plans over the same standard
// passes — cost a single suite run per process, as the bespoke drivers'
// shared lazy computation used to.
type Exec struct {
	r    *experiments.Runner
	base int64
	memo map[string]*suiteRun
	// registry holds session-registered workload specs (RegisterWorkload);
	// spec-listed suites resolve names here before the built-ins.
	registry map[string]wspec.WorkloadSpec
}

// suiteRun is one memoized simulation: the resolved suites, the per-draw
// results, and the compiled plan (whose probe store outputs may read).
type suiteRun struct {
	results [][]experiments.WorkloadResult
	cp      *compiledPlan
}

// NewExec returns an executor over r. base is the default per-SHORT-trace
// instruction budget for plans that don't pin one (the CLI's -base flag).
func NewExec(r *experiments.Runner, base int64) *Exec {
	return &Exec{r: r, base: base, memo: map[string]*suiteRun{}}
}

// Runner exposes the underlying execution layer (characterization outputs
// use its analysis path).
func (x *Exec) Runner() *experiments.Runner { return x.r }

// RenderedOutput is one assembled output of a plan.
type RenderedOutput struct {
	// Name is the output's registered table name.
	Name string
	// File is the CSV base name (Output.File, defaulted to Name).
	File string
	// Table is the assembled report table.
	Table *report.Table
	// Chart is an optional bar-chart rendition (fig10/fig11).
	Chart *report.Chart
	// Data is the output's structured result (type varies per output).
	Data any
}

// Run validates and executes the plan, returning its outputs in plan
// order.
func (x *Exec) Run(plan *Plan) ([]RenderedOutput, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	suites, err := x.resolveSuites(plan.Suite)
	if err != nil {
		return nil, err
	}
	needsPasses, needsProbes := false, false
	for _, out := range plan.Outputs {
		oe, _ := lookupOutput(out.Table)
		needsPasses = needsPasses || oe.needsPasses
		needsProbes = needsProbes || oe.needsProbes
	}

	ctx := &OutputContext{exec: x, plan: plan, suites: suites}
	if len(plan.Passes) > 0 && needsPasses {
		run, err := x.runSuites(plan, suites, needsProbes)
		if err != nil {
			return nil, err
		}
		ctx.results = run.results
		ctx.cp = run.cp
	}

	outs := make([]RenderedOutput, 0, len(plan.Outputs))
	for _, out := range plan.Outputs {
		oe, _ := lookupOutput(out.Table)
		tb, ch, data, err := oe.render(ctx)
		if err != nil {
			return nil, fmt.Errorf("runspec: output %s: %v", out.Table, err)
		}
		file := out.File
		if file == "" {
			file = out.Table
		}
		outs = append(outs, RenderedOutput{Name: out.Table, File: file, Table: tb, Chart: ch, Data: data})
	}
	return outs, nil
}

// runSuites simulates the plan's passes over the resolved suites, memoized
// on the (suite, passes, probes) triple.
func (x *Exec) runSuites(plan *Plan, suites [][]workload.Spec, withProbes bool) (*suiteRun, error) {
	key, err := memoKey(plan, x.base, withProbes)
	if err != nil {
		return nil, err
	}
	if run, ok := x.memo[key]; ok {
		return run, nil
	}
	cp, err := compilePasses(plan, len(suites[0]), withProbes)
	if err != nil {
		return nil, err
	}
	results, err := x.r.RunSuites(suites, cp.passes)
	if err != nil {
		return nil, err
	}
	run := &suiteRun{results: results, cp: cp}
	x.memo[key] = run
	return run, nil
}

// memoKey canonicalizes what determines a simulation's results: the
// resolved suite selection and the passes. Two plans with byte-equal keys
// share one run.
func memoKey(plan *Plan, base int64, withProbes bool) (string, error) {
	s := plan.Suite
	if s.Base == 0 {
		s.Base = base
	}
	var b strings.Builder
	enc := json.NewEncoder(&b)
	if err := enc.Encode(s); err != nil {
		return "", fmt.Errorf("runspec: %v", err)
	}
	if err := enc.Encode(plan.Passes); err != nil {
		return "", fmt.Errorf("runspec: %v", err)
	}
	fmt.Fprintf(&b, "probes=%t", withProbes)
	return b.String(), nil
}

// resolveSuites materializes the plan's workload population: one spec
// slice per seeded draw (spec-listed suites are a single draw, compiled
// from the executor's registries).
func (x *Exec) resolveSuites(s Suite) ([][]workload.Spec, error) {
	if len(s.Specs) > 0 {
		return x.resolveSpecSuite(s)
	}
	b := s.Base
	if b == 0 {
		b = x.base
	}
	salts := s.Salts
	if len(salts) == 0 {
		salts = []string{""}
	}
	suites := make([][]workload.Spec, len(salts))
	for i, salt := range salts {
		var specs []workload.Spec
		if s.Kind == "holdout" {
			specs = wspec.SuiteHoldout(b)
		} else {
			specs = wspec.SuiteSeeded(b, salt)
		}
		specs, err := subsetSuite(specs, s.Workloads)
		if err != nil {
			return nil, err
		}
		suites[i] = specs
	}
	return suites, nil
}

// subsetSuite restricts specs to the named workloads, preserving suite
// order. Unknown names are an error so plan typos surface.
func subsetSuite(specs []workload.Spec, names []string) ([]workload.Spec, error) {
	if len(names) == 0 {
		return specs, nil
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	out := make([]workload.Spec, 0, len(names))
	for _, sp := range specs {
		if want[sp.Name] {
			out = append(out, sp)
			delete(want, sp.Name)
		}
	}
	if len(want) > 0 {
		// Reconstruct the missing names in request order (no map range).
		missing := make([]string, 0, len(want))
		for _, n := range names {
			if want[n] {
				want[n] = false
				missing = append(missing, n)
			}
		}
		return nil, fmt.Errorf("runspec: suite has no workload(s) %s", strings.Join(missing, ", "))
	}
	return out, nil
}
