package sim

import (
	"sync"
	"testing"

	"blbp/internal/btb"
	"blbp/internal/cond"
	"blbp/internal/core"
	"blbp/internal/predictor"
	"blbp/internal/workload"
)

// tapeWorkload builds a realistic trace exercising every record type.
func tapeWorkload() *workload.Spec {
	s := workload.VDispatchSpec("tape-unit", "T", 60_000, workload.VDispatchParams{
		Classes: 5, Sites: 3, Objects: 24, TypeNoise: 0.002,
		AlternatingSites: 1, MethodWork: 30, MethodConds: 2, CondNoise: 0.005,
		MonoCalls: 1, MonoSites: 8,
	})
	return &s
}

// countingCond counts Predict calls on a delegate conditional predictor.
type countingCond struct {
	cond.Predictor
	predicts int
}

func (c *countingCond) Predict(pc uint64) bool {
	c.predicts++
	return c.Predictor.Predict(pc)
}

// TestTapeRunMatchesFullRun is the engine-split contract: a pass replayed
// through the tape must produce exactly the result of the monolithic Run,
// field for field, for every indirect predictor in the pass.
func TestTapeRunMatchesFullRun(t *testing.T) {
	tr := tapeWorkload().Build()
	tape, err := NewTape(tr)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() (cond.Predictor, []predictor.Indirect) {
		return cond.NewHashedPerceptron(cond.DefaultHPConfig()), []predictor.Indirect{
			btb.NewIndirect(btb.Default32K()),
			core.New(core.DefaultConfig()),
		}
	}
	cp, inds := mk()
	got, err := tape.Run("hp", cp, inds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cp2, inds2 := mk()
	want, err := Run(tr, cp2, inds2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("result %d: tape %+v != full run %+v", i, got[i], want[i])
		}
	}
}

// TestTapeCondSimulatedOncePerKey checks the memoization: the second pass
// under the same key must never drive its conditional predictor, while a
// new key must simulate again.
func TestTapeCondSimulatedOncePerKey(t *testing.T) {
	tr := tapeWorkload().Build()
	tape, err := NewTape(tr)
	if err != nil {
		t.Fatal(err)
	}
	first := &countingCond{Predictor: cond.NewBimodal(1024)}
	r1, err := tape.Run("bimodal", first, []predictor.Indirect{&stubIndirect{have: false}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if first.predicts == 0 {
		t.Fatal("first pass did not simulate the conditional side")
	}
	second := &countingCond{Predictor: cond.NewBimodal(1024)}
	r2, err := tape.Run("bimodal", second, []predictor.Indirect{&stubIndirect{have: false}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if second.predicts != 0 {
		t.Errorf("second pass under the same key drove its conditional predictor (%d Predict calls)", second.predicts)
	}
	if r1[0].CondMispredicts != r2[0].CondMispredicts {
		t.Errorf("cond mispredicts differ across replays: %d vs %d", r1[0].CondMispredicts, r2[0].CondMispredicts)
	}
	other := &countingCond{Predictor: cond.NewBimodal(64)}
	if _, err := tape.Run("bimodal-64", other, []predictor.Indirect{&stubIndirect{have: false}}, Options{}); err != nil {
		t.Fatal(err)
	}
	if other.predicts == 0 {
		t.Error("new key did not simulate the conditional side")
	}
}

// TestTapeConcurrentSameKey hammers one key from many goroutines; exactly
// one conditional simulation may happen and every pass must agree.
func TestTapeConcurrentSameKey(t *testing.T) {
	tr := tapeWorkload().Build()
	tape, err := NewTape(tr)
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	results := make([]int64, n)
	cps := make([]*countingCond, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		cps[i] = &countingCond{Predictor: cond.NewBimodal(1024)}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := tape.Run("bimodal", cps[i], []predictor.Indirect{&stubIndirect{have: false}}, Options{})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res[0].CondMispredicts
		}()
	}
	wg.Wait()
	simulated := 0
	for _, cp := range cps {
		if cp.predicts > 0 {
			simulated++
		}
	}
	if simulated != 1 {
		t.Errorf("%d conditional simulations ran, want exactly 1", simulated)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Errorf("pass %d cond mispredicts %d != pass 0's %d", i, results[i], results[0])
		}
	}
}

// TestTapeEmptyKeyFallsBack checks that condKey == "" runs the full engine:
// the conditional predictor is driven and results equal Run's.
func TestTapeEmptyKeyFallsBack(t *testing.T) {
	tr := buildTrace()
	tape, err := NewTape(tr)
	if err != nil {
		t.Fatal(err)
	}
	cp := &countingCond{Predictor: cond.NewBimodal(1024)}
	got, err := tape.Run("", cp, []predictor.Indirect{&stubIndirect{target: 0xAAAA, have: true}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cp.predicts == 0 {
		t.Error("exclusive pass did not drive its conditional predictor")
	}
	want, err := Run(tr, cond.NewBimodal(1024), []predictor.Indirect{&stubIndirect{target: 0xAAAA, have: true}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != want[0] {
		t.Errorf("fallback result %+v != Run result %+v", got[0], want[0])
	}
}

func TestTapeRunErrors(t *testing.T) {
	tape, err := NewTape(buildTrace())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tape.Run("k", nil, []predictor.Indirect{&stubIndirect{}}, Options{}); err == nil {
		t.Error("nil conditional predictor accepted")
	}
	if _, err := tape.Run("k", cond.NewBimodal(8), nil, Options{}); err == nil {
		t.Error("empty indirect set accepted")
	}
	if _, err := NewTape(nil); err == nil {
		t.Error("nil trace accepted")
	}
}
