package sim

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"blbp/internal/combined"
	"blbp/internal/cond"
	"blbp/internal/core"
	"blbp/internal/ittage"
	"blbp/internal/predictor"
	"blbp/internal/trace"
)

// genEquivTrace synthesizes a valid trace covering all six branch types.
// shape's high nibble biases the expected same-class run length (so fuzzing
// explores both long homogeneous segments and pathological per-record
// alternation) and its low bits perturb the PC/target pools.
func genEquivTrace(seed int64, n int, shape uint8) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{Name: "fuzz"}
	runBias := int(shape>>4) + 1 // 1..16: expected run length
	pcSpan := uint64(shape&0xF) + 4
	last := trace.CondDirect
	for i := 0; i < n; i++ {
		bt := last
		if rng.Intn(runBias) == 0 {
			bt = trace.BranchType(rng.Intn(6))
		}
		last = bt
		pc := 0x1000 + uint64(rng.Intn(int(pcSpan)))*4
		target := 0x8000 + uint64(rng.Intn(16))*8
		taken := true
		if bt == trace.CondDirect {
			taken = rng.Intn(2) == 0
			target = pc + 4
			if taken {
				target = pc + 0x20
			}
		}
		tr.Append(trace.Record{
			PC: pc, Target: target, InstrBefore: uint32(rng.Intn(20)),
			Type: bt, Taken: taken,
		})
	}
	return tr
}

// equivPredictors builds one fresh suite-shaped pass: a hashed perceptron
// driving ITTAGE and BLBP.
func equivPredictors() (cond.Predictor, []predictor.Indirect) {
	return cond.NewHashedPerceptron(cond.DefaultHPConfig()), []predictor.Indirect{
		ittage.New(ittage.DefaultConfig()),
		core.New(core.DefaultConfig()),
	}
}

// FuzzColumnarEquivalence is the differential gate for the columnar replay
// path: for any valid trace, the columnar engine (Run/RunColumns), the
// shared-tape replay, and the spill round trip through the columnar decoder
// must all reproduce the record-slice reference (RunRecords) bit for bit —
// every Result field, all six branch types, predictions included.
func FuzzColumnarEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(300), uint8(0x22))
	f.Add(int64(7), uint16(50), uint8(0xF1))
	f.Add(int64(42), uint16(900), uint8(0x08))
	f.Add(int64(-3), uint16(64), uint8(0x00))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, shape uint8) {
		nRec := int(n) % 2048
		if nRec == 0 {
			return
		}
		tr := genEquivTrace(seed, nRec, shape)

		cpRef, ipsRef := equivPredictors()
		ref, err := RunRecords(tr, cpRef, ipsRef, Options{})
		if err != nil {
			t.Fatal(err)
		}

		cpCol, ipsCol := equivPredictors()
		got, err := Run(tr, cpCol, ipsCol, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("columnar Run diverged:\n got %+v\nwant %+v", got, ref)
		}

		// Shared-tape replay under a cond key (segment loop interchange +
		// span feeding) must match too.
		tape, err := NewTape(tr)
		if err != nil {
			t.Fatal(err)
		}
		cpTape, ipsTape := equivPredictors()
		tapeRes, err := tape.Run("hp", cpTape, ipsTape, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tapeRes, ref) {
			t.Fatalf("tape replay diverged:\n got %+v\nwant %+v", tapeRes, ref)
		}

		// The consolidated predictor shares state between the conditional
		// and indirect sides (and trains with targets), so it pins down the
		// within-segment call ordering and the TargetTrainer hoist.
		ccRef := combined.New(core.DefaultConfig())
		refC, err := RunRecords(tr, ccRef, []predictor.Indirect{ccRef.Indirect()}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ccCol := combined.New(core.DefaultConfig())
		gotC, err := Run(tr, ccCol, []predictor.Indirect{ccCol.Indirect()}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotC, refC) {
			t.Fatalf("columnar Run (consolidated) diverged:\n got %+v\nwant %+v", gotC, refC)
		}

		// Spill round trip: the columnar writer must produce the exact bytes
		// of the record-slice writer, and decoding through the columnar fast
		// path must reproduce every record and the same replay results.
		h := trace.SpillHeader{Name: tr.Name, Seed: seed, Instructions: tr.Instructions()}
		var want, gotBuf bytes.Buffer
		if err := trace.WriteSpill(&want, h, tr); err != nil {
			t.Fatal(err)
		}
		if err := trace.WriteSpillColumns(&gotBuf, h, tr.Columns()); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), gotBuf.Bytes()) {
			t.Fatal("WriteSpillColumns bytes differ from WriteSpill")
		}
		_, cols, err := trace.ReadSpillColumns(bytes.NewReader(want.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		defer trace.ReleaseColumns(cols)
		if cols.Len() != len(tr.Records) {
			t.Fatalf("columnar decode: %d records, want %d", cols.Len(), len(tr.Records))
		}
		for i := range tr.Records {
			if cols.Record(i) != tr.Records[i] {
				t.Fatalf("columnar decode record %d = %+v, want %+v", i, cols.Record(i), tr.Records[i])
			}
		}
		cpSp, ipsSp := equivPredictors()
		spRes, err := RunColumns(cols, cpSp, ipsSp, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(spRes, ref) {
			t.Fatalf("replay of spill-decoded columns diverged:\n got %+v\nwant %+v", spRes, ref)
		}
	})
}

// TestColumnarEquivalenceSeeds runs the differential on the fuzz seed
// corpus so `go test` exercises it without the fuzz engine.
func TestColumnarEquivalenceSeeds(t *testing.T) {
	cases := []struct {
		seed  int64
		n     uint16
		shape uint8
	}{
		{1, 300, 0x22}, {7, 50, 0xF1}, {42, 900, 0x08}, {-3, 64, 0x00},
		{99, 2047, 0x71}, {5, 1, 0x30},
	}
	for _, c := range cases {
		tr := genEquivTrace(c.seed, int(c.n)%2048, c.shape)
		cpRef, ipsRef := equivPredictors()
		ref, err := RunRecords(tr, cpRef, ipsRef, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cpCol, ipsCol := equivPredictors()
		got, err := Run(tr, cpCol, ipsCol, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("seed %d: columnar Run diverged:\n got %+v\nwant %+v", c.seed, got, ref)
		}
	}
}
