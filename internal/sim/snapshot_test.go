package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"blbp/internal/combined"
	"blbp/internal/cond"
	"blbp/internal/core"
	"blbp/internal/predictor"
	"blbp/internal/snapshot"
)

// The tests below are the tentpole's differential gate: a pass interrupted
// at an arbitrary record, snapshotted (engine state + every predictor's
// warm state), restored into fresh instances, and resumed must be
// bit-identical to an uninterrupted run — same Results and same final
// predictor state bytes.

const testSnapName = "simtest"
const testSnapFingerprint = 0x73696d74657374 // arbitrary; the pass owns it
const maxNestedSnap = 1 << 28

// passPredictors builds one fresh pass of the named kind.
func passPredictors(kind string) (cond.Predictor, []predictor.Indirect) {
	switch kind {
	case "suite": // hashed perceptron driving ITTAGE and BLBP
		return equivPredictors()
	case "consolidated": // §6 combined structure serving both roles
		p := combined.New(core.DefaultConfig())
		return p, []predictor.Indirect{p.Indirect()}
	}
	panic("unknown pass kind " + kind)
}

// snapshotPass serializes a paused pass — engine state plus the warm state
// of the conditional and every indirect predictor — into one container.
func snapshotPass(t *testing.T, pr *PausedRun, cp cond.Predictor, indirects []predictor.Indirect) []byte {
	t.Helper()
	c := snapshot.NewContainer(testSnapName, testSnapFingerprint)
	pr.EncodeState(c.Section("run"))
	c.Section("cond").Bytes(encodeStateBytes(t, cp))
	for i, ip := range indirects {
		c.Section(fmt.Sprintf("ind%d", i)).Bytes(encodeStateBytes(t, ip))
	}
	var out bytes.Buffer
	if err := c.EncodeTo(&out); err != nil {
		t.Fatalf("encoding pass container: %v", err)
	}
	return out.Bytes()
}

func encodeStateBytes(t *testing.T, v any) []byte {
	t.Helper()
	s, ok := predictor.AsSnapshotter(v)
	if !ok {
		t.Fatalf("%T does not implement Snapshotter", v)
	}
	var buf bytes.Buffer
	if err := s.EncodeState(&buf); err != nil {
		t.Fatalf("encoding %T state: %v", v, err)
	}
	return buf.Bytes()
}

// restorePass reinstates a snapshotPass blob into fresh predictors and
// returns the resumable engine state.
func restorePass(blob []byte, cp cond.Predictor, indirects []predictor.Indirect) (*PausedRun, error) {
	dec, err := snapshot.ReadContainer(bytes.NewReader(blob), testSnapName, testSnapFingerprint)
	if err != nil {
		return nil, err
	}
	rd, err := dec.Section("run")
	if err != nil {
		return nil, err
	}
	pr, err := RestorePausedRun(rd)
	if err != nil {
		return nil, err
	}
	if err := rd.Finish(); err != nil {
		return nil, err
	}
	restoreOne := func(kind string, v any) error {
		sd, err := dec.Section(kind)
		if err != nil {
			return err
		}
		nested := sd.BytesMax(maxNestedSnap)
		if err := sd.Finish(); err != nil {
			return err
		}
		s, ok := predictor.AsSnapshotter(v)
		if !ok {
			return fmt.Errorf("%T does not implement Snapshotter", v)
		}
		return s.RestoreState(bytes.NewReader(nested))
	}
	if err := restoreOne("cond", cp); err != nil {
		return nil, err
	}
	for i, ip := range indirects {
		if err := restoreOne(fmt.Sprintf("ind%d", i), ip); err != nil {
			return nil, err
		}
	}
	return pr, nil
}

func TestSnapshotRestoreSplits(t *testing.T) {
	const nRec = 1200
	tr := genEquivTrace(11, nRec, 0x42)
	cols := tr.Columns()
	// Split points: before any event, pre-warmup, mid-run, post-warmup, and
	// the degenerate snapshot-at-end.
	splits := []int{0, 7, nRec / 2, nRec - 3, nRec}
	for _, kind := range []string{"suite", "consolidated"} {
		cpRef, ipsRef := passPredictors(kind)
		ref, err := RunColumns(cols, cpRef, ipsRef, Options{})
		if err != nil {
			t.Fatal(err)
		}
		refCondState := encodeStateBytes(t, cpRef)
		for _, split := range splits {
			cpA, ipsA := passPredictors(kind)
			pr, err := RunColumnsUntil(cols, cpA, ipsA, Options{}, split)
			if err != nil {
				t.Fatalf("%s split %d: until: %v", kind, split, err)
			}
			if pr.Next() != split {
				t.Fatalf("%s split %d: paused at %d", kind, split, pr.Next())
			}
			blob := snapshotPass(t, pr, cpA, ipsA)

			cpB, ipsB := passPredictors(kind)
			prB, err := restorePass(blob, cpB, ipsB)
			if err != nil {
				t.Fatalf("%s split %d: restore: %v", kind, split, err)
			}
			got, err := ResumeColumns(cols, cpB, ipsB, prB)
			if err != nil {
				t.Fatalf("%s split %d: resume: %v", kind, split, err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("%s split %d: resumed results diverged:\n got %+v\nwant %+v", kind, split, got, ref)
			}
			// Final-state fingerprint: the resumed predictors must encode
			// byte-identically to the uninterrupted twins.
			if !bytes.Equal(encodeStateBytes(t, cpB), refCondState) {
				t.Errorf("%s split %d: resumed conditional state differs from uninterrupted run", kind, split)
			}
			for i := range ipsB {
				if !bytes.Equal(encodeStateBytes(t, ipsB[i]), encodeStateBytes(t, ipsRef[i])) {
					t.Errorf("%s split %d: resumed indirect %d state differs from uninterrupted run", kind, split, i)
				}
			}
		}
	}
}

// TestSnapshotRejectsDamage: any truncation or single-bit flip of a pass
// snapshot must fail restore — the per-section checksums cover every
// payload byte and the header fields are all semantic.
func TestSnapshotRejectsDamage(t *testing.T) {
	const nRec = 600
	tr := genEquivTrace(23, nRec, 0x31)
	cols := tr.Columns()
	cpA, ipsA := passPredictors("suite")
	pr, err := RunColumnsUntil(cols, cpA, ipsA, Options{}, 300)
	if err != nil {
		t.Fatal(err)
	}
	blob := snapshotPass(t, pr, cpA, ipsA)

	for _, n := range []int{0, 1, 7, 8, len(blob) / 3, len(blob) / 2, len(blob) - 1} {
		cpB, ipsB := passPredictors("suite")
		if _, err := restorePass(blob[:n], cpB, ipsB); err == nil {
			t.Errorf("restore of %d-byte truncation succeeded", n)
		}
	}
	step := len(blob)/97 + 1
	for off := 0; off < len(blob); off += step {
		flipped := append([]byte(nil), blob...)
		flipped[off] ^= 0x40
		cpB, ipsB := passPredictors("suite")
		if _, err := restorePass(flipped, cpB, ipsB); err == nil {
			t.Errorf("restore with bit flip at offset %d succeeded", off)
		}
	}
}

// FuzzSnapshotRoundTrip is the fuzzing face of the differential gate, in
// the style of FuzzSpillDecode/FuzzColumnarEquivalence: arbitrary traces,
// arbitrary split fractions, both pass kinds.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(int64(1), uint16(300), uint8(0x22), uint8(128))
	f.Add(int64(7), uint16(50), uint8(0xF1), uint8(0))
	f.Add(int64(42), uint16(900), uint8(0x08), uint8(255))
	f.Add(int64(-3), uint16(64), uint8(0x00), uint8(33))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, shape uint8, splitFrac uint8) {
		nRec := int(n) % 2048
		if nRec == 0 {
			return
		}
		tr := genEquivTrace(seed, nRec, shape)
		cols := tr.Columns()
		split := nRec * int(splitFrac) / 255
		for _, kind := range []string{"suite", "consolidated"} {
			cpRef, ipsRef := passPredictors(kind)
			ref, err := RunColumns(cols, cpRef, ipsRef, Options{})
			if err != nil {
				t.Fatal(err)
			}
			cpA, ipsA := passPredictors(kind)
			pr, err := RunColumnsUntil(cols, cpA, ipsA, Options{}, split)
			if err != nil {
				t.Fatal(err)
			}
			blob := snapshotPass(t, pr, cpA, ipsA)
			cpB, ipsB := passPredictors(kind)
			prB, err := restorePass(blob, cpB, ipsB)
			if err != nil {
				t.Fatalf("%s split %d: restore: %v", kind, split, err)
			}
			got, err := ResumeColumns(cols, cpB, ipsB, prB)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, ref) {
				t.Fatalf("%s split %d: resumed results diverged:\n got %+v\nwant %+v", kind, split, got, ref)
			}
			if !bytes.Equal(encodeStateBytes(t, cpB), encodeStateBytes(t, cpRef)) {
				t.Fatalf("%s split %d: resumed conditional state differs", kind, split)
			}
			for i := range ipsB {
				if !bytes.Equal(encodeStateBytes(t, ipsB[i]), encodeStateBytes(t, ipsRef[i])) {
					t.Fatalf("%s split %d: resumed indirect %d state differs", kind, split, i)
				}
			}
		}
	})
}
