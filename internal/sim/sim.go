// Package sim is the trace-driven simulation engine: the Go counterpart of
// the CBP-5 infrastructure the paper runs on (§4.2). It drives a
// conditional predictor and one or more indirect target predictors over a
// branch trace, routes returns to a return address stack, and accumulates
// per-class misprediction counts, reporting the paper's metric —
// mispredictions per kilo-instruction (MPKI).
package sim

import (
	"fmt"

	"blbp/internal/cond"
	"blbp/internal/predictor"
	"blbp/internal/ras"
	"blbp/internal/trace"
)

// Options tunes engine structures that are not under study.
type Options struct {
	// RASDepth sizes the return address stack (64 if zero).
	RASDepth int
}

func (o Options) rasDepth() int {
	if o.RASDepth <= 0 {
		return 64
	}
	return o.RASDepth
}

// Result accumulates one predictor's counts over one trace.
type Result struct {
	// Trace and Predictor identify the run.
	Trace     string
	Predictor string
	// Instructions is the total instruction count simulated.
	Instructions int64
	// Conditional branch counts (shared across indirect predictors run in
	// the same pass).
	CondBranches    int64
	CondMispredicts int64
	// Indirect jump/call counts for this predictor.
	IndirectBranches    int64
	IndirectMispredicts int64
	// NoPrediction counts indirect branches where the predictor had no
	// target to offer (a subset of IndirectMispredicts).
	NoPrediction int64
	// Return counts (RAS-predicted, shared across predictors).
	Returns           int64
	ReturnMispredicts int64
}

// IndirectMPKI returns indirect-target mispredictions per kilo-instruction,
// the paper's headline metric.
func (r Result) IndirectMPKI() float64 { return mpki(r.IndirectMispredicts, r.Instructions) }

// CondMPKI returns conditional mispredictions per kilo-instruction.
func (r Result) CondMPKI() float64 { return mpki(r.CondMispredicts, r.Instructions) }

// CondAccuracy returns the conditional predictor's accuracy in [0,1].
func (r Result) CondAccuracy() float64 {
	if r.CondBranches == 0 {
		return 0
	}
	return 1 - float64(r.CondMispredicts)/float64(r.CondBranches)
}

func mpki(mis, instructions int64) float64 {
	if instructions == 0 {
		return 0
	}
	return float64(mis) * 1000 / float64(instructions)
}

// instructionSize is the fixed instruction size convention shared with the
// workload generators: return addresses are call PC + 4.
const instructionSize = 4

// Run simulates one conditional predictor and a set of independent indirect
// predictors over the trace in a single pass, returning one Result per
// indirect predictor (in input order). All indirect predictors observe the
// identical event stream; conditional and return statistics are duplicated
// into every Result.
//
// Replay runs over the trace's columnar form (built and cached on first
// use; see trace.Columns) via RunColumns. Results are bit-identical to the
// record-slice reference RunRecords.
//
// VPC shares state with the conditional predictor, so a VPC instance must
// be the only indirect predictor in its pass and must be paired with its
// own *cond.HashedPerceptron as cp; see package vpc.
func Run(tr *trace.Trace, cp cond.Predictor, indirects []predictor.Indirect, opts Options) ([]Result, error) {
	if tr == nil {
		return nil, fmt.Errorf("sim: nil trace")
	}
	// Validate once up front (cached on the trace across passes) instead of
	// re-checking every record inside the hot loop; the columnar build then
	// inherits the validation.
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return RunColumns(tr.Columns(), cp, indirects, opts)
}

// RunColumns is the engine proper: Run over a columnar trace. Segments are
// replayed in order and every record within a segment in order, so each
// predictor observes exactly the interleaved event stream of the
// record-slice loop — only the per-record type switch and the
// cond.TargetTrainer assertion are hoisted to the segment level. Within
// conditional segments the per-record call sequence (predict, train, update
// history, feed indirects) is preserved verbatim: VPC and the consolidated
// predictor share state between the conditional and indirect sides, so the
// relative order of those calls is observable. The segment loop lives in
// runRange (resume.go), shared with the checkpoint/resume entry points so
// the interrupted and uninterrupted paths cannot drift.
func RunColumns(cols *trace.Columns, cp cond.Predictor, indirects []predictor.Indirect, opts Options) ([]Result, error) {
	if err := validateRun(cols, cp, indirects); err != nil {
		return nil, err
	}
	pr := &PausedRun{stack: ras.New(opts.rasDepth()), perPred: make([]Result, len(indirects))}
	runRange(cols, cp, indirects, pr, cols.Len())
	return finalize(cols, indirects, pr), nil
}

// RunRecords is the record-slice reference engine: the original per-record
// loop over tr.Records, kept verbatim (modulo the hoisted TargetTrainer
// assertion) as the differential baseline for the columnar path — the
// FuzzColumnarEquivalence gate and the sim_run_records bench entry compare
// against it. New callers should use Run.
func RunRecords(tr *trace.Trace, cp cond.Predictor, indirects []predictor.Indirect, opts Options) ([]Result, error) {
	if tr == nil {
		return nil, fmt.Errorf("sim: nil trace")
	}
	if cp == nil {
		return nil, fmt.Errorf("sim: nil conditional predictor")
	}
	if len(indirects) == 0 {
		return nil, fmt.Errorf("sim: no indirect predictors")
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	stack := ras.New(opts.rasDepth())
	var shared Result
	perPred := make([]Result, len(indirects))
	tt, hasTT := cp.(cond.TargetTrainer)

	for ri := range tr.Records {
		r := &tr.Records[ri]
		shared.Instructions += r.Instructions()

		switch r.Type {
		case trace.CondDirect:
			shared.CondBranches++
			pred := cp.Predict(r.PC)
			if pred != r.Taken {
				shared.CondMispredicts++
			}
			if hasTT {
				tt.TrainWithTarget(r.PC, r.Taken, r.Target)
			} else {
				cp.Train(r.PC, r.Taken)
			}
			cp.UpdateHistory(r.PC, r.Taken)
			for _, ip := range indirects {
				ip.OnCond(r.PC, r.Taken)
			}

		case trace.IndirectJump, trace.IndirectCall:
			for i, ip := range indirects {
				perPred[i].IndirectBranches++
				pred, ok := ip.Predict(r.PC)
				if !ok {
					perPred[i].NoPrediction++
					perPred[i].IndirectMispredicts++
				} else if pred != r.Target {
					perPred[i].IndirectMispredicts++
				}
				ip.Update(r.PC, r.Target)
			}
			if r.Type == trace.IndirectCall {
				stack.Push(r.PC + instructionSize)
			}
			cp.OnOther(r.PC, r.Target, r.Type)

		case trace.Return:
			shared.Returns++
			if !stack.Predict(r.Target) {
				shared.ReturnMispredicts++
			}
			cp.OnOther(r.PC, r.Target, r.Type)
			for _, ip := range indirects {
				ip.OnOther(r.PC, r.Target, r.Type)
			}

		case trace.DirectCall:
			stack.Push(r.PC + instructionSize)
			cp.OnOther(r.PC, r.Target, r.Type)
			for _, ip := range indirects {
				ip.OnOther(r.PC, r.Target, r.Type)
			}

		case trace.UncondDirect:
			cp.OnOther(r.PC, r.Target, r.Type)
			for _, ip := range indirects {
				ip.OnOther(r.PC, r.Target, r.Type)
			}
		}
	}

	for i, ip := range indirects {
		perPred[i].Trace = tr.Name
		perPred[i].Predictor = ip.Name()
		perPred[i].Instructions = shared.Instructions
		perPred[i].CondBranches = shared.CondBranches
		perPred[i].CondMispredicts = shared.CondMispredicts
		perPred[i].Returns = shared.Returns
		perPred[i].ReturnMispredicts = shared.ReturnMispredicts
	}
	return perPred, nil
}

// RunOne is a convenience wrapper for a single indirect predictor.
func RunOne(tr *trace.Trace, cp cond.Predictor, ip predictor.Indirect, opts Options) (Result, error) {
	res, err := Run(tr, cp, []predictor.Indirect{ip}, opts)
	if err != nil {
		return Result{}, err
	}
	return res[0], nil
}
