package sim

import (
	"testing"

	"blbp/internal/btb"
	"blbp/internal/cond"
	"blbp/internal/core"
	"blbp/internal/predictor"
	"blbp/internal/trace"
	"blbp/internal/workload"
)

// stubIndirect predicts a fixed target for every branch.
type stubIndirect struct {
	target uint64
	have   bool
}

func (s *stubIndirect) Name() string                                   { return "stub" }
func (s *stubIndirect) Predict(pc uint64) (uint64, bool)               { return s.target, s.have }
func (s *stubIndirect) Update(pc, actual uint64)                       {}
func (s *stubIndirect) OnCond(pc uint64, taken bool)                   {}
func (s *stubIndirect) OnOther(pc, target uint64, bt trace.BranchType) {}
func (s *stubIndirect) StorageBits() int                               { return 0 }

var _ predictor.Indirect = (*stubIndirect)(nil)

func buildTrace() *trace.Trace {
	tr := &trace.Trace{Name: "unit"}
	// 10 conditional (taken), 4 indirect to 0xAAAA, 2 indirect to 0xBBBB,
	// one call/return pair.
	for i := 0; i < 10; i++ {
		tr.Append(trace.Record{PC: 0x100, Target: 0x140, InstrBefore: 9, Type: trace.CondDirect, Taken: true})
	}
	for i := 0; i < 4; i++ {
		tr.Append(trace.Record{PC: 0x200, Target: 0xAAAA, InstrBefore: 4, Type: trace.IndirectJump, Taken: true})
	}
	for i := 0; i < 2; i++ {
		tr.Append(trace.Record{PC: 0x204, Target: 0xBBBB, InstrBefore: 4, Type: trace.IndirectJump, Taken: true})
	}
	tr.Append(trace.Record{PC: 0x300, Target: 0x4000, InstrBefore: 0, Type: trace.DirectCall, Taken: true})
	tr.Append(trace.Record{PC: 0x4080, Target: 0x304, InstrBefore: 7, Type: trace.Return, Taken: true})
	return tr
}

func TestCountsWithStub(t *testing.T) {
	tr := buildTrace()
	stub := &stubIndirect{target: 0xAAAA, have: true}
	res, err := RunOne(tr, cond.NewBimodal(1024), stub, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.IndirectBranches != 6 {
		t.Errorf("IndirectBranches = %d, want 6", res.IndirectBranches)
	}
	// Stub always says 0xAAAA: the 2 branches to 0xBBBB mispredict.
	if res.IndirectMispredicts != 2 {
		t.Errorf("IndirectMispredicts = %d, want 2", res.IndirectMispredicts)
	}
	if res.NoPrediction != 0 {
		t.Errorf("NoPrediction = %d, want 0", res.NoPrediction)
	}
	if res.CondBranches != 10 {
		t.Errorf("CondBranches = %d, want 10", res.CondBranches)
	}
	if res.Returns != 1 || res.ReturnMispredicts != 0 {
		t.Errorf("Returns/mis = %d/%d, want 1/0", res.Returns, res.ReturnMispredicts)
	}
	wantInstr := tr.Instructions()
	if res.Instructions != wantInstr {
		t.Errorf("Instructions = %d, want %d", res.Instructions, wantInstr)
	}
	if res.Trace != "unit" || res.Predictor != "stub" {
		t.Errorf("labels = %q/%q", res.Trace, res.Predictor)
	}
}

func TestNoPredictionCountsAsMispredict(t *testing.T) {
	tr := buildTrace()
	stub := &stubIndirect{have: false}
	res, err := RunOne(tr, cond.NewBimodal(1024), stub, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.IndirectMispredicts != 6 || res.NoPrediction != 6 {
		t.Errorf("mis/nopred = %d/%d, want 6/6", res.IndirectMispredicts, res.NoPrediction)
	}
}

func TestMPKIComputation(t *testing.T) {
	r := Result{Instructions: 2000, IndirectMispredicts: 3, CondMispredicts: 10, CondBranches: 100}
	if got := r.IndirectMPKI(); got != 1.5 {
		t.Errorf("IndirectMPKI = %v, want 1.5", got)
	}
	if got := r.CondMPKI(); got != 5.0 {
		t.Errorf("CondMPKI = %v, want 5.0", got)
	}
	if got := r.CondAccuracy(); got != 0.9 {
		t.Errorf("CondAccuracy = %v, want 0.9", got)
	}
	var zero Result
	if zero.IndirectMPKI() != 0 || zero.CondAccuracy() != 0 {
		t.Error("zero-value Result should produce zero metrics")
	}
}

func TestReturnMispredictOnColdStack(t *testing.T) {
	tr := &trace.Trace{Name: "ret"}
	tr.Append(trace.Record{PC: 0x100, Target: 0x9999, Type: trace.Return, Taken: true})
	res, err := RunOne(tr, cond.NewBimodal(64), &stubIndirect{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReturnMispredicts != 1 {
		t.Errorf("ReturnMispredicts = %d, want 1 (empty RAS)", res.ReturnMispredicts)
	}
}

func TestCallReturnMatchingAcrossIndirectCalls(t *testing.T) {
	tr := &trace.Trace{Name: "icall"}
	tr.Append(trace.Record{PC: 0x100, Target: 0x8000, Type: trace.IndirectCall, Taken: true})
	tr.Append(trace.Record{PC: 0x8010, Target: 0x104, Type: trace.Return, Taken: true})
	res, err := RunOne(tr, cond.NewBimodal(64), &stubIndirect{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReturnMispredicts != 0 {
		t.Errorf("ReturnMispredicts = %d, want 0 (indirect call pushed PC+4)", res.ReturnMispredicts)
	}
}

func TestMultiPredictorSinglePass(t *testing.T) {
	tr := buildTrace()
	good := &stubIndirect{target: 0xAAAA, have: true}
	bad := &stubIndirect{have: false}
	res, err := Run(tr, cond.NewBimodal(1024), []predictor.Indirect{good, bad}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	if res[0].IndirectMispredicts != 2 || res[1].IndirectMispredicts != 6 {
		t.Errorf("mispredicts = %d/%d, want 2/6", res[0].IndirectMispredicts, res[1].IndirectMispredicts)
	}
	// Shared statistics must be identical.
	if res[0].CondMispredicts != res[1].CondMispredicts || res[0].Instructions != res[1].Instructions {
		t.Error("shared statistics differ between predictors in one pass")
	}
}

func TestRealPredictorsEndToEnd(t *testing.T) {
	// A monomorphic indirect branch stream: all real predictors should
	// converge to near-zero indirect MPKI.
	tr := &trace.Trace{Name: "mono"}
	for i := 0; i < 2000; i++ {
		tr.Append(trace.Record{PC: 0x100, Target: 0x140, InstrBefore: 8, Type: trace.CondDirect, Taken: i%3 != 0})
		tr.Append(trace.Record{PC: 0x200, Target: 0x7000, InstrBefore: 5, Type: trace.IndirectJump, Taken: true})
	}
	blbp := core.New(core.DefaultConfig())
	base := btb.NewIndirect(btb.Default32K())
	res, err := Run(tr, cond.NewHashedPerceptron(cond.DefaultHPConfig()), []predictor.Indirect{blbp, base}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.IndirectMispredicts > 2 {
			t.Errorf("%s: %d indirect mispredicts on monomorphic stream, want <= 2", r.Predictor, r.IndirectMispredicts)
		}
	}
	// The conditional predictor should learn the period-3 pattern well.
	if res[0].CondAccuracy() < 0.95 {
		t.Errorf("conditional accuracy = %v, want >= 0.95", res[0].CondAccuracy())
	}
}

func TestErrorCases(t *testing.T) {
	tr := buildTrace()
	if _, err := Run(nil, cond.NewBimodal(4), []predictor.Indirect{&stubIndirect{}}, Options{}); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := Run(tr, nil, []predictor.Indirect{&stubIndirect{}}, Options{}); err == nil {
		t.Error("nil conditional predictor accepted")
	}
	if _, err := Run(tr, cond.NewBimodal(4), nil, Options{}); err == nil {
		t.Error("empty predictor list accepted")
	}
	badTrace := &trace.Trace{Records: []trace.Record{{Type: trace.BranchType(7), Taken: true}}}
	if _, err := Run(badTrace, cond.NewBimodal(4), []predictor.Indirect{&stubIndirect{}}, Options{}); err == nil {
		t.Error("invalid record accepted")
	}
}

func TestAccountingMatchesTraceAnalysis(t *testing.T) {
	// Engine accounting must agree exactly with offline trace analysis for
	// every workload family.
	specs := []workload.Spec{
		workload.InterpreterSpec("acc-i", "T", 30_000, workload.InterpreterParams{
			Opcodes: 8, ProgramLen: 24, Work: 20, CondPerHandler: 1, MonoCalls: 1, MonoSites: 8,
		}),
		workload.VDispatchSpec("acc-v", "T", 30_000, workload.VDispatchParams{
			Classes: 3, Sites: 2, Objects: 12, MethodWork: 20, MethodConds: 1, AlternatingSites: 1,
		}),
		workload.CallbacksSpec("acc-c", "T", 30_000, workload.CallbacksParams{
			Events: 4, Skew: 1.5, Wrappers: 2, HandlerWork: 20, HandlerConds: 1,
		}),
		workload.RecursiveSpec("acc-r", "T", 30_000, workload.RecursiveParams{
			MaxDepth: 40, MinDepth: 5, VisitorClasses: 2, Work: 10,
		}),
	}
	for _, spec := range specs {
		tr := spec.Build()
		st := trace.Analyze(tr)
		res, err := RunOne(tr, cond.NewBimodal(1024), &stubIndirect{}, Options{})
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if res.Instructions != st.Instructions {
			t.Errorf("%s: engine instructions %d != analysis %d", spec.Name, res.Instructions, st.Instructions)
		}
		if res.CondBranches != st.Count[trace.CondDirect] {
			t.Errorf("%s: cond count %d != analysis %d", spec.Name, res.CondBranches, st.Count[trace.CondDirect])
		}
		if res.IndirectBranches != st.IndirectCount() {
			t.Errorf("%s: indirect count %d != analysis %d", spec.Name, res.IndirectBranches, st.IndirectCount())
		}
		if res.Returns != st.Count[trace.Return] {
			t.Errorf("%s: return count %d != analysis %d", spec.Name, res.Returns, st.Count[trace.Return])
		}
	}
}

func TestRASOverflowVisibleInEngine(t *testing.T) {
	spec := workload.RecursiveSpec("deep", "T", 60_000, workload.RecursiveParams{
		MaxDepth: 100, MinDepth: 80, Work: 8,
	})
	tr := spec.Build()
	res, err := RunOne(tr, cond.NewBimodal(64), &stubIndirect{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReturnMispredicts == 0 {
		t.Error("recursion past RAS depth produced no return mispredicts")
	}
	// A deeper RAS must strictly help.
	res2, err := RunOne(tr, cond.NewBimodal(64), &stubIndirect{}, Options{RASDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ReturnMispredicts >= res.ReturnMispredicts {
		t.Errorf("256-deep RAS (%d mispredicts) not better than 64-deep (%d)",
			res2.ReturnMispredicts, res.ReturnMispredicts)
	}
}
