package sim

import (
	"fmt"

	"blbp/internal/cond"
	"blbp/internal/predictor"
	"blbp/internal/ras"
	"blbp/internal/snapshot"
	"blbp/internal/trace"
)

// PausedRun is the engine-side state of a partially replayed pass: the next
// unprocessed record index, the return address stack, and the accumulated
// counters. Together with the predictors' own snapshots (see
// predictor.Snapshotter) it is everything needed to resume a run in another
// process with bit-identical results: RunColumnsUntil → snapshot →
// RestorePausedRun → ResumeColumns equals one uninterrupted RunColumns.
type PausedRun struct {
	next    int // index of the first unprocessed record
	stack   *ras.Stack
	shared  Result
	perPred []Result
}

// Next returns the index of the first unprocessed trace record.
func (pr *PausedRun) Next() int { return pr.next }

// validateRun is the shared argument check of the columnar entry points.
func validateRun(cols *trace.Columns, cp cond.Predictor, indirects []predictor.Indirect) error {
	if cols == nil {
		return fmt.Errorf("sim: nil trace")
	}
	if cp == nil {
		return fmt.Errorf("sim: nil conditional predictor")
	}
	if len(indirects) == 0 {
		return fmt.Errorf("sim: no indirect predictors")
	}
	if err := cols.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	return nil
}

// runRange replays records [pr.next, stop) of the columnar trace, advancing
// pr. The segment bodies are RunColumns' loop verbatim with the iteration
// bounds clamped to the range; at full range ([0, Len)) the clamps are
// no-ops and the replay is bit-identical to the uninterrupted engine.
func runRange(cols *trace.Columns, cp cond.Predictor, indirects []predictor.Indirect, pr *PausedRun, stop int) {
	stack := pr.stack
	shared := &pr.shared
	perPred := pr.perPred
	pc, target := cols.PC(), cols.Target()
	tt, hasTT := cp.(cond.TargetTrainer)

	for _, seg := range cols.Segments() {
		s, en := seg.Start, seg.End
		if s < pr.next {
			s = pr.next
		}
		if en > stop {
			en = stop
		}
		if s >= en {
			continue
		}
		switch seg.Type {
		case trace.CondDirect:
			shared.CondBranches += int64(en - s)
			for i := s; i < en; i++ {
				taken := cols.Taken(i)
				if cp.Predict(pc[i]) != taken {
					shared.CondMispredicts++
				}
				if hasTT {
					tt.TrainWithTarget(pc[i], taken, target[i])
				} else {
					cp.Train(pc[i], taken)
				}
				cp.UpdateHistory(pc[i], taken)
				for _, ip := range indirects {
					ip.OnCond(pc[i], taken)
				}
			}

		case trace.IndirectJump, trace.IndirectCall:
			isCall := seg.Type == trace.IndirectCall
			for i := s; i < en; i++ {
				for j := range indirects {
					ip := indirects[j]
					perPred[j].IndirectBranches++
					pred, ok := ip.Predict(pc[i])
					if !ok {
						perPred[j].NoPrediction++
						perPred[j].IndirectMispredicts++
					} else if pred != target[i] {
						perPred[j].IndirectMispredicts++
					}
					ip.Update(pc[i], target[i])
				}
				if isCall {
					stack.Push(pc[i] + instructionSize)
				}
				cp.OnOther(pc[i], target[i], seg.Type)
			}

		case trace.Return:
			shared.Returns += int64(en - s)
			for i := s; i < en; i++ {
				if !stack.Predict(target[i]) {
					shared.ReturnMispredicts++
				}
				cp.OnOther(pc[i], target[i], trace.Return)
				for _, ip := range indirects {
					ip.OnOther(pc[i], target[i], trace.Return)
				}
			}

		case trace.DirectCall:
			for i := s; i < en; i++ {
				stack.Push(pc[i] + instructionSize)
				cp.OnOther(pc[i], target[i], trace.DirectCall)
				for _, ip := range indirects {
					ip.OnOther(pc[i], target[i], trace.DirectCall)
				}
			}

		case trace.UncondDirect:
			for i := s; i < en; i++ {
				cp.OnOther(pc[i], target[i], trace.UncondDirect)
				for _, ip := range indirects {
					ip.OnOther(pc[i], target[i], trace.UncondDirect)
				}
			}
		}
	}
	pr.next = stop
}

// finalize closes out a fully replayed run: the shared instruction count
// and per-predictor identity/shared-counter copies of RunColumns' epilogue.
func finalize(cols *trace.Columns, indirects []predictor.Indirect, pr *PausedRun) []Result {
	pr.shared.Instructions = cols.Instructions()
	perPred := pr.perPred
	for i, ip := range indirects {
		perPred[i].Trace = cols.Name
		perPred[i].Predictor = ip.Name()
		perPred[i].Instructions = pr.shared.Instructions
		perPred[i].CondBranches = pr.shared.CondBranches
		perPred[i].CondMispredicts = pr.shared.CondMispredicts
		perPred[i].Returns = pr.shared.Returns
		perPred[i].ReturnMispredicts = pr.shared.ReturnMispredicts
	}
	return perPred
}

// RunColumnsUntil replays records [0, stop) and returns the paused engine
// state (stop is clamped to the trace length). The predictors are left
// mid-run; serialize them alongside the PausedRun to checkpoint the pass.
func RunColumnsUntil(cols *trace.Columns, cp cond.Predictor, indirects []predictor.Indirect, opts Options, stop int) (*PausedRun, error) {
	if err := validateRun(cols, cp, indirects); err != nil {
		return nil, err
	}
	if stop < 0 {
		stop = 0
	}
	if n := cols.Len(); stop > n {
		stop = n
	}
	pr := &PausedRun{stack: ras.New(opts.rasDepth()), perPred: make([]Result, len(indirects))}
	runRange(cols, cp, indirects, pr, stop)
	return pr, nil
}

// ResumeColumns replays the remaining records of a paused run to completion
// and returns the final results. cp and indirects must hold the same state
// they had when the run paused (the same instances, or fresh ones restored
// from snapshots); the combined outcome is bit-identical to one
// uninterrupted RunColumns over the whole trace.
func ResumeColumns(cols *trace.Columns, cp cond.Predictor, indirects []predictor.Indirect, pr *PausedRun) ([]Result, error) {
	if err := validateRun(cols, cp, indirects); err != nil {
		return nil, err
	}
	if pr == nil {
		return nil, fmt.Errorf("sim: nil paused run")
	}
	if len(pr.perPred) != len(indirects) {
		return nil, fmt.Errorf("sim: paused run tracks %d indirect predictors, resuming with %d", len(pr.perPred), len(indirects))
	}
	if pr.next > cols.Len() {
		return nil, fmt.Errorf("sim: paused at record %d beyond trace of %d", pr.next, cols.Len())
	}
	runRange(cols, cp, indirects, pr, cols.Len())
	return finalize(cols, indirects, pr), nil
}

// maxSnapshotPasses bounds decoded per-predictor result counts so a corrupt
// count cannot drive preallocation.
const maxSnapshotPasses = 1 << 16

// maxRASCapacity bounds the decoded return-address-stack capacity.
const maxRASCapacity = 1 << 20

// EncodeState serializes the paused engine state into a snapshot section.
func (pr *PausedRun) EncodeState(e *snapshot.Enc) {
	e.Int(pr.next)
	e.Int(pr.stack.Capacity())
	pr.stack.EncodeState(e)
	encodeResult(e, &pr.shared)
	e.Int(len(pr.perPred))
	for i := range pr.perPred {
		encodeResult(e, &pr.perPred[i])
	}
}

// RestorePausedRun rebuilds a paused run from state captured by
// EncodeState.
func RestorePausedRun(d *snapshot.Dec) (*PausedRun, error) {
	next := d.Int()
	capacity := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if next < 0 {
		return nil, fmt.Errorf("%w: negative resume index", snapshot.ErrCorrupt)
	}
	if capacity <= 0 || capacity > maxRASCapacity {
		return nil, fmt.Errorf("%w: RAS capacity %d outside (0,%d]", snapshot.ErrCorrupt, capacity, maxRASCapacity)
	}
	stack, err := ras.RestoreStack(d, capacity)
	if err != nil {
		return nil, err
	}
	pr := &PausedRun{next: next, stack: stack}
	if err := decodeResult(d, &pr.shared); err != nil {
		return nil, err
	}
	n := d.Int()
	if err := d.Err(); err != nil {
		return nil, err
	}
	if n <= 0 || n > maxSnapshotPasses {
		return nil, fmt.Errorf("%w: paused run tracks %d predictors", snapshot.ErrCorrupt, n)
	}
	pr.perPred = make([]Result, n)
	for i := range pr.perPred {
		if err := decodeResult(d, &pr.perPred[i]); err != nil {
			return nil, err
		}
	}
	return pr, nil
}

// encodeResult serializes a Result's counters. The identity strings are
// excluded: they are assigned at finalize from the trace and predictors.
func encodeResult(e *snapshot.Enc, r *Result) {
	e.I64(r.Instructions)
	e.I64(r.CondBranches)
	e.I64(r.CondMispredicts)
	e.I64(r.IndirectBranches)
	e.I64(r.IndirectMispredicts)
	e.I64(r.NoPrediction)
	e.I64(r.Returns)
	e.I64(r.ReturnMispredicts)
}

func decodeResult(d *snapshot.Dec, r *Result) error {
	r.Instructions = d.I64()
	r.CondBranches = d.I64()
	r.CondMispredicts = d.I64()
	r.IndirectBranches = d.I64()
	r.IndirectMispredicts = d.I64()
	r.NoPrediction = d.I64()
	r.Returns = d.I64()
	r.ReturnMispredicts = d.I64()
	if err := d.Err(); err != nil {
		return err
	}
	if r.Instructions < 0 || r.CondBranches < 0 || r.CondMispredicts < 0 ||
		r.IndirectBranches < 0 || r.IndirectMispredicts < 0 || r.NoPrediction < 0 ||
		r.Returns < 0 || r.ReturnMispredicts < 0 {
		return fmt.Errorf("%w: negative result counter", snapshot.ErrCorrupt)
	}
	return nil
}
