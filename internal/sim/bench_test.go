package sim

import (
	"testing"

	"blbp/internal/cond"
	"blbp/internal/core"
	"blbp/internal/predictor"
)

// BenchmarkSimRun drives one full engine pass (hashed perceptron + BLBP)
// over the same mixed trace through both replay representations, so the
// record-slice reference loop and the class-segmented columnar loop are
// compared head to head on identical predictions. ns/op is per record.
func BenchmarkSimRun(b *testing.B) {
	const nRec = 1 << 16
	tr := genEquivTrace(1234, nRec, 0x62)
	if err := tr.Validate(); err != nil {
		b.Fatal(err)
	}
	cols := tr.Columns()
	pass := func() (cond.Predictor, []predictor.Indirect) {
		return cond.NewHashedPerceptron(cond.DefaultHPConfig()),
			[]predictor.Indirect{core.New(core.DefaultConfig())}
	}
	b.Run("records", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i += nRec {
			cp, ips := pass()
			if _, err := RunRecords(tr, cp, ips, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("columnar", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i += nRec {
			cp, ips := pass()
			if _, err := RunColumns(cols, cp, ips, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
