package sim

import (
	"fmt"
	"sync"

	"blbp/internal/cond"
	"blbp/internal/predictor"
	"blbp/internal/ras"
	"blbp/internal/trace"
)

// Tape is the shared, replayable side of simulating one trace. Everything a
// pass observes that is a function of the trace alone — per-record
// instruction counts, the conditional outcome stream, the RAS push/pop
// sequence — is identical across every pass over that trace, so the tape
// precomputes it once: the aggregate totals at construction, the
// return-stack misprediction count once per RAS depth, and the conditional
// predictor's misprediction count once per conditional configuration key.
// Passes that declare a shared conditional configuration then replay the
// tape, driving only their indirect predictors over the record stream,
// instead of re-simulating the conditional and return sides.
//
// A Tape is safe for concurrent use: the scheduler runs many passes of the
// same workload at once and they all share one tape.
type Tape struct {
	tr           *trace.Trace
	instructions int64
	condBranches int64
	returns      int64

	mu   sync.Mutex
	ras  map[int]*rasMemo
	cond map[string]*condMemo
}

// condMemo memoizes one conditional configuration's misprediction count.
// Once gives single-flight semantics: concurrent passes over the same key
// block until the first has simulated the conditional side, then share it.
type condMemo struct {
	once        sync.Once
	mispredicts int64
}

type rasMemo struct {
	once        sync.Once
	mispredicts int64
}

// NewTape validates the trace and scans it once for the pass-invariant
// totals. The conditional and RAS sides are filled in lazily on first use.
func NewTape(tr *trace.Trace) (*Tape, error) {
	if tr == nil {
		return nil, fmt.Errorf("sim: nil trace")
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	tp := &Tape{tr: tr, ras: make(map[int]*rasMemo), cond: make(map[string]*condMemo)}
	for i := range tr.Records {
		r := &tr.Records[i]
		tp.instructions += r.Instructions()
		switch r.Type {
		case trace.CondDirect:
			tp.condBranches++
		case trace.Return:
			tp.returns++
		}
	}
	return tp, nil
}

// Trace returns the underlying trace (shared; callers must not mutate it).
func (tp *Tape) Trace() *trace.Trace { return tp.tr }

// Instructions returns the trace's total instruction count.
func (tp *Tape) Instructions() int64 { return tp.instructions }

// condMispredicts returns the misprediction count of the conditional
// configuration named by key, simulating cp over the trace on the key's
// first use. Callers guarantee that every cp arriving under one key is a
// freshly constructed predictor of the identical configuration; later
// arrivals are discarded unused.
func (tp *Tape) condMispredicts(key string, cp cond.Predictor) int64 {
	tp.mu.Lock()
	m := tp.cond[key]
	if m == nil {
		m = &condMemo{}
		tp.cond[key] = m
	}
	tp.mu.Unlock()
	m.once.Do(func() { m.mispredicts = tp.simulateCond(cp) })
	return m.mispredicts
}

// simulateCond drives the conditional predictor over the trace exactly as
// Run does — same call sequence, no indirect predictors — and returns its
// misprediction count.
func (tp *Tape) simulateCond(cp cond.Predictor) int64 {
	tt, hasTT := cp.(cond.TargetTrainer)
	var mis int64
	for i := range tp.tr.Records {
		r := &tp.tr.Records[i]
		if r.Type == trace.CondDirect {
			if cp.Predict(r.PC) != r.Taken {
				mis++
			}
			if hasTT {
				tt.TrainWithTarget(r.PC, r.Taken, r.Target)
			} else {
				cp.Train(r.PC, r.Taken)
			}
			cp.UpdateHistory(r.PC, r.Taken)
		} else {
			cp.OnOther(r.PC, r.Target, r.Type)
		}
	}
	return mis
}

// returnMispredicts returns the RAS misprediction count at the given stack
// depth, replaying the trace's call/return sequence on the depth's first
// use.
func (tp *Tape) returnMispredicts(depth int) int64 {
	tp.mu.Lock()
	m := tp.ras[depth]
	if m == nil {
		m = &rasMemo{}
		tp.ras[depth] = m
	}
	tp.mu.Unlock()
	m.once.Do(func() {
		stack := ras.New(depth)
		var mis int64
		for i := range tp.tr.Records {
			r := &tp.tr.Records[i]
			switch r.Type {
			case trace.DirectCall, trace.IndirectCall:
				stack.Push(r.PC + instructionSize)
			case trace.Return:
				if !stack.Predict(r.Target) {
					mis++
				}
			}
		}
		m.mispredicts = mis
	})
	return m.mispredicts
}

// Run simulates one pass over the tape's trace. A non-empty condKey names
// the pass's conditional predictor configuration: the conditional and
// return-stack sides are then sourced from the tape (simulated once per
// key and depth, shared by every pass that declares them) and only the
// indirect predictors replay the record stream. With condKey == "" the pass
// owns conditional state — VPC and the consolidated predictor share state
// between the two sides — and the full engine runs instead.
//
// Every caller passing the same condKey must construct cp identically;
// results are bit-identical to Run because the conditional predictor, the
// RAS, and the indirect predictors never exchange state within a pass.
func (tp *Tape) Run(condKey string, cp cond.Predictor, indirects []predictor.Indirect, opts Options) ([]Result, error) {
	if condKey == "" {
		return Run(tp.tr, cp, indirects, opts)
	}
	if cp == nil {
		return nil, fmt.Errorf("sim: nil conditional predictor")
	}
	if len(indirects) == 0 {
		return nil, fmt.Errorf("sim: no indirect predictors")
	}
	condMis := tp.condMispredicts(condKey, cp)
	retMis := tp.returnMispredicts(opts.rasDepth())

	perPred := make([]Result, len(indirects))
	for ri := range tp.tr.Records {
		r := &tp.tr.Records[ri]
		switch r.Type {
		case trace.CondDirect:
			for _, ip := range indirects {
				ip.OnCond(r.PC, r.Taken)
			}
		case trace.IndirectJump, trace.IndirectCall:
			for i, ip := range indirects {
				perPred[i].IndirectBranches++
				pred, ok := ip.Predict(r.PC)
				if !ok {
					perPred[i].NoPrediction++
					perPred[i].IndirectMispredicts++
				} else if pred != r.Target {
					perPred[i].IndirectMispredicts++
				}
				ip.Update(r.PC, r.Target)
			}
		default: // Return, DirectCall, UncondDirect
			for _, ip := range indirects {
				ip.OnOther(r.PC, r.Target, r.Type)
			}
		}
	}

	for i, ip := range indirects {
		perPred[i].Trace = tp.tr.Name
		perPred[i].Predictor = ip.Name()
		perPred[i].Instructions = tp.instructions
		perPred[i].CondBranches = tp.condBranches
		perPred[i].CondMispredicts = condMis
		perPred[i].Returns = tp.returns
		perPred[i].ReturnMispredicts = retMis
	}
	return perPred, nil
}
