package sim

import (
	"fmt"
	"sync"

	"blbp/internal/cond"
	"blbp/internal/predictor"
	"blbp/internal/ras"
	"blbp/internal/trace"
)

// Tape is the shared, replayable side of simulating one trace. Everything a
// pass observes that is a function of the trace alone — per-record
// instruction counts, the conditional outcome stream, the RAS push/pop
// sequence — is identical across every pass over that trace, so the tape
// precomputes it once: the aggregate totals at construction, the
// return-stack misprediction count once per RAS depth, and the conditional
// predictor's misprediction count once per conditional configuration key.
// Passes that declare a shared conditional configuration then replay the
// tape, driving only their indirect predictors over the record stream,
// instead of re-simulating the conditional and return sides.
//
// The tape replays the trace's columnar form (trace.Columns): its loops run
// segment by segment, skipping classes a memo does not observe and feeding
// predictors whole same-class runs at a time.
//
// A Tape is safe for concurrent use: the scheduler runs many passes of the
// same workload at once and they all share one tape.
type Tape struct {
	cols *trace.Columns

	mu   sync.Mutex
	ras  map[int]*rasMemo
	cond map[string]*condMemo
}

// condMemo memoizes one conditional configuration's misprediction count.
// Once gives single-flight semantics: concurrent passes over the same key
// block until the first has simulated the conditional side, then share it.
type condMemo struct {
	once        sync.Once
	mispredicts int64
}

type rasMemo struct {
	once        sync.Once
	mispredicts int64
}

// NewTape validates the trace and builds (or reuses) its columnar form. The
// conditional and RAS sides are filled in lazily on first use.
func NewTape(tr *trace.Trace) (*Tape, error) {
	if tr == nil {
		return nil, fmt.Errorf("sim: nil trace")
	}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return NewTapeColumns(tr.Columns())
}

// NewTapeColumns builds a tape directly over a columnar trace. The
// pass-invariant totals are read from the columns' precomputed counts, so
// construction is O(1) after validation.
func NewTapeColumns(cols *trace.Columns) (*Tape, error) {
	if cols == nil {
		return nil, fmt.Errorf("sim: nil trace")
	}
	if err := cols.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return &Tape{cols: cols, ras: make(map[int]*rasMemo), cond: make(map[string]*condMemo)}, nil
}

// Columns returns the underlying columnar trace (shared; callers must not
// mutate it).
func (tp *Tape) Columns() *trace.Columns { return tp.cols }

// Instructions returns the trace's total instruction count.
func (tp *Tape) Instructions() int64 { return tp.cols.Instructions() }

// condMispredicts returns the misprediction count of the conditional
// configuration named by key, simulating cp over the trace on the key's
// first use. Callers guarantee that every cp arriving under one key is a
// freshly constructed predictor of the identical configuration; later
// arrivals are discarded unused.
func (tp *Tape) condMispredicts(key string, cp cond.Predictor) int64 {
	tp.mu.Lock()
	m := tp.cond[key]
	if m == nil {
		m = &condMemo{}
		tp.cond[key] = m
	}
	tp.mu.Unlock()
	m.once.Do(func() { m.mispredicts = tp.simulateCond(cp) })
	return m.mispredicts
}

// simulateCond drives the conditional predictor over the trace exactly as
// Run does — same call sequence, no indirect predictors — and returns its
// misprediction count. Segments hoist the class dispatch; per-record order
// within and across segments is the trace order.
func (tp *Tape) simulateCond(cp cond.Predictor) int64 {
	tt, hasTT := cp.(cond.TargetTrainer)
	pc, target := tp.cols.PC(), tp.cols.Target()
	var mis int64
	for _, seg := range tp.cols.Segments() {
		if seg.Type == trace.CondDirect {
			for i := seg.Start; i < seg.End; i++ {
				taken := tp.cols.Taken(i)
				if cp.Predict(pc[i]) != taken {
					mis++
				}
				if hasTT {
					tt.TrainWithTarget(pc[i], taken, target[i])
				} else {
					cp.Train(pc[i], taken)
				}
				cp.UpdateHistory(pc[i], taken)
			}
		} else {
			for i := seg.Start; i < seg.End; i++ {
				cp.OnOther(pc[i], target[i], seg.Type)
			}
		}
	}
	return mis
}

// returnMispredicts returns the RAS misprediction count at the given stack
// depth, replaying the trace's call/return sequence on the depth's first
// use. Only call and return segments are visited; the (dominant)
// conditional and jump segments are skipped whole.
func (tp *Tape) returnMispredicts(depth int) int64 {
	tp.mu.Lock()
	m := tp.ras[depth]
	if m == nil {
		m = &rasMemo{}
		tp.ras[depth] = m
	}
	tp.mu.Unlock()
	m.once.Do(func() {
		stack := ras.New(depth)
		pc, target := tp.cols.PC(), tp.cols.Target()
		var mis int64
		for _, seg := range tp.cols.Segments() {
			switch seg.Type {
			case trace.DirectCall, trace.IndirectCall:
				for i := seg.Start; i < seg.End; i++ {
					stack.Push(pc[i] + instructionSize)
				}
			case trace.Return:
				for i := seg.Start; i < seg.End; i++ {
					if !stack.Predict(target[i]) {
						mis++
					}
				}
			}
		}
		m.mispredicts = mis
	})
	return m.mispredicts
}

// Run simulates one pass over the tape's trace. A non-empty condKey names
// the pass's conditional predictor configuration: the conditional and
// return-stack sides are then sourced from the tape (simulated once per
// key and depth, shared by every pass that declares them) and only the
// indirect predictors replay the record stream. With condKey == "" the pass
// owns conditional state — VPC and the consolidated predictor share state
// between the two sides — and the full engine runs instead.
//
// Every caller passing the same condKey must construct cp identically;
// results are bit-identical to Run because the conditional predictor, the
// RAS, and the indirect predictors never exchange state within a pass. The
// same independence makes the segment-level loop interchange here legal:
// each indirect predictor consumes a whole segment before the next
// predictor starts it, which cannot be observed when predictors share
// nothing. Predictors implementing predictor.SpanFeeder consume segments
// through one call instead of one interface call per record.
func (tp *Tape) Run(condKey string, cp cond.Predictor, indirects []predictor.Indirect, opts Options) ([]Result, error) {
	if condKey == "" {
		return RunColumns(tp.cols, cp, indirects, opts)
	}
	if cp == nil {
		return nil, fmt.Errorf("sim: nil conditional predictor")
	}
	if len(indirects) == 0 {
		return nil, fmt.Errorf("sim: no indirect predictors")
	}
	condMis := tp.condMispredicts(condKey, cp)
	retMis := tp.returnMispredicts(opts.rasDepth())

	perPred := make([]Result, len(indirects))
	pc, target := tp.cols.PC(), tp.cols.Target()
	spans := make([]predictor.SpanFeeder, len(indirects))
	for i, ip := range indirects {
		if sf, ok := ip.(predictor.SpanFeeder); ok {
			spans[i] = sf
		}
	}
	for _, seg := range tp.cols.Segments() {
		switch seg.Type {
		case trace.CondDirect:
			for j, ip := range indirects {
				if spans[j] != nil {
					spans[j].OnCondSpan(tp.cols, seg.Start, seg.End)
					continue
				}
				for i := seg.Start; i < seg.End; i++ {
					ip.OnCond(pc[i], tp.cols.Taken(i))
				}
			}
		case trace.IndirectJump, trace.IndirectCall:
			for j, ip := range indirects {
				var branches, mispredicts, noPred int64
				for i := seg.Start; i < seg.End; i++ {
					branches++
					pred, ok := ip.Predict(pc[i])
					if !ok {
						noPred++
						mispredicts++
					} else if pred != target[i] {
						mispredicts++
					}
					ip.Update(pc[i], target[i])
				}
				perPred[j].IndirectBranches += branches
				perPred[j].IndirectMispredicts += mispredicts
				perPred[j].NoPrediction += noPred
			}
		default: // Return, DirectCall, UncondDirect
			for j, ip := range indirects {
				if spans[j] != nil {
					spans[j].OnOtherSpan(tp.cols, seg.Start, seg.End, seg.Type)
					continue
				}
				for i := seg.Start; i < seg.End; i++ {
					ip.OnOther(pc[i], target[i], seg.Type)
				}
			}
		}
	}

	for i, ip := range indirects {
		perPred[i].Trace = tp.cols.Name
		perPred[i].Predictor = ip.Name()
		perPred[i].Instructions = tp.cols.Instructions()
		perPred[i].CondBranches = tp.cols.Count(trace.CondDirect)
		perPred[i].CondMispredicts = condMis
		perPred[i].Returns = tp.cols.Count(trace.Return)
		perPred[i].ReturnMispredicts = retMis
	}
	return perPred, nil
}
