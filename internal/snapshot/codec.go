package snapshot

import "fmt"

// Enc is an append-only little-endian encoder for section payloads. All
// integers are fixed-width (snapshots trade a few bytes for a trivially
// auditable layout); slices carry a leading element count so the decoder
// can verify shape against the restoring structure.
type Enc struct {
	buf []byte
}

// Bytes appends a length-prefixed byte string (e.g. a nested snapshot).
func (e *Enc) Bytes(b []byte) {
	e.Int(len(b))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.Int(len(s))
	e.buf = append(e.buf, s...)
}

// U64 appends a fixed-width little-endian uint64.
func (e *Enc) U64(v uint64) {
	e.buf = append(e.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I64 appends an int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int.
func (e *Enc) Int(v int) { e.U64(uint64(int64(v))) }

// U32 appends a uint32.
func (e *Enc) U32(v uint32) { e.U64(uint64(v)) }

// U8 appends a byte (widened; layout simplicity over density).
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// I8 appends an int8.
func (e *Enc) I8(v int8) { e.buf = append(e.buf, uint8(v)) }

// Bool appends a bool as one byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// U64s appends a count-prefixed []uint64.
func (e *Enc) U64s(s []uint64) {
	e.Int(len(s))
	for _, v := range s {
		e.U64(v)
	}
}

// I64s appends a count-prefixed []int64.
func (e *Enc) I64s(s []int64) {
	e.Int(len(s))
	for _, v := range s {
		e.I64(v)
	}
}

// U32s appends a count-prefixed []uint32.
func (e *Enc) U32s(s []uint32) {
	e.Int(len(s))
	for _, v := range s {
		e.U32(v)
	}
}

// U16s appends a count-prefixed []uint16.
func (e *Enc) U16s(s []uint16) {
	e.Int(len(s))
	for _, v := range s {
		e.U64(uint64(v))
	}
}

// U8s appends a count-prefixed []uint8.
func (e *Enc) U8s(s []uint8) {
	e.Int(len(s))
	e.buf = append(e.buf, s...)
}

// I8s appends a count-prefixed []int8.
func (e *Enc) I8s(s []int8) {
	e.Int(len(s))
	for _, v := range s {
		e.buf = append(e.buf, uint8(v))
	}
}

// Bools appends a count-prefixed []bool, one byte per element.
func (e *Enc) Bools(s []bool) {
	e.Int(len(s))
	for _, v := range s {
		e.Bool(v)
	}
}

// Len returns the number of payload bytes encoded so far.
func (e *Enc) Len() int { return len(e.buf) }

// Dec decodes a section payload written by Enc. Errors are sticky: the
// first failed read poisons the decoder, every later read returns zero
// values, and Err/Finish report the failure — so restore code can decode a
// whole section linearly and check once at the end. The slice readers fill
// caller-owned storage and fail with ErrMismatch when the stored count
// differs, making structure-shape agreement part of decoding.
type Dec struct {
	data []byte
	off  int
	err  error
}

// Err returns the first decode error, if any.
func (d *Dec) Err() error { return d.err }

// Finish returns the first decode error, or ErrCorrupt when the section
// has unconsumed trailing bytes (a layout drift both sides must agree on).
func (d *Dec) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.data) {
		return fmt.Errorf("%w: %d trailing bytes in section", ErrCorrupt, len(d.data)-d.off)
	}
	return nil
}

func (d *Dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.data)-d.off < n {
		d.fail(fmt.Errorf("%w: section truncated", ErrCorrupt))
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

// U64 reads a fixed-width little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return leU64(b)
}

// I64 reads an int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an int.
func (d *Dec) Int() int { return int(d.I64()) }

// U32 reads a uint32, failing if the stored value overflows 32 bits.
func (d *Dec) U32() uint32 {
	v := d.U64()
	if v > 0xffffffff {
		d.fail(fmt.Errorf("%w: value %d overflows uint32", ErrCorrupt, v))
		return 0
	}
	return uint32(v)
}

// U8 reads a byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// I8 reads an int8.
func (d *Dec) I8() int8 { return int8(d.U8()) }

// Bool reads a bool, failing on bytes other than 0 or 1.
func (d *Dec) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("%w: invalid bool byte", ErrCorrupt))
		return false
	}
}

// count reads a slice element count and checks it equals want.
func (d *Dec) count(want int) bool {
	n := d.Int()
	if d.err != nil {
		return false
	}
	if n != want {
		d.fail(fmt.Errorf("%w: stored count %d, structure holds %d", ErrMismatch, n, want))
		return false
	}
	return true
}

// varCount reads a slice element count bounded by max.
func (d *Dec) varCount(max int) int {
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if n < 0 || n > max {
		d.fail(fmt.Errorf("%w: count %d outside [0,%d]", ErrCorrupt, n, max))
		return 0
	}
	return n
}

// BytesMax reads a length-prefixed byte string of at most max bytes.
func (d *Dec) BytesMax(max int) []byte {
	n := d.varCount(max)
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// StringMax reads a length-prefixed string of at most max bytes.
func (d *Dec) StringMax(max int) string { return string(d.BytesMax(max)) }

// U64sInto fills dst from a count-prefixed []uint64 of exactly len(dst).
func (d *Dec) U64sInto(dst []uint64) {
	if !d.count(len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = d.U64()
	}
}

// U64sMax reads a count-prefixed []uint64 of at most max elements.
func (d *Dec) U64sMax(max int) []uint64 {
	n := d.varCount(max)
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.U64()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// I64sInto fills dst from a count-prefixed []int64 of exactly len(dst).
func (d *Dec) I64sInto(dst []int64) {
	if !d.count(len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = d.I64()
	}
}

// U32sInto fills dst from a count-prefixed []uint32 of exactly len(dst).
func (d *Dec) U32sInto(dst []uint32) {
	if !d.count(len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = d.U32()
	}
}

// U16sInto fills dst from a count-prefixed []uint16 of exactly len(dst).
func (d *Dec) U16sInto(dst []uint16) {
	if !d.count(len(dst)) {
		return
	}
	for i := range dst {
		v := d.U64()
		if v > 0xffff {
			d.fail(fmt.Errorf("%w: value %d overflows uint16", ErrCorrupt, v))
			return
		}
		dst[i] = uint16(v)
	}
}

// U8sInto fills dst from a count-prefixed []uint8 of exactly len(dst).
func (d *Dec) U8sInto(dst []uint8) {
	if !d.count(len(dst)) {
		return
	}
	copy(dst, d.take(len(dst)))
}

// I8sInto fills dst from a count-prefixed []int8 of exactly len(dst).
func (d *Dec) I8sInto(dst []int8) {
	if !d.count(len(dst)) {
		return
	}
	b := d.take(len(dst))
	if b == nil {
		return
	}
	for i := range dst {
		dst[i] = int8(b[i])
	}
}

// BoolsInto fills dst from a count-prefixed []bool of exactly len(dst).
func (d *Dec) BoolsInto(dst []bool) {
	if !d.count(len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = d.Bool()
	}
}
