package snapshot

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFileAtomic durably publishes a file at path: the payload is written
// to a temp file in the same directory (named after tmpPattern, so crash
// leftovers are recognizable), fsynced, chmodded to the conventional 0644
// shared-read mode (os.CreateTemp's private 0600 must not leak through the
// rename), closed, renamed onto path, and the directory is fsynced so the
// rename itself survives power loss. A crash at any point leaves either the
// old file, the new file, or a stray temp file — never a partial payload
// under the canonical name. The spill tier (internal/tracecache) and the
// snapshot writers share this discipline; see DESIGN.md §7.
func WriteFileAtomic(path, tmpPattern string, write func(w io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, tmpPattern)
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Chmod(0o644); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
