package snapshot

import (
	"bytes"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

type tcfg struct {
	A int
	B string
}

func buildContainer() *Container {
	c := NewContainer("test", Fingerprint(tcfg{A: 3, B: "x"}))
	e := c.Section("ints")
	e.U64(0xdeadbeefcafef00d)
	e.I64(-42)
	e.Int(7)
	e.U32(0xffffffff)
	e.U8(200)
	e.I8(-5)
	e.Bool(true)
	e.Bool(false)
	s := c.Section("slices")
	s.U64s([]uint64{1, 2, 3})
	s.I64s([]int64{-1, 0, 1})
	s.U32s([]uint32{9, 8})
	s.U16s([]uint16{1000, 2000})
	s.U8s([]uint8{4, 5, 6})
	s.I8s([]int8{-7, 7})
	s.Bools([]bool{true, false, true})
	s.String("hello")
	s.Bytes([]byte{0xaa, 0xbb})
	return c
}

func TestContainerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := buildContainer().EncodeTo(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	fpr := Fingerprint(tcfg{A: 3, B: "x"})
	d, err := ReadContainer(bytes.NewReader(buf.Bytes()), "test", fpr)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	ints, err := d.Section("ints")
	if err != nil {
		t.Fatal(err)
	}
	if got := ints.U64(); got != 0xdeadbeefcafef00d {
		t.Errorf("U64 = %x", got)
	}
	if got := ints.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := ints.Int(); got != 7 {
		t.Errorf("Int = %d", got)
	}
	if got := ints.U32(); got != 0xffffffff {
		t.Errorf("U32 = %x", got)
	}
	if got := ints.U8(); got != 200 {
		t.Errorf("U8 = %d", got)
	}
	if got := ints.I8(); got != -5 {
		t.Errorf("I8 = %d", got)
	}
	if !ints.Bool() || ints.Bool() {
		t.Errorf("Bool sequence wrong")
	}
	if err := ints.Finish(); err != nil {
		t.Errorf("ints Finish: %v", err)
	}

	sl, err := d.Section("slices")
	if err != nil {
		t.Fatal(err)
	}
	u64s := make([]uint64, 3)
	sl.U64sInto(u64s)
	i64s := make([]int64, 3)
	sl.I64sInto(i64s)
	u32s := make([]uint32, 2)
	sl.U32sInto(u32s)
	u16s := make([]uint16, 2)
	sl.U16sInto(u16s)
	u8s := make([]uint8, 3)
	sl.U8sInto(u8s)
	i8s := make([]int8, 2)
	sl.I8sInto(i8s)
	bools := make([]bool, 3)
	sl.BoolsInto(bools)
	str := sl.StringMax(16)
	bs := sl.BytesMax(16)
	if err := sl.Finish(); err != nil {
		t.Fatalf("slices Finish: %v", err)
	}
	if u64s[2] != 3 || i64s[0] != -1 || u32s[1] != 8 || u16s[1] != 2000 ||
		u8s[0] != 4 || i8s[0] != -7 || !bools[2] || str != "hello" || !bytes.Equal(bs, []byte{0xaa, 0xbb}) {
		t.Errorf("slice round trip mismatch: %v %v %v %v %v %v %v %q %x",
			u64s, i64s, u32s, u16s, u8s, i8s, bools, str, bs)
	}
}

func TestReadContainerRejectsDamage(t *testing.T) {
	var buf bytes.Buffer
	if err := buildContainer().EncodeTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	fpr := Fingerprint(tcfg{A: 3, B: "x"})

	// Wrong magic.
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xff
	if _, err := ReadContainer(bytes.NewReader(bad), "test", fpr); !errors.Is(err, ErrBadMagic) {
		t.Errorf("wrong magic: got %v, want ErrBadMagic", err)
	}
	// Wrong predictor name and wrong fingerprint.
	if _, err := ReadContainer(bytes.NewReader(good), "other", fpr); !errors.Is(err, ErrMismatch) {
		t.Errorf("wrong name: got %v, want ErrMismatch", err)
	}
	if _, err := ReadContainer(bytes.NewReader(good), "test", fpr^1); !errors.Is(err, ErrMismatch) {
		t.Errorf("wrong fingerprint: got %v, want ErrMismatch", err)
	}
	// Truncation at every prefix length must fail, never panic or succeed.
	for n := 0; n < len(good); n++ {
		if _, err := ReadContainer(bytes.NewReader(good[:n]), "test", fpr); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		}
	}
	// A bit flip anywhere in a section payload must fail the checksum. The
	// header region (magic through section count) is covered by the
	// name/fingerprint/bounds checks above; flip payload bytes at the tail.
	for off := len(good) - 40; off < len(good); off++ {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x10
		if _, err := ReadContainer(bytes.NewReader(bad), "test", fpr); err == nil {
			t.Fatalf("bit flip at %d decoded successfully", off)
		}
	}
}

func TestDecStickyErrorsAndTrailing(t *testing.T) {
	var e Enc
	e.U64(1)
	e.U64(2)
	d := &Dec{data: e.buf}
	_ = d.U64()
	if err := d.Finish(); err == nil {
		t.Errorf("Finish with trailing bytes succeeded")
	}
	d2 := &Dec{data: e.buf[:4]}
	_ = d2.U64()
	if d2.Err() == nil {
		t.Errorf("truncated U64 did not set error")
	}
	if got := d2.U64(); got != 0 {
		t.Errorf("poisoned decoder returned %d", got)
	}
	d3 := &Dec{data: e.buf}
	d3.U64sInto(make([]uint64, 5))
	if !errors.Is(d3.Err(), ErrMismatch) {
		t.Errorf("count mismatch: got %v, want ErrMismatch", d3.Err())
	}
}

func TestFingerprintDistinguishesConfigs(t *testing.T) {
	a := Fingerprint(tcfg{A: 1})
	b := Fingerprint(tcfg{A: 2})
	if a == b {
		t.Errorf("different configs share fingerprint %016x", a)
	}
	if a != Fingerprint(tcfg{A: 1}) {
		t.Errorf("fingerprint not deterministic")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snp")
	if err := WriteFileAtomic(path, "snp-*.tmp", func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	}); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "payload" {
		t.Fatalf("read back: %q, %v", b, err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := fi.Mode().Perm(); got != fs.FileMode(0o644) {
		t.Errorf("published mode %o, want 644", got)
	}
	// A failing writer must leave no file behind (old or temp).
	path2 := filepath.Join(dir, "fail.snp")
	werr := errors.New("boom")
	if err := WriteFileAtomic(path2, "snp-*.tmp", func(w io.Writer) error {
		return werr
	}); !errors.Is(err, werr) {
		t.Fatalf("error not propagated: %v", err)
	}
	if _, err := os.Stat(path2); !os.IsNotExist(err) {
		t.Errorf("failed write published a file")
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if de.Name() != "state.snp" {
			t.Errorf("leftover file %q", de.Name())
		}
	}
}
