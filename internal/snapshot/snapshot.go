// Package snapshot implements BLBPSNP1, the versioned, checksummed codec
// for trained predictor state. A snapshot is a self-describing container in
// the same discipline as the BLBPSPL2 spill format (internal/trace): an
// 8-byte magic, a format version, the owning predictor's name and a 64-bit
// fingerprint of its configuration, then a sequence of typed sections, each
// carrying its own FNV-64a checksum. Decoding verifies magic, version,
// name, fingerprint, and every section checksum before any state is
// interpreted, so a truncated, bit-flipped, or mismatched snapshot fails
// loudly instead of silently restoring garbage into a predictor.
//
// The package is a dependency leaf (stdlib only): every predictor package
// serializes its state through the Enc/Dec helpers here, and the top-level
// Snapshotter methods (EncodeState/RestoreState, see internal/predictor)
// frame those payloads in a container.
package snapshot

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
)

// Magic identifies a BLBPSNP1 snapshot stream.
var Magic = [8]byte{'B', 'L', 'B', 'P', 'S', 'N', 'P', '1'}

// FormatVersion is the current container format version.
const FormatVersion = 1

// Decode bounds: a corrupt length field must not drive preallocation, so
// every variable-size read is capped before memory is committed.
const (
	maxNameLen    = 1 << 16
	maxKindLen    = 1 << 12
	maxSections   = 1 << 16
	maxSectionLen = 1 << 28
)

// Sentinel errors. ErrBadMagic and ErrCorrupt mean the bytes are not a
// usable snapshot (wrong format, truncation, checksum failure); ErrMismatch
// means the snapshot is internally consistent but belongs to a different
// predictor, configuration, or structure shape than the one restoring it.
var (
	ErrBadMagic = errors.New("snapshot: bad magic (not a BLBPSNP1 snapshot)")
	ErrCorrupt  = errors.New("snapshot: corrupt or truncated snapshot")
	ErrMismatch = errors.New("snapshot: snapshot does not match this predictor")
)

// Fingerprint hashes a configuration value into the 64-bit config
// fingerprint stored in snapshot headers: FNV-64a over the configuration's
// canonical JSON. Two predictors accept each other's snapshots exactly when
// their configurations marshal identically. It panics if cfg does not
// marshal; configurations in this codebase are plain data structs.
func Fingerprint(cfg any) uint64 {
	b, err := json.Marshal(cfg)
	if err != nil {
		panic(fmt.Sprintf("snapshot: config does not marshal: %v", err))
	}
	return fnv64a(b)
}

func fnv64a(b []byte) uint64 {
	h := fnv.New64a()
	h.Write(b)
	return h.Sum64()
}

// section is one typed payload inside a container.
type section struct {
	kind string
	enc  *Enc
}

// Container accumulates named sections and serializes them under a
// BLBPSNP1 header. Build with NewContainer, fill each section through the
// Enc returned by Section, then write the whole snapshot with EncodeTo.
type Container struct {
	name        string
	fingerprint uint64
	sections    []section
}

// NewContainer returns an empty container owned by the named predictor
// with the given configuration fingerprint (see Fingerprint).
func NewContainer(name string, fingerprint uint64) *Container {
	return &Container{name: name, fingerprint: fingerprint}
}

// Section appends a new named section and returns its encoder. Kinds
// should be unique within a container; Decoded.Section finds the first
// match.
func (c *Container) Section(kind string) *Enc {
	e := &Enc{}
	c.sections = append(c.sections, section{kind: kind, enc: e})
	return e
}

// EncodeTo writes the container: magic, version, name, fingerprint,
// section count, then per section its kind, payload length, FNV-64a
// payload checksum, and payload.
func (c *Container) EncodeTo(w io.Writer) error {
	var hdr Enc
	hdr.buf = append(hdr.buf, Magic[:]...)
	hdr.U64(FormatVersion)
	hdr.String(c.name)
	hdr.U64(c.fingerprint)
	hdr.Int(len(c.sections))
	if _, err := w.Write(hdr.buf); err != nil {
		return err
	}
	for _, s := range c.sections {
		var sh Enc
		sh.String(s.kind)
		sh.Int(len(s.enc.buf))
		sh.U64(fnv64a(s.enc.buf))
		if _, err := w.Write(sh.buf); err != nil {
			return err
		}
		if _, err := w.Write(s.enc.buf); err != nil {
			return err
		}
	}
	return nil
}

// Decoded is a fully read and checksum-verified container.
type Decoded struct {
	// Name and Fingerprint identify the snapshot's owner.
	Name        string
	Fingerprint uint64

	kinds    []string
	payloads [][]byte
}

// ReadContainer reads and verifies a whole container from r. It checks the
// magic and version, that the stored predictor name and config fingerprint
// equal wantName/wantFingerprint (ErrMismatch otherwise), and every
// section's checksum (ErrCorrupt on any damage), so a successful return
// means the payloads are intact and belong to the requesting predictor.
func ReadContainer(r io.Reader, wantName string, wantFingerprint uint64) (*Decoded, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrCorrupt, err)
	}
	if magic != Magic {
		return nil, ErrBadMagic
	}
	var hb [8]byte
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(r, hb[:]); err != nil {
			return 0, fmt.Errorf("%w: truncated header: %v", ErrCorrupt, err)
		}
		return leU64(hb[:]), nil
	}
	readString := func(max int) (string, error) {
		n, err := readU64()
		if err != nil {
			return "", err
		}
		if n > uint64(max) {
			return "", fmt.Errorf("%w: string length %d exceeds bound %d", ErrCorrupt, n, max)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(r, b); err != nil {
			return "", fmt.Errorf("%w: truncated string: %v", ErrCorrupt, err)
		}
		return string(b), nil
	}
	version, err := readU64()
	if err != nil {
		return nil, err
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("%w: format version %d (have %d)", ErrCorrupt, version, FormatVersion)
	}
	name, err := readString(maxNameLen)
	if err != nil {
		return nil, err
	}
	fingerprint, err := readU64()
	if err != nil {
		return nil, err
	}
	if name != wantName {
		return nil, fmt.Errorf("%w: snapshot of %q, restoring %q", ErrMismatch, name, wantName)
	}
	if fingerprint != wantFingerprint {
		return nil, fmt.Errorf("%w: config fingerprint %016x, want %016x", ErrMismatch, fingerprint, wantFingerprint)
	}
	nsec, err := readU64()
	if err != nil {
		return nil, err
	}
	if nsec > maxSections {
		return nil, fmt.Errorf("%w: section count %d exceeds bound %d", ErrCorrupt, nsec, maxSections)
	}
	d := &Decoded{Name: name, Fingerprint: fingerprint}
	for i := uint64(0); i < nsec; i++ {
		kind, err := readString(maxKindLen)
		if err != nil {
			return nil, err
		}
		plen, err := readU64()
		if err != nil {
			return nil, err
		}
		if plen > maxSectionLen {
			return nil, fmt.Errorf("%w: section %q length %d exceeds bound %d", ErrCorrupt, kind, plen, maxSectionLen)
		}
		sum, err := readU64()
		if err != nil {
			return nil, err
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("%w: truncated section %q: %v", ErrCorrupt, kind, err)
		}
		if got := fnv64a(payload); got != sum {
			return nil, fmt.Errorf("%w: section %q checksum %016x, want %016x", ErrCorrupt, kind, got, sum)
		}
		d.kinds = append(d.kinds, kind)
		d.payloads = append(d.payloads, payload)
	}
	return d, nil
}

// Section returns a decoder over the named section's verified payload, or
// an error (wrapping ErrCorrupt) when the container has no such section.
func (d *Decoded) Section(kind string) (*Dec, error) {
	for i, k := range d.kinds {
		if k == kind {
			return &Dec{data: d.payloads[i]}, nil
		}
	}
	return nil, fmt.Errorf("%w: missing section %q", ErrCorrupt, kind)
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
