package tracecache

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"blbp/internal/trace"
)

// FuzzSpillDecode feeds arbitrary bytes to the spill loader: loadSpill
// must either fail cleanly or produce a fully valid trace that survives a
// re-spill round trip. This is the path a truncated or corrupted spill
// file from a crashed run takes on the next cache warm-up.
func FuzzSpillDecode(f *testing.F) {
	var valid bytes.Buffer
	tr := &trace.Trace{Name: "seed"}
	tr.Append(trace.Record{PC: 0x400000, Target: 0x400020, InstrBefore: 3, Type: trace.CondDirect, Taken: true})
	tr.Append(trace.Record{PC: 0x400100, Target: 0x7f0000, InstrBefore: 12, Type: trace.IndirectCall, Taken: true})
	if err := trace.Write(&valid, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte{})
	f.Add(valid.Bytes()[:len(valid.Bytes())-1]) // truncated spill
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.blbptrc")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := loadSpill(path)
		if err != nil {
			return // corrupt spills must fail cleanly, and did
		}
		if vErr := got.Validate(); vErr != nil {
			t.Fatalf("loadSpill accepted an invalid trace: %v", vErr)
		}
		// A loaded spill must be re-spillable and reload identically.
		again := filepath.Join(dir, "again.blbptrc")
		if err := writeSpill(again, got); err != nil {
			t.Fatalf("re-spill of a loaded trace failed: %v", err)
		}
		back, err := loadSpill(again)
		if err != nil {
			t.Fatalf("reloading a re-spilled trace failed: %v", err)
		}
		if back.Name != got.Name || len(back.Records) != len(got.Records) {
			t.Fatalf("spill round trip changed shape: %q/%d -> %q/%d",
				got.Name, len(got.Records), back.Name, len(back.Records))
		}
	})
}
