package tracecache

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"blbp/internal/trace"
	"blbp/internal/workload"
)

// fuzzSeedFile encodes a small valid spill file (header + payload).
func fuzzSeedFile(f *testing.F) []byte {
	f.Helper()
	tr := &trace.Trace{Name: "seed"}
	tr.Append(trace.Record{PC: 0x400000, Target: 0x400020, InstrBefore: 3, Type: trace.CondDirect, Taken: true})
	tr.Append(trace.Record{PC: 0x400100, Target: 0x7f0000, InstrBefore: 12, Type: trace.IndirectCall, Taken: true})
	var buf bytes.Buffer
	if err := trace.WriteSpill(&buf, trace.SpillHeader{Name: "seed", Seed: 11, Instructions: 4_000}, tr); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzSpillDecode feeds arbitrary bytes to the spill reader: readSpillFile
// must either fail cleanly or produce a header-consistent, fully valid
// trace that survives a re-spill round trip under the identity the header
// claims. This is the path a truncated, corrupted, or stale spill file
// from a previous process takes on the next cache warm-start.
func FuzzSpillDecode(f *testing.F) {
	valid := fuzzSeedFile(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add(valid[:len(valid)-1]) // truncated payload
	f.Add(valid[:12])           // truncated header
	// The pre-header format: a bare trace payload. Must be rejected as
	// not-a-spill, never decoded as one.
	var bare bytes.Buffer
	bareTr := &trace.Trace{Name: "bare"}
	bareTr.Append(trace.Record{PC: 0x400000, Target: 0x400020, InstrBefore: 1, Type: trace.CondDirect, Taken: true})
	if err := trace.Write(&bare, bareTr); err != nil {
		f.Fatal(err)
	}
	f.Add(bare.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz"+spillExt)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		h, got, err := readSpillFile(path)
		if err != nil {
			return // corrupt spills must fail cleanly, and did
		}
		if vErr := got.Validate(); vErr != nil {
			t.Fatalf("readSpillFile accepted an invalid trace: %v", vErr)
		}
		if got.Name != h.Name || int64(got.Len()) != h.Records {
			t.Fatalf("accepted payload disagrees with header: %q/%d vs %q/%d",
				got.Name, got.Len(), h.Name, h.Records)
		}
		// A loaded spill must be re-spillable under its header identity and
		// reload identically through the full identity-validated path.
		id := workload.Identity{Name: h.Name, Seed: h.Seed, Instructions: h.Instructions}
		again := filepath.Join(dir, "again"+spillExt)
		if err := writeSpill(again, id, got); err != nil {
			t.Fatalf("re-spill of a loaded trace failed: %v", err)
		}
		back, err := loadSpill(again, id)
		if err != nil {
			t.Fatalf("reloading a re-spilled trace failed: %v", err)
		}
		if back.Name != got.Name || back.Len() != got.Len() {
			t.Fatalf("spill round trip changed shape: %q/%d -> %q/%d",
				got.Name, got.Len(), back.Name, back.Len())
		}
	})
}
