package tracecache

import (
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"blbp/internal/trace"
	"blbp/internal/workload"
)

func testSpec(name string, instr int64) workload.Spec {
	return workload.InterpreterSpec(name, "T", instr, workload.InterpreterParams{
		Opcodes: 10, ProgramLen: 24, Work: 20, CondPerHandler: 1,
		CondNoise: 0.005, DispatchNoise: 0.002,
	})
}

func TestGetBuildsOnceAndHits(t *testing.T) {
	c := New(Config{})
	defer c.Close()
	spec := testSpec("cache-a", 5_000)
	e1 := c.Get(spec)
	if e1.Trace() == nil || len(e1.Trace().Records) == 0 {
		t.Fatal("empty trace")
	}
	e2 := c.Get(spec)
	if e1 != e2 {
		t.Error("second Get returned a different entry")
	}
	st := c.Stats()
	if st.Builds != 1 || st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 build / 1 miss / 1 hit", st)
	}
	if st.LiveBytes <= 0 {
		t.Errorf("live bytes = %d", st.LiveBytes)
	}
}

// TestConcurrentGetSingleFlight launches many goroutines on a randomized
// schedule over a few specs; each spec must be built exactly once and all
// callers must share one entry per spec.
func TestConcurrentGetSingleFlight(t *testing.T) {
	c := New(Config{})
	defer c.Close()
	specs := []workload.Spec{
		testSpec("sf-a", 4_000),
		testSpec("sf-b", 4_000),
		testSpec("sf-c", 4_000),
	}
	const goroutines = 16
	rng := rand.New(rand.NewSource(1))
	order := make([][]int, goroutines)
	for g := range order {
		order[g] = rng.Perm(len(specs))
	}
	entries := make([][]*Entry, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		entries[g] = make([]*Entry, len(specs))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, si := range order[g] {
				entries[g][si] = c.Get(specs[si])
			}
		}()
	}
	wg.Wait()
	for si := range specs {
		for g := 1; g < goroutines; g++ {
			if entries[g][si] != entries[0][si] {
				t.Errorf("spec %d: goroutine %d got a different entry", si, g)
			}
		}
		if tr := entries[0][si].Trace(); tr == nil || tr.Name != specs[si].Name {
			t.Errorf("spec %d: wrong or missing trace", si)
		}
	}
	st := c.Stats()
	if st.Builds != int64(len(specs)) {
		t.Errorf("builds = %d, want %d (single-flight violated)", st.Builds, len(specs))
	}
	if st.Hits+st.Misses != int64(goroutines*len(specs)) {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, goroutines*len(specs))
	}
}

// TestSpillRoundTrip bounds the cache so the first trace is evicted and
// spilled, then re-Gets it and checks it comes back from disk, record for
// record, without a second generator run.
func TestSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	specA := testSpec("spill-a", 5_000)
	specB := testSpec("spill-b", 5_000)

	reference := specA.Build()

	c := New(Config{MaxBytes: 1, SpillDir: dir})
	defer c.Close()
	c.Get(specA)
	c.Get(specB) // evicts and spills A (budget fits nothing, newest is spared)
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a 1-byte budget: %+v", st)
	}
	names, _ := os.ReadDir(dir)
	if len(names) == 0 {
		t.Fatal("no spill file written")
	}

	e := c.Get(specA)
	st = c.Stats()
	if st.SpillLoads != 1 {
		t.Errorf("spill loads = %d, want 1", st.SpillLoads)
	}
	if st.Builds != 2 {
		t.Errorf("builds = %d, want 2 (reload must not rebuild)", st.Builds)
	}
	tr := e.Trace()
	if tr.Name != reference.Name || len(tr.Records) != len(reference.Records) {
		t.Fatalf("reloaded trace shape differs: %s/%d vs %s/%d",
			tr.Name, len(tr.Records), reference.Name, len(reference.Records))
	}
	for i := range tr.Records {
		if tr.Records[i] != reference.Records[i] {
			t.Fatalf("record %d differs after spill round trip", i)
		}
	}
}

func TestCloseRemovesSpillFiles(t *testing.T) {
	dir := t.TempDir()
	c := New(Config{MaxBytes: 1, SpillDir: dir})
	c.Get(testSpec("close-a", 4_000))
	c.Get(testSpec("close-b", 4_000))
	c.Close()
	names, _ := os.ReadDir(dir)
	if len(names) != 0 {
		t.Errorf("%d spill files left after Close", len(names))
	}
}

// TestWarmStartAcrossCaches is the cross-process round trip: a first cache
// with KeepSpill flushes its whole working set at Close, and a second cache
// over the same directory serves every Get from disk — zero generator runs.
func TestWarmStartAcrossCaches(t *testing.T) {
	dir := t.TempDir()
	specs := []workload.Spec{testSpec("warm-a", 5_000), testSpec("warm-b", 4_000)}
	reference := specs[0].Build()

	c1 := New(Config{SpillDir: dir, KeepSpill: true})
	for _, s := range specs {
		c1.Get(s)
	}
	c1.Close()
	names, _ := os.ReadDir(dir)
	if len(names) != len(specs) {
		t.Fatalf("%d spill files after KeepSpill Close, want %d", len(names), len(specs))
	}

	c2 := New(Config{SpillDir: dir, KeepSpill: true})
	defer c2.Close()
	tr := c2.Get(specs[0]).Trace()
	c2.Get(specs[1])
	st := c2.Stats()
	if st.Builds != 0 {
		t.Errorf("warm cache builds = %d, want 0", st.Builds)
	}
	if st.SpillLoads != 2 || st.PreloadHits != 2 {
		t.Errorf("spill loads/preload hits = %d/%d, want 2/2", st.SpillLoads, st.PreloadHits)
	}
	if st.SpillErrors != 0 {
		t.Errorf("spill errors = %d, want 0", st.SpillErrors)
	}
	if tr.Name != reference.Name || len(tr.Records) != len(reference.Records) {
		t.Fatalf("warm trace shape %s/%d, want %s/%d", tr.Name, len(tr.Records), reference.Name, len(reference.Records))
	}
	for i := range tr.Records {
		if tr.Records[i] != reference.Records[i] {
			t.Fatalf("record %d differs after cross-process warm start", i)
		}
	}
}

// TestSpillCollisionWrongIdentityRejected is the regression test for the
// bare-FNV-name hazard: a file whose name matches the requested identity's
// spill name but whose contents belong to a different identity (hash
// collision, or a stale file from another seed/budget run) must be
// rejected by header validation and rebuilt, never served as-is.
func TestSpillCollisionWrongIdentityRejected(t *testing.T) {
	dir := t.TempDir()
	specA := testSpec("coll-a", 4_000)
	specB := testSpec("coll-b", 4_000)
	idB := specB.Identity()
	// Plant A's trace at B's canonical spill name — what a colliding or
	// stale file looks like on disk.
	path := filepath.Join(dir, spillName(idB))
	if err := writeSpill(path, specA.Identity(), specA.BuildColumns()); err != nil {
		t.Fatal(err)
	}
	c := New(Config{SpillDir: dir})
	defer c.Close()
	// Point B's spill index at the planted file, as a pre-header cache
	// keyed on file name alone effectively did.
	c.mu.Lock()
	c.spilled[idB] = path
	c.mu.Unlock()
	e := c.Get(specB)
	if e.Trace().Name != specB.Name {
		t.Fatalf("served trace %q for identity %q", e.Trace().Name, specB.Name)
	}
	st := c.Stats()
	if st.Builds != 1 || st.SpillLoads != 0 {
		t.Errorf("builds/spill loads = %d/%d, want 1/0 (mismatch must rebuild)", st.Builds, st.SpillLoads)
	}
	if st.SpillErrors != 1 {
		t.Errorf("spill errors = %d, want 1", st.SpillErrors)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("mismatched spill file not removed")
	}
}

// TestPreloadIndexesByHeaderNotFilename renames a valid spill file to
// another identity's canonical name: Preload must index it under the
// identity its header declares, so the right Get loads it and the
// file-name identity builds fresh.
func TestPreloadIndexesByHeaderNotFilename(t *testing.T) {
	dir := t.TempDir()
	specA := testSpec("hdr-a", 4_000)
	specB := testSpec("hdr-b", 4_000)
	c1 := New(Config{SpillDir: dir, KeepSpill: true})
	c1.Get(specA)
	c1.Close()
	old := filepath.Join(dir, spillName(specA.Identity()))
	renamed := filepath.Join(dir, spillName(specB.Identity()))
	if err := os.Rename(old, renamed); err != nil {
		t.Fatal(err)
	}

	c2 := New(Config{SpillDir: dir, KeepSpill: true})
	defer c2.Close()
	if tr := c2.Get(specA).Trace(); tr.Name != specA.Name {
		t.Errorf("Get(A) returned %q", tr.Name)
	}
	if tr := c2.Get(specB).Trace(); tr.Name != specB.Name {
		t.Errorf("Get(B) returned %q", tr.Name)
	}
	st := c2.Stats()
	if st.PreloadHits != 1 || st.Builds != 1 {
		t.Errorf("preload hits/builds = %d/%d, want 1/1", st.PreloadHits, st.Builds)
	}
}

// TestCorruptSpillFallsBackToBuild flips payload bytes in a kept spill
// file; the next cache must reject it on checksum and rebuild.
func TestCorruptSpillFallsBackToBuild(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec("corrupt", 4_000)
	c1 := New(Config{SpillDir: dir, KeepSpill: true})
	c1.Get(spec)
	c1.Close()
	path := filepath.Join(dir, spillName(spec.Identity()))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x55
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := New(Config{SpillDir: dir})
	defer c2.Close()
	e := c2.Get(spec)
	st := c2.Stats()
	if st.Builds != 1 || st.SpillLoads != 0 || st.SpillErrors != 1 {
		t.Errorf("builds/loads/errors = %d/%d/%d, want 1/0/1", st.Builds, st.SpillLoads, st.SpillErrors)
	}
	if e.Trace().Name != spec.Name || len(e.Trace().Records) == 0 {
		t.Error("fallback build produced a wrong or empty trace")
	}
}

// TestTruncatedSpillRejectedAtPreload truncates a file inside the header:
// Preload must skip it as stale and Close with KeepSpill must prune it
// while retaining valid files.
func TestTruncatedSpillRejectedAtPreload(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec("trunc", 4_000)
	c1 := New(Config{SpillDir: dir, KeepSpill: true})
	c1.Get(spec)
	c1.Close()
	valid := filepath.Join(dir, spillName(spec.Identity()))
	// A stale-format file (bare payload, no header) and a near-empty stub.
	stale := filepath.Join(dir, "stale"+spillExt)
	data, err := os.ReadFile(valid)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(stale, data[:4], 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := New(Config{SpillDir: dir, KeepSpill: true})
	if n := len(c2.spilled); n != 1 {
		t.Errorf("preloaded %d identities, want 1", n)
	}
	c2.Get(spec)
	if st := c2.Stats(); st.Builds != 0 {
		t.Errorf("builds = %d, want 0 (valid file must still load)", st.Builds)
	}
	c2.Close()
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Error("stale-format file not pruned by KeepSpill Close")
	}
	if _, err := os.Stat(valid); err != nil {
		t.Errorf("valid spill file not retained: %v", err)
	}
}

// TestSpillDirCreated covers the silent-drop bug: a nested, nonexistent
// SpillDir must be created up front so evictions actually spill.
func TestSpillDirCreated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "spill")
	c := New(Config{MaxBytes: 1, SpillDir: dir})
	defer c.Close()
	c.Get(testSpec("mkdir-a", 4_000))
	c.Get(testSpec("mkdir-b", 4_000)) // evicts and spills A
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("spill dir not created: %v", err)
	}
	if len(names) == 0 {
		t.Error("eviction wrote no spill file into the created dir")
	}
	if st := c.Stats(); st.SpillErrors != 0 {
		t.Errorf("spill errors = %d, want 0", st.SpillErrors)
	}
}

// TestSpillLeavesNoTempFiles checks the atomic write path: after spilling,
// only finished .blbptrc files remain in the directory.
func TestSpillLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	c := New(Config{MaxBytes: 1, SpillDir: dir})
	defer c.Close()
	c.Get(testSpec("tmp-a", 4_000))
	c.Get(testSpec("tmp-b", 4_000))
	names, _ := os.ReadDir(dir)
	for _, de := range names {
		if filepath.Ext(de.Name()) != spillExt {
			t.Errorf("stray non-spill file %q after spill", de.Name())
		}
	}
}

// TestCloseKeepSpillPrunesOrphanTemps simulates a crash mid-write: a
// leftover temp file must be removed by a KeepSpill Close.
func TestCloseKeepSpillPrunesOrphanTemps(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, "spill-12345678.tmp")
	if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(Config{SpillDir: dir, KeepSpill: true})
	c.Get(testSpec("orphan", 4_000))
	c.Close()
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Error("orphan temp file not pruned by KeepSpill Close")
	}
}

func TestEntryMemoizesDerivedArtifacts(t *testing.T) {
	c := New(Config{})
	defer c.Close()
	e := c.Get(testSpec("derived", 5_000))
	if e.Stats() != e.Stats() {
		t.Error("Stats not memoized")
	}
	tp1, err := e.Tape()
	if err != nil {
		t.Fatal(err)
	}
	tp2, _ := e.Tape()
	if tp1 != tp2 {
		t.Error("Tape not memoized")
	}
	if tp1.Instructions() <= 0 {
		t.Errorf("tape instructions = %d", tp1.Instructions())
	}
}

// TestSpillFilePublishedMode covers the private-file bug: spill files used
// to inherit CreateTemp's 0600 mode through the rename, so a cache shared
// across users could never warm-start from them. The atomic writer must
// republish at 0644.
func TestSpillFilePublishedMode(t *testing.T) {
	dir := t.TempDir()
	c := New(Config{SpillDir: dir, KeepSpill: true})
	spec := testSpec("mode", 4_000)
	c.Get(spec)
	c.Close()
	fi, err := os.Stat(filepath.Join(dir, spillName(spec.Identity())))
	if err != nil {
		t.Fatal(err)
	}
	if perm := fi.Mode().Perm(); perm != 0o644 {
		t.Errorf("published spill file mode %o, want 644", perm)
	}
}

// TestPreloadSurfacesCorruptFiles covers the swallowed-error bug: Preload
// used to silently skip files whose header failed to read or decode, so a
// wiped-out warm-start directory looked like a cold cache. The failures
// must count in Stats.SpillErrors (and log once) while the files are still
// remembered as stale for pruning.
func TestPreloadSurfacesCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "garbage"+spillExt), []byte("not a spill"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "empty"+spillExt), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	c := New(Config{SpillDir: dir})
	defer c.Close()
	if st := c.Stats(); st.SpillErrors != 2 {
		t.Errorf("SpillErrors = %d after preloading 2 corrupt files, want 2", st.SpillErrors)
	}
}

// TestLegacySpillWithoutFingerprintWarmStarts pins the header-format
// fallback: a spill file written before SPL3 (no fingerprint field, so the
// header reports fingerprint 0) must still warm-start a Get whose identity
// carries a nonzero parameter fingerprint — zero builds, served from disk.
func TestLegacySpillWithoutFingerprintWarmStarts(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec("legacy-warm", 5_000)
	if spec.Identity().Fingerprint == 0 {
		t.Fatal("test spec should carry a parameter fingerprint")
	}
	cols := spec.BuildColumns()
	// Write the file as an older process would have: SPL2, no fingerprint.
	h := trace.SpillHeader{Name: spec.Name, Seed: spec.Seed, Instructions: spec.Instructions}
	f, err := os.Create(filepath.Join(dir, "legacy"+spillExt))
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSpillV2(f, h, cols.Trace()); err != nil {
		t.Fatal(err)
	}
	f.Close()

	c := New(Config{SpillDir: dir, KeepSpill: true})
	defer c.Close()
	got := c.Get(spec).Columns()
	st := c.Stats()
	if st.Builds != 0 {
		t.Errorf("builds = %d, want 0 (legacy spill should warm-start)", st.Builds)
	}
	if st.SpillLoads != 1 || st.PreloadHits != 1 {
		t.Errorf("spill loads/preload hits = %d/%d, want 1/1", st.SpillLoads, st.PreloadHits)
	}
	if got.Len() != cols.Len() {
		t.Fatalf("loaded %d records, built %d", got.Len(), cols.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.Record(i) != cols.Record(i) {
			t.Fatalf("record %d differs from generator output", i)
		}
	}
}

// TestFingerprintDistinguishesSpills: two workloads sharing a name, seed,
// and budget but differing in generator parameters must get distinct spill
// files and never serve each other's traces.
func TestFingerprintDistinguishesSpills(t *testing.T) {
	dir := t.TempDir()
	specA := testSpec("same-name", 4_000)
	specB := workload.MonoSpec("same-name", "T", 4_000, workload.MonoParams{Sites: 8, Work: 10})
	if specA.Identity() == specB.Identity() {
		t.Fatal("identities should differ by fingerprint")
	}
	if spillName(specA.Identity()) == spillName(specB.Identity()) {
		t.Fatal("spill names should differ by fingerprint")
	}

	c1 := New(Config{SpillDir: dir, KeepSpill: true})
	refA := c1.Get(specA).Columns().Len()
	refB := c1.Get(specB).Columns().Len()
	c1.Close()

	c2 := New(Config{SpillDir: dir, KeepSpill: true})
	defer c2.Close()
	gotA := c2.Get(specA).Columns().Len()
	gotB := c2.Get(specB).Columns().Len()
	st := c2.Stats()
	if st.Builds != 0 || st.SpillErrors != 0 {
		t.Errorf("builds/spill errors = %d/%d, want 0/0", st.Builds, st.SpillErrors)
	}
	if gotA != refA || gotB != refB {
		t.Errorf("warm lengths %d/%d, want %d/%d", gotA, gotB, refA, refB)
	}
}
