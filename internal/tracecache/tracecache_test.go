package tracecache

import (
	"math/rand"
	"os"
	"sync"
	"testing"

	"blbp/internal/workload"
)

func testSpec(name string, instr int64) workload.Spec {
	return workload.InterpreterSpec(name, "T", instr, workload.InterpreterParams{
		Opcodes: 10, ProgramLen: 24, Work: 20, CondPerHandler: 1,
		CondNoise: 0.005, DispatchNoise: 0.002,
	})
}

func TestGetBuildsOnceAndHits(t *testing.T) {
	c := New(Config{})
	defer c.Close()
	spec := testSpec("cache-a", 5_000)
	e1 := c.Get(spec)
	if e1.Trace() == nil || len(e1.Trace().Records) == 0 {
		t.Fatal("empty trace")
	}
	e2 := c.Get(spec)
	if e1 != e2 {
		t.Error("second Get returned a different entry")
	}
	st := c.Stats()
	if st.Builds != 1 || st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 build / 1 miss / 1 hit", st)
	}
	if st.LiveBytes <= 0 {
		t.Errorf("live bytes = %d", st.LiveBytes)
	}
}

// TestConcurrentGetSingleFlight launches many goroutines on a randomized
// schedule over a few specs; each spec must be built exactly once and all
// callers must share one entry per spec.
func TestConcurrentGetSingleFlight(t *testing.T) {
	c := New(Config{})
	defer c.Close()
	specs := []workload.Spec{
		testSpec("sf-a", 4_000),
		testSpec("sf-b", 4_000),
		testSpec("sf-c", 4_000),
	}
	const goroutines = 16
	rng := rand.New(rand.NewSource(1))
	order := make([][]int, goroutines)
	for g := range order {
		order[g] = rng.Perm(len(specs))
	}
	entries := make([][]*Entry, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		entries[g] = make([]*Entry, len(specs))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, si := range order[g] {
				entries[g][si] = c.Get(specs[si])
			}
		}()
	}
	wg.Wait()
	for si := range specs {
		for g := 1; g < goroutines; g++ {
			if entries[g][si] != entries[0][si] {
				t.Errorf("spec %d: goroutine %d got a different entry", si, g)
			}
		}
		if tr := entries[0][si].Trace(); tr == nil || tr.Name != specs[si].Name {
			t.Errorf("spec %d: wrong or missing trace", si)
		}
	}
	st := c.Stats()
	if st.Builds != int64(len(specs)) {
		t.Errorf("builds = %d, want %d (single-flight violated)", st.Builds, len(specs))
	}
	if st.Hits+st.Misses != int64(goroutines*len(specs)) {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, goroutines*len(specs))
	}
}

// TestSpillRoundTrip bounds the cache so the first trace is evicted and
// spilled, then re-Gets it and checks it comes back from disk, record for
// record, without a second generator run.
func TestSpillRoundTrip(t *testing.T) {
	dir := t.TempDir()
	specA := testSpec("spill-a", 5_000)
	specB := testSpec("spill-b", 5_000)

	reference := specA.Build()

	c := New(Config{MaxBytes: 1, SpillDir: dir})
	defer c.Close()
	c.Get(specA)
	c.Get(specB) // evicts and spills A (budget fits nothing, newest is spared)
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under a 1-byte budget: %+v", st)
	}
	names, _ := os.ReadDir(dir)
	if len(names) == 0 {
		t.Fatal("no spill file written")
	}

	e := c.Get(specA)
	st = c.Stats()
	if st.SpillLoads != 1 {
		t.Errorf("spill loads = %d, want 1", st.SpillLoads)
	}
	if st.Builds != 2 {
		t.Errorf("builds = %d, want 2 (reload must not rebuild)", st.Builds)
	}
	tr := e.Trace()
	if tr.Name != reference.Name || len(tr.Records) != len(reference.Records) {
		t.Fatalf("reloaded trace shape differs: %s/%d vs %s/%d",
			tr.Name, len(tr.Records), reference.Name, len(reference.Records))
	}
	for i := range tr.Records {
		if tr.Records[i] != reference.Records[i] {
			t.Fatalf("record %d differs after spill round trip", i)
		}
	}
}

func TestCloseRemovesSpillFiles(t *testing.T) {
	dir := t.TempDir()
	c := New(Config{MaxBytes: 1, SpillDir: dir})
	c.Get(testSpec("close-a", 4_000))
	c.Get(testSpec("close-b", 4_000))
	c.Close()
	names, _ := os.ReadDir(dir)
	if len(names) != 0 {
		t.Errorf("%d spill files left after Close", len(names))
	}
}

func TestEntryMemoizesDerivedArtifacts(t *testing.T) {
	c := New(Config{})
	defer c.Close()
	e := c.Get(testSpec("derived", 5_000))
	if e.Stats() != e.Stats() {
		t.Error("Stats not memoized")
	}
	tp1, err := e.Tape()
	if err != nil {
		t.Fatal(err)
	}
	tp2, _ := e.Tape()
	if tp1 != tp2 {
		t.Error("Tape not memoized")
	}
	if tp1.Instructions() <= 0 {
		t.Errorf("tape instructions = %d", tp1.Instructions())
	}
}
