// Package tracecache memoizes workload trace construction across every
// experiment driver in one process. A full `experiments all` run touches
// the same 88-workload suite from a dozen drivers; without the cache each
// driver rebuilds every trace from its generator (internal/experiments PR 1
// profile: most of the suite wall clock). The cache keys on the spec's
// identity (name, seed, instruction budget — see workload.Spec.Identity),
// deduplicates concurrent builds with single-flight entries, counts hits,
// misses and bytes, and can bound its memory footprint with an LRU spill
// that evicts traces to disk in the internal/trace binary format and
// decodes them back on the next touch instead of rebuilding.
//
// Each entry also memoizes the two derived artifacts every driver needs:
// the trace's statistics (trace.Analyze, shared by the characterization
// figures) and its simulation tape (sim.NewTape, shared by every predictor
// pass; see internal/sim).
package tracecache

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"blbp/internal/sim"
	"blbp/internal/trace"
	"blbp/internal/workload"
)

// entryOverheadBytes approximates per-entry bookkeeping; recordBytes is the
// in-memory size of one trace.Record (two uint64, a uint32, two bytes,
// padded).
const (
	recordBytes        = 24
	entryOverheadBytes = 256
)

// Config parameterizes a Cache.
type Config struct {
	// MaxBytes bounds the approximate in-memory footprint of live traces;
	// 0 means unbounded. When the bound is exceeded the least-recently-used
	// entries are evicted.
	MaxBytes int64
	// SpillDir, when non-empty, receives evicted traces in the binary trace
	// format so a later Get decodes them from disk instead of re-running
	// the generator. Empty means evicted traces are simply dropped.
	SpillDir string
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Builds counts generator invocations (spec.Build calls).
	Builds int64
	// Hits counts Gets served from a live entry, including Gets that
	// coalesced onto an in-flight build.
	Hits int64
	// Misses counts Gets that had to create the entry.
	Misses int64
	// SpillLoads counts entries restored by decoding a spilled trace file.
	SpillLoads int64
	// Evictions counts entries evicted from memory by the byte budget.
	Evictions int64
	// LiveBytes approximates the bytes held by live entries.
	LiveBytes int64
}

func (s Stats) String() string {
	return fmt.Sprintf("%d builds, %d hits, %d misses, %d spill loads, %d evictions, %.1f MB live",
		s.Builds, s.Hits, s.Misses, s.SpillLoads, s.Evictions, float64(s.LiveBytes)/(1<<20))
}

// Cache is a process-wide trace cache. The zero value is not usable; use
// New. All methods are safe for concurrent use.
type Cache struct {
	cfg Config

	mu      sync.Mutex
	entries map[workload.Identity]*Entry
	lru     *list.List // of *Entry, front = most recently used
	spilled map[workload.Identity]string
	live    int64 // bytes, under mu

	builds     atomic.Int64
	hits       atomic.Int64
	misses     atomic.Int64
	spillLoads atomic.Int64
	evictions  atomic.Int64
}

// New constructs a cache.
func New(cfg Config) *Cache {
	return &Cache{
		cfg:     cfg,
		entries: make(map[workload.Identity]*Entry),
		lru:     list.New(),
		spilled: make(map[workload.Identity]string),
	}
}

// Entry is one cached workload: the built trace plus memoized derived
// artifacts. Entries stay valid after eviction — eviction only drops the
// cache's own reference.
type Entry struct {
	id    workload.Identity
	once  sync.Once
	build func() // bound at creation; every Get runs it through once
	tr    *trace.Trace
	bytes int64
	elem  *list.Element // LRU position, nil once evicted; under Cache.mu

	statsOnce sync.Once
	stats     *trace.Stats

	tapeOnce sync.Once
	tape     *sim.Tape
	tapeErr  error
}

// Trace returns the built trace (shared; callers must not mutate it).
func (e *Entry) Trace() *trace.Trace { return e.tr }

// Stats returns the trace's statistics, analyzing it on first use.
func (e *Entry) Stats() *trace.Stats {
	e.statsOnce.Do(func() { e.stats = trace.Analyze(e.tr) })
	return e.stats
}

// Tape returns the trace's simulation tape, building it on first use.
func (e *Entry) Tape() (*sim.Tape, error) {
	e.tapeOnce.Do(func() { e.tape, e.tapeErr = sim.NewTape(e.tr) })
	return e.tape, e.tapeErr
}

// Get returns the cache entry for the spec, building the trace on first
// touch. Concurrent Gets of the same spec coalesce onto one build; every
// other caller blocks until it completes and shares the entry.
func (c *Cache) Get(spec workload.Spec) *Entry {
	id := spec.Identity()
	c.mu.Lock()
	e := c.entries[id]
	if e != nil {
		c.touch(e)
		c.mu.Unlock()
		c.hits.Add(1)
		e.once.Do(e.build) // coalesce onto an in-flight build
		return e
	}
	e = &Entry{id: id}
	spillPath := c.spilled[id]
	e.build = func() {
		if spillPath != "" {
			if tr, err := loadSpill(spillPath); err == nil && tr.Name == spec.Name {
				c.spillLoads.Add(1)
				e.tr = tr
			}
		}
		if e.tr == nil {
			c.builds.Add(1)
			e.tr = spec.Build()
		}
		e.bytes = int64(len(e.tr.Records))*recordBytes + int64(len(e.tr.Name)) + entryOverheadBytes
	}
	c.entries[id] = e
	c.mu.Unlock()
	c.misses.Add(1)

	e.once.Do(e.build)

	c.mu.Lock()
	if e.elem == nil && c.entries[id] == e {
		e.elem = c.lru.PushFront(e)
		c.live += e.bytes
	}
	victims := c.collectVictims(e)
	c.mu.Unlock()
	c.spill(victims)
	return e
}

// touch moves a live entry to the LRU front. Caller holds mu.
func (c *Cache) touch(e *Entry) {
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
}

// collectVictims evicts least-recently-used entries until the footprint
// fits the budget again, sparing keep, and returns them for spilling.
// Caller holds mu.
func (c *Cache) collectVictims(keep *Entry) []*Entry {
	if c.cfg.MaxBytes <= 0 {
		return nil
	}
	var victims []*Entry
	for c.live > c.cfg.MaxBytes && c.lru.Len() > 1 {
		back := c.lru.Back()
		v := back.Value.(*Entry)
		if v == keep {
			break
		}
		c.lru.Remove(back)
		v.elem = nil
		delete(c.entries, v.id)
		c.live -= v.bytes
		c.evictions.Add(1)
		victims = append(victims, v)
	}
	return victims
}

// spill writes evicted traces to the spill directory (outside the lock; a
// failed write just means the next Get rebuilds from the generator).
func (c *Cache) spill(victims []*Entry) {
	if c.cfg.SpillDir == "" {
		return
	}
	for _, v := range victims {
		c.mu.Lock()
		path, done := c.spilled[v.id]
		c.mu.Unlock()
		if done && path != "" {
			continue
		}
		path = filepath.Join(c.cfg.SpillDir, spillName(v.id))
		if err := writeSpill(path, v.tr); err != nil {
			continue
		}
		c.mu.Lock()
		c.spilled[v.id] = path
		c.mu.Unlock()
	}
}

func spillName(id workload.Identity) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d", id.Name, id.Seed, id.Instructions)
	return fmt.Sprintf("%016x.blbptrc", h.Sum64())
}

func writeSpill(path string, tr *trace.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.Write(f, tr); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}

func loadSpill(path string) (*trace.Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return trace.Read(f)
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	live := c.live
	c.mu.Unlock()
	return Stats{
		Builds:     c.builds.Load(),
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		SpillLoads: c.spillLoads.Load(),
		Evictions:  c.evictions.Load(),
		LiveBytes:  live,
	}
}

// Close drops every entry and removes the cache's spill files.
func (c *Cache) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, path := range c.spilled {
		os.Remove(path)
		delete(c.spilled, id)
	}
	c.entries = make(map[workload.Identity]*Entry)
	c.lru.Init()
	c.live = 0
}
