// Package tracecache memoizes workload trace construction across every
// experiment driver in one process. A full `experiments all` run touches
// the same 88-workload suite from a dozen drivers; without the cache each
// driver rebuilds every trace from its generator (internal/experiments PR 1
// profile: most of the suite wall clock). The cache keys on the spec's
// identity (name, seed, instruction budget, parameter fingerprint — see
// workload.Spec.Identity),
// deduplicates concurrent builds with single-flight entries, counts hits,
// misses and bytes, and can bound its memory footprint with an LRU spill
// that evicts traces to disk and decodes them back on the next touch
// instead of rebuilding.
//
// Spill files are a persistent cache tier, not just eviction overflow.
// Each file is self-describing — a trace.SpillHeader carrying the full
// workload identity, record count, and payload checksum — and is written
// via temp file + rename so a crash never leaves a decodable-but-truncated
// file at a canonical name. A cache whose Config names a SpillDir indexes
// the directory's existing files at construction (Preload), so Get serves
// identities spilled by an earlier process from disk without running the
// generator; with Config.KeepSpill, Close flushes every live entry to the
// directory and retains the files, making repeated full-suite runs warm
// after the first.
//
// Entries hold traces in columnar form (trace.Columns — what generators
// emit, spill files decode into, and the replay engine consumes), with
// the record-slice view materialized lazily on first request. Each entry
// also memoizes the two derived artifacts every driver needs: the trace's
// statistics (trace.AnalyzeColumns, shared by the characterization
// figures) and its simulation tape (sim.NewTapeColumns, shared by every
// predictor pass; see internal/sim).
package tracecache

import (
	"container/list"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"blbp/internal/sim"
	"blbp/internal/snapshot"
	"blbp/internal/trace"
	"blbp/internal/workload"
)

// entryOverheadBytes approximates per-entry bookkeeping; recordBytes is the
// in-memory size of one trace.Record (two uint64, a uint32, two bytes,
// padded).
const (
	recordBytes        = 24
	entryOverheadBytes = 256
)

// spillExt names finished spill files; tempPattern names in-flight writes
// (never indexed by Preload, renamed onto spillExt names when complete).
const (
	spillExt    = ".blbptrc"
	tempPattern = "spill-*.tmp"
)

// Config parameterizes a Cache.
type Config struct {
	// MaxBytes bounds the approximate in-memory footprint of live traces;
	// 0 means unbounded. When the bound is exceeded the least-recently-used
	// entries are evicted.
	MaxBytes int64
	// SpillDir, when non-empty, receives evicted traces as self-describing
	// spill files so a later Get decodes them from disk instead of
	// re-running the generator. New creates the directory if needed and
	// indexes any spill files already in it (see Preload), so a directory
	// kept by a previous process warm-starts this one. Empty means evicted
	// traces are simply dropped.
	SpillDir string
	// KeepSpill retains SpillDir's files at Close for a later process:
	// Close flushes every live entry to disk, keeps all valid spill files,
	// and prunes stale-format files and orphaned temp files. When false,
	// Close removes the cache's spill files (both written and preloaded).
	KeepSpill bool
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Builds counts generator invocations (spec.Build calls).
	Builds int64
	// Hits counts Gets served from a live entry, including Gets that
	// coalesced onto an in-flight build.
	Hits int64
	// Misses counts Gets that had to create the entry.
	Misses int64
	// SpillLoads counts entries restored by decoding a spill file.
	SpillLoads int64
	// PreloadHits counts the subset of SpillLoads served by files indexed
	// from a pre-existing spill directory (written by an earlier process)
	// rather than spilled by this one.
	PreloadHits int64
	// SpillErrors counts spill-tier failures: writes that were dropped and
	// loads that failed validation or I/O and fell back to the generator.
	// The first failure is logged to stderr; the rest only count here.
	SpillErrors int64
	// Evictions counts entries evicted from memory by the byte budget.
	Evictions int64
	// LiveBytes approximates the bytes held by live entries.
	LiveBytes int64
}

func (s Stats) String() string {
	return fmt.Sprintf("%d builds, %d hits, %d misses, %d spill loads (%d preload), %d spill errors, %d evictions, %.1f MB live",
		s.Builds, s.Hits, s.Misses, s.SpillLoads, s.PreloadHits, s.SpillErrors, s.Evictions, float64(s.LiveBytes)/(1<<20))
}

// Cache is a process-wide trace cache. The zero value is not usable; use
// New. All methods are safe for concurrent use.
type Cache struct {
	cfg Config

	mu        sync.Mutex
	entries   map[workload.Identity]*Entry
	lru       *list.List // of *Entry, front = most recently used
	spilled   map[workload.Identity]string
	preloaded map[workload.Identity]bool // spilled paths adopted by Preload
	stale     []string                   // unreadable *.blbptrc files; pruned at Close with KeepSpill
	live      int64                      // bytes, under mu

	builds      atomic.Int64
	hits        atomic.Int64
	misses      atomic.Int64
	spillLoads  atomic.Int64
	preloadHits atomic.Int64
	spillErrs   atomic.Int64
	evictions   atomic.Int64

	logSpillErr sync.Once
}

// New constructs a cache. A non-empty Config.SpillDir is created if absent
// and its existing spill files are indexed so Get can warm-start from them;
// directory errors disable the spill tier and count in Stats.SpillErrors
// rather than failing construction.
func New(cfg Config) *Cache {
	c := &Cache{
		cfg:       cfg,
		entries:   make(map[workload.Identity]*Entry),
		lru:       list.New(),
		spilled:   make(map[workload.Identity]string),
		preloaded: make(map[workload.Identity]bool),
	}
	if cfg.SpillDir != "" {
		if err := os.MkdirAll(cfg.SpillDir, 0o755); err != nil {
			c.spillFailure(fmt.Errorf("creating spill dir: %w", err))
			c.cfg.SpillDir = ""
		} else {
			c.Preload(cfg.SpillDir)
		}
	}
	return c
}

// Entry is one cached workload: the built trace (held in columnar form —
// what every hot consumer replays) plus memoized derived artifacts. Entries
// stay valid after eviction — eviction only drops the cache's own
// reference.
type Entry struct {
	id    workload.Identity
	once  sync.Once
	build func() // bound at creation; every Get runs it through once
	cols  *trace.Columns
	bytes int64
	elem  *list.Element // LRU position, nil once evicted; under Cache.mu

	trOnce sync.Once
	tr     *trace.Trace

	statsOnce sync.Once
	stats     *trace.Stats

	tapeOnce sync.Once
	tape     *sim.Tape
	tapeErr  error
}

// Columns returns the built trace in columnar form (shared; callers must
// not mutate it).
func (e *Entry) Columns() *trace.Columns { return e.cols }

// Trace returns the record-slice form, materializing it from the columns on
// first use (shared; callers must not mutate it).
func (e *Entry) Trace() *trace.Trace {
	e.trOnce.Do(func() { e.tr = e.cols.Trace() })
	return e.tr
}

// Stats returns the trace's statistics, analyzing it on first use.
func (e *Entry) Stats() *trace.Stats {
	e.statsOnce.Do(func() { e.stats = trace.AnalyzeColumns(e.cols) })
	return e.stats
}

// Tape returns the trace's simulation tape, building it on first use.
func (e *Entry) Tape() (*sim.Tape, error) {
	e.tapeOnce.Do(func() { e.tape, e.tapeErr = sim.NewTapeColumns(e.cols) })
	return e.tape, e.tapeErr
}

// Preload indexes every spill file in dir by the identity in its header,
// so subsequent Gets of those identities decode from disk instead of
// running the generator — even identities never evicted (or built) in this
// process. New calls it on Config.SpillDir; call it directly to adopt
// files from an additional directory. Files with the spill extension that
// do not parse as spill files (the pre-header format, truncated crash
// leftovers) are remembered as stale and pruned by Close when KeepSpill is
// set. Identities already live or already indexed are skipped. Returns the
// number of identities indexed.
func (c *Cache) Preload(dir string) int {
	des, err := os.ReadDir(dir)
	if err != nil {
		if !os.IsNotExist(err) {
			c.spillFailure(fmt.Errorf("reading spill dir: %w", err))
		}
		return 0
	}
	n := 0
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), spillExt) {
			continue
		}
		path := filepath.Join(dir, de.Name())
		h, err := readSpillHeaderFile(path)
		if err != nil {
			// Surface the damage instead of silently skipping the file: the
			// operator sees the first failure on stderr and the rest in
			// Stats.SpillErrors, while the file is still remembered as stale
			// so Close can prune it.
			c.spillFailure(fmt.Errorf("preloading %s: %w", path, err))
			c.mu.Lock()
			c.stale = append(c.stale, path)
			c.mu.Unlock()
			continue
		}
		id := workload.Identity{Name: h.Name, Seed: h.Seed, Instructions: h.Instructions, Fingerprint: h.Fingerprint}
		c.mu.Lock()
		_, live := c.entries[id]
		_, indexed := c.spilled[id]
		if !live && !indexed {
			c.spilled[id] = path
			c.preloaded[id] = true
			n++
		}
		c.mu.Unlock()
	}
	return n
}

// Get returns the cache entry for the spec, building the trace on first
// touch. Concurrent Gets of the same spec coalesce onto one build; every
// other caller blocks until it completes and shares the entry. When the
// identity has a spill file on disk (evicted earlier, or preloaded from a
// previous process), the build decodes it — falling back to the generator
// if the file fails identity, checksum, or record-count validation.
func (c *Cache) Get(spec workload.Spec) *Entry {
	id := spec.Identity()
	c.mu.Lock()
	e := c.entries[id]
	if e != nil {
		c.touch(e)
		c.mu.Unlock()
		c.hits.Add(1)
		e.once.Do(e.build) // coalesce onto an in-flight build
		return e
	}
	e = &Entry{id: id}
	spillID := id
	spillPath := c.spilled[spillID]
	if spillPath == "" && id.Fingerprint != 0 {
		// Pre-fingerprint spill files (SPL1/SPL2 headers) index under
		// fingerprint 0. Fall back to that identity so spill directories
		// written before the fingerprint field keep warm-starting runs;
		// loadSpill still verifies name/seed/budget against the header.
		legacy := id
		legacy.Fingerprint = 0
		if p := c.spilled[legacy]; p != "" {
			spillID, spillPath = legacy, p
		}
	}
	fromPreload := c.preloaded[spillID]
	e.build = func() {
		if spillPath != "" {
			if cols, err := loadSpill(spillPath, spillID); err == nil {
				c.spillLoads.Add(1)
				if fromPreload {
					c.preloadHits.Add(1)
				}
				e.cols = cols
			} else {
				// Wrong-identity, corrupt, or unreadable file: drop it from
				// the index (and disk) and rebuild from the generator.
				c.spillFailure(fmt.Errorf("loading spill for %s: %w", id.Name, err))
				os.Remove(spillPath)
				c.mu.Lock()
				if c.spilled[spillID] == spillPath {
					delete(c.spilled, spillID)
					delete(c.preloaded, spillID)
				}
				c.mu.Unlock()
			}
		}
		if e.cols == nil {
			c.builds.Add(1)
			e.cols = spec.BuildColumns()
		}
		e.bytes = int64(e.cols.Len())*recordBytes + int64(len(e.cols.Name)) + entryOverheadBytes
	}
	c.entries[id] = e
	c.mu.Unlock()
	c.misses.Add(1)

	e.once.Do(e.build)

	c.mu.Lock()
	if e.elem == nil && c.entries[id] == e {
		e.elem = c.lru.PushFront(e)
		c.live += e.bytes
	}
	victims := c.collectVictims(e)
	c.mu.Unlock()
	c.spill(victims)
	return e
}

// touch moves a live entry to the LRU front. Caller holds mu.
func (c *Cache) touch(e *Entry) {
	if e.elem != nil {
		c.lru.MoveToFront(e.elem)
	}
}

// collectVictims evicts least-recently-used entries until the footprint
// fits the budget again, sparing keep, and returns them for spilling.
// Caller holds mu.
func (c *Cache) collectVictims(keep *Entry) []*Entry {
	if c.cfg.MaxBytes <= 0 {
		return nil
	}
	var victims []*Entry
	for c.live > c.cfg.MaxBytes && c.lru.Len() > 1 {
		back := c.lru.Back()
		v := back.Value.(*Entry)
		if v == keep {
			break
		}
		c.lru.Remove(back)
		v.elem = nil
		delete(c.entries, v.id)
		c.live -= v.bytes
		c.evictions.Add(1)
		victims = append(victims, v)
	}
	return victims
}

// spill writes evicted traces to the spill directory (outside the lock).
// A failed write counts in SpillErrors — the next Get of that identity
// rebuilds from the generator.
func (c *Cache) spill(victims []*Entry) {
	if c.cfg.SpillDir == "" {
		return
	}
	for _, v := range victims {
		c.mu.Lock()
		_, done := c.spilled[v.id]
		c.mu.Unlock()
		if done {
			continue
		}
		path := filepath.Join(c.cfg.SpillDir, spillName(v.id))
		if err := writeSpill(path, v.id, v.cols); err != nil {
			c.spillFailure(fmt.Errorf("spilling %s: %w", v.id.Name, err))
			continue
		}
		c.mu.Lock()
		c.spilled[v.id] = path
		c.mu.Unlock()
	}
}

// spillFailure counts a spill-tier error and logs the first one; later
// failures stay visible through Stats.SpillErrors without flooding stderr.
func (c *Cache) spillFailure(err error) {
	c.spillErrs.Add(1)
	c.logSpillErr.Do(func() {
		fmt.Fprintf(os.Stderr, "tracecache: %v (first failure; the rest only count in Stats.SpillErrors)\n", err)
	})
}

// spillName derives the canonical file name for an identity. The name is a
// bare hash and therefore not trusted on load: loadSpill validates the
// file's own header against the requested identity, so a colliding or
// stale file falls back to a rebuild instead of serving the wrong trace.
func spillName(id workload.Identity) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d|%d|%016x", id.Name, id.Seed, id.Instructions, id.Fingerprint)
	return fmt.Sprintf("%016x%s", h.Sum64(), spillExt)
}

// writeSpill atomically and durably writes a self-describing spill file
// through snapshot.WriteFileAtomic: the payload lands under a temp name,
// is fsynced, republished at mode 0644, renamed onto path, and the
// directory is fsynced — so a crash never leaves a partial (or silently
// empty) file at a canonical name. See DESIGN.md §7.
func writeSpill(path string, id workload.Identity, cols *trace.Columns) error {
	h := trace.SpillHeader{Name: id.Name, Seed: id.Seed, Instructions: id.Instructions, Fingerprint: id.Fingerprint}
	return snapshot.WriteFileAtomic(path, tempPattern, func(w io.Writer) error {
		return trace.WriteSpillColumns(w, h, cols)
	})
}

// readSpillHeaderFile reads just the header of a spill file.
func readSpillHeaderFile(path string) (trace.SpillHeader, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.SpillHeader{}, err
	}
	defer f.Close()
	return trace.ReadSpillHeader(f)
}

// readSpillFile reads and fully validates a spill file into columnar form.
func readSpillFile(path string) (trace.SpillHeader, *trace.Columns, error) {
	f, err := os.Open(path)
	if err != nil {
		return trace.SpillHeader{}, nil, err
	}
	defer f.Close()
	return trace.ReadSpillColumns(f)
}

// loadSpill decodes the spill file at path and verifies it really is the
// requested identity — name, seed, instruction budget, and parameter
// fingerprint from the header, with the checksum and record count checked
// against the payload by trace.ReadSpillColumns. A header fingerprint of 0
// (a pre-SPL3 file, or a legacy-fallback request) matches any request: such
// files predate the field, and name/seed/budget were the whole identity
// when they were written. A bare file-name match is never sufficient.
func loadSpill(path string, id workload.Identity) (*trace.Columns, error) {
	h, cols, err := readSpillFile(path)
	if err != nil {
		return nil, err
	}
	if h.Name != id.Name || h.Seed != id.Seed || h.Instructions != id.Instructions ||
		(h.Fingerprint != 0 && id.Fingerprint != 0 && h.Fingerprint != id.Fingerprint) {
		trace.ReleaseColumns(cols)
		return nil, fmt.Errorf("tracecache: spill %s holds %s/%d/%d/%016x, want %s/%d/%d/%016x (stale or colliding file)",
			filepath.Base(path), h.Name, h.Seed, h.Instructions, h.Fingerprint, id.Name, id.Seed, id.Instructions, id.Fingerprint)
	}
	return cols, nil
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	live := c.live
	c.mu.Unlock()
	return Stats{
		Builds:      c.builds.Load(),
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		SpillLoads:  c.spillLoads.Load(),
		PreloadHits: c.preloadHits.Load(),
		SpillErrors: c.spillErrs.Load(),
		Evictions:   c.evictions.Load(),
		LiveBytes:   live,
	}
}

// Close drops every entry. Without KeepSpill it removes the cache's spill
// files, written and preloaded alike (the pre-persistence behavior). With
// KeepSpill it instead flushes every live built entry to the spill
// directory so a later process can Preload the complete working set,
// retains all valid spill files, and prunes stale-format files and
// orphaned temp files. Close must not race concurrent Gets.
func (c *Cache) Close() {
	if c.cfg.KeepSpill && c.cfg.SpillDir != "" {
		c.mu.Lock()
		var flush []*Entry
		for id, e := range c.entries {
			if e.cols == nil {
				continue
			}
			if _, done := c.spilled[id]; !done {
				flush = append(flush, e)
			}
		}
		stale := c.stale
		c.stale = nil
		c.mu.Unlock()
		c.spill(flush)
		for _, path := range stale {
			os.Remove(path)
		}
		if tmps, err := filepath.Glob(filepath.Join(c.cfg.SpillDir, tempPattern)); err == nil {
			for _, tmp := range tmps {
				os.Remove(tmp)
			}
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.cfg.KeepSpill {
		for id, path := range c.spilled {
			os.Remove(path)
			delete(c.spilled, id)
		}
	}
	c.entries = make(map[workload.Identity]*Entry)
	c.lru.Init()
	c.live = 0
}
