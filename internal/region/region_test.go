package region

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAcquireResolveRoundTrip(t *testing.T) {
	a := New(128, 20)
	targets := []uint64{0x400000, 0x400004, 0x7fff12345678, 0, ^uint64(0)}
	for _, tgt := range targets {
		ref, off := a.Acquire(tgt)
		got, ok := a.Resolve(ref, off)
		if !ok {
			t.Fatalf("Resolve(%#x) not ok", tgt)
		}
		if got != tgt {
			t.Errorf("Resolve = %#x, want %#x", got, tgt)
		}
	}
}

func TestSameRegionShared(t *testing.T) {
	a := New(128, 20)
	r1, _ := a.Acquire(0x40_00000)
	r2, _ := a.Acquire(0x40_00004) // same high bits
	if r1 != r2 {
		t.Errorf("targets in the same region got refs %+v and %+v", r1, r2)
	}
}

func TestEvictionInvalidatesStaleRefs(t *testing.T) {
	a := New(2, 20)
	ref0, off0 := a.Acquire(0x1 << 20)
	a.Acquire(0x2 << 20)
	// Third distinct region evicts the LRU (region of ref0).
	a.Acquire(0x3 << 20)
	if _, ok := a.Resolve(ref0, off0); ok {
		t.Error("stale reference resolved after its region was evicted")
	}
	if a.Evictions() != 1 {
		t.Errorf("Evictions = %d, want 1", a.Evictions())
	}
}

func TestReacquireAfterEvictionGetsNewGen(t *testing.T) {
	a := New(1, 20)
	ref1, _ := a.Acquire(0x1 << 20)
	a.Acquire(0x2 << 20) // evicts region of ref1
	ref2, _ := a.Acquire(0x1 << 20)
	if ref1.Gen == ref2.Gen {
		t.Error("re-acquired region reuses the old generation")
	}
	if _, ok := a.Resolve(ref1, 0); ok {
		t.Error("old-generation reference still resolves")
	}
	if _, ok := a.Resolve(ref2, 0); !ok {
		t.Error("fresh reference fails to resolve")
	}
}

func TestTouchProtectsFromEviction(t *testing.T) {
	a := New(2, 20)
	ref1, _ := a.Acquire(0x1 << 20)
	a.Acquire(0x2 << 20)
	a.Touch(ref1) // region 1 is now most recent; region 2 is LRU
	a.Acquire(0x3 << 20)
	if _, ok := a.Resolve(ref1, 0); !ok {
		t.Error("touched region was evicted")
	}
}

func TestResolveMalformedRef(t *testing.T) {
	a := New(4, 20)
	if _, ok := a.Resolve(Ref{Index: -1}, 0); ok {
		t.Error("negative index resolved")
	}
	if _, ok := a.Resolve(Ref{Index: 99}, 0); ok {
		t.Error("out-of-range index resolved")
	}
	if _, ok := a.Resolve(Ref{Index: 0}, 0); ok {
		t.Error("never-allocated region resolved")
	}
}

func TestLookupDoesNotAllocate(t *testing.T) {
	a := New(4, 20)
	if _, _, ok := a.Lookup(0x123456789); ok {
		t.Error("Lookup hit on empty array")
	}
	a.Acquire(0x123456789)
	ref, off, ok := a.Lookup(0x123456789)
	if !ok {
		t.Fatal("Lookup missed after Acquire")
	}
	if got, ok := a.Resolve(ref, off); !ok || got != 0x123456789 {
		t.Errorf("Resolve(Lookup) = %#x/%v, want 0x123456789/true", got, ok)
	}
}

func TestResetInvalidatesEverything(t *testing.T) {
	a := New(8, 20)
	ref, off := a.Acquire(0xabc << 20)
	a.Reset()
	if _, ok := a.Resolve(ref, off); ok {
		t.Error("reference survived Reset")
	}
}

func TestCompressionLosslessProperty(t *testing.T) {
	f := func(targets []uint64) bool {
		a := New(16, 20)
		for _, tgt := range targets {
			ref, off := a.Acquire(tgt)
			got, ok := a.Resolve(ref, off)
			if !ok || got != tgt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWorkingSetWithinCapacityNeverEvicts(t *testing.T) {
	a := New(8, 20)
	rng := rand.New(rand.NewSource(2))
	bases := make([]uint64, 8)
	for i := range bases {
		bases[i] = uint64(i+1) << 20
	}
	for i := 0; i < 10000; i++ {
		tgt := bases[rng.Intn(len(bases))] | uint64(rng.Intn(1<<20))
		a.Acquire(tgt)
	}
	if a.Evictions() != 0 {
		t.Errorf("Evictions = %d with working set <= capacity, want 0", a.Evictions())
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []struct {
		name            string
		entries, offset int
	}{
		{"zero entries", 0, 20},
		{"zero offset", 4, 0},
		{"offset 64", 4, 64},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			New(c.entries, c.offset)
		}()
	}
}
