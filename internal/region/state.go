package region

import (
	"fmt"

	"blbp/internal/snapshot"
)

// EncodeState serializes the region array: bases, generation counters,
// valid bits, and the LRU recency state.
func (a *Array) EncodeState(e *snapshot.Enc) {
	e.U64s(a.bases)
	e.U32s(a.gens)
	e.Bools(a.valid)
	a.lru.EncodeState(e)
	e.I64(a.evictions)
}

// RestoreState reinstates state captured by EncodeState into an array of
// the same capacity.
func (a *Array) RestoreState(d *snapshot.Dec) error {
	bases := make([]uint64, len(a.bases))
	gens := make([]uint32, len(a.gens))
	valid := make([]bool, len(a.valid))
	d.U64sInto(bases)
	d.U32sInto(gens)
	d.BoolsInto(valid)
	if err := d.Err(); err != nil {
		return err
	}
	if err := a.lru.RestoreState(d); err != nil {
		return err
	}
	evictions := d.I64()
	if err := d.Err(); err != nil {
		return err
	}
	if evictions < 0 {
		return fmt.Errorf("%w: negative eviction count", snapshot.ErrCorrupt)
	}
	copy(a.bases, bases)
	copy(a.gens, gens)
	copy(a.valid, valid)
	a.evictions = evictions
	return nil
}
