// Package region implements the region-based compressed representation of
// branch targets that Seznec proposed for ITTAGE and that BLBP's IBTB reuses
// (paper §3.6, "BTB Compression"): a small LRU-managed array holds the
// high-order address bits ("regions"), and each stored target is a region
// index plus a low-order offset, roughly halving target storage.
//
// When a region is evicted, hardware would invalidate (or silently corrupt)
// entries still referencing it. The simulator models precise invalidation
// with generation counters: every reference carries the generation of the
// region slot it was created under, and resolving a stale reference fails,
// exactly as if the entry had been invalidated at eviction time.
package region

import "blbp/internal/replacement"

// Ref identifies a region slot at a particular generation.
type Ref struct {
	Index int
	Gen   uint32
}

// Array is the region array.
type Array struct {
	bases      []uint64
	gens       []uint32
	valid      []bool
	lru        *replacement.LRU
	offsetBits int
	evictions  int64
}

// New returns a region array with the given number of entries, where stored
// offsets are offsetBits wide (the paper uses 128 entries and 20-bit
// offsets).
func New(entries, offsetBits int) *Array {
	if entries <= 0 {
		panic("region: New with non-positive entries")
	}
	if offsetBits <= 0 || offsetBits >= 64 {
		panic("region: offsetBits out of range")
	}
	return &Array{
		bases:      make([]uint64, entries),
		gens:       make([]uint32, entries),
		valid:      make([]bool, entries),
		lru:        replacement.NewLRU(1, entries),
		offsetBits: offsetBits,
	}
}

// Entries returns the capacity of the array.
func (a *Array) Entries() int { return len(a.bases) }

// OffsetBits returns the configured offset width.
func (a *Array) OffsetBits() int { return a.offsetBits }

// Evictions returns how many valid regions have been replaced.
func (a *Array) Evictions() int64 { return a.evictions }

func (a *Array) split(target uint64) (base, offset uint64) {
	return target >> uint(a.offsetBits), target & (1<<uint(a.offsetBits) - 1)
}

// Lookup finds the region holding target's high bits without allocating.
func (a *Array) Lookup(target uint64) (Ref, uint64, bool) {
	base, offset := a.split(target)
	for i, b := range a.bases {
		if a.valid[i] && b == base {
			return Ref{Index: i, Gen: a.gens[i]}, offset, true
		}
	}
	return Ref{}, 0, false
}

// Acquire returns a reference for target's region, allocating (and evicting
// the LRU region) if necessary, and touches the region's recency.
func (a *Array) Acquire(target uint64) (Ref, uint64) {
	base, offset := a.split(target)
	for i, b := range a.bases {
		if a.valid[i] && b == base {
			a.lru.OnHit(0, i)
			return Ref{Index: i, Gen: a.gens[i]}, offset
		}
	}
	victim := a.lru.Victim(0)
	if a.valid[victim] {
		a.evictions++
	}
	a.bases[victim] = base
	a.gens[victim]++
	a.valid[victim] = true
	a.lru.OnInsert(0, victim)
	return Ref{Index: victim, Gen: a.gens[victim]}, offset
}

// Resolve reconstructs the full target from a reference and offset. It
// reports false when the reference is stale (its region was evicted) or
// malformed.
func (a *Array) Resolve(ref Ref, offset uint64) (uint64, bool) {
	if ref.Index < 0 || ref.Index >= len(a.bases) {
		return 0, false
	}
	if !a.valid[ref.Index] || a.gens[ref.Index] != ref.Gen {
		return 0, false
	}
	return a.bases[ref.Index]<<uint(a.offsetBits) | offset, true
}

// Touch marks a region as recently used (a prediction hit through one of
// its targets).
func (a *Array) Touch(ref Ref) {
	if ref.Index >= 0 && ref.Index < len(a.bases) && a.valid[ref.Index] && a.gens[ref.Index] == ref.Gen {
		a.lru.OnHit(0, ref.Index)
	}
}

// Reset invalidates all regions.
func (a *Array) Reset() {
	for i := range a.valid {
		a.valid[i] = false
		a.gens[i]++
	}
}
