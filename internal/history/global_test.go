package history

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGlobalShiftAndBit(t *testing.T) {
	g := NewGlobal(128)
	// Insert 1,0,1,1 (in order). Most recent is the last Shift.
	g.Shift(true)
	g.Shift(false)
	g.Shift(true)
	g.Shift(true)
	wants := []uint64{1, 1, 0, 1}
	for i, want := range wants {
		if got := g.Bit(i); got != want {
			t.Errorf("Bit(%d) = %d, want %d", i, got, want)
		}
	}
	// Bits beyond what was inserted read as 0.
	if got := g.Bit(10); got != 0 {
		t.Errorf("Bit(10) = %d, want 0", got)
	}
}

func TestGlobalCapacityRounding(t *testing.T) {
	g := NewGlobal(630)
	if g.Capacity() < 630 {
		t.Errorf("Capacity() = %d, want >= 630", g.Capacity())
	}
	if g.Capacity()%64 != 0 {
		t.Errorf("Capacity() = %d, want multiple of 64", g.Capacity())
	}
}

func TestGlobalWrapAround(t *testing.T) {
	g := NewGlobal(64)
	// Insert far more bits than capacity; the register must keep the most
	// recent Capacity() bits, oldest silently discarded.
	ref := make([]uint64, 0, 1000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		b := rng.Intn(2) == 1
		g.Shift(b)
		v := uint64(0)
		if b {
			v = 1
		}
		ref = append(ref, v)
	}
	for i := 0; i < g.Capacity(); i++ {
		want := ref[len(ref)-1-i]
		if got := g.Bit(i); got != want {
			t.Fatalf("after wrap, Bit(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestGlobalShiftBits(t *testing.T) {
	g := NewGlobal(64)
	g.ShiftBits(0b101, 3)
	// Oldest-first insertion: bit 0 of value goes in first, so bit 0 of
	// history is bit 2 of the value.
	if got := g.Bit(0); got != 1 {
		t.Errorf("Bit(0) = %d, want 1", got)
	}
	if got := g.Bit(1); got != 0 {
		t.Errorf("Bit(1) = %d, want 0", got)
	}
	if got := g.Bit(2); got != 1 {
		t.Errorf("Bit(2) = %d, want 1", got)
	}
}

func TestFoldDeterministicAndSensitive(t *testing.T) {
	g := NewGlobal(630)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 630; i++ {
		g.Shift(rng.Intn(2) == 1)
	}
	a := g.Fold(23, 49, 12)
	b := g.Fold(23, 49, 12)
	if a != b {
		t.Error("Fold not deterministic")
	}
	if a >= 1<<12 {
		t.Errorf("Fold result %#x exceeds width", a)
	}
	// Shifting one new bit must change some interval fold that includes
	// position 0.
	before := g.Fold(0, 13, 12)
	g.Shift(g.Bit(0) == 0) // insert the complement of the current bit 0
	after := g.Fold(0, 13, 12)
	if before == after {
		t.Error("Fold(0,13) unchanged after inserting a differing bit")
	}
}

func TestFoldMatchesBitwiseReference(t *testing.T) {
	// Word-level folding must agree with a naive bit-by-bit reference.
	ref := func(g *Global, lo, hi, width int) uint64 {
		var acc uint64
		j := 0
		// reconstruct the same chunked fold: bits [lo..hi] packed LSB-first
		// then folded in width-bit chunks of the packed value. Reproduce by
		// packing into a big slice of words then folding.
		nbits := hi - lo + 1
		words := make([]uint64, (nbits+63)/64)
		for i := 0; i < nbits; i++ {
			if g.Bit(lo+i) == 1 {
				words[i/64] |= 1 << uint(i%64)
			}
			j++
		}
		for _, w := range words {
			acc ^= w
		}
		mask := uint64(1)<<uint(width) - 1
		var out uint64
		for acc != 0 {
			out ^= acc & mask
			acc >>= uint(width)
		}
		return out
	}
	g := NewGlobal(630)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 2000; i++ {
		g.Shift(rng.Intn(2) == 1)
	}
	intervals := [][2]int{{0, 13}, {1, 33}, {23, 49}, {44, 85}, {77, 149}, {159, 270}, {252, 629}}
	for _, iv := range intervals {
		for _, width := range []int{8, 10, 12} {
			got := g.Fold(iv[0], iv[1], width)
			want := ref(g, iv[0], iv[1], width)
			if got != want {
				t.Errorf("Fold(%d,%d,%d) = %#x, want %#x", iv[0], iv[1], width, got, want)
			}
		}
	}
}

func TestFoldPanics(t *testing.T) {
	g := NewGlobal(64)
	cases := []struct {
		name       string
		lo, hi, wd int
	}{
		{"negative lo", -1, 5, 8},
		{"hi < lo", 10, 5, 8},
		{"hi out of range", 0, 64, 8},
		{"zero width", 0, 5, 0},
		{"width 64", 0, 5, 64},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			g.Fold(c.lo, c.hi, c.wd)
		}()
	}
}

func TestSnapshotRestore(t *testing.T) {
	g := NewGlobal(256)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		g.Shift(rng.Intn(2) == 1)
	}
	snap := g.Snapshot()
	want := g.Fold(0, 200, 12)
	for i := 0; i < 50; i++ {
		g.Shift(true)
	}
	if g.Fold(0, 200, 12) == want {
		t.Log("fold happened to collide after mutation (unlikely but legal)")
	}
	g.Restore(snap)
	if got := g.Fold(0, 200, 12); got != want {
		t.Errorf("after Restore, Fold = %#x, want %#x", got, want)
	}
}

func TestResetClearsState(t *testing.T) {
	g := NewGlobal(64)
	for i := 0; i < 64; i++ {
		g.Shift(true)
	}
	g.Reset()
	for i := 0; i < 64; i++ {
		if g.Bit(i) != 0 {
			t.Fatalf("Bit(%d) = 1 after Reset", i)
		}
	}
}

func TestFoldWidthBoundsProperty(t *testing.T) {
	g := NewGlobal(630)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 700; i++ {
		g.Shift(rng.Intn(2) == 1)
	}
	f := func(loSeed, spanSeed uint16, widthSeed uint8) bool {
		lo := int(loSeed) % 600
		hi := lo + int(spanSeed)%(629-lo) + 0
		width := int(widthSeed)%20 + 1
		v := g.Fold(lo, hi, width)
		return v < 1<<uint(width)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
