package history

import "testing"

func TestLocalUpdateGet(t *testing.T) {
	l := NewLocal(256, 10)
	pc := uint64(0x400123)
	l.Update(pc, true)
	l.Update(pc, false)
	l.Update(pc, true)
	// Shift-left semantics: oldest at high bits, newest at bit 0.
	if got := l.Get(pc); got != 0b101 {
		t.Errorf("Get = %#b, want 0b101", got)
	}
}

func TestLocalWidthSaturation(t *testing.T) {
	l := NewLocal(16, 4)
	pc := uint64(0x88)
	for i := 0; i < 100; i++ {
		l.Update(pc, true)
	}
	if got := l.Get(pc); got != 0xF {
		t.Errorf("Get = %#x, want 0xF (4-bit register)", got)
	}
}

func TestLocalSeparateRegisters(t *testing.T) {
	l := NewLocal(1024, 10)
	a, b := uint64(0x1000), uint64(0x2004)
	l.Update(a, true)
	if l.Get(b) == l.Get(a) && l.Get(b) != 0 {
		t.Error("distinct PCs unexpectedly share a register")
	}
}

func TestLocalAliasingIsDeterministic(t *testing.T) {
	// Two PCs may alias; whatever the mapping, Get must reflect the last
	// Update made through any aliasing PC, and repeated calls must agree.
	l := NewLocal(2, 10)
	l.Update(1, true)
	first := l.Get(1)
	if second := l.Get(1); second != first {
		t.Error("Get not deterministic")
	}
}

func TestLocalReset(t *testing.T) {
	l := NewLocal(8, 8)
	for pc := uint64(0); pc < 64; pc++ {
		l.Update(pc, true)
	}
	l.Reset()
	for pc := uint64(0); pc < 64; pc++ {
		if l.Get(pc) != 0 {
			t.Fatalf("register for pc %d not cleared", pc)
		}
	}
}

func TestLocalAccessors(t *testing.T) {
	l := NewLocal(256, 10)
	if l.Entries() != 256 || l.Bits() != 10 {
		t.Errorf("Entries/Bits = %d/%d, want 256/10", l.Entries(), l.Bits())
	}
}

func TestLocalConstructorPanics(t *testing.T) {
	cases := []struct {
		name          string
		entries, bits int
	}{
		{"zero entries", 0, 4},
		{"zero bits", 8, 0},
		{"too many bits", 8, 64},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			NewLocal(c.entries, c.bits)
		}()
	}
}
