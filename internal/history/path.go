package history

import "blbp/internal/hashing"

// Path records the low-order address bits of the most recent branches — the
// path history used as an extra feature by the hashed-perceptron conditional
// predictor (Tarjan & Skadron merge path and pattern indexing).
type Path struct {
	pcs  []uint16
	head int
	n    int
}

// NewPath returns a path history of the given depth (number of branches).
func NewPath(depth int) *Path {
	if depth <= 0 {
		panic("history: NewPath with non-positive depth")
	}
	return &Path{pcs: make([]uint16, depth)}
}

// Push records a branch address as the newest path element.
func (p *Path) Push(pc uint64) {
	p.head--
	if p.head < 0 {
		p.head = len(p.pcs) - 1
	}
	p.pcs[p.head] = uint16(pc >> 2)
	if p.n < len(p.pcs) {
		p.n++
	}
}

// Depth returns the configured path depth.
func (p *Path) Depth() int { return len(p.pcs) }

// Hash mixes the most recent upTo path elements into a single hash value.
// upTo is clamped to the configured depth.
func (p *Path) Hash(upTo int) uint64 {
	if upTo > len(p.pcs) {
		upTo = len(p.pcs)
	}
	var h uint64
	for i := 0; i < upTo; i++ {
		idx := p.head + i
		if idx >= len(p.pcs) {
			idx -= len(p.pcs)
		}
		h = hashing.Combine(h, uint64(p.pcs[idx])+uint64(i)<<16)
	}
	return h
}

// Reset clears the path history.
func (p *Path) Reset() {
	for i := range p.pcs {
		p.pcs[i] = 0
	}
	p.head = 0
	p.n = 0
}
