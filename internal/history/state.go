package history

import (
	"fmt"

	"blbp/internal/snapshot"
)

// EncodeState serializes the folded set into a snapshot section. Lazy state
// is flushed first: the pending-shift counter is driven to zero by catching
// every interval accumulator up, so the stored accumulators equal what any
// future fold read would observe (DESIGN.md §13, flush-on-encode rule). The
// fold registrations themselves (intervals and widths) are configuration and
// are reconstructed by the owning predictor; only the raw register and the
// caught-up accumulator values travel in the snapshot.
func (s *FoldedSet) EncodeState(e *snapshot.Enc) {
	s.catchUp()
	e.Int(s.capBits)
	e.Int(s.g.head)
	e.U64s(s.g.words)
	e.Int(len(s.accs))
	for i := range s.accs {
		e.U64(s.accs[i].acc)
	}
}

// RestoreState reinstates state captured by EncodeState into a folded set
// with the same capacity and fold registrations.
func (s *FoldedSet) RestoreState(d *snapshot.Dec) error {
	capBits := d.Int()
	head := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if capBits != s.capBits {
		return fmt.Errorf("%w: folded set capacity %d, have %d", snapshot.ErrMismatch, capBits, s.capBits)
	}
	if head < 0 || head >= s.g.capBits {
		return fmt.Errorf("%w: history head %d outside register", snapshot.ErrCorrupt, head)
	}
	d.U64sInto(s.g.words)
	nacc := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nacc != len(s.accs) {
		return fmt.Errorf("%w: %d accumulators, have %d", snapshot.ErrMismatch, nacc, len(s.accs))
	}
	for i := range s.accs {
		s.accs[i].acc = d.U64()
	}
	if err := d.Err(); err != nil {
		return err
	}
	s.g.head = head
	s.pending = 0
	return nil
}

// EncodeState serializes the local-history table.
func (l *Local) EncodeState(e *snapshot.Enc) {
	e.U64s(l.regs)
}

// RestoreState reinstates a local-history table of the same shape,
// rejecting register contents wider than the configured history bits.
func (l *Local) RestoreState(d *snapshot.Dec) error {
	saved := make([]uint64, len(l.regs))
	d.U64sInto(saved)
	if err := d.Err(); err != nil {
		return err
	}
	for i, v := range saved {
		if v&^l.mask != 0 {
			return fmt.Errorf("%w: local register %d value %#x exceeds %d bits", snapshot.ErrCorrupt, i, v, l.bits)
		}
	}
	copy(l.regs, saved)
	return nil
}

// EncodeState serializes the path history.
func (p *Path) EncodeState(e *snapshot.Enc) {
	e.U16s(p.pcs)
	e.Int(p.head)
	e.Int(p.n)
}

// RestoreState reinstates a path history of the same depth.
func (p *Path) RestoreState(d *snapshot.Dec) error {
	saved := make([]uint16, len(p.pcs))
	d.U16sInto(saved)
	head := d.Int()
	n := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if head < 0 || head >= len(p.pcs) {
		return fmt.Errorf("%w: path head %d outside depth %d", snapshot.ErrCorrupt, head, len(p.pcs))
	}
	if n < 0 || n > len(p.pcs) {
		return fmt.Errorf("%w: path fill %d outside depth %d", snapshot.ErrCorrupt, n, len(p.pcs))
	}
	copy(p.pcs, saved)
	p.head = head
	p.n = n
	return nil
}
