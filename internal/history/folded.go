package history

import "math/bits"

// FoldID identifies one registered fold within a FoldedSet.
type FoldID int

// accReg is one incrementally maintained interval accumulator. Fold's
// definition is two-stage: XOR the interval's bit string into a 64-bit
// accumulator by 64-bit chunks (bit b of acc = XOR of history bits lo+b,
// lo+b+64, ...), then XOR-reduce the accumulator to width bits. The
// accumulator is exactly a width-64 circular shift register over the
// interval: shifting one new bit into the history ages every interval bit by
// one chunk position, so
//
//	acc' = rotl64(acc, 1) ^ entering ^ leaving<<(n mod 64)
//
// where entering is the history bit sliding into position lo (the inserted
// bit itself when lo == 0, else the old bit at lo-1), leaving is the old
// bit at hi sliding out, and n = hi-lo+1. That is O(1) per history bit —
// the folded-history CSR hardware TAGE/GEHL predictors implement — and the
// cheap second-stage reduction on read keeps Value bit-identical to Fold.
//
// Because the accumulator is width-independent, folds over the same
// (lo, hi) interval share one accReg regardless of their output widths —
// TAGE-style predictors registering an index fold and a tag fold per
// history length pay for each interval once per Shift, not once per fold.
type accReg struct {
	lo, hi   int
	outShift uint // n mod 64: accumulator position of the leaving bit
	acc      uint64
}

// foldView maps a registered fold to its shared accumulator and output
// width.
type foldView struct {
	accIdx int
	width  uint
}

// FoldedSet couples a Global history register with a set of interval folds
// maintained incrementally and *lazily*. Each (lo, hi, width) interval is
// registered once at predictor construction. Shift/ShiftBits/ShiftRun only
// advance the raw register and a pending-bit counter; the accumulators are
// caught up in one O(1) step each at the next fold read (catchUp). Between
// reads the predictor observes nothing, so laziness is invisible: Value is
// bit-identical to Global.Fold(lo, hi, width) on the equivalent register
// state, however the outcome bits arrived.
//
// The register is allocated with 64 bits of slack beyond the logical
// capacity so that up to 64 pending bits can accumulate before the oldest
// leaving-bit information (history bit hi at insertion time, now at raw
// index hi+pending) is overwritten; catchUp fires automatically at that
// bound.
type FoldedSet struct {
	g       *Global
	capBits int // logical capacity; Register bounds intervals by this
	pending int // raw-register shifts not yet applied to the accumulators
	accs    []accReg
	folds   []foldView
}

// NewFoldedSet returns a folded history register holding at least capacity
// bits and no registered folds.
func NewFoldedSet(capacity int) *FoldedSet {
	if capacity <= 0 {
		panic("history: NewFoldedSet with non-positive capacity")
	}
	logical := (capacity + 63) / 64 * 64
	return &FoldedSet{g: NewGlobal(logical + 64), capBits: logical}
}

// Register adds an interval fold and returns its id. Argument constraints
// are those of Global.Fold: 0 <= lo <= hi < Capacity(), 1 <= width <= 63.
// The initial value reflects the register's current contents, so predictors
// may register folds before or after history has accumulated. Folds sharing
// an interval share the underlying accumulator.
func (s *FoldedSet) Register(lo, hi, width int) FoldID {
	if lo < 0 || hi < lo || hi >= s.capBits {
		panic("history: Register interval out of range")
	}
	if width <= 0 || width >= 64 {
		panic("history: Register width out of range")
	}
	s.catchUp()
	accIdx := -1
	for i := range s.accs {
		if s.accs[i].lo == lo && s.accs[i].hi == hi {
			accIdx = i
			break
		}
	}
	if accIdx < 0 {
		n := hi - lo + 1
		s.accs = append(s.accs, accReg{
			lo:       lo,
			hi:       hi,
			outShift: uint(n % 64),
			acc:      s.g.foldAcc(lo, hi),
		})
		accIdx = len(s.accs) - 1
	}
	s.folds = append(s.folds, foldView{accIdx: accIdx, width: uint(width)})
	return FoldID(len(s.folds) - 1)
}

// NumFolds returns how many folds have been registered.
func (s *FoldedSet) NumFolds() int { return len(s.folds) }

// NumAccumulators returns how many distinct interval accumulators back the
// registered folds (folds over the same interval share one).
func (s *FoldedSet) NumAccumulators() int { return len(s.accs) }

// Value returns the current fold value for id: identical to
// Fold(lo, hi, width) of the registered interval, without re-walking the
// history bits. The first read after a run of shifts catches every
// accumulator up in one step each.
//
//blbp:hot
func (s *FoldedSet) Value(id FoldID) uint64 {
	if s.pending != 0 {
		s.catchUp()
	}
	f := &s.folds[id]
	return foldDown(s.accs[f.accIdx].acc, f.width)
}

// catchUp applies the pending raw-register shifts to every interval
// accumulator in one step each. With P pending bits, the bits that entered
// interval position lo over the run now sit at raw indices [lo, lo+P) and
// the bits that left past hi at [hi+1, hi+1+P) — both still present thanks
// to the 64-bit allocation slack — and XOR-linearity collapses the P
// per-bit updates into one rotate and two masked word reads:
//
//	acc' = rotl64(acc, P) ^ entering ^ rotl64(leaving, n mod 64)
//
//blbp:hot
func (s *FoldedSet) catchUp() {
	p := s.pending
	if p == 0 {
		return
	}
	s.pending = 0
	g := s.g
	mask := uint64(1)<<uint(p) - 1 // p == 64 wraps to all ones
	for i := range s.accs {
		f := &s.accs[i]
		in := g.word64(f.lo) & mask
		out := g.word64(f.hi+1) & mask
		f.acc = bits.RotateLeft64(f.acc, p) ^ in ^ bits.RotateLeft64(out, int(f.outShift))
	}
}

// Capacity returns the usable history length in bits.
func (s *FoldedSet) Capacity() int { return s.capBits }

// Bit returns history bit i (0 = most recent) as 0 or 1.
func (s *FoldedSet) Bit(i int) uint64 { return s.g.Bit(i) }

// Fold computes an interval fold from scratch (the reference implementation;
// see Global.Fold). Registered folds match it bit for bit.
func (s *FoldedSet) Fold(lo, hi, width int) uint64 { return s.g.Fold(lo, hi, width) }

// Shift inserts one outcome bit as the new most-recent history bit. Only
// the raw register advances; accumulator catch-up is deferred to the next
// fold read (or to the 64-pending-bit bound, where leaving-bit information
// would start to be overwritten).
//
//blbp:hot
func (s *FoldedSet) Shift(b bool) {
	if s.pending == 64 {
		s.catchUp()
	}
	s.g.Shift(b)
	s.pending++
}

// ShiftBits inserts the low n bits of v, oldest-first, exactly as
// Global.ShiftBits does.
func (s *FoldedSet) ShiftBits(v uint64, n int) {
	for i := 0; i < n; i++ {
		s.Shift(v>>uint(i)&1 != 0)
	}
}

// ShiftRun inserts run bits start..end-1 of the packed bitset words (bit i
// lives at words[i/64], bit position i%64), oldest first — observably
// identical to calling Shift on each bit in order. With lazy catch-up a
// whole run costs one raw register shift per bit plus one accumulator
// update per 64 bits.
//
//blbp:hot
func (s *FoldedSet) ShiftRun(words []uint64, start, end int) {
	for i := start; i < end; i++ {
		if s.pending == 64 {
			s.catchUp()
		}
		s.g.Shift(words[uint(i)>>6]&(1<<(uint(i)&63)) != 0)
		s.pending++
	}
}

// Reset clears all history bits and registered folds.
func (s *FoldedSet) Reset() {
	s.g.Reset()
	s.pending = 0
	for i := range s.accs {
		s.accs[i].acc = 0
	}
}

// FoldedSnapshot is an opaque copy of a FoldedSet's state (history bits and
// fold accumulators). The zero value is valid as a SnapshotInto destination.
type FoldedSnapshot struct {
	words []uint64
	head  int
	accs  []uint64
}

// SnapshotInto captures the current state into dst, reusing dst's storage
// when possible so steady-state snapshotting does not allocate. VPC
// snapshots once per prediction, which makes this the hot variant.
func (s *FoldedSet) SnapshotInto(dst *FoldedSnapshot) {
	s.catchUp()
	dst.words = append(dst.words[:0], s.g.words...)
	dst.head = s.g.head
	dst.accs = dst.accs[:0]
	for i := range s.accs {
		dst.accs = append(dst.accs, s.accs[i].acc)
	}
}

// Snapshot returns a freshly allocated copy of the current state.
func (s *FoldedSet) Snapshot() FoldedSnapshot {
	var snap FoldedSnapshot
	s.SnapshotInto(&snap)
	return snap
}

// Restore reinstates a snapshot taken from a FoldedSet with the same
// capacity and fold registrations.
func (s *FoldedSet) Restore(snap *FoldedSnapshot) {
	if len(snap.words) != len(s.g.words) || len(snap.accs) != len(s.accs) {
		panic("history: FoldedSet.Restore snapshot from different shape")
	}
	copy(s.g.words, snap.words)
	s.g.head = snap.head
	s.pending = 0
	for i := range s.accs {
		s.accs[i].acc = snap.accs[i]
	}
}
