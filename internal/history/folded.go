package history

import "math/bits"

// FoldID identifies one registered fold within a FoldedSet.
type FoldID int

// accReg is one incrementally maintained interval accumulator. Fold's
// definition is two-stage: XOR the interval's bit string into a 64-bit
// accumulator by 64-bit chunks (bit b of acc = XOR of history bits lo+b,
// lo+b+64, ...), then XOR-reduce the accumulator to width bits. The
// accumulator is exactly a width-64 circular shift register over the
// interval: shifting one new bit into the history ages every interval bit by
// one chunk position, so
//
//	acc' = rotl64(acc, 1) ^ entering ^ leaving<<(n mod 64)
//
// where entering is the history bit sliding into position lo (the inserted
// bit itself when lo == 0, else the old bit at lo-1), leaving is the old
// bit at hi sliding out, and n = hi-lo+1. That is O(1) per history bit —
// the folded-history CSR hardware TAGE/GEHL predictors implement — and the
// cheap second-stage reduction on read keeps Value bit-identical to Fold.
//
// Because the accumulator is width-independent, folds over the same
// (lo, hi) interval share one accReg regardless of their output widths —
// TAGE-style predictors registering an index fold and a tag fold per
// history length pay for each interval once per Shift, not once per fold.
type accReg struct {
	lo, hi   int
	outShift uint // n mod 64: accumulator position of the leaving bit
	acc      uint64
}

// foldView maps a registered fold to its shared accumulator and output
// width.
type foldView struct {
	accIdx int
	width  uint
}

// FoldedSet couples a Global history register with a set of interval folds
// maintained incrementally. Each (lo, hi, width) interval is registered once
// at predictor construction; every Shift/ShiftBits then updates the
// registered interval accumulators in O(1) each, and Value reads a fold back
// without re-walking the history. Values are bit-identical to calling
// Global.Fold(lo, hi, width) on the equivalent register state.
type FoldedSet struct {
	g     *Global
	accs  []accReg
	folds []foldView
}

// NewFoldedSet returns a folded history register holding at least capacity
// bits and no registered folds.
func NewFoldedSet(capacity int) *FoldedSet {
	return &FoldedSet{g: NewGlobal(capacity)}
}

// Register adds an interval fold and returns its id. Argument constraints
// are those of Global.Fold: 0 <= lo <= hi < Capacity(), 1 <= width <= 63.
// The initial value reflects the register's current contents, so predictors
// may register folds before or after history has accumulated. Folds sharing
// an interval share the underlying accumulator.
func (s *FoldedSet) Register(lo, hi, width int) FoldID {
	if lo < 0 || hi < lo || hi >= s.g.capBits {
		panic("history: Register interval out of range")
	}
	if width <= 0 || width >= 64 {
		panic("history: Register width out of range")
	}
	accIdx := -1
	for i := range s.accs {
		if s.accs[i].lo == lo && s.accs[i].hi == hi {
			accIdx = i
			break
		}
	}
	if accIdx < 0 {
		n := hi - lo + 1
		s.accs = append(s.accs, accReg{
			lo:       lo,
			hi:       hi,
			outShift: uint(n % 64),
			acc:      s.g.foldAcc(lo, hi),
		})
		accIdx = len(s.accs) - 1
	}
	s.folds = append(s.folds, foldView{accIdx: accIdx, width: uint(width)})
	return FoldID(len(s.folds) - 1)
}

// NumFolds returns how many folds have been registered.
func (s *FoldedSet) NumFolds() int { return len(s.folds) }

// NumAccumulators returns how many distinct interval accumulators back the
// registered folds (folds over the same interval share one).
func (s *FoldedSet) NumAccumulators() int { return len(s.accs) }

// Value returns the current fold value for id: identical to
// Fold(lo, hi, width) of the registered interval, without re-walking the
// history bits.
//
//blbp:hot
func (s *FoldedSet) Value(id FoldID) uint64 {
	f := &s.folds[id]
	return foldDown(s.accs[f.accIdx].acc, f.width)
}

// Capacity returns the usable history length in bits.
func (s *FoldedSet) Capacity() int { return s.g.Capacity() }

// Bit returns history bit i (0 = most recent) as 0 or 1.
func (s *FoldedSet) Bit(i int) uint64 { return s.g.Bit(i) }

// Fold computes an interval fold from scratch (the reference implementation;
// see Global.Fold). Registered folds match it bit for bit.
func (s *FoldedSet) Fold(lo, hi, width int) uint64 { return s.g.Fold(lo, hi, width) }

// Shift inserts one outcome bit as the new most-recent history bit and
// updates every registered interval accumulator in O(1).
//
//blbp:hot
func (s *FoldedSet) Shift(b bool) {
	g := s.g
	var in0 uint64
	if b {
		in0 = 1
	}
	for i := range s.accs {
		f := &s.accs[i]
		in := in0
		if f.lo != 0 {
			in = g.bit(f.lo - 1)
		}
		out := g.bit(f.hi)
		f.acc = bits.RotateLeft64(f.acc, 1) ^ in ^ out<<f.outShift
	}
	g.Shift(b)
}

// ShiftBits inserts the low n bits of v, oldest-first, exactly as
// Global.ShiftBits does.
func (s *FoldedSet) ShiftBits(v uint64, n int) {
	for i := 0; i < n; i++ {
		s.Shift(v>>uint(i)&1 != 0)
	}
}

// Reset clears all history bits and registered folds.
func (s *FoldedSet) Reset() {
	s.g.Reset()
	for i := range s.accs {
		s.accs[i].acc = 0
	}
}

// FoldedSnapshot is an opaque copy of a FoldedSet's state (history bits and
// fold accumulators). The zero value is valid as a SnapshotInto destination.
type FoldedSnapshot struct {
	words []uint64
	head  int
	accs  []uint64
}

// SnapshotInto captures the current state into dst, reusing dst's storage
// when possible so steady-state snapshotting does not allocate. VPC
// snapshots once per prediction, which makes this the hot variant.
func (s *FoldedSet) SnapshotInto(dst *FoldedSnapshot) {
	dst.words = append(dst.words[:0], s.g.words...)
	dst.head = s.g.head
	dst.accs = dst.accs[:0]
	for i := range s.accs {
		dst.accs = append(dst.accs, s.accs[i].acc)
	}
}

// Snapshot returns a freshly allocated copy of the current state.
func (s *FoldedSet) Snapshot() FoldedSnapshot {
	var snap FoldedSnapshot
	s.SnapshotInto(&snap)
	return snap
}

// Restore reinstates a snapshot taken from a FoldedSet with the same
// capacity and fold registrations.
func (s *FoldedSet) Restore(snap *FoldedSnapshot) {
	if len(snap.words) != len(s.g.words) || len(snap.accs) != len(s.accs) {
		panic("history: FoldedSet.Restore snapshot from different shape")
	}
	copy(s.g.words, snap.words)
	s.g.head = snap.head
	for i := range s.accs {
		s.accs[i].acc = snap.accs[i]
	}
}
