package history

import "testing"

func TestPathHashChangesWithPushes(t *testing.T) {
	p := NewPath(16)
	p.Push(0x1000)
	h1 := p.Hash(16)
	p.Push(0x2000)
	h2 := p.Hash(16)
	if h1 == h2 {
		t.Error("path hash unchanged after push")
	}
}

func TestPathOrderSensitive(t *testing.T) {
	a := NewPath(8)
	b := NewPath(8)
	a.Push(0x1000)
	a.Push(0x2000)
	b.Push(0x2000)
	b.Push(0x1000)
	if a.Hash(8) == b.Hash(8) {
		t.Error("path hash is order-insensitive")
	}
}

func TestPathHashClampsDepth(t *testing.T) {
	p := NewPath(4)
	for i := 0; i < 10; i++ {
		p.Push(uint64(i) << 4)
	}
	if p.Hash(100) != p.Hash(4) {
		t.Error("Hash(upTo > depth) != Hash(depth)")
	}
}

func TestPathPrefixDiffers(t *testing.T) {
	p := NewPath(8)
	for i := 0; i < 8; i++ {
		p.Push(uint64(0x400000 + i*64))
	}
	if p.Hash(2) == p.Hash(6) {
		t.Error("different path depths produced identical hashes")
	}
}

func TestPathResetAndDepth(t *testing.T) {
	p := NewPath(8)
	if p.Depth() != 8 {
		t.Errorf("Depth = %d, want 8", p.Depth())
	}
	p.Push(0x1234)
	h := p.Hash(8)
	p.Reset()
	empty := NewPath(8)
	if p.Hash(8) != empty.Hash(8) {
		t.Error("Reset did not restore pristine hash")
	}
	_ = h
}

func TestPathConstructorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPath(0) did not panic")
		}
	}()
	NewPath(0)
}
