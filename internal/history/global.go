// Package history implements the branch-history state that feeds predictor
// index functions: a long global history register with interval folding
// (BLBP's 630-bit GHIST and ITTAGE's geometric histories), a table of
// per-branch local histories, and a path history register.
package history

// Global is a circular shift register of branch-history bits. Bit 0 is the
// most recent outcome. It supports extracting and XOR-folding arbitrary
// [lo, hi] intervals, which is how BLBP's eight sub-predictors and ITTAGE's
// tagged tables derive their indices.
type Global struct {
	words   []uint64
	capBits int // always a multiple of 64, >= requested capacity
	head    int // bit index of the most recent outcome
}

// NewGlobal returns a history register holding at least capacity bits.
func NewGlobal(capacity int) *Global {
	if capacity <= 0 {
		panic("history: NewGlobal with non-positive capacity")
	}
	w := (capacity + 63) / 64
	return &Global{words: make([]uint64, w), capBits: w * 64}
}

// Capacity returns the usable history length in bits.
func (g *Global) Capacity() int { return g.capBits }

// Shift inserts one outcome bit as the new most-recent history bit.
//
//blbp:hot
func (g *Global) Shift(b bool) {
	g.head--
	if g.head < 0 {
		g.head = g.capBits - 1
	}
	wi, bi := g.head>>6, uint(g.head&63)
	if b {
		g.words[wi] |= 1 << bi
	} else {
		g.words[wi] &^= 1 << bi
	}
}

// ShiftBits inserts the low n bits of v, oldest-first, so that after the
// call bit 0 holds bit n-1 of v. It is used to record a few target-address
// bits on resolved indirect branches.
func (g *Global) ShiftBits(v uint64, n int) {
	for i := 0; i < n; i++ {
		g.Shift(v>>uint(i)&1 != 0)
	}
}

// Bit returns history bit i (0 = most recent) as 0 or 1. i must be within
// capacity.
func (g *Global) Bit(i int) uint64 {
	if i < 0 || i >= g.capBits {
		panic("history: Bit index out of range")
	}
	return g.bit(i)
}

// bit is Bit without the range check, for hot paths that index within
// registered bounds (FoldedSet's per-shift fold updates).
//
//blbp:hot
func (g *Global) bit(i int) uint64 {
	pos := g.head + i
	if pos >= g.capBits {
		pos -= g.capBits
	}
	return (g.words[pos>>6] >> uint(pos&63)) & 1
}

// word64 returns 64 consecutive history bits starting at logical index i
// (bit j of the result is history bit i+j).
//
//blbp:hot
func (g *Global) word64(i int) uint64 {
	pos := g.head + i
	if pos >= g.capBits {
		pos -= g.capBits
	}
	wi, bi := pos>>6, uint(pos&63)
	lo := g.words[wi] >> bi
	if bi == 0 {
		return lo
	}
	ni := wi + 1
	if ni == len(g.words) {
		ni = 0
	}
	next := g.words[ni]
	return lo | next<<(64-bi)
}

// Fold XOR-folds history bits in the inclusive interval [lo, hi] down to a
// width-bit value. lo <= hi must both be within capacity and width must be
// in [1, 63]. The same register state always folds to the same value, and
// the fold depends on every bit in the interval.
func (g *Global) Fold(lo, hi, width int) uint64 {
	if lo < 0 || hi < lo || hi >= g.capBits {
		panic("history: Fold interval out of range")
	}
	if width <= 0 || width >= 64 {
		panic("history: Fold width out of range")
	}
	return foldDown(g.foldAcc(lo, hi), uint(width))
}

// foldAcc XOR-combines the [lo, hi] interval's 64-bit chunks: bit b of the
// result is the XOR of history bits lo+b, lo+b+64, lo+b+128, ... — the first
// stage of Fold, and the quantity FoldedSet maintains incrementally.
func (g *Global) foldAcc(lo, hi int) uint64 {
	n := hi - lo + 1
	var acc uint64
	for off := 0; off < n; off += 64 {
		w := g.word64(lo + off)
		if rem := n - off; rem < 64 {
			w &= (1 << uint(rem)) - 1
		}
		acc ^= w
	}
	return acc
}

// foldDown reduces a 64-bit chunk accumulator to width bits — the second
// stage of Fold.
func foldDown(acc uint64, width uint) uint64 {
	mask := uint64(1)<<width - 1
	var out uint64
	for acc != 0 {
		out ^= acc & mask
		acc >>= width
	}
	return out
}

// Reset clears all history bits.
func (g *Global) Reset() {
	for i := range g.words {
		g.words[i] = 0
	}
	g.head = 0
}

// Snapshot copies the register state; Restore reinstates it. VPC uses this
// to speculatively shift virtual not-taken outcomes during its iteration
// loop and roll them back.
func (g *Global) Snapshot() GlobalSnapshot {
	words := make([]uint64, len(g.words))
	copy(words, g.words)
	return GlobalSnapshot{words: words, head: g.head}
}

// GlobalSnapshot is an opaque copy of a Global register's state.
type GlobalSnapshot struct {
	words []uint64
	head  int
}

// Restore reinstates a snapshot taken from a register of the same capacity.
func (g *Global) Restore(s GlobalSnapshot) {
	if len(s.words) != len(g.words) {
		panic("history: Restore snapshot from different capacity")
	}
	copy(g.words, s.words)
	g.head = s.head
}
