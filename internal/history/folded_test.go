package history

import (
	"math/rand"
	"testing"
)

// foldedTestIntervals mixes the register's real consumers (BLBP's tuned
// intervals at width 22, ITTAGE-style [0, len-1] index/tag folds at widths
// 22 and 17) with adversarial shapes: width 1, interval length < width,
// interval length an exact multiple of the width, and intervals hugging the
// capacity boundary so the circular register wraps through them.
var foldedTestIntervals = []struct{ lo, hi, width int }{
	{0, 13, 22},
	{1, 33, 22},
	{23, 49, 22},
	{252, 630, 22},
	{0, 629, 17},
	{0, 629, 22},  // same interval as above at another width: shares its accumulator
	{0, 13, 9},    // ditto for the short head interval
	{0, 3, 22},    // shorter than the width
	{0, 43, 22},   // length 44 = 2x22, leaving bit folds onto bit 0
	{7, 7, 5},     // single-bit interval
	{0, 630, 1},   // width 1: parity of the whole register
	{600, 630, 6}, // tail interval: wraps across the word boundary early
}

// TestFoldedSetMatchesReferenceFold drives a FoldedSet and an identical
// reference Global through >10k random interleavings of Shift, ShiftBits,
// Reset, and Snapshot/Restore, checking every registered fold against the
// from-scratch Fold after each step.
func TestFoldedSetMatchesReferenceFold(t *testing.T) {
	const capacity = 631
	rng := rand.New(rand.NewSource(42))

	fs := NewFoldedSet(capacity)
	ref := NewGlobal(capacity)
	ids := make([]FoldID, len(foldedTestIntervals))
	for i, iv := range foldedTestIntervals {
		ids[i] = fs.Register(iv.lo, iv.hi, iv.width)
	}

	check := func(step int) {
		t.Helper()
		for i, iv := range foldedTestIntervals {
			want := ref.Fold(iv.lo, iv.hi, iv.width)
			if got := fs.Value(ids[i]); got != want {
				t.Fatalf("step %d: fold[%d,%d]@%d = %#x, want %#x",
					step, iv.lo, iv.hi, iv.width, got, want)
			}
			// The set's own reference path must agree too.
			if got := fs.Fold(iv.lo, iv.hi, iv.width); got != want {
				t.Fatalf("step %d: FoldedSet.Fold disagrees with Global.Fold", step)
			}
		}
	}

	var snap FoldedSnapshot
	var refSnap GlobalSnapshot
	haveSnap := false

	const steps = 12000
	for step := 0; step < steps; step++ {
		switch r := rng.Intn(100); {
		case r < 70: // single outcome bit
			b := rng.Intn(2) == 0
			fs.Shift(b)
			ref.Shift(b)
		case r < 90: // multi-bit target insert
			v := rng.Uint64()
			n := 1 + rng.Intn(8)
			fs.ShiftBits(v, n)
			for i := 0; i < n; i++ {
				ref.Shift(v>>uint(i)&1 != 0)
			}
		case r < 93:
			fs.Reset()
			ref.Reset()
		case r < 97: // snapshot both registers
			fs.SnapshotInto(&snap)
			refSnap = ref.Snapshot()
			haveSnap = true
		default: // roll both back, if a snapshot exists
			if haveSnap {
				fs.Restore(&snap)
				ref.Restore(refSnap)
			}
		}
		check(step)
	}
}

// TestFoldedSetRegisterOnWarmHistory registers folds after history has
// accumulated: the initial value must reflect the existing contents.
func TestFoldedSetRegisterOnWarmHistory(t *testing.T) {
	fs := NewFoldedSet(128)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		fs.Shift(rng.Intn(2) == 0)
	}
	id := fs.Register(5, 90, 13)
	if got, want := fs.Value(id), fs.Fold(5, 90, 13); got != want {
		t.Fatalf("fold registered on warm history = %#x, want %#x", got, want)
	}
	for i := 0; i < 300; i++ {
		fs.Shift(rng.Intn(2) == 0)
		if got, want := fs.Value(id), fs.Fold(5, 90, 13); got != want {
			t.Fatalf("step %d: fold = %#x, want %#x", i, got, want)
		}
	}
}

// TestFoldedSetSharesAccumulators verifies folds over the same interval
// share one accumulator (the TAGE index/tag case) while remaining
// independently correct at their own widths.
func TestFoldedSetSharesAccumulators(t *testing.T) {
	fs := NewFoldedSet(256)
	idx := fs.Register(0, 129, 22)
	tag := fs.Register(0, 129, 17)
	other := fs.Register(0, 63, 22)
	if got := fs.NumFolds(); got != 3 {
		t.Fatalf("NumFolds = %d, want 3", got)
	}
	if got := fs.NumAccumulators(); got != 2 {
		t.Fatalf("NumAccumulators = %d, want 2 (idx/tag share one)", got)
	}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 500; i++ {
		fs.Shift(rng.Intn(2) == 0)
	}
	for _, c := range []struct {
		id          FoldID
		lo, hi, w   int
		description string
	}{
		{idx, 0, 129, 22, "index fold"},
		{tag, 0, 129, 17, "tag fold"},
		{other, 0, 63, 22, "unshared fold"},
	} {
		if got, want := fs.Value(c.id), fs.Fold(c.lo, c.hi, c.w); got != want {
			t.Errorf("%s = %#x, want %#x", c.description, got, want)
		}
	}
}

// TestFoldedSetRestoreShapeChecks verifies Restore rejects snapshots from a
// differently shaped set.
func TestFoldedSetRestoreShapeChecks(t *testing.T) {
	a := NewFoldedSet(64)
	a.Register(0, 10, 5)
	b := NewFoldedSet(64)
	snap := a.Snapshot()
	defer func() {
		if recover() == nil {
			t.Error("Restore with mismatched fold count did not panic")
		}
	}()
	b.Restore(&snap)
}

func BenchmarkFoldedSetShift(b *testing.B) {
	fs := NewFoldedSet(631)
	for _, iv := range foldedTestIntervals {
		fs.Register(iv.lo, iv.hi, iv.width)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.Shift(i&1 == 0)
	}
}

// BenchmarkFoldFromScratch is the cost the incremental layer replaces: one
// from-scratch fold of the seven BLBP intervals per prediction.
func BenchmarkFoldFromScratch(b *testing.B) {
	g := NewGlobal(631)
	for i := 0; i < 631; i++ {
		g.Shift(i%3 == 0)
	}
	intervals := [][2]int{{0, 13}, {1, 33}, {23, 49}, {44, 85}, {77, 149}, {159, 270}, {252, 630}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, iv := range intervals {
			g.Fold(iv[0], iv[1], 22)
		}
	}
}

// TestFoldedSetShiftRunMatchesShift drives two identically registered sets
// through random packed-bitset runs — one via ShiftRun (straddling the bulk
// threshold from both sides), one via per-bit Shift — and checks every fold
// stays identical after each run.
func TestFoldedSetShiftRunMatchesShift(t *testing.T) {
	const capacity = 631
	rng := rand.New(rand.NewSource(7))

	bulk := NewFoldedSet(capacity)
	ref := NewFoldedSet(capacity)
	ids := make([]FoldID, len(foldedTestIntervals))
	for i, iv := range foldedTestIntervals {
		ids[i] = bulk.Register(iv.lo, iv.hi, iv.width)
		ref.Register(iv.lo, iv.hi, iv.width)
	}

	words := make([]uint64, 64)
	for i := range words {
		words[i] = rng.Uint64()
	}
	pos := 0
	for step := 0; step < 400; step++ {
		// Run lengths cover empty, short, catch-up-bound-adjacent (the lazy
		// accumulators catch up every 64 pending bits), and
		// longer-than-capacity runs.
		n := rng.Intn(130)
		switch rng.Intn(8) {
		case 0:
			n = 0
		case 1:
			n = rng.Intn(800)
		}
		if pos+n > len(words)*64 {
			pos = 0
		}
		bulk.ShiftRun(words, pos, pos+n)
		for i := pos; i < pos+n; i++ {
			ref.Shift(words[uint(i)>>6]&(1<<(uint(i)&63)) != 0)
		}
		pos += n
		for i, iv := range foldedTestIntervals {
			want := ref.Value(ids[i])
			got := bulk.Value(ids[i])
			if got != want {
				t.Fatalf("step %d (run %d): fold[%d,%d]@%d = %#x, want %#x",
					step, n, iv.lo, iv.hi, iv.width, got, want)
			}
			// Ground truth: the lazy catch-up (with pending anywhere up to
			// the 64-bit bound) must equal the from-scratch fold.
			if scratch := bulk.Fold(iv.lo, iv.hi, iv.width); got != scratch {
				t.Fatalf("step %d (run %d): fold[%d,%d]@%d = %#x, from-scratch %#x",
					step, n, iv.lo, iv.hi, iv.width, got, scratch)
			}
		}
	}
}
