package history

import "blbp/internal/hashing"

// Local is a table of fixed-width per-branch history shift registers,
// indexed by a hash of the branch PC. BLBP keeps 256 registers of 10 bits;
// each records bit 3 of the previous targets of the branch mapping there.
type Local struct {
	regs    []uint64
	mask    uint64
	entries int
	bits    int
}

// NewLocal returns a local-history table with the given number of registers
// (rounded up to a power of two is NOT applied; pass a power of two for
// mask-free indexing cost to be irrelevant) each holding bits history bits.
func NewLocal(entries, bits int) *Local {
	if entries <= 0 {
		panic("history: NewLocal with non-positive entries")
	}
	if bits <= 0 || bits > 63 {
		panic("history: NewLocal bits out of range")
	}
	return &Local{
		regs:    make([]uint64, entries),
		mask:    uint64(1)<<uint(bits) - 1,
		entries: entries,
		bits:    bits,
	}
}

func (l *Local) index(pc uint64) int {
	return hashing.Index(hashing.Mix64(pc), l.entries)
}

// Get returns the history register associated with pc.
func (l *Local) Get(pc uint64) uint64 { return l.regs[l.index(pc)] }

// Update shifts outcome bit b into pc's history register.
func (l *Local) Update(pc uint64, b bool) {
	i := l.index(pc)
	v := l.regs[i] << 1
	if b {
		v |= 1
	}
	l.regs[i] = v & l.mask
}

// Bits returns the width of each register.
func (l *Local) Bits() int { return l.bits }

// Entries returns the number of registers.
func (l *Local) Entries() int { return l.entries }

// Reg returns register i's raw contents (state fingerprinting/diagnostics).
func (l *Local) Reg(i int) uint64 { return l.regs[i] }

// Reset clears every register.
func (l *Local) Reset() {
	for i := range l.regs {
		l.regs[i] = 0
	}
}
