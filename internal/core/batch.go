package core

// Lookahead batching: PredictBatch answers a window of upcoming branch
// sites under the predictor's current trained state, restructured so one
// sweep over the packed weight image accumulates every item's per-bit
// sums. It is bit-identical — outputs, counters, and pending
// Update state — to calling Predict once per pc with no intervening
// training, which is well-defined because Predict mutates no predictive
// state. Training remains serially dependent (each Update changes the
// weights, histories, and IBTB the next prediction reads), so UpdateBatch
// is exactly the serial loop.
//
// Multi-stream batching — many independent streams, one predictor each,
// summed in a single sweep — lives in internal/batch on top of the
// BatchPrepare/BatchRows/BatchTable/BatchFinish hooks.

// lookahead is PredictBatch's scratch: per-item snapshots of the prepare
// phase plus the batch lane accumulators. It grows to the largest batch
// seen and is reused, so steady-state batches allocate nothing.
type lookahead struct {
	// rows holds per-item packed-row offsets, SubPredictors() apiece: an
	// arena whose n-sized windows bound one item's lane accumulation.
	//
	//blbp:rows
	rows     []int
	wrows    []int    // per-item weight-row offsets, same indexing
	cands    []uint64 // all items' candidate targets, contiguous
	bits     []uint64 // candidates pre-shifted by BitOffset, same indexing
	start    []int    // item i's candidates span cands[start[i]:start[i+1]]
	suppress []uint64 // per-item selective-training masks
	// accs holds per-item lane accumulators, wordsPerRow apiece.
	//
	//blbp:lanes(acc)
	accs []uint64
}

// ensureLookahead returns the lookahead scratch sized for a b-item batch.
// The candidate arena reserves candCap slots per item — the most one
// prepare can yield — so the hot path's appends can never grow a slice.
func (p *BLBP) ensureLookahead(b int) *lookahead {
	la := p.batch
	if la == nil {
		la = &lookahead{}
		p.batch = la
	}
	if len(la.suppress) < b {
		n := p.cfg.SubPredictors()
		la.rows = make([]int, b*n)
		la.wrows = make([]int, b*n)
		la.cands = make([]uint64, 0, b*p.candCap)
		la.bits = make([]uint64, 0, b*p.candCap)
		la.start = make([]int, b+1)
		la.suppress = make([]uint64, b)
		la.accs = make([]uint64, b*p.wordsPerRow)
	}
	return la
}

// PredictBatch predicts the batch of branch sites pcs under the current
// trained state, filling targets and oks. It is equivalent, bit for bit, to
//
//	for i := range pcs { targets[i], oks[i] = p.Predict(pcs[i]) }
//
// including diagnostics counters and the pending state the next Update
// consumes (that of the final item). The three slices must have equal
// length; pcs may repeat (a repeated site simply predicts the same way
// twice, exactly as the serial loop would).
func (p *BLBP) PredictBatch(pcs, targets []uint64, oks []bool) {
	if len(targets) != len(pcs) || len(oks) != len(pcs) {
		panic("core: PredictBatch slice lengths differ")
	}
	b := len(pcs)
	if b == 0 {
		return
	}
	n := p.cfg.SubPredictors()
	wpr := p.wordsPerRow
	la := p.ensureLookahead(b)

	// Phase A: prepare each item — candidates, active rows, suppress mask —
	// and snapshot the results into the scratch arena.
	la.cands = la.cands[:0]
	la.bits = la.bits[:0]
	for i, pc := range pcs {
		p.prepare(pc)
		copy(la.rows[i*n:(i+1)*n], p.pRowOff)
		copy(la.wrows[i*n:(i+1)*n], p.rowOff)
		la.start[i] = len(la.cands)
		la.cands = append(la.cands, p.candBuf...)
		la.bits = append(la.bits, p.candBits...)
		la.suppress[i] = p.suppressMask
	}
	la.start[b] = len(la.cands)

	// Phase B: one sweep accumulates every item's lane sums (the sweep owns
	// the zeroing of its accumulator window).
	accs := la.accs[:b*wpr]
	p.sweepLookahead(la.rows[:b*n], accs, b)

	// Phase C: restore each item's prepared state and finish its
	// prediction; after the final item the pending state matches a serial
	// Predict of that pc.
	for i, pc := range pcs {
		lo, hi := la.start[i], la.start[i+1]
		p.candBuf = append(p.candBuf[:0], la.cands[lo:hi]...)
		p.candBits = append(p.candBits[:0], la.bits[lo:hi]...)
		p.suppressMask = la.suppress[i]
		p.hadCandidates = hi > lo
		copy(p.pRowOff, la.rows[i*n:(i+1)*n])
		copy(p.rowOff, la.wrows[i*n:(i+1)*n])
		targets[i], oks[i] = p.BatchFinish(pc, accs[i*wpr:(i+1)*wpr])
	}
}

// sweepLookahead is the batched sum kernel: one pass over the batch's
// SubPredictors()×items active packed rows, accumulating each item's lane
// sums. The row loads are independent within an item and across items, so
// the whole batch's scattered loads overlap in the memory pipeline; each
// item's lane accumulators stay in registers for its entire sweep.
//
// The kernel owns zeroing accs: keeping the clear next to the accumulation
// is what makes the no-overflow argument local (every sum starts from zero
// and adds at most SubPredictors() bounded rows). The unrolled branch
// overwrites every word it is responsible for, so only the generic branch
// clears explicitly.
//
//blbp:hot
func (p *BLBP) sweepLookahead(rows []int, accs []uint64, b int) {
	n := p.cfg.SubPredictors()
	wpr := p.wordsPerRow
	pw := p.pweights
	if wpr == 3 {
		// K in 9..12 — the paper configuration's row shape.
		for i := 0; i < b; i++ {
			var a0, a1, a2 uint64
			for _, base := range rows[i*n : i*n+n] {
				row := pw[base : base+3 : base+3]
				a0 += row[0]
				a1 += row[1]
				a2 += row[2]
			}
			j := i * 3
			accs[j] = a0
			accs[j+1] = a1
			accs[j+2] = a2
		}
		return
	}
	for i := range accs {
		accs[i] = 0
	}
	for i := 0; i < b; i++ {
		acc := accs[i*wpr : i*wpr+wpr]
		for _, base := range rows[i*n : i*n+n] {
			row := pw[base : base+wpr]
			for w, v := range row {
				acc[w] += v
			}
		}
	}
}

// UpdateBatch trains the predictor with a batch of resolved targets:
// exactly the serial loop, because training is serially dependent — each
// Update changes the weights, histories, and IBTB that the next item's
// training reads.
func (p *BLBP) UpdateBatch(pcs, actuals []uint64) {
	if len(actuals) != len(pcs) {
		panic("core: UpdateBatch slice lengths differ")
	}
	for i, pc := range pcs {
		p.Update(pc, actuals[i])
	}
}
