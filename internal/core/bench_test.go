package core

import (
	"math/rand"
	"testing"
)

// benchStream builds a steady-state BLBP over a polymorphic indirect
// workload — a handful of dispatch sites, each with a skewed target set,
// interleaved with conditional history traffic — and returns the trained
// predictor plus the event stream to replay. Only the stable public API
// (New, Predict, Update, OnCond) is exercised, so the same benchmark
// measures any revision of the predictor core.
type benchEvent struct {
	pc     uint64
	target uint64
	cond   bool // conditional outcome event rather than an indirect branch
	taken  bool
}

func benchStream(n int) (*BLBP, []benchEvent) {
	rng := rand.New(rand.NewSource(1234))
	sites := make([]struct {
		pc      uint64
		targets []uint64
	}, 8)
	for i := range sites {
		sites[i].pc = 0x400000 + uint64(i)*0x224
		k := 2 + rng.Intn(14)
		sites[i].targets = make([]uint64, k)
		for j := range sites[i].targets {
			sites[i].targets[j] = 0x500000 + uint64(rng.Intn(1<<16))*4
		}
	}
	events := make([]benchEvent, n)
	for i := range events {
		if rng.Intn(4) != 0 { // 3:1 conditional-to-indirect mix
			events[i] = benchEvent{
				pc:    0x600000 + uint64(rng.Intn(64))*4,
				cond:  true,
				taken: rng.Intn(3) != 0,
			}
			continue
		}
		s := &sites[rng.Intn(len(sites))]
		events[i] = benchEvent{
			pc:     s.pc,
			target: s.targets[rng.Intn(len(s.targets))],
		}
	}
	p := New(DefaultConfig())
	// Warm to steady state: tables populated, weights trained.
	for _, e := range events {
		if e.cond {
			p.OnCond(e.pc, e.taken)
			continue
		}
		p.Predict(e.pc)
		p.Update(e.pc, e.target)
	}
	return p, events
}

// BenchmarkPredict measures steady-state prediction cost alone: the
// candidate lookup, per-interval folded-history table reads, weight
// summation, suppression masking, and similarity scan.
func BenchmarkPredict(b *testing.B) {
	p, events := benchStream(4096)
	indirect := make([]benchEvent, 0, len(events))
	for _, e := range events {
		if !e.cond {
			indirect = append(indirect, e)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := indirect[i%len(indirect)]
		p.Predict(e.pc)
	}
}

// BenchmarkPredictUpdate measures the full engine contract per indirect
// branch: Predict followed by Update with the actual target.
func BenchmarkPredictUpdate(b *testing.B) {
	p, events := benchStream(4096)
	indirect := make([]benchEvent, 0, len(events))
	for _, e := range events {
		if !e.cond {
			indirect = append(indirect, e)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := indirect[i%len(indirect)]
		p.Predict(e.pc)
		p.Update(e.pc, e.target)
	}
}

// BenchmarkOnCond measures the conditional-outcome history shift — the
// predictor's most frequent event (every conditional branch in the stream).
func BenchmarkOnCond(b *testing.B) {
	p, _ := benchStream(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.OnCond(0x600000+uint64(i&63)*4, i&3 != 0)
	}
}
