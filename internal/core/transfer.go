package core

// The non-linear transfer function of paper §3.6 (Fig. 5): a convex mapping
// applied to each weight before summation that amplifies high-magnitude
// (confident) weights and diminishes low ones, letting 4-bit weights model
// bit probabilities more sharply. The paper publishes only the plot; this
// integer table reproduces its convex character and was kept after the same
// kind of empirical tuning the authors describe.
var transferMagnitude = [8]int{0, 1, 2, 3, 4, 6, 9, 13}

// transferTable precomputes the transfer function over the full signed
// weight range for a given weight width, so the prediction loop is a table
// lookup. Index by weight−min. The bound covers both the literal magnitude
// table and the widest raw-weight range Validate's WeightBits guard admits
// (1<<(8-1) - 1); lanebounds re-derives and checks it.
//
//blbp:bound(-127,127)
func buildTransferTable(weightBits int, useTransfer bool) []int {
	max := 1<<uint(weightBits-1) - 1
	min := -max // sign/magnitude representation: symmetric range
	table := make([]int, max-min+1)
	for w := min; w <= max; w++ {
		v := w
		if useTransfer {
			mag := w
			if mag < 0 {
				mag = -mag
			}
			// Scale the published 8-entry shape to wider weights if
			// configured; for the paper's 4-bit weights this is identity
			// indexing.
			idx := mag
			if max > 7 {
				idx = mag * 7 / max
			}
			v = transferMagnitude[idx]
			if w < 0 {
				v = -v
			}
		}
		table[w-min] = v
	}
	return table
}
