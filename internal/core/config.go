// Package core implements BLBP, the Bit-Level Perceptron-Based Indirect
// Branch Predictor (Garza et al., ISCA 2019). BLBP predicts each low-order
// bit of an indirect branch's target with a bank of hashed-perceptron
// sub-predictors and then selects, among the targets stored in an indirect
// branch target buffer (IBTB), the one whose bit vector is most similar to
// the predicted-bit confidence vector (a non-normalized cosine similarity).
package core

import (
	"fmt"

	"blbp/internal/ibtb"
)

// Interval is an inclusive [Lo, Hi] global-history range.
type Interval struct {
	Lo, Hi int
}

// Config parameterizes a BLBP predictor. The zero value is not valid; start
// from DefaultConfig.
type Config struct {
	// K is the number of low-order target bits predicted (12 in the paper).
	K int
	// BitOffset is the position of the lowest predicted bit. Instruction
	// alignment makes the lowest address bits constant, so the default
	// skips bits 0-1.
	BitOffset int
	// TableEntries is the number of weight rows per sub-predictor (M).
	TableEntries int
	// WeightBits is the signed weight width; 4 in the paper, giving the
	// range [-7, 7].
	WeightBits int
	// Intervals are the seven tuned global-history intervals indexing
	// sub-predictors 1..7 (paper §3.6).
	Intervals []Interval
	// GEHLLengths are the geometric history lengths used instead of
	// Intervals when UseIntervals is false (the paper's "GEHL only"
	// ablation arm). Must have the same count as Intervals.
	GEHLLengths []int
	// HistBits is the global history capacity (the paper keeps 630 bits).
	HistBits int
	// LocalEntries × LocalBits sizes the local history table (256 × 10).
	LocalEntries int
	LocalBits    int
	// GlobalTargetBits is how many low target bits each resolved indirect
	// branch shifts into global history (implementation choice documented
	// in DESIGN.md; 0 reproduces the paper-literal conditional-only GHIST).
	GlobalTargetBits int
	// ThetaInit seeds the per-bit training thresholds.
	ThetaInit int
	// IBTB is the target buffer geometry.
	IBTB ibtb.Config
	// UseHierarchicalIBTB replaces the monolithic 64-way IBTB with the
	// two-level structure of the paper's §6 future work (see
	// ibtb.Hierarchy); IBTBHierarchy supplies its geometry.
	UseHierarchicalIBTB bool
	IBTBHierarchy       ibtb.HierarchyConfig

	// The five optimizations of paper §3.6, individually switchable to
	// regenerate the Fig. 10 ablation.
	UseLocal         bool // sub-predictor 0 indexed by local history
	UseIntervals     bool // interval histories (false = GEHL lengths)
	UseTransfer      bool // non-linear transfer function on weights
	UseAdaptiveTheta bool // adaptive threshold training
	UseSelective     bool // train/predict only bits that differ in the set
}

// DefaultConfig returns the paper's BLBP configuration (§4.2, Table 2):
// eight sub-predictors (one local-history, seven interval-history), 12
// predicted bits with 4-bit weights, a 630-bit global history, 256 10-bit
// local histories, and a 64-set × 64-way IBTB with a 128-entry region array.
func DefaultConfig() Config {
	return Config{
		K:            12,
		BitOffset:    2,
		TableEntries: 1024,
		WeightBits:   4,
		Intervals: []Interval{
			{0, 13}, {1, 33}, {23, 49}, {44, 85}, {77, 149}, {159, 270}, {252, 630},
		},
		GEHLLengths:      []int{5, 11, 24, 52, 113, 245, 530},
		HistBits:         631,
		LocalEntries:     256,
		LocalBits:        10,
		GlobalTargetBits: 2,
		ThetaInit:        18,
		IBTB:             ibtb.DefaultConfig(),
		IBTBHierarchy:    ibtb.DefaultHierarchyConfig(),
		UseLocal:         true,
		UseIntervals:     true,
		UseTransfer:      true,
		UseAdaptiveTheta: true,
		UseSelective:     true,
	}
}

// WithAllOptimizations returns a copy of c with the five §3.6 optimizations
// set per the arguments, in the order the paper's Fig. 10 discusses them.
func (c Config) WithAllOptimizations(local, intervals, transfer, adaptive, selective bool) Config {
	c.UseLocal = local
	c.UseIntervals = intervals
	c.UseTransfer = transfer
	c.UseAdaptiveTheta = adaptive
	c.UseSelective = selective
	return c
}

// SubPredictors returns N, the number of weight tables (1 local + the
// interval tables).
func (c Config) SubPredictors() int { return 1 + len(c.Intervals) }

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.K <= 0 || c.K > 32 {
		return fmt.Errorf("core: K=%d out of range (1..32)", c.K)
	}
	if c.BitOffset < 0 || c.BitOffset+c.K > 64 {
		return fmt.Errorf("core: BitOffset=%d with K=%d exceeds 64-bit targets", c.BitOffset, c.K)
	}
	if c.TableEntries <= 0 {
		return fmt.Errorf("core: TableEntries must be positive")
	}
	if c.WeightBits < 2 || c.WeightBits > 8 {
		return fmt.Errorf("core: WeightBits=%d out of range (2..8)", c.WeightBits)
	}
	if len(c.Intervals) == 0 {
		return fmt.Errorf("core: no history intervals")
	}
	// The packed weight image sums one 16-bit lane per predicted bit across
	// all sub-predictors without inter-lane carry suppression; that is
	// overflow-free while SubPredictors() * 2*max|transfer| < 2^16, which the
	// WeightBits bound (|transfer| <= 127) reduces to a table-count cap.
	if c.SubPredictors() > 256 {
		return fmt.Errorf("core: %d sub-predictors exceed the packed-sum limit of 256", c.SubPredictors())
	}
	if len(c.GEHLLengths) != len(c.Intervals) {
		return fmt.Errorf("core: %d GEHL lengths but %d intervals; counts must match", len(c.GEHLLengths), len(c.Intervals))
	}
	for i, iv := range c.Intervals {
		if iv.Lo < 0 || iv.Hi < iv.Lo || iv.Hi >= c.HistBits {
			return fmt.Errorf("core: interval %d [%d,%d] outside history of %d bits", i, iv.Lo, iv.Hi, c.HistBits)
		}
	}
	for i, l := range c.GEHLLengths {
		if l <= 0 || l > c.HistBits {
			return fmt.Errorf("core: GEHL length %d (#%d) outside history of %d bits", l, i, c.HistBits)
		}
	}
	if c.LocalEntries <= 0 || c.LocalBits <= 0 || c.LocalBits > 63 {
		return fmt.Errorf("core: invalid local history geometry %d×%d", c.LocalEntries, c.LocalBits)
	}
	if c.GlobalTargetBits < 0 || c.GlobalTargetBits > 8 {
		return fmt.Errorf("core: GlobalTargetBits=%d out of range (0..8)", c.GlobalTargetBits)
	}
	if c.ThetaInit <= 0 {
		return fmt.Errorf("core: ThetaInit must be positive")
	}
	return nil
}
