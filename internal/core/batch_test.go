package core

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestPredictBatchMatchesSerial checks the lookahead contract: a
// PredictBatch over a window of sites is bit-identical — outputs, counters,
// pending Update state, and final fingerprint — to the serial Predict loop
// with no intervening training.
func TestPredictBatchMatchesSerial(t *testing.T) {
	for _, batchSize := range []int{1, 2, 7, 64} {
		serial, events := benchStream(4096)
		batched := New(DefaultConfig())
		for _, e := range events { // identical warmup
			if e.cond {
				batched.OnCond(e.pc, e.taken)
				continue
			}
			batched.Predict(e.pc)
			batched.Update(e.pc, e.target)
		}
		if serial.Fingerprint() != batched.Fingerprint() {
			t.Fatalf("warmup fingerprints differ before the experiment")
		}

		rng := rand.New(rand.NewSource(int64(batchSize)))
		pcs := make([]uint64, batchSize)
		gotT := make([]uint64, batchSize)
		gotOK := make([]bool, batchSize)
		for round := 0; round < 50; round++ {
			for i := range pcs {
				pcs[i] = 0x400000 + uint64(rng.Intn(8))*0x224
			}
			batched.PredictBatch(pcs, gotT, gotOK)
			for i, pc := range pcs {
				wantT, wantOK := serial.Predict(pc)
				if gotT[i] != wantT || gotOK[i] != wantOK {
					t.Fatalf("b=%d round=%d item=%d: batch (%#x,%v) != serial (%#x,%v)",
						batchSize, round, i, gotT[i], gotOK[i], wantT, wantOK)
				}
			}
			// The pending state left by the final item must serve the next
			// Update exactly as the serial path's would.
			last := pcs[batchSize-1]
			actual := 0x500000 + uint64(rng.Intn(1<<16))*4
			batched.Update(last, actual)
			serial.Update(last, actual)
			if serial.Fingerprint() != batched.Fingerprint() {
				t.Fatalf("b=%d round=%d: fingerprints diverged after batch+update", batchSize, round)
			}
		}
		if serial.Predictions() != batched.Predictions() {
			t.Fatalf("b=%d: prediction counters differ: %d vs %d", batchSize, serial.Predictions(), batched.Predictions())
		}
	}
}

// TestUpdateBatchMatchesSerial pins UpdateBatch to the serial training loop.
func TestUpdateBatchMatchesSerial(t *testing.T) {
	serial, events := benchStream(2048)
	batched := New(DefaultConfig())
	for _, e := range events {
		if e.cond {
			batched.OnCond(e.pc, e.taken)
			continue
		}
		batched.Predict(e.pc)
		batched.Update(e.pc, e.target)
	}
	pcs := []uint64{0x400000, 0x400224, 0x400000}
	actuals := []uint64{0x500040, 0x500080, 0x500040}
	batched.UpdateBatch(pcs, actuals)
	for i := range pcs {
		serial.Update(pcs[i], actuals[i])
	}
	if serial.Fingerprint() != batched.Fingerprint() {
		t.Fatalf("fingerprints diverged after UpdateBatch")
	}
}

// TestPackedImageMatchesWeights cross-checks the invariant the batched sums
// rely on: after arbitrary training, every packed 16-bit lane equals
// transfer(weight) + laneBias, and a serial prediction's yout equals the
// naive transferred-weight sum.
func TestPackedImageMatchesWeights(t *testing.T) {
	p, _ := benchStream(4096)
	wMin := -int(p.wMax)
	for i := range p.weights {
		row := i / p.cfg.K
		k := i % p.cfg.K
		want := uint64(p.transfer[int(p.weights[i])-wMin] + p.laneBias)
		word := p.pweights[row*p.wordsPerRow+k/lanesPerWord]
		got := word >> (uint(k%lanesPerWord) * laneBits) & laneMask
		if got != want {
			t.Fatalf("packed lane (row %d, bit %d) = %d, want %d (weight %d)", row, k, got, want, p.weights[i])
		}
	}
	// Padding lanes must stay at the bias so whole-word adds are exact.
	for r := 0; r < len(p.pweights)/p.wordsPerRow; r++ {
		for k := p.cfg.K; k < p.wordsPerRow*lanesPerWord; k++ {
			word := p.pweights[r*p.wordsPerRow+k/lanesPerWord]
			if got := word >> (uint(k%lanesPerWord) * laneBits) & laneMask; got != uint64(p.laneBias) {
				t.Fatalf("padding lane (row %d, lane %d) = %d, want bias %d", r, k, got, p.laneBias)
			}
		}
	}

	p.prepare(0x400000)
	p.sumRows()
	p.unpackYout(p.acc[:p.wordsPerRow])
	for k := 0; k < p.cfg.K; k++ {
		want := 0
		for _, base := range p.rowOff {
			want += p.transfer[int(p.weights[base+k])-wMin]
		}
		if p.yout[k] != want {
			t.Fatalf("yout[%d] = %d, want naive sum %d", k, p.yout[k], want)
		}
	}
}

// TestResetRestoresFreshState trains a predictor, Resets it, and requires
// its behavior and fingerprint to match a freshly constructed one over a
// new workload — the property slot recycling in internal/batch depends on.
func TestResetRestoresFreshState(t *testing.T) {
	recycled, _ := benchStream(4096)
	recycled.Reset()
	fresh := New(DefaultConfig())
	if recycled.Fingerprint() != fresh.Fingerprint() {
		t.Fatalf("fingerprints differ immediately after Reset")
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		if rng.Intn(4) != 0 {
			pc := 0x600000 + uint64(rng.Intn(64))*4
			taken := rng.Intn(3) != 0
			recycled.OnCond(pc, taken)
			fresh.OnCond(pc, taken)
			continue
		}
		pc := 0x700000 + uint64(rng.Intn(6))*0x40
		target := 0x800000 + uint64(rng.Intn(8))*8
		gt, gok := recycled.Predict(pc)
		wt, wok := fresh.Predict(pc)
		if gt != wt || gok != wok {
			t.Fatalf("event %d: recycled (%#x,%v) != fresh (%#x,%v)", i, gt, gok, wt, wok)
		}
		recycled.Update(pc, target)
		fresh.Update(pc, target)
	}
	if recycled.Fingerprint() != fresh.Fingerprint() {
		t.Fatalf("fingerprints diverged after identical post-Reset workload")
	}
}

// BenchmarkPredictBatch measures the lookahead batch at several widths,
// reporting per-prediction cost.
func BenchmarkPredictBatch(b *testing.B) {
	p, events := benchStream(4096)
	var sites []uint64
	for _, e := range events {
		if !e.cond {
			sites = append(sites, e.pc)
		}
	}
	for _, size := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("b%d", size), func(b *testing.B) {
			pcs := make([]uint64, size)
			outT := make([]uint64, size)
			outOK := make([]bool, size)
			for i := range pcs {
				pcs[i] = sites[i%len(sites)]
			}
			b.ResetTimer()
			for i := 0; i < b.N; i += size {
				p.PredictBatch(pcs, outT, outOK)
			}
		})
	}
}
