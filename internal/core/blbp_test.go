package core

import (
	"math/rand"
	"testing"

	"blbp/internal/trace"
)

func testConfig() Config {
	return DefaultConfig()
}

// runIndirect drives the predictor through a sequence of (conditional
// outcome, indirect target) pairs at fixed PCs and returns mispredictions in
// the final quarter.
func lateMispredicts(p *BLBP, targets []uint64, condOutcomes []bool) int {
	mis := 0
	start := len(targets) * 3 / 4
	for i, tgt := range targets {
		if condOutcomes != nil {
			p.OnCond(0xC04D, condOutcomes[i])
		}
		pred, ok := p.Predict(0x400100)
		if (!ok || pred != tgt) && i >= start {
			mis++
		}
		p.Update(0x400100, tgt)
	}
	return mis
}

func TestMonomorphicConverges(t *testing.T) {
	p := New(testConfig())
	targets := make([]uint64, 400)
	for i := range targets {
		targets[i] = 0x7000
	}
	if mis := lateMispredicts(p, targets, nil); mis != 0 {
		t.Errorf("%d late mispredicts on monomorphic branch, want 0", mis)
	}
}

func TestConditionCorrelatedTargets(t *testing.T) {
	// The target is determined by the most recent conditional outcome,
	// which BLBP records in its global history. The shortest interval
	// sub-predictor must learn this.
	p := New(testConfig())
	rng := rand.New(rand.NewSource(1))
	n := 4000
	targets := make([]uint64, n)
	conds := make([]bool, n)
	for i := range targets {
		conds[i] = rng.Intn(2) == 0
		if conds[i] {
			targets[i] = 0x1000
		} else {
			targets[i] = 0x2000
		}
	}
	mis := lateMispredicts(p, targets, conds)
	if mis > n/4/20 {
		t.Errorf("%d late mispredicts out of %d on condition-correlated branch, want <= %d", mis, n/4, n/4/20)
	}
}

func TestTargetSequencePattern(t *testing.T) {
	// A,B,C repeating: with target bits folded into global history the
	// pattern is fully determined by recent history.
	p := New(testConfig())
	seq := []uint64{0x1000, 0x2000, 0x3000}
	n := 3000
	targets := make([]uint64, n)
	for i := range targets {
		targets[i] = seq[i%len(seq)]
	}
	mis := lateMispredicts(p, targets, nil)
	if mis > 10 {
		t.Errorf("%d late mispredicts on repeating target sequence, want <= 10", mis)
	}
}

func TestLocalHistoryPattern(t *testing.T) {
	// Alternating two targets that differ in bit 3, so local history
	// (which records bit 3) captures the pattern even without conditional
	// history between executions.
	p := New(testConfig())
	n := 2000
	targets := make([]uint64, n)
	for i := range targets {
		if i%2 == 0 {
			targets[i] = 0x1008 // bit 3 set
		} else {
			targets[i] = 0x1010
		}
	}
	mis := lateMispredicts(p, targets, nil)
	if mis > 10 {
		t.Errorf("%d late mispredicts on alternating targets, want <= 10", mis)
	}
}

func TestIBTBMissOnFirstSight(t *testing.T) {
	p := New(testConfig())
	if _, ok := p.Predict(0x500); ok {
		t.Error("prediction available before any target was observed")
	}
	p.Update(0x500, 0x9000)
	pred, ok := p.Predict(0x500)
	if !ok || pred != 0x9000 {
		t.Errorf("Predict after one observation = %#x/%v, want 0x9000/true", pred, ok)
	}
	if p.IBTBMissRate() <= 0 || p.IBTBMissRate() >= 1 {
		t.Errorf("IBTBMissRate = %v, want in (0,1)", p.IBTBMissRate())
	}
}

func TestSelectiveTrainingSuppressesSharedBits(t *testing.T) {
	// A branch alternating between two targets that differ in exactly one
	// predicted bit: with selective training only that bit trains once
	// both targets are known; without it all K bits train.
	run := func(selective bool) int64 {
		cfg := testConfig()
		cfg.UseSelective = selective
		p := New(cfg)
		for i := 0; i < 200; i++ {
			p.Predict(0x600)
			if i%2 == 0 {
				p.Update(0x600, 0x4440)
			} else {
				p.Update(0x600, 0x4450) // differs only in bit 4
			}
		}
		return p.TrainEvents()
	}
	on, off := run(true), run(false)
	// The adaptive threshold silences confident bits in both modes, so the
	// absolute counts are small either way; selective must still strictly
	// reduce training volume by skipping the eleven shared bits.
	if on >= off {
		t.Errorf("selective on should train fewer bits: on=%d off=%d", on, off)
	}
}

func TestWeightsStayInRange(t *testing.T) {
	p := New(testConfig())
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		p.OnCond(uint64(rng.Intn(8)), rng.Intn(2) == 0)
		pc := uint64(0x100 + rng.Intn(4)*64)
		tgt := uint64(0x1000 << uint(rng.Intn(3)))
		p.Predict(pc)
		p.Update(pc, tgt)
	}
	for j, w := range p.weights {
		if w < -p.wMax || w > p.wMax {
			t.Fatalf("weight[%d] = %d outside ±%d", j, w, p.wMax)
		}
	}
}

func TestAllAblationConfigsRun(t *testing.T) {
	flags := []bool{false, true}
	rng := rand.New(rand.NewSource(9))
	for _, local := range flags {
		for _, intervals := range flags {
			for _, transfer := range flags {
				for _, adaptive := range flags {
					for _, selective := range flags {
						cfg := testConfig().WithAllOptimizations(local, intervals, transfer, adaptive, selective)
						p := New(cfg)
						for i := 0; i < 200; i++ {
							p.OnCond(0xC, rng.Intn(2) == 0)
							pc := uint64(0x100)
							p.Predict(pc)
							p.Update(pc, uint64(0x1000+rng.Intn(4)*0x100))
						}
					}
				}
			}
		}
	}
}

func TestGEHLFallbackLearns(t *testing.T) {
	cfg := testConfig()
	cfg.UseIntervals = false
	p := New(cfg)
	// Note: the two targets must hash to different low history bits for the
	// pattern to be visible in global history at all (0x1000 and 0x2000
	// happen to collide in the 2 inserted bits).
	seq := []uint64{0x1000, 0x3000}
	targets := make([]uint64, 2000)
	for i := range targets {
		targets[i] = seq[i%2]
	}
	mis := lateMispredicts(p, targets, nil)
	if mis > 10 {
		t.Errorf("GEHL-only config: %d late mispredicts on alternating targets, want <= 10", mis)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []uint64 {
		p := New(testConfig())
		rng := rand.New(rand.NewSource(13))
		out := make([]uint64, 0, 500)
		for i := 0; i < 500; i++ {
			p.OnCond(0xCC, rng.Intn(2) == 0)
			pc := uint64(0x100 + rng.Intn(3)*0x40)
			pred, ok := p.Predict(pc)
			if !ok {
				pred = ^uint64(0)
			}
			out = append(out, pred)
			p.Update(pc, uint64(0x1000*(1+rng.Intn(4))))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("prediction %d differs between identical runs", i)
		}
	}
}

func TestUpdateWithoutPredictIsSafe(t *testing.T) {
	p := New(testConfig())
	// Out-of-contract use must not panic and must still learn.
	for i := 0; i < 50; i++ {
		p.Update(0x900, 0x1234000)
	}
	pred, ok := p.Predict(0x900)
	if !ok || pred != 0x1234000 {
		t.Errorf("Predict = %#x/%v, want 0x1234000/true", pred, ok)
	}
}

func TestStorageBudgetNearPaper(t *testing.T) {
	p := New(DefaultConfig())
	kb := float64(p.StorageBits()) / 8192
	// Paper reports 64.08 KB for prediction tables + histories + IBTB +
	// region array. Our M=1024 rows land close; require the same ballpark.
	if kb < 50 || kb > 80 {
		t.Errorf("storage = %.2f KB, want ~64 KB ballpark (50-80)", kb)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(Config) Config{
		func(c Config) Config { c.K = 0; return c },
		func(c Config) Config { c.K = 40; return c },
		func(c Config) Config { c.BitOffset = 60; return c },
		func(c Config) Config { c.TableEntries = 0; return c },
		func(c Config) Config { c.WeightBits = 1; return c },
		func(c Config) Config { c.Intervals = nil; return c },
		func(c Config) Config { c.GEHLLengths = c.GEHLLengths[:3]; return c },
		func(c Config) Config { c.Intervals[0].Hi = 9999; return c },
		func(c Config) Config { c.GEHLLengths[0] = 0; return c },
		func(c Config) Config { c.LocalEntries = 0; return c },
		func(c Config) Config { c.GlobalTargetBits = -1; return c },
		func(c Config) Config { c.ThetaInit = 0; return c },
	}
	for i, mutate := range bad {
		cfg := mutate(DefaultConfig())
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: Validate accepted invalid config", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("DefaultConfig invalid: %v", err)
	}
}

func TestNamePinnedAndOnOtherIgnored(t *testing.T) {
	p := New(testConfig())
	if p.Name() != "blbp" {
		t.Errorf("Name = %q, want blbp", p.Name())
	}
	p.OnOther(0x1, 0x2, trace.Return) // must not panic or disturb state
	p.Update(0x10, 0x5000)
	if pred, ok := p.Predict(0x10); !ok || pred != 0x5000 {
		t.Error("state disturbed by OnOther")
	}
}

func TestManyTargetsStillSelects(t *testing.T) {
	// A branch with many targets where the choice rotates: BLBP must keep
	// all of them in the IBTB set and select among them without error.
	p := New(testConfig())
	const nTargets = 32
	targets := make([]uint64, 6000)
	for i := range targets {
		targets[i] = uint64(0x1000 + (i%nTargets)*0x40)
	}
	mis := lateMispredicts(p, targets, nil)
	// Rotation through 32 targets is determined by history; expect strong
	// but not perfect learning.
	if mis > len(targets)/4/2 {
		t.Errorf("%d late mispredicts on 32-target rotation (out of %d), want <= half", mis, len(targets)/4)
	}
}

func TestTransferFunctionShapes(t *testing.T) {
	on := buildTransferTable(4, true)
	off := buildTransferTable(4, false)
	if len(on) != 15 || len(off) != 15 {
		t.Fatalf("table lengths = %d, %d; want 15 (range -7..7)", len(on), len(off))
	}
	// Identity when disabled.
	for w := -7; w <= 7; w++ {
		if off[w+7] != w {
			t.Errorf("off-table[%d] = %d, want identity", w, off[w+7])
		}
	}
	// Odd symmetry and convexity when enabled.
	for w := 0; w <= 7; w++ {
		if on[7+w] != -on[7-w] {
			t.Errorf("transfer not odd-symmetric at %d", w)
		}
	}
	for w := 1; w <= 7; w++ {
		if on[7+w] <= on[7+w-1] {
			t.Errorf("transfer not strictly increasing at magnitude %d", w)
		}
	}
	// Convex: second differences non-negative.
	for w := 2; w <= 7; w++ {
		d1 := on[7+w] - on[7+w-1]
		d0 := on[7+w-1] - on[7+w-2]
		if d1 < d0 {
			t.Errorf("transfer not convex at magnitude %d", w)
		}
	}
}

func TestHierarchicalIBTBConverges(t *testing.T) {
	cfg := testConfig()
	cfg.UseHierarchicalIBTB = true
	p := New(cfg)
	// Targets must be distinct within BLBP's K-bit prediction window
	// (bits 2..13): 0x5000-style values alias with 0x1000 there.
	seq := []uint64{0x1000, 0x2000, 0x3000}
	targets := make([]uint64, 3000)
	for i := range targets {
		targets[i] = seq[i%len(seq)]
	}
	mis := lateMispredicts(p, targets, nil)
	if mis > 10 {
		t.Errorf("%d late mispredicts with hierarchical IBTB, want <= 10", mis)
	}
	if p.L2ProbeRate() <= 0 {
		t.Error("hierarchical predictor never probed L2")
	}
	// The monolithic configuration reports no L2 activity.
	if New(testConfig()).L2ProbeRate() != 0 {
		t.Error("monolithic predictor reports L2 probes")
	}
}

func TestCandidateHistogram(t *testing.T) {
	p := New(testConfig())
	// One cold prediction (0 candidates), then predictions with exactly 1.
	p.Predict(0x500)
	p.Update(0x500, 0x9000)
	for i := 0; i < 5; i++ {
		p.Predict(0x500)
		p.Update(0x500, 0x9000)
	}
	h := p.CandidateHistogram()
	if h[0] != 1 {
		t.Errorf("hist[0] = %d, want 1 (the cold prediction)", h[0])
	}
	if h[1] != 5 {
		t.Errorf("hist[1] = %d, want 5", h[1])
	}
	var total int64
	for _, v := range h {
		total += v
	}
	if total != 6 {
		t.Errorf("histogram total = %d, want 6", total)
	}
	// Accessor must copy.
	h[0] = 999
	if p.CandidateHistogram()[0] == 999 {
		t.Error("CandidateHistogram exposes internal state")
	}
}

func TestPredictionAlwaysAmongObservedTargets(t *testing.T) {
	// Invariant: BLBP's prediction is always one of the targets previously
	// observed for that branch (it selects from the IBTB candidate set; it
	// never fabricates an address).
	p := New(testConfig())
	rng := rand.New(rand.NewSource(21))
	observed := map[uint64]map[uint64]bool{}
	for i := 0; i < 20000; i++ {
		pc := uint64(0x100 + rng.Intn(6)*0x40)
		if rng.Intn(4) == 0 {
			p.OnCond(0xC04D, rng.Intn(2) == 0)
			continue
		}
		pred, ok := p.Predict(pc)
		if ok && !observed[pc][pred] {
			t.Fatalf("step %d: predicted %#x for pc %#x, never observed (%v)",
				i, pred, pc, observed[pc])
		}
		tgt := uint64(0x1000 + rng.Intn(8)*0x48)
		if observed[pc] == nil {
			observed[pc] = map[uint64]bool{}
		}
		observed[pc][tgt] = true
		p.Update(pc, tgt)
	}
}

func TestSuppressedBitsNeverTrainProperty(t *testing.T) {
	// With UseSelective on and a two-target set differing in exactly one
	// predicted bit, weights for every other bit must stay untouched after
	// both targets are known.
	cfg := testConfig()
	p := New(cfg)
	// Establish both targets first.
	p.Update(0x600, 0x4440)
	p.Update(0x600, 0x4450)
	// Snapshot weights.
	snap := append([]int8(nil), p.weights...)
	for i := 0; i < 500; i++ {
		p.Predict(0x600)
		if i%2 == 0 {
			p.Update(0x600, 0x4440)
		} else {
			p.Update(0x600, 0x4450)
		}
	}
	// Bit 4 - BitOffset = index 2 is the only differing bit; all other
	// bit columns of the touched rows must be unchanged.
	// The flat layout keeps each row's K bit columns contiguous, so the
	// column of flat index j is j % K.
	diffBit := 2
	changedOther := 0
	for j, w := range p.weights {
		if w != snap[j] && j%cfg.K != diffBit {
			changedOther++
		}
	}
	if changedOther != 0 {
		t.Errorf("%d weights outside the differing bit column changed", changedOther)
	}
}
