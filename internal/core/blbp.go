package core

import (
	mathbits "math/bits"

	"blbp/internal/hashing"
	"blbp/internal/history"
	"blbp/internal/ibtb"
	"blbp/internal/threshold"
	"blbp/internal/trace"
)

// BLBP is the bit-level perceptron indirect branch predictor.
//
// It satisfies predictor.Indirect: the engine calls Predict(pc) followed
// immediately by Update(pc, actual) for every indirect branch, OnCond for
// conditional outcomes, and OnOther for remaining control transfers.
type BLBP struct {
	cfg Config

	// weights holds every sub-predictor table flattened into one contiguous
	// array: sub-predictor i's row r spans
	// weights[i*tableStride+r*K : i*tableStride+r*K+K], one weight per
	// predicted target bit. The flat layout keeps the whole prediction
	// working set in one allocation and lets Predict and Update share
	// precomputed absolute row offsets.
	weights     []int8
	tableStride int // TableEntries * K
	wMax        int8

	transfer []int // transfer-function lookup, indexed by weight - wMin

	// tweights caches transfer[weight-wMin] for every weight, maintained at
	// weight-write time. Prediction sums all SubPredictors()*K transferred
	// weights on every call, while training changes only the few gated by
	// the adaptive thresholds — moving the table lookup to the write side
	// keeps the per-prediction inner loop to a load and an add.
	tweights []int8

	buffer     ibtb.Buffer
	ghist      *history.FoldedSet
	ghistFolds []history.FoldID // one registered fold per interval table
	local      *history.Local
	thetas     []*threshold.Adaptive

	// Prediction-time state cached for the matching Update call.
	lastPC        uint64
	lastOK        bool
	rowOff        []int   // absolute weight offset of each sub-predictor's active row
	yout          [64]int // per-bit summed confidence (first K entries live)
	suppressMask  uint64  // bit k set = selective training suppresses bit k
	kMask         uint64  // low K bits
	hadCandidates bool

	candBuf  []uint64
	candBits []uint64 // candidate targets pre-shifted by BitOffset

	// Diagnostics.
	predictions int64
	ibtbMisses  int64
	trainEvents int64
	candHist    []int64 // histogram of candidate-set sizes at prediction
}

// New constructs a BLBP predictor from cfg, panicking on invalid
// configurations (they are programming errors in this codebase; use
// cfg.Validate to check dynamic configurations first).
func New(cfg Config) *BLBP {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.SubPredictors()
	stride := cfg.TableEntries * cfg.K
	maxW := int8(1<<uint(cfg.WeightBits-1) - 1)
	thetas := make([]*threshold.Adaptive, cfg.K)
	maxYout := n * 18 // transfer function tops out at 18 per table
	for k := range thetas {
		thetas[k] = threshold.New(cfg.ThetaInit, 16, 1, maxYout)
	}
	var buffer ibtb.Buffer
	var candCap int
	if cfg.UseHierarchicalIBTB {
		buffer = ibtb.NewHierarchy(cfg.IBTBHierarchy)
		candCap = cfg.IBTBHierarchy.L1.Assoc + cfg.IBTBHierarchy.L2.Assoc
	} else {
		buffer = ibtb.New(cfg.IBTB)
		candCap = cfg.IBTB.Assoc
	}
	ghist := history.NewFoldedSet(cfg.HistBits)
	folds := make([]history.FoldID, len(cfg.Intervals))
	for i := range folds {
		lo, hi := cfg.interval(i)
		folds[i] = ghist.Register(lo, hi, 22)
	}
	return &BLBP{
		cfg:         cfg,
		weights:     make([]int8, n*stride),
		tweights:    make([]int8, n*stride), // transfer(0) == 0 for every table
		tableStride: stride,
		wMax:        maxW,
		transfer:    buildTransferTable(cfg.WeightBits, cfg.UseTransfer),
		buffer:      buffer,
		ghist:       ghist,
		ghistFolds:  folds,
		local:       history.NewLocal(cfg.LocalEntries, cfg.LocalBits),
		thetas:      thetas,
		rowOff:      make([]int, n),
		kMask:       uint64(1)<<uint(cfg.K) - 1,
		candBuf:     make([]uint64, 0, candCap),
		candBits:    make([]uint64, 0, candCap),
		candHist:    make([]int64, candCap+1),
	}
}

// interval returns the global-history interval indexing sub-predictor i+1
// under the configuration's UseIntervals setting.
func (c *Config) interval(i int) (lo, hi int) {
	if c.UseIntervals {
		return c.Intervals[i].Lo, c.Intervals[i].Hi
	}
	return 0, c.GEHLLengths[i] - 1
}

// Name implements predictor.Indirect.
func (p *BLBP) Name() string { return "blbp" }

// Config returns the configuration the predictor was built with.
func (p *BLBP) Config() Config { return p.cfg }

// computeRows fills p.rowOff with each sub-predictor's active-row weight
// offset for pc under the current history state. The history folds are read
// from the incrementally maintained FoldedSet instead of being recomputed
// from the raw history bits.
//
//blbp:hot
func (p *BLBP) computeRows(pc uint64) {
	pcH := hashing.Mix64(pc)
	if p.cfg.UseLocal {
		p.rowOff[0] = hashing.Index(hashing.Combine(pcH, p.local.Get(pc)), p.cfg.TableEntries) * p.cfg.K
	} else {
		p.rowOff[0] = hashing.Index(pcH, p.cfg.TableEntries) * p.cfg.K
	}
	for i, id := range p.ghistFolds {
		fold := p.ghist.Value(id)
		row := hashing.Index(hashing.Combine(pcH+uint64(i+1), fold), p.cfg.TableEntries)
		p.rowOff[i+1] = (i+1)*p.tableStride + row*p.cfg.K
	}
}

// computeYout aggregates the per-bit confidences across sub-predictors
// (Algorithm 1's inner loops). The transfer function is already applied in
// p.tweights, so each sub-predictor row contributes a load and an add per
// bit.
//
//blbp:hot
func (p *BLBP) computeYout() {
	yout := p.yout[:p.cfg.K]
	for k := range yout {
		yout[k] = 0
	}
	for _, base := range p.rowOff {
		row := p.tweights[base : base+len(yout)]
		for k, w := range row {
			yout[k] += int(w)
		}
	}
}

// computeSuppress fills the selective-training mask: bit k is suppressed
// when every candidate agrees on it (paper §3.6, "Selective Bit Training").
// The mask only applies once the branch has at least two known targets:
// suppressing a singleton set entirely would leave the weights blank for
// the moment the branch turns polymorphic. candBits are the candidates
// already shifted down by BitOffset.
//
//blbp:hot
func (p *BLBP) computeSuppress(candBits []uint64) {
	if !p.cfg.UseSelective || len(candBits) < 2 {
		p.suppressMask = 0
		return
	}
	first := candBits[0]
	var differ uint64
	for _, c := range candBits[1:] {
		differ |= c ^ first
	}
	p.suppressMask = ^differ & p.kMask
}

// similarity computes the non-normalized cosine similarity between yout and
// a candidate target's pre-shifted bit vector: the sum of yout[k] over
// unsuppressed bits that are 1 in the candidate (paper §3.7). The suppress
// and K masks are applied once up front so the loop visits only the set
// candidate bits.
//
//blbp:hot
func (p *BLBP) similarity(candBits uint64) int {
	sum := 0
	for m := candBits &^ p.suppressMask & p.kMask; m != 0; m &= m - 1 {
		sum += p.yout[mathbits.TrailingZeros64(m)&63]
	}
	return sum
}

// prepare computes the per-prediction state shared by Predict and Update's
// out-of-contract recompute path — candidate targets with their pre-shifted
// bit vectors, active row offsets, yout, and the suppress mask — so the two
// can never drift. It returns the candidate set.
//
//blbp:hot
func (p *BLBP) prepare(pc uint64) []uint64 {
	candidates := p.buffer.Candidates(pc, p.candBuf[:0])
	p.candBuf = candidates[:0]
	bits := p.candBits[:0]
	for _, c := range candidates {
		bits = append(bits, c>>uint(p.cfg.BitOffset))
	}
	p.candBits = bits
	p.computeRows(pc)
	p.computeYout()
	p.computeSuppress(bits)
	p.hadCandidates = len(candidates) > 0
	return candidates
}

// Predict implements predictor.Indirect: Algorithm 1 of the paper.
//
//blbp:hot
func (p *BLBP) Predict(pc uint64) (uint64, bool) {
	p.predictions++
	candidates := p.prepare(pc)
	if n := len(candidates); n < len(p.candHist) {
		p.candHist[n]++
	} else {
		p.candHist[len(p.candHist)-1]++
	}
	p.lastPC, p.lastOK = pc, true
	if len(candidates) == 0 {
		p.ibtbMisses++
		return 0, false
	}
	best := candidates[0]
	bestSum := p.similarity(p.candBits[0])
	for i, c := range candidates[1:] {
		if s := p.similarity(p.candBits[i+1]); s > bestSum {
			best, bestSum = c, s
		}
	}
	return best, true
}

// Update implements predictor.Indirect: Algorithm 2 of the paper. It stores
// the resolved target in the IBTB and trains each unsuppressed bit's
// perceptron weights toward the actual target's bits, gated by the per-bit
// adaptive thresholds.
//
//blbp:hot
func (p *BLBP) Update(pc, actual uint64) {
	if !p.lastOK || p.lastPC != pc {
		// Out-of-contract call (tests, replay): recompute prediction state
		// through the exact code path Predict uses.
		p.prepare(pc)
	}
	p.lastOK = false

	p.buffer.Insert(pc, actual)

	bits := actual >> uint(p.cfg.BitOffset)
	for m := ^p.suppressMask & p.kMask; m != 0; m &= m - 1 {
		k := mathbits.TrailingZeros64(m) & 63
		bit := bits>>uint(k)&1 == 1
		y := p.yout[k]
		a := y
		if a < 0 {
			a = -a
		}
		correct := (y >= 0) == bit
		th := p.cfg.ThetaInit
		if p.cfg.UseAdaptiveTheta {
			th = p.thetas[k].Theta()
			p.thetas[k].Observe(!correct, correct && a < th)
		}
		if correct && a >= th {
			continue
		}
		p.trainEvents++
		wMin := int(-p.wMax)
		if bit {
			for _, base := range p.rowOff {
				if w := p.weights[base+k]; w < p.wMax {
					p.weights[base+k] = w + 1
					p.tweights[base+k] = int8(p.transfer[int(w)+1-wMin])
				}
			}
		} else {
			for _, base := range p.rowOff {
				if w := p.weights[base+k]; w > -p.wMax {
					p.weights[base+k] = w - 1
					p.tweights[base+k] = int8(p.transfer[int(w)-1-wMin])
				}
			}
		}
	}

	p.local.Update(pc, actual>>3&1 == 1)
	if p.cfg.GlobalTargetBits > 0 {
		// Shift a hash of the target rather than its raw low bits so that
		// targets differing anywhere in the address (not just in bits the
		// alignment keeps zero) perturb the history.
		p.ghist.ShiftBits(hashing.Mix64(actual), p.cfg.GlobalTargetBits)
	}
}

// OnCond implements predictor.Indirect: conditional outcomes feed the
// 630-bit global history (paper §3.3).
//
//blbp:hot
func (p *BLBP) OnCond(pc uint64, taken bool) {
	p.ghist.Shift(taken)
	p.lastOK = false
}

// OnOther implements predictor.Indirect. BLBP's histories are built from
// conditional outcomes and indirect targets only, so other transfers are
// ignored.
func (p *BLBP) OnOther(pc, target uint64, bt trace.BranchType) {}

// IBTBMissRate returns the fraction of predictions with no stored targets.
func (p *BLBP) IBTBMissRate() float64 {
	if p.predictions == 0 {
		return 0
	}
	return float64(p.ibtbMisses) / float64(p.predictions)
}

// TrainEvents returns how many per-bit weight-vector updates have occurred.
func (p *BLBP) TrainEvents() int64 { return p.trainEvents }

// CandidateHistogram returns the distribution of candidate-set sizes seen
// at prediction time (index = number of candidates, final bucket clamps).
// It feeds the §3.7 latency analysis: with 5 cosine similarities computed
// per cycle, a prediction over n candidates takes ceil(n/5) cycles.
func (p *BLBP) CandidateHistogram() []int64 {
	out := make([]int64, len(p.candHist))
	copy(out, p.candHist)
	return out
}

// L2ProbeRate returns, for a hierarchical IBTB, the fraction of lookups
// that needed the second level (0 for the monolithic buffer).
func (p *BLBP) L2ProbeRate() float64 {
	if h, ok := p.buffer.(*ibtb.Hierarchy); ok {
		return h.L2ProbeRate()
	}
	return 0
}

// StorageBits implements predictor.Indirect: the weight tables, IBTB (with
// its region array), global and local histories, and per-bit threshold
// state.
func (p *BLBP) StorageBits() int {
	bits := p.cfg.SubPredictors() * p.cfg.TableEntries * p.cfg.K * p.cfg.WeightBits
	bits += p.buffer.StorageBits()
	bits += p.cfg.HistBits
	bits += p.cfg.LocalEntries * p.cfg.LocalBits
	bits += p.cfg.K * 16 // adaptive threshold + counter per bit
	return bits
}
