package core

import (
	"blbp/internal/hashing"
	"blbp/internal/history"
	"blbp/internal/ibtb"
	"blbp/internal/threshold"
	"blbp/internal/trace"
)

// BLBP is the bit-level perceptron indirect branch predictor.
//
// It satisfies predictor.Indirect: the engine calls Predict(pc) followed
// immediately by Update(pc, actual) for every indirect branch, OnCond for
// conditional outcomes, and OnOther for remaining control transfers.
type BLBP struct {
	cfg Config

	// weights[i] is sub-predictor i's table, laid out row-major:
	// weights[i][row*K+k] is the weight for target bit k.
	weights [][]int8
	wMax    int8

	transfer []int // transfer-function lookup, indexed by weight - wMin

	buffer ibtb.Buffer
	ghist  *history.Global
	local  *history.Local
	thetas []*threshold.Adaptive

	// Prediction-time state cached for the matching Update call.
	lastPC        uint64
	lastOK        bool
	rows          []int  // row index per sub-predictor
	yout          []int  // per-bit summed confidence
	suppress      []bool // per-bit selective-training mask
	hadCandidates bool

	candBuf []uint64

	// Diagnostics.
	predictions int64
	ibtbMisses  int64
	trainEvents int64
	candHist    []int64 // histogram of candidate-set sizes at prediction
}

// New constructs a BLBP predictor from cfg, panicking on invalid
// configurations (they are programming errors in this codebase; use
// cfg.Validate to check dynamic configurations first).
func New(cfg Config) *BLBP {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.SubPredictors()
	weights := make([][]int8, n)
	for i := range weights {
		weights[i] = make([]int8, cfg.TableEntries*cfg.K)
	}
	maxW := int8(1<<uint(cfg.WeightBits-1) - 1)
	thetas := make([]*threshold.Adaptive, cfg.K)
	maxYout := n * 18 // transfer function tops out at 18 per table
	for k := range thetas {
		thetas[k] = threshold.New(cfg.ThetaInit, 16, 1, maxYout)
	}
	var buffer ibtb.Buffer
	var candCap int
	if cfg.UseHierarchicalIBTB {
		buffer = ibtb.NewHierarchy(cfg.IBTBHierarchy)
		candCap = cfg.IBTBHierarchy.L1.Assoc + cfg.IBTBHierarchy.L2.Assoc
	} else {
		buffer = ibtb.New(cfg.IBTB)
		candCap = cfg.IBTB.Assoc
	}
	return &BLBP{
		cfg:      cfg,
		weights:  weights,
		wMax:     maxW,
		transfer: buildTransferTable(cfg.WeightBits, cfg.UseTransfer),
		buffer:   buffer,
		ghist:    history.NewGlobal(cfg.HistBits),
		local:    history.NewLocal(cfg.LocalEntries, cfg.LocalBits),
		thetas:   thetas,
		rows:     make([]int, n),
		yout:     make([]int, cfg.K),
		suppress: make([]bool, cfg.K),
		candBuf:  make([]uint64, 0, candCap),
		candHist: make([]int64, candCap+1),
	}
}

// Name implements predictor.Indirect.
func (p *BLBP) Name() string { return "blbp" }

// Config returns the configuration the predictor was built with.
func (p *BLBP) Config() Config { return p.cfg }

// computeRows fills p.rows with each sub-predictor's table row for pc under
// the current history state.
func (p *BLBP) computeRows(pc uint64) {
	pcH := hashing.Mix64(pc)
	if p.cfg.UseLocal {
		p.rows[0] = hashing.Index(hashing.Combine(pcH, p.local.Get(pc)), p.cfg.TableEntries)
	} else {
		p.rows[0] = hashing.Index(pcH, p.cfg.TableEntries)
	}
	for i := range p.cfg.Intervals {
		var lo, hi int
		if p.cfg.UseIntervals {
			lo, hi = p.cfg.Intervals[i].Lo, p.cfg.Intervals[i].Hi
		} else {
			lo, hi = 0, p.cfg.GEHLLengths[i]-1
		}
		fold := p.ghist.Fold(lo, hi, 22)
		p.rows[i+1] = hashing.Index(hashing.Combine(pcH+uint64(i+1), fold), p.cfg.TableEntries)
	}
}

// computeYout aggregates the per-bit confidences across sub-predictors
// (Algorithm 1's inner loops), applying the transfer function.
func (p *BLBP) computeYout() {
	wMin := int(-p.wMax)
	for k := range p.yout {
		p.yout[k] = 0
	}
	for i, table := range p.weights {
		base := p.rows[i] * p.cfg.K
		row := table[base : base+p.cfg.K]
		for k, w := range row {
			p.yout[k] += p.transfer[int(w)-wMin]
		}
	}
}

// computeSuppress fills the selective-training mask: bit k is suppressed
// when every candidate agrees on it (paper §3.6, "Selective Bit Training").
// The mask only applies once the branch has at least two known targets:
// suppressing a singleton set entirely would leave the weights blank for
// the moment the branch turns polymorphic.
func (p *BLBP) computeSuppress(candidates []uint64) {
	if !p.cfg.UseSelective || len(candidates) < 2 {
		for k := range p.suppress {
			p.suppress[k] = false
		}
		return
	}
	first := candidates[0] >> uint(p.cfg.BitOffset)
	var differ uint64
	for _, c := range candidates[1:] {
		differ |= (c >> uint(p.cfg.BitOffset)) ^ first
	}
	for k := range p.suppress {
		p.suppress[k] = differ>>uint(k)&1 == 0
	}
}

// similarity computes the non-normalized cosine similarity between yout and
// a candidate target's bit vector: the sum of yout[k] over unsuppressed bits
// that are 1 in the candidate (paper §3.7).
func (p *BLBP) similarity(target uint64) int {
	bits := target >> uint(p.cfg.BitOffset)
	sum := 0
	for k := 0; k < p.cfg.K; k++ {
		if p.suppress[k] && p.cfg.UseSelective {
			continue
		}
		if bits>>uint(k)&1 == 1 {
			sum += p.yout[k]
		}
	}
	return sum
}

// Predict implements predictor.Indirect: Algorithm 1 of the paper.
func (p *BLBP) Predict(pc uint64) (uint64, bool) {
	p.predictions++
	candidates := p.buffer.Candidates(pc, p.candBuf[:0])
	p.candBuf = candidates[:0]
	if n := len(candidates); n < len(p.candHist) {
		p.candHist[n]++
	} else {
		p.candHist[len(p.candHist)-1]++
	}
	p.computeRows(pc)
	p.computeYout()
	p.computeSuppress(candidates)
	p.lastPC, p.lastOK = pc, true
	p.hadCandidates = len(candidates) > 0
	if len(candidates) == 0 {
		p.ibtbMisses++
		return 0, false
	}
	best := candidates[0]
	bestSum := p.similarity(candidates[0])
	for _, c := range candidates[1:] {
		if s := p.similarity(c); s > bestSum {
			best, bestSum = c, s
		}
	}
	return best, true
}

// Update implements predictor.Indirect: Algorithm 2 of the paper. It stores
// the resolved target in the IBTB and trains each unsuppressed bit's
// perceptron weights toward the actual target's bits, gated by the per-bit
// adaptive thresholds.
func (p *BLBP) Update(pc, actual uint64) {
	if !p.lastOK || p.lastPC != pc {
		// Out-of-contract call (tests, replay): recompute prediction state.
		candidates := p.buffer.Candidates(pc, p.candBuf[:0])
		p.candBuf = candidates[:0]
		p.computeRows(pc)
		p.computeYout()
		p.computeSuppress(candidates)
		p.hadCandidates = len(candidates) > 0
	}
	p.lastOK = false

	p.buffer.Insert(pc, actual)

	bits := actual >> uint(p.cfg.BitOffset)
	for k := 0; k < p.cfg.K; k++ {
		if p.suppress[k] && p.cfg.UseSelective {
			continue
		}
		bit := bits>>uint(k)&1 == 1
		y := p.yout[k]
		a := y
		if a < 0 {
			a = -a
		}
		correct := (y >= 0) == bit
		th := p.cfg.ThetaInit
		if p.cfg.UseAdaptiveTheta {
			th = p.thetas[k].Theta()
			p.thetas[k].Observe(!correct, correct && a < th)
		}
		if correct && a >= th {
			continue
		}
		p.trainEvents++
		for i, table := range p.weights {
			idx := p.rows[i]*p.cfg.K + k
			w := table[idx]
			if bit {
				if w < p.wMax {
					table[idx] = w + 1
				}
			} else {
				if w > -p.wMax {
					table[idx] = w - 1
				}
			}
		}
	}

	p.local.Update(pc, actual>>3&1 == 1)
	if p.cfg.GlobalTargetBits > 0 {
		// Shift a hash of the target rather than its raw low bits so that
		// targets differing anywhere in the address (not just in bits the
		// alignment keeps zero) perturb the history.
		p.ghist.ShiftBits(hashing.Mix64(actual), p.cfg.GlobalTargetBits)
	}
}

// OnCond implements predictor.Indirect: conditional outcomes feed the
// 630-bit global history (paper §3.3).
func (p *BLBP) OnCond(pc uint64, taken bool) {
	p.ghist.Shift(taken)
	p.lastOK = false
}

// OnOther implements predictor.Indirect. BLBP's histories are built from
// conditional outcomes and indirect targets only, so other transfers are
// ignored.
func (p *BLBP) OnOther(pc, target uint64, bt trace.BranchType) {}

// IBTBMissRate returns the fraction of predictions with no stored targets.
func (p *BLBP) IBTBMissRate() float64 {
	if p.predictions == 0 {
		return 0
	}
	return float64(p.ibtbMisses) / float64(p.predictions)
}

// TrainEvents returns how many per-bit weight-vector updates have occurred.
func (p *BLBP) TrainEvents() int64 { return p.trainEvents }

// CandidateHistogram returns the distribution of candidate-set sizes seen
// at prediction time (index = number of candidates, final bucket clamps).
// It feeds the §3.7 latency analysis: with 5 cosine similarities computed
// per cycle, a prediction over n candidates takes ceil(n/5) cycles.
func (p *BLBP) CandidateHistogram() []int64 {
	out := make([]int64, len(p.candHist))
	copy(out, p.candHist)
	return out
}

// L2ProbeRate returns, for a hierarchical IBTB, the fraction of lookups
// that needed the second level (0 for the monolithic buffer).
func (p *BLBP) L2ProbeRate() float64 {
	if h, ok := p.buffer.(*ibtb.Hierarchy); ok {
		return h.L2ProbeRate()
	}
	return 0
}

// StorageBits implements predictor.Indirect: the weight tables, IBTB (with
// its region array), global and local histories, and per-bit threshold
// state.
func (p *BLBP) StorageBits() int {
	bits := p.cfg.SubPredictors() * p.cfg.TableEntries * p.cfg.K * p.cfg.WeightBits
	bits += p.buffer.StorageBits()
	bits += p.cfg.HistBits
	bits += p.cfg.LocalEntries * p.cfg.LocalBits
	bits += p.cfg.K * 16 // adaptive threshold + counter per bit
	return bits
}
