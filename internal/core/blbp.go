package core

import (
	mathbits "math/bits"

	"blbp/internal/hashing"
	"blbp/internal/history"
	"blbp/internal/ibtb"
	"blbp/internal/threshold"
	"blbp/internal/trace"
)

// Lane geometry of the packed (bit-sliced) weight image: each table row's K
// transferred weights live in 16-bit biased lanes, four per uint64, so the
// per-bit column sum across sub-predictors is a handful of word adds instead
// of K×N byte loads. 16-bit lanes keep the layout valid for every
// configuration Validate accepts: with at most 256 sub-predictors and
// transferred magnitudes at most 127, a column sum plus its bias never
// carries into the neighboring lane.
const (
	laneBits     = 16
	lanesPerWord = 64 / laneBits
	laneMask     = 1<<laneBits - 1
)

// BLBP is the bit-level perceptron indirect branch predictor.
//
// It satisfies predictor.Indirect: the engine calls Predict(pc) followed
// immediately by Update(pc, actual) for every indirect branch, OnCond for
// conditional outcomes, and OnOther for remaining control transfers.
type BLBP struct {
	cfg Config

	// weights holds every sub-predictor table flattened into one contiguous
	// array: sub-predictor i's row r spans
	// weights[i*tableStride+r*K : i*tableStride+r*K+K], one weight per
	// predicted target bit. The flat layout keeps the whole prediction
	// working set in one allocation and lets Predict and Update share
	// precomputed absolute row offsets.
	weights     []int8
	tableStride int // TableEntries * K
	wMax        int8

	// transfer is the transfer-function lookup, indexed by weight - wMin.
	// The bound is what lanebounds verifies the builder can produce and what
	// every packed-lane proof below rests on.
	//
	//blbp:bound(-127,127)
	transfer []int

	// pweights is the bit-sliced image of the transferred weights: row
	// (i*TableEntries + r) spans wordsPerRow uint64s whose 16-bit lanes hold
	// transfer(weight) + laneBias per predicted bit. It is maintained at
	// weight-write time, so the per-prediction column sum is wordsPerRow
	// word adds per sub-predictor (sumRows) instead of K byte loads — and a
	// whole batch of predictions can be summed in one sweep over the tables
	// (PredictBatch, internal/batch).
	//
	//blbp:lanes(table)
	pweights    []uint64
	wordsPerRow int // ceil(K / lanesPerWord)
	// laneBias is the max |transfer| value: it biases lanes non-negative.
	//
	//blbp:bound(0,127)
	laneBias int
	sumBias  int // SubPredictors() * laneBias, subtracted on unpack

	buffer     ibtb.Buffer
	ghist      *history.FoldedSet
	ghistFolds []history.FoldID // one registered fold per interval table
	local      *history.Local
	thetas     []*threshold.Adaptive

	// Prediction-time state cached for the matching Update call.
	lastPC uint64
	lastOK bool
	rowOff []int // absolute weight offset of each sub-predictor's active row
	// pRowOff holds the absolute pweights offset of the same rows, one per
	// sub-predictor: ranging over it is what bounds a lane accumulation.
	//
	//blbp:rows
	pRowOff []int
	//blbp:lanes(acc)
	acc           [8]uint64
	yout          [64]int // per-bit summed confidence (first K entries live)
	suppressMask  uint64  // bit k set = selective training suppresses bit k
	kMask         uint64  // low K bits
	hadCandidates bool

	candCap  int
	candBuf  []uint64
	candBits []uint64 // candidate targets pre-shifted by BitOffset

	// Lookahead-batch scratch, lazily sized by PredictBatch.
	batch *lookahead

	// Diagnostics.
	predictions int64
	ibtbMisses  int64
	trainEvents int64
	candHist    []int64 // histogram of candidate-set sizes at prediction
}

// New constructs a BLBP predictor from cfg, panicking on invalid
// configurations (they are programming errors in this codebase; use
// cfg.Validate to check dynamic configurations first).
func New(cfg Config) *BLBP {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	n := cfg.SubPredictors()
	stride := cfg.TableEntries * cfg.K
	maxW := int8(1<<uint(cfg.WeightBits-1) - 1)
	thetas := make([]*threshold.Adaptive, cfg.K)
	maxYout := n * 18 // transfer function tops out at 18 per table
	for k := range thetas {
		thetas[k] = threshold.New(cfg.ThetaInit, 16, 1, maxYout)
	}
	var buffer ibtb.Buffer
	var candCap int
	if cfg.UseHierarchicalIBTB {
		buffer = ibtb.NewHierarchy(cfg.IBTBHierarchy)
		candCap = cfg.IBTBHierarchy.L1.Assoc + cfg.IBTBHierarchy.L2.Assoc
	} else {
		buffer = ibtb.New(cfg.IBTB)
		candCap = cfg.IBTB.Assoc
	}
	ghist := history.NewFoldedSet(cfg.HistBits)
	folds := make([]history.FoldID, len(cfg.Intervals))
	for i := range folds {
		lo, hi := cfg.interval(i)
		folds[i] = ghist.Register(lo, hi, 22)
	}
	transfer := buildTransferTable(cfg.WeightBits, cfg.UseTransfer)
	bias := 0
	for _, v := range transfer {
		if v < 0 {
			v = -v
		}
		if v > bias {
			bias = v
		}
	}
	wpr := (cfg.K + lanesPerWord - 1) / lanesPerWord
	if n*2*bias >= 1<<laneBits {
		// Unreachable under Validate (SubPredictors <= 256, |transfer| <=
		// 127), kept as the packing invariant's executable statement.
		panic("core: packed column sums would overflow a lane")
	}
	p := &BLBP{
		cfg:         cfg,
		weights:     make([]int8, n*stride),
		pweights:    make([]uint64, n*cfg.TableEntries*wpr),
		wordsPerRow: wpr,
		laneBias:    bias,
		sumBias:     n * bias,
		tableStride: stride,
		wMax:        maxW,
		transfer:    transfer,
		buffer:      buffer,
		ghist:       ghist,
		ghistFolds:  folds,
		local:       history.NewLocal(cfg.LocalEntries, cfg.LocalBits),
		thetas:      thetas,
		rowOff:      make([]int, n),
		pRowOff:     make([]int, n),
		kMask:       uint64(1)<<uint(cfg.K) - 1,
		candCap:     candCap,
		candBuf:     make([]uint64, 0, candCap),
		candBits:    make([]uint64, 0, candCap),
		candHist:    make([]int64, candCap+1),
	}
	p.fillPackedBias()
	return p
}

// fillPackedBias writes the packed image of an all-zero weight table: every
// lane (including the padding lanes past K in a row's last word) holds
// transfer(0) + laneBias = laneBias.
func (p *BLBP) fillPackedBias() {
	w := uint64(p.laneBias)
	w |= w << laneBits
	w |= w << (2 * laneBits)
	for i := range p.pweights {
		p.pweights[i] = w
	}
}

// interval returns the global-history interval indexing sub-predictor i+1
// under the configuration's UseIntervals setting.
func (c *Config) interval(i int) (lo, hi int) {
	if c.UseIntervals {
		return c.Intervals[i].Lo, c.Intervals[i].Hi
	}
	return 0, c.GEHLLengths[i] - 1
}

// Name implements predictor.Indirect.
func (p *BLBP) Name() string { return "blbp" }

// Config returns the configuration the predictor was built with.
func (p *BLBP) Config() Config { return p.cfg }

// computeRows fills p.rowOff and p.pRowOff with each sub-predictor's
// active-row offsets for pc under the current history state. The history
// folds are read from the incrementally maintained FoldedSet instead of
// being recomputed from the raw history bits.
//
//blbp:hot
func (p *BLBP) computeRows(pc uint64) {
	pcH := hashing.Mix64(pc)
	var row int
	if p.cfg.UseLocal {
		row = hashing.Index(hashing.Combine(pcH, p.local.Get(pc)), p.cfg.TableEntries)
	} else {
		row = hashing.Index(pcH, p.cfg.TableEntries)
	}
	p.rowOff[0] = row * p.cfg.K
	p.pRowOff[0] = row * p.wordsPerRow
	for i, id := range p.ghistFolds {
		fold := p.ghist.Value(id)
		row = hashing.Index(hashing.Combine(pcH+uint64(i+1), fold), p.cfg.TableEntries)
		p.rowOff[i+1] = (i+1)*p.tableStride + row*p.cfg.K
		p.pRowOff[i+1] = ((i+1)*p.cfg.TableEntries + row) * p.wordsPerRow
	}
}

// sumRows aggregates the per-bit confidences across sub-predictors
// (Algorithm 1's inner loops) from the packed weight image: wordsPerRow
// lane-wise word adds per sub-predictor, then one unpack into p.yout.
//
// sumRows leaves the lane sums in p.acc; the per-bit integers of p.yout
// are not unpacked here — prediction selects candidates directly on the
// packed lanes (similarity), and only training needs yout, so Update
// unpacks on demand.
//
//blbp:hot
func (p *BLBP) sumRows() {
	wpr := p.wordsPerRow
	acc := p.acc[:wpr]
	for w := range acc {
		acc[w] = 0
	}
	for _, base := range p.pRowOff {
		row := p.pweights[base : base+wpr]
		for w, v := range row {
			acc[w] += v
		}
	}
}

// unpackYout expands packed lane sums into the per-bit integer confidences
// of p.yout, removing the accumulated lane bias.
//
//blbp:hot
func (p *BLBP) unpackYout(acc []uint64) {
	yout := p.yout[:p.cfg.K]
	for k := range yout {
		lane := int(acc[k/lanesPerWord] >> (uint(k%lanesPerWord) * laneBits) & laneMask)
		yout[k] = lane - p.sumBias
	}
}

// setLane mirrors a weight write into the packed image: lane k of packed row
// prow becomes tv (a transferred weight) plus the lane bias.
//
//blbp:hot
func (p *BLBP) setLane(prow, k, tv int) {
	i := prow + k/lanesPerWord
	sh := uint(k%lanesPerWord) * laneBits
	p.pweights[i] = p.pweights[i]&^(uint64(laneMask)<<sh) | uint64(tv+p.laneBias)<<sh
}

// computeSuppress fills the selective-training mask: bit k is suppressed
// when every candidate agrees on it (paper §3.6, "Selective Bit Training").
// The mask only applies once the branch has at least two known targets:
// suppressing a singleton set entirely would leave the weights blank for
// the moment the branch turns polymorphic. candBits are the candidates
// already shifted down by BitOffset.
//
//blbp:hot
func (p *BLBP) computeSuppress(candBits []uint64) {
	if !p.cfg.UseSelective || len(candBits) < 2 {
		p.suppressMask = 0
		return
	}
	first := candBits[0]
	var differ uint64
	for _, c := range candBits[1:] {
		differ |= c ^ first
	}
	p.suppressMask = ^differ & p.kMask
}

// laneSel expands a nibble of candidate bits into the 16-bit lane-select
// mask of one packed accumulator word: bit j set selects lanes [16j,16j+16).
var laneSel = [16]uint64{
	0x0000000000000000, 0x000000000000ffff, 0x00000000ffff0000, 0x00000000ffffffff,
	0x0000ffff00000000, 0x0000ffff0000ffff, 0x0000ffffffff0000, 0x0000ffffffffffff,
	0xffff000000000000, 0xffff00000000ffff, 0xffff0000ffff0000, 0xffff0000ffffffff,
	0xffffffff00000000, 0xffffffff0000ffff, 0xffffffffffff0000, 0xffffffffffffffff,
}

// similarity computes the non-normalized cosine similarity between yout and
// a candidate target's pre-shifted bit vector: the sum of yout[k] over
// unsuppressed bits that are 1 in the candidate (paper §3.7). It reads the
// packed lane sums of the current prediction (p.acc) instead of iterating
// set bits: masking selected lanes and summing them horizontally costs a
// handful of word ops per row word regardless of how many bits are set,
// and the biased-lane identity lane[k] = yout[k] + sumBias makes the
// result exact — subtract one sumBias per selected bit at the end.
//
//blbp:hot
func (p *BLBP) similarity(candBits uint64) int {
	m := candBits &^ p.suppressMask & p.kMask
	if p.wordsPerRow == 3 {
		// K in 9..12 — the paper configuration's row shape, unrolled.
		// Horizontal lane sums: 16-bit lanes pairwise into 32-bit fields
		// (each at most 2^17, no carry), then fold the halves.
		x0 := p.acc[0] & laneSel[m&15]
		x1 := p.acc[1] & laneSel[m>>4&15]
		x2 := p.acc[2] & laneSel[m>>8&15]
		t0 := x0&0x0000ffff0000ffff + x0>>laneBits&0x0000ffff0000ffff
		t1 := x1&0x0000ffff0000ffff + x1>>laneBits&0x0000ffff0000ffff
		t2 := x2&0x0000ffff0000ffff + x2>>laneBits&0x0000ffff0000ffff
		total := (t0+t0>>32)&0xffffffff + (t1+t1>>32)&0xffffffff + (t2+t2>>32)&0xffffffff
		return int(total) - mathbits.OnesCount64(m)*p.sumBias
	}
	var total uint64
	for w := 0; w < p.wordsPerRow; w++ {
		x := p.acc[w] & laneSel[m>>(uint(w)*lanesPerWord)&(1<<lanesPerWord-1)]
		t := x&0x0000ffff0000ffff + x>>laneBits&0x0000ffff0000ffff
		total += (t + t>>32) & 0xffffffff
	}
	return int(total) - mathbits.OnesCount64(m)*p.sumBias
}

// prepare computes the pre-sum prediction state shared by Predict, the
// batched paths, and Update's out-of-contract recompute — candidate targets
// with their pre-shifted bit vectors, active row offsets, and the suppress
// mask — so the paths can never drift. The per-bit sums themselves are
// produced separately (sumRows for the serial path, the batched sweeps for
// PredictBatch and internal/batch).
//
//blbp:hot
func (p *BLBP) prepare(pc uint64) {
	p.gather(pc)
	p.computeRows(pc)
}

// gather runs the candidate half of prepare: the IBTB lookup, the
// pre-shifted candidate bit vectors, and the suppress mask. It touches no
// history or weight state, and computeRows touches no IBTB state, so the
// two halves commute — the batched paths run them as separate tight loops
// over a batch's items to overlap their scattered loads.
//
//blbp:hot
func (p *BLBP) gather(pc uint64) {
	p.candBuf = p.buffer.Candidates(pc, p.candBuf[:0])
	bits := p.candBits[:0]
	for _, c := range p.candBuf {
		bits = append(bits, c>>uint(p.cfg.BitOffset))
	}
	p.candBits = bits
	p.computeSuppress(bits)
	p.hadCandidates = len(p.candBuf) > 0
}

// finishPredict selects among the prepared candidates using the per-bit
// sums in p.yout and records the prediction-time bookkeeping (counters,
// histogram, pending state for the matching Update).
//
//blbp:hot
func (p *BLBP) finishPredict(pc uint64) (uint64, bool) {
	p.predictions++
	candidates := p.candBuf
	if n := len(candidates); n < len(p.candHist) {
		p.candHist[n]++
	} else {
		p.candHist[len(p.candHist)-1]++
	}
	p.lastPC, p.lastOK = pc, true
	if len(candidates) == 0 {
		p.ibtbMisses++
		return 0, false
	}
	best := candidates[0]
	bestSum := p.similarity(p.candBits[0])
	for i, c := range candidates[1:] {
		if s := p.similarity(p.candBits[i+1]); s > bestSum {
			best, bestSum = c, s
		}
	}
	return best, true
}

// Predict implements predictor.Indirect: Algorithm 1 of the paper. It is
// exactly the three batch phases run back to back for one pc — prepare,
// packed column sum, candidate selection — which is what keeps the batched
// paths bit-identical to it.
//
//blbp:hot
func (p *BLBP) Predict(pc uint64) (uint64, bool) {
	p.prepare(pc)
	p.sumRows()
	return p.finishPredict(pc)
}

// BatchPrepare runs Predict's pre-sum phase for pc: candidates, active
// rows, suppress mask. internal/batch calls it per batch item before the
// whole batch's sums are accumulated in one sweep over the tables.
func (p *BLBP) BatchPrepare(pc uint64) { p.prepare(pc) }

// BatchIndex runs only the row-indexing half of the pre-sum phase (history
// folds and hashing); BatchGather runs the candidate half (IBTB lookup and
// suppress mask). The halves commute, so batched callers may loop each
// across a whole batch — one item's hashing overlapping another's buffer
// scan — before finishing any prediction. Calling both equals BatchPrepare.
func (p *BLBP) BatchIndex(pc uint64) { p.computeRows(pc) }

// BatchGather is the candidate half of the pre-sum phase; see BatchIndex.
func (p *BLBP) BatchGather(pc uint64) { p.gather(pc) }

// BatchRows returns the packed-row offsets prepared by the last
// BatchPrepare/prepare, valid until the next prepare on this predictor.
func (p *BLBP) BatchRows() []int { return p.pRowOff }

// BatchTable returns the packed weight image summed by the batched sweeps.
//
//blbp:lanes(table)
func (p *BLBP) BatchTable() []uint64 { return p.pweights }

// LaneWordsPerRow returns how many uint64s one packed row spans.
func (p *BLBP) LaneWordsPerRow() int { return p.wordsPerRow }

// BatchFinish completes a prediction whose lane sums were accumulated
// externally (the batched sweeps): acc must hold the lane-wise sum of this
// predictor's BatchRows rows over LaneWordsPerRow words, exactly what
// sumRows would have produced.
func (p *BLBP) BatchFinish(pc uint64, acc []uint64) (uint64, bool) {
	copy(p.acc[:p.wordsPerRow], acc) // similarity and Update read the lane sums
	return p.finishPredict(pc)
}

// Update implements predictor.Indirect: Algorithm 2 of the paper. It stores
// the resolved target in the IBTB and trains each unsuppressed bit's
// perceptron weights toward the actual target's bits, gated by the per-bit
// adaptive thresholds.
//
//blbp:hot
func (p *BLBP) Update(pc, actual uint64) {
	if !p.lastOK || p.lastPC != pc {
		// Out-of-contract call (tests, replay): recompute prediction state
		// through the exact code path Predict uses.
		p.prepare(pc)
		p.sumRows()
	}
	p.lastOK = false
	p.unpackYout(p.acc[:p.wordsPerRow]) // training reads per-bit integers

	p.buffer.Insert(pc, actual)

	bits := actual >> uint(p.cfg.BitOffset)
	for m := ^p.suppressMask & p.kMask; m != 0; m &= m - 1 {
		k := mathbits.TrailingZeros64(m) & 63
		bit := bits>>uint(k)&1 == 1
		y := p.yout[k]
		a := y
		if a < 0 {
			a = -a
		}
		correct := (y >= 0) == bit
		th := p.cfg.ThetaInit
		if p.cfg.UseAdaptiveTheta {
			th = p.thetas[k].Theta()
			p.thetas[k].Observe(!correct, correct && a < th)
		}
		if correct && a >= th {
			continue
		}
		p.trainEvents++
		wMin := int(-p.wMax)
		if bit {
			for i, base := range p.rowOff {
				if w := p.weights[base+k]; w < p.wMax {
					p.weights[base+k] = w + 1
					p.setLane(p.pRowOff[i], k, p.transfer[int(w)+1-wMin])
				}
			}
		} else {
			for i, base := range p.rowOff {
				if w := p.weights[base+k]; w > -p.wMax {
					p.weights[base+k] = w - 1
					p.setLane(p.pRowOff[i], k, p.transfer[int(w)-1-wMin])
				}
			}
		}
	}

	p.local.Update(pc, actual>>3&1 == 1)
	if p.cfg.GlobalTargetBits > 0 {
		// Shift a hash of the target rather than its raw low bits so that
		// targets differing anywhere in the address (not just in bits the
		// alignment keeps zero) perturb the history.
		p.ghist.ShiftBits(hashing.Mix64(actual), p.cfg.GlobalTargetBits)
	}
}

// OnCond implements predictor.Indirect: conditional outcomes feed the
// 630-bit global history (paper §3.3).
//
//blbp:hot
func (p *BLBP) OnCond(pc uint64, taken bool) {
	p.ghist.Shift(taken)
	p.lastOK = false
}

// OnOther implements predictor.Indirect. BLBP's histories are built from
// conditional outcomes and indirect targets only, so other transfers are
// ignored.
func (p *BLBP) OnOther(pc, target uint64, bt trace.BranchType) {}

// OnCondSpan implements predictor.SpanFeeder: a whole conditional segment
// folds into the global history through one call — identical to OnCond per
// record, with the interface dispatch amortized over the run and long runs
// taking the bulk register-shift + refold path (no fold is read mid-span).
//
//blbp:hot
func (p *BLBP) OnCondSpan(c *trace.Columns, start, end int) {
	p.ghist.ShiftRun(c.TakenWords(), start, end)
	p.lastOK = false
}

// OnOtherSpan implements predictor.SpanFeeder. Like OnOther it is a no-op:
// whole jump/call/return segments cost one call instead of end-start.
func (p *BLBP) OnOtherSpan(c *trace.Columns, start, end int, bt trace.BranchType) {}

// Reset restores the predictor to its freshly constructed state: weights,
// packed image, IBTB, histories, thresholds, pending state, and
// diagnostics. internal/batch uses it to recycle stream slots without
// reallocating (admission of a new stream onto a retired slot).
func (p *BLBP) Reset() {
	for i := range p.weights {
		p.weights[i] = 0
	}
	p.fillPackedBias()
	p.buffer.Reset()
	p.ghist.Reset()
	p.local.Reset()
	for _, th := range p.thetas {
		th.Reset(p.cfg.ThetaInit)
	}
	p.lastPC, p.lastOK = 0, false
	p.suppressMask = 0
	p.hadCandidates = false
	p.candBuf = p.candBuf[:0]
	p.candBits = p.candBits[:0]
	p.predictions, p.ibtbMisses, p.trainEvents = 0, 0, 0
	for i := range p.candHist {
		p.candHist[i] = 0
	}
}

// Fingerprint hashes the predictor's trained state — weights, packed image,
// global and local histories, thresholds, and event counters — into one
// 64-bit FNV-1a digest. The batch differential suites compare it between a
// batched stream and its serial reference; the IBTB is excluded (its
// package owns its layout) but any buffer divergence surfaces in the
// predicted-target comparison those suites also make.
func (p *BLBP) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v >> (8 * i) & 0xff
			h *= prime64
		}
	}
	for _, w := range p.weights {
		mix(uint64(uint8(w)))
	}
	for _, w := range p.pweights {
		mix(w)
	}
	for i := 0; i < p.ghist.Capacity(); i++ {
		h ^= p.ghist.Bit(i)
		h *= prime64
	}
	for i := 0; i < p.local.Entries(); i++ {
		mix(p.local.Reg(i))
	}
	for _, th := range p.thetas {
		mix(uint64(th.Theta()))
	}
	mix(uint64(p.predictions))
	mix(uint64(p.trainEvents))
	mix(uint64(p.ibtbMisses))
	return h
}

// IBTBMissRate returns the fraction of predictions with no stored targets.
func (p *BLBP) IBTBMissRate() float64 {
	if p.predictions == 0 {
		return 0
	}
	return float64(p.ibtbMisses) / float64(p.predictions)
}

// TrainEvents returns how many per-bit weight-vector updates have occurred.
func (p *BLBP) TrainEvents() int64 { return p.trainEvents }

// Predictions returns how many predictions have been made.
func (p *BLBP) Predictions() int64 { return p.predictions }

// CandidateHistogram returns the distribution of candidate-set sizes seen
// at prediction time (index = number of candidates, final bucket clamps).
// It feeds the §3.7 latency analysis: with 5 cosine similarities computed
// per cycle, a prediction over n candidates takes ceil(n/5) cycles.
func (p *BLBP) CandidateHistogram() []int64 {
	out := make([]int64, len(p.candHist))
	copy(out, p.candHist)
	return out
}

// L2ProbeRate returns, for a hierarchical IBTB, the fraction of lookups
// that needed the second level (0 for the monolithic buffer).
func (p *BLBP) L2ProbeRate() float64 {
	if h, ok := p.buffer.(*ibtb.Hierarchy); ok {
		return h.L2ProbeRate()
	}
	return 0
}

// StorageBits implements predictor.Indirect: the weight tables, IBTB (with
// its region array), global and local histories, and per-bit threshold
// state.
func (p *BLBP) StorageBits() int {
	bits := p.cfg.SubPredictors() * p.cfg.TableEntries * p.cfg.K * p.cfg.WeightBits
	bits += p.buffer.StorageBits()
	bits += p.cfg.HistBits
	bits += p.cfg.LocalEntries * p.cfg.LocalBits
	bits += p.cfg.K * 16 // adaptive threshold + counter per bit
	return bits
}
