package core

import (
	"fmt"
	"io"

	"blbp/internal/snapshot"
)

// Snapshot section kinds of the BLBP core container.
const (
	snapName    = "blbp"
	secWeights  = "weights"
	secIBTB     = "ibtb"
	secGhist    = "ghist"
	secLocal    = "local"
	secThetas   = "thetas"
	secCounters = "counters"
)

// EncodeState implements predictor.Snapshotter: the trained state framed in
// a BLBPSNP1 container under name "blbp" and the configuration fingerprint.
// Only the canonical state travels — the packed weight image and the
// transfer cache are derived from the weights on restore, and the folded
// histories are flushed (caught up) on encode so no lazy state needs
// serializing. Encoding does not perturb the predictor.
func (p *BLBP) EncodeState(w io.Writer) error {
	c := snapshot.NewContainer(snapName, snapshot.Fingerprint(p.cfg))
	c.Section(secWeights).I8s(p.weights)
	p.buffer.EncodeState(c.Section(secIBTB))
	p.ghist.EncodeState(c.Section(secGhist))
	p.local.EncodeState(c.Section(secLocal))
	te := c.Section(secThetas)
	te.Int(len(p.thetas))
	for _, th := range p.thetas {
		theta, tc := th.State()
		te.Int(theta)
		te.Int(tc)
	}
	ce := c.Section(secCounters)
	ce.I64(p.predictions)
	ce.I64(p.ibtbMisses)
	ce.I64(p.trainEvents)
	ce.I64s(p.candHist)
	return c.EncodeTo(w)
}

// RestoreState implements predictor.Snapshotter, reinstating state captured
// by EncodeState into a predictor built from the same configuration. The
// prediction cache is flushed, so the next Predict recomputes from the
// restored tables. On error the predictor's state is unspecified: discard
// it or call Reset before reuse.
func (p *BLBP) RestoreState(r io.Reader) error {
	dc, err := snapshot.ReadContainer(r, snapName, snapshot.Fingerprint(p.cfg))
	if err != nil {
		return err
	}

	d, err := dc.Section(secWeights)
	if err != nil {
		return err
	}
	weights := make([]int8, len(p.weights))
	d.I8sInto(weights)
	if err := d.Finish(); err != nil {
		return err
	}
	for i, w := range weights {
		if w > p.wMax || w < -p.wMax {
			return fmt.Errorf("%w: weight %d at %d outside ±%d", snapshot.ErrCorrupt, w, i, p.wMax)
		}
	}

	if d, err = dc.Section(secIBTB); err != nil {
		return err
	}
	if err := p.buffer.RestoreState(d); err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}

	if d, err = dc.Section(secGhist); err != nil {
		return err
	}
	if err := p.ghist.RestoreState(d); err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}

	if d, err = dc.Section(secLocal); err != nil {
		return err
	}
	if err := p.local.RestoreState(d); err != nil {
		return err
	}
	if err := d.Finish(); err != nil {
		return err
	}

	if d, err = dc.Section(secThetas); err != nil {
		return err
	}
	nth := d.Int()
	if err := d.Err(); err != nil {
		return err
	}
	if nth != len(p.thetas) {
		return fmt.Errorf("%w: %d thresholds, have %d", snapshot.ErrMismatch, nth, len(p.thetas))
	}
	for _, th := range p.thetas {
		theta := d.Int()
		tc := d.Int()
		if d.Err() != nil {
			break
		}
		if err := th.SetState(theta, tc); err != nil {
			return fmt.Errorf("%w: %v", snapshot.ErrCorrupt, err)
		}
	}
	if err := d.Finish(); err != nil {
		return err
	}

	if d, err = dc.Section(secCounters); err != nil {
		return err
	}
	predictions := d.I64()
	ibtbMisses := d.I64()
	trainEvents := d.I64()
	candHist := make([]int64, len(p.candHist))
	d.I64sInto(candHist)
	if err := d.Finish(); err != nil {
		return err
	}
	if predictions < 0 || ibtbMisses < 0 || trainEvents < 0 || ibtbMisses > predictions {
		return fmt.Errorf("%w: diagnostic counters inconsistent", snapshot.ErrCorrupt)
	}

	copy(p.weights, weights)
	p.rebuildPacked()
	p.predictions = predictions
	p.ibtbMisses = ibtbMisses
	p.trainEvents = trainEvents
	copy(p.candHist, candHist)
	p.flushPrediction()
	return nil
}

// rebuildPacked derives the packed weight image from the canonical weights:
// the all-zero bias image first, then one lane write per nonzero weight
// (transfer(0) is 0 in both transfer modes, so zero weights are already
// right).
func (p *BLBP) rebuildPacked() {
	p.fillPackedBias()
	n := p.cfg.SubPredictors()
	for i := 0; i < n; i++ {
		for r := 0; r < p.cfg.TableEntries; r++ {
			base := i*p.tableStride + r*p.cfg.K
			prow := (i*p.cfg.TableEntries + r) * p.wordsPerRow
			for k := 0; k < p.cfg.K; k++ {
				if w := p.weights[base+k]; w != 0 {
					p.setLane(prow, k, p.transfer[int(w)+int(p.wMax)])
				}
			}
		}
	}
}

// flushPrediction clears the Predict→Update cache so the next call
// recomputes through the standard path.
func (p *BLBP) flushPrediction() {
	p.lastPC, p.lastOK = 0, false
	p.suppressMask = 0
	p.hadCandidates = false
	p.candBuf = p.candBuf[:0]
	p.candBits = p.candBits[:0]
}
