package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"blbp/internal/snapshot"
)

// trainRandom drives the predictor through n random indirect branches with
// interleaved conditional outcomes, exercising weights, IBTB, histories,
// and thresholds.
func trainRandom(p *BLBP, seed int64, n int) {
	rng := rand.New(rand.NewSource(seed))
	pcs := []uint64{0x400100, 0x400200, 0x400300}
	targetSets := [][]uint64{
		{0x7000, 0x7100, 0x7200},
		{0x81000, 0x82000},
		{0x9000, 0x9400, 0x9800, 0x9c00},
	}
	for i := 0; i < n; i++ {
		p.OnCond(0xC04D+uint64(i%7)*4, rng.Intn(2) == 0)
		b := rng.Intn(len(pcs))
		tgt := targetSets[b][rng.Intn(len(targetSets[b]))]
		p.Predict(pcs[b])
		p.Update(pcs[b], tgt)
	}
}

func TestSnapshotRoundTripRestoresTrainedState(t *testing.T) {
	hier := DefaultConfig()
	hier.UseHierarchicalIBTB = true
	for _, cfg := range []Config{DefaultConfig(), hier} {
		a := New(cfg)
		trainRandom(a, 42, 3000)

		var buf bytes.Buffer
		if err := a.EncodeState(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		b := New(cfg)
		if err := b.RestoreState(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("restore: %v", err)
		}

		if af, bf := a.Fingerprint(), b.Fingerprint(); af != bf {
			t.Fatalf("fingerprint %016x after restore, want %016x", bf, af)
		}
		// The derived packed image must be rebuilt exactly, not just the
		// canonical weights.
		for i := range a.pweights {
			if a.pweights[i] != b.pweights[i] {
				t.Fatalf("pweights diverge at word %d", i)
			}
		}
		// The two predictors must behave identically from here on.
		for i := 0; i < 500; i++ {
			pc := uint64(0x400100 + (i%3)*0x100)
			pa, oka := a.Predict(pc)
			pb, okb := b.Predict(pc)
			if pa != pb || oka != okb {
				t.Fatalf("prediction %d diverges: (%x,%v) vs (%x,%v)", i, pa, oka, pb, okb)
			}
			tgt := uint64(0x7000 + (i%4)*0x100)
			a.Update(pc, tgt)
			b.Update(pc, tgt)
			a.OnCond(0xC04D, i%3 == 0)
			b.OnCond(0xC04D, i%3 == 0)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("fingerprints diverge after post-restore traffic")
		}
	}
}

// Encoding must be a pure read: the predictor behaves identically whether or
// not a snapshot was taken mid-run.
func TestEncodeDoesNotPerturb(t *testing.T) {
	a := New(DefaultConfig())
	b := New(DefaultConfig())
	trainRandom(a, 7, 1000)
	trainRandom(b, 7, 1000)
	var buf bytes.Buffer
	if err := a.EncodeState(&buf); err != nil {
		t.Fatal(err)
	}
	trainRandom(a, 8, 1000)
	trainRandom(b, 8, 1000)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("taking a snapshot changed predictor behaviour")
	}
}

func TestRestoreRejectsDamage(t *testing.T) {
	a := New(DefaultConfig())
	trainRandom(a, 3, 500)
	var buf bytes.Buffer
	if err := a.EncodeState(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Truncations at sampled points.
	for _, n := range []int{0, 7, 8, 40, len(good) / 2, len(good) - 1} {
		if err := New(DefaultConfig()).RestoreState(bytes.NewReader(good[:n])); err == nil {
			t.Errorf("restore of %d-byte truncation succeeded", n)
		}
	}
	// Bit flips at sampled points must fail the magic or a checksum.
	for _, off := range []int{0, 9, len(good) / 3, len(good) / 2, len(good) - 2} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x40
		if err := New(DefaultConfig()).RestoreState(bytes.NewReader(bad)); err == nil {
			t.Errorf("restore of snapshot with bit flip at %d succeeded", off)
		}
	}
	// A different configuration must be refused up front.
	cfg := DefaultConfig()
	cfg.ThetaInit++
	if err := New(cfg).RestoreState(bytes.NewReader(good)); !errors.Is(err, snapshot.ErrMismatch) {
		t.Errorf("restore into different config: got %v, want ErrMismatch", err)
	}
}
