// Package combined implements the consolidation the paper's future-work
// section (§6) proposes: using the BLBP machinery to predict conditional
// branches as well as indirect branches, the way VPC consolidates indirect
// prediction into the conditional predictor — but in the opposite
// direction, with one bit-level target predictor serving both.
//
// A conditional branch at pc is modeled as an indirect branch with two
// potential targets, the fall-through address (pc+4, the engine's
// instruction-size convention) and the taken target. Both enter the IBTB as
// they are observed; prediction is then BLBP's usual bit-level selection
// between the two candidates, and the direction is "taken" exactly when the
// selected target is not the fall-through.
//
// One Predictor instance is driven in both engine roles at once: as the
// pass's conditional predictor (cond.Predictor + cond.TargetTrainer) and as
// its indirect predictor (predictor.Indirect). OnCond is deliberately a
// no-op — in consolidated mode the conditional-side training already
// advances the shared history through core.Update.
package combined

import (
	"blbp/internal/core"
	"blbp/internal/trace"
)

// instructionSize matches the engine's fall-through convention.
const instructionSize = 4

// Predictor is the consolidated conditional+indirect predictor.
type Predictor struct {
	core *core.BLBP

	condPredictions int64
	condMispredicts int64
}

// New constructs a consolidated predictor over a BLBP core configuration.
func New(cfg core.Config) *Predictor {
	return &Predictor{core: core.New(cfg)}
}

// Name implements predictor.Indirect and labels cond-side reporting.
func (p *Predictor) Name() string { return "combined" }

// --- Conditional-predictor role -----------------------------------------

// Predict implements cond.Predictor: select between the branch's known
// targets; an IBTB miss (or a fall-through selection) predicts not taken.
func (p *Predictor) Predict(pc uint64) bool {
	p.condPredictions++
	target, ok := p.core.Predict(pc)
	if !ok {
		return false
	}
	return target != pc+instructionSize
}

// Train implements cond.Predictor. Without a target address only the
// not-taken case is fully specified; taken branches fall back to a
// sentinel target derived from the PC so out-of-contract callers still
// exercise a two-target distribution. The engine uses TrainWithTarget.
func (p *Predictor) Train(pc uint64, taken bool) {
	if taken {
		p.TrainWithTarget(pc, true, pc+0x40)
		return
	}
	p.TrainWithTarget(pc, false, pc+instructionSize)
}

// TrainWithTarget implements cond.TargetTrainer: the resolved control-flow
// edge (fall-through or taken target) is trained as the branch's actual
// target.
func (p *Predictor) TrainWithTarget(pc uint64, taken bool, target uint64) {
	actual := pc + instructionSize
	if taken {
		actual = target
	}
	p.core.Update(pc, actual)
}

// UpdateHistory implements cond.Predictor as a no-op: core.Update already
// advanced the shared history with the resolved edge's target bits, which
// subsumes the direction bit.
func (p *Predictor) UpdateHistory(pc uint64, taken bool) {}

// OnOther implements both roles' other-control-flow hook.
func (p *Predictor) OnOther(pc, target uint64, bt trace.BranchType) {
	p.core.OnOther(pc, target, bt)
}

// --- Indirect-predictor role ----------------------------------------------

// PredictTarget is the indirect-role prediction. (The conditional role owns
// the Predict name, so predictor.Indirect is satisfied through the Indirect
// adapter below.)
func (p *Predictor) PredictTarget(pc uint64) (uint64, bool) { return p.core.Predict(pc) }

// UpdateTarget trains the indirect role with a resolved target.
func (p *Predictor) UpdateTarget(pc, actual uint64) { p.core.Update(pc, actual) }

// StorageBits reports the single consolidated budget.
func (p *Predictor) StorageBits() int { return p.core.StorageBits() }

// Indirect returns the predictor.Indirect view of the consolidated
// structure. Pass the same Predictor as the engine's conditional predictor.
func (p *Predictor) Indirect() *IndirectView { return &IndirectView{p: p} }

// IndirectView adapts Predictor to predictor.Indirect.
type IndirectView struct {
	p *Predictor
}

// Name implements predictor.Indirect.
func (v *IndirectView) Name() string { return "combined" }

// Predict implements predictor.Indirect.
func (v *IndirectView) Predict(pc uint64) (uint64, bool) { return v.p.PredictTarget(pc) }

// Update implements predictor.Indirect.
func (v *IndirectView) Update(pc, actual uint64) { v.p.UpdateTarget(pc, actual) }

// OnCond implements predictor.Indirect as a no-op: in consolidated mode the
// conditional role already folded the outcome into the shared history.
func (v *IndirectView) OnCond(pc uint64, taken bool) {}

// OnOther implements predictor.Indirect as a no-op: the conditional role
// receives OnOther from the engine already; doing it twice would
// double-shift the shared history.
func (v *IndirectView) OnOther(pc, target uint64, bt trace.BranchType) {}

// StorageBits implements predictor.Indirect.
func (v *IndirectView) StorageBits() int { return v.p.StorageBits() }
