package combined_test

import (
	"testing"

	"blbp/internal/combined"
	"blbp/internal/core"
	"blbp/internal/predictor"
	"blbp/internal/sim"
	"blbp/internal/trace"
)

func newCombined() *combined.Predictor { return combined.New(core.DefaultConfig()) }

func TestConditionalBiasLearned(t *testing.T) {
	p := newCombined()
	mis := 0
	for i := 0; i < 1000; i++ {
		pred := p.Predict(0x400)
		if pred != true && i >= 200 {
			mis++
		}
		p.TrainWithTarget(0x400, true, 0x9000)
		p.UpdateHistory(0x400, true)
	}
	if mis > 5 {
		t.Errorf("%d late mispredicts on always-taken conditional", mis)
	}
}

func TestConditionalAlternationLearned(t *testing.T) {
	p := newCombined()
	mis := 0
	const n = 4000
	for i := 0; i < n; i++ {
		taken := i%2 == 0
		pred := p.Predict(0x500)
		if pred != taken && i >= n*3/4 {
			mis++
		}
		p.TrainWithTarget(0x500, taken, 0x9100)
		p.UpdateHistory(0x500, taken)
	}
	if mis > 20 {
		t.Errorf("%d late mispredicts on alternating conditional (of %d)", mis, n/4)
	}
}

func TestColdConditionalPredictsNotTaken(t *testing.T) {
	p := newCombined()
	if p.Predict(0x123) {
		t.Error("cold branch predicted taken; static prediction should be not-taken")
	}
}

func TestIndirectRoleStillWorks(t *testing.T) {
	p := newCombined()
	v := p.Indirect()
	mis := 0
	for i := 0; i < 600; i++ {
		tgt := uint64(0x1000)
		if i%2 == 1 {
			tgt = 0x3000
		}
		pred, ok := v.Predict(0x700)
		if (!ok || pred != tgt) && i >= 450 {
			mis++
		}
		v.Update(0x700, tgt)
	}
	if mis > 10 {
		t.Errorf("%d late mispredicts on alternating indirect targets", mis)
	}
}

func TestTrainWithoutTargetFallback(t *testing.T) {
	p := newCombined()
	// Out-of-contract use (plain Train) must not panic and must still
	// learn a direction bias.
	for i := 0; i < 500; i++ {
		p.Predict(0x800)
		p.Train(0x800, true)
	}
	if !p.Predict(0x800) {
		t.Error("bias not learned through Train fallback")
	}
}

func TestConsolidatedEngineRun(t *testing.T) {
	// Full engine pass with the combined predictor in both roles over a
	// synthetic stream with correlated conditionals and indirect targets.
	tr := &trace.Trace{Name: "consolidated"}
	// Period-3 outcome pattern (T,T,N): learnable from history, unlike an
	// iid stream which no predictor can beat beyond its bias.
	for i := 0; i < 3000; i++ {
		taken := i%3 != 2
		condTarget := uint64(0x104)
		if taken {
			condTarget = 0x140
		}
		tr.Append(trace.Record{PC: 0x100, Target: condTarget, InstrBefore: 8, Type: trace.CondDirect, Taken: taken})
		tgt := uint64(0x1000)
		if taken {
			tgt = 0x3000
		}
		tr.Append(trace.Record{PC: 0x200, Target: tgt, InstrBefore: 5, Type: trace.IndirectJump, Taken: true})
	}
	p := newCombined()
	res, err := sim.Run(tr, p, []predictor.Indirect{p.Indirect()}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := res[0]
	if r.CondBranches != 3000 || r.IndirectBranches != 3000 {
		t.Fatalf("branch counts %d/%d", r.CondBranches, r.IndirectBranches)
	}
	// The indirect target equals the last conditional outcome: must be
	// learned almost perfectly.
	if r.IndirectMPKI() > 1.0 {
		t.Errorf("indirect MPKI = %.3f, want < 1.0", r.IndirectMPKI())
	}
	// Conditional accuracy should be well above the 67% static floor.
	if r.CondAccuracy() < 0.8 {
		t.Errorf("conditional accuracy = %.3f, want >= 0.8", r.CondAccuracy())
	}
}

func TestStorageSingleStructure(t *testing.T) {
	p := newCombined()
	dedicated := core.New(core.DefaultConfig())
	if p.StorageBits() != dedicated.StorageBits() {
		t.Errorf("consolidated storage %d != single BLBP %d", p.StorageBits(), dedicated.StorageBits())
	}
	if p.Indirect().StorageBits() != p.StorageBits() {
		t.Error("views disagree on storage")
	}
}

func TestNames(t *testing.T) {
	p := newCombined()
	if p.Name() != "combined" || p.Indirect().Name() != "combined" {
		t.Error("names")
	}
}

func TestViewHooksAreNoops(t *testing.T) {
	p := newCombined()
	v := p.Indirect()
	p.TrainWithTarget(0x10, true, 0x5000)
	before, _ := v.Predict(0x10)
	v.OnCond(0x99, true)
	v.OnOther(0x98, 0x97, trace.Return)
	after, _ := v.Predict(0x10)
	if before != after {
		t.Error("view hooks disturbed shared state")
	}
}
