package combined

import (
	"bytes"
	"fmt"
	"io"

	"blbp/internal/snapshot"
)

// Snapshot layout of the consolidated predictor: a "combined" container
// whose "core" section nests the BLBP core's own container bytes, plus the
// conditional-role counters.
const (
	snapName    = "combined"
	secCore     = "core"
	secCond     = "cond"
	maxCoreSnap = 1 << 28
)

// EncodeState implements predictor.Snapshotter for the consolidated
// predictor: the shared BLBP core nested whole, plus the conditional-role
// counters.
func (p *Predictor) EncodeState(w io.Writer) error {
	c := snapshot.NewContainer(snapName, snapshot.Fingerprint(p.core.Config()))
	var nested bytes.Buffer
	if err := p.core.EncodeState(&nested); err != nil {
		return err
	}
	c.Section(secCore).Bytes(nested.Bytes())
	ce := c.Section(secCond)
	ce.I64(p.condPredictions)
	ce.I64(p.condMispredicts)
	return c.EncodeTo(w)
}

// RestoreState implements predictor.Snapshotter. On error the predictor's
// state is unspecified: discard it.
func (p *Predictor) RestoreState(r io.Reader) error {
	dc, err := snapshot.ReadContainer(r, snapName, snapshot.Fingerprint(p.core.Config()))
	if err != nil {
		return err
	}
	d, err := dc.Section(secCore)
	if err != nil {
		return err
	}
	nested := d.BytesMax(maxCoreSnap)
	if err := d.Finish(); err != nil {
		return err
	}
	if err := p.core.RestoreState(bytes.NewReader(nested)); err != nil {
		return err
	}
	if d, err = dc.Section(secCond); err != nil {
		return err
	}
	condPredictions := d.I64()
	condMispredicts := d.I64()
	if err := d.Finish(); err != nil {
		return err
	}
	if condPredictions < 0 || condMispredicts < 0 || condMispredicts > condPredictions {
		return fmt.Errorf("%w: conditional counters inconsistent", snapshot.ErrCorrupt)
	}
	p.condPredictions = condPredictions
	p.condMispredicts = condMispredicts
	return nil
}

// EncodeState delegates to the underlying consolidated predictor: both
// engine roles share one state, so snapshotting either view snapshots the
// whole structure. A consolidated pass should snapshot/restore exactly one
// of its two views.
func (v *IndirectView) EncodeState(w io.Writer) error { return v.p.EncodeState(w) }

// RestoreState delegates to the underlying consolidated predictor.
func (v *IndirectView) RestoreState(r io.Reader) error { return v.p.RestoreState(r) }
