package workload

import (
	"math/rand"
	"testing"

	"blbp/internal/trace"
)

// The suite-shape tests (88 workloads, category counts, holdout
// disjointness, default base) live in internal/wspec, where the suites are
// defined; this file tests the generator models and the Spec machinery.

func TestBuildDeterministic(t *testing.T) {
	s := VDispatchSpec("det", "T", 5_000, VDispatchParams{
		Classes: 6, Sites: 4, Objects: 24, TypeNoise: 0.002,
		MethodWork: 210, MethodConds: 3, CondNoise: 0.004,
		MonoCalls: 1, MonoSites: 40,
	})
	a := s.Build()
	b := s.Build()
	if len(a.Records) != len(b.Records) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs between identical builds", i)
		}
	}
}

func TestBuildReachesInstructionBudget(t *testing.T) {
	for _, s := range []Spec{
		InterpreterSpec("t-i", "T", 20_000, InterpreterParams{Opcodes: 8, ProgramLen: 40, Work: 5, CondPerHandler: 1}),
		SwitcherSpec("t-s", "T", 20_000, SwitcherParams{Tokens: 8, CaseWork: 5, CaseConds: 1}),
		VDispatchSpec("t-v", "T", 20_000, VDispatchParams{Classes: 3, Sites: 2, Objects: 16, MethodWork: 5, MethodConds: 1}),
		CallbacksSpec("t-c", "T", 20_000, CallbacksParams{Events: 4, Skew: 1.2, Wrappers: 2, HandlerWork: 5, HandlerConds: 1}),
		MonoSpec("t-m", "T", 20_000, MonoParams{Sites: 32, Work: 5}),
	} {
		tr := s.Build()
		got := tr.Instructions()
		if got < 20_000 || got > 21_000 {
			t.Errorf("%s: instructions = %d, want ~20000", s.Name, got)
		}
		if len(tr.Records) == 0 {
			t.Errorf("%s: empty trace", s.Name)
		}
	}
}

func TestTracesAreValid(t *testing.T) {
	for _, s := range []Spec{
		InterpreterSpec("v-i", "T", 5_000, InterpreterParams{Opcodes: 12, ProgramLen: 40, Work: 60, CondPerHandler: 2, CondNoise: 0.01, DispatchNoise: 0.01, MonoCalls: 1, MonoSites: 20}),
		SwitcherSpec("v-s", "T", 5_000, SwitcherParams{Tokens: 10, TransitionNoise: 0.02, CaseWork: 50, CaseConds: 2, MonoCalls: 1, MonoSites: 20}),
		CallbacksSpec("v-c", "T", 5_000, CallbacksParams{Events: 6, Skew: 2.0, Wrappers: 3, HandlerWork: 40, HandlerConds: 2}),
		RecursiveSpec("v-r", "T", 5_000, RecursiveParams{MaxDepth: 30, MinDepth: 5, VisitorClasses: 3, Work: 8}),
	} {
		tr := s.Build()
		for i, r := range tr.Records {
			if err := r.Validate(); err != nil {
				t.Fatalf("%s record %d: %v", s.Name, i, err)
			}
		}
	}
}

func TestCallReturnBalance(t *testing.T) {
	// Every return must target the instruction after some prior call, and
	// the stack never underflows (Build would panic otherwise). Verify by
	// replaying with a stack.
	s := VDispatchSpec("bal", "T", 30_000, VDispatchParams{
		Classes: 4, Sites: 3, Objects: 32, AlternatingSites: 2,
		MethodWork: 6, MethodConds: 2,
	})
	tr := s.Build()
	var stack []uint64
	returns := 0
	for i, r := range tr.Records {
		switch r.Type {
		case trace.DirectCall, trace.IndirectCall:
			stack = append(stack, r.PC+4)
		case trace.Return:
			if len(stack) == 0 {
				t.Fatalf("record %d: return with empty stack", i)
			}
			want := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if r.Target != want {
				t.Fatalf("record %d: return to %#x, want %#x", i, r.Target, want)
			}
			returns++
		}
	}
	if returns == 0 {
		t.Error("no returns in a vdispatch trace")
	}
}

func TestByName(t *testing.T) {
	suite := []Spec{
		MonoSpec("one", "T", 1_000, MonoParams{Sites: 4, Work: 5}),
		MonoSpec("two", "T", 1_000, MonoParams{Sites: 4, Work: 5, Bank: 1}),
	}
	s, ok := ByName("two", suite)
	if !ok || s.Name != "two" {
		t.Error("ByName failed to find a present workload")
	}
	if _, ok := ByName("no-such-workload", suite); ok {
		t.Error("ByName found a nonexistent workload")
	}
}

func TestZipfTable(t *testing.T) {
	cdf := zipfTable(8, 1.2)
	if len(cdf) != 8 {
		t.Fatalf("len = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatal("cdf not monotone")
		}
	}
	if cdf[7] != 1 {
		t.Errorf("cdf[last] = %v, want 1", cdf[7])
	}
	// Head must be the hottest item.
	if cdf[0] < 1.0/8 {
		t.Errorf("cdf[0] = %v; Zipf head should exceed uniform share", cdf[0])
	}
}

func TestDrawCDFMatchesLinearScan(t *testing.T) {
	// The binary search must return exactly what the reference linear scan
	// does — the first index with x <= cdf[i] — or seeded traces change.
	linear := func(cdf []float64, x float64) int {
		for i, c := range cdf {
			if x <= c {
				return i
			}
		}
		return len(cdf) - 1
	}
	for _, n := range []int{1, 2, 8, 96} {
		cdf := zipfTable(n, 1.7)
		ra := rand.New(rand.NewSource(42))
		rb := rand.New(rand.NewSource(42))
		for trial := 0; trial < 2000; trial++ {
			got := drawCDF(cdf, ra)
			want := linear(cdf, rb.Float64())
			if got != want {
				t.Fatalf("n=%d trial %d: drawCDF = %d, linear scan = %d", n, trial, got, want)
			}
		}
	}
}

func BenchmarkDrawCDF(b *testing.B) {
	// The callbacks family draws one event per step; wide tables (the
	// 96-handler server mixes) are where the binary search pays.
	for _, n := range []struct {
		name string
		size int
	}{{"events8", 8}, {"events96", 96}} {
		b.Run(n.name, func(b *testing.B) {
			cdf := zipfTable(n.size, 2.2)
			rng := rand.New(rand.NewSource(7))
			b.ReportAllocs()
			sink := 0
			for i := 0; i < b.N; i++ {
				sink += drawCDF(cdf, rng)
			}
			_ = sink
		})
	}
}

func TestUnwindPCsDisjointFromGeneratorBanks(t *testing.T) {
	// The end-of-trace unwind emits returns in a reserved bank. Its address
	// window must be disjoint from every generator bank — the old fixed
	// 0x3FF000+i*4 PCs could walk into bank 0's window on deep stacks.
	bankWindow := func(bank int) (lo, hi uint64) {
		lo = funcAddr(bank, 0)
		hi = funcAddr(bank+1, 0)
		return
	}
	unwindLo, unwindHi := bankWindow(unwindBank)
	for bank := 0; bank < MaxBank; bank++ {
		lo, hi := bankWindow(bank)
		if lo < unwindHi && unwindLo < hi {
			t.Fatalf("generator bank %d window [%#x,%#x) overlaps unwind bank window [%#x,%#x)",
				bank, lo, hi, unwindLo, unwindHi)
		}
	}
	// End-to-end: a trace that ends mid-recursion (tiny budget, deep burst)
	// exercises the unwind; none of its unwind return PCs may fall in a
	// generator bank window.
	s := RecursiveSpec("unwind", "T", 300, RecursiveParams{MaxDepth: 80, MinDepth: 70, Work: 1})
	tr := s.Build()
	sawUnwind := false
	for _, r := range tr.Records {
		if r.Type == trace.Return && r.PC >= unwindLo {
			sawUnwind = true
			if r.PC >= unwindHi {
				t.Fatalf("unwind return PC %#x past the reserved bank window [%#x,%#x)", r.PC, unwindLo, unwindHi)
			}
		}
	}
	if !sawUnwind {
		t.Skip("trace ended balanced; unwind not exercised")
	}
}

func TestSpecWithoutGeneratorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build on generator-less spec did not panic")
		}
	}()
	Spec{Name: "empty"}.Build()
}

func TestRecursiveBalancedAndDeep(t *testing.T) {
	s := RecursiveSpec("rec", "T", 60_000, RecursiveParams{
		MaxDepth: 90, MinDepth: 10, VisitorClasses: 3, Work: 8,
	})
	tr := s.Build()
	var stack []uint64
	maxDepth := 0
	for i, r := range tr.Records {
		switch r.Type {
		case trace.DirectCall, trace.IndirectCall:
			stack = append(stack, r.PC+4)
			if len(stack) > maxDepth {
				maxDepth = len(stack)
			}
		case trace.Return:
			if len(stack) == 0 {
				t.Fatalf("record %d: unmatched return", i)
			}
			if r.Target != stack[len(stack)-1] {
				t.Fatalf("record %d: return target mismatch", i)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if maxDepth <= 64 {
		t.Errorf("max call depth %d, want > 64 to overflow the RAS", maxDepth)
	}
	st := trace.Analyze(tr)
	if st.Count[trace.Return] == 0 || st.IndirectCount() == 0 {
		t.Error("recursive trace missing returns or indirect calls")
	}
}

func TestRecursiveRASOverflowMispredicts(t *testing.T) {
	// Sanity at the trace level: depths beyond 64 guarantee that a
	// 64-entry RAS replayed over this trace would mispredict some returns.
	s := RecursiveSpec("rec2", "T", 60_000, RecursiveParams{
		MaxDepth: 100, MinDepth: 80, Work: 6,
	})
	tr := s.Build()
	// Emulate a bounded circular RAS.
	const cap = 64
	ras := make([]uint64, 0, cap)
	mispredicts := 0
	for _, r := range tr.Records {
		switch r.Type {
		case trace.DirectCall, trace.IndirectCall:
			if len(ras) == cap {
				ras = ras[1:]
			}
			ras = append(ras, r.PC+4)
		case trace.Return:
			if len(ras) == 0 {
				mispredicts++
				continue
			}
			top := ras[len(ras)-1]
			ras = ras[:len(ras)-1]
			if top != r.Target {
				mispredicts++
			}
		}
	}
	if mispredicts == 0 {
		t.Error("expected RAS overflow mispredictions at depth 80-100")
	}
}

func TestRecursiveConstructorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid recursive params accepted")
		}
	}()
	RecursiveSpec("bad", "T", 1000, RecursiveParams{MaxDepth: 5, MinDepth: 10}).Build()
}

func TestMixedConstructorPanics(t *testing.T) {
	cases := []struct {
		name    string
		models  []Model
		weights []int
	}{
		{"empty", nil, nil},
		{"mismatched", []Model{&monoModel{}}, []int{1, 2}},
		{"zero weight", []Model{&monoModel{}}, []int{0}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			NewMixed(c.models, c.weights, false)
		}()
	}
}

func TestMixedRoundRobinFollowsWeights(t *testing.T) {
	// A 2:1 round-robin over two mono models must interleave their PCs in
	// bursts of 2 and 1.
	rng := rand.New(rand.NewSource(1))
	a := newMono(MonoParams{Sites: 1, Work: 1, Bank: 0}, rng)
	b := newMono(MonoParams{Sites: 1, Work: 1, Bank: 1}, rng)
	m := NewMixed([]Model{a, b}, []int{2, 1}, false)
	e := newEmitter("rr", 10_000)
	banks := []int{}
	for i := 0; i < 9; i++ {
		before := e.cols.Len()
		m.step(e, rng)
		// Identify which bank emitted by inspecting the new records' PCs.
		for ri := before; ri < e.cols.Len(); ri++ {
			r := e.cols.Record(ri)
			if r.Type == trace.IndirectCall {
				bank := 0
				if r.PC >= 0x40_0000+1<<24 {
					bank = 1
				}
				banks = append(banks, bank)
				break
			}
		}
	}
	want := []int{0, 0, 1, 0, 0, 1, 0, 0, 1}
	for i := range want {
		if banks[i] != want[i] {
			t.Fatalf("burst pattern = %v, want %v", banks, want)
		}
	}
}

func TestMixedRandomModeDeterministicPerSeed(t *testing.T) {
	build := func() *trace.Trace {
		return NewSpec("mix-rand", "T", SeedFor("mix-rand"), 20_000, 0,
			func(rng *rand.Rand) Model {
				return NewMixed([]Model{
					MonoParams{Sites: 4, Work: 5, Bank: 0}.New(rng),
					MonoParams{Sites: 4, Work: 5, Bank: 1}.New(rng),
				}, []int{1, 3}, true)
			}).Build()
	}
	a, b := build(), build()
	if len(a.Records) != len(b.Records) {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}

func TestPhasesSwitchAtBoundary(t *testing.T) {
	// A two-phase schedule over two mono banks must emit only bank 0 before
	// the boundary and only bank 1 after it (with at most one straddling
	// step).
	spec := NewSpec("phased", "T", 3, 20_000, 0, func(rng *rand.Rand) Model {
		return NewPhases([]Phase{
			{Until: 10_000, Model: MonoParams{Sites: 2, Work: 5, Bank: 0}.New(rng)},
			{Until: 0, Model: MonoParams{Sites: 2, Work: 5, Bank: 1}.New(rng)},
		})
	})
	tr := spec.Build()
	var instr int64
	bank1Start := int64(-1)
	for _, r := range tr.Records {
		instr += int64(r.InstrBefore) + 1
		if r.Type == trace.IndirectCall {
			inBank1 := r.PC >= 0x40_0000+1<<24
			if inBank1 && bank1Start < 0 {
				bank1Start = instr
			}
			if !inBank1 && bank1Start >= 0 {
				t.Fatalf("bank 0 record at instruction %d after phase 2 began at %d", instr, bank1Start)
			}
		}
	}
	if bank1Start < 0 {
		t.Fatal("phase 2 never ran")
	}
	if bank1Start < 10_000 || bank1Start > 11_000 {
		t.Errorf("phase 2 began at instruction %d, want just past the 10000 boundary", bank1Start)
	}
}

func TestWithRngIsolatesClientStreams(t *testing.T) {
	// Two builds whose shared rng is consumed differently between steps
	// must still produce identical records from a WithRng-bound client.
	build := func(extraDraws int) *trace.Trace {
		return NewSpec("seeded-client", "T", 9, 8_000, 0, func(rng *rand.Rand) Model {
			crng := rand.New(rand.NewSource(1234))
			client := WithRng(CallbacksParams{Events: 6, Skew: 2.0, Wrappers: 2, HandlerWork: 10, HandlerConds: 1}.New(crng), crng)
			for i := 0; i < extraDraws; i++ {
				rng.Int63() // perturb the shared stream
			}
			return client
		}).Build()
	}
	a, b := build(0), build(5)
	if len(a.Records) != len(b.Records) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs; per-client stream leaked shared-rng state", i)
		}
	}
}

func TestFingerprintDistinguishesParams(t *testing.T) {
	a := MonoSpec("same-name", "T", 1_000, MonoParams{Sites: 4, Work: 5})
	b := MonoSpec("same-name", "T", 1_000, MonoParams{Sites: 8, Work: 5})
	if a.Fingerprint == b.Fingerprint {
		t.Error("different parameters produced equal fingerprints")
	}
	if a.Identity() == b.Identity() {
		t.Error("identities collide across parameter changes")
	}
	c := MonoSpec("same-name", "T", 1_000, MonoParams{Sites: 4, Work: 5})
	if a.Identity() != c.Identity() {
		t.Error("identical specs disagree on identity")
	}
}
