package workload

import (
	"math/rand"
	"testing"

	"blbp/internal/trace"
)

func TestSuiteHas88Workloads(t *testing.T) {
	suite := Suite(10_000)
	if len(suite) != 88 {
		t.Fatalf("suite has %d workloads, want 88", len(suite))
	}
	counts := map[string]int{}
	names := map[string]bool{}
	for _, s := range suite {
		counts[s.Category]++
		if names[s.Name] {
			t.Errorf("duplicate workload name %q", s.Name)
		}
		names[s.Name] = true
	}
	want := map[string]int{
		CatSPEC2000:    1,
		CatSPEC2006:    12,
		CatSPEC2017:    7,
		CatMobileShort: 24,
		CatMobileLong:  12,
		CatServerShort: 20,
		CatServerLong:  12,
	}
	for cat, n := range want {
		if counts[cat] != n {
			t.Errorf("category %q has %d workloads, want %d", cat, counts[cat], n)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	s := Suite(5_000)[0]
	a := s.Build()
	b := s.Build()
	if len(a.Records) != len(b.Records) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs between identical builds", i)
		}
	}
}

func TestBuildReachesInstructionBudget(t *testing.T) {
	for _, s := range []Spec{
		InterpreterSpec("t-i", "T", 20_000, InterpreterParams{Opcodes: 8, ProgramLen: 40, Work: 5, CondPerHandler: 1}),
		SwitcherSpec("t-s", "T", 20_000, SwitcherParams{Tokens: 8, CaseWork: 5, CaseConds: 1}),
		VDispatchSpec("t-v", "T", 20_000, VDispatchParams{Classes: 3, Sites: 2, Objects: 16, MethodWork: 5, MethodConds: 1}),
		CallbacksSpec("t-c", "T", 20_000, CallbacksParams{Events: 4, Skew: 1.2, Wrappers: 2, HandlerWork: 5, HandlerConds: 1}),
		MonoSpec("t-m", "T", 20_000, MonoParams{Sites: 32, Work: 5}),
	} {
		tr := s.Build()
		got := tr.Instructions()
		if got < 20_000 || got > 21_000 {
			t.Errorf("%s: instructions = %d, want ~20000", s.Name, got)
		}
		if len(tr.Records) == 0 {
			t.Errorf("%s: empty trace", s.Name)
		}
	}
}

func TestTracesAreValid(t *testing.T) {
	for _, s := range Suite(5_000)[:10] {
		tr := s.Build()
		for i, r := range tr.Records {
			if err := r.Validate(); err != nil {
				t.Fatalf("%s record %d: %v", s.Name, i, err)
			}
		}
	}
}

func TestCallReturnBalance(t *testing.T) {
	// Every return must target the instruction after some prior call, and
	// the stack never underflows (Build would panic otherwise). Verify by
	// replaying with a stack.
	s := VDispatchSpec("bal", "T", 30_000, VDispatchParams{
		Classes: 4, Sites: 3, Objects: 32, AlternatingSites: 2,
		MethodWork: 6, MethodConds: 2,
	})
	tr := s.Build()
	var stack []uint64
	returns := 0
	for i, r := range tr.Records {
		switch r.Type {
		case trace.DirectCall, trace.IndirectCall:
			stack = append(stack, r.PC+4)
		case trace.Return:
			if len(stack) == 0 {
				t.Fatalf("record %d: return with empty stack", i)
			}
			want := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if r.Target != want {
				t.Fatalf("record %d: return to %#x, want %#x", i, r.Target, want)
			}
			returns++
		}
	}
	if returns == 0 {
		t.Error("no returns in a vdispatch trace")
	}
}

func TestMobileTracesAreIndirectRich(t *testing.T) {
	suite := Suite(30_000)
	var mobile, server *trace.Stats
	for _, s := range suite {
		if s.Name == "long-mobile-08" {
			mobile = trace.Analyze(s.Build())
		}
		if s.Name == "403.gcc-1" {
			server = trace.Analyze(s.Build())
		}
	}
	if mobile == nil || server == nil {
		t.Fatal("expected workloads not found")
	}
	// The LONG-MOBILE-8 analog has more indirect branches than conditionals.
	if mobile.IndirectCount() <= mobile.Count[trace.CondDirect] {
		t.Errorf("long-mobile-08: indirect=%d <= cond=%d, want indirect-dominated",
			mobile.IndirectCount(), mobile.Count[trace.CondDirect])
	}
	// A gcc-like trace is conditional-dominated.
	if server.IndirectCount() >= server.Count[trace.CondDirect] {
		t.Errorf("403.gcc-1: indirect=%d >= cond=%d, want conditional-dominated",
			server.IndirectCount(), server.Count[trace.CondDirect])
	}
}

func TestPolymorphismVaries(t *testing.T) {
	suite := Suite(30_000)
	minPoly, maxPoly := 2.0, -1.0
	for _, s := range suite[:30] {
		st := trace.Analyze(s.Build())
		p := st.PolymorphicFraction()
		if p < minPoly {
			minPoly = p
		}
		if p > maxPoly {
			maxPoly = p
		}
	}
	if maxPoly-minPoly < 0.3 {
		t.Errorf("polymorphism range [%.2f, %.2f] too narrow; want diverse suite", minPoly, maxPoly)
	}
}

func TestSuiteHoldoutDisjointNames(t *testing.T) {
	main := Suite(1_000)
	hold := SuiteHoldout(1_000)
	if len(hold) != 12 {
		t.Fatalf("holdout has %d workloads, want 12", len(hold))
	}
	names := map[string]bool{}
	for _, s := range main {
		names[s.Name] = true
	}
	for _, s := range hold {
		if names[s.Name] {
			t.Errorf("holdout workload %q collides with main suite", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	suite := Suite(1_000)
	s, ok := ByName("252.eon", suite)
	if !ok || s.Name != "252.eon" {
		t.Error("ByName failed to find 252.eon")
	}
	if _, ok := ByName("no-such-workload", suite); ok {
		t.Error("ByName found a nonexistent workload")
	}
}

func TestZipfTable(t *testing.T) {
	cdf := zipfTable(8, 1.2)
	if len(cdf) != 8 {
		t.Fatalf("len = %d", len(cdf))
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i] < cdf[i-1] {
			t.Fatal("cdf not monotone")
		}
	}
	if cdf[7] != 1 {
		t.Errorf("cdf[last] = %v, want 1", cdf[7])
	}
	// Head must be the hottest item.
	if cdf[0] < 1.0/8 {
		t.Errorf("cdf[0] = %v; Zipf head should exceed uniform share", cdf[0])
	}
}

func TestDefaultBaseApplied(t *testing.T) {
	suite := Suite(0)
	if suite[0].Instructions <= 0 {
		t.Error("zero base did not apply a default")
	}
}

func TestSpecWithoutGeneratorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Build on generator-less spec did not panic")
		}
	}()
	Spec{Name: "empty"}.Build()
}

func TestRecursiveBalancedAndDeep(t *testing.T) {
	s := RecursiveSpec("rec", "T", 60_000, RecursiveParams{
		MaxDepth: 90, MinDepth: 10, VisitorClasses: 3, Work: 8,
	})
	tr := s.Build()
	var stack []uint64
	maxDepth := 0
	for i, r := range tr.Records {
		switch r.Type {
		case trace.DirectCall, trace.IndirectCall:
			stack = append(stack, r.PC+4)
			if len(stack) > maxDepth {
				maxDepth = len(stack)
			}
		case trace.Return:
			if len(stack) == 0 {
				t.Fatalf("record %d: unmatched return", i)
			}
			if r.Target != stack[len(stack)-1] {
				t.Fatalf("record %d: return target mismatch", i)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if maxDepth <= 64 {
		t.Errorf("max call depth %d, want > 64 to overflow the RAS", maxDepth)
	}
	st := trace.Analyze(tr)
	if st.Count[trace.Return] == 0 || st.IndirectCount() == 0 {
		t.Error("recursive trace missing returns or indirect calls")
	}
}

func TestRecursiveRASOverflowMispredicts(t *testing.T) {
	// Sanity at the trace level: depths beyond 64 guarantee that a
	// 64-entry RAS replayed over this trace would mispredict some returns.
	s := RecursiveSpec("rec2", "T", 60_000, RecursiveParams{
		MaxDepth: 100, MinDepth: 80, Work: 6,
	})
	tr := s.Build()
	// Emulate a bounded circular RAS.
	const cap = 64
	ras := make([]uint64, 0, cap)
	mispredicts := 0
	for _, r := range tr.Records {
		switch r.Type {
		case trace.DirectCall, trace.IndirectCall:
			if len(ras) == cap {
				ras = ras[1:]
			}
			ras = append(ras, r.PC+4)
		case trace.Return:
			if len(ras) == 0 {
				mispredicts++
				continue
			}
			top := ras[len(ras)-1]
			ras = ras[:len(ras)-1]
			if top != r.Target {
				mispredicts++
			}
		}
	}
	if mispredicts == 0 {
		t.Error("expected RAS overflow mispredictions at depth 80-100")
	}
}

func TestRecursiveConstructorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("invalid recursive params accepted")
		}
	}()
	RecursiveSpec("bad", "T", 1000, RecursiveParams{MaxDepth: 5, MinDepth: 10}).Build()
}

func TestMixedConstructorPanics(t *testing.T) {
	cases := []struct {
		name    string
		models  []model
		weights []int
	}{
		{"empty", nil, nil},
		{"mismatched", []model{&monoModel{}}, []int{1, 2}},
		{"zero weight", []model{&monoModel{}}, []int{0}},
	}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", c.name)
				}
			}()
			newMixed(c.models, c.weights, false)
		}()
	}
}

func TestMixedRoundRobinFollowsWeights(t *testing.T) {
	// A 2:1 round-robin over two mono models must interleave their PCs in
	// bursts of 2 and 1.
	rng := rand.New(rand.NewSource(1))
	a := newMono(MonoParams{Sites: 1, Work: 1, Bank: 0}, rng)
	b := newMono(MonoParams{Sites: 1, Work: 1, Bank: 1}, rng)
	m := newMixed([]model{a, b}, []int{2, 1}, false)
	e := newEmitter("rr", 10_000)
	banks := []int{}
	for i := 0; i < 9; i++ {
		before := e.cols.Len()
		m.step(e, rng)
		// Identify which bank emitted by inspecting the new records' PCs.
		for ri := before; ri < e.cols.Len(); ri++ {
			r := e.cols.Record(ri)
			if r.Type == trace.IndirectCall {
				bank := 0
				if r.PC >= 0x40_0000+1<<24 {
					bank = 1
				}
				banks = append(banks, bank)
				break
			}
		}
	}
	want := []int{0, 0, 1, 0, 0, 1, 0, 0, 1}
	for i := range want {
		if banks[i] != want[i] {
			t.Fatalf("burst pattern = %v, want %v", banks, want)
		}
	}
}

func TestMixedRandomModeDeterministicPerSeed(t *testing.T) {
	build := func() *trace.Trace {
		return mixedSpec("mix-rand", "T", 20_000, true,
			mixedPart{func(rng *rand.Rand) model {
				return newMono(MonoParams{Sites: 4, Work: 5, Bank: 0}, rng)
			}, 1},
			mixedPart{func(rng *rand.Rand) model {
				return newMono(MonoParams{Sites: 4, Work: 5, Bank: 1}, rng)
			}, 3},
		).Build()
	}
	a, b := build(), build()
	if len(a.Records) != len(b.Records) {
		t.Fatal("lengths differ")
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs", i)
		}
	}
}
