package workload

import (
	"encoding/json"
	"fmt"
	"math/rand"

	"blbp/internal/hashing"
)

// This file is the constructor surface the declarative spec layer
// (internal/wspec) compiles through: per-family Model factories on the
// exported parameter structs, the compositors that combine them, and the
// canonical fingerprint helpers both worlds share so a legacy constructor
// and a decoded spec of the same generator hash identically.

// SeedFor derives a workload's default seed from its name (stable across
// processes; suite salts append "#<salt>" before hashing).
func SeedFor(name string) int64 {
	var h uint64 = 0x243f6a8885a308d3
	for _, b := range []byte(name) {
		h = hashing.Combine(h, uint64(b))
	}
	return int64(h >> 1)
}

// CanonParams canonicalizes a leaf generator: the kind name plus the JSON
// encoding of its parameter struct (struct field order, so the encoding is
// deterministic). Composite canon strings (mixes, phase schedules) are
// built over these by internal/wspec.
func CanonParams(kind string, params any) string {
	b, err := json.Marshal(params)
	if err != nil {
		panic(fmt.Sprintf("workload: canonicalizing %s params: %v", kind, err))
	}
	return kind + "|" + string(b)
}

// FingerprintCanon hashes a canonicalized generator description to the
// spec fingerprint carried by Identity and spill headers.
func FingerprintCanon(canon string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(canon); i++ {
		h = (h ^ uint64(canon[i])) * prime64
	}
	return h
}

// New constructs the interpreter model for the parameters.
func (p InterpreterParams) New(rng *rand.Rand) Model { return newInterpreter(p, rng) }

// New constructs the virtual-dispatch model for the parameters.
func (p VDispatchParams) New(rng *rand.Rand) Model { return newVDispatch(p, rng) }

// New constructs the switch/parser model for the parameters.
func (p SwitcherParams) New(rng *rand.Rand) Model { return newSwitcher(p, rng) }

// New constructs the event-loop model for the parameters.
func (p CallbacksParams) New(rng *rand.Rand) Model { return newCallbacks(p, rng) }

// New constructs the monomorphic-calls model for the parameters.
func (p MonoParams) New(rng *rand.Rand) Model { return newMono(p, rng) }

// New constructs the recursion-heavy model for the parameters.
func (p RecursiveParams) New(rng *rand.Rand) Model { return newRecursive(p, rng) }

// NewMixed composes models with integer interleave weights: model i runs
// weights[i] steps per round-robin round, or is chosen with probability
// proportional to its weight when random is true. Panics on empty or
// mismatched inputs and non-positive weights (spec validation catches these
// before compiled specs get here).
func NewMixed(models []Model, weights []int, random bool) Model {
	return newMixed(models, weights, random)
}

// Phase is one segment of a phase schedule: Model runs until the trace's
// instruction count reaches Until. Until 0 means "to the end of the trace"
// and is only meaningful on the last phase.
type Phase struct {
	Until int64
	Model Model
}

// NewPhases composes models into a piecewise schedule over the instruction
// budget: the first phase whose boundary has not been reached steps.
// Boundaries are absolute instruction counts and must be increasing; a
// phase whose models overrun their boundary slightly (a step emits several
// records) simply hands over at the next step.
func NewPhases(phases []Phase) Model {
	if len(phases) == 0 {
		panic("workload: phase schedule needs at least one phase")
	}
	return &phasesModel{phases: phases}
}

type phasesModel struct {
	phases []Phase
	cur    int
}

func (m *phasesModel) step(e *emitter, rng *rand.Rand) {
	for m.cur < len(m.phases)-1 && m.phases[m.cur].Until > 0 && e.instr >= m.phases[m.cur].Until {
		m.cur++
	}
	m.phases[m.cur].Model.step(e, rng)
}

// WithRng binds m to its own random stream: steps use rng instead of the
// shared build rng, so a multi-client mix can give each client an
// independent, per-client-seeded stream whose draws are unaffected by how
// the clients interleave.
func WithRng(m Model, rng *rand.Rand) Model {
	return &seededModel{m: m, rng: rng}
}

type seededModel struct {
	m   Model
	rng *rand.Rand
}

func (s *seededModel) step(e *emitter, _ *rand.Rand) { s.m.step(e, s.rng) }
