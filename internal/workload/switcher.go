package workload

import "math/rand"

// SwitcherParams models a parser/state-machine with a hot switch statement:
// the token stream follows a first-order Markov chain whose dominant
// transitions are deterministic, so the dispatch is predictable from the
// previous target alone; TransitionNoise controls how often a non-dominant
// successor is taken.
//
// This family stands in for gcc/sjeng-like SPEC workloads (jump tables,
// parser loops).
type SwitcherParams struct {
	// Tokens is the number of token kinds (switch cases).
	Tokens int
	// TransitionNoise is the probability of leaving the dominant
	// successor chain.
	TransitionNoise float64
	// CaseWork and CaseConds shape each case body.
	CaseWork  int
	CaseConds int
	// CondNoise is the probability a case conditional is random.
	CondNoise float64
	// MonoCalls monomorphic helper calls per token from a MonoSites pool.
	MonoCalls int
	MonoSites int
	// Bank separates address spaces.
	Bank int
}

type switcherModel struct {
	p     SwitcherParams
	seq   []int // the deterministic token stream (one period)
	cases []uint64
	mono  monoHelpers
	pos   int
	tok   int
}

func newSwitcher(p SwitcherParams, rng *rand.Rand) *switcherModel {
	if p.Tokens <= 1 {
		panic("workload: switcher needs at least 2 tokens")
	}
	m := &switcherModel{p: p}
	// The token stream is a fixed Zipf-weighted sequence: hot tokens
	// recur (real parsers see mostly identifiers/operators), cold cases
	// appear occasionally. Period 4x the token count.
	cdf := zipfTable(p.Tokens, 1.2)
	m.seq = make([]int, 4*p.Tokens)
	for i := range m.seq {
		m.seq[i] = drawCDF(cdf, rng)
	}
	m.tok = m.seq[0]
	m.cases = make([]uint64, p.Tokens)
	for i := range m.cases {
		m.cases[i] = funcAddr(p.Bank, 32+i)
	}
	m.mono = newMonoHelpers(p.Bank, p.MonoSites)
	return m
}

func (m *switcherModel) step(e *emitter, rng *rand.Rand) {
	loopPC := funcAddr(m.p.Bank, 0)
	switchPC := funcAddr(m.p.Bank, 1)
	e.cond(loopPC, true)
	e.work(2)
	e.ijump(switchPC, m.cases[m.tok])
	e.work(m.p.CaseWork / 2)
	innerLoop(e, m.cases[m.tok]+0x100, 1+m.tok%4, m.p.CaseWork/4+2)
	for j := 0; j < m.p.CaseConds; j++ {
		taken := (m.tok+j)%2 == 0
		if m.p.CondNoise > 0 && rng.Float64() < m.p.CondNoise {
			taken = rng.Intn(2) == 0
		}
		e.cond(m.cases[m.tok]+8+uint64(j)*8, taken)
	}
	m.mono.emit(e, m.p.MonoCalls, m.tok)
	m.pos++
	if m.pos >= len(m.seq) {
		m.pos = 0
	}
	if m.p.TransitionNoise > 0 && rng.Float64() < m.p.TransitionNoise {
		m.tok = rng.Intn(m.p.Tokens)
	} else {
		m.tok = m.seq[m.pos]
	}
}
