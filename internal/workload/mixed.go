package workload

import "math/rand"

// mixedModel interleaves several sub-models. Interleaving can be
// deterministic (weighted round-robin, preserving each model's history
// periodicity) or random (injecting alignment noise between the models'
// contributions to global history, as independent program phases do).
type mixedModel struct {
	models  []Model
	weights []int
	random  bool
	// round-robin state
	cursor int
	credit int
}

// newMixed composes models with integer weights (model i runs weights[i]
// steps per round, or is chosen with probability proportional to its weight
// when random is true).
func newMixed(models []Model, weights []int, random bool) *mixedModel {
	if len(models) == 0 || len(models) != len(weights) {
		panic("workload: mixed needs matching non-empty models and weights")
	}
	total := 0
	for _, w := range weights {
		if w <= 0 {
			panic("workload: mixed weights must be positive")
		}
		total += w
	}
	return &mixedModel{models: models, weights: weights, random: random}
}

func (m *mixedModel) step(e *emitter, rng *rand.Rand) {
	if m.random {
		total := 0
		for _, w := range m.weights {
			total += w
		}
		pick := rng.Intn(total)
		for i, w := range m.weights {
			if pick < w {
				m.models[i].step(e, rng)
				return
			}
			pick -= w
		}
		return
	}
	if m.credit >= m.weights[m.cursor] {
		m.credit = 0
		m.cursor = (m.cursor + 1) % len(m.models)
	}
	m.credit++
	m.models[m.cursor].step(e, rng)
}
