// Package workload synthesizes branch traces that stand in for the paper's
// proprietary inputs (SPEC simpoints and Samsung CBP-5 traces; see DESIGN.md
// §3 for the substitution rationale). Each generator models a program-shaped
// control-flow process — interpreter dispatch, virtual dispatch, switch
// parsing, callback tables — parameterized by seed, so every trace is
// deterministic and the full 88-workload suite mirrors Table 1's categories.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"blbp/internal/trace"
)

// instructionSize matches the engine's convention: return address is call
// PC + 4.
const instructionSize = 4

// emitter builds a columnar trace while tracking straight-line instruction
// counts and a call stack so call/return pairs stay balanced. Generators
// emit columns natively (trace.Columns is what the replay engine consumes);
// Spec.Build materializes the record-slice form for callers that want it.
type emitter struct {
	cols    *trace.Columns
	pending int64 // straight-line instructions since the last branch
	instr   int64
	limit   int64
	stack   []uint64
}

func newEmitter(name string, limit int64) *emitter {
	return &emitter{cols: trace.NewColumns(name, 0), limit: limit}
}

// done reports whether the instruction budget is exhausted.
func (e *emitter) done() bool { return e.instr >= e.limit }

// work accounts n straight-line (non-branch) instructions.
func (e *emitter) work(n int) {
	if n > 0 {
		e.pending += int64(n)
	}
}

func (e *emitter) emit(rec trace.Record) {
	const maxPending = 1 << 20
	for e.pending > maxPending {
		// Extremely long straight-line runs are split across records via
		// zero-cost filler conditional branches; in practice generators
		// never get here, but the guard keeps InstrBefore in uint32 range.
		e.pending -= maxPending
		e.cols.Append(trace.Record{PC: rec.PC - 8, Target: rec.PC - 4, InstrBefore: maxPending, Type: trace.CondDirect})
		e.instr += maxPending + 1
	}
	rec.InstrBefore = uint32(e.pending)
	e.instr += e.pending + 1
	e.pending = 0
	e.cols.Append(rec)
}

// cond emits a conditional branch.
func (e *emitter) cond(pc uint64, taken bool) {
	target := pc + instructionSize
	if taken {
		target = pc + 0x20
	}
	e.emit(trace.Record{PC: pc, Target: target, Type: trace.CondDirect, Taken: taken})
}

// jump emits an unconditional direct jump.
func (e *emitter) jump(pc, target uint64) {
	e.emit(trace.Record{PC: pc, Target: target, Type: trace.UncondDirect, Taken: true})
}

// call emits a direct call and pushes the return address.
func (e *emitter) call(pc, fn uint64) {
	e.emit(trace.Record{PC: pc, Target: fn, Type: trace.DirectCall, Taken: true})
	e.stack = append(e.stack, pc+instructionSize)
}

// icall emits an indirect call and pushes the return address.
func (e *emitter) icall(pc, fn uint64) {
	e.emit(trace.Record{PC: pc, Target: fn, Type: trace.IndirectCall, Taken: true})
	e.stack = append(e.stack, pc+instructionSize)
}

// ijump emits an indirect jump.
func (e *emitter) ijump(pc, target uint64) {
	e.emit(trace.Record{PC: pc, Target: target, Type: trace.IndirectJump, Taken: true})
}

// ret emits a return to the matching call site. It panics on an unbalanced
// stack, which is a generator bug.
func (e *emitter) ret(pc uint64) {
	if len(e.stack) == 0 {
		panic("workload: return without matching call")
	}
	target := e.stack[len(e.stack)-1]
	e.stack = e.stack[:len(e.stack)-1]
	e.emit(trace.Record{PC: pc, Target: target, Type: trace.Return, Taken: true})
}

// Model is one program-shaped control-flow process; step emits one logical
// iteration (a dispatch, an object visit, a parsed token, ...). The
// interface is sealed — implementations live in this package and are
// obtained from the parameter-struct factories (InterpreterParams.New, ...)
// and the compositors (NewMixed, NewPhases, WithRng).
type Model interface {
	step(e *emitter, rng *rand.Rand)
}

// innerLoop emits a counted inner loop: trips taken back-edges plus the
// final not-taken exit, with workPer straight-line instructions per
// iteration. These predictable conditionals provide the conditional-branch
// bulk real traces have (the paper's Fig. 1 mix) and space indirect
// branches apart.
func innerLoop(e *emitter, pc uint64, trips, workPer int) {
	for t := 0; t < trips; t++ {
		e.work(workPer)
		e.cond(pc, true)
	}
	e.work(workPer)
	e.cond(pc, false)
}

// Spec names one fully-parameterized workload of the suite.
type Spec struct {
	// Name is the unique workload name (e.g. "mobile-s-07").
	Name string
	// Category mirrors Table 1's benchmark sources.
	Category string
	// Seed drives all generator randomness.
	Seed int64
	// Instructions is the trace length.
	Instructions int64
	// Fingerprint is an FNV-64a hash of the canonicalized generator
	// structure and parameters (see CanonParams / FingerprintCanon). Two
	// specs with equal Name, Seed and Instructions but different generator
	// parameters — possible once specs are user-authored data — carry
	// different fingerprints, so caches never serve one the other's trace.
	// Zero means "unknown" (pre-fingerprint spill files decode to it); the
	// cache treats zero as a legacy wildcard on load, never on write.
	Fingerprint uint64
	// build constructs the workload's models.
	build func(rng *rand.Rand) Model
	// buildCols, when set, short-circuits BuildColumns entirely (replay
	// specs that decode a recorded trace instead of running a generator).
	buildCols func() *trace.Columns
}

// NewSpec constructs a generator-backed Spec. It is the bridge the
// declarative spec layer (internal/wspec) compiles through; direct users of
// this package normally reach for the per-family constructors instead.
func NewSpec(name, category string, seed, instructions int64, fingerprint uint64, build func(rng *rand.Rand) Model) Spec {
	return Spec{
		Name: name, Category: category, Seed: seed, Instructions: instructions,
		Fingerprint: fingerprint, build: build,
	}
}

// NewReplaySpec constructs a Spec whose trace comes from load (typically a
// recorded spill file) instead of a generator. Instructions and fingerprint
// describe the recorded trace; load runs once per BuildColumns call.
func NewReplaySpec(name, category string, seed, instructions int64, fingerprint uint64, load func() *trace.Columns) Spec {
	return Spec{
		Name: name, Category: category, Seed: seed, Instructions: instructions,
		Fingerprint: fingerprint, buildCols: load,
	}
}

// Identity is a spec's comparable cache identity: name, seed (which carries
// any suite salt), instruction budget, and the generator-parameter
// fingerprint. Equal identities build byte-identical traces; the trace
// cache keys on it. Fingerprint 0 marks identities read from
// pre-fingerprint spill headers.
type Identity struct {
	Name         string
	Seed         int64
	Instructions int64
	Fingerprint  uint64
}

// Identity returns the spec's cache identity.
func (s Spec) Identity() Identity {
	return Identity{Name: s.Name, Seed: s.Seed, Instructions: s.Instructions, Fingerprint: s.Fingerprint}
}

// Build synthesizes the trace for the spec in record-slice form (a
// conversion shim over BuildColumns, kept for tests and external callers).
func (s Spec) Build() *trace.Trace {
	return s.BuildColumns().Trace()
}

// BuildColumns synthesizes the trace for the spec in columnar form — what
// the replay engine and the trace cache consume directly.
func (s Spec) BuildColumns() *trace.Columns {
	if s.buildCols != nil {
		return s.buildCols()
	}
	if s.build == nil {
		panic(fmt.Sprintf("workload: spec %q has no generator", s.Name))
	}
	rng := rand.New(rand.NewSource(s.Seed))
	m := s.build(rng)
	e := newEmitter(s.Name, s.Instructions)
	for !e.done() {
		m.step(e, rng)
	}
	// Unwind any live call stack so traces end balanced. The return PCs
	// live in a bank reserved for the unwind (generator banks are bounded
	// by MaxBank), so they can never alias a generator's call sites — the
	// old fixed 0x3FF000+i*4 sequence could collide with bank-0 addresses
	// once an unwound stack ran deep enough.
	for i := len(e.stack); i > 0; i-- {
		e.ret(funcAddr(unwindBank, 0) + uint64(i)*instructionSize)
	}
	return e.cols
}

// MaxBank bounds the bank index a generator model may occupy (exclusive).
// Bank unwindBank — the first index past the generator range — is reserved
// for BuildColumns' end-of-trace stack unwind.
const (
	MaxBank    = 64
	unwindBank = MaxBank
)

// funcAddr returns the synthetic address of function index i in bank b.
// Banks keep the address spaces of independent models disjoint. The 0x48
// stride makes low-order target bits (including bit 3, which BLBP's local
// histories record) vary across functions, as real code layouts do — a
// uniform power-of-two stride would freeze those bits artificially.
func funcAddr(bank, i int) uint64 {
	return 0x40_0000 + uint64(bank)<<24 + uint64(i)*0x48
}

// zipfTable builds a cumulative distribution over n items with a Zipf-like
// skew (item 0 hottest); draw with drawCDF.
func zipfTable(n int, skew float64) []float64 {
	weights := make([]float64, n)
	total := 0.0
	for i := range weights {
		w := 1.0
		for s := skew; s >= 1; s-- {
			w /= float64(i + 1)
		}
		if frac := skew - float64(int(skew)); frac > 0 {
			// Linear interpolation of the fractional exponent keeps the
			// table cheap without math.Pow in the loop.
			w *= 1 - frac + frac/float64(i+1)
		}
		weights[i] = w
		total += w
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cdf[i] = acc
	}
	cdf[n-1] = 1
	return cdf
}

// drawCDF draws an index from a cumulative distribution: the first i with
// x <= cdf[i]. The binary search returns exactly the index the former
// linear scan did (both find the first entry >= x), so traces are
// unchanged; event-loop models draw per step, so on wide tables (e.g. a
// 96-handler callbacks model) the O(log n) search is the difference
// between scanning half the table per event and three comparisons.
func drawCDF(cdf []float64, rng *rand.Rand) int {
	x := rng.Float64()
	if i := sort.SearchFloat64s(cdf, x); i < len(cdf) {
		return i
	}
	return len(cdf) - 1
}
