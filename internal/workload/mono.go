package workload

import "math/rand"

// MonoParams models indirect-call-heavy but monomorphic code: many static
// call sites, each with exactly one target (PLT stubs, non-overridden
// virtuals, C callbacks registered once). It stresses target-storage
// capacity (static footprint) rather than history.
type MonoParams struct {
	// Sites is the number of static (site, target) pairs.
	Sites int
	// Work is straight-line work per call.
	Work int
	// Bank separates address spaces.
	Bank int
}

type monoModel struct {
	p       MonoParams
	targets []uint64
	idx     int
}

func newMono(p MonoParams, rng *rand.Rand) *monoModel {
	if p.Sites <= 0 {
		panic("workload: mono needs positive Sites")
	}
	m := &monoModel{p: p}
	m.targets = make([]uint64, p.Sites)
	for i := range m.targets {
		m.targets[i] = funcAddr(p.Bank, 4096+i)
	}
	return m
}

func (m *monoModel) step(e *emitter, rng *rand.Rand) {
	loopPC := funcAddr(m.p.Bank, 0)
	e.cond(loopPC, m.idx != 0)
	sitePC := funcAddr(m.p.Bank, 1+m.idx)
	fn := m.targets[m.idx]
	e.icall(sitePC, fn)
	e.work(m.p.Work)
	e.ret(fn + 8)
	m.idx++
	if m.idx >= m.p.Sites {
		m.idx = 0
	}
}
