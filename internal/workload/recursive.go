package workload

import "math/rand"

// RecursiveParams models recursion-heavy code (tree traversals, recursive
// descent parsers): deep chains of calls followed by matching returns, some
// of them through function pointers (polymorphic visitors). Depths beyond
// the engine's return-address-stack capacity produce the return
// mispredictions real RAS-overflow studies observe; the family keeps the
// rest of the suite from presenting an unrealistically perfect RAS.
type RecursiveParams struct {
	// MaxDepth is the deepest recursion (beyond 64 overflows the default
	// RAS).
	MaxDepth int
	// MinDepth is the shallowest recursion per burst.
	MinDepth int
	// VisitorClasses > 0 makes every other level dispatch through a
	// polymorphic visitor site with this many implementations.
	VisitorClasses int
	// Work is straight-line instructions per level.
	Work int
	// Bank separates address spaces.
	Bank int
}

type recursiveModel struct {
	p        RecursiveParams
	visitors []uint64
	depthSeq []int // deterministic per-seed sequence of burst depths
	pos      int
}

func newRecursive(p RecursiveParams, rng *rand.Rand) *recursiveModel {
	if p.MaxDepth <= 0 || p.MinDepth <= 0 || p.MinDepth > p.MaxDepth {
		panic("workload: recursive needs 0 < MinDepth <= MaxDepth")
	}
	m := &recursiveModel{p: p}
	if p.VisitorClasses > 0 {
		m.visitors = make([]uint64, p.VisitorClasses)
		for i := range m.visitors {
			m.visitors[i] = funcAddr(p.Bank, 128+i)
		}
	}
	m.depthSeq = make([]int, 32)
	for i := range m.depthSeq {
		m.depthSeq[i] = p.MinDepth + rng.Intn(p.MaxDepth-p.MinDepth+1)
	}
	return m
}

// step emits one full recursion burst: depth calls down, then depth returns
// back up.
func (m *recursiveModel) step(e *emitter, rng *rand.Rand) {
	depth := m.depthSeq[m.pos]
	m.pos = (m.pos + 1) % len(m.depthSeq)
	loopPC := funcAddr(m.p.Bank, 0)
	e.cond(loopPC, true)

	type frame struct{ fn uint64 }
	frames := make([]frame, 0, depth)
	for d := 0; d < depth; d++ {
		fn := funcAddr(m.p.Bank, 256+d)
		sitePC := fn - 0x10
		if m.visitors != nil && d%2 == 1 {
			// Polymorphic visitor dispatch: class cycles with depth.
			vf := m.visitors[(d/2)%len(m.visitors)]
			e.work(m.p.Work / 2)
			e.icall(sitePC, vf)
			frames = append(frames, frame{fn: vf})
			continue
		}
		e.work(m.p.Work / 2)
		e.call(sitePC, fn)
		frames = append(frames, frame{fn: fn})
	}
	// Base case, then unwind.
	e.work(m.p.Work)
	e.cond(funcAddr(m.p.Bank, 1), false)
	for d := depth - 1; d >= 0; d-- {
		e.work(m.p.Work / 2)
		e.ret(frames[d].fn + 0x20)
	}
}
