package workload

import (
	"fmt"
	"math/rand"

	"blbp/internal/hashing"
)

// Categories mirroring the paper's Table 1 benchmark sources.
const (
	CatSPEC2000    = "SPEC CPU2000"
	CatSPEC2006    = "SPEC CPU2006"
	CatSPEC2017    = "SPEC CPU2017"
	CatMobileShort = "CBP-5 SHORT-MOBILE"
	CatMobileLong  = "CBP-5 LONG-MOBILE"
	CatServerShort = "CBP-5 SHORT-SERVER"
	CatServerLong  = "CBP-5 LONG-SERVER"
)

func seedFor(name string) int64 {
	var h uint64 = 0x243f6a8885a308d3
	for _, b := range []byte(name) {
		h = hashing.Combine(h, uint64(b))
	}
	return int64(h >> 1)
}

// InterpreterSpec builds a Spec around a single interpreter model.
func InterpreterSpec(name, category string, instructions int64, p InterpreterParams) Spec {
	return Spec{
		Name: name, Category: category, Seed: seedFor(name), Instructions: instructions,
		build: func(rng *rand.Rand) model { return newInterpreter(p, rng) },
	}
}

// SwitcherSpec builds a Spec around a single switch/parser model.
func SwitcherSpec(name, category string, instructions int64, p SwitcherParams) Spec {
	return Spec{
		Name: name, Category: category, Seed: seedFor(name), Instructions: instructions,
		build: func(rng *rand.Rand) model { return newSwitcher(p, rng) },
	}
}

// VDispatchSpec builds a Spec around a single virtual-dispatch model.
func VDispatchSpec(name, category string, instructions int64, p VDispatchParams) Spec {
	return Spec{
		Name: name, Category: category, Seed: seedFor(name), Instructions: instructions,
		build: func(rng *rand.Rand) model { return newVDispatch(p, rng) },
	}
}

// CallbacksSpec builds a Spec around a single event-loop model.
func CallbacksSpec(name, category string, instructions int64, p CallbacksParams) Spec {
	return Spec{
		Name: name, Category: category, Seed: seedFor(name), Instructions: instructions,
		build: func(rng *rand.Rand) model { return newCallbacks(p, rng) },
	}
}

// MonoSpec builds a Spec around a monomorphic-calls model.
func MonoSpec(name, category string, instructions int64, p MonoParams) Spec {
	return Spec{
		Name: name, Category: category, Seed: seedFor(name), Instructions: instructions,
		build: func(rng *rand.Rand) model { return newMono(p, rng) },
	}
}

// mixedPart pairs a model constructor with an interleave weight.
type mixedPart struct {
	make   func(rng *rand.Rand) model
	weight int
}

func mixedSpec(name, category string, instructions int64, random bool, parts ...mixedPart) Spec {
	return Spec{
		Name: name, Category: category, Seed: seedFor(name), Instructions: instructions,
		build: func(rng *rand.Rand) model {
			models := make([]model, len(parts))
			weights := make([]int, len(parts))
			for i, p := range parts {
				models[i] = p.make(rng)
				weights[i] = p.weight
			}
			return newMixed(models, weights, random)
		},
	}
}

// Suite returns the full 88-workload evaluation suite, mirroring Table 1's
// category counts: 1 SPEC CPU2000, 12 SPEC CPU2006, 7 SPEC CPU2017, and 68
// CBP-5-style traces (36 mobile, 32 server). base scales trace lengths:
// SHORT traces run ~base instructions, LONG traces ~2x base, SPEC ~1.5x.
func Suite(base int64) []Spec { return SuiteSeeded(base, "") }

// SuiteSeeded is Suite with a seed salt: every workload keeps its name and
// parameters but draws entirely different random content (programs, class
// arrays, token streams, noise). Used by the seed-sensitivity experiment to
// check that aggregate results are not artifacts of one random draw.
func SuiteSeeded(base int64, salt string) []Spec {
	specs := suiteSpecs(base)
	if salt != "" {
		for i := range specs {
			specs[i].Seed = seedFor(specs[i].Name + "#" + salt)
		}
	}
	return specs
}

func suiteSpecs(base int64) []Spec {
	if base <= 0 {
		base = 400_000
	}
	spec := base * 3 / 2
	long := base * 2
	specs := make([]Spec, 0, 88)

	// --- SPEC CPU2000: 252.eon (C++ ray tracer, moderate polymorphism).
	specs = append(specs, VDispatchSpec("252.eon", CatSPEC2000, spec, VDispatchParams{
		Classes: 6, Sites: 4, Objects: 24, TypeNoise: 0.002,
		MethodWork: 210, MethodConds: 3, CondNoise: 0.004,
		MonoCalls: 1, MonoSites: 40,
	}))

	// --- SPEC CPU2006 (12).
	for i := 0; i < 3; i++ {
		specs = append(specs, InterpreterSpec(fmt.Sprintf("400.perlbench-%d", i+1), CatSPEC2006, spec, InterpreterParams{
			Opcodes: []int{110, 130, 150}[i], ProgramLen: []int{280, 350, 420}[i],
			Work: 180, CondPerHandler: 2,
			CondNoise: 0.003 + 0.002*float64(i), DispatchNoise: 0.002 + 0.0015*float64(i),
			MonoCalls: 1, MonoSites: 30 + 20*i,
		}))
	}
	for i := 0; i < 4; i++ {
		specs = append(specs, SwitcherSpec(fmt.Sprintf("403.gcc-%d", i+1), CatSPEC2006, spec, SwitcherParams{
			Tokens: []int{9, 11, 13, 96}[i], TransitionNoise: 0.003 + 0.003*float64(i),
			CaseWork: 210, CaseConds: 3, CondNoise: 0.004,
			MonoCalls: 2, MonoSites: 120 + 40*i,
		}))
	}
	for i := 0; i < 2; i++ {
		specs = append(specs, VDispatchSpec(fmt.Sprintf("453.povray-%d", i+1), CatSPEC2006, spec, VDispatchParams{
			Classes: 4 + 2*i, Sites: 3, Objects: 20 + 12*i, TypeNoise: 0.004,
			MethodWork: 240, MethodConds: 3, CondNoise: 0.004,
			MonoCalls: 2, MonoSites: 60,
		}))
	}
	for i := 0; i < 3; i++ {
		specs = append(specs, mixedSpec(fmt.Sprintf("458.sjeng-%d", i+1), CatSPEC2006, spec, false,
			mixedPart{func(i int) func(rng *rand.Rand) model {
				return func(rng *rand.Rand) model {
					return newSwitcher(SwitcherParams{Tokens: 10, TransitionNoise: 0.015 + 0.005*float64(i), CaseWork: 180, CaseConds: 3, CondNoise: 0.006, MonoCalls: 1, MonoSites: 50, Bank: 0}, rng)
				}
			}(i), 72},
			mixedPart{func(rng *rand.Rand) model {
				return newCallbacks(CallbacksParams{Events: 5, Skew: 2.4, Wrappers: 3, HandlerWork: 180, HandlerConds: 2, Bank: 1}, rng)
			}, 24},
		))
	}

	// --- SPEC CPU2017 (7).
	for i := 0; i < 2; i++ {
		specs = append(specs, InterpreterSpec(fmt.Sprintf("600.perlbench-%d", i+1), CatSPEC2017, spec, InterpreterParams{
			Opcodes: []int{130, 150}[i], ProgramLen: []int{360, 420}[i],
			Work: 180, CondPerHandler: 2,
			CondNoise: 0.004, DispatchNoise: 0.0025 + 0.002*float64(i),
			MonoCalls: 1, MonoSites: 50,
		}))
	}
	for i := 0; i < 3; i++ {
		specs = append(specs, SwitcherSpec(fmt.Sprintf("602.gcc-%d", i+1), CatSPEC2017, spec, SwitcherParams{
			Tokens: []int{11, 14, 80}[i], TransitionNoise: 0.004 + 0.003*float64(i),
			CaseWork: 210, CaseConds: 3, CondNoise: 0.004,
			MonoCalls: 2, MonoSites: 200,
		}))
	}
	for i := 0; i < 2; i++ {
		specs = append(specs, VDispatchSpec(fmt.Sprintf("623.xalancbmk-%d", i+1), CatSPEC2017, spec, VDispatchParams{
			Classes: []int{8, 24}[i], Sites: []int{6, 96}[i], Objects: []int{36, 192}[i], TypeNoise: 0.003,
			AlternatingSites: 1,
			MethodWork:       180, MethodConds: 2, CondNoise: 0.004,
			MonoCalls: 1, MonoSites: 80,
		}))
	}

	// --- CBP-5 SHORT-MOBILE (24): Java-like, indirect-rich. A third are
	// phase-mixed (vdispatch + interpreter in long bursts); the rest are
	// single-family with varied footprints.
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("short-mobile-%02d", i+1)
		vdp := VDispatchParams{
			Classes: 3 + i%4, Sites: 3 + i%3, Objects: 16 + 8*(i%3),
			TypeNoise:        0.001 * float64(i%4),
			AlternatingSites: map[bool]int{true: 1 + i%2, false: 0}[i%4 == 0],
			MethodWork:       84, MethodConds: 2, CondNoise: 0.003 + 0.001*float64(i%3),
			MonoCalls: i % 3, MonoSites: 20 + 10*(i%5),
			Bank: 0,
		}
		inp := InterpreterParams{
			Opcodes: []int{12, 14, 96, 16, 10, 14, 18, 12, 120, 14, 16, 11}[i%12], ProgramLen: []int{24, 32, 260, 40, 28, 36, 48, 24, 320, 32, 40, 30}[i%12],
			Work: 72, CondPerHandler: 1,
			CondNoise: 0.003, DispatchNoise: 0.0015 + 0.001*float64(i%4),
			MonoCalls: 1, MonoSites: 25,
			Bank: 1,
		}
		switch i % 3 {
		case 0:
			vd, ip := vdp, inp
			specs = append(specs, mixedSpec(name, CatMobileShort, base, false,
				mixedPart{func(rng *rand.Rand) model { return newVDispatch(vd, rng) }, 150},
				mixedPart{func(rng *rand.Rand) model { return newInterpreter(ip, rng) }, 100},
			))
		case 1:
			specs = append(specs, VDispatchSpec(name, CatMobileShort, base, vdp))
		default:
			specs = append(specs, InterpreterSpec(name, CatMobileShort, base, inp))
		}
	}

	// --- CBP-5 LONG-MOBILE (12): bigger footprints; index 8 is the
	// LONG-MOBILE-8 analog with more indirect branches than conditionals.
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("long-mobile-%02d", i+1)
		vdp := VDispatchParams{
			Classes: 4 + i%5, Sites: 4 + i%4, Objects: 24 + 16*(i%3),
			TypeNoise:        0.001 * float64(i%5),
			AlternatingSites: map[bool]int{true: 1 + i%2, false: 0}[i%4 == 0],
			MethodWork:       90, MethodConds: 2, CondNoise: 0.004,
			MonoCalls: 1 + i%2, MonoSites: 40 + 20*(i%4),
			Bank: 0,
		}
		if i == 7 { // long-mobile-08: indirect-dominated
			vdp.MethodConds = 0
			vdp.MethodWork = 12
			vdp.AlternatingSites = 4
			vdp.MonoCalls = 2
		}
		inp := InterpreterParams{
			Opcodes: []int{14, 12, 110, 15, 18, 13}[i%6], ProgramLen: []int{36, 32, 300, 44, 56, 40}[i%6],
			Work: 66, CondPerHandler: 1,
			CondNoise: 0.003, DispatchNoise: 0.002,
			MonoCalls: 1, MonoSites: 30,
			Bank: 1,
		}
		switch i % 3 {
		case 0:
			vd, ip := vdp, inp
			specs = append(specs, mixedSpec(name, CatMobileLong, long, false,
				mixedPart{func(rng *rand.Rand) model { return newVDispatch(vd, rng) }, 150},
				mixedPart{func(rng *rand.Rand) model { return newInterpreter(ip, rng) }, 100},
			))
		case 1:
			specs = append(specs, VDispatchSpec(name, CatMobileLong, long, vdp))
		default:
			specs = append(specs, InterpreterSpec(name, CatMobileLong, long, inp))
		}
	}

	// --- CBP-5 SHORT-SERVER (20): request dispatch with random event
	// mixes, larger static footprints, harder tails.
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("short-server-%02d", i+1)
		specs = append(specs, mixedSpec(name, CatServerShort, base, false,
			mixedPart{func(i int) func(rng *rand.Rand) model {
				return func(rng *rand.Rand) model {
					return newCallbacks(CallbacksParams{
						Events: 4 + i%5, Skew: 2.0 + 0.2*float64(i%5),
						Wrappers: 4 + i%4, HandlerWork: 180, HandlerConds: 2,
						Bank: 0,
					}, rng)
				}
			}(i), 6},
			mixedPart{func(i int) func(rng *rand.Rand) model {
				return func(rng *rand.Rand) model {
					return newSwitcher(SwitcherParams{
						Tokens: []int{12, 16, 20, 24, 44, 28}[i%6], TransitionNoise: 0.003 + 0.0015*float64(i%5),
						CaseWork: 180, CaseConds: 3, CondNoise: 0.004,
						MonoCalls: 1, MonoSites: 60 + 30*(i%4),
						Bank: 1,
					}, rng)
				}
			}(i), 28},
			mixedPart{func(i int) func(rng *rand.Rand) model {
				return func(rng *rand.Rand) model {
					return newMono(MonoParams{Sites: 60 + 20*(i%4), Work: 120, Bank: 2}, rng)
				}
			}(i), 14},
		))
	}

	// --- CBP-5 LONG-SERVER (12).
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("long-server-%02d", i+1)
		specs = append(specs, mixedSpec(name, CatServerLong, long, false,
			mixedPart{func(i int) func(rng *rand.Rand) model {
				return func(rng *rand.Rand) model {
					return newCallbacks(CallbacksParams{
						Events: 5 + i%4, Skew: 2.2,
						Wrappers: 6, HandlerWork: 150, HandlerConds: 2,
						Bank: 0,
					}, rng)
				}
			}(i), 6},
			mixedPart{func(i int) func(rng *rand.Rand) model {
				return func(rng *rand.Rand) model {
					return newVDispatch(VDispatchParams{
						Classes: 5 + i%4, Sites: 6, Objects: 32,
						TypeNoise:  0.0015,
						MethodWork: 120, MethodConds: 2, CondNoise: 0.004,
						MonoCalls: 1, MonoSites: 100,
						Bank: 1,
					}, rng)
				}
			}(i), 28},
			mixedPart{func(i int) func(rng *rand.Rand) model {
				return func(rng *rand.Rand) model {
					return newMono(MonoParams{Sites: 80 + 30*(i%3), Work: 150, Bank: 2}, rng)
				}
			}(i), 14},
		))
	}

	return specs
}

// SuiteHoldout returns a 12-workload cross-validation suite with parameter
// and seed settings disjoint from Suite — the analog of the paper's CBP-4
// check that BLBP was not overtuned to its development traces.
func SuiteHoldout(base int64) []Spec {
	if base <= 0 {
		base = 400_000
	}
	specs := make([]Spec, 0, 12)
	for i := 0; i < 3; i++ {
		specs = append(specs, InterpreterSpec(fmt.Sprintf("holdout-interp-%d", i+1), "HOLDOUT", base, InterpreterParams{
			Opcodes: 11 + 5*i, ProgramLen: 28 + 20*i,
			Work: 165, CondPerHandler: 2,
			CondNoise: 0.012, DispatchNoise: 0.0015 + 0.0015*float64(i),
			MonoCalls: 1, MonoSites: 35,
		}))
	}
	for i := 0; i < 3; i++ {
		specs = append(specs, SwitcherSpec(fmt.Sprintf("holdout-switch-%d", i+1), "HOLDOUT", base, SwitcherParams{
			Tokens: 13 + 7*i, TransitionNoise: 0.004 + 0.0035*float64(i),
			CaseWork: 195, CaseConds: 3, CondNoise: 0.004,
			MonoCalls: 1, MonoSites: 90,
		}))
	}
	for i := 0; i < 3; i++ {
		specs = append(specs, VDispatchSpec(fmt.Sprintf("holdout-vdisp-%d", i+1), "HOLDOUT", base, VDispatchParams{
			Classes: 5 + 2*i, Sites: 3 + i, Objects: 20 + 14*i,
			TypeNoise:        0.0015,
			AlternatingSites: i,
			MethodWork:       165, MethodConds: 2, CondNoise: 0.004,
			MonoCalls: 1 + i%2, MonoSites: 45,
		}))
	}
	for i := 0; i < 3; i++ {
		specs = append(specs, mixedSpec(fmt.Sprintf("holdout-mixed-%d", i+1), "HOLDOUT", base, false,
			mixedPart{func(i int) func(rng *rand.Rand) model {
				return func(rng *rand.Rand) model {
					return newCallbacks(CallbacksParams{Events: 4 + i, Skew: 2.3, Wrappers: 3, HandlerWork: 165, HandlerConds: 2, Bank: 0}, rng)
				}
			}(i), 5},
			mixedPart{func(i int) func(rng *rand.Rand) model {
				return func(rng *rand.Rand) model {
					return newInterpreter(InterpreterParams{Opcodes: 14, ProgramLen: 26 + 14*i, Work: 135, CondPerHandler: 1, CondNoise: 0.004, DispatchNoise: 0.002, MonoCalls: 1, MonoSites: 40, Bank: 1}, rng)
				}
			}(i), 25},
		))
	}
	return specs
}

// ByName finds a spec by name in the given suites.
func ByName(name string, suites ...[]Spec) (Spec, bool) {
	for _, suite := range suites {
		for _, s := range suite {
			if s.Name == name {
				return s, true
			}
		}
	}
	return Spec{}, false
}

// RecursiveSpec builds a Spec around a recursion-heavy model.
func RecursiveSpec(name, category string, instructions int64, p RecursiveParams) Spec {
	return Spec{
		Name: name, Category: category, Seed: seedFor(name), Instructions: instructions,
		build: func(rng *rand.Rand) model { return newRecursive(p, rng) },
	}
}
