package workload

import "math/rand"

// Categories mirroring the paper's Table 1 benchmark sources.
const (
	CatSPEC2000    = "SPEC CPU2000"
	CatSPEC2006    = "SPEC CPU2006"
	CatSPEC2017    = "SPEC CPU2017"
	CatMobileShort = "CBP-5 SHORT-MOBILE"
	CatMobileLong  = "CBP-5 LONG-MOBILE"
	CatServerShort = "CBP-5 SHORT-SERVER"
	CatServerLong  = "CBP-5 LONG-SERVER"
)

// The paper-mirroring 88-workload suite and the 12-workload holdout live in
// internal/wspec as declarative specs (wspec.SuiteSpecs / HoldoutSpecs),
// compiled down to the []Spec this package defines. The per-family
// constructors below remain the programmatic path for single workloads —
// the public API (blbp.NewInterpreterWorkload, ...) and tests build
// through them — and compute the same canonical fingerprints the spec
// compiler does, so both paths share cache entries and spill files.

// InterpreterSpec builds a Spec around a single interpreter model.
func InterpreterSpec(name, category string, instructions int64, p InterpreterParams) Spec {
	return Spec{
		Name: name, Category: category, Seed: SeedFor(name), Instructions: instructions,
		Fingerprint: FingerprintCanon(CanonParams("interpreter", p)),
		build:       func(rng *rand.Rand) Model { return newInterpreter(p, rng) },
	}
}

// SwitcherSpec builds a Spec around a single switch/parser model.
func SwitcherSpec(name, category string, instructions int64, p SwitcherParams) Spec {
	return Spec{
		Name: name, Category: category, Seed: SeedFor(name), Instructions: instructions,
		Fingerprint: FingerprintCanon(CanonParams("switcher", p)),
		build:       func(rng *rand.Rand) Model { return newSwitcher(p, rng) },
	}
}

// VDispatchSpec builds a Spec around a single virtual-dispatch model.
func VDispatchSpec(name, category string, instructions int64, p VDispatchParams) Spec {
	return Spec{
		Name: name, Category: category, Seed: SeedFor(name), Instructions: instructions,
		Fingerprint: FingerprintCanon(CanonParams("vdispatch", p)),
		build:       func(rng *rand.Rand) Model { return newVDispatch(p, rng) },
	}
}

// CallbacksSpec builds a Spec around a single event-loop model.
func CallbacksSpec(name, category string, instructions int64, p CallbacksParams) Spec {
	return Spec{
		Name: name, Category: category, Seed: SeedFor(name), Instructions: instructions,
		Fingerprint: FingerprintCanon(CanonParams("callbacks", p)),
		build:       func(rng *rand.Rand) Model { return newCallbacks(p, rng) },
	}
}

// MonoSpec builds a Spec around a monomorphic-calls model.
func MonoSpec(name, category string, instructions int64, p MonoParams) Spec {
	return Spec{
		Name: name, Category: category, Seed: SeedFor(name), Instructions: instructions,
		Fingerprint: FingerprintCanon(CanonParams("mono", p)),
		build:       func(rng *rand.Rand) Model { return newMono(p, rng) },
	}
}

// RecursiveSpec builds a Spec around a recursion-heavy model.
func RecursiveSpec(name, category string, instructions int64, p RecursiveParams) Spec {
	return Spec{
		Name: name, Category: category, Seed: SeedFor(name), Instructions: instructions,
		Fingerprint: FingerprintCanon(CanonParams("recursive", p)),
		build:       func(rng *rand.Rand) Model { return newRecursive(p, rng) },
	}
}

// ByName finds a spec by name in the given suites.
func ByName(name string, suites ...[]Spec) (Spec, bool) {
	for _, suite := range suites {
		for _, s := range suite {
			if s.Name == name {
				return s, true
			}
		}
	}
	return Spec{}, false
}
