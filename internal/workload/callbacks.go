package workload

import "math/rand"

// CallbacksParams models an event loop dispatching through a function-
// pointer table. Event kinds are drawn independently at random from a
// Zipf-skewed distribution — the genuinely hard case where no history helps
// beyond guessing the hottest handler. A fraction of events route through
// dedicated monomorphic wrapper sites first (easy single-target indirect
// calls), as real event frameworks do.
//
// This family supplies the irreducible-misprediction tail that keeps suite
// MPKI away from zero, like the hardest CBP-5 server traces.
type CallbacksParams struct {
	// Events is the number of event kinds.
	Events int
	// Skew shapes the Zipf distribution (1.0 = classic, higher = hotter
	// head).
	Skew float64
	// Wrappers is the number of monomorphic wrapper sites.
	Wrappers int
	// HandlerWork and HandlerConds shape each handler.
	HandlerWork  int
	HandlerConds int
	// Bank separates address spaces.
	Bank int
}

type callbacksModel struct {
	p        CallbacksParams
	cdf      []float64
	handlers []uint64
	wrappers []uint64
}

func newCallbacks(p CallbacksParams, rng *rand.Rand) *callbacksModel {
	if p.Events <= 0 {
		panic("workload: callbacks needs positive Events")
	}
	m := &callbacksModel{p: p}
	m.cdf = zipfTable(p.Events, p.Skew)
	m.handlers = make([]uint64, p.Events)
	for i := range m.handlers {
		m.handlers[i] = funcAddr(p.Bank, 32+i)
	}
	m.wrappers = make([]uint64, p.Wrappers)
	for i := range m.wrappers {
		m.wrappers[i] = funcAddr(p.Bank, 1024+i)
	}
	return m
}

func (m *callbacksModel) step(e *emitter, rng *rand.Rand) {
	loopPC := funcAddr(m.p.Bank, 0)
	pollPC := funcAddr(m.p.Bank, 1)
	e.cond(loopPC, true)
	e.work(4)
	ev := drawCDF(m.cdf, rng)
	// Some events route through a per-event wrapper first; keying the
	// wrapper to the event keeps the wrapper site exactly as predictable
	// as the event stream itself.
	if len(m.wrappers) > 0 && ev%2 == 0 {
		w := m.wrappers[ev%len(m.wrappers)]
		e.icall(pollPC, w)
		e.work(8)
		e.ret(w + 8)
	}
	dispatchPC := funcAddr(m.p.Bank, 2)
	e.icall(dispatchPC, m.handlers[ev])
	e.work(m.p.HandlerWork / 2)
	innerLoop(e, m.handlers[ev]+0x100, 1+ev%3, m.p.HandlerWork/4+2)
	for j := 0; j < m.p.HandlerConds; j++ {
		e.cond(m.handlers[ev]+8+uint64(j)*8, (ev+j)%4 != 0)
	}
	e.ret(m.handlers[ev] + 8 + uint64(m.p.HandlerConds)*8)
}
