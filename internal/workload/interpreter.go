package workload

import "math/rand"

// InterpreterParams models a bytecode interpreter: a dispatch loop whose
// indirect jump selects the handler for the next opcode. The backbone is a
// fixed bytecode program (making the dispatch sequence periodic and thus
// learnable from history), with two noise knobs that inject the genuine
// data dependence real interpreters have.
//
// This family stands in for perlbench-like SPEC workloads.
type InterpreterParams struct {
	// Opcodes is the number of distinct handlers (dispatch targets).
	Opcodes int
	// ProgramLen is the bytecode length, i.e. the dispatch period.
	ProgramLen int
	// Work is the straight-line instruction count per handler.
	Work int
	// CondPerHandler is the number of conditional branches per handler.
	CondPerHandler int
	// CondNoise is the probability a handler conditional's outcome is
	// random rather than its fixed per-slot value.
	CondNoise float64
	// DispatchNoise is the probability an opcode is drawn at random
	// instead of following the program (data-dependent interpretation).
	DispatchNoise float64
	// MonoCalls is how many monomorphic helper calls each handler makes
	// (real interpreters call fixed runtime helpers through pointers);
	// MonoSites is the static pool of such helper sites.
	MonoCalls int
	MonoSites int
	// Bank separates this model's addresses from other models in a mix.
	Bank int
}

type interpreterModel struct {
	p        InterpreterParams
	program  []int
	handlers []uint64
	bias     [][]bool // fixed outcome per (opcode, cond slot)
	mono     monoHelpers
	pos      int
}

func newInterpreter(p InterpreterParams, rng *rand.Rand) *interpreterModel {
	if p.Opcodes <= 0 || p.ProgramLen <= 0 {
		panic("workload: interpreter needs positive Opcodes and ProgramLen")
	}
	m := &interpreterModel{p: p}
	m.program = make([]int, p.ProgramLen)
	// Opcode usage is Zipf-skewed, as in real bytecode: a few hot opcodes
	// dominate and most appear rarely.
	cdf := zipfTable(p.Opcodes, 1.2)
	for i := range m.program {
		m.program[i] = drawCDF(cdf, rng)
	}
	m.handlers = make([]uint64, p.Opcodes)
	for i := range m.handlers {
		m.handlers[i] = funcAddr(p.Bank, 16+i)
	}
	m.bias = make([][]bool, p.Opcodes)
	for i := range m.bias {
		slots := make([]bool, p.CondPerHandler)
		for j := range slots {
			slots[j] = rng.Intn(4) != 0 // mostly taken, fixed per slot
		}
		m.bias[i] = slots
	}
	m.mono = newMonoHelpers(p.Bank, p.MonoSites)
	return m
}

func (m *interpreterModel) step(e *emitter, rng *rand.Rand) {
	loopPC := funcAddr(m.p.Bank, 0)
	dispatchPC := funcAddr(m.p.Bank, 1)
	// Dispatch loop back-edge.
	e.cond(loopPC, m.pos != 0)
	op := m.program[m.pos]
	if m.p.DispatchNoise > 0 && rng.Float64() < m.p.DispatchNoise {
		op = rng.Intn(m.p.Opcodes)
	}
	e.work(2)
	e.ijump(dispatchPC, m.handlers[op])
	// Handler body: straight-line work, a counted inner loop (operand
	// processing), and a few biased data-dependent conditionals.
	e.work(m.p.Work / 2)
	innerLoop(e, m.handlers[op]+0x100, 1+op%3, m.p.Work/4+2)
	for j := 0; j < m.p.CondPerHandler; j++ {
		taken := m.bias[op][j]
		if m.p.CondNoise > 0 && rng.Float64() < m.p.CondNoise {
			taken = rng.Intn(2) == 0
		}
		e.cond(m.handlers[op]+8+uint64(j)*8, taken)
	}
	m.mono.emit(e, m.p.MonoCalls, op)
	m.pos++
	if m.pos >= len(m.program) {
		m.pos = 0
	}
}
