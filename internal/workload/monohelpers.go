package workload

// monoHelpers is a pool of monomorphic indirect-call sites — each static
// site always calls the same helper function. Real programs are full of
// these (runtime helpers, once-registered callbacks, non-overridden
// virtuals); they dominate the left side of the paper's Fig. 6 and give the
// BTB baseline its easy wins. Models embed a pool and emit a few such calls
// per step, rotating round-robin through the sites.
type monoHelpers struct {
	sites   []uint64
	targets []uint64
}

func newMonoHelpers(bank, sites int) monoHelpers {
	h := monoHelpers{
		sites:   make([]uint64, sites),
		targets: make([]uint64, sites),
	}
	for i := 0; i < sites; i++ {
		h.sites[i] = funcAddr(bank, 40960+2*i)
		h.targets[i] = funcAddr(bank, 40961+2*i)
	}
	return h
}

// emit issues n monomorphic call/return pairs (no-op when the pool is
// empty). key selects which helpers run; deriving it from the caller's
// current state (opcode, class, token) keeps the helper sequence correlated
// with the caller's control flow instead of forming an independent cycle
// that would pollute global history with unrelated context.
func (h *monoHelpers) emit(e *emitter, n, key int) {
	if len(h.sites) == 0 {
		return
	}
	if key < 0 {
		key = -key
	}
	for i := 0; i < n; i++ {
		s := (key*7 + i) % len(h.sites)
		e.icall(h.sites[s], h.targets[s])
		e.work(6)
		e.ret(h.targets[s] + 8)
	}
}
