package workload

import "math/rand"

// VDispatchParams models C++/Java-style virtual dispatch: a traversal over
// an array of polymorphic objects, calling a virtual method on each. The
// receiver-class sequence is fixed per seed (periodic, learnable), with
// optional type noise. AlternatingSites adds call sites that strictly
// ping-pong between two method bodies whose addresses differ in target bit
// 3 — a pattern BLBP's local history captures even when the surrounding
// global history is noisy.
//
// This family stands in for eon/povray/xalancbmk-like workloads and the
// Java-heavy CBP-5 mobile traces.
type VDispatchParams struct {
	// Classes is the number of receiver classes per site.
	Classes int
	// Sites is the number of static virtual call sites.
	Sites int
	// Objects is the traversal length (the class-sequence period).
	Objects int
	// TypeNoise is the probability a visit re-draws the class at random.
	TypeNoise float64
	// AlternatingSites adds this many strict A/B alternating call sites.
	AlternatingSites int
	// MethodWork and MethodConds shape each method body.
	MethodWork  int
	MethodConds int
	// CondNoise is the probability a method conditional is random.
	CondNoise float64
	// MonoCalls monomorphic helper calls per visit from a MonoSites pool.
	MonoCalls int
	MonoSites int
	// Bank separates address spaces.
	Bank int
}

type vdispatchModel struct {
	p       VDispatchParams
	classes []int // class of each object in the array
	// methods[class][site] is the method body address for the site.
	methods [][]uint64
	altA    []uint64 // alternating-site method pair (differ in bit 3)
	altB    []uint64
	mono    monoHelpers
	idx     int
	altFlip bool
}

func newVDispatch(p VDispatchParams, rng *rand.Rand) *vdispatchModel {
	if p.Classes <= 0 || p.Sites <= 0 || p.Objects <= 0 {
		panic("workload: vdispatch needs positive Classes, Sites, Objects")
	}
	m := &vdispatchModel{p: p}
	m.classes = make([]int, p.Objects)
	// Receiver classes are Zipf-skewed: most objects are instances of a
	// few dominant classes, matching real polymorphic call-site profiles.
	cdf := zipfTable(p.Classes, 1.1)
	for i := range m.classes {
		m.classes[i] = drawCDF(cdf, rng)
	}
	m.methods = make([][]uint64, p.Classes)
	for c := range m.methods {
		m.methods[c] = make([]uint64, p.Sites)
		for s := range m.methods[c] {
			m.methods[c][s] = funcAddr(p.Bank, 64+c*p.Sites+s)
		}
	}
	m.altA = make([]uint64, p.AlternatingSites)
	m.altB = make([]uint64, p.AlternatingSites)
	for i := range m.altA {
		base := funcAddr(p.Bank, 8192+i*2)
		m.altA[i] = base &^ 8 // the pair differs exactly in target bit 3
		m.altB[i] = base | 8
	}
	m.mono = newMonoHelpers(p.Bank, p.MonoSites)
	return m
}

func (m *vdispatchModel) step(e *emitter, rng *rand.Rand) {
	loopPC := funcAddr(m.p.Bank, 0)
	e.cond(loopPC, m.idx != 0)
	cls := m.classes[m.idx]
	if m.p.TypeNoise > 0 && rng.Float64() < m.p.TypeNoise {
		cls = rng.Intn(m.p.Classes)
	}
	site := m.idx % m.p.Sites
	sitePC := funcAddr(m.p.Bank, 1+site)
	fn := m.methods[cls][site]
	e.work(3)
	e.icall(sitePC, fn)
	// Method body: work, a counted field/element loop, biased conditionals.
	e.work(m.p.MethodWork / 2)
	innerLoop(e, fn+0x100, 1+cls%3, m.p.MethodWork/4+2)
	for j := 0; j < m.p.MethodConds; j++ {
		taken := (cls+j)%3 != 0
		if m.p.CondNoise > 0 && rng.Float64() < m.p.CondNoise {
			taken = rng.Intn(2) == 0
		}
		e.cond(fn+8+uint64(j)*8, taken)
	}
	e.ret(fn + 8 + uint64(m.p.MethodConds)*8)

	// Alternating sites: exercised every third visit (hot, but not on the
	// critical path of every object), immune to type noise.
	if m.p.AlternatingSites > 0 && m.idx%3 == 0 {
		for i := 0; i < m.p.AlternatingSites; i++ {
			fn := m.altA[i]
			if m.altFlip {
				fn = m.altB[i]
			}
			altSitePC := funcAddr(m.p.Bank, 4096+i)
			e.icall(altSitePC, fn)
			e.work(12)
			e.ret(fn + 16)
		}
		m.altFlip = !m.altFlip
	}
	m.mono.emit(e, m.p.MonoCalls, cls)

	m.idx++
	if m.idx >= m.p.Objects {
		m.idx = 0
	}
}
