package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The on-disk format is a compact varint encoding:
//
//	magic   "BLBPTRC1"              (8 bytes)
//	name    uvarint length + bytes
//	count   uvarint number of records
//	records count × record
//
// Each record is encoded as:
//
//	header      1 byte: type (bits 0..2) | taken (bit 3)
//	instrBefore uvarint
//	pc          uvarint of pc XOR prevPC   (delta-style, compresses loops)
//	target      uvarint of target XOR pc
//
// XOR-deltas keep hot-loop records to a handful of bytes without requiring
// monotonic addresses.

var magic = [8]byte{'B', 'L', 'B', 'P', 'T', 'R', 'C', '1'}

// ErrBadMagic is returned when decoding data that is not a BLBP trace.
var ErrBadMagic = errors.New("trace: bad magic (not a BLBP trace file)")

// Write encodes the trace to w in the binary trace format.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(t.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(t.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Records))); err != nil {
		return err
	}
	var prevPC uint64
	for i, r := range t.Records {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
		header := byte(r.Type)
		if r.Taken {
			header |= 1 << 3
		}
		if err := bw.WriteByte(header); err != nil {
			return err
		}
		if err := putUvarint(uint64(r.InstrBefore)); err != nil {
			return err
		}
		if err := putUvarint(r.PC ^ prevPC); err != nil {
			return err
		}
		if err := putUvarint(r.Target ^ r.PC); err != nil {
			return err
		}
		prevPC = r.PC
	}
	return bw.Flush()
}

// Read decodes a trace previously encoded with Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading name length: %w", err)
	}
	const maxNameLen = 1 << 16
	if nameLen > maxNameLen {
		return nil, fmt.Errorf("trace: name length %d exceeds limit", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading record count: %w", err)
	}
	t := &Trace{Name: string(name)}
	if count > 0 {
		// Guard against absurd counts from corrupt input before allocating.
		const maxRecords = 1 << 32
		if count > maxRecords {
			return nil, fmt.Errorf("trace: record count %d exceeds limit", count)
		}
		// Cap the preallocation: a corrupt count below the hard limit must
		// not commit gigabytes up front. Decoding fails naturally at EOF.
		capHint := count
		if capHint > 1<<16 {
			capHint = 1 << 16
		}
		t.Records = make([]Record, 0, capHint)
	}
	var prevPC uint64
	for i := uint64(0); i < count; i++ {
		header, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: record %d header: %w", i, err)
		}
		var rec Record
		rec.Type = BranchType(header & 0x7)
		rec.Taken = header&(1<<3) != 0
		ib, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d instr count: %w", i, err)
		}
		if ib > uint64(^uint32(0)) {
			return nil, fmt.Errorf("trace: record %d instr count %d overflows", i, ib)
		}
		rec.InstrBefore = uint32(ib)
		pcDelta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d pc: %w", i, err)
		}
		rec.PC = pcDelta ^ prevPC
		tgtDelta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: record %d target: %w", i, err)
		}
		rec.Target = tgtDelta ^ rec.PC
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("trace: record %d: %w", i, err)
		}
		prevPC = rec.PC
		t.Records = append(t.Records, rec)
	}
	// Every record was validated during decoding; mark the trace so
	// simulation passes skip revalidation.
	t.validated = true
	return t, nil
}
