package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
)

// A spill file is the persistent form the trace cache writes: a
// self-describing header followed by the standard binary trace payload.
// The header carries the full workload identity (name, seed, instruction
// budget) plus the payload's record count and checksum, so a reader can
// decide whether a file on disk really is the trace it wants — a bare
// payload carries only the workload name, which is not enough once files
// outlive the process that wrote them (stale seeds, renamed files, hash
// collisions in the file name).
//
// Layout:
//
//	magic    "BLBPSPL1"                     (8 bytes)
//	name     uvarint length + bytes         (workload name)
//	seed     uvarint                        (two's-complement bits of the int64 seed)
//	instr    uvarint                        (instruction budget)
//	records  uvarint                        (payload record count)
//	checksum 8 bytes little-endian          (FNV-64a of the payload bytes)
//	payload  BLBPTRC1 encoding of the trace (Write/Read)

var spillMagic = [8]byte{'B', 'L', 'B', 'P', 'S', 'P', 'L', '1'}

// ErrBadSpillMagic is returned when decoding data that is not a BLBP spill
// file (including bare BLBPTRC1 payloads from the pre-header format).
var ErrBadSpillMagic = errors.New("trace: bad magic (not a BLBP spill file)")

// ErrSpillMismatch is returned when a spill file's payload does not match
// its own header (checksum or record count), i.e. the file is corrupt or
// was truncated by a crash.
var ErrSpillMismatch = errors.New("trace: spill payload does not match header")

// SpillHeader is the self-describing preamble of a spill file.
type SpillHeader struct {
	// Name, Seed and Instructions are the workload identity of the payload
	// (workload.Identity, spelled out so this package need not import it).
	Name         string
	Seed         int64
	Instructions int64
	// Records is the payload's record count.
	Records int64
	// Checksum is the FNV-64a hash of the payload bytes.
	Checksum uint64
}

// WriteSpill encodes t as a spill file: header then payload. Name, Seed
// and Instructions are taken from h; Records and Checksum are computed
// from the encoded payload and h's values for them are ignored.
func WriteSpill(w io.Writer, h SpillHeader, t *Trace) error {
	var payload bytes.Buffer
	if err := Write(&payload, t); err != nil {
		return err
	}
	sum := fnv.New64a()
	sum.Write(payload.Bytes())

	bw := bufio.NewWriter(w)
	if _, err := bw.Write(spillMagic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(h.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(h.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(h.Seed)); err != nil {
		return err
	}
	if err := putUvarint(uint64(h.Instructions)); err != nil {
		return err
	}
	if err := putUvarint(uint64(len(t.Records))); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(buf[:8], sum.Sum64())
	if _, err := bw.Write(buf[:8]); err != nil {
		return err
	}
	if _, err := bw.Write(payload.Bytes()); err != nil {
		return err
	}
	return bw.Flush()
}

// readSpillHeader decodes the header from br.
func readSpillHeader(br *bufio.Reader) (SpillHeader, error) {
	var h SpillHeader
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return h, fmt.Errorf("trace: reading spill magic: %w", err)
	}
	if m != spillMagic {
		return h, ErrBadSpillMagic
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return h, fmt.Errorf("trace: reading spill name length: %w", err)
	}
	const maxNameLen = 1 << 16
	if nameLen > maxNameLen {
		return h, fmt.Errorf("trace: spill name length %d exceeds limit", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return h, fmt.Errorf("trace: reading spill name: %w", err)
	}
	h.Name = string(name)
	seed, err := binary.ReadUvarint(br)
	if err != nil {
		return h, fmt.Errorf("trace: reading spill seed: %w", err)
	}
	h.Seed = int64(seed)
	instr, err := binary.ReadUvarint(br)
	if err != nil {
		return h, fmt.Errorf("trace: reading spill instruction budget: %w", err)
	}
	h.Instructions = int64(instr)
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return h, fmt.Errorf("trace: reading spill record count: %w", err)
	}
	const maxRecords = 1 << 32
	if count > maxRecords {
		return h, fmt.Errorf("trace: spill record count %d exceeds limit", count)
	}
	h.Records = int64(count)
	var sum [8]byte
	if _, err := io.ReadFull(br, sum[:]); err != nil {
		return h, fmt.Errorf("trace: reading spill checksum: %w", err)
	}
	h.Checksum = binary.LittleEndian.Uint64(sum[:])
	return h, nil
}

// ReadSpillHeader decodes only the header of a spill file, leaving the
// payload unread — the cheap probe a cache uses to index a directory of
// spill files by identity without decoding any records.
func ReadSpillHeader(r io.Reader) (SpillHeader, error) {
	return readSpillHeader(bufio.NewReader(r))
}

// ReadSpill decodes a complete spill file: the header, then the payload,
// verified against the header's checksum and record count and the usual
// per-record validation. The decoded trace's name must match the header's.
func ReadSpill(r io.Reader) (SpillHeader, *Trace, error) {
	br := bufio.NewReader(r)
	h, err := readSpillHeader(br)
	if err != nil {
		return h, nil, err
	}
	payload, err := io.ReadAll(br)
	if err != nil {
		return h, nil, fmt.Errorf("trace: reading spill payload: %w", err)
	}
	sum := fnv.New64a()
	sum.Write(payload)
	if sum.Sum64() != h.Checksum {
		return h, nil, fmt.Errorf("%w: checksum %016x, header says %016x", ErrSpillMismatch, sum.Sum64(), h.Checksum)
	}
	t, err := Read(bytes.NewReader(payload))
	if err != nil {
		return h, nil, err
	}
	if int64(len(t.Records)) != h.Records {
		return h, nil, fmt.Errorf("%w: %d records, header says %d", ErrSpillMismatch, len(t.Records), h.Records)
	}
	if t.Name != h.Name {
		return h, nil, fmt.Errorf("%w: payload name %q, header says %q", ErrSpillMismatch, t.Name, h.Name)
	}
	return h, t, nil
}
