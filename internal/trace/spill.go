package trace

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
)

// A spill file is the persistent form the trace cache writes: a
// self-describing header followed by the trace's records. The header
// carries the full workload identity (name, seed, instruction budget) plus
// the record count, so a reader can decide whether a file on disk really is
// the trace it wants — a bare payload carries only the workload name, which
// is not enough once files outlive the process that wrote them (stale
// seeds, renamed files, hash collisions in the file name).
//
// The current format (SPL3) stores records in checksummed blocks:
//
//	magic    "BLBPSPL3"                 (8 bytes)
//	name     uvarint length + bytes     (workload name)
//	seed     uvarint                    (two's-complement bits of the int64 seed)
//	instr    uvarint                    (instruction budget)
//	fprint   uvarint                    (generator-parameter fingerprint)
//	records  uvarint                    (total record count)
//	blocks   until records are consumed:
//	  nrec     uvarint                  (records in this block, > 0)
//	  nbytes   uvarint                  (encoded size of this block)
//	  checksum 8 bytes little-endian    (FNV-64a of the block bytes)
//	  payload  nbytes bytes             (nrec records, same per-record
//	                                    encoding as BLBPTRC1; the PC delta
//	                                    chain restarts at 0 in each block)
//
// Blocking serves the reader: each block is checksummed and then decoded
// from one contiguous in-memory slice (binary.Uvarint over []byte instead
// of a byte-at-a-time bufio stream), and a corrupt or truncated file fails
// at the first bad block instead of after hashing the whole payload.
// Restarting the delta chain per block keeps blocks independently
// decodable.
//
// The fingerprint hashes the workload's canonicalized generator parameters
// (workload.FingerprintCanon), completing the identity: two workloads can
// share a name, seed and budget yet generate different traces once specs
// are user-authored data. Earlier formats are still read — SPL2 (identical
// blocks, no fingerprint field) and SPL1 (one whole-file FNV-64a checksum
// over a complete BLBPTRC1 payload) — and report fingerprint 0, which
// readers treat as "unknown, match by name/seed/budget alone", so spill
// directories written by older runs keep warm-starting newer ones.

var (
	spillMagicV1 = [8]byte{'B', 'L', 'B', 'P', 'S', 'P', 'L', '1'}
	spillMagicV2 = [8]byte{'B', 'L', 'B', 'P', 'S', 'P', 'L', '2'}
	spillMagic   = [8]byte{'B', 'L', 'B', 'P', 'S', 'P', 'L', '3'}
)

// spillBlockRecords is the encoder's records-per-block target. At the
// format's worst-case record size (26 bytes) a block stays comfortably
// inside CPU caches while amortizing the per-block checksum.
const spillBlockRecords = 4096

// maxSpillRecordLen bounds one encoded record: 1 header byte, a 5-byte
// uvarint for the 32-bit instruction count, and two 10-byte uvarints for
// the PC and target deltas. Used to reject absurd block sizes before
// allocating.
const maxSpillRecordLen = 1 + 5 + 10 + 10

// ErrBadSpillMagic is returned when decoding data that is not a BLBP spill
// file (including bare BLBPTRC1 payloads from the pre-header format).
var ErrBadSpillMagic = errors.New("trace: bad magic (not a BLBP spill file)")

// ErrSpillMismatch is returned when a spill file's payload does not match
// its own header (checksum, record count, or block structure), i.e. the
// file is corrupt or was truncated by a crash.
var ErrSpillMismatch = errors.New("trace: spill payload does not match header")

// SpillHeader is the self-describing preamble of a spill file.
type SpillHeader struct {
	// Name, Seed and Instructions are the workload identity of the payload
	// (workload.Identity, spelled out so this package need not import it).
	Name         string
	Seed         int64
	Instructions int64
	// Fingerprint hashes the workload's canonicalized generator parameters
	// (workload.Identity.Fingerprint). Zero in files written before SPL3,
	// meaning "unknown": readers match such files on name/seed/budget alone.
	Fingerprint uint64
	// Records is the payload's record count.
	Records int64
	// Checksum is the FNV-64a hash of the payload bytes in SPL1 files; later
	// formats checksum per block and leave it zero.
	Checksum uint64
}

// writeSpillHeader writes the identity fields shared by both formats.
func writeSpillHeader(bw *bufio.Writer, magic [8]byte, h SpillHeader, records int) error {
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := putUvarint(uint64(len(h.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(h.Name); err != nil {
		return err
	}
	if err := putUvarint(uint64(h.Seed)); err != nil {
		return err
	}
	if err := putUvarint(uint64(h.Instructions)); err != nil {
		return err
	}
	if magic == spillMagic {
		if err := putUvarint(h.Fingerprint); err != nil {
			return err
		}
	}
	return putUvarint(uint64(records))
}

// WriteSpill encodes t as a spill file in the current (SPL3) format: header
// (including the parameter fingerprint) then checksummed record blocks.
// Name, Seed, Instructions and Fingerprint are taken from h; Records is
// computed from t and h's value for it is ignored.
func WriteSpill(w io.Writer, h SpillHeader, t *Trace) error {
	return writeSpillBlocked(w, spillMagic, h, t)
}

// WriteSpillV2 encodes t in the previous SPL2 format (same blocks, no
// fingerprint field). Kept so tests can produce pre-fingerprint files and
// exercise the read fallback; new spill files should use WriteSpill.
func WriteSpillV2(w io.Writer, h SpillHeader, t *Trace) error {
	return writeSpillBlocked(w, spillMagicV2, h, t)
}

func writeSpillBlocked(w io.Writer, magic [8]byte, h SpillHeader, t *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeSpillHeader(bw, magic, h, len(t.Records)); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	scratch := make([]byte, 0, spillBlockRecords*8)
	for start := 0; start < len(t.Records); start += spillBlockRecords {
		end := start + spillBlockRecords
		if end > len(t.Records) {
			end = len(t.Records)
		}
		scratch = scratch[:0]
		var prevPC uint64
		for i := start; i < end; i++ {
			r := t.Records[i]
			if err := r.Validate(); err != nil {
				return fmt.Errorf("record %d: %w", i, err)
			}
			header := byte(r.Type)
			if r.Taken {
				header |= 1 << 3
			}
			scratch = append(scratch, header)
			scratch = binary.AppendUvarint(scratch, uint64(r.InstrBefore))
			scratch = binary.AppendUvarint(scratch, r.PC^prevPC)
			scratch = binary.AppendUvarint(scratch, r.Target^r.PC)
			prevPC = r.PC
		}
		n := binary.PutUvarint(buf[:], uint64(end-start))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		n = binary.PutUvarint(buf[:], uint64(len(scratch)))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		sum := fnv.New64a()
		sum.Write(scratch)
		binary.LittleEndian.PutUint64(buf[:8], sum.Sum64())
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
		if _, err := bw.Write(scratch); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSpillV1 encodes t in the legacy SPL1 format (whole-file checksum,
// BLBPTRC1 payload). Kept so tests and benchmarks can exercise the read
// fallback; new spill files should use WriteSpill.
func WriteSpillV1(w io.Writer, h SpillHeader, t *Trace) error {
	var payload bytes.Buffer
	if err := Write(&payload, t); err != nil {
		return err
	}
	sum := fnv.New64a()
	sum.Write(payload.Bytes())

	bw := bufio.NewWriter(w)
	if err := writeSpillHeader(bw, spillMagicV1, h, len(t.Records)); err != nil {
		return err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], sum.Sum64())
	if _, err := bw.Write(buf[:]); err != nil {
		return err
	}
	if _, err := bw.Write(payload.Bytes()); err != nil {
		return err
	}
	return bw.Flush()
}

// readSpillHeader decodes the header from br and reports the format
// version (1, 2 or 3).
func readSpillHeader(br *bufio.Reader) (SpillHeader, int, error) {
	var h SpillHeader
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return h, 0, fmt.Errorf("trace: reading spill magic: %w", err)
	}
	var version int
	switch m {
	case spillMagicV1:
		version = 1
	case spillMagicV2:
		version = 2
	case spillMagic:
		version = 3
	default:
		return h, 0, ErrBadSpillMagic
	}
	nameLen, err := binary.ReadUvarint(br)
	if err != nil {
		return h, 0, fmt.Errorf("trace: reading spill name length: %w", err)
	}
	const maxNameLen = 1 << 16
	if nameLen > maxNameLen {
		return h, 0, fmt.Errorf("trace: spill name length %d exceeds limit", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return h, 0, fmt.Errorf("trace: reading spill name: %w", err)
	}
	h.Name = string(name)
	seed, err := binary.ReadUvarint(br)
	if err != nil {
		return h, 0, fmt.Errorf("trace: reading spill seed: %w", err)
	}
	h.Seed = int64(seed)
	instr, err := binary.ReadUvarint(br)
	if err != nil {
		return h, 0, fmt.Errorf("trace: reading spill instruction budget: %w", err)
	}
	h.Instructions = int64(instr)
	if version >= 3 {
		fp, err := binary.ReadUvarint(br)
		if err != nil {
			return h, 0, fmt.Errorf("trace: reading spill fingerprint: %w", err)
		}
		h.Fingerprint = fp
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return h, 0, fmt.Errorf("trace: reading spill record count: %w", err)
	}
	const maxRecords = 1 << 32
	if count > maxRecords {
		return h, 0, fmt.Errorf("trace: spill record count %d exceeds limit", count)
	}
	h.Records = int64(count)
	if version == 1 {
		var sum [8]byte
		if _, err := io.ReadFull(br, sum[:]); err != nil {
			return h, 0, fmt.Errorf("trace: reading spill checksum: %w", err)
		}
		h.Checksum = binary.LittleEndian.Uint64(sum[:])
	}
	return h, version, nil
}

// ReadSpillHeader decodes only the header of a spill file (either format),
// leaving the payload unread — the cheap probe a cache uses to index a
// directory of spill files by identity without decoding any records.
func ReadSpillHeader(r io.Reader) (SpillHeader, error) {
	h, _, err := readSpillHeader(bufio.NewReader(r))
	return h, err
}

// ReadSpill decodes a complete spill file of either format: the header,
// then the payload, verified against the header's checksums and record
// count and the usual per-record validation. The decoded trace's name must
// match the header's.
func ReadSpill(r io.Reader) (SpillHeader, *Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	h, version, err := readSpillHeader(br)
	if err != nil {
		return h, nil, err
	}
	var t *Trace
	if version == 1 {
		t, err = readSpillPayloadV1(br, h)
	} else {
		t, err = readSpillBlocks(br, h) // SPL2 and SPL3 share the block layout
	}
	if err != nil {
		return h, nil, err
	}
	if t.Name != h.Name {
		return h, nil, fmt.Errorf("%w: payload name %q, header says %q", ErrSpillMismatch, t.Name, h.Name)
	}
	return h, t, nil
}

// readSpillPayloadV1 decodes the legacy whole-payload form.
func readSpillPayloadV1(br *bufio.Reader, h SpillHeader) (*Trace, error) {
	payload, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading spill payload: %w", err)
	}
	sum := fnv.New64a()
	sum.Write(payload)
	if sum.Sum64() != h.Checksum {
		return nil, fmt.Errorf("%w: checksum %016x, header says %016x", ErrSpillMismatch, sum.Sum64(), h.Checksum)
	}
	t, err := Read(bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	if int64(len(t.Records)) != h.Records {
		return nil, fmt.Errorf("%w: %d records, header says %d", ErrSpillMismatch, len(t.Records), h.Records)
	}
	return t, nil
}

// readSpillBlocks decodes the SPL2 block sequence: each block is length-
// checked, checksummed, and then bulk-decoded from its in-memory bytes.
func readSpillBlocks(br *bufio.Reader, h SpillHeader) (*Trace, error) {
	t := &Trace{Name: h.Name}
	if h.Records > 0 {
		// Cap the preallocation: a corrupt count must not commit gigabytes
		// up front. Decoding fails naturally at the first bad block.
		capHint := h.Records
		if capHint > 1<<16 {
			capHint = 1 << 16
		}
		t.Records = make([]Record, 0, capHint)
	}
	var block []byte
	var decoded int64
	for decoded < h.Records {
		nrec, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading spill block record count: %w", err)
		}
		if nrec == 0 || int64(nrec) > h.Records-decoded {
			return nil, fmt.Errorf("%w: block of %d records with %d remaining", ErrSpillMismatch, nrec, h.Records-decoded)
		}
		nbytes, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: reading spill block size: %w", err)
		}
		if nbytes < nrec || nbytes > nrec*maxSpillRecordLen {
			return nil, fmt.Errorf("%w: block of %d bytes for %d records", ErrSpillMismatch, nbytes, nrec)
		}
		var sumBuf [8]byte
		if _, err := io.ReadFull(br, sumBuf[:]); err != nil {
			return nil, fmt.Errorf("trace: reading spill block checksum: %w", err)
		}
		want := binary.LittleEndian.Uint64(sumBuf[:])
		if uint64(cap(block)) < nbytes {
			block = make([]byte, nbytes)
		}
		block = block[:nbytes]
		if _, err := io.ReadFull(br, block); err != nil {
			return nil, fmt.Errorf("trace: reading spill block payload: %w", err)
		}
		sum := fnv.New64a()
		sum.Write(block)
		if sum.Sum64() != want {
			return nil, fmt.Errorf("%w: block checksum %016x, header says %016x", ErrSpillMismatch, sum.Sum64(), want)
		}
		if t.Records, err = appendBlockRecords(t.Records, block, int(nrec)); err != nil {
			return nil, err
		}
		decoded += int64(nrec)
	}
	// Every record was validated during decoding; mark the trace so
	// simulation passes skip revalidation.
	t.validated = true
	return t, nil
}

// appendBlockRecords bulk-decodes one block's records from data (which must
// be consumed exactly) onto dst. The PC delta chain starts at 0.
func appendBlockRecords(dst []Record, data []byte, nrec int) ([]Record, error) {
	var prevPC uint64
	off := 0
	for i := 0; i < nrec; i++ {
		if off >= len(data) {
			return nil, fmt.Errorf("%w: block truncated at record %d", ErrSpillMismatch, i)
		}
		header := data[off]
		off++
		var rec Record
		rec.Type = BranchType(header & 0x7)
		rec.Taken = header&(1<<3) != 0
		ib, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad instr count at block record %d", ErrSpillMismatch, i)
		}
		off += n
		if ib > uint64(^uint32(0)) {
			return nil, fmt.Errorf("%w: instr count %d overflows at block record %d", ErrSpillMismatch, ib, i)
		}
		rec.InstrBefore = uint32(ib)
		pcDelta, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad pc at block record %d", ErrSpillMismatch, i)
		}
		off += n
		rec.PC = pcDelta ^ prevPC
		tgtDelta, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad target at block record %d", ErrSpillMismatch, i)
		}
		off += n
		rec.Target = tgtDelta ^ rec.PC
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("trace: block record %d: %w", i, err)
		}
		prevPC = rec.PC
		dst = append(dst, rec)
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes in block", ErrSpillMismatch, len(data)-off)
	}
	return dst, nil
}
