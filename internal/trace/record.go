// Package trace defines the branch-trace model used throughout the
// simulator: a trace is a sequence of control-flow records, each describing
// one executed branch instruction plus the number of non-branch instructions
// that preceded it.
//
// The model mirrors the Championship Branch Prediction (CBP-5) trace format
// the paper's infrastructure consumes: only branches appear explicitly;
// straight-line instructions are carried as a count so that MPKI
// (mispredictions per kilo-instruction) can be computed exactly.
package trace

import (
	"fmt"
	"sync"
)

// BranchType classifies a control-flow instruction.
type BranchType uint8

const (
	// CondDirect is a conditional branch with a statically known target.
	CondDirect BranchType = iota
	// UncondDirect is an unconditional direct jump.
	UncondDirect
	// DirectCall is a direct function call (pushes a return address).
	DirectCall
	// IndirectJump is an unconditional jump through a register or memory
	// operand (switch tables, interpreter dispatch, tail calls).
	IndirectJump
	// IndirectCall is a call through a register or memory operand
	// (virtual dispatch, function pointers).
	IndirectCall
	// Return is a function return (predicted by a return address stack).
	Return

	numBranchTypes = 6
)

// String returns a short human-readable name for the branch type.
func (t BranchType) String() string {
	switch t {
	case CondDirect:
		return "cond"
	case UncondDirect:
		return "jump"
	case DirectCall:
		return "call"
	case IndirectJump:
		return "ind-jump"
	case IndirectCall:
		return "ind-call"
	case Return:
		return "return"
	default:
		return fmt.Sprintf("BranchType(%d)", uint8(t))
	}
}

// Valid reports whether t is one of the defined branch types.
func (t BranchType) Valid() bool { return t < numBranchTypes }

// IsIndirect reports whether the branch requires target prediction by an
// indirect branch predictor. Returns are excluded: like the paper (and all
// modern hardware) they are handled by a return address stack.
func (t BranchType) IsIndirect() bool {
	return t == IndirectJump || t == IndirectCall
}

// IsCall reports whether the branch pushes a return address.
func (t BranchType) IsCall() bool {
	return t == DirectCall || t == IndirectCall
}

// IsConditional reports whether the branch has a taken/not-taken outcome to
// predict.
func (t BranchType) IsConditional() bool { return t == CondDirect }

// Record describes one executed branch.
type Record struct {
	// PC is the address of the branch instruction.
	PC uint64
	// Target is the address control flow transferred to. For a not-taken
	// conditional branch it is the fall-through address.
	Target uint64
	// InstrBefore is the number of non-branch instructions executed since
	// the previous record (or since the start of the trace). The branch
	// itself is not included, so one record accounts for InstrBefore+1
	// instructions.
	InstrBefore uint32
	// Type is the branch classification.
	Type BranchType
	// Taken is the branch outcome. It is always true for unconditional
	// branch types.
	Taken bool
}

// Instructions returns the number of instructions this record accounts for,
// including the branch itself.
func (r Record) Instructions() int64 { return int64(r.InstrBefore) + 1 }

// Validate checks internal consistency of the record.
func (r Record) Validate() error {
	if !r.Type.Valid() {
		return fmt.Errorf("trace: invalid branch type %d", uint8(r.Type))
	}
	if !r.Type.IsConditional() && !r.Taken {
		return fmt.Errorf("trace: %v branch at pc=%#x marked not taken", r.Type, r.PC)
	}
	return nil
}

// Trace is an in-memory trace: a sequence of records.
type Trace struct {
	// Name identifies the workload the trace came from.
	Name string
	// Records is the ordered branch sequence.
	Records []Record

	// validated caches a successful Validate so consumers that replay the
	// trace many times (one simulation pass per predictor configuration)
	// pay the per-record check once instead of inside every hot loop.
	// Append clears it; callers who mutate Records directly and need
	// revalidation should go through Append or a fresh Trace.
	validated bool

	// cols caches the columnar form (see Columns): built lazily on first
	// use, shared by every replay pass over the trace, invalidated by
	// Append.
	colsMu sync.Mutex
	cols   *Columns
}

// Columns returns the columnar form of the trace, building and caching it
// on first use. The result is shared: callers must not mutate it, and must
// not Append to the trace while holding it.
func (t *Trace) Columns() *Columns {
	t.colsMu.Lock()
	defer t.colsMu.Unlock()
	if t.cols == nil {
		t.cols = columnsFromRecords(t)
	}
	return t.cols
}

// Validate checks every record for internal consistency. A successful
// result is cached on the trace, making repeated calls O(1) until the next
// Append.
func (t *Trace) Validate() error {
	if t.validated {
		return nil
	}
	for i := range t.Records {
		if err := t.Records[i].Validate(); err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
	}
	t.validated = true
	return nil
}

// Instructions returns the total instruction count of the trace.
func (t *Trace) Instructions() int64 {
	var n int64
	for _, r := range t.Records {
		n += r.Instructions()
	}
	return n
}

// Append adds a record to the trace, clearing the cached validation and the
// cached columnar form.
func (t *Trace) Append(r Record) {
	t.Records = append(t.Records, r)
	t.validated = false
	if t.cols != nil {
		t.colsMu.Lock()
		t.cols = nil
		t.colsMu.Unlock()
	}
}
