package trace

import (
	"fmt"
	"sync"
)

// Columns is the columnar (structure-of-arrays) form of a trace: one
// parallel array per Record field plus a packed taken bitset, and a
// precomputed run-length class segmentation. It exists for the replay hot
// path — `sim` walks millions of records per pass, and the array-of-structs
// layout makes every pass pay a 6-way type switch, a bounds-checked struct
// load, and a per-record Taken byte for fields most classes never touch.
// The columnar layout streams each field contiguously, and the segmentation
// lets replay loops hoist the type dispatch (and any per-class interface
// assertions) out of the per-record path entirely.
//
// Segmentation is run-length, not per-class index lists, on purpose:
// predictors are stateful and must observe the interleaved record stream in
// original order, so the only reordering-free decomposition is maximal runs
// of identical BranchType. Replaying segments in order visits every record
// exactly once in trace order.
//
// A Columns is built once (by a workload generator, the spill decoder, or
// Trace.Columns) and is read-only afterwards: the accessor methods return
// the underlying arrays, and callers must not mutate them. Like Trace, a
// successful Validate is cached so repeated passes skip the check.
type Columns struct {
	// Name identifies the workload the trace came from.
	Name string

	pc          []uint64
	target      []uint64
	instrBefore []uint32
	typ         []uint8
	taken       []uint64 // bitset, bit i = record i's outcome

	segs         []Segment
	counts       [numBranchTypes]int64
	instructions int64

	// validated caches a successful Validate (see Trace.validated).
	validated bool
	// pooled marks arena-owned column storage (see ReleaseColumns).
	pooled bool
}

// Segment is one maximal run of same-typed records: indices [Start, End).
type Segment struct {
	Start, End int
	Type       BranchType
}

// NewColumns returns an empty columnar trace with capacity for n records.
func NewColumns(name string, n int) *Columns {
	c := &Columns{Name: name}
	c.grow(n)
	return c
}

// grow ensures capacity for n records (lengths stay unchanged).
func (c *Columns) grow(n int) {
	if cap(c.pc) >= n {
		return
	}
	c.pc = append(make([]uint64, 0, n), c.pc...)
	c.target = append(make([]uint64, 0, n), c.target...)
	c.instrBefore = append(make([]uint32, 0, n), c.instrBefore...)
	c.typ = append(make([]uint8, 0, n), c.typ...)
	words := (n + 63) / 64
	if cap(c.taken) < words {
		c.taken = append(make([]uint64, 0, words), c.taken...)
	}
}

// Len returns the number of records.
func (c *Columns) Len() int { return len(c.typ) }

// Instructions returns the total instruction count (InstrBefore sums plus
// one instruction per branch record), maintained incrementally.
func (c *Columns) Instructions() int64 { return c.instructions }

// Count returns the dynamic record count of the given branch type.
func (c *Columns) Count(t BranchType) int64 {
	if !t.Valid() {
		return 0
	}
	return c.counts[t]
}

// PC, Target, InstrBefore, Types, TakenWords and Segments return the
// underlying column arrays (shared; callers must not mutate them). Hot
// loops hoist these calls and index the slices directly.
func (c *Columns) PC() []uint64          { return c.pc }
func (c *Columns) Target() []uint64      { return c.target }
func (c *Columns) InstrBefore() []uint32 { return c.instrBefore }
func (c *Columns) Types() []uint8        { return c.typ }
func (c *Columns) TakenWords() []uint64  { return c.taken }
func (c *Columns) Segments() []Segment   { return c.segs }

// Taken returns record i's outcome bit.
func (c *Columns) Taken(i int) bool {
	return c.taken[uint(i)>>6]&(1<<(uint(i)&63)) != 0
}

// Record materializes record i (a convenience for tests and cold paths; hot
// loops read the columns directly).
func (c *Columns) Record(i int) Record {
	return Record{
		PC:          c.pc[i],
		Target:      c.target[i],
		InstrBefore: c.instrBefore[i],
		Type:        BranchType(c.typ[i]),
		Taken:       c.Taken(i),
	}
}

// Append adds one record, maintaining the segmentation, the per-class
// counts, and the instruction total incrementally. It clears the cached
// validation (the record is not checked here).
func (c *Columns) Append(r Record) {
	i := len(c.typ)
	c.pc = append(c.pc, r.PC)
	c.target = append(c.target, r.Target)
	c.instrBefore = append(c.instrBefore, r.InstrBefore)
	c.typ = append(c.typ, uint8(r.Type))
	if i&63 == 0 {
		c.taken = append(c.taken, 0)
	}
	if r.Taken {
		c.taken[uint(i)>>6] |= 1 << (uint(i) & 63)
	}
	if n := len(c.segs); n > 0 && c.segs[n-1].Type == r.Type {
		c.segs[n-1].End = i + 1
	} else {
		c.segs = append(c.segs, Segment{Start: i, End: i + 1, Type: r.Type})
	}
	if r.Type.Valid() {
		c.counts[r.Type]++
	}
	c.instructions += int64(r.InstrBefore) + 1
	c.validated = false
}

// finalize rebuilds the segmentation, per-class counts, and instruction
// total from the filled typ/instrBefore columns. The spill decoder fills
// the columns by index (no per-record Append) and then calls this once.
//
//blbp:hot
func (c *Columns) finalize() {
	c.counts = [numBranchTypes]int64{}
	var instr int64
	for _, ib := range c.instrBefore {
		instr += int64(ib)
	}
	c.instructions = instr + int64(len(c.instrBefore))
	// Pass 1: count the runs so the segment slice can be sized exactly.
	nseg := 0
	prev := uint8(0xFF)
	for _, t := range c.typ {
		if t != prev {
			nseg++
			prev = t
		}
	}
	if cap(c.segs) < nseg {
		c.segs = make([]Segment, nseg)
	}
	c.segs = c.segs[:nseg]
	// Pass 2: fill segments by index and accumulate per-class counts.
	si := -1
	prev = 0xFF
	for i, t := range c.typ {
		if t != prev {
			si++
			c.segs[si] = Segment{Start: i, End: i + 1, Type: BranchType(t)}
			prev = t
		} else {
			c.segs[si].End = i + 1
		}
		if t < numBranchTypes {
			c.counts[t]++
		}
	}
}

// Validate checks every record for internal consistency — the same two
// conditions as Record.Validate, checked per segment and per bitset word
// instead of per record. A successful result is cached; Append clears it.
func (c *Columns) Validate() error {
	if c.validated {
		return nil
	}
	for _, seg := range c.segs {
		if !seg.Type.Valid() {
			return fmt.Errorf("record %d: trace: invalid branch type %d", seg.Start, uint8(seg.Type))
		}
		if seg.Type.IsConditional() {
			continue
		}
		// Unconditional classes must be all-taken: every bit in [Start, End)
		// must be set. Check whole words with boundary masks.
		for w := seg.Start >> 6; w <= (seg.End-1)>>6; w++ {
			want := ^uint64(0)
			if w == seg.Start>>6 {
				want <<= uint(seg.Start) & 63
			}
			if w == (seg.End-1)>>6 && seg.End&63 != 0 {
				want &= 1<<(uint(seg.End)&63) - 1
			}
			if got := c.taken[w] & want; got != want {
				// Locate the first offending record for the error message.
				for i := seg.Start; i < seg.End; i++ {
					if !c.Taken(i) {
						return fmt.Errorf("record %d: trace: %v branch at pc=%#x marked not taken", i, seg.Type, c.pc[i])
					}
				}
			}
		}
	}
	c.validated = true
	return nil
}

// Trace materializes the record-slice form. The returned trace carries c as
// its cached columnar form (Trace.Columns returns it without rebuilding),
// and inherits c's cached validation.
func (c *Columns) Trace() *Trace {
	t := &Trace{Name: c.Name, Records: make([]Record, c.Len())}
	for i := range t.Records {
		t.Records[i] = c.Record(i)
	}
	t.validated = c.validated
	t.cols = c
	return t
}

// columnsFromRecords builds the columnar form of a record slice, inheriting
// the trace's cached validation.
func columnsFromRecords(t *Trace) *Columns {
	c := NewColumns(t.Name, len(t.Records))
	for i := range t.Records {
		c.Append(t.Records[i])
	}
	c.validated = t.validated
	return c
}

// colsPool recycles Columns whose storage is arena-owned: ReadSpillColumns
// draws from it so a decode-heavy loop (bench reps, warm-started suites
// that release traces after use) reuses column arrays instead of
// reallocating them per file. Entries handed to long-lived owners (the
// trace cache) are simply never released.
var colsPool = sync.Pool{New: func() any { return new(Columns) }}

// newPooledColumns returns a pooled Columns resized to exactly n records,
// with every column writable by index and the taken bitset zeroed.
func newPooledColumns(name string, n int) *Columns {
	c := colsPool.Get().(*Columns)
	c.Name = name
	c.pooled = true
	c.validated = false
	c.grow(n)
	c.pc = c.pc[:n]
	c.target = c.target[:n]
	c.instrBefore = c.instrBefore[:n]
	c.typ = c.typ[:n]
	c.taken = c.taken[:(n+63)/64]
	for i := range c.taken {
		c.taken[i] = 0
	}
	c.segs = c.segs[:0]
	return c
}

// setLen shrinks or extends the pooled columns to n records within the
// current capacity (used when growing block by block under a capped hint).
func (c *Columns) setLen(n int) {
	c.pc = c.pc[:n]
	c.target = c.target[:n]
	c.instrBefore = c.instrBefore[:n]
	c.typ = c.typ[:n]
	words := (n + 63) / 64
	for len(c.taken) < words {
		c.taken = append(c.taken, 0)
	}
	c.taken = c.taken[:words]
}

// ReleaseColumns returns a Columns obtained from ReadSpillColumns to the
// arena pool. After the call the columns (and any slices obtained from
// their accessors) must not be used. Releasing a non-pooled or nil Columns
// is a no-op, so callers can release unconditionally.
func ReleaseColumns(c *Columns) {
	if c == nil || !c.pooled {
		return
	}
	c.setLen(0)
	c.segs = c.segs[:0]
	c.counts = [numBranchTypes]int64{}
	c.instructions = 0
	c.Name = ""
	c.validated = false
	colsPool.Put(c)
}
