package trace

import "testing"

func TestBranchTypeString(t *testing.T) {
	cases := []struct {
		bt   BranchType
		want string
	}{
		{CondDirect, "cond"},
		{UncondDirect, "jump"},
		{DirectCall, "call"},
		{IndirectJump, "ind-jump"},
		{IndirectCall, "ind-call"},
		{Return, "return"},
		{BranchType(17), "BranchType(17)"},
	}
	for _, c := range cases {
		if got := c.bt.String(); got != c.want {
			t.Errorf("BranchType(%d).String() = %q, want %q", c.bt, got, c.want)
		}
	}
}

func TestBranchTypeClassification(t *testing.T) {
	cases := []struct {
		bt                          BranchType
		indirect, call, cond, valid bool
	}{
		{CondDirect, false, false, true, true},
		{UncondDirect, false, false, false, true},
		{DirectCall, false, true, false, true},
		{IndirectJump, true, false, false, true},
		{IndirectCall, true, true, false, true},
		{Return, false, false, false, true},
		{BranchType(6), false, false, false, false},
	}
	for _, c := range cases {
		if got := c.bt.IsIndirect(); got != c.indirect {
			t.Errorf("%v.IsIndirect() = %v, want %v", c.bt, got, c.indirect)
		}
		if got := c.bt.IsCall(); got != c.call {
			t.Errorf("%v.IsCall() = %v, want %v", c.bt, got, c.call)
		}
		if got := c.bt.IsConditional(); got != c.cond {
			t.Errorf("%v.IsConditional() = %v, want %v", c.bt, got, c.cond)
		}
		if got := c.bt.Valid(); got != c.valid {
			t.Errorf("%v.Valid() = %v, want %v", c.bt, got, c.valid)
		}
	}
}

func TestRecordInstructions(t *testing.T) {
	r := Record{InstrBefore: 7}
	if got := r.Instructions(); got != 8 {
		t.Errorf("Instructions() = %d, want 8", got)
	}
	r.InstrBefore = 0
	if got := r.Instructions(); got != 1 {
		t.Errorf("Instructions() = %d, want 1", got)
	}
}

func TestRecordValidate(t *testing.T) {
	good := Record{PC: 0x1000, Target: 0x2000, Type: IndirectJump, Taken: true}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate() on valid record: %v", err)
	}
	notTakenCond := Record{PC: 0x1000, Target: 0x1004, Type: CondDirect, Taken: false}
	if err := notTakenCond.Validate(); err != nil {
		t.Errorf("not-taken conditional should validate: %v", err)
	}
	badType := Record{Type: BranchType(9), Taken: true}
	if err := badType.Validate(); err == nil {
		t.Error("Validate() accepted invalid branch type")
	}
	notTakenJump := Record{Type: UncondDirect, Taken: false}
	if err := notTakenJump.Validate(); err == nil {
		t.Error("Validate() accepted not-taken unconditional jump")
	}
}

func TestTraceInstructions(t *testing.T) {
	tr := &Trace{Name: "t"}
	tr.Append(Record{InstrBefore: 4, Type: CondDirect, Taken: true, PC: 1, Target: 2})
	tr.Append(Record{InstrBefore: 0, Type: Return, Taken: true, PC: 3, Target: 4})
	if got := tr.Instructions(); got != 6 {
		t.Errorf("Instructions() = %d, want 6", got)
	}
}
