package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestReadNeverPanicsOnGarbage feeds random byte strings (with and without
// a valid magic prefix) to the decoder: it must fail cleanly, never panic,
// and never allocate absurd amounts for corrupt length fields.
func TestReadNeverPanicsOnGarbage(t *testing.T) {
	f := func(seed int64, withMagic bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(512)
		data := make([]byte, 0, n+8)
		if withMagic {
			data = append(data, magic[:]...)
		}
		for i := 0; i < n; i++ {
			data = append(data, byte(rng.Intn(256)))
		}
		tr, err := Read(bytes.NewReader(data))
		if err == nil {
			// A random payload can occasionally decode; it must then be a
			// fully valid trace.
			for _, r := range tr.Records {
				if r.Validate() != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestReadHugeCountRejected ensures corrupt record counts are rejected
// before allocation.
func TestReadHugeCountRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(0) // empty name
	// A varint encoding an enormous record count.
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	if _, err := Read(&buf); err == nil {
		t.Error("absurd record count accepted")
	}
}

// TestReadHugeNameRejected ensures corrupt name lengths are rejected.
func TestReadHugeNameRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x0F}) // name length ~4G
	if _, err := Read(&buf); err == nil {
		t.Error("absurd name length accepted")
	}
}

// FuzzRead is the native fuzz target for the trace decoder.
func FuzzRead(f *testing.F) {
	// Seed with a valid encoded trace and a few corruptions of it.
	var buf bytes.Buffer
	valid := &Trace{Name: "seed", Records: []Record{
		{PC: 0x400000, Target: 0x400020, InstrBefore: 3, Type: CondDirect, Taken: true},
		{PC: 0x400100, Target: 0x7f0000, InstrBefore: 12, Type: IndirectCall, Taken: true},
	}}
	if err := Write(&buf, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(magic[:])
	corrupt := append([]byte(nil), buf.Bytes()...)
	if len(corrupt) > 12 {
		corrupt[12] ^= 0xFF
	}
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Successful decodes must be internally valid and re-encodable.
		for _, r := range tr.Records {
			if vErr := r.Validate(); vErr != nil {
				t.Fatalf("decoded invalid record: %v", vErr)
			}
		}
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}
