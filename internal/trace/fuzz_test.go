package trace

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestReadNeverPanicsOnGarbage feeds random byte strings (with and without
// a valid magic prefix) to the decoder: it must fail cleanly, never panic,
// and never allocate absurd amounts for corrupt length fields.
func TestReadNeverPanicsOnGarbage(t *testing.T) {
	f := func(seed int64, withMagic bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(512)
		data := make([]byte, 0, n+8)
		if withMagic {
			data = append(data, magic[:]...)
		}
		for i := 0; i < n; i++ {
			data = append(data, byte(rng.Intn(256)))
		}
		tr, err := Read(bytes.NewReader(data))
		if err == nil {
			// A random payload can occasionally decode; it must then be a
			// fully valid trace.
			for _, r := range tr.Records {
				if r.Validate() != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestReadHugeCountRejected ensures corrupt record counts are rejected
// before allocation.
func TestReadHugeCountRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.WriteByte(0) // empty name
	// A varint encoding an enormous record count.
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	if _, err := Read(&buf); err == nil {
		t.Error("absurd record count accepted")
	}
}

// TestReadHugeNameRejected ensures corrupt name lengths are rejected.
func TestReadHugeNameRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x0F}) // name length ~4G
	if _, err := Read(&buf); err == nil {
		t.Error("absurd name length accepted")
	}
}

// FuzzRead is the native fuzz target for the trace decoder.
func FuzzRead(f *testing.F) {
	// Seed with a valid encoded trace and a few corruptions of it.
	var buf bytes.Buffer
	valid := &Trace{Name: "seed", Records: []Record{
		{PC: 0x400000, Target: 0x400020, InstrBefore: 3, Type: CondDirect, Taken: true},
		{PC: 0x400100, Target: 0x7f0000, InstrBefore: 12, Type: IndirectCall, Taken: true},
	}}
	if err := Write(&buf, valid); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add(magic[:])
	corrupt := append([]byte(nil), buf.Bytes()...)
	if len(corrupt) > 12 {
		corrupt[12] ^= 0xFF
	}
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Successful decodes must be internally valid and re-encodable.
		for _, r := range tr.Records {
			if vErr := r.Validate(); vErr != nil {
				t.Fatalf("decoded invalid record: %v", vErr)
			}
		}
		var out bytes.Buffer
		if err := Write(&out, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
	})
}

// FuzzTraceRoundTrip drives the encoder and decoder together: fuzz bytes
// are shaped into an arbitrary-but-valid trace, and Write -> Read ->
// Write must reproduce both the records and the exact encoded bytes.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add("w", []byte{})
	f.Add("loop", []byte{
		0x00, 0x40, 0x00, 0x00, 0x20, 0x40, 0x00, 0x00, 0x03, 0x00, 0x09,
		0x00, 0x40, 0x01, 0x00, 0x00, 0x00, 0x7f, 0x00, 0x0c, 0x00, 0x03,
	})
	f.Fuzz(func(t *testing.T, name string, data []byte) {
		if len(name) > 1<<12 {
			name = name[:1<<12]
		}
		tr := &Trace{Name: name}
		for len(data) >= 11 {
			chunk := data[:11]
			data = data[11:]
			var pc, target uint64
			for i := 0; i < 4; i++ {
				pc |= uint64(chunk[i]) << (8 * i)
				target |= uint64(chunk[4+i]) << (8 * i)
			}
			typ := BranchType(chunk[10] % numBranchTypes)
			taken := chunk[10]&0x40 != 0
			if !typ.IsConditional() {
				taken = true // Validate requires unconditional types taken
			}
			tr.Append(Record{
				PC:          pc,
				Target:      target,
				InstrBefore: uint32(chunk[8]) | uint32(chunk[9])<<8,
				Type:        typ,
				Taken:       taken,
			})
		}
		var enc bytes.Buffer
		if err := Write(&enc, tr); err != nil {
			t.Fatalf("encoding a valid trace failed: %v", err)
		}
		got, err := Read(bytes.NewReader(enc.Bytes()))
		if err != nil {
			t.Fatalf("decoding our own encoding failed: %v", err)
		}
		if got.Name != tr.Name || len(got.Records) != len(tr.Records) {
			t.Fatalf("round trip changed shape: name %q->%q, records %d->%d",
				tr.Name, got.Name, len(tr.Records), len(got.Records))
		}
		for i := range tr.Records {
			if got.Records[i] != tr.Records[i] {
				t.Fatalf("record %d changed in round trip: %+v -> %+v", i, tr.Records[i], got.Records[i])
			}
		}
		var re bytes.Buffer
		if err := Write(&re, got); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc.Bytes(), re.Bytes()) {
			t.Fatal("re-encoded bytes differ from the original encoding")
		}
	})
}
