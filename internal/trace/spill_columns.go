package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Columnar spill access: the blocked spill format decoded straight into
// column arrays. The wire format is unchanged — WriteSpillColumns produces
// bytes identical to WriteSpill on the equivalent record slice, and
// ReadSpillColumns accepts exactly the files ReadSpill accepts (including
// the SPL1/SPL2 fallbacks) — only the in-memory destination differs:
// records land in a pooled Columns arena with zero per-record allocation
// instead of an appended []Record.

// WriteSpillColumns encodes c as a spill file in the current (SPL3) format,
// byte-identical to WriteSpill on c's record-slice form. Name, Seed,
// Instructions and Fingerprint are taken from h; Records is computed from c.
func WriteSpillColumns(w io.Writer, h SpillHeader, c *Columns) error {
	if err := c.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	if err := writeSpillHeader(bw, spillMagic, h, c.Len()); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	scratch := make([]byte, 0, spillBlockRecords*8)
	pc, target, instr := c.pc, c.target, c.instrBefore
	for start := 0; start < c.Len(); start += spillBlockRecords {
		end := start + spillBlockRecords
		if end > c.Len() {
			end = c.Len()
		}
		scratch = scratch[:0]
		var prevPC uint64
		for i := start; i < end; i++ {
			header := c.typ[i]
			if c.Taken(i) {
				header |= 1 << 3
			}
			scratch = append(scratch, header)
			scratch = binary.AppendUvarint(scratch, uint64(instr[i]))
			scratch = binary.AppendUvarint(scratch, pc[i]^prevPC)
			scratch = binary.AppendUvarint(scratch, target[i]^pc[i])
			prevPC = pc[i]
		}
		n := binary.PutUvarint(buf[:], uint64(end-start))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		n = binary.PutUvarint(buf[:], uint64(len(scratch)))
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		binary.LittleEndian.PutUint64(buf[:8], fnv64a(scratch))
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
		if _, err := bw.Write(scratch); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpillColumns decodes a complete spill file of any format directly
// into columnar form, with the same header/checksum/record validation as
// ReadSpill. Blocked files (SPL2/SPL3) take the zero-copy fast path: each
// block is bulk-decoded into pooled column arrays (pass the result to
// ReleaseColumns when done to recycle the arena); SPL1 files fall back
// through the record-slice decoder.
func ReadSpillColumns(r io.Reader) (SpillHeader, *Columns, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	h, version, err := readSpillHeader(br)
	if err != nil {
		return h, nil, err
	}
	if version == 1 {
		t, err := readSpillPayloadV1(br, h)
		if err != nil {
			return h, nil, err
		}
		if t.Name != h.Name {
			return h, nil, fmt.Errorf("%w: payload name %q, header says %q", ErrSpillMismatch, t.Name, h.Name)
		}
		return h, t.Columns(), nil
	}
	c, err := readSpillBlocksColumns(br, h)
	if err != nil {
		return h, nil, err
	}
	return h, c, nil
}

// readSpillBlocksColumns decodes the blocked record sequence into a pooled
// Columns: blocks are length-checked and checksummed exactly as
// readSpillBlocks does, then bulk-decoded by index into the column arrays.
func readSpillBlocksColumns(br *bufio.Reader, h SpillHeader) (*Columns, error) {
	// Cap the initial arena size: a corrupt record count must not commit
	// gigabytes up front. Growth past the cap happens block by block, so
	// decoding fails naturally at the first bad block.
	capHint := h.Records
	if capHint > 1<<16 {
		capHint = 1 << 16
	}
	c := newPooledColumns(h.Name, int(capHint))
	c.setLen(0)
	var block []byte
	var decoded int64
	fail := func(err error) (*Columns, error) {
		ReleaseColumns(c)
		return nil, err
	}
	for decoded < h.Records {
		nrec, err := binary.ReadUvarint(br)
		if err != nil {
			return fail(fmt.Errorf("trace: reading spill block record count: %w", err))
		}
		if nrec == 0 || int64(nrec) > h.Records-decoded {
			return fail(fmt.Errorf("%w: block of %d records with %d remaining", ErrSpillMismatch, nrec, h.Records-decoded))
		}
		nbytes, err := binary.ReadUvarint(br)
		if err != nil {
			return fail(fmt.Errorf("trace: reading spill block size: %w", err))
		}
		if nbytes < nrec || nbytes > nrec*maxSpillRecordLen {
			return fail(fmt.Errorf("%w: block of %d bytes for %d records", ErrSpillMismatch, nbytes, nrec))
		}
		var sumBuf [8]byte
		if _, err := io.ReadFull(br, sumBuf[:]); err != nil {
			return fail(fmt.Errorf("trace: reading spill block checksum: %w", err))
		}
		want := binary.LittleEndian.Uint64(sumBuf[:])
		if uint64(cap(block)) < nbytes {
			block = make([]byte, nbytes)
		}
		block = block[:nbytes]
		if _, err := io.ReadFull(br, block); err != nil {
			return fail(fmt.Errorf("trace: reading spill block payload: %w", err))
		}
		if got := fnv64a(block); got != want {
			return fail(fmt.Errorf("%w: block checksum %016x, header says %016x", ErrSpillMismatch, got, want))
		}
		base := int(decoded)
		c.grow(base + int(nrec))
		c.setLen(base + int(nrec))
		if !decodeBlockColumns(c, base, block, int(nrec)) {
			// Malformed block contents. Re-decode through the validating
			// record-slice decoder (cold path) for the precise diagnostic, so
			// the columnar reader reports exactly what ReadSpill would.
			if _, err := appendBlockRecords(nil, block, int(nrec)); err != nil {
				return fail(err)
			}
			return fail(fmt.Errorf("%w: malformed block contents", ErrSpillMismatch))
		}
		decoded += int64(nrec)
	}
	c.finalize()
	// Every record was validated during decoding; mark the columns so
	// simulation passes skip revalidation (mirrors readSpillBlocks).
	c.validated = true
	return c, nil
}

// decodeBlockColumns bulk-decodes one block's records (the same per-record
// encoding appendBlockRecords consumes, PC delta chain starting at 0)
// straight into the column arrays at index base. data must be consumed
// exactly. Validation is inlined — the checks are exactly Record.Validate's
// two conditions plus the varint/overflow checks of the record-slice path —
// and any malformation reports false: the (cold) caller re-decodes the
// block through the validating reference decoder for the diagnostic, so no
// error values are built on this path.
//
//blbp:hot
func decodeBlockColumns(c *Columns, base int, data []byte, nrec int) bool {
	pcs := c.pc[base : base+nrec]
	targets := c.target[base : base+nrec]
	instrs := c.instrBefore[base : base+nrec]
	typs := c.typ[base : base+nrec]
	var prevPC uint64
	off := 0
	for i := 0; i < nrec; i++ {
		if off >= len(data) {
			return false
		}
		header := data[off]
		off++
		typ := header & 0x7
		taken := header&(1<<3) != 0
		if typ >= numBranchTypes {
			return false
		}
		if !taken && typ != uint8(CondDirect) {
			return false
		}
		ib, n := uvarintFast(data, off)
		if n <= 0 || ib > uint64(^uint32(0)) {
			return false
		}
		off += n
		pcDelta, n := uvarintFast(data, off)
		if n <= 0 {
			return false
		}
		off += n
		pc := pcDelta ^ prevPC
		tgtDelta, n := uvarintFast(data, off)
		if n <= 0 {
			return false
		}
		off += n
		pcs[i] = pc
		targets[i] = tgtDelta ^ pc
		instrs[i] = uint32(ib)
		typs[i] = typ
		if taken {
			j := uint(base + i)
			c.taken[j>>6] |= 1 << (j & 63)
		}
		prevPC = pc
	}
	return off == len(data)
}

// uvarintFast is binary.Uvarint with an inlined single-byte fast path: spill
// deltas are overwhelmingly one byte (XOR of consecutive loop PCs), so the
// common case avoids the call and its loop setup entirely. Returns n <= 0
// exactly when binary.Uvarint would (truncated or oversized varint).
func uvarintFast(data []byte, off int) (uint64, int) {
	if off < len(data) {
		if b := data[off]; b < 0x80 {
			return uint64(b), 1
		}
	}
	return binary.Uvarint(data[off:])
}

// fnv64a is an allocation-free FNV-64a over data (hash/fnv's New64a forces
// a heap allocation per hasher; the spill hot path sums one block at a
// time).
//
//blbp:hot
func fnv64a(data []byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range data {
		h = (h ^ uint64(b)) * prime64
	}
	return h
}
