package trace

import (
	"math"
	"testing"
)

func statsFixture() *Stats {
	tr := &Trace{Name: "fix"}
	// 10 conditional branches, 9 instructions before each => 100 instructions.
	for i := 0; i < 10; i++ {
		tr.Append(Record{PC: 0x100, Target: 0x200, InstrBefore: 9, Type: CondDirect, Taken: true})
	}
	// Indirect site A: monomorphic, executed 4 times.
	for i := 0; i < 4; i++ {
		tr.Append(Record{PC: 0xA00, Target: 0x1000, Type: IndirectCall, Taken: true})
	}
	// Indirect site B: 3 targets, executed 6 times.
	targets := []uint64{0x2000, 0x3000, 0x4000, 0x2000, 0x3000, 0x2000}
	for _, tgt := range targets {
		tr.Append(Record{PC: 0xB00, Target: tgt, Type: IndirectJump, Taken: true})
	}
	return Analyze(tr)
}

func TestStatsCounts(t *testing.T) {
	s := statsFixture()
	if s.Instructions != 110 {
		t.Errorf("Instructions = %d, want 110", s.Instructions)
	}
	if s.Count[CondDirect] != 10 {
		t.Errorf("cond count = %d, want 10", s.Count[CondDirect])
	}
	if got := s.IndirectCount(); got != 10 {
		t.Errorf("IndirectCount = %d, want 10", got)
	}
	if got := s.BranchCount(); got != 20 {
		t.Errorf("BranchCount = %d, want 20", got)
	}
	if got := s.StaticIndirectSites(); got != 2 {
		t.Errorf("StaticIndirectSites = %d, want 2", got)
	}
}

func TestPerKilo(t *testing.T) {
	s := statsFixture()
	want := 10.0 * 1000 / 110
	if got := s.PerKilo(CondDirect); math.Abs(got-want) > 1e-9 {
		t.Errorf("PerKilo(cond) = %v, want %v", got, want)
	}
	empty := Analyze(&Trace{})
	if got := empty.PerKilo(CondDirect); got != 0 {
		t.Errorf("PerKilo on empty trace = %v, want 0", got)
	}
}

func TestPolymorphicFraction(t *testing.T) {
	s := statsFixture()
	// Site B (6 execs, 3 targets) is polymorphic; site A (4 execs) is not.
	want := 6.0 / 10.0
	if got := s.PolymorphicFraction(); math.Abs(got-want) > 1e-9 {
		t.Errorf("PolymorphicFraction = %v, want %v", got, want)
	}
	empty := Analyze(&Trace{})
	if got := empty.PolymorphicFraction(); got != 0 {
		t.Errorf("PolymorphicFraction on empty trace = %v, want 0", got)
	}
}

func TestTargetCountCCDF(t *testing.T) {
	s := statsFixture()
	ccdf := s.TargetCountCCDF(5)
	if len(ccdf) != 5 {
		t.Fatalf("len(ccdf) = %d, want 5", len(ccdf))
	}
	// All 10 executions have >= 1 target; 6 of 10 have >= 2 and >= 3.
	wants := []float64{100, 60, 60, 0, 0}
	for i, want := range wants {
		if math.Abs(ccdf[i]-want) > 1e-9 {
			t.Errorf("ccdf[%d] = %v, want %v", i, ccdf[i], want)
		}
	}
	if got := s.TargetCountCCDF(0); got != nil {
		t.Errorf("TargetCountCCDF(0) = %v, want nil", got)
	}
}

func TestTargetCountCCDFClampsLargeSets(t *testing.T) {
	tr := &Trace{}
	for i := 0; i < 10; i++ {
		tr.Append(Record{PC: 0xC00, Target: uint64(0x1000 * (i + 1)), Type: IndirectJump, Taken: true})
	}
	s := Analyze(tr)
	ccdf := s.TargetCountCCDF(4)
	// The single site has 10 targets, clamped into the >= 4 bucket.
	for i, v := range ccdf {
		if v != 100 {
			t.Errorf("ccdf[%d] = %v, want 100", i, v)
		}
	}
}

func TestTargetSetSizesSorted(t *testing.T) {
	s := statsFixture()
	sizes := s.TargetSetSizes()
	if len(sizes) != 2 || sizes[0] != 1 || sizes[1] != 3 {
		t.Errorf("TargetSetSizes = %v, want [1 3]", sizes)
	}
	if got := s.MaxTargets(); got != 3 {
		t.Errorf("MaxTargets = %d, want 3", got)
	}
}
