package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleTrace() *Trace {
	return &Trace{
		Name: "sample",
		Records: []Record{
			{PC: 0x400000, Target: 0x400010, InstrBefore: 3, Type: CondDirect, Taken: true},
			{PC: 0x400010, Target: 0x400014, InstrBefore: 0, Type: CondDirect, Taken: false},
			{PC: 0x400100, Target: 0x7f0000, InstrBefore: 12, Type: IndirectCall, Taken: true},
			{PC: 0x7f0040, Target: 0x400108, InstrBefore: 9, Type: Return, Taken: true},
			{PC: 0x400200, Target: 0x500000, InstrBefore: 100, Type: IndirectJump, Taken: true},
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	orig := sampleTrace()
	if err := Write(&buf, orig); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Name != orig.Name {
		t.Errorf("name = %q, want %q", got.Name, orig.Name)
	}
	if !reflect.DeepEqual(got.Records, orig.Records) {
		t.Errorf("records differ:\n got %+v\nwant %+v", got.Records, orig.Records)
	}
}

func TestReadBadMagic(t *testing.T) {
	_, err := Read(bytes.NewReader([]byte("NOTATRACEFILE___")))
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("Read bad magic: err = %v, want ErrBadMagic", err)
	}
}

func TestReadTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleTrace()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	full := buf.Bytes()
	// Every proper prefix must fail cleanly, never panic.
	for n := 0; n < len(full); n++ {
		if _, err := Read(bytes.NewReader(full[:n])); err == nil {
			t.Errorf("Read of %d-byte prefix succeeded, want error", n)
		}
	}
}

func TestWriteRejectsInvalidRecord(t *testing.T) {
	tr := &Trace{Records: []Record{{Type: BranchType(7), Taken: true}}}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err == nil {
		t.Error("Write accepted invalid record")
	}
}

func TestEmptyTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, &Trace{Name: ""}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if len(got.Records) != 0 {
		t.Errorf("got %d records, want 0", len(got.Records))
	}
}

// randomTrace builds an arbitrary-but-valid trace from a rand source, used
// by the property-based round-trip test.
func randomTrace(r *rand.Rand) *Trace {
	n := r.Intn(200)
	tr := &Trace{Name: "fuzz"}
	for i := 0; i < n; i++ {
		rec := Record{
			PC:          r.Uint64(),
			Target:      r.Uint64(),
			InstrBefore: uint32(r.Intn(1 << 16)),
			Type:        BranchType(r.Intn(numBranchTypes)),
		}
		if rec.Type.IsConditional() {
			rec.Taken = r.Intn(2) == 0
		} else {
			rec.Taken = true
		}
		tr.Append(rec)
	}
	return tr
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		orig := randomTrace(rand.New(rand.NewSource(seed)))
		var buf bytes.Buffer
		if err := Write(&buf, orig); err != nil {
			t.Logf("Write: %v", err)
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			t.Logf("Read: %v", err)
			return false
		}
		if len(got.Records) != len(orig.Records) {
			return false
		}
		for i := range got.Records {
			if got.Records[i] != orig.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEncodingIsCompact(t *testing.T) {
	// A tight loop — same PC repeatedly — should compress far below the
	// naive 25+ bytes/record encoding thanks to XOR deltas.
	tr := &Trace{Name: "loop"}
	for i := 0; i < 1000; i++ {
		tr.Append(Record{PC: 0x400100, Target: 0x400000, InstrBefore: 5, Type: CondDirect, Taken: true})
	}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("Write: %v", err)
	}
	perRecord := float64(buf.Len()) / 1000
	if perRecord > 8 {
		t.Errorf("loop trace uses %.1f bytes/record, want <= 8", perRecord)
	}
}
