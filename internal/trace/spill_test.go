package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func spillTestTrace() *Trace {
	t := &Trace{Name: "spill-wl"}
	t.Append(Record{PC: 0x400000, Target: 0x400020, InstrBefore: 3, Type: CondDirect, Taken: true})
	t.Append(Record{PC: 0x400100, Target: 0x7f0000, InstrBefore: 12, Type: IndirectCall, Taken: true})
	t.Append(Record{PC: 0x7f0040, Target: 0x400104, InstrBefore: 7, Type: Return, Taken: true})
	return t
}

func TestSpillRoundTrip(t *testing.T) {
	tr := spillTestTrace()
	want := SpillHeader{Name: tr.Name, Seed: -42, Instructions: 9001}
	var buf bytes.Buffer
	if err := WriteSpill(&buf, want, tr); err != nil {
		t.Fatal(err)
	}
	h, got, err := ReadSpill(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != want.Name || h.Seed != want.Seed || h.Instructions != want.Instructions {
		t.Errorf("identity = %q/%d/%d, want %q/%d/%d",
			h.Name, h.Seed, h.Instructions, want.Name, want.Seed, want.Instructions)
	}
	if h.Records != int64(len(tr.Records)) {
		t.Errorf("header records = %d, want %d", h.Records, len(tr.Records))
	}
	if got.Name != tr.Name || len(got.Records) != len(tr.Records) {
		t.Fatalf("payload shape %q/%d, want %q/%d", got.Name, len(got.Records), tr.Name, len(tr.Records))
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Errorf("record %d differs after round trip", i)
		}
	}
}

func TestReadSpillHeaderOnly(t *testing.T) {
	tr := spillTestTrace()
	var buf bytes.Buffer
	if err := WriteSpill(&buf, SpillHeader{Name: tr.Name, Seed: 7, Instructions: 500}, tr); err != nil {
		t.Fatal(err)
	}
	h, err := ReadSpillHeader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != tr.Name || h.Seed != 7 || h.Instructions != 500 || h.Records != int64(len(tr.Records)) {
		t.Errorf("header = %+v", h)
	}
}

func TestReadSpillRejectsBarePayload(t *testing.T) {
	// The pre-header spill format was a bare BLBPTRC1 payload; it must be
	// recognizable as not-a-spill so caches can prune stale files.
	var buf bytes.Buffer
	if err := Write(&buf, spillTestTrace()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSpill(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrBadSpillMagic) {
		t.Errorf("bare payload error = %v, want ErrBadSpillMagic", err)
	}
	if _, err := ReadSpillHeader(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrBadSpillMagic) {
		t.Errorf("header probe error = %v, want ErrBadSpillMagic", err)
	}
}

func TestReadSpillDetectsCorruptPayload(t *testing.T) {
	tr := spillTestTrace()
	var buf bytes.Buffer
	if err := WriteSpill(&buf, SpillHeader{Name: tr.Name, Seed: 1, Instructions: 100}, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one bit in the last payload byte; the checksum must catch it
	// even if the payload still happens to decode.
	data[len(data)-1] ^= 0x40
	if _, _, err := ReadSpill(bytes.NewReader(data)); !errors.Is(err, ErrSpillMismatch) {
		t.Errorf("corrupt payload error = %v, want ErrSpillMismatch", err)
	}
}

func TestReadSpillDetectsTruncation(t *testing.T) {
	tr := spillTestTrace()
	var buf bytes.Buffer
	if err := WriteSpill(&buf, SpillHeader{Name: tr.Name, Seed: 1, Instructions: 100}, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := len(data) - 1; cut > len(data)-6; cut-- {
		if _, _, err := ReadSpill(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d/%d bytes accepted", cut, len(data))
		}
	}
	// Truncation inside the header must fail the cheap probe too.
	if _, err := ReadSpillHeader(bytes.NewReader(data[:5])); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestReadSpillHugeNameRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(spillMagic[:])
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x0F}) // name length ~4G
	if _, err := ReadSpillHeader(&buf); err == nil {
		t.Error("absurd spill name length accepted")
	}
}

func TestReadSpillEmpty(t *testing.T) {
	if _, err := ReadSpillHeader(bytes.NewReader(nil)); !errors.Is(err, io.ErrUnexpectedEOF) && err == nil {
		t.Error("empty input accepted")
	}
}
