package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func spillTestTrace() *Trace {
	t := &Trace{Name: "spill-wl"}
	t.Append(Record{PC: 0x400000, Target: 0x400020, InstrBefore: 3, Type: CondDirect, Taken: true})
	t.Append(Record{PC: 0x400100, Target: 0x7f0000, InstrBefore: 12, Type: IndirectCall, Taken: true})
	t.Append(Record{PC: 0x7f0040, Target: 0x400104, InstrBefore: 7, Type: Return, Taken: true})
	return t
}

func TestSpillRoundTrip(t *testing.T) {
	tr := spillTestTrace()
	want := SpillHeader{Name: tr.Name, Seed: -42, Instructions: 9001}
	var buf bytes.Buffer
	if err := WriteSpill(&buf, want, tr); err != nil {
		t.Fatal(err)
	}
	h, got, err := ReadSpill(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != want.Name || h.Seed != want.Seed || h.Instructions != want.Instructions {
		t.Errorf("identity = %q/%d/%d, want %q/%d/%d",
			h.Name, h.Seed, h.Instructions, want.Name, want.Seed, want.Instructions)
	}
	if h.Records != int64(len(tr.Records)) {
		t.Errorf("header records = %d, want %d", h.Records, len(tr.Records))
	}
	if got.Name != tr.Name || len(got.Records) != len(tr.Records) {
		t.Fatalf("payload shape %q/%d, want %q/%d", got.Name, len(got.Records), tr.Name, len(tr.Records))
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Errorf("record %d differs after round trip", i)
		}
	}
}

func TestReadSpillHeaderOnly(t *testing.T) {
	tr := spillTestTrace()
	var buf bytes.Buffer
	if err := WriteSpill(&buf, SpillHeader{Name: tr.Name, Seed: 7, Instructions: 500}, tr); err != nil {
		t.Fatal(err)
	}
	h, err := ReadSpillHeader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != tr.Name || h.Seed != 7 || h.Instructions != 500 || h.Records != int64(len(tr.Records)) {
		t.Errorf("header = %+v", h)
	}
}

// bigSpillTrace spans several encoder blocks.
func bigSpillTrace(records int) *Trace {
	t := &Trace{Name: "spill-big"}
	pc := uint64(0x400000)
	for i := 0; i < records; i++ {
		switch i % 3 {
		case 0:
			t.Append(Record{PC: pc, Target: pc + 0x20, InstrBefore: uint32(i % 17), Type: CondDirect, Taken: i%2 == 0})
		case 1:
			t.Append(Record{PC: pc + 4, Target: uint64(0x7f0000 + i%5*64), InstrBefore: 9, Type: IndirectCall, Taken: true})
		default:
			t.Append(Record{PC: pc + 8, Target: pc - 0x100, InstrBefore: 2, Type: Return, Taken: true})
		}
		pc += uint64(i%7) * 16
	}
	return t
}

func TestSpillRoundTripMultiBlock(t *testing.T) {
	tr := bigSpillTrace(3*spillBlockRecords + 17)
	var buf bytes.Buffer
	if err := WriteSpill(&buf, SpillHeader{Name: tr.Name, Seed: 5, Instructions: 1e6}, tr); err != nil {
		t.Fatal(err)
	}
	h, got, err := ReadSpill(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h.Records != int64(len(tr.Records)) || len(got.Records) != len(tr.Records) {
		t.Fatalf("record counts: header %d, decoded %d, want %d", h.Records, len(got.Records), len(tr.Records))
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Fatalf("record %d differs after multi-block round trip", i)
		}
	}
}

// TestSpillV1ReadFallback: files written in the legacy whole-payload format
// must keep decoding, so old spill directories still warm-start new runs.
func TestSpillV1ReadFallback(t *testing.T) {
	tr := spillTestTrace()
	want := SpillHeader{Name: tr.Name, Seed: -42, Instructions: 9001}
	var buf bytes.Buffer
	if err := WriteSpillV1(&buf, want, tr); err != nil {
		t.Fatal(err)
	}
	h, err := ReadSpillHeader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != want.Name || h.Seed != want.Seed || h.Instructions != want.Instructions {
		t.Errorf("v1 header identity = %+v, want %+v", h, want)
	}
	if h.Checksum == 0 {
		t.Error("v1 header checksum missing")
	}
	h2, got, err := ReadSpill(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if h2 != h {
		t.Errorf("full read header %+v differs from probe %+v", h2, h)
	}
	for i := range tr.Records {
		if got.Records[i] != tr.Records[i] {
			t.Errorf("record %d differs after v1 round trip", i)
		}
	}
	// Corruption in the v1 payload must still be caught by its checksum.
	data := append([]byte(nil), buf.Bytes()...)
	data[len(data)-1] ^= 0x40
	if _, _, err := ReadSpill(bytes.NewReader(data)); !errors.Is(err, ErrSpillMismatch) {
		t.Errorf("corrupt v1 payload error = %v, want ErrSpillMismatch", err)
	}
}

// TestSpillBlockCorruption flips a byte deep inside a middle block: the
// per-block checksum must catch it without decoding past that block.
func TestSpillBlockCorruption(t *testing.T) {
	tr := bigSpillTrace(3 * spillBlockRecords)
	var buf bytes.Buffer
	if err := WriteSpill(&buf, SpillHeader{Name: tr.Name, Seed: 1, Instructions: 100}, tr); err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), buf.Bytes()...)
	data[len(data)/2] ^= 0x01
	if _, _, err := ReadSpill(bytes.NewReader(data)); !errors.Is(err, ErrSpillMismatch) {
		t.Errorf("corrupt block error = %v, want ErrSpillMismatch", err)
	}
}

func TestReadSpillRejectsBarePayload(t *testing.T) {
	// The pre-header spill format was a bare BLBPTRC1 payload; it must be
	// recognizable as not-a-spill so caches can prune stale files.
	var buf bytes.Buffer
	if err := Write(&buf, spillTestTrace()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSpill(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrBadSpillMagic) {
		t.Errorf("bare payload error = %v, want ErrBadSpillMagic", err)
	}
	if _, err := ReadSpillHeader(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrBadSpillMagic) {
		t.Errorf("header probe error = %v, want ErrBadSpillMagic", err)
	}
}

func TestReadSpillDetectsCorruptPayload(t *testing.T) {
	tr := spillTestTrace()
	var buf bytes.Buffer
	if err := WriteSpill(&buf, SpillHeader{Name: tr.Name, Seed: 1, Instructions: 100}, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip one bit in the last payload byte; the checksum must catch it
	// even if the payload still happens to decode.
	data[len(data)-1] ^= 0x40
	if _, _, err := ReadSpill(bytes.NewReader(data)); !errors.Is(err, ErrSpillMismatch) {
		t.Errorf("corrupt payload error = %v, want ErrSpillMismatch", err)
	}
}

func TestReadSpillDetectsTruncation(t *testing.T) {
	tr := spillTestTrace()
	var buf bytes.Buffer
	if err := WriteSpill(&buf, SpillHeader{Name: tr.Name, Seed: 1, Instructions: 100}, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := len(data) - 1; cut > len(data)-6; cut-- {
		if _, _, err := ReadSpill(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d/%d bytes accepted", cut, len(data))
		}
	}
	// Truncation inside the header must fail the cheap probe too.
	if _, err := ReadSpillHeader(bytes.NewReader(data[:5])); err == nil {
		t.Error("truncated header accepted")
	}
}

func TestReadSpillHugeNameRejected(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(spillMagic[:])
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0x0F}) // name length ~4G
	if _, err := ReadSpillHeader(&buf); err == nil {
		t.Error("absurd spill name length accepted")
	}
}

func TestReadSpillEmpty(t *testing.T) {
	if _, err := ReadSpillHeader(bytes.NewReader(nil)); !errors.Is(err, io.ErrUnexpectedEOF) && err == nil {
		t.Error("empty input accepted")
	}
}

func benchSpillDecode(b *testing.B, write func(io.Writer, SpillHeader, *Trace) error) {
	tr := bigSpillTrace(200_000)
	var buf bytes.Buffer
	if err := write(&buf, SpillHeader{Name: tr.Name, Seed: 3, Instructions: 1e6}, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, got, err := ReadSpill(bytes.NewReader(data)); err != nil || len(got.Records) != len(tr.Records) {
			b.Fatalf("decode: %v (%d records)", err, len(got.Records))
		}
	}
}

func BenchmarkReadSpill(b *testing.B)   { benchSpillDecode(b, WriteSpill) }
func BenchmarkReadSpillV1(b *testing.B) { benchSpillDecode(b, WriteSpillV1) }
