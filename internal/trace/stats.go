package trace

import "sort"

// Stats summarizes the branch population of a trace. It provides exactly the
// quantities the paper's characterization figures need: the per-kilo-
// instruction branch mix (Fig. 1), the fraction of instructions belonging to
// polymorphic indirect branches (Fig. 6), and the distribution of the number
// of distinct targets per indirect branch (Fig. 7).
type Stats struct {
	// Name is copied from the analyzed trace.
	Name string
	// Instructions is the total instruction count.
	Instructions int64
	// Count holds dynamic execution counts per branch type.
	Count [numBranchTypes]int64
	// targets maps each static indirect branch PC to its observed target
	// set and dynamic execution count.
	targets map[uint64]*siteInfo
}

type siteInfo struct {
	targets map[uint64]struct{}
	execs   int64
}

// Analyze computes statistics over a trace.
func Analyze(t *Trace) *Stats {
	return AnalyzeColumns(t.Columns())
}

// AnalyzeColumns computes statistics over a columnar trace. Totals and
// per-class counts come from the columns' precomputed aggregates; only the
// indirect segments are walked for the per-site target sets.
func AnalyzeColumns(c *Columns) *Stats {
	s := &Stats{Name: c.Name, Instructions: c.Instructions(), targets: make(map[uint64]*siteInfo)}
	for t := BranchType(0); t < numBranchTypes; t++ {
		s.Count[t] = c.Count(t)
	}
	pc, target := c.PC(), c.Target()
	for _, seg := range c.Segments() {
		if !seg.Type.IsIndirect() {
			continue
		}
		for i := seg.Start; i < seg.End; i++ {
			site := s.targets[pc[i]]
			if site == nil {
				site = &siteInfo{targets: make(map[uint64]struct{})}
				s.targets[pc[i]] = site
			}
			site.targets[target[i]] = struct{}{}
			site.execs++
		}
	}
	return s
}

// PerKilo returns the dynamic execution count of the given branch type per
// 1000 instructions (the y-axis of the paper's Fig. 1).
func (s *Stats) PerKilo(t BranchType) float64 {
	if s.Instructions == 0 {
		return 0
	}
	return float64(s.Count[t]) * 1000 / float64(s.Instructions)
}

// BranchCount returns the total dynamic branch count across all types.
func (s *Stats) BranchCount() int64 {
	var n int64
	for _, c := range s.Count {
		n += c
	}
	return n
}

// IndirectCount returns the dynamic count of indirect jumps and calls.
func (s *Stats) IndirectCount() int64 {
	return s.Count[IndirectJump] + s.Count[IndirectCall]
}

// StaticIndirectSites returns the number of static indirect branch PCs seen.
func (s *Stats) StaticIndirectSites() int { return len(s.targets) }

// PolymorphicFraction returns the fraction of dynamic indirect branch
// executions whose static branch has more than one observed target over the
// whole trace (the paper's Fig. 6 metric). Returns 0 for traces without
// indirect branches.
func (s *Stats) PolymorphicFraction() float64 {
	var poly, total int64
	//blbp:allow(determinism) commutative sum over site counters; order-independent
	for _, site := range s.targets {
		total += site.execs
		if len(site.targets) > 1 {
			poly += site.execs
		}
	}
	if total == 0 {
		return 0
	}
	return float64(poly) / float64(total)
}

// TargetCountCCDF returns, for each x in [1, max], the percentage of dynamic
// indirect branch executions whose static branch has at least x distinct
// targets — the complementary CDF plotted in the paper's Fig. 7. The slice
// is indexed from 0, so result[0] corresponds to "at least 1 target" (always
// 100 when indirect branches exist).
func (s *Stats) TargetCountCCDF(max int) []float64 {
	if max <= 0 {
		return nil
	}
	counts := make([]int64, max+1)
	var total int64
	//blbp:allow(determinism) commutative histogram accumulation; order-independent
	for _, site := range s.targets {
		n := len(site.targets)
		if n > max {
			n = max
		}
		counts[n] += site.execs
		total += site.execs
	}
	ccdf := make([]float64, max)
	if total == 0 {
		return ccdf
	}
	var cum int64
	for x := max; x >= 1; x-- {
		cum += counts[x]
		ccdf[x-1] = float64(cum) * 100 / float64(total)
	}
	return ccdf
}

// TargetSetSizes returns the distinct-target-set size of every static
// indirect branch, sorted ascending.
func (s *Stats) TargetSetSizes() []int {
	sizes := make([]int, 0, len(s.targets))
	//blbp:allow(determinism) collected sizes are sorted below before returning
	for _, site := range s.targets {
		sizes = append(sizes, len(site.targets))
	}
	sort.Ints(sizes)
	return sizes
}

// MaxTargets returns the largest distinct-target-set size observed, or 0.
func (s *Stats) MaxTargets() int {
	max := 0
	//blbp:allow(determinism) max reduction; order-independent
	for _, site := range s.targets {
		if len(site.targets) > max {
			max = len(site.targets)
		}
	}
	return max
}
