package experiments

import (
	"blbp/internal/cond"
	"blbp/internal/core"
	"blbp/internal/ittage"
	"blbp/internal/predictor"
	"blbp/internal/report"
	"blbp/internal/stats"
	"blbp/internal/workload"
)

// CottageResult aggregates the COTTAGE comparison.
type CottageResult struct {
	// HPCondAcc / TAGECondAcc are the conditional accuracies of the two
	// conditional predictors.
	HPCondAcc   float64
	TAGECondAcc float64
	// Indirect MPKI of each pairing's indirect side.
	BLBPMPKI   float64
	ITTAGEMPKI float64
}

// Cottage runs the paper's §2.2 COTTAGE configuration — Seznec's TAGE for
// conditional branches combined with ITTAGE for indirect targets — against
// this repository's default pairing (hashed perceptron + BLBP), on both
// axes at once.
func (r *Runner) Cottage(specs []workload.Spec) (*report.Table, CottageResult, error) {
	hpPass := Shared(CondKeyHP, func() (cond.Predictor, []predictor.Indirect) {
		return newHP(), []predictor.Indirect{
			core.New(core.DefaultConfig()),
		}
	})
	cottagePass := Shared(CondKeyTAGE, func() (cond.Predictor, []predictor.Indirect) {
		return cond.NewTAGE(cond.DefaultTAGEConfig()), []predictor.Indirect{
			ittage.New(ittage.DefaultConfig()),
		}
	})
	rows, err := r.RunSuite(specs, []Pass{hpPass, cottagePass})
	if err != nil {
		return nil, CottageResult{}, err
	}
	var res CottageResult
	hpAcc := make([]float64, len(rows))
	tgAcc := make([]float64, len(rows))
	blbp := make([]float64, len(rows))
	itt := make([]float64, len(rows))
	for i, r := range rows {
		hpAcc[i] = r.Results[NameBLBP].CondAccuracy()
		tgAcc[i] = r.Results[NameITTAGE].CondAccuracy()
		blbp[i] = r.MPKI(NameBLBP)
		itt[i] = r.MPKI(NameITTAGE)
	}
	res.HPCondAcc = stats.Mean(hpAcc)
	res.TAGECondAcc = stats.Mean(tgAcc)
	res.BLBPMPKI = stats.Mean(blbp)
	res.ITTAGEMPKI = stats.Mean(itt)

	tb := report.NewTable(
		"Extension (§2.2): COTTAGE (TAGE + ITTAGE) vs hashed perceptron + BLBP",
		"pairing", "cond accuracy", "indirect MPKI",
	)
	tb.AddRowf("hashed perceptron + BLBP", res.HPCondAcc, res.BLBPMPKI)
	tb.AddRowf("COTTAGE (TAGE + ITTAGE)", res.TAGECondAcc, res.ITTAGEMPKI)
	return tb, res, nil
}

// LatencyResult aggregates the §3.7 prediction-latency analysis.
type LatencyResult struct {
	// PctOneCycle is the fraction of predictions with <= 5 candidates
	// (one cycle at 5 parallel cosine-similarity units).
	PctOneCycle float64
	// PctWithin4 is the fraction within 4 cycles (<= 20 candidates).
	PctWithin4 float64
	// MeanCycles is the average ceil(n/5) over all predictions.
	MeanCycles float64
}

// Latency reproduces the feasibility argument of §3.7/Fig. 7: with five
// cosine similarities computed per cycle, the paper argues over half of all
// predictions take one cycle and 90% take at most four. The driver runs
// BLBP over the suite and aggregates its candidate-set-size histogram.
func (r *Runner) Latency(specs []workload.Spec) (*report.Table, LatencyResult, error) {
	// Each task owns the recorder slot of its workload index, so the driver
	// is parallel-safe and the aggregation below visits recorders in
	// deterministic spec order.
	recs := make([]*latencyRecorder, len(specs))
	pass := Pass{CondKey: CondKeyHP, New: func(w int) (cond.Predictor, []predictor.Indirect) {
		rec := &latencyRecorder{BLBP: core.New(core.DefaultConfig())}
		recs[w] = rec
		return newHP(), []predictor.Indirect{rec}
	}}
	if _, err := r.RunSuite(specs, []Pass{pass}); err != nil {
		return nil, LatencyResult{}, err
	}
	var hist []int64
	for _, rec := range recs {
		if rec == nil {
			continue
		}
		h := rec.BLBP.CandidateHistogram()
		if hist == nil {
			hist = make([]int64, len(h))
		}
		for i, v := range h {
			hist[i] += v
		}
	}
	var total, oneCycle, within4, cycleSum int64
	for n, v := range hist {
		total += v
		cycles := int64((n + 4) / 5)
		if cycles == 0 {
			cycles = 1 // an empty candidate set still costs the probe
		}
		if cycles <= 1 {
			oneCycle += v
		}
		if cycles <= 4 {
			within4 += v
		}
		cycleSum += cycles * v
	}
	var res LatencyResult
	if total > 0 {
		res.PctOneCycle = 100 * float64(oneCycle) / float64(total)
		res.PctWithin4 = 100 * float64(within4) / float64(total)
		res.MeanCycles = float64(cycleSum) / float64(total)
	}
	tb := report.NewTable(
		"Extension (§3.7): BLBP selection latency at 5 cosine similarities per cycle",
		"metric", "value",
	)
	tb.AddRowf("% predictions in 1 cycle (paper: over half)", res.PctOneCycle)
	tb.AddRowf("% predictions within 4 cycles (paper: ~90%)", res.PctWithin4)
	tb.AddRowf("mean cycles per prediction", res.MeanCycles)
	return tb, res, nil
}

// latencyRecorder is a thin pass-through that keeps the BLBP instance
// reachable after the run.
type latencyRecorder struct {
	*core.BLBP
}
