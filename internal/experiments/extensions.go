package experiments

import (
	"fmt"

	"blbp/internal/core"
)

// geometricIntervals splits the usable history depth into n geometric
// intervals (each starting slightly before the previous one ends, as the
// paper's tuned intervals overlap). Used to scale the number of
// sub-predictor SRAM arrays in the SNIP-to-BLBP reduction study.
func geometricIntervals(n, maxHist int) ([]core.Interval, []int) {
	if n < 1 {
		panic("experiments: need at least one interval")
	}
	intervals := make([]core.Interval, n)
	lengths := make([]int, n)
	lo := 0
	hi := 13
	ratio := 1.0
	if n > 1 {
		// Choose the growth so the last interval ends at maxHist.
		ratio = pow(float64(maxHist)/13, 1/float64(n-1))
	}
	end := 13.0
	for i := 0; i < n; i++ {
		if hi > maxHist {
			hi = maxHist
		}
		intervals[i] = core.Interval{Lo: lo, Hi: hi}
		lengths[i] = hi + 1
		// Next interval starts inside the current one (~15% overlap).
		lo = hi - (hi-lo)/6
		end *= ratio
		hi = int(end + 0.5)
		if hi <= lo {
			hi = lo + 1
		}
	}
	intervals[n-1].Hi = maxHist
	if intervals[n-1].Lo >= maxHist {
		intervals[n-1].Lo = maxHist - 1
	}
	lengths[n-1] = maxHist + 1
	return intervals, lengths
}

func pow(base, exp float64) float64 {
	return mathPow(base, exp)
}

// ArraysVariants returns BLBP configurations sweeping the number of weight
// SRAM arrays (1 local + n interval tables). The paper's §3 positions BLBP
// as reducing SNIP's 44 arrays to 8; this sweep quantifies the trade-off.
// Each variant keeps total weight storage roughly constant by scaling rows.
func ArraysVariants(arrayCounts []int) []BLBPVariant {
	if len(arrayCounts) == 0 {
		arrayCounts = []int{2, 4, 8, 16, 24, 44}
	}
	base := core.DefaultConfig()
	totalRows := base.SubPredictors() * base.TableEntries
	variants := make([]BLBPVariant, 0, len(arrayCounts))
	for _, n := range arrayCounts {
		if n < 2 {
			continue
		}
		cfg := base
		intervals, lengths := geometricIntervals(n-1, cfg.HistBits-1)
		cfg.Intervals = intervals
		cfg.GEHLLengths = lengths
		rows := totalRows / n
		// Keep power-of-two row counts for cheap indexing.
		p2 := 1
		for p2*2 <= rows {
			p2 *= 2
		}
		cfg.TableEntries = p2
		variants = append(variants, BLBPVariant{
			Name:   fmt.Sprintf("arrays-%d", n),
			Config: cfg,
		})
	}
	return variants
}

// TargetBitsVariants sweeps GlobalTargetBits, the implementation choice
// documented in DESIGN.md §2 (how many hashed target bits each resolved
// indirect branch contributes to BLBP's global history; 0 is the
// paper-literal conditional-only GHIST).
func TargetBitsVariants() []BLBPVariant {
	out := make([]BLBPVariant, 0, 4)
	for _, n := range []int{0, 1, 2, 4} {
		cfg := core.DefaultConfig()
		cfg.GlobalTargetBits = n
		out = append(out, BLBPVariant{Name: fmt.Sprintf("targetbits-%d", n), Config: cfg})
	}
	return out
}
