package experiments

import (
	"fmt"

	"blbp/internal/btb"
	"blbp/internal/cascaded"
	"blbp/internal/cond"
	"blbp/internal/core"
	"blbp/internal/ittage"
	"blbp/internal/predictor"
	"blbp/internal/report"
	"blbp/internal/stats"
	"blbp/internal/targetcache"
	"blbp/internal/workload"
)

// Extras runs the extended baseline set beyond the paper's four predictors:
// Calder & Grunwald's 2-bit BTB, Chang et al.'s Target Cache, and Driesen &
// Hölzle's cascaded predictor, alongside the BTB/ITTAGE/BLBP anchors. It
// reproduces the related-work lineage (§2.2) quantitatively.
func (r *Runner) Extras(specs []workload.Spec) (*report.Table, map[string]float64, error) {
	pass := Shared(CondKeyHP, func() (cond.Predictor, []predictor.Indirect) {
		twoBit := btb.Default32K()
		twoBit.Hysteresis = true
		return newHP(), []predictor.Indirect{
			btb.NewIndirect(btb.Default32K()),
			btb.NewIndirect(twoBit),
			targetcache.New(targetcache.DefaultConfig()),
			cascaded.New(cascaded.DefaultConfig()),
			ittage.New(ittage.DefaultConfig()),
			core.New(core.DefaultConfig()),
		}
	})
	rows, err := r.RunSuite(specs, []Pass{pass})
	if err != nil {
		return nil, nil, err
	}
	order := []string{"btb", "btb2bit", "targetcache", "cascaded", "ittage", "blbp"}
	means := make(map[string]float64, len(order))
	for _, name := range order {
		xs := make([]float64, len(rows))
		for i, r := range rows {
			xs[i] = r.MPKI(name)
		}
		means[name] = stats.Mean(xs)
	}
	tb := report.NewTable(
		"Extended baselines (§2.2 lineage): suite-mean indirect MPKI",
		"predictor", "mean MPKI", "vs ITTAGE %",
	)
	for _, name := range order {
		tb.AddRowf(name, means[name], stats.PercentChange(means["ittage"], means[name]))
	}
	return tb, means, nil
}

// geometricIntervals splits the usable history depth into n geometric
// intervals (each starting slightly before the previous one ends, as the
// paper's tuned intervals overlap). Used to scale the number of
// sub-predictor SRAM arrays in the SNIP-to-BLBP reduction study.
func geometricIntervals(n, maxHist int) ([]core.Interval, []int) {
	if n < 1 {
		panic("experiments: need at least one interval")
	}
	intervals := make([]core.Interval, n)
	lengths := make([]int, n)
	lo := 0
	hi := 13
	ratio := 1.0
	if n > 1 {
		// Choose the growth so the last interval ends at maxHist.
		ratio = pow(float64(maxHist)/13, 1/float64(n-1))
	}
	end := 13.0
	for i := 0; i < n; i++ {
		if hi > maxHist {
			hi = maxHist
		}
		intervals[i] = core.Interval{Lo: lo, Hi: hi}
		lengths[i] = hi + 1
		// Next interval starts inside the current one (~15% overlap).
		lo = hi - (hi-lo)/6
		end *= ratio
		hi = int(end + 0.5)
		if hi <= lo {
			hi = lo + 1
		}
	}
	intervals[n-1].Hi = maxHist
	if intervals[n-1].Lo >= maxHist {
		intervals[n-1].Lo = maxHist - 1
	}
	lengths[n-1] = maxHist + 1
	return intervals, lengths
}

func pow(base, exp float64) float64 {
	return mathPow(base, exp)
}

// ArraysVariants returns BLBP configurations sweeping the number of weight
// SRAM arrays (1 local + n interval tables). The paper's §3 positions BLBP
// as reducing SNIP's 44 arrays to 8; this sweep quantifies the trade-off.
// Each variant keeps total weight storage roughly constant by scaling rows.
func ArraysVariants(arrayCounts []int) []BLBPVariant {
	if len(arrayCounts) == 0 {
		arrayCounts = []int{2, 4, 8, 16, 24, 44}
	}
	base := core.DefaultConfig()
	totalRows := base.SubPredictors() * base.TableEntries
	variants := make([]BLBPVariant, 0, len(arrayCounts))
	for _, n := range arrayCounts {
		if n < 2 {
			continue
		}
		cfg := base
		intervals, lengths := geometricIntervals(n-1, cfg.HistBits-1)
		cfg.Intervals = intervals
		cfg.GEHLLengths = lengths
		rows := totalRows / n
		// Keep power-of-two row counts for cheap indexing.
		p2 := 1
		for p2*2 <= rows {
			p2 *= 2
		}
		cfg.TableEntries = p2
		variants = append(variants, BLBPVariant{
			Name:   fmt.Sprintf("arrays-%d", n),
			Config: cfg,
		})
	}
	return variants
}

// Arrays runs the SRAM-array-count sweep at (approximately) constant weight
// storage.
func (r *Runner) Arrays(specs []workload.Spec) (*report.Table, map[string]float64, error) {
	variants := ArraysVariants(nil)
	passes := append(BLBPVariantsPasses(variants), ITTAGEPass())
	rows, err := r.RunSuite(specs, passes)
	if err != nil {
		return nil, nil, err
	}
	tb := report.NewTable(
		"Extension: number of weight SRAM arrays (SNIP used 44, BLBP 8) at ~constant storage",
		"configuration", "mean MPKI", "storage (KB)",
	)
	means := map[string]float64{}
	for _, v := range variants {
		xs := make([]float64, len(rows))
		for i, r := range rows {
			xs[i] = r.MPKI(v.Name)
		}
		means[v.Name] = stats.Mean(xs)
		tb.AddRowf(v.Name, means[v.Name], stats.FormatKB(core.New(v.Config).StorageBits()))
	}
	ittageXs := make([]float64, len(rows))
	for i, r := range rows {
		ittageXs[i] = r.MPKI(NameITTAGE)
	}
	means[NameITTAGE] = stats.Mean(ittageXs)
	tb.AddRowf("ittage", means[NameITTAGE], "")
	return tb, means, nil
}

// TargetBitsVariants sweeps GlobalTargetBits, the implementation choice
// documented in DESIGN.md §2 (how many hashed target bits each resolved
// indirect branch contributes to BLBP's global history; 0 is the
// paper-literal conditional-only GHIST).
func TargetBitsVariants() []BLBPVariant {
	out := make([]BLBPVariant, 0, 4)
	for _, n := range []int{0, 1, 2, 4} {
		cfg := core.DefaultConfig()
		cfg.GlobalTargetBits = n
		out = append(out, BLBPVariant{Name: fmt.Sprintf("targetbits-%d", n), Config: cfg})
	}
	return out
}

// TargetBits runs the GlobalTargetBits ablation.
func (r *Runner) TargetBits(specs []workload.Spec) (*report.Table, map[string]float64, error) {
	variants := TargetBitsVariants()
	passes := append(BLBPVariantsPasses(variants), ITTAGEPass())
	rows, err := r.RunSuite(specs, passes)
	if err != nil {
		return nil, nil, err
	}
	tb := report.NewTable(
		"Extension: target bits folded into BLBP's global history (0 = paper-literal conditional-only GHIST)",
		"configuration", "mean MPKI",
	)
	means := map[string]float64{}
	for _, v := range variants {
		xs := make([]float64, len(rows))
		for i, r := range rows {
			xs[i] = r.MPKI(v.Name)
		}
		means[v.Name] = stats.Mean(xs)
		tb.AddRowf(v.Name, means[v.Name])
	}
	ittageXs := make([]float64, len(rows))
	for i, r := range rows {
		ittageXs[i] = r.MPKI(NameITTAGE)
	}
	means[NameITTAGE] = stats.Mean(ittageXs)
	tb.AddRowf("ittage", means[NameITTAGE])
	return tb, means, nil
}
