package experiments

import (
	"bytes"
	"strings"
	"testing"

	"blbp/internal/cond"
	"blbp/internal/core"
	"blbp/internal/ittage"
	"blbp/internal/predictor"
	"blbp/internal/sim"
	"blbp/internal/trace"
	"blbp/internal/workload"
	"blbp/internal/wspec"
)

// testRunner returns a Runner closed when the test ends.
func testRunner(t *testing.T) *Runner {
	t.Helper()
	r := NewRunner(0)
	t.Cleanup(r.Close)
	return r
}

// miniSuite returns a small but diverse workload set for fast integration
// tests.
func miniSuite(instr int64) []workload.Spec {
	return []workload.Spec{
		workload.InterpreterSpec("mini-interp", "T", instr, workload.InterpreterParams{
			Opcodes: 12, ProgramLen: 32, Work: 30, CondPerHandler: 1,
			CondNoise: 0.005, DispatchNoise: 0.002, MonoCalls: 1, MonoSites: 10,
		}),
		workload.VDispatchSpec("mini-vdisp", "T", instr, workload.VDispatchParams{
			Classes: 4, Sites: 3, Objects: 16, TypeNoise: 0.002,
			AlternatingSites: 1, MethodWork: 30, MethodConds: 1, CondNoise: 0.005,
		}),
		workload.SwitcherSpec("mini-switch", "T", instr, workload.SwitcherParams{
			Tokens: 8, TransitionNoise: 0.004, CaseWork: 30, CaseConds: 1, CondNoise: 0.005,
		}),
	}
}

func TestRunSuiteStandardPasses(t *testing.T) {
	rows, err := RunSuite(miniSuite(120_000), StandardPasses(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		for _, p := range []string{NameBTB, NameVPC, NameITTAGE, NameBLBP} {
			res, ok := r.Results[p]
			if !ok {
				t.Fatalf("%s: missing predictor %s", r.Spec.Name, p)
			}
			if res.IndirectBranches == 0 {
				t.Errorf("%s/%s: no indirect branches simulated", r.Spec.Name, p)
			}
		}
		// On these learnable workloads the history predictors must beat
		// the BTB baseline decisively.
		if r.MPKI(NameBLBP) >= r.MPKI(NameBTB) {
			t.Errorf("%s: BLBP (%.3f) not better than BTB (%.3f)",
				r.Spec.Name, r.MPKI(NameBLBP), r.MPKI(NameBTB))
		}
	}
}

func TestRunSuiteErrors(t *testing.T) {
	if _, err := RunSuite(nil, StandardPasses(), 0); err == nil {
		t.Error("empty suite accepted")
	}
	if _, err := RunSuite(miniSuite(1000), nil, 0); err == nil {
		t.Error("no passes accepted")
	}
	// Duplicate predictor names across passes must be rejected.
	dup := []Pass{
		Exclusive(func() (cond.Predictor, []predictor.Indirect) {
			return cond.NewBimodal(64), []predictor.Indirect{core.New(core.DefaultConfig())}
		}),
		Exclusive(func() (cond.Predictor, []predictor.Indirect) {
			return cond.NewBimodal(64), []predictor.Indirect{core.New(core.DefaultConfig())}
		}),
	}
	if _, err := RunSuite(miniSuite(5_000), dup, 1); err == nil {
		t.Error("duplicate predictor names accepted")
	}
}

func TestRunSuiteDeterministicAcrossParallelism(t *testing.T) {
	specs := miniSuite(60_000)
	seq, err := RunSuite(specs, StandardPasses(), 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSuite(specs, StandardPasses(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		for name, r := range seq[i].Results {
			if par[i].Results[name] != r {
				t.Errorf("%s/%s differs between parallel and sequential runs", specs[i].Name, name)
			}
		}
	}
}

func TestRenameWrapsPredictor(t *testing.T) {
	p := Rename(core.New(core.DefaultConfig()), "custom-name")
	if p.Name() != "custom-name" {
		t.Errorf("Name = %q", p.Name())
	}
	p.Update(0x10, 0x5000)
	if tgt, ok := p.Predict(0x10); !ok || tgt != 0x5000 {
		t.Error("renamed predictor does not delegate")
	}
}

func TestFig1RowsSortedByIndirect(t *testing.T) {
	tb, rows := testRunner(t).Fig1(miniSuite(60_000))
	if tb.Rows() != 3 || len(rows) != 3 {
		t.Fatalf("rows = %d/%d, want 3", tb.Rows(), len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Indirect < rows[i-1].Indirect {
			t.Error("Fig1 rows not sorted by indirect prevalence")
		}
	}
	for _, r := range rows {
		if r.PerKilo[trace.CondDirect] <= 0 {
			t.Errorf("%s: no conditional branches", r.Workload)
		}
	}
}

func TestFig6Bounds(t *testing.T) {
	_, rows := testRunner(t).Fig6(miniSuite(60_000))
	for _, r := range rows {
		if r.PolyPct < 0 || r.PolyPct > 100 {
			t.Errorf("%s: PolyPct = %v out of range", r.Workload, r.PolyPct)
		}
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].PolyPct < rows[i-1].PolyPct {
			t.Error("Fig6 rows not sorted")
		}
	}
}

func TestFig7CCDFMonotone(t *testing.T) {
	_, pts := testRunner(t).Fig7(miniSuite(60_000), 16)
	if len(pts) != 16 {
		t.Fatalf("got %d points, want 16", len(pts))
	}
	if pts[0].PctAtLeast < 99.99 {
		t.Errorf("P(targets >= 1) = %v, want 100", pts[0].PctAtLeast)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].PctAtLeast > pts[i-1].PctAtLeast+1e-9 {
			t.Error("CCDF not non-increasing")
		}
	}
}

func TestOverallAndDerivedFigures(t *testing.T) {
	rows, err := testRunner(t).RunSuite(miniSuite(120_000), StandardPasses())
	if err != nil {
		t.Fatal(err)
	}
	data := OverallData{Rows: rows, Predictors: []string{NameBTB, NameVPC, NameITTAGE, NameBLBP}}
	tb := OverallTable(data)
	if tb.Rows() != 4 {
		t.Errorf("overall table rows = %d, want 4", tb.Rows())
	}
	// The headline ordering on learnable workloads: BTB worst by far.
	if data.Mean(NameBTB) < 4*data.Mean(NameBLBP) {
		t.Errorf("BTB mean %.3f not clearly worse than BLBP %.3f", data.Mean(NameBTB), data.Mean(NameBLBP))
	}
	f8 := Fig8(data)
	if f8.Rows() != 3 {
		t.Errorf("fig8 rows = %d, want 3", f8.Rows())
	}
	f9 := Fig9(data)
	if f9.Rows() != 3 {
		t.Errorf("fig9 rows = %d, want 3", f9.Rows())
	}
	var buf bytes.Buffer
	if err := f9.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mini-") {
		t.Error("fig9 output missing workload names")
	}
}

func TestAblationVariantsCoverPaperArms(t *testing.T) {
	vs := AblationVariants()
	if len(vs) != 12 {
		t.Fatalf("got %d variants, want 12", len(vs))
	}
	names := map[string]bool{}
	for _, v := range vs {
		names[v.Name] = true
		if err := v.Config.Validate(); err != nil {
			t.Errorf("variant %s: invalid config: %v", v.Name, err)
		}
	}
	for _, want := range []string{"all-off", "all-on", "only-local", "no-intervals", "no-selective"} {
		if !names[want] {
			t.Errorf("missing ablation arm %q", want)
		}
	}
	// all-off must disable everything; all-on must enable everything.
	for _, v := range vs {
		switch v.Name {
		case "all-off":
			if v.Config.UseLocal || v.Config.UseIntervals || v.Config.UseTransfer || v.Config.UseAdaptiveTheta || v.Config.UseSelective {
				t.Error("all-off leaves an optimization on")
			}
		case "all-on":
			if !(v.Config.UseLocal && v.Config.UseIntervals && v.Config.UseTransfer && v.Config.UseAdaptiveTheta && v.Config.UseSelective) {
				t.Error("all-on leaves an optimization off")
			}
		}
	}
}

// meanOf is the suite-mean MPKI of one predictor over the rows.
func meanOf(rows []WorkloadResult, name string) float64 {
	sum := 0.0
	for _, r := range rows {
		sum += r.MPKI(name)
	}
	return sum / float64(len(rows))
}

func TestFig10PassesOnMiniSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration")
	}
	passes := append(BLBPVariantsPasses(AblationVariants()), ITTAGEPass())
	rows, err := testRunner(t).RunSuite(miniSuite(80_000), passes)
	if err != nil {
		t.Fatal(err)
	}
	if meanOf(rows, "all-on") >= meanOf(rows, "all-off") {
		t.Errorf("all-on (%.3f) not better than all-off (%.3f)",
			meanOf(rows, "all-on"), meanOf(rows, "all-off"))
	}
}

func TestAssocVariantsGeometry(t *testing.T) {
	vs := AssocVariants(nil)
	if len(vs) != 5 {
		t.Fatalf("got %d variants, want 5", len(vs))
	}
	for _, v := range vs {
		if v.Config.IBTB.Sets*v.Config.IBTB.Assoc != 4096 {
			t.Errorf("%s: entries = %d, want 4096", v.Name, v.Config.IBTB.Sets*v.Config.IBTB.Assoc)
		}
	}
}

func TestFig11PassesOnMiniSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration")
	}
	// Use a workload with many polymorphic branches so associativity has
	// something to do.
	specs := []workload.Spec{
		workload.VDispatchSpec("assoc-load", "T", 150_000, workload.VDispatchParams{
			Classes: 12, Sites: 24, Objects: 96, MethodWork: 20, MethodConds: 1,
		}),
	}
	passes := append(BLBPVariantsPasses(AssocVariants(nil)), ITTAGEPass())
	rows, err := testRunner(t).RunSuite(specs, passes)
	if err != nil {
		t.Fatal(err)
	}
	// Higher associativity must not be dramatically worse than lower.
	if meanOf(rows, "assoc-64") > meanOf(rows, "assoc-4")*1.5 {
		t.Errorf("assoc-64 (%.3f) much worse than assoc-4 (%.3f)",
			meanOf(rows, "assoc-64"), meanOf(rows, "assoc-4"))
	}
}

func TestBudgetsAndTables(t *testing.T) {
	budgets := Budgets()
	if len(budgets) != 4 {
		t.Fatalf("got %d budgets", len(budgets))
	}
	for _, b := range budgets {
		if b.Bits <= 0 {
			t.Errorf("%s: non-positive bits", b.Predictor)
		}
	}
	// BLBP and ITTAGE must be within the same iso-budget class (the
	// paper's central comparison) — within 25% of each other.
	var blbpBits, ittageBits int
	for _, b := range budgets {
		switch b.Predictor {
		case NameBLBP:
			blbpBits = b.Bits
		case NameITTAGE:
			ittageBits = b.Bits
		}
	}
	ratio := float64(blbpBits) / float64(ittageBits)
	if ratio < 0.75 || ratio > 1.25 {
		t.Errorf("BLBP/ITTAGE budget ratio = %.2f, want iso-budget (0.75-1.25)", ratio)
	}

	t1 := Table1(wspec.Suite(1_000))
	if t1.Rows() != 8 { // 7 categories + total
		t.Errorf("table1 rows = %d, want 8", t1.Rows())
	}
	t2 := Table2()
	if t2.Rows() != 4 {
		t.Errorf("table2 rows = %d, want 4", t2.Rows())
	}
}

func TestAnalyzeSuiteOrder(t *testing.T) {
	specs := miniSuite(30_000)
	stats := AnalyzeSuite(specs, 2)
	if len(stats) != len(specs) {
		t.Fatalf("got %d stats", len(stats))
	}
	for i, st := range stats {
		if st.Name != specs[i].Name {
			t.Errorf("stats[%d] = %s, want %s (order must match)", i, st.Name, specs[i].Name)
		}
	}
}

// TestRunnerBuildsEachTraceOnce runs an analysis pass and two simulation
// pass sets over one suite on one Runner and asserts via the cache counters
// that each workload's trace was constructed exactly once.
func TestRunnerBuildsEachTraceOnce(t *testing.T) {
	specs := miniSuite(30_000)
	r := testRunner(t)
	r.Fig1(specs)
	if _, err := r.RunSuite(specs, StandardPasses()); err != nil {
		t.Fatal(err)
	}
	cottage := []Pass{
		Shared(CondKeyHP, func() (cond.Predictor, []predictor.Indirect) {
			return newHP(), []predictor.Indirect{core.New(core.DefaultConfig())}
		}),
		Shared(CondKeyTAGE, func() (cond.Predictor, []predictor.Indirect) {
			return cond.NewTAGE(cond.DefaultTAGEConfig()), []predictor.Indirect{ittage.New(ittage.DefaultConfig())}
		}),
	}
	if _, err := r.RunSuite(specs, cottage); err != nil {
		t.Fatal(err)
	}
	st := r.Cache().Stats()
	if st.Builds != int64(len(specs)) {
		t.Errorf("cache builds = %d, want %d (one per workload)", st.Builds, len(specs))
	}
	if st.Misses != int64(len(specs)) {
		t.Errorf("cache misses = %d, want %d", st.Misses, len(specs))
	}
	if st.Hits == 0 {
		t.Error("no cache hits across three drivers")
	}
}

// TestTapeSharedCondMatchesFullSimulation cross-checks the engine split: a
// pass run through the shared tape (CondKeyHP) must produce exactly the
// numbers the monolithic simulation produces.
func TestTapeSharedCondMatchesFullSimulation(t *testing.T) {
	specs := miniSuite(60_000)
	r := testRunner(t)
	rows, err := r.RunSuite(specs, []Pass{
		Shared(CondKeyHP, func() (cond.Predictor, []predictor.Indirect) {
			return newHP(), []predictor.Indirect{core.New(core.DefaultConfig())}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		tr := spec.Build()
		want, err := sim.Run(tr, newHP(), []predictor.Indirect{core.New(core.DefaultConfig())}, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := rows[i].Results[NameBLBP]
		if got != want[0] {
			t.Errorf("%s: tape result %+v != full simulation %+v", spec.Name, got, want[0])
		}
	}
}
