package experiments

import (
	"blbp/internal/core"
)

// AblationVariants returns the twelve configurations of the paper's
// Figure 10: all optimizations off, each optimization alone, each
// optimization removed from the full predictor, and all on. Optimization
// order follows §3.6: local history, history intervals, transfer function,
// adaptive threshold, selective bit training.
func AblationVariants() []BLBPVariant {
	base := core.DefaultConfig()
	mk := func(name string, local, intervals, transfer, adaptive, selective bool) BLBPVariant {
		return BLBPVariant{Name: name, Config: base.WithAllOptimizations(local, intervals, transfer, adaptive, selective)}
	}
	return []BLBPVariant{
		mk("all-off", false, false, false, false, false),
		mk("only-local", true, false, false, false, false),
		mk("only-intervals", false, true, false, false, false),
		mk("only-selective", false, false, false, false, true),
		mk("only-transfer", false, false, true, false, false),
		mk("only-adaptive", false, false, false, true, false),
		mk("no-intervals", true, false, true, true, true),
		mk("no-adaptive", true, true, true, false, true),
		mk("no-transfer", true, true, false, true, true),
		mk("no-local", false, true, true, true, true),
		mk("no-selective", true, true, true, true, false),
		mk("all-on", true, true, true, true, true),
	}
}
