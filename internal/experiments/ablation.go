package experiments

import (
	"blbp/internal/core"
	"blbp/internal/report"
	"blbp/internal/stats"
	"blbp/internal/workload"
)

// AblationVariants returns the twelve configurations of the paper's
// Figure 10: all optimizations off, each optimization alone, each
// optimization removed from the full predictor, and all on. Optimization
// order follows §3.6: local history, history intervals, transfer function,
// adaptive threshold, selective bit training.
func AblationVariants() []BLBPVariant {
	base := core.DefaultConfig()
	mk := func(name string, local, intervals, transfer, adaptive, selective bool) BLBPVariant {
		return BLBPVariant{Name: name, Config: base.WithAllOptimizations(local, intervals, transfer, adaptive, selective)}
	}
	return []BLBPVariant{
		mk("all-off", false, false, false, false, false),
		mk("only-local", true, false, false, false, false),
		mk("only-intervals", false, true, false, false, false),
		mk("only-selective", false, false, false, false, true),
		mk("only-transfer", false, false, true, false, false),
		mk("only-adaptive", false, false, false, true, false),
		mk("no-intervals", true, false, true, true, true),
		mk("no-adaptive", true, true, true, false, true),
		mk("no-transfer", true, true, false, true, true),
		mk("no-local", false, true, true, true, true),
		mk("no-selective", true, true, true, true, false),
		mk("all-on", true, true, true, true, true),
	}
}

// Fig10Row is one ablation arm's result.
type Fig10Row struct {
	Variant string
	// MeanMPKI is the suite-mean MPKI of the variant.
	MeanMPKI float64
	// PctVsITTAGE is the percent MPKI reduction relative to ITTAGE
	// (positive = better than ITTAGE), the paper's Figure 10 y-axis.
	PctVsITTAGE float64
}

// Fig10 reproduces the optimization ablation: every variant plus the ITTAGE
// reference run over the suite.
func (r *Runner) Fig10(specs []workload.Spec) (*report.Table, []Fig10Row, error) {
	variants := AblationVariants()
	passes := append(BLBPVariantsPasses(variants), ITTAGEPass())
	rows, err := r.RunSuite(specs, passes)
	if err != nil {
		return nil, nil, err
	}
	ittageXs := make([]float64, len(rows))
	for i, r := range rows {
		ittageXs[i] = r.MPKI(NameITTAGE)
	}
	ittageMean := stats.Mean(ittageXs)

	out := make([]Fig10Row, 0, len(variants))
	tb := report.NewTable(
		"Figure 10: effect of optimizations (percent MPKI reduction vs ITTAGE)",
		"variant", "mean MPKI", "% vs ITTAGE",
	)
	for _, v := range variants {
		xs := make([]float64, len(rows))
		for i, r := range rows {
			xs[i] = r.MPKI(v.Name)
		}
		mean := stats.Mean(xs)
		pct := stats.PercentChange(ittageMean, mean)
		out = append(out, Fig10Row{Variant: v.Name, MeanMPKI: mean, PctVsITTAGE: pct})
		tb.AddRowf(v.Name, mean, pct)
	}
	tb.AddRowf("ittage (reference)", ittageMean, 0.0)
	return tb, out, nil
}
