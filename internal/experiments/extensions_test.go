package experiments

import (
	"testing"

	"blbp/internal/btb"
	"blbp/internal/cascaded"
	"blbp/internal/combined"
	"blbp/internal/cond"
	"blbp/internal/core"
	"blbp/internal/ittage"
	"blbp/internal/predictor"
	"blbp/internal/targetcache"
	"blbp/internal/workload"
	"blbp/internal/wspec"
)

func TestGeometricIntervalsValid(t *testing.T) {
	for _, n := range []int{1, 3, 7, 21, 43} {
		intervals, lengths := geometricIntervals(n, 630)
		if len(intervals) != n || len(lengths) != n {
			t.Fatalf("n=%d: got %d intervals, %d lengths", n, len(intervals), len(lengths))
		}
		cfg := core.DefaultConfig()
		cfg.Intervals = intervals
		cfg.GEHLLengths = lengths
		if err := cfg.Validate(); err != nil {
			t.Errorf("n=%d: invalid config: %v", n, err)
		}
		if intervals[n-1].Hi != 630 {
			t.Errorf("n=%d: last interval ends at %d, want 630", n, intervals[n-1].Hi)
		}
		for i, iv := range intervals {
			if iv.Lo < 0 || iv.Hi <= iv.Lo {
				t.Errorf("n=%d: interval %d = %+v malformed", n, i, iv)
			}
		}
	}
}

func TestArraysVariantsStorageRoughlyConstant(t *testing.T) {
	variants := ArraysVariants(nil)
	if len(variants) < 4 {
		t.Fatalf("got %d variants", len(variants))
	}
	ref := core.New(core.DefaultConfig()).StorageBits()
	for _, v := range variants {
		got := core.New(v.Config).StorageBits()
		ratio := float64(got) / float64(ref)
		// Power-of-two row rounding makes storage vary; it must stay in
		// the same class.
		if ratio < 0.6 || ratio > 1.2 {
			t.Errorf("%s: storage ratio %.2f vs default, want ~1", v.Name, ratio)
		}
	}
}

func TestTargetBitsVariants(t *testing.T) {
	vs := TargetBitsVariants()
	if len(vs) != 4 {
		t.Fatalf("got %d variants", len(vs))
	}
	seen := map[int]bool{}
	for _, v := range vs {
		seen[v.Config.GlobalTargetBits] = true
		if err := v.Config.Validate(); err != nil {
			t.Errorf("%s: %v", v.Name, err)
		}
	}
	for _, n := range []int{0, 1, 2, 4} {
		if !seen[n] {
			t.Errorf("missing GlobalTargetBits=%d variant", n)
		}
	}
}

func TestExtrasPassOnMiniSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration")
	}
	pass := Shared(CondKeyHP, func() (cond.Predictor, []predictor.Indirect) {
		twoBit := btb.Default32K()
		twoBit.Hysteresis = true
		return newHP(), []predictor.Indirect{
			btb.NewIndirect(btb.Default32K()),
			btb.NewIndirect(twoBit),
			targetcache.New(targetcache.DefaultConfig()),
			cascaded.New(cascaded.DefaultConfig()),
			ittage.New(ittage.DefaultConfig()),
			core.New(core.DefaultConfig()),
		}
	})
	rows, err := testRunner(t).RunSuite(miniSuite(80_000), []Pass{pass})
	if err != nil {
		t.Fatal(err)
	}
	// The lineage ordering on learnable workloads: plain BTB worst, the
	// history-based classics in between, modern predictors best.
	if !(meanOf(rows, "btb") > meanOf(rows, "targetcache")) {
		t.Errorf("target cache (%.3f) should beat plain BTB (%.3f)", meanOf(rows, "targetcache"), meanOf(rows, "btb"))
	}
	if !(meanOf(rows, "btb") > meanOf(rows, "cascaded")) {
		t.Errorf("cascaded (%.3f) should beat plain BTB (%.3f)", meanOf(rows, "cascaded"), meanOf(rows, "btb"))
	}
	if !(meanOf(rows, "cascaded") > meanOf(rows, "blbp")) {
		t.Errorf("BLBP (%.3f) should beat cascaded (%.3f)", meanOf(rows, "blbp"), meanOf(rows, "cascaded"))
	}
}

func TestTargetBitsPassesOnMiniSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration")
	}
	passes := BLBPVariantsPasses(TargetBitsVariants())
	rows, err := testRunner(t).RunSuite(miniSuite(60_000), passes)
	if err != nil {
		t.Fatal(err)
	}
	// Folding target bits into history must help on target-sequence
	// workloads: 2 bits should beat 0 bits.
	if meanOf(rows, "targetbits-2") >= meanOf(rows, "targetbits-0") {
		t.Errorf("targetbits-2 (%.3f) not better than targetbits-0 (%.3f)",
			meanOf(rows, "targetbits-2"), meanOf(rows, "targetbits-0"))
	}
}

func TestArraysPassesOnMiniSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration")
	}
	passes := BLBPVariantsPasses(ArraysVariants(nil))
	rows, err := testRunner(t).RunSuite(miniSuite(60_000), passes)
	if err != nil {
		t.Fatal(err)
	}
	if meanOf(rows, "arrays-8") <= 0 {
		t.Error("arrays-8 missing or zero")
	}
}

func TestCombinedPassesOnMiniSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration")
	}
	dedicated := Shared(CondKeyHP, func() (cond.Predictor, []predictor.Indirect) {
		return newHP(), []predictor.Indirect{core.New(core.DefaultConfig())}
	})
	consolidated := Exclusive(func() (cond.Predictor, []predictor.Indirect) {
		p := combined.New(core.DefaultConfig())
		return p, []predictor.Indirect{p.Indirect()}
	})
	rows, err := testRunner(t).RunSuite(miniSuite(80_000), []Pass{dedicated, consolidated})
	if err != nil {
		t.Fatal(err)
	}
	dedBits := cond.NewHashedPerceptron(cond.DefaultHPConfig()).StorageBits() +
		core.New(core.DefaultConfig()).StorageBits()
	conBits := combined.New(core.DefaultConfig()).StorageBits()
	if conBits >= dedBits {
		t.Errorf("consolidated storage %d not below dedicated %d", conBits, dedBits)
	}
	var dedAcc, conAcc float64
	for _, r := range rows {
		dedAcc += r.Results[NameBLBP].CondAccuracy()
		conAcc += r.Results["combined"].CondAccuracy()
	}
	dedAcc /= float64(len(rows))
	conAcc /= float64(len(rows))
	// The consolidated predictor must remain in the same accuracy class:
	// conditional accuracy within 3 points, indirect MPKI within 2x.
	if conAcc < dedAcc-0.03 {
		t.Errorf("consolidated cond accuracy %.3f too far below dedicated %.3f", conAcc, dedAcc)
	}
	if meanOf(rows, "combined") > 2*meanOf(rows, NameBLBP) {
		t.Errorf("consolidated indirect MPKI %.3f more than 2x dedicated %.3f",
			meanOf(rows, "combined"), meanOf(rows, NameBLBP))
	}
}

func TestHierarchyPassOnMiniSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration")
	}
	mono8 := core.DefaultConfig()
	mono8.IBTB.Assoc = 8
	mono8.IBTB.Sets = 512
	hier := core.DefaultConfig()
	hier.UseHierarchicalIBTB = true
	specs := miniSuite(80_000)
	// Each task writes only its own workload's slot, so the retention is
	// parallel-safe and read in deterministic spec order after the run.
	insts := make([]*core.BLBP, len(specs))
	pass := Pass{CondKey: CondKeyHP, New: func(w int) (cond.Predictor, []predictor.Indirect) {
		h := core.New(hier)
		insts[w] = h
		return newHP(), []predictor.Indirect{
			Rename(core.New(core.DefaultConfig()), "mono-64way"),
			Rename(core.New(mono8), "mono-8way"),
			Rename(h, "hierarchy"),
		}
	}}
	rows, err := testRunner(t).RunSuite(specs, []Pass{pass})
	if err != nil {
		t.Fatal(err)
	}
	// The hierarchy must land between the 8-way and 64-way monoliths (or
	// at least not be worse than plain 8-way).
	if meanOf(rows, "hierarchy") > meanOf(rows, "mono-8way")*1.1 {
		t.Errorf("hierarchy MPKI %.3f worse than monolithic 8-way %.3f",
			meanOf(rows, "hierarchy"), meanOf(rows, "mono-8way"))
	}
	var rate float64
	for _, h := range insts {
		rate += h.L2ProbeRate()
	}
	rate /= float64(len(insts))
	if rate <= 0 || rate > 1 {
		t.Errorf("L2 probe rate %.3f out of range", rate)
	}
}

func TestCottagePassesOnMiniSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration")
	}
	passes := []Pass{
		Shared(CondKeyHP, func() (cond.Predictor, []predictor.Indirect) {
			return newHP(), []predictor.Indirect{core.New(core.DefaultConfig())}
		}),
		Shared(CondKeyTAGE, func() (cond.Predictor, []predictor.Indirect) {
			return cond.NewTAGE(cond.DefaultTAGEConfig()), []predictor.Indirect{ittage.New(ittage.DefaultConfig())}
		}),
	}
	rows, err := testRunner(t).RunSuite(miniSuite(80_000), passes)
	if err != nil {
		t.Fatal(err)
	}
	var hpAcc, tgAcc float64
	for _, r := range rows {
		hpAcc += r.Results[NameBLBP].CondAccuracy()
		tgAcc += r.Results[NameITTAGE].CondAccuracy()
	}
	hpAcc /= float64(len(rows))
	tgAcc /= float64(len(rows))
	// Both pairings must be functional: conditional accuracy well above
	// chance, indirect MPKI finite and below the BTB class.
	if hpAcc < 0.8 || tgAcc < 0.8 {
		t.Errorf("cond accuracies %.3f / %.3f below sanity floor", hpAcc, tgAcc)
	}
	if meanOf(rows, NameBLBP) <= 0 || meanOf(rows, NameITTAGE) <= 0 {
		t.Error("missing indirect MPKI data")
	}
}

func TestLatencyHistogramOnMiniSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration")
	}
	specs := miniSuite(60_000)
	insts := make([]*core.BLBP, len(specs))
	pass := Pass{CondKey: CondKeyHP, New: func(w int) (cond.Predictor, []predictor.Indirect) {
		p := core.New(core.DefaultConfig())
		insts[w] = p
		return newHP(), []predictor.Indirect{p}
	}}
	if _, err := testRunner(t).RunSuite(specs, []Pass{pass}); err != nil {
		t.Fatal(err)
	}
	var total, oneCycle int64
	for _, p := range insts {
		for n, v := range p.CandidateHistogram() {
			total += v
			if n <= 5 {
				oneCycle += v
			}
		}
	}
	if total == 0 {
		t.Fatal("no predictions recorded in candidate histogram")
	}
	if oneCycle <= 0 || oneCycle > total {
		t.Errorf("one-cycle count %d out of range (total %d)", oneCycle, total)
	}
}

func TestSeedsDrawsDiffer(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration")
	}
	suites := [][]workload.Spec{wspec.SuiteSeeded(20_000, ""), wspec.SuiteSeeded(20_000, "x")}
	results, err := testRunner(t).RunSuites(suites, StandardPasses())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("draws = %d", len(results))
	}
	if meanOf(results[0], NameITTAGE) == meanOf(results[1], NameITTAGE) &&
		meanOf(results[0], NameBLBP) == meanOf(results[1], NameBLBP) {
		t.Error("salted draw produced identical results; salt not applied")
	}
}
