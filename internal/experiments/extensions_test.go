package experiments

import (
	"testing"

	"blbp/internal/core"
)

func TestGeometricIntervalsValid(t *testing.T) {
	for _, n := range []int{1, 3, 7, 21, 43} {
		intervals, lengths := geometricIntervals(n, 630)
		if len(intervals) != n || len(lengths) != n {
			t.Fatalf("n=%d: got %d intervals, %d lengths", n, len(intervals), len(lengths))
		}
		cfg := core.DefaultConfig()
		cfg.Intervals = intervals
		cfg.GEHLLengths = lengths
		if err := cfg.Validate(); err != nil {
			t.Errorf("n=%d: invalid config: %v", n, err)
		}
		if intervals[n-1].Hi != 630 {
			t.Errorf("n=%d: last interval ends at %d, want 630", n, intervals[n-1].Hi)
		}
		for i, iv := range intervals {
			if iv.Lo < 0 || iv.Hi <= iv.Lo {
				t.Errorf("n=%d: interval %d = %+v malformed", n, i, iv)
			}
		}
	}
}

func TestArraysVariantsStorageRoughlyConstant(t *testing.T) {
	variants := ArraysVariants(nil)
	if len(variants) < 4 {
		t.Fatalf("got %d variants", len(variants))
	}
	ref := core.New(core.DefaultConfig()).StorageBits()
	for _, v := range variants {
		got := core.New(v.Config).StorageBits()
		ratio := float64(got) / float64(ref)
		// Power-of-two row rounding makes storage vary; it must stay in
		// the same class.
		if ratio < 0.6 || ratio > 1.2 {
			t.Errorf("%s: storage ratio %.2f vs default, want ~1", v.Name, ratio)
		}
	}
}

func TestTargetBitsVariants(t *testing.T) {
	vs := TargetBitsVariants()
	if len(vs) != 4 {
		t.Fatalf("got %d variants", len(vs))
	}
	seen := map[int]bool{}
	for _, v := range vs {
		seen[v.Config.GlobalTargetBits] = true
		if err := v.Config.Validate(); err != nil {
			t.Errorf("%s: %v", v.Name, err)
		}
	}
	for _, n := range []int{0, 1, 2, 4} {
		if !seen[n] {
			t.Errorf("missing GlobalTargetBits=%d variant", n)
		}
	}
}

func TestExtrasOnMiniSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration")
	}
	tb, means, err := testRunner(t).Extras(miniSuite(80_000))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 6 {
		t.Errorf("rows = %d, want 6", tb.Rows())
	}
	// The lineage ordering on learnable workloads: plain BTB worst, the
	// history-based classics in between, modern predictors best.
	if !(means["btb"] > means["targetcache"]) {
		t.Errorf("target cache (%.3f) should beat plain BTB (%.3f)", means["targetcache"], means["btb"])
	}
	if !(means["btb"] > means["cascaded"]) {
		t.Errorf("cascaded (%.3f) should beat plain BTB (%.3f)", means["cascaded"], means["btb"])
	}
	if !(means["cascaded"] > means["blbp"]) {
		t.Errorf("BLBP (%.3f) should beat cascaded (%.3f)", means["blbp"], means["cascaded"])
	}
}

func TestTargetBitsOnMiniSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration")
	}
	_, means, err := testRunner(t).TargetBits(miniSuite(60_000))
	if err != nil {
		t.Fatal(err)
	}
	// Folding target bits into history must help on target-sequence
	// workloads: 2 bits should beat 0 bits.
	if means["targetbits-2"] >= means["targetbits-0"] {
		t.Errorf("targetbits-2 (%.3f) not better than targetbits-0 (%.3f)",
			means["targetbits-2"], means["targetbits-0"])
	}
}

func TestArraysOnMiniSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration")
	}
	tb, means, err := testRunner(t).Arrays(miniSuite(60_000))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() < 5 {
		t.Errorf("rows = %d", tb.Rows())
	}
	if means["arrays-8"] <= 0 {
		t.Error("arrays-8 missing or zero")
	}
}

func TestCombinedOnMiniSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration")
	}
	tb, res, err := testRunner(t).Combined(miniSuite(80_000))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2 {
		t.Errorf("rows = %d, want 2", tb.Rows())
	}
	if res.ConsolidatedBits >= res.DedicatedBits {
		t.Errorf("consolidated storage %d not below dedicated %d", res.ConsolidatedBits, res.DedicatedBits)
	}
	// The consolidated predictor must remain in the same accuracy class:
	// conditional accuracy within 3 points, indirect MPKI within 2x.
	if res.ConsolidatedCondAcc < res.DedicatedCondAcc-0.03 {
		t.Errorf("consolidated cond accuracy %.3f too far below dedicated %.3f",
			res.ConsolidatedCondAcc, res.DedicatedCondAcc)
	}
	if res.ConsolidatedIndirectMPKI > 2*res.DedicatedIndirectMPKI {
		t.Errorf("consolidated indirect MPKI %.3f more than 2x dedicated %.3f",
			res.ConsolidatedIndirectMPKI, res.DedicatedIndirectMPKI)
	}
}

func TestHierarchyOnMiniSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration")
	}
	tb, res, err := testRunner(t).Hierarchy(miniSuite(80_000))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 3 {
		t.Errorf("rows = %d, want 3", tb.Rows())
	}
	// The hierarchy must land between the 8-way and 64-way monoliths (or
	// at least not be worse than plain 8-way).
	if res.HierMPKI > res.Mono8MPKI*1.1 {
		t.Errorf("hierarchy MPKI %.3f worse than monolithic 8-way %.3f", res.HierMPKI, res.Mono8MPKI)
	}
	if res.HierL2ProbeRate <= 0 || res.HierL2ProbeRate > 1 {
		t.Errorf("L2 probe rate %.3f out of range", res.HierL2ProbeRate)
	}
}

func TestCottageOnMiniSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration")
	}
	tb, res, err := testRunner(t).Cottage(miniSuite(80_000))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 2 {
		t.Errorf("rows = %d", tb.Rows())
	}
	// Both pairings must be functional: conditional accuracy well above
	// chance, indirect MPKI finite and below the BTB class.
	if res.HPCondAcc < 0.8 || res.TAGECondAcc < 0.8 {
		t.Errorf("cond accuracies %.3f / %.3f below sanity floor", res.HPCondAcc, res.TAGECondAcc)
	}
	if res.BLBPMPKI <= 0 || res.ITTAGEMPKI <= 0 {
		t.Error("missing indirect MPKI data")
	}
}

func TestLatencyOnMiniSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration")
	}
	tb, res, err := testRunner(t).Latency(miniSuite(60_000))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 3 {
		t.Errorf("rows = %d", tb.Rows())
	}
	if res.PctOneCycle <= 0 || res.PctOneCycle > 100 {
		t.Errorf("PctOneCycle = %v out of range", res.PctOneCycle)
	}
	if res.PctWithin4 < res.PctOneCycle {
		t.Error("within-4 fraction below one-cycle fraction")
	}
	if res.MeanCycles < 1 {
		t.Errorf("MeanCycles = %v, want >= 1", res.MeanCycles)
	}
}

func TestSeedsOnMiniBase(t *testing.T) {
	if testing.Short() {
		t.Skip("slow integration")
	}
	tb, rows, err := testRunner(t).Seeds(20_000, []string{"", "x"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if tb.Rows() != 5 { // 2 draws + blank + mean + min/max
		t.Errorf("table rows = %d, want 5", tb.Rows())
	}
	if rows[0].ITTAGEMean == rows[1].ITTAGEMean && rows[0].BLBPMean == rows[1].BLBPMean {
		t.Error("salted draw produced identical results; salt not applied")
	}
}
