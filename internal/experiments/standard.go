package experiments

import (
	"blbp/internal/btb"
	"blbp/internal/cond"
	"blbp/internal/core"
	"blbp/internal/ittage"
	"blbp/internal/predictor"
	"blbp/internal/vpc"
)

// Canonical predictor names used across all experiments.
const (
	NameBTB    = "btb"
	NameVPC    = "vpc"
	NameITTAGE = "ittage"
	NameBLBP   = "blbp"
)

// Conditional configuration keys (see Pass.CondKey). Every pass declaring
// one of these must construct exactly the predictor the key names, so the
// tape-cached conditional simulation is interchangeable across passes and
// drivers.
const (
	// CondKeyHP is cond.NewHashedPerceptron(cond.DefaultHPConfig()).
	CondKeyHP = "hashed-perceptron/default"
	// CondKeyTAGE is cond.NewTAGE(cond.DefaultTAGEConfig()).
	CondKeyTAGE = "tage/default"
)

// newHP builds the default hashed perceptron, the conditional predictor
// behind CondKeyHP.
func newHP() cond.Predictor { return cond.NewHashedPerceptron(cond.DefaultHPConfig()) }

// StandardPasses returns the paper's Table 2 predictor line-up as engine
// passes: one pass with the BTB baseline, ITTAGE, and BLBP sharing a hashed
// perceptron conditional predictor, and a second pass for VPC, which must
// own (and pollute) its conditional predictor.
func StandardPasses() []Pass {
	return []Pass{
		Shared(CondKeyHP, func() (cond.Predictor, []predictor.Indirect) {
			return newHP(), []predictor.Indirect{
				btb.NewIndirect(btb.Default32K()),
				ittage.New(ittage.DefaultConfig()),
				core.New(core.DefaultConfig()),
			}
		}),
		VPCPass(),
	}
}

// VPCPass returns the VPC pass: VPC shares the pass's hashed perceptron,
// so the pass owns its conditional state and is never tape-shared.
func VPCPass() Pass {
	return Exclusive(func() (cond.Predictor, []predictor.Indirect) {
		hp := cond.NewHashedPerceptron(cond.DefaultHPConfig())
		return hp, []predictor.Indirect{vpc.New(vpc.DefaultConfig(), hp)}
	})
}

// ITTAGEPass returns a pass containing only ITTAGE (used as the reference
// in the ablation and associativity sweeps).
func ITTAGEPass() Pass {
	return Shared(CondKeyHP, func() (cond.Predictor, []predictor.Indirect) {
		return newHP(), []predictor.Indirect{
			ittage.New(ittage.DefaultConfig()),
		}
	})
}

// BLBPVariantsPasses returns one pass per BLBP configuration, each under
// its variant name. One pass per variant — rather than one pass carrying
// every variant — lets the scheduler run a sweep's arms as independent
// (workload × pass) tasks; the shared conditional side is simulated once
// per workload on the tape either way, so the decomposition changes
// nothing about the results.
func BLBPVariantsPasses(variants []BLBPVariant) []Pass {
	passes := make([]Pass, len(variants))
	for i, v := range variants {
		passes[i] = Shared(CondKeyHP, func() (cond.Predictor, []predictor.Indirect) {
			return newHP(), []predictor.Indirect{Rename(core.New(v.Config), v.Name)}
		})
	}
	return passes
}

// BLBPVariant names one BLBP configuration.
type BLBPVariant struct {
	Name   string
	Config core.Config
}
