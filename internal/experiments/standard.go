package experiments

import (
	"blbp/internal/btb"
	"blbp/internal/cond"
	"blbp/internal/core"
	"blbp/internal/ittage"
	"blbp/internal/predictor"
	"blbp/internal/vpc"
)

// Canonical predictor names used across all experiments.
const (
	NameBTB    = "btb"
	NameVPC    = "vpc"
	NameITTAGE = "ittage"
	NameBLBP   = "blbp"
)

// StandardPasses returns the paper's Table 2 predictor line-up as engine
// passes: one pass with the BTB baseline, ITTAGE, and BLBP sharing a hashed
// perceptron conditional predictor, and a second pass for VPC, which must
// own (and pollute) its conditional predictor.
func StandardPasses() []PassFactory {
	return []PassFactory{
		func() (cond.Predictor, []predictor.Indirect) {
			return cond.NewHashedPerceptron(cond.DefaultHPConfig()), []predictor.Indirect{
				btb.NewIndirect(btb.Default32K()),
				ittage.New(ittage.DefaultConfig()),
				core.New(core.DefaultConfig()),
			}
		},
		VPCPass(),
	}
}

// VPCPass returns the VPC pass: VPC shares the pass's hashed perceptron.
func VPCPass() PassFactory {
	return func() (cond.Predictor, []predictor.Indirect) {
		hp := cond.NewHashedPerceptron(cond.DefaultHPConfig())
		return hp, []predictor.Indirect{vpc.New(vpc.DefaultConfig(), hp)}
	}
}

// ITTAGEPass returns a pass containing only ITTAGE (used as the reference
// in the ablation and associativity sweeps).
func ITTAGEPass() PassFactory {
	return func() (cond.Predictor, []predictor.Indirect) {
		return cond.NewHashedPerceptron(cond.DefaultHPConfig()), []predictor.Indirect{
			ittage.New(ittage.DefaultConfig()),
		}
	}
}

// BLBPVariantsPass returns a pass running several BLBP configurations side
// by side, each under its map key as predictor name.
func BLBPVariantsPass(variants []BLBPVariant) PassFactory {
	return func() (cond.Predictor, []predictor.Indirect) {
		indirects := make([]predictor.Indirect, len(variants))
		for i, v := range variants {
			indirects[i] = Rename(core.New(v.Config), v.Name)
		}
		return cond.NewHashedPerceptron(cond.DefaultHPConfig()), indirects
	}
}

// BLBPVariant names one BLBP configuration.
type BLBPVariant struct {
	Name   string
	Config core.Config
}
