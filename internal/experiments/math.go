package experiments

import "math"

// mathPow isolates the stdlib math dependency used by the interval
// generators at configuration time.
func mathPow(base, exp float64) float64 { return math.Pow(base, exp) }
